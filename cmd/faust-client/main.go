// Faust-client is an interactive client for a faust-server. It keeps the
// USTOR protocol state for one client identity and runs a small REPL:
//
//	write <text>   write to the own register
//	read <j>       read register j
//	cut            print the stability cut (requires -listen/-peers)
//	status         print failure state
//	quit
//
// Without -listen/-peers it runs the bare USTOR protocol (storage with
// failure detection, no stability). With them it runs the full FAUST
// stack, exchanging PROBE/VERSION/FAILURE messages with peers over TCP.
//
// Keys are derived from -seed (demo-grade; all parties must use the same
// seed and -n).
//
// Example (three shells):
//
//	faust-server -addr :7440 -n 2
//	faust-client -server localhost:7440 -n 2 -id 0 -listen :7450 -peers 1=localhost:7451
//	faust-client -server localhost:7440 -n 2 -id 1 -listen :7451 -peers 0=localhost:7450
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
)

func main() {
	server := flag.String("server", "localhost:7440", "faust-server address")
	shardName := flag.String("shard", "", "shard name on a multi-tenant server; empty = legacy handshake to the default shard")
	n := flag.Int("n", 3, "number of clients in this shard's group (must match the server)")
	id := flag.Int("id", 0, "this client's identity (0..n-1)")
	seed := flag.Int64("seed", 42, "deterministic demo key seed (must match peers)")
	listen := flag.String("listen", "", "offline-channel listen address (enables FAUST)")
	peersFlag := flag.String("peers", "", "offline peers as id=host:port,id=host:port")
	probe := flag.Duration("probe", 2*time.Second, "probe timeout (FAUST delta)")
	flag.Parse()

	if *id < 0 || *id >= *n {
		log.Fatalf("faust-client: -id %d out of range [0,%d)", *id, *n)
	}
	ring, signers := crypto.NewTestKeyring(*n, *seed)
	var link transport.Link
	var err error
	if *shardName != "" {
		// v2 handshake: the server acks, so an unknown shard or bad id
		// fails here instead of on the first operation.
		link, err = transport.DialTCPShard(*server, *shardName, *id)
	} else {
		link, err = transport.DialTCP(*server, *id)
	}
	if err != nil {
		log.Fatalf("faust-client: %v", err)
	}

	var fclient *faustproto.Client
	var uclient *ustor.Client
	if *listen != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			log.Fatalf("faust-client: %v", err)
		}
		mesh, err := offline.ListenTCP(*id, *listen, peers, time.Second)
		if err != nil {
			log.Fatalf("faust-client: %v", err)
		}
		cfg := faustproto.Config{ProbeTimeout: *probe, PollInterval: *probe / 4}
		fclient = faustproto.NewClient(*id, ring, signers[*id], link, mesh,
			faustproto.WithConfig(cfg),
			faustproto.WithStableHandler(func(w []int64) {
				fmt.Printf("\n[stable] cut=%v\n> ", w)
			}),
			faustproto.WithFailHandler(func(err error) {
				fmt.Printf("\n[FAIL] server exposed: %v\n> ", err)
			}),
		)
		fclient.Start()
		defer fclient.Stop()
		fmt.Printf("faust-client %d/%d%s: FAUST mode (offline channel on %s)\n", *id, *n, shardSuffix(*shardName), *listen)
	} else {
		uclient = ustor.NewClient(*id, ring, signers[*id], link,
			ustor.WithFailHandler(func(err error) {
				fmt.Printf("\n[FAIL] server exposed: %v\n> ", err)
			}))
		fmt.Printf("faust-client %d/%d%s: USTOR mode (no offline channel)\n", *id, *n, shardSuffix(*shardName))
	}

	repl(fclient, uclient)
}

func shardSuffix(shard string) string {
	if shard == "" {
		return ""
	}
	return fmt.Sprintf(" (shard %q)", shard)
}

func parsePeers(s string) (map[int]string, error) {
	peers := make(map[int]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		pid, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		peers[pid] = kv[1]
	}
	return peers, nil
}

func repl(fc *faustproto.Client, uc *ustor.Client) {
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "write":
			if len(fields) < 2 {
				fmt.Println("usage: write <text>")
				break
			}
			text := strings.Join(fields[1:], " ")
			if fc != nil {
				ts, err := fc.Write([]byte(text))
				report(err, func() { fmt.Printf("ok, timestamp %d\n", ts) })
			} else {
				res, err := uc.WriteX([]byte(text))
				report(err, func() { fmt.Printf("ok, timestamp %d\n", res.Timestamp) })
			}
		case "read":
			if len(fields) != 2 {
				fmt.Println("usage: read <register>")
				break
			}
			j, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Printf("bad register: %v\n", err)
				break
			}
			if fc != nil {
				v, ts, err := fc.Read(j)
				report(err, func() { fmt.Printf("%q (timestamp %d)\n", v, ts) })
			} else {
				v, err := uc.Read(j)
				report(err, func() { fmt.Printf("%q\n", v) })
			}
		case "cut":
			if fc == nil {
				fmt.Println("stability cuts need FAUST mode (-listen/-peers)")
				break
			}
			fmt.Printf("cut=%v\n", fc.StableCut())
		case "status":
			var failed bool
			var reason error
			if fc != nil {
				failed, reason = fc.Failed()
			} else {
				failed, reason = uc.Failed()
			}
			if failed {
				fmt.Printf("FAILED: %v\n", reason)
			} else {
				fmt.Println("ok (no failure detected)")
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: write <text> | read <j> | cut | status | quit")
		}
		fmt.Print("> ")
	}
}

func report(err error, onOK func()) {
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	onOK()
}
