// Kvstore walks through the authenticated key-value layer (package kv):
// a namespace of many keys with large, chunked values on top of a single
// fail-aware register per client.
//
// The demo shows, in order:
//
//  1. puts and gets, including a value large enough to split into
//     content-addressed chunks over the bulk blob channel;
//  2. authenticated cross-client reads and the two cache tiers (verified
//     chunk reuse, and CachedGetFrom's zero-round-trip hits);
//  3. a tampered chunk in the server's blob store being rejected by the
//     reader's digest check;
//  4. a forking server being detected THROUGH the KV API: the clients
//     only ever call Put/GetFrom, and the reader still halts with the
//     protocol's fail-aware detection error.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/kv"
	"faust/internal/transport"
	"faust/internal/ustor"
)

func main() {
	fmt.Println("=== 1. An authenticated KV namespace over one register ===")
	honest()
	fmt.Println("\n=== 2. A tampered chunk is rejected by the digest check ===")
	tampered()
	fmt.Println("\n=== 3. A forking server is detected through the KV API ===")
	forking()
}

// openStores builds n clients with kv stores over the given server core
// and a shared in-memory blob store.
func openStores(n int, core transport.ServerCore, opts ...kv.Option) ([]*ustor.Client, []*kv.Store, *transport.MemBlobs, func()) {
	ring, signers := crypto.NewTestKeyring(n, 7)
	blobs := transport.NewMemBlobs()
	nw := transport.NewNetwork(n, core, transport.WithBlobStore(blobs))
	clients := make([]*ustor.Client, n)
	stores := make([]*kv.Store, n)
	for i := 0; i < n; i++ {
		clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
		ch, err := nw.BlobChannel()
		if err != nil {
			log.Fatal(err)
		}
		if stores[i], err = kv.Open(clients[i], ch, opts...); err != nil {
			log.Fatal(err)
		}
	}
	return clients, stores, blobs, nw.Stop
}

func honest() {
	_, stores, _, stop := openStores(2, ustor.NewServer(2), kv.WithChunkSize(4<<10))
	defer stop()
	alice, bob := stores[0], stores[1]

	// Small values: one chunk, one register write each.
	must(alice.Put(context.Background(), "motd", []byte("hello from alice")))
	must(alice.Put(context.Background(), "config", []byte("retries=3")))

	// A large value: 40 KiB splits into ten 4 KiB content-addressed
	// chunks, uploaded over the bulk channel — the register only ever
	// carries the root record naming the directory tree's root hash.
	large := bytes.Repeat([]byte("0123456789abcdef"), 2560)
	must(alice.Put(context.Background(), "dataset", large))
	fmt.Printf("alice's namespace: %v (root %x...)\n", alice.Keys(), alice.Root()[:8])

	// Bob reads with full authentication: ReadX of alice's register,
	// then the tree path + chunks fetched, each node hash-checked
	// against the reference that named it.
	v, err := bob.GetFrom(context.Background(), 0, "motd")
	must(err)
	fmt.Printf("bob GetFrom(alice, motd) = %q\n", v)
	v, err = bob.GetFrom(context.Background(), 0, "dataset")
	must(err)
	fmt.Printf("bob GetFrom(alice, dataset) = %d bytes, intact=%v\n", len(v), bytes.Equal(v, large))

	// Repeat read: the root is unchanged, so the tree path comes from
	// the node cache and every chunk from the validating chunk cache —
	// one register round trip, zero blob traffic.
	before := bob.Stats()
	_, err = bob.GetFrom(context.Background(), 0, "dataset")
	must(err)
	after := bob.Stats()
	fmt.Printf("repeat GetFrom: +%d register reads, +%d blob fetches (chunks served from the validating cache)\n",
		after.RegisterReads-before.RegisterReads, after.BlobGets-before.BlobGets)

	// CachedGetFrom: no server round trip at all while bob's observed
	// version of alice's register is unchanged.
	before = bob.Stats()
	_, err = bob.CachedGetFrom(context.Background(), 0, "dataset")
	must(err)
	after = bob.Stats()
	fmt.Printf("CachedGetFrom: +%d register reads, +%d blob fetches (value cache hit)\n",
		after.RegisterReads-before.RegisterReads, after.BlobGets-before.BlobGets)
}

func tampered() {
	_, stores, blobs, stop := openStores(2, ustor.NewServer(2), kv.WithChunkSize(4<<10))
	defer stop()
	alice, bob := stores[0], stores[1]

	secret := bytes.Repeat([]byte("integrity matters "), 1000)
	must(alice.Put(context.Background(), "doc", secret))

	// The server controls its blob store and swaps one chunk's bytes.
	chunk := secret[4096:8192]
	must(blobs.PutBlob(crypto.Hash(chunk), []byte("malicious replacement")))

	_, err := bob.GetFrom(context.Background(), 0, "doc")
	fmt.Printf("bob GetFrom(alice, doc) after the swap: %v\n", err)
	fmt.Println("(an integrity error, not a halt — bulk data is unauthenticated, readers verify)")
}

func forking() {
	// The malicious server serves each client from an independent copy
	// of the state (the paper's forking attack).
	server, err := byzantine.NewForkingServer(2, [][]int{{0}, {1}})
	must(err)
	clients, stores, _, stop := openStores(2, server)
	defer stop()
	alice, bob := stores[0], stores[1]

	// The attacker replays alice's captured operations into bob's
	// branch to make her writes selectively visible — without their
	// COMMITs. The first replayed operation passes every check (weak
	// fork-linearizability permits it)...
	must(server.Replay(0, 0, 1))
	if _, err := bob.GetFrom(context.Background(), 0, "report"); errors.Is(err, kv.ErrNotFound) {
		fmt.Println("bob's first read: key not found (the fork is still invisible)")
	}

	// ...but the next hidden-then-replayed write has no PROOF-signature
	// in bob's branch, and bob's kv read detects the fork.
	must(alice.Put(context.Background(), "report", []byte("Q3 numbers")))
	must(server.Replay(0, server.CapturedOps(0)-1, 1))

	_, err = bob.GetFrom(context.Background(), 0, "report")
	var det *ustor.DetectionError
	if errors.As(err, &det) {
		fmt.Printf("bob's next KV read: DETECTED — %v\n", det)
	} else {
		log.Fatalf("expected detection, got %v", err)
	}
	if failed, _ := clients[1].Failed(); failed {
		fmt.Println("bob has halted; every further KV call fails:")
	}
	_, err = bob.GetFrom(context.Background(), 0, "report")
	fmt.Printf("  %v\n", err)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
