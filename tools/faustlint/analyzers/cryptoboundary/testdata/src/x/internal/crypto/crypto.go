// Fixture: the crypto package itself is allowed to touch primitives —
// its import path ends in internal/crypto.
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
)

func Hash(b []byte) [32]byte {
	return sha256.Sum256(b)
}

func Sign(priv ed25519.PrivateKey, msg []byte) []byte {
	return ed25519.Sign(priv, msg)
}
