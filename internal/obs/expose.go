package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"faust/internal/obs/trace"
)

// This file turns a Registry into an operator-facing HTTP surface:
//
//	/metrics        Prometheus text exposition (counters, gauges,
//	                histograms with per-octave buckets + p50/p99/p999,
//	                plus trace-ID exemplar comments)
//	/events         the protocol event log as JSON, oldest first;
//	                filterable with ?kind=, ?since=<seq>, ?limit=
//	/trace          retained traces as Chrome trace_event JSON
//	                (load in Perfetto or chrome://tracing)
//	/trace/slowest  the n slowest retained traces as span trees (?n=)
//	/debug/vars     expvar JSON (the registry publishes itself under "faust")
//	/debug/pprof/*  the standard runtime profiles
//
// Everything is standard library; there is no client dependency to take.

// quantiles rendered for every histogram family, as (suffix, q) pairs.
var exportQuantiles = []struct {
	suffix string
	q      float64
}{
	{"_p50", 0.50},
	{"_p99", 0.99},
	{"_p999", 0.999},
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms render as native
// histogram families — cumulative per-octave `le` buckets, `_sum` and
// `_count`, all in seconds — plus companion gauge families
// `<name>_p50/_p99/_p999` carrying the estimated quantiles, so tail
// latency is readable without a PromQL engine.
func (r *Registry) WritePrometheus(w io.Writer) {
	metrics := r.snapshotMetrics()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	lastFamily := ""
	emitHeader := func(w io.Writer, family, typ string) {
		if family == lastFamily {
			return
		}
		lastFamily = family
		if h, ok := help[family]; ok {
			fmt.Fprintf(w, "# HELP %s %s\n", family, h)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", family, typ)
	}

	// Quantile gauges derived from histograms are separate metric
	// families (<name>_p50 etc.); buffer them per family so each family's
	// samples stay contiguous under a single TYPE line.
	quantileFams := make(map[string]*bytes.Buffer)

	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			emitHeader(w, m.family, "counter")
			fmt.Fprintf(w, "%s%s %d\n", m.family, m.labels, m.c.Value())
		case kindGauge:
			emitHeader(w, m.family, "gauge")
			fmt.Fprintf(w, "%s%s %d\n", m.family, m.labels, m.g.Value())
		case kindHistogram:
			writePromHistogram(w, m, emitHeader, quantileFams)
		}
	}

	qNames := make([]string, 0, len(quantileFams))
	for name := range quantileFams {
		qNames = append(qNames, name)
	}
	sort.Strings(qNames)
	for _, name := range qNames {
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		_, _ = w.Write(quantileFams[name].Bytes())
	}

	// The protocol event log exports its lifetime per-kind counters as
	// one counter family, whatever registry names its metrics use.
	kinds := r.events.Kinds()
	if len(kinds) > 0 {
		emitHeader(w, "faust_events_total", "counter")
		for _, k := range kinds {
			fmt.Fprintf(w, "faust_events_total{kind=%q} %d\n", string(k), r.events.Total(k))
		}
	}
}

// writePromHistogram renders one histogram series: octave-granularity
// cumulative buckets (collapsing the fine sub-buckets keeps the exposition
// compact; the fine resolution still backs the quantile estimates), then
// sum/count in seconds. The quantile gauges are appended to the per-family
// buffers in quantileFams for the caller to flush at the end.
func writePromHistogram(w io.Writer, m *metric, emitHeader func(w io.Writer, family, typ string), quantileFams map[string]*bytes.Buffer) {
	s := m.h.Snapshot()
	emitHeader(w, m.family, "histogram")

	// Collapse fine buckets into per-octave "le" bounds. Bucket upper
	// bounds are nanoseconds; exposition is seconds.
	type ob struct {
		upperNs int64
		n       int64
	}
	var octaves []ob
	idxs := make([]int, 0, len(s.Buckets))
	for i := range s.Buckets {
		idxs = append(idxs, i)
	}
	sortInts(idxs)
	for _, i := range idxs {
		upper := bucketUpper(i)
		// Round the bound up to the enclosing power of two so all fine
		// buckets of one octave share a bound.
		oct := int64(1)
		for oct < upper {
			oct <<= 1
		}
		if len(octaves) > 0 && octaves[len(octaves)-1].upperNs == oct {
			octaves[len(octaves)-1].n += s.Buckets[i]
		} else {
			octaves = append(octaves, ob{oct, s.Buckets[i]})
		}
	}
	cum := int64(0)
	labels := promLabelPrefix(m.labels)
	for _, o := range octaves {
		cum += o.n
		fmt.Fprintf(w, "%s_bucket%sle=\"%g\"} %d\n", m.family, labels, float64(o.upperNs)/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", m.family, labels, s.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", m.family, m.labels, float64(s.Sum)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", m.family, m.labels, s.Count)
	// The most recent over-threshold observation's trace ID, as a comment
	// so plain 0.0.4 parsers skip it: the link from "the p999 spiked" to
	// the retained trace that did it (GET /trace).
	if e := ExemplarOf(m.h); e != nil {
		fmt.Fprintf(w, "# EXEMPLAR %s%s trace_id=%s value=%g ts=%d\n",
			m.family, m.labels, e.Trace.String(), float64(e.Value)/1e9, e.At)
	}

	for _, eq := range exportQuantiles {
		name := m.family + eq.suffix
		buf := quantileFams[name]
		if buf == nil {
			buf = &bytes.Buffer{}
			quantileFams[name] = buf
		}
		fmt.Fprintf(buf, "%s%s %g\n", name, m.labels, float64(s.Quantile(eq.q))/1e9)
	}
}

// promLabelPrefix turns a rendered label set ("{a=\"b\"}" or "") into the
// prefix needed before an le label: "{a=\"b\"," or "{".
func promLabelPrefix(labels string) string {
	if labels == "" {
		return "{"
	}
	return labels[:len(labels)-1] + ","
}

// exportJSON renders the registry as a JSON object: metric key -> value
// (counters and gauges as numbers, histograms as {count,sum,max,p50,p99,
// p999}). This is what the expvar integration publishes.
func (r *Registry) exportJSON() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshotMetrics() {
		key := m.family + m.labels
		switch m.kind {
		case kindCounter:
			out[key] = m.c.Value()
		case kindGauge:
			out[key] = m.g.Value()
		case kindHistogram:
			s := m.h.Snapshot()
			hj := map[string]any{
				"count": s.Count,
				"sum":   s.Sum,
				"max":   s.Max,
				"mean":  s.Mean(),
				"p50":   s.P50(),
				"p99":   s.P99(),
				"p999":  s.P999(),
			}
			if e := ExemplarOf(m.h); e != nil {
				hj["exemplar"] = map[string]any{
					"trace": e.Trace.String(), "value": e.Value, "at": e.At,
				}
			}
			out[key] = hj
		}
	}
	for _, k := range r.events.Kinds() {
		out["faust_events_total{kind=\""+string(k)+"\"}"] = r.events.Total(k)
	}
	return out
}

// publishExpvarOnce guards the process-global expvar name. Only the first
// registry served gets the "faust" expvar slot; expvar panics on duplicate
// names, and serving two registries from one process is a test-only
// scenario.
var publishExpvarOnce sync.Once

// Handler returns the registry's HTTP surface (see the file comment for
// the routes).
func (r *Registry) Handler() http.Handler {
	publishExpvarOnce.Do(func() {
		expvar.Publish("faust", expvar.Func(func() any { return Default().exportJSON() }))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		evs := r.Events().Snapshot()
		q := req.URL.Query()
		if kind := q.Get("kind"); kind != "" {
			kept := evs[:0:0]
			for _, e := range evs {
				if string(e.Kind) == kind {
					kept = append(kept, e)
				}
			}
			evs = kept
		}
		if s := q.Get("since"); s != "" {
			since, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			// Seq is strictly increasing, so "entries after seq N" is the
			// tail starting at the first Seq > N.
			i := 0
			for i < len(evs) && evs[i].Seq <= since {
				i++
			}
			evs = evs[i:]
		}
		if s := q.Get("limit"); s != "" {
			limit, err := strconv.Atoi(s)
			if err != nil || limit < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			if len(evs) > limit {
				evs = evs[len(evs)-limit:] // most recent wins
			}
		}
		if evs == nil {
			evs = []Event{} // encode as [], not null, when the filter matches nothing
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(evs)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = trace.Default().WriteTraceEvents(w)
	})
	mux.HandleFunc("/trace/slowest", func(w http.ResponseWriter, req *http.Request) {
		n := 5
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.Default().WriteSlowest(w, n)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "faust observability endpoint\n\n/metrics\n/events\n/trace\n/trace/slowest\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts an HTTP server for the registry on addr and returns the
// bound listener (so callers learn the port when addr ends in ":0") and
// a shutdown function that closes the server and all its connections.
// The read and idle timeouts bound what one slow or silent client can
// hold open — this is an operator port, but it should not be the
// process's easiest resource-exhaustion target.
func Serve(addr string, r *Registry) (net.Listener, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = srv.Serve(ln) }()
	return ln, srv.Close, nil
}
