// Package store gives the USTOR server durable, recoverable state.
//
// The paper models the server as a pure in-memory state machine
// (Algorithm 2), so a restart would silently roll every client back to an
// older state — indistinguishable, from the clients' point of view, from a
// malicious rollback attack, and therefore guaranteed to trip the
// fail-awareness checks. This package closes that gap with classic
// write-ahead logging: every SUBMIT and COMMIT is appended to a log
// *before* it is applied, and the full server state (wire.ServerState) is
// snapshotted periodically. Recovery loads the newest valid snapshot and
// replays the log tail; because the server is deterministic, the recovered
// state is bit-for-bit the pre-crash state, and clients resume without
// noticing.
//
// The flip side is deliberate: the store authenticates nothing. A log
// truncated by an attacker recovers "successfully" into a stale state —
// and the protocol's client-side checks (Algorithm 1 line 36) then expose
// the rollback exactly as they expose a lying live server. Durability here
// protects against crashes; fail-awareness protects against everything
// else.
//
// Two Backend implementations exist: MemBackend (process-lifetime only,
// the default for tests and simulations) and FileBackend (CRC-checksummed
// length-prefixed WAL segments plus atomic snapshot files, tolerating a
// torn final record after a crash).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"faust/internal/wire"
)

// Record is one durably logged server input: a SUBMIT or COMMIT message
// together with the index of the client that sent it. These are the only
// messages that mutate server state, so they are exactly what recovery
// must replay.
type Record struct {
	From int
	Msg  wire.Message // *wire.Submit or *wire.Commit
}

// ErrBadRecord reports a record that is not a SUBMIT or COMMIT, or whose
// encoding is malformed.
var ErrBadRecord = errors.New("store: record is not a SUBMIT or COMMIT")

// EncodeRecord renders a record canonically: u32 client index followed by
// the wire encoding of the message.
func EncodeRecord(rec Record) ([]byte, error) {
	switch rec.Msg.(type) {
	case *wire.Submit, *wire.Commit:
	default:
		return nil, ErrBadRecord
	}
	body := wire.Encode(rec.Msg)
	buf := make([]byte, 4, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(rec.From))
	return append(buf, body...), nil
}

// DecodeRecord parses an encoding produced by EncodeRecord.
func DecodeRecord(data []byte) (Record, error) {
	if len(data) < 4 {
		return Record{}, ErrBadRecord
	}
	from := int(int32(binary.BigEndian.Uint32(data)))
	m, err := wire.Decode(data[4:])
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	switch m.(type) {
	case *wire.Submit, *wire.Commit:
	default:
		return Record{}, ErrBadRecord
	}
	return Record{From: from, Msg: m}, nil
}

// Backend persists server state as a snapshot plus a log tail. The
// Persistent wrapper drives it with WAL discipline: Load once on open,
// Append before every state change, Flush before any reply escapes,
// WriteSnapshot periodically.
//
// Implementations must be safe for concurrent Append/Flush calls: the
// group-commit FileBackend coalesces appends from concurrent callers into
// a single write + sync.
type Backend interface {
	// Load returns the recovery baseline: the newest valid snapshot (nil
	// if none was ever written) and the log records appended after it, in
	// order. Called once, before any Append or WriteSnapshot.
	Load() (snapshot []byte, tail []Record, err error)
	// Append logs one record. Immediate-mode backends make it durable
	// before returning; group-commit backends may buffer, in which case
	// the record is durable only after the next Flush. Either way the
	// record's position in the log equals its Append order.
	Append(rec Record) error
	// Flush makes every record appended so far durable (to the degree the
	// backend is configured for — process-crash or power-loss). It must
	// not return before that point; concurrent Flush calls may coalesce
	// into one sync. A no-op for immediate-mode backends.
	Flush() error
	// WriteSnapshot atomically replaces the recovery baseline: after it
	// returns, a Load observes state with an empty tail, and log records
	// covered by the snapshot may be reclaimed. A crash during
	// WriteSnapshot must leave the previous baseline intact. Buffered
	// records are flushed or superseded; none are lost.
	WriteSnapshot(state []byte) error
	// Close flushes buffered records and releases resources. The backend
	// stays recoverable.
	Close() error
}

// MemBackend keeps the snapshot and log in memory. It provides no
// durability across processes — it exists to give tests, simulations and
// benchmarks the exact code path of a persistent server (including the
// record codec round trip) without touching a filesystem, and to exercise
// simulated restarts by handing the same MemBackend to a fresh server.
type MemBackend struct {
	mu    sync.Mutex
	state []byte
	tail  [][]byte // encoded records, so Load never aliases live messages
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

var _ Backend = (*MemBackend)(nil)

// Load implements Backend.
func (b *MemBackend) Load() ([]byte, []Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var state []byte
	if b.state != nil {
		state = append([]byte(nil), b.state...)
	}
	tail := make([]Record, len(b.tail))
	for i, enc := range b.tail {
		rec, err := DecodeRecord(enc)
		if err != nil {
			return nil, nil, err
		}
		tail[i] = rec
	}
	return state, tail, nil
}

// Append implements Backend.
func (b *MemBackend) Append(rec Record) error {
	enc, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tail = append(b.tail, enc)
	return nil
}

// Flush implements Backend. Memory is as durable as a MemBackend gets.
func (b *MemBackend) Flush() error { return nil }

// WriteSnapshot implements Backend.
func (b *MemBackend) WriteSnapshot(state []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = append([]byte(nil), state...)
	b.tail = nil
	return nil
}

// Close implements Backend.
func (b *MemBackend) Close() error { return nil }
