package transport

import "faust/internal/obs"

// Metric handles for the transport hot paths, resolved once at package
// init and touched lock-free afterwards. Everything reports into the
// process-wide default registry, which cmd/faust-server exposes via
// -metrics-addr.
var (
	// Post-handshake connections currently registered, by connection kind
	// (protocol connections vs bulk blob-channel connections).
	tmConnsProto = obs.Default().Gauge("faust_transport_conns", "kind", "proto")
	tmConnsBlob  = obs.Default().Gauge("faust_transport_conns", "kind", "blob")

	// Frames moved on TCP connections, by direction relative to this
	// process ("out" counts every framed message written, on either side
	// of the wire; "in" counts frames read by server-side loops).
	tmFramesIn  = obs.Default().Counter("faust_transport_frames_total", "dir", "in")
	tmFramesOut = obs.Default().Counter("faust_transport_frames_total", "dir", "out")

	// Handshake outcomes. Rejections also land in the protocol event log
	// as preflight-reject events with the shard name.
	tmHandshakeOK  = obs.Default().Counter("faust_transport_handshakes_total", "result", "accepted")
	tmHandshakeRej = obs.Default().Counter("faust_transport_handshakes_total", "result", "rejected")

	// Dispatcher-side handler latency: the time one SUBMIT (or COMMIT)
	// spends in the dispatch pipeline, excluding queueing — for a batched
	// SUBMIT that is verify + apply + shared flush + reply enqueue, for a
	// batch of one it is the bare handler as before. Shared by the TCP
	// dispatchers and the in-memory network's dispatcher so both
	// transports report comparable numbers.
	tmSubmitNs = obs.Default().Histogram("faust_ustor_op_latency_ns", "op", "submit")
	tmCommitNs = obs.Default().Histogram("faust_ustor_op_latency_ns", "op", "commit")

	// Batched dispatch: how many envelopes each inbox drain took (1 =
	// fast path; the distribution shows how much amortization load
	// actually buys) and how many SUBMITs the opt-in signature check
	// turned away. Oversized drains pin a trace exemplar on the size
	// histogram — see observeBatchSize.
	tmBatchSize     = obs.Default().Histogram("faust_dispatch_batch_size")
	tmVerifyRejects = obs.Default().Counter("faust_verify_reject_total")

	// Client-side blob-channel pipelining depth and server-side request
	// volume of the bulk channel.
	tmBlobInflight = obs.Default().Gauge("faust_blob_inflight")
	tmBlobReqs     = obs.Default().Counter("faust_blob_requests_total")

	// Fresh connections consumed by RedialBlobChannel wrappers after a
	// poisoned channel (one increment per redial attempt, successful or
	// not).
	tmBlobRedials = obs.Default().Counter("faust_blob_redials_total")
)

func init() {
	r := obs.Default()
	r.Help("faust_transport_conns", "post-handshake TCP connections currently registered")
	r.Help("faust_transport_frames_total", "framed messages moved on TCP connections")
	r.Help("faust_transport_handshakes_total", "TCP handshake outcomes")
	r.Help("faust_ustor_op_latency_ns", "server-side handler latency per dispatched operation, nanoseconds")
	r.Help("faust_dispatch_batch_size", "envelopes drained per dispatcher batch (1 = unbatched fast path)")
	r.Help("faust_verify_reject_total", "SUBMITs dropped by dispatcher-side signature verification")
	r.Help("faust_blob_inflight", "blob-channel requests currently in flight (client side)")
	r.Help("faust_blob_requests_total", "blob-channel requests served (server side)")
	r.Help("faust_blob_redials_total", "blob-channel redials after connection failures (client side)")
	r.Help("faust_shard_ops_total", "operations dispatched per shard")
}

// shardOpsCounter returns the per-tenant op counter for a shard. Called
// once per shard runtime creation; the handle is cached on the shardRT.
func shardOpsCounter(name string) *obs.Counter {
	return obs.Default().Counter("faust_shard_ops_total", "shard", name)
}
