package shard

import (
	"bytes"
	"path/filepath"
	"testing"

	"faust/internal/blobfleet"
	"faust/internal/crypto"
	"faust/internal/store"
	"faust/internal/transport"
)

// TestRouterBlobFleet wires a failover fleet through the router: each
// shard's bulk blob channel must be a Failover built from the spec, with
// dir backends under the shard's data directory and writes replicated.
func TestRouterBlobFleet(t *testing.T) {
	base := t.TempDir()
	spec, err := blobfleet.ParseFleetSpec("dir,mem,w=2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter([]Spec{
		{Name: "p", N: 2, Persist: true},
		{Name: "m", N: 2},
	}, Options{BaseDir: base, BlobFleet: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	blobs, err := r.ResolveBlobs("p")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := blobs.(*blobfleet.Failover); !ok {
		t.Fatalf("shard blob store is %T, want *blobfleet.Failover", blobs)
	}
	data := []byte("fleet-backed chunk")
	hash := crypto.Hash(data)
	if err := blobs.PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	// The dir backend must live under the shard's own data directory.
	fb, err := store.OpenFileBlobs(filepath.Join(base, "shards", "p", "blobs"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := fb.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("dir backend missing replica: %q, %v", got, err)
	}

	st := r.FleetStatus("p")
	if len(st) != 2 || !st[0].Alive || !st[1].Alive {
		t.Fatalf("FleetStatus = %+v", st)
	}
	if r.FleetStatus("not-open") != nil {
		t.Fatal("FleetStatus for unknown shard should be nil")
	}

	// An in-memory shard still gets a fleet (dir entries degraded to mem).
	mblobs, err := r.ResolveBlobs("m")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mblobs.(*blobfleet.Failover); !ok {
		t.Fatalf("memory shard blob store is %T, want *blobfleet.Failover", mblobs)
	}
	if err := mblobs.PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	if got, err := mblobs.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("memory shard fleet get: %q, %v", got, err)
	}
}

// TestRouterWithoutFleetKeepsLegacyStores pins the default path: no
// BlobFleet option, no Failover anywhere.
func TestRouterWithoutFleetKeepsLegacyStores(t *testing.T) {
	r, err := NewRouter([]Spec{{Name: "a", N: 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	blobs, err := r.ResolveBlobs("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := blobs.(*transport.MemBlobs); !ok {
		t.Fatalf("legacy in-memory shard blob store is %T, want *transport.MemBlobs", blobs)
	}
}
