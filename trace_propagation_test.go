package faust

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"faust/internal/blobfleet"
	"faust/internal/crypto"
	"faust/internal/kv"
	"faust/internal/obs/trace"
	"faust/internal/shard"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// enableTracing arms the default collector for one test: every trace is
// head-sampled (kept), tail sampling off.
func enableTracing(t *testing.T) {
	t.Helper()
	trace.SetEnabled(true)
	trace.Configure(1, 0)
	t.Cleanup(func() {
		trace.SetEnabled(false)
		trace.Configure(0, 0)
		trace.Default().Reset()
	})
}

// spanNames collects the set of span names in a trace, treating any
// "fleet.put:<backend>" span as the generic marker "fleet.put:*".
func spanNames(tr *trace.Trace) map[string]bool {
	names := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		names[s.Name] = true
		if strings.HasPrefix(s.Name, "fleet.put:") {
			names["fleet.put:*"] = true
		}
	}
	return names
}

// assertTrace checks that the trace contains every wanted span name and
// that every span's parent link resolves to another span of the SAME
// trace — i.e. the wire propagation joined remote work into the
// client's trace instead of minting fresh roots.
func assertTrace(t *testing.T, tr *trace.Trace, want []string) {
	t.Helper()
	if tr == nil {
		t.Fatal("no trace retained")
	}
	names := spanNames(tr)
	for _, w := range want {
		if !names[w] {
			t.Errorf("trace %s: span %q missing (have %v)", tr.ID, w, keys(names))
		}
	}
	ids := make(map[trace.SpanID]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		ids[s.ID] = true
	}
	for _, s := range tr.Spans {
		if s.Parent != 0 && !ids[s.Parent] {
			t.Errorf("trace %s: span %q has dangling parent %d", tr.ID, s.Name, s.Parent)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTracePropagationMemoryTransport proves one trace follows a KV put
// end to end over the in-memory transport: client-side kv/sign/rpc/
// verify spans, the server dispatcher's remote-joined submit + queue
// wait, the USTOR apply, and — because the primary blob backend always
// fails — the blob fleet's per-backend attempts, retries and failover,
// all under a single trace ID minted at the client.
func TestTracePropagationMemoryTransport(t *testing.T) {
	enableTracing(t)
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 7)

	primary := blobfleet.NewFaultyBlobs("primary", transport.NewMemBlobs(),
		blobfleet.FaultConfig{Seed: 1, ErrRate: 1})
	fleet, err := blobfleet.New([]blobfleet.Backend{
		{Name: "primary", Store: primary},
		{Name: "mirror", Store: transport.NewMemBlobs()},
	}, blobfleet.Options{
		WriteReplicas: 2,
		RetryAttempts: 2,
		RetryBase:     time.Millisecond,
		RetryCap:      2 * time.Millisecond,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	nw := transport.NewNetwork(n, ustor.NewServer(n), transport.WithBlobStore(fleet))
	defer nw.Stop()
	client := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))
	bch, err := nw.BlobChannel()
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Open(client, bch, kv.WithChunkSize(1<<10), kv.WithTreeFanout(4, 4))
	if err != nil {
		t.Fatal(err)
	}

	value := make([]byte, 4<<10) // several chunks through the fleet
	for i := range value {
		value[i] = byte(i)
	}
	if err := kvs.Put(context.Background(), "traced-key", value); err != nil {
		t.Fatal(err)
	}

	trace.Default().Sweep()
	tr := trace.Default().Last()
	assertTrace(t, tr, []string{
		"kv.put", "kv.chunk", "sign", "rpc", "verify", // client side
		"srv.submit", "queue", "apply", // dispatcher + core
		"srv.blob.put",               // blob channel (in-process: no wire hop, no blob.rpc)
		"fleet.put:*", "fleet.retry", // fleet attempts incl. backoff
	})
}

// TestTracePropagationTCPWithRedial runs the same proof over real TCP
// against a persistent shard (adding WAL append/fsync spans to the
// chain), then kills the client's blob connection between two puts: the
// second put's trace must record the blob.redial recovery and still
// join the server-side work under the client's trace ID.
func TestTracePropagationTCPWithRedial(t *testing.T) {
	enableTracing(t)
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 7)

	spec, err := blobfleet.ParseFleetSpec("mem,mem,w=2")
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter([]shard.Spec{{Name: "t", N: n, Persist: true}}, shard.Options{
		BaseDir: t.TempDir(),
		FileOptions: store.FileOptions{
			Fsync: true, GroupCommit: true, FlushInterval: time.Millisecond,
		},
		BlobFleet:  spec,
		BlobFaults: &blobfleet.FaultPlan{Backend: 0, Config: blobfleet.FaultConfig{Seed: 1, ErrRate: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCPSharded(ln, router)
	defer func() {
		srv.Stop()
		_ = router.Close()
	}()

	link, err := transport.DialTCPShard(ln.Addr().String(), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	client := ustor.NewClient(0, ring, signers[0], link)

	// The redial channel remembers its live connection so the test can
	// sever it and force a traced redial on the next operation.
	var mu sync.Mutex
	var live transport.BlobChannel
	rb := transport.NewRedialBlobChannel(func() (transport.BlobChannel, error) {
		ch, err := transport.DialTCPBlob(ln.Addr().String(), "t")
		if err != nil {
			return nil, err
		}
		mu.Lock()
		live = ch
		mu.Unlock()
		return ch, nil
	}, transport.RedialOptions{Attempts: 5, Backoff: time.Millisecond})
	defer rb.Close()

	kvs, err := kv.Open(client, rb, kv.WithChunkSize(1<<10), kv.WithTreeFanout(4, 4))
	if err != nil {
		t.Fatal(err)
	}

	value := make([]byte, 4<<10)
	for i := range value {
		value[i] = byte(i * 3)
	}
	if err := kvs.Put(context.Background(), "first", value); err != nil {
		t.Fatal(err)
	}
	trace.Default().Sweep()
	first := trace.Default().Last()
	// The full chain, now with durability spans from the WAL-backed
	// shard; the always-failing primary adds retries and failover.
	assertTrace(t, first, []string{
		"kv.put", "sign", "rpc", "verify",
		"srv.submit", "queue", "apply", "wal.append", "wal.fsync",
		"blob.rpc", "srv.blob.put",
		"fleet.put:*", "fleet.retry",
	})

	// Sever the blob connection; the next put must redial and record it.
	mu.Lock()
	if live == nil {
		mu.Unlock()
		t.Fatal("redial channel never dialed")
	}
	_ = live.Close()
	mu.Unlock()

	if err := kvs.Put(context.Background(), "second", value); err != nil {
		t.Fatal(err)
	}
	trace.Default().Sweep()
	second := trace.Default().Last()
	if second == nil || first == nil {
		t.Fatal("traces not retained")
	}
	if second.ID == first.ID {
		t.Fatalf("second put reused trace %s", first.ID)
	}
	assertTrace(t, second, []string{
		"kv.put", "srv.submit", "blob.rpc", "blob.redial", "srv.blob.put",
	})
	if !spanNames(second)["wal.fsync"] {
		t.Fatalf("second trace lost the WAL chain: %v", keys(spanNames(second)))
	}

	// Sanity: the Perfetto export carries both traces.
	var buf bytes.Buffer
	if err := trace.Default().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*trace.Trace{first, second} {
		if !strings.Contains(buf.String(), tr.ID.String()) {
			t.Fatalf("trace %s missing from trace_event export", tr.ID)
		}
	}
}
