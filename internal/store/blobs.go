package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// FileBlobs is a file-backed content-addressed blob store: one file per
// blob, named by the hex of its hash, written atomically (tmp + rename).
// It backs the bulk blob channel of persistent shards so that chunked KV
// values survive a server restart alongside the WAL-recovered registers.
//
// Like every store in this system it authenticates nothing: the bytes on
// disk are served verbatim, and a tampered chunk is caught by the
// reader's content-hash check — the same trust model as the WAL (see the
// package comment in file.go).
type FileBlobs struct {
	dir   string
	fsync bool
	hooks BlobFaultHooks
}

// BlobFaultHooks lets the fault-injection harness (internal/blobfleet and
// the crash-consistency tests) fail a put at the exact stages a real disk
// would: before the data sync and before the publishing rename. A hook
// returning a non-nil error aborts the put at that stage, leaving the
// temp file to be cleaned up — the published namespace must never show a
// torn blob, whichever stage failed.
type BlobFaultHooks struct {
	BeforeSync   func() error
	BeforeRename func() error
}

// InjectFaults installs the fault hooks. Not safe to call concurrently
// with puts; intended for test and bench setup.
func (b *FileBlobs) InjectFaults(h BlobFaultHooks) { b.hooks = h }

// OpenFileBlobs opens (creating if needed) a blob directory. With fsync,
// blob files are synced before the rename that publishes them, making
// them durable against power loss like an fsync'd WAL record.
func OpenFileBlobs(dir string, fsync bool) (*FileBlobs, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating blob dir: %w", err)
	}
	return &FileBlobs{dir: dir, fsync: fsync}, nil
}

// Dir returns the blob directory.
func (b *FileBlobs) Dir() string { return b.dir }

// path maps a hash to its blob file. Hex encoding keeps arbitrary hash
// bytes path-safe.
func (b *FileBlobs) path(hash []byte) string {
	return filepath.Join(b.dir, hex.EncodeToString(hash))
}

// PutBlob stores data under hash. An existing blob with the same hash is
// left untouched (content addressing makes overwrites meaningless), so
// re-uploads of shared chunks cost one stat. Concurrent puts of the same
// hash are safe: each writes its own temp file and the rename is atomic.
func (b *FileBlobs) PutBlob(hash, data []byte) error {
	if len(hash) == 0 || len(hash) > 64 {
		return fmt.Errorf("store: blob hash of %d bytes out of range", len(hash))
	}
	dst := b.path(hash)
	if _, err := os.Stat(dst); err == nil {
		return nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		// A stat failure that is NOT "absent" (permissions, I/O error)
		// must not fall through into the write path as if the blob were
		// simply new — surface it so the caller (and any failover layer
		// above) can treat the backend as faulty.
		return fmt.Errorf("store: stat blob: %w", err)
	}
	tmp, err := os.CreateTemp(b.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: blob temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("store: writing blob: %w", err)
	}
	if h := b.hooks.BeforeSync; h != nil {
		if err := h(); err != nil {
			return fmt.Errorf("store: syncing blob: %w", err)
		}
	}
	if b.fsync {
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("store: syncing blob: %w", err)
		}
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		_ = os.Remove(name)
		return fmt.Errorf("store: closing blob: %w", err)
	}
	tmp = nil
	if h := b.hooks.BeforeRename; h != nil {
		if err := h(); err != nil {
			_ = os.Remove(name)
			return fmt.Errorf("store: publishing blob: %w", err)
		}
	}
	if err := os.Rename(name, dst); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("store: publishing blob: %w", err)
	}
	if b.fsync {
		// The rename's directory entry must reach the disk before the
		// caller commits a root record referencing this blob; without
		// the directory sync a power loss could recover a WAL-durable
		// root whose chunks vanished.
		if err := syncDir(b.dir); err != nil {
			return fmt.Errorf("store: syncing blob dir: %w", err)
		}
	}
	return nil
}

// GetBlob reads the blob stored under hash. A missing blob returns an
// error wrapping fs.ErrNotExist, matching the transport.BlobStore
// contract.
func (b *FileBlobs) GetBlob(hash []byte) ([]byte, error) {
	data, err := os.ReadFile(b.path(hash))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("store: blob %x: %w", hash, fs.ErrNotExist)
		}
		return nil, fmt.Errorf("store: reading blob: %w", err)
	}
	return data, nil
}

// Len counts the stored blobs (excluding in-flight temp files). Exposed
// for tests and introspection.
func (b *FileBlobs) Len() (int, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) != ".tmp" {
			n++
		}
	}
	return n, nil
}
