package hotpathalloc_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"faust/tools/faustlint/analyzers/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpathalloc.Analyzer, "a")
}
