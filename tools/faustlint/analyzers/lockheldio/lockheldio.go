// Package lockheldio flags calls that can block on network or disk I/O
// made while a sync.Mutex or sync.RWMutex is held.
//
// It machine-checks the locking discipline PR 5 established for the
// fail-aware stack: state locks guard in-memory structures and pointer
// swaps only ("wmu serializes writers; reads traverse immutable
// snapshots") — an fsync or a network round trip under a state lock
// turns every reader into a tail-latency hostage of the slowest disk
// or peer.
//
// Blocking calls are recognized by a curated matcher set:
//
//   - any function or method of package net (conn reads/writes, dials)
//   - (*os.File).Sync — fsync, the expensive disk barrier
//   - methods named PutBlob or GetBlob (the transport.BlobStore and
//     BlobChannel contract)
//   - methods named Send or Recv on interface types or on types
//     declared in a transport package
//
// Locks whose final name marks them as I/O-serialization locks — wmu,
// flushMu, writeMu, connMu, sendMu, ioMu — are exempt: serializing
// writers across the I/O is their entire purpose, and naming them so is
// part of the checked convention. A state lock that must legitimately
// span I/O can be annotated with //faustlint:ignore lockheldio <why>.
//
// The analysis is intraprocedural and statement-ordered: within each
// function body it tracks Lock/RLock acquisitions per lock expression,
// treats a deferred Unlock as holding the lock for the rest of the
// function, analyzes branches with a copy of the held set (joining
// conservatively: a lock is released after a branch only if every
// rejoining path released it), and reports any blocking call made while
// a non-exempt lock is held.
package lockheldio

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"faust/tools/faustlint/internal/directive"
)

// Analyzer is the lockheldio analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockheldio",
	Doc:      "flags network/disk I/O performed while a state mutex is held (PR 5: locks guard memory, not I/O)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var _ = directive.Register(Analyzer.Name)

// serializationLock matches mutex names whose convention marks them as
// I/O-serialization locks, exempt from this check.
var serializationLock = regexp.MustCompile(`(?i)^(w|write|flush|conn|send|io)mu$`)

func run(pass *analysis.Pass) (interface{}, error) {
	dp := directive.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		a := &funcAnalysis{pass: pass, dp: dp}
		a.block(body, newHeldSet())
	})
	return nil, nil
}

// heldSet maps a lock expression's printed form ("b.mu") to the
// position where it was acquired.
type heldSet map[string]token.Pos

func newHeldSet() heldSet { return heldSet{} }

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both sets (conservative join after
// branching control flow).
func (h heldSet) intersect(other heldSet) heldSet {
	out := newHeldSet()
	for k, v := range h {
		if _, ok := other[k]; ok {
			out[k] = v
		}
	}
	return out
}

type funcAnalysis struct {
	pass *analysis.Pass
	dp   *directive.Pass
}

// block runs the statement-ordered analysis over a statement list and
// returns the held set at its end. Nested function literals are handled
// by the top-level Preorder walk, not here.
func (a *funcAnalysis) block(b *ast.BlockStmt, held heldSet) heldSet {
	return a.stmts(b.List, held)
}

func (a *funcAnalysis) stmts(list []ast.Stmt, held heldSet) heldSet {
	for _, s := range list {
		held = a.stmt(s, held)
	}
	return held
}

// terminates reports whether a statement list ends by leaving the
// enclosing flow (return, panic-ish call, goto, break, continue).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (a *funcAnalysis) stmt(s ast.Stmt, held heldSet) heldSet {
	switch st := s.(type) {
	case *ast.ExprStmt:
		a.checkExpr(st.X, held)
		held = a.applyLockOps(st.X, held, false)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; a deferred Lock (rare) is ignored. Blocking calls
		// inside the deferred call run at return time, when the lock may
		// already be released — skip them.
		held = a.applyLockOps(st.Call, held, true)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			a.checkExpr(rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			a.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			held = a.stmt(st.Init, held)
		}
		a.checkExpr(st.Cond, held)
		thenOut := a.block(st.Body, held.clone())
		thenTerm := terminates(st.Body.List)
		// With no else, the fall-through path carries the pre-if set.
		elseOut, elseTerm := held, false
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseOut = a.block(e, held.clone())
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseOut = a.stmt(e, held.clone())
		}
		// Join only the paths that rejoin the flow after the if: a
		// branch that returns/panics contributes nothing.
		switch {
		case thenTerm && elseTerm:
			return held
		case thenTerm:
			return elseOut
		case elseTerm:
			return thenOut
		default:
			return thenOut.intersect(elseOut)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = a.stmt(st.Init, held)
		}
		if st.Cond != nil {
			a.checkExpr(st.Cond, held)
		}
		a.block(st.Body, held.clone())
		return held
	case *ast.RangeStmt:
		a.checkExpr(st.X, held)
		a.block(st.Body, held.clone())
		return held
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = a.stmt(st.Init, held)
		}
		if st.Tag != nil {
			a.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.stmts(cc.Body, held.clone())
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.stmts(cc.Body, held.clone())
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				a.stmts(cc.Body, held.clone())
			}
		}
		return held
	case *ast.BlockStmt:
		return a.block(st, held)
	case *ast.GoStmt:
		// The goroutine runs concurrently; the spawning function's locks
		// are not held inside it (and FuncLit bodies are analyzed
		// separately).
	case *ast.LabeledStmt:
		return a.stmt(st.Stmt, held)
	}
	return held
}

// applyLockOps updates the held set for Lock/Unlock calls in expr.
// When deferred, Unlocks are ignored (the lock stays held until
// return) and Locks are ignored too.
func (a *funcAnalysis) applyLockOps(expr ast.Expr, held heldSet, deferred bool) heldSet {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return held
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return held
	}
	if !a.isMutexReceiver(sel.X) {
		return held
	}
	key := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if !deferred {
			held[key] = call.Pos()
		}
	case "Unlock", "RUnlock":
		if !deferred {
			delete(held, key)
		}
	}
	return held
}

// isMutexReceiver reports whether expr has type sync.Mutex/sync.RWMutex
// (possibly behind a pointer).
func (a *funcAnalysis) isMutexReceiver(expr ast.Expr) bool {
	tv, ok := a.pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockName extracts the final identifier of a lock key ("b.mu" → "mu").
func lockName(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// checkExpr reports blocking calls inside expr while non-exempt locks
// are held. It walks nested expressions but not function literals.
func (a *funcAnalysis) checkExpr(expr ast.Expr, held heldSet) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what := a.blockingCall(call)
		if what == "" {
			return true
		}
		for key, lockPos := range held {
			if serializationLock.MatchString(lockName(key)) {
				continue
			}
			a.dp.Reportf(call.Pos(),
				"%s can block on I/O while mutex %s is held (locked at %s); narrow the critical section or use a dedicated wmu-style serialization lock",
				what, key, a.pass.Fset.Position(lockPos))
		}
		return true
	})
}

// blockingCall classifies a call as possibly blocking on network or
// disk, returning a description or "".
func (a *funcAnalysis) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := a.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	pkg := fn.Pkg()
	pkgPath := ""
	if pkg != nil {
		pkgPath = pkg.Path()
	}

	// Anything from package net: conn reads/writes, dials, resolvers.
	if pkgPath == "net" {
		return "net." + recvPrefix(fn) + name
	}
	// (*os.File).Sync — the disk barrier.
	if pkgPath == "os" && name == "Sync" && recvNamed(fn) == "File" {
		return "(*os.File).Sync"
	}
	// The blob storage contract.
	if name == "PutBlob" || name == "GetBlob" {
		return name
	}
	// Transport sends/receives: interface methods named Send/Recv, or
	// concrete methods of a transport package.
	if name == "Send" || name == "Recv" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				return name
			}
		}
		if strings.Contains(pkgPath, "transport") {
			return name
		}
	}
	return ""
}

// recvNamed returns the name of a method's receiver type, "" for
// plain functions.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func recvPrefix(fn *types.Func) string {
	if n := recvNamed(fn); n != "" {
		return n + "."
	}
	return ""
}
