// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	x := f() // want `regexp` `another regexp`
//
// Each quoted string (Go-quoted or backquoted) is a regular expression
// that must match the message of one diagnostic reported on that line;
// diagnostics with no matching expectation, and expectations with no
// matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/internal/faustdrive"
	"golang.org/x/tools/internal/faustload"
)

// TestData returns the abs path of the testdata directory next to the
// caller's test file.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: no caller information")
	}
	dir, err := filepath.Abs(filepath.Join(filepath.Dir(file), "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// Testing is the subset of *testing.T used here.
type Testing interface {
	Errorf(format string, args ...interface{})
}

// Result holds the outcome of one analyzer run, for tests that inspect
// diagnostics beyond want-comment matching.
type Result struct {
	Pass        *analysis.Pass
	Diagnostics []analysis.Diagnostic
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	source  string
	matched bool
}

// Run loads each fixture package from dir/src (GOPATH-style), applies
// the analyzer, and checks diagnostics against the fixtures' // want
// comments.
func Run(t Testing, dir string, a *analysis.Analyzer, patterns ...string) []*Result {
	pkgs, err := faustload.LoadTree(dir, patterns)
	if err != nil {
		t.Errorf("analysistest: loading fixtures: %v", err)
		return nil
	}
	var results []*Result
	for _, pkg := range pkgs {
		expects, err := collectExpectations(pkg)
		if err != nil {
			t.Errorf("analysistest: %v", err)
			continue
		}
		findings, err := faustdrive.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("analysistest: %v", err)
			continue
		}
		res := &Result{}
		for _, f := range findings {
			res.Diagnostics = append(res.Diagnostics, f.Diagnostic)
			pos := pkg.Fset.Position(f.Diagnostic.Pos)
			if !consume(expects, pos, f.Diagnostic.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, f.Diagnostic.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.source)
			}
		}
		results = append(results, res)
	}
	return results
}

func consume(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectExpectations parses the // want comments of a fixture package.
func collectExpectations(pkg *faustload.Package) ([]*expectation, error) {
	var expects []*expectation
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, p, err)
					}
					expects = append(expects, &expectation{
						file:   pos.Filename,
						line:   pos.Line,
						re:     re,
						source: p,
					})
				}
			}
		}
	}
	return expects, nil
}

// parseWant splits a want payload into its quoted regexp strings.
func parseWant(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			out = append(out, s[1:1+end])
			s = s[2+end:]
		case '"':
			// Find the closing quote, honoring escapes, then unquote.
			i := 1
			for i < len(s) {
				if s[i] == '\\' {
					i += 2
					continue
				}
				if s[i] == '"' {
					break
				}
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated quoted want pattern")
			}
			q, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", s[:i+1], err)
			}
			out = append(out, q)
			s = s[i+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
	}
}
