// Fixture stand-in for the project's internal/obs package.
package obs

// EventKind names a protocol event type.
type EventKind string

// Registered kinds.
const (
	EventFork     EventKind = "fork-detected"
	EventFail     EventKind = "failure"
	EventRollback EventKind = "rollback-detected"
)

// Event is one recorded protocol event.
type Event struct {
	Kind   EventKind
	Client int
	Shard  string
	Detail string
}

// EventLog is an append-only protocol event log.
type EventLog struct {
	events []Event
}

// Record appends one event.
func (l *EventLog) Record(kind EventKind, client int, shard, detail string) Event {
	e := Event{Kind: kind, Client: client, Shard: shard, Detail: detail}
	l.events = append(l.events, e)
	return e
}
