package transport

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/wire"
)

// Network is an in-memory star network connecting n clients to one server
// core over reliable FIFO links. A single dispatcher goroutine delivers
// client messages to the core one at a time in arrival order, exactly as
// Algorithm 2 assumes.
type Network struct {
	n        int
	core     ServerCore
	inbox    *envelopeQueue
	outboxes []*queue
	links    []*memoryLink

	metrics bool
	stats   Stats

	blobs BlobStore // nil = no bulk channel

	delayMax  time.Duration
	delayRand *rand.Rand
	delayMu   sync.Mutex

	wg       sync.WaitGroup
	stopped  atomic.Bool
	dropped  atomic.Int64 // messages discarded after Stop, for tests
	pumpGate sync.WaitGroup
}

// Option configures a Network.
type Option func(*Network)

// WithMetrics enables message counting and size accounting. Sizes are
// computed with the canonical codec, so in-memory runs report the same
// bytes a TCP deployment would send.
func WithMetrics() Option {
	return func(nw *Network) { nw.metrics = true }
}

// WithBlobStore attaches a bulk blob store to the network. Clients reach
// it through Network.BlobChannel; blob transfers run concurrently with
// the dispatcher, exactly as the TCP transport's blob connections do.
func WithBlobStore(bs BlobStore) Option {
	return func(nw *Network) { nw.blobs = bs }
}

// WithDelay makes every client->server message wait a pseudo-random delay
// up to max before entering the server inbox. Per-client FIFO order is
// preserved (each client has its own delay pump); cross-client
// interleaving becomes nondeterministic, exercising asynchrony.
func WithDelay(max time.Duration, seed int64) Option {
	return func(nw *Network) {
		nw.delayMax = max
		nw.delayRand = rand.New(rand.NewSource(seed))
	}
}

// envelopeQueue is an unbounded FIFO of envelopes with blocking pop.
type envelopeQueue = fifo[envelope]

func newEnvelopeQueue() *envelopeQueue { return newFIFO[envelope]() }

// memoryLink is the client-side endpoint of an in-memory FIFO channel.
type memoryLink struct {
	nw     *Network
	id     int
	in     *queue // server -> client
	closed atomic.Bool
	// sendQ serializes this client's messages through the optional delay
	// pump so per-client FIFO order survives randomized delays.
	sendQ *envelopeQueue
}

var _ Link = (*memoryLink)(nil)

// NewNetwork creates an in-memory network with n client links attached to
// the given server core and starts the dispatcher.
func NewNetwork(n int, core ServerCore, opts ...Option) *Network {
	nw := &Network{
		n:        n,
		core:     core,
		inbox:    newEnvelopeQueue(),
		outboxes: make([]*queue, n),
		links:    make([]*memoryLink, n),
	}
	for _, o := range opts {
		o(nw)
	}
	for i := 0; i < n; i++ {
		nw.outboxes[i] = newQueue()
		nw.links[i] = &memoryLink{nw: nw, id: i, in: nw.outboxes[i]}
		if nw.delayMax > 0 {
			l := nw.links[i]
			l.sendQ = newEnvelopeQueue()
			nw.pumpGate.Add(1)
			go nw.delayPump(l)
		}
	}
	if gc, ok := core.(GenericCore); ok {
		gc.AttachPusher(nw.push)
	}
	nw.wg.Add(1)
	go nw.dispatch()
	return nw
}

// push delivers a core-initiated message to client `to`, with metrics.
func (nw *Network) push(to int, m wire.Message) error {
	if to < 0 || to >= nw.n {
		return ErrClosed
	}
	if nw.metrics {
		atomic.AddInt64(&nw.stats.ServerToClientMsgs, 1)
		atomic.AddInt64(&nw.stats.ServerToClientBytes, int64(wire.EncodedSize(m)))
	}
	return nw.outboxes[to].push(m)
}

// delayPump moves one client's messages into the server inbox after a
// random delay, preserving that client's FIFO order.
func (nw *Network) delayPump(l *memoryLink) {
	defer nw.pumpGate.Done()
	for {
		e, ok := l.sendQ.pop()
		if !ok {
			return
		}
		nw.delayMu.Lock()
		d := time.Duration(nw.delayRand.Int63n(int64(nw.delayMax) + 1))
		nw.delayMu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		if !e.enq.IsZero() {
			// The queue span measures inbox wait, not simulated network
			// delay: restamp after the delay has elapsed.
			e.enq = time.Now()
		}
		if !nw.inbox.push(e) {
			return
		}
	}
}

// dispatch is the server event loop: it pops arriving messages one at a
// time and runs the core's handler atomically.
func (nw *Network) dispatch() {
	defer nw.wg.Done()
	for {
		e, ok := nw.inbox.pop()
		if !ok {
			return
		}
		switch m := e.msg.(type) {
		case *wire.Submit:
			ctx, h := joinWireTrace(context.Background(), m.Inv.Trace, true, spanSrvSubmit)
			trace.Event(ctx, spanQueue, e.enq)
			start := obs.StartTimer()
			reply := nw.core.HandleSubmit(ctx, e.from, m)
			tmSubmitNs.ObserveSinceExemplar(start, exemplarID(m.Inv.Trace))
			h.End()
			if reply == nil {
				continue // Byzantine silence: client stays blocked
			}
			if nw.metrics {
				atomic.AddInt64(&nw.stats.ServerToClientMsgs, 1)
				atomic.AddInt64(&nw.stats.ServerToClientBytes, int64(wire.EncodedSize(reply)))
			}
			if err := nw.outboxes[e.from].push(reply); err != nil {
				nw.dropped.Add(1)
			}
		case *wire.Commit:
			start := obs.StartTimer()
			nw.core.HandleCommit(context.Background(), e.from, m)
			tmCommitNs.ObserveSince(start)
		default:
			if gc, ok := nw.core.(GenericCore); ok {
				gc.HandleMessage(e.from, e.msg)
				continue
			}
			// Unknown message kinds at the server are dropped; a correct
			// client never sends them.
			nw.dropped.Add(1)
		}
	}
}

// ClientLink returns the link endpoint for client i.
func (nw *Network) ClientLink(i int) Link { return nw.links[i] }

// Blobs returns the network's blob store, nil when none is attached.
func (nw *Network) Blobs() BlobStore { return nw.blobs }

// BlobChannel opens a bulk blob channel into the network's blob store.
// It fails when the network was created without WithBlobStore.
func (nw *Network) BlobChannel() (BlobChannel, error) {
	if nw.blobs == nil {
		return nil, ErrNoBlobStore
	}
	return &memBlobChannel{nw: nw}, nil
}

// countBlob accounts one blob transfer in the traffic counters.
// toServer is true for puts (client->server direction).
func (nw *Network) countBlob(toServer bool, bytes int) {
	if toServer {
		atomic.AddInt64(&nw.stats.ClientToServerMsgs, 1)
		atomic.AddInt64(&nw.stats.ClientToServerBytes, int64(bytes))
		return
	}
	atomic.AddInt64(&nw.stats.ServerToClientMsgs, 1)
	atomic.AddInt64(&nw.stats.ServerToClientBytes, int64(bytes))
}

// Stats returns a snapshot of the traffic counters. Valid only when the
// network was created WithMetrics.
func (nw *Network) Stats() Stats {
	return Stats{
		ClientToServerMsgs:  atomic.LoadInt64(&nw.stats.ClientToServerMsgs),
		ClientToServerBytes: atomic.LoadInt64(&nw.stats.ClientToServerBytes),
		ServerToClientMsgs:  atomic.LoadInt64(&nw.stats.ServerToClientMsgs),
		ServerToClientBytes: atomic.LoadInt64(&nw.stats.ServerToClientBytes),
	}
}

// Stop shuts the network down: all links close, blocked Recv calls return
// ErrClosed, and the dispatcher exits after draining nothing further.
// Stop is idempotent.
func (nw *Network) Stop() {
	if nw.stopped.Swap(true) {
		return
	}
	for _, l := range nw.links {
		l.closed.Store(true)
		if l.sendQ != nil {
			l.sendQ.close()
		}
	}
	nw.pumpGate.Wait()
	nw.inbox.close()
	nw.wg.Wait()
	for _, q := range nw.outboxes {
		q.close()
	}
}

// Send enqueues a message toward the server.
func (l *memoryLink) Send(m wire.Message) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if l.nw.metrics {
		atomic.AddInt64(&l.nw.stats.ClientToServerMsgs, 1)
		atomic.AddInt64(&l.nw.stats.ClientToServerBytes, int64(wire.EncodedSize(m)))
	}
	e := envelope{from: l.id, msg: m, enq: traceStamp(m)}
	if l.sendQ != nil {
		if !l.sendQ.push(e) {
			return ErrClosed
		}
		return nil
	}
	if !l.nw.inbox.push(e) {
		return ErrClosed
	}
	return nil
}

// Recv blocks for the next server message.
func (l *memoryLink) Recv() (wire.Message, error) {
	return l.in.pop()
}

// Close closes only this client's endpoint; the rest of the network keeps
// running. Used to simulate client crashes.
func (l *memoryLink) Close() error {
	l.closed.Store(true)
	l.in.close()
	if l.sendQ != nil {
		l.sendQ.close()
	}
	return nil
}
