package ustor

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/wire"
)

// TestPropertySnapshotRestoreRoundTrip drives random operation sequences
// against a server, exports its state, restores it into a fresh server and
// checks for divergence two ways: the re-exported state must be
// bit-identical, and the original clients — rebound to the restored server
// — must complete further random operations without any fail signal. The
// clients' checks of Algorithm 1 are the strictest divergence detector
// available: any MEM/SVER/L/P discrepancy the restore introduced would
// surface as a detected "server" fault.
func TestPropertySnapshotRestoreRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			const n, ops = 3, 30
			rng := rand.New(rand.NewSource(seed))
			ring, signers := crypto.NewTestKeyring(n, seed)
			srv := NewServer(n)
			nw := transport.NewNetwork(n, srv)
			clients := make([]*Client, n)
			for i := range clients {
				clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i))
			}

			runOps := func(count int) {
				for i := 0; i < count; i++ {
					c := clients[rng.Intn(n)]
					if rng.Intn(2) == 0 {
						if err := c.Write([]byte(fmt.Sprintf("s%d-%d", seed, i))); err != nil {
							t.Fatalf("write: %v", err)
						}
					} else if _, err := c.Read(rng.Intn(n)); err != nil {
						t.Fatalf("read: %v", err)
					}
				}
			}
			runOps(ops)
			nw.Stop() // quiesce so async COMMITs are all applied

			blob := srv.ExportState()

			// Restored state re-exports identically.
			restored := NewServer(n)
			if err := restored.RestoreState(blob); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if !bytes.Equal(restored.ExportState(), blob) {
				t.Fatal("export -> restore -> export is not the identity")
			}
			if restored.PendingOps() != srv.PendingOps() {
				t.Fatalf("pending ops diverge: %d != %d", restored.PendingOps(), srv.PendingOps())
			}

			// Restoring into the wrong dimension must be rejected.
			if err := NewServer(n + 1).RestoreState(blob); err == nil {
				t.Fatal("snapshot for n clients restored into n+1 server")
			}

			// The restored server is indistinguishable to the clients.
			nw2 := transport.NewNetwork(n, restored)
			defer nw2.Stop()
			for i, c := range clients {
				c.Rebind(nw2.ClientLink(i))
			}
			runOps(ops)
			for i, c := range clients {
				if failed, reason := c.Failed(); failed {
					t.Fatalf("client %d detected divergence after restore: %v", i, reason)
				}
			}
			// Every register still reads back a verifiable value.
			for j := 0; j < n; j++ {
				if _, err := clients[0].Read(j); err != nil {
					t.Fatalf("final read of register %d: %v", j, err)
				}
			}
		})
	}
}

// TestRestoreStateRejectsGarbage covers the defensive decoding paths.
func TestRestoreStateRejectsGarbage(t *testing.T) {
	srv := NewServer(2)
	for _, data := range [][]byte{nil, {}, {1, 2, 3}, bytes.Repeat([]byte{0xff}, 64)} {
		if err := srv.RestoreState(data); err == nil {
			t.Fatalf("garbage state %v accepted", data)
		}
	}
	// A valid restore leaves the server operational.
	blob := srv.ExportState()
	if err := srv.RestoreState(blob); err != nil {
		t.Fatalf("self-restore: %v", err)
	}
	if r := srv.HandleSubmit(context.Background(), 0, &wire.Submit{
		T:   1,
		Inv: wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0},
	}); r == nil {
		t.Fatal("server dead after restore")
	}
}
