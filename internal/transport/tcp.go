package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"faust/internal/wire"
)

// TCP framing: every message is a 4-byte big-endian length followed by the
// canonical wire encoding. The first frame a client sends is a handshake
// carrying only its 4-byte client ID.
//
// The transport deliberately uses no TLS: the protocol's guarantees come
// from client-side signatures and are designed for an untrusted server —
// an attacker on the wire is no stronger than the server itself. Deploy
// behind TLS anyway if confidentiality matters; the framing is oblivious.

const maxFrame = 1 << 24 // 16 MiB per message is far beyond protocol needs

func writeFrame(conn net.Conn, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// TCPServer hosts a ServerCore on a TCP listener. Message handling is
// serialized through a single dispatcher, preserving the atomic event
// handler semantics of Algorithm 2 across connections.
type TCPServer struct {
	core ServerCore
	ln   net.Listener

	mu    sync.Mutex
	conns map[int]net.Conn
	wg    sync.WaitGroup
	inbox *envelopeQueue
	done  chan struct{}
}

// ServeTCP starts serving core on ln. It returns immediately; use Stop to
// shut down.
func ServeTCP(ln net.Listener, core ServerCore) *TCPServer {
	s := &TCPServer{
		core:  core,
		ln:    ln,
		conns: make(map[int]net.Conn),
		inbox: newEnvelopeQueue(),
		done:  make(chan struct{}),
	}
	if gc, ok := core.(GenericCore); ok {
		gc.AttachPusher(s.pushTo)
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.dispatch()
	return s
}

// Addr returns the listener address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Stop closes the listener and all connections and waits for goroutines.
func (s *TCPServer) Stop() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	_ = s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.inbox.close()
	s.wg.Wait()
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	hello, err := readFrame(conn)
	if err != nil || len(hello) != 4 {
		_ = conn.Close()
		return
	}
	id := int(binary.BigEndian.Uint32(hello))
	s.mu.Lock()
	if old, dup := s.conns[id]; dup {
		_ = old.Close()
	}
	s.conns[id] = conn
	s.mu.Unlock()

	for {
		payload, err := readFrame(conn)
		if err != nil {
			_ = conn.Close()
			return
		}
		msg, err := wire.Decode(payload)
		if err != nil {
			_ = conn.Close()
			return
		}
		if !s.inbox.push(envelope{from: id, msg: msg}) {
			return
		}
	}
}

func (s *TCPServer) dispatch() {
	defer s.wg.Done()
	for {
		e, ok := s.inbox.pop()
		if !ok {
			return
		}
		switch m := e.msg.(type) {
		case *wire.Submit:
			reply := s.core.HandleSubmit(e.from, m)
			if reply != nil {
				_ = s.pushTo(e.from, reply)
			}
		case *wire.Commit:
			s.core.HandleCommit(e.from, m)
		default:
			if gc, ok := s.core.(GenericCore); ok {
				gc.HandleMessage(e.from, e.msg)
			}
		}
	}
}

func (s *TCPServer) pushTo(to int, m wire.Message) error {
	s.mu.Lock()
	conn, found := s.conns[to]
	s.mu.Unlock()
	if !found {
		return fmt.Errorf("transport: client %d not connected", to)
	}
	return writeFrame(conn, wire.Encode(m))
}

// tcpLink is the client-side Link over one TCP connection.
type tcpLink struct {
	conn net.Conn
	wmu  sync.Mutex
	rmu  sync.Mutex
}

var _ Link = (*tcpLink)(nil)

// DialTCP connects client id to a TCPServer at addr and performs the
// handshake.
func DialTCP(addr string, id int) (Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(id))
	if err := writeFrame(conn, hello[:]); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return &tcpLink{conn: conn}, nil
}

// Send implements Link.
func (l *tcpLink) Send(m wire.Message) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := writeFrame(l.conn, wire.Encode(m)); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Recv implements Link.
func (l *tcpLink) Recv() (wire.Message, error) {
	l.rmu.Lock()
	defer l.rmu.Unlock()
	payload, err := readFrame(l.conn)
	if err != nil {
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	m, err := wire.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return m, nil
}

// Close implements Link.
func (l *tcpLink) Close() error { return l.conn.Close() }
