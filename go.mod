module faust

go 1.22
