// Package obsevent enforces the observability discipline from PR 6:
// failure detection must be visible in the protocol event log.
//
// Two rules:
//
//  1. Detection sites record. A function that constructs a
//     DetectionError or ForkError composite literal must, in the same
//     function, either call an EventLog Record method or delegate to a
//     fail helper (a callee whose name starts with "fail" — the
//     fail/failWith pattern, where the helper records exactly once).
//     A detection that never reaches the event log is invisible to
//     operators and to the /metrics endpoint, which defeats the point
//     of fail-awareness: the paper's guarantee is that clients DETECT
//     AND REPORT forks, not merely halt.
//
//  2. Event kinds are registered constants. The kind argument of
//     EventLog.Record must not be a string literal or an
//     EventKind("...") conversion — ad-hoc kind strings drift from the
//     registered obs.Event* constants and silently fragment the
//     event-kind cardinality that dashboards and tests key on.
//     Variables and parameters of type EventKind pass through
//     unflagged (kind plumbing is fine; minting new kinds inline is
//     not).
package obsevent

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"faust/tools/faustlint/internal/directive"
)

// Analyzer is the obsevent analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obsevent",
	Doc:  "detection sites must record an obs event; event kinds must be registered constants",
	Run:  run,
}

var _ = directive.Register(Analyzer.Name)

func run(pass *analysis.Pass) (interface{}, error) {
	dp := directive.New(pass)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(dp, pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(dp *directive.Pass, pass *analysis.Pass, fd *ast.FuncDecl) {
	var detections []*ast.CompositeLit
	recordsOrDelegates := false

	// FuncLits are deliberately included: the failOnce.Do(func() {...})
	// idiom records inside a closure, and that counts.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			if isDetectionType(pass, e) {
				detections = append(detections, e)
			}
		case *ast.CallExpr:
			if isEventLogRecord(pass, e) {
				recordsOrDelegates = true
				checkKindArg(dp, pass, e)
			} else if calleeNameHasPrefix(e, "fail") {
				recordsOrDelegates = true
			}
		}
		return true
	})

	if recordsOrDelegates {
		return
	}
	for _, lit := range detections {
		dp.Reportf(lit.Pos(),
			"%s constructed in %s without recording an obs event; detection sites must call EventLog.Record or delegate to a fail helper (fail-awareness means detect AND report)",
			typeName(pass, lit), fd.Name.Name)
	}
}

// checkKindArg flags Record calls whose kind argument mints an event
// kind inline instead of naming a registered constant.
func checkKindArg(dp *directive.Pass, pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	switch e := arg.(type) {
	case *ast.BasicLit:
		dp.Reportf(arg.Pos(),
			"event kind %s is a raw string literal; use a registered obs.Event* constant so kinds stay enumerable", e.Value)
	case *ast.CallExpr:
		// EventKind("...") conversion.
		tv, ok := pass.TypesInfo.Types[e.Fun]
		if ok && tv.IsType() && strings.HasSuffix(tv.Type.String(), "EventKind") {
			dp.Reportf(arg.Pos(),
				"event kind minted inline with an EventKind conversion; use a registered obs.Event* constant so kinds stay enumerable")
		}
	}
}

// isDetectionType reports whether lit builds a DetectionError or
// ForkError value.
func isDetectionType(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	name := typeName(pass, lit)
	return name == "DetectionError" || name == "ForkError"
}

func typeName(pass *analysis.Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isEventLogRecord reports whether call invokes the Record method of
// the obs EventLog.
func isEventLogRecord(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Record" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/obs") || fn.Pkg().Path() == "obs"
}

// calleeNameHasPrefix reports whether the called function's name starts
// with prefix (fail, failWith, ...).
func calleeNameHasPrefix(call *ast.CallExpr, prefix string) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.HasPrefix(f.Name, prefix)
	case *ast.SelectorExpr:
		return strings.HasPrefix(f.Sel.Name, prefix)
	}
	return false
}
