package offline

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"faust/internal/wire"
)

// TCPMesh is the networked implementation of the offline client-to-client
// channel: every client listens on its own address and sends directly to
// its peers. Sends to unreachable peers are queued and retried in the
// background, which realizes the model's reliable eventual delivery —
// messages arrive even if sender and recipient are never online at the
// same time (as long as the sender's queue survives).
//
// Framing: 4-byte big-endian length, then a 4-byte sender ID, then the
// canonical wire encoding.
type TCPMesh struct {
	id    int
	ln    net.Listener
	peers map[int]string

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Msg
	pending map[int][][]byte // queued frames per unreachable peer
	closed  bool

	retry time.Duration
	wg    sync.WaitGroup
	done  chan struct{}
}

var _ Channel = (*TCPMesh)(nil)

// ListenTCP creates the mesh endpoint for client id, listening on
// listenAddr, with peers mapping every other client ID to its address.
// retry is the interval for redelivering queued messages (0 means 500ms).
func ListenTCP(id int, listenAddr string, peers map[int]string, retry time.Duration) (*TCPMesh, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("offline: listen %s: %w", listenAddr, err)
	}
	if retry <= 0 {
		retry = 500 * time.Millisecond
	}
	m := &TCPMesh{
		id:      id,
		ln:      ln,
		peers:   peers,
		pending: make(map[int][][]byte),
		retry:   retry,
		done:    make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(2)
	go m.acceptLoop()
	go m.retryLoop()
	return m, nil
}

// Addr returns the listening address.
func (m *TCPMesh) Addr() net.Addr { return m.ln.Addr() }

// ID implements Channel.
func (m *TCPMesh) ID() int { return m.id }

// Send implements Channel: it attempts direct delivery and falls back to
// queue-and-retry.
func (m *TCPMesh) Send(to int, msg wire.Message) error {
	if to == m.id {
		return fmt.Errorf("offline: client %d cannot send to itself", m.id)
	}
	addr, known := m.peers[to]
	if !known {
		return fmt.Errorf("offline: no address for client %d", to)
	}
	frame := m.frame(msg)
	if err := deliverTCP(addr, frame); err != nil {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return ErrClosed
		}
		m.pending[to] = append(m.pending[to], frame)
		m.mu.Unlock()
	}
	return nil
}

// Broadcast implements Channel.
func (m *TCPMesh) Broadcast(msg wire.Message) error {
	var firstErr error
	for to := range m.peers {
		if to == m.id {
			continue
		}
		if err := m.Send(to, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Recv implements Channel.
func (m *TCPMesh) Recv() (Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.inbox) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.inbox) == 0 {
		return Msg{}, ErrClosed
	}
	out := m.inbox[0]
	m.inbox[0] = Msg{}
	m.inbox = m.inbox[1:]
	return out, nil
}

// Close implements Channel.
func (m *TCPMesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	close(m.done)
	_ = m.ln.Close()
	m.wg.Wait()
}

func (m *TCPMesh) frame(msg wire.Message) []byte {
	payload := wire.Encode(msg)
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)+4))
	binary.BigEndian.PutUint32(frame[4:], uint32(m.id))
	copy(frame[8:], payload)
	return frame
}

func deliverTCP(addr string, frame []byte) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_, err = conn.Write(frame)
	return err
}

func (m *TCPMesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go m.readConn(conn)
	}
}

func (m *TCPMesh) readConn(conn net.Conn) {
	defer m.wg.Done()
	defer conn.Close()
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < 4 || n > 1<<24 {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		from := int(binary.BigEndian.Uint32(body[:4]))
		msg, err := wire.Decode(body[4:])
		if err != nil {
			continue // a malformed message carries no information
		}
		m.mu.Lock()
		if !m.closed {
			m.inbox = append(m.inbox, Msg{From: from, Body: msg})
			m.cond.Signal()
		}
		m.mu.Unlock()
	}
}

// retryLoop redelivers queued frames, providing eventual delivery to
// peers that were offline.
func (m *TCPMesh) retryLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.retry)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		work := make(map[int][][]byte, len(m.pending))
		for to, frames := range m.pending {
			work[to] = frames
		}
		m.pending = make(map[int][][]byte)
		m.mu.Unlock()

		for to, frames := range work {
			addr := m.peers[to]
			var failed [][]byte
			for _, f := range frames {
				if err := deliverTCP(addr, f); err != nil {
					failed = append(failed, f)
				}
			}
			if len(failed) > 0 {
				m.mu.Lock()
				if !m.closed {
					m.pending[to] = append(failed, m.pending[to]...)
				}
				m.mu.Unlock()
			}
		}
	}
}
