package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"testing"

	"faust/internal/crypto"
)

// fakeBlobResolver serves one shared core and, for known shard names, a
// blob store. It stands in for shard.Router (which lives above transport).
type fakeBlobResolver struct {
	core  ServerCore
	blobs map[string]BlobStore
}

func (f *fakeBlobResolver) ResolveShard(string) (ServerCore, error) { return f.core, nil }

func (f *fakeBlobResolver) ResolveBlobs(name string) (BlobStore, error) {
	bs, ok := f.blobs[name]
	if !ok {
		return nil, fmt.Errorf("no blobs for shard %q", name)
	}
	return bs, nil
}

// TestMemBlobChannel exercises the in-memory bulk channel: put/get round
// trip, not-found, and the metrics accounting.
func TestMemBlobChannel(t *testing.T) {
	bs := NewMemBlobs()
	nw := NewNetwork(1, &echoCore{}, WithMetrics(), WithBlobStore(bs))
	defer nw.Stop()

	ch, err := nw.BlobChannel()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 1000)
	hash := crypto.Hash(data)
	if err := ch.PutBlob(context.Background(), hash, data); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := ch.GetBlob(context.Background(), hash)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("blob round trip corrupted the data")
	}
	if _, err := ch.GetBlob(context.Background(), crypto.Hash([]byte("absent"))); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing blob error = %v, want fs.ErrNotExist", err)
	}
	st := nw.Stats()
	if st.ClientToServerMsgs != 1 || st.ServerToClientMsgs != 1 {
		t.Fatalf("blob metrics = %+v, want one message each way", st)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ch.PutBlob(context.Background(), hash, data); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close = %v, want ErrClosed", err)
	}

	// A network without a blob store refuses to open channels.
	nw2 := NewNetwork(1, &echoCore{})
	defer nw2.Stop()
	if _, err := nw2.BlobChannel(); !errors.Is(err, ErrNoBlobStore) {
		t.Fatalf("channel without store = %v, want ErrNoBlobStore", err)
	}
}

// TestMemBlobsUnverified documents the BlobStore contract: stores accept
// whatever bytes the hash claims to address (the server verifies
// nothing); readers must check. Tamper tests depend on this.
func TestMemBlobsUnverified(t *testing.T) {
	bs := NewMemBlobs()
	hash := crypto.Hash([]byte("real content"))
	if err := bs.PutBlob(hash, []byte("something else entirely")); err != nil {
		t.Fatalf("unverified put rejected: %v", err)
	}
	got, err := bs.GetBlob(hash)
	if err != nil || string(got) != "something else entirely" {
		t.Fatalf("got %q, %v", got, err)
	}
}

// TestTCPBlobChannel runs the bulk channel over a real TCP loopback
// server next to protocol connections on the same listener.
func TestTCPBlobChannel(t *testing.T) {
	resolver := &fakeBlobResolver{
		core:  &echoCore{},
		blobs: map[string]BlobStore{DefaultShard: NewMemBlobs()},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCPSharded(ln, resolver)
	defer srv.Stop()

	ch, err := DialTCPBlob(ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	// Several sizes, including empty and larger-than-typical-chunk.
	for _, size := range []int{0, 1, 4096, 1 << 20} {
		data := bytes.Repeat([]byte{byte(size)}, size)
		hash := crypto.Hash(data)
		if err := ch.PutBlob(context.Background(), hash, data); err != nil {
			t.Fatalf("put %d bytes: %v", size, err)
		}
		got, err := ch.GetBlob(context.Background(), hash)
		if err != nil {
			t.Fatalf("get %d bytes: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d-byte blob corrupted in transit", size)
		}
	}
	if _, err := ch.GetBlob(context.Background(), crypto.Hash([]byte("never-stored"))); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing blob error = %v, want fs.ErrNotExist", err)
	}

	// Oversized puts are refused client-side before any bytes move.
	big := make([]byte, MaxBlobSize+1)
	if err := ch.PutBlob(context.Background(), crypto.Hash([]byte("big")), big); err == nil {
		t.Fatal("oversized blob accepted")
	}
}

// TestTCPBlobChannelRejected: unknown shards and resolvers without blob
// support reject the handshake with the reason in the ack.
func TestTCPBlobChannelRejected(t *testing.T) {
	resolver := &fakeBlobResolver{
		core:  &echoCore{},
		blobs: map[string]BlobStore{DefaultShard: NewMemBlobs()},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCPSharded(ln, resolver)
	defer srv.Stop()
	if _, err := DialTCPBlob(ln.Addr().String(), "no-such-shard"); err == nil {
		t.Fatal("blob channel to unknown shard accepted")
	}

	// A resolver without BlobResolver support rejects every blob dial.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := ServeTCP(ln2, &echoCore{})
	defer srv2.Stop()
	if _, err := DialTCPBlob(ln2.Addr().String(), ""); err == nil {
		t.Fatal("blob channel accepted by a server without blob stores")
	}
}

// TestTCPBlobChannelPipelined drives one blob connection from many
// goroutines at once: requests are pipelined (IDs on the wire) and every
// response must reach the caller that issued it, with the right bytes.
func TestTCPBlobChannelPipelined(t *testing.T) {
	resolver := &fakeBlobResolver{
		core:  &echoCore{},
		blobs: map[string]BlobStore{DefaultShard: NewMemBlobs()},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCPSharded(ln, resolver)
	defer srv.Stop()
	ch, err := DialTCPBlob(ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	const workers, perWorker = 8, 40
	blob := func(w, i int) []byte {
		return []byte(fmt.Sprintf("worker-%d-blob-%d-%s", w, i, bytes.Repeat([]byte("x"), i)))
	}
	// Upload everything concurrently over the one connection.
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				data := blob(w, i)
				if err := ch.PutBlob(context.Background(), crypto.Hash(data), data); err != nil {
					errs <- fmt.Errorf("put w%d i%d: %w", w, i, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Fetch everything back concurrently, interleaved with misses, and
	// check each caller got exactly its own bytes.
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				data := blob(w, i)
				got, err := ch.GetBlob(context.Background(), crypto.Hash(data))
				if err != nil {
					errs <- fmt.Errorf("get w%d i%d: %w", w, i, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("w%d i%d: response routed to the wrong request", w, i)
					return
				}
				if _, err := ch.GetBlob(context.Background(), crypto.Hash(blob(w, i+1000))); !errors.Is(err, fs.ErrNotExist) {
					errs <- fmt.Errorf("w%d i%d miss = %v, want fs.ErrNotExist", w, i, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPBlobChannelFailureReleasesInFlight: when the connection dies
// under pipelined requests, every blocked caller is released with an
// error instead of hanging.
func TestTCPBlobChannelFailureReleasesInFlight(t *testing.T) {
	resolver := &fakeBlobResolver{
		core:  &echoCore{},
		blobs: map[string]BlobStore{DefaultShard: NewMemBlobs()},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCPSharded(ln, resolver)
	ch, err := DialTCPBlob(ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	data := []byte("seed")
	if err := ch.PutBlob(context.Background(), crypto.Hash(data), data); err != nil {
		t.Fatal(err)
	}

	const inflight = 16
	done := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := ch.GetBlob(context.Background(), crypto.Hash(data))
			done <- err
		}()
	}
	srv.Stop() // kills the blob connection mid-stream
	for i := 0; i < inflight; i++ {
		<-done // nil (served before the close) or an error; hanging fails the test by timeout
	}
	// The channel is poisoned: every later request fails fast.
	if err := ch.PutBlob(context.Background(), crypto.Hash(data), data); err == nil {
		t.Fatal("put succeeded on a poisoned channel")
	}
}

// TestTCPBlobChannelStop: Stop closes live blob connections so the
// server shuts down promptly and later requests fail.
func TestTCPBlobChannelStop(t *testing.T) {
	resolver := &fakeBlobResolver{
		core:  &echoCore{},
		blobs: map[string]BlobStore{DefaultShard: NewMemBlobs()},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCPSharded(ln, resolver)
	ch, err := DialTCPBlob(ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	data := []byte("alive")
	if err := ch.PutBlob(context.Background(), crypto.Hash(data), data); err != nil {
		t.Fatal(err)
	}
	srv.Stop() // must not hang on the open blob connection
	if err := ch.PutBlob(context.Background(), crypto.Hash(data), data); err == nil {
		t.Fatal("put succeeded after server stop")
	}
}
