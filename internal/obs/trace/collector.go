package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Collector sizing. All bounds are fixed at compile time: the collector
// can never grow past tabSize live traces and ringSize retained ones,
// whatever the load.
const (
	maxSpans = 128  // spans recorded per trace; later claims are dropped
	tabSize  = 1024 // live-trace table slots (power of two)
	tabMask  = tabSize - 1
	probeLen = 16  // open-addressing probe window
	ringSize = 256 // retained traces (power of two)
	ringMask = ringSize - 1

	// staleAfter evicts live entries nothing has touched for this long —
	// traces whose finishing SUBMIT never arrived (pure blob traffic,
	// crashed peers). The sweep runs piggybacked on lookups and exports.
	staleAfter = 5 * time.Second
)

// Span slot states. Claims write the slot's fields and then publish
// with a state store; the seal-time copy reads the state first, so a
// half-written slot is skipped rather than torn.
const (
	slotEmpty uint32 = iota
	slotOpen
	slotDone
)

// sealedRefs marks an entry whose refcount can never be reacquired.
const sealedRefs int32 = -1 << 30

// active is one live trace. Entries are pooled: the refcount protects
// every access, and the seal (the only path that recycles an entry)
// runs exactly once, when the count hits zero after the trace is done.
type active struct {
	c     *Collector
	id    TraceID
	slot  int32 // index in c.tab
	local bool  // rooted in this process (client op) — feeds Last()
	start int64

	keep  atomic.Bool  // retain regardless of duration
	done  atomic.Bool  // no more local roots expected
	refs  atomic.Int32 // open handles; sealedRefs once recycling
	touch atomic.Int64 // latest span timestamp seen
	n     atomic.Int32 // claimed span slots

	state [maxSpans]atomic.Uint32
	spans [maxSpans]Span
}

// acquire takes a reference, failing once the entry is sealing. An idle
// entry (refs 0, not done) is re-acquirable: remote-joined traces sit
// idle between the wire requests of one operation, with no local handle
// holding them open. The CAS races fairly with trySeal's 0→sealedRefs
// claim, so an entry is either re-acquired or sealed, never both.
func (a *active) acquire() bool {
	for {
		r := a.refs.Load()
		if r < 0 {
			return false
		}
		if a.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops a reference; the last one out seals a done entry.
func (a *active) release() {
	if a.refs.Add(-1) == 0 && a.done.Load() {
		a.c.trySeal(a)
	}
}

// claim allocates a span slot and publishes its start. Returns -1 when
// the trace is full (the span is dropped, the trace survives). The
// caller must hold a reference.
func (a *active) claim(parent SpanID, name string, start int64) (int32, SpanID) {
	idx := a.n.Add(1) - 1
	if idx >= maxSpans {
		return -1, 0
	}
	id := SpanID(nextID())
	s := &a.spans[idx]
	s.ID, s.Parent, s.Name, s.Start, s.Dur = id, parent, name, start, 0
	a.state[idx].Store(slotOpen)
	a.touchAt(start)
	return idx, id
}

// finishSpan completes a claimed slot.
func (a *active) finishSpan(idx int32, end int64) {
	if idx < 0 {
		return
	}
	s := &a.spans[idx]
	s.Dur = end - s.Start
	a.state[idx].Store(slotDone)
	a.touchAt(end)
}

// touchAt advances the last-activity stamp monotonically.
func (a *active) touchAt(t int64) {
	for {
		cur := a.touch.Load()
		if t <= cur || a.touch.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Collector holds the live-trace table and the retained ring. All
// operations are lock-free; see the package comment for the contract.
type Collector struct {
	tab  [tabSize]atomic.Pointer[active]
	ring [ringSize]atomic.Pointer[Trace]
	pos  atomic.Uint64
	last atomic.Pointer[Trace] // most recent locally-rooted trace
	drop atomic.Uint64         // traces dropped because the table was full

	pool sync.Pool
}

var defaultCollector = NewCollector()

// Default returns the process-wide collector.
func Default() *Collector { return defaultCollector }

// NewCollector returns an empty collector (tests use private ones; the
// runtime shares Default).
func NewCollector() *Collector {
	c := &Collector{}
	c.pool.New = func() any { return &active{} }
	return c
}

// Dropped returns the number of traces dropped because the live table
// was full — exported so silent truncation is visible on /trace.
func (c *Collector) Dropped() uint64 { return c.drop.Load() }

func hashID(id TraceID) uint32 {
	h := uint32(2166136261)
	for _, b := range id[:8] {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// newEntry prepares a pooled entry for a trace. The refcount is
// published last: its store is the release edge that makes the plain
// field writes visible to any later acquirer.
func (c *Collector) newEntry(id TraceID, now int64, local, keep bool) *active {
	a := c.pool.Get().(*active)
	a.c = c
	a.id = id
	a.slot = -1
	a.local = local
	a.start = now
	a.keep.Store(keep)
	a.done.Store(false)
	a.touch.Store(now)
	a.n.Store(0)
	for i := range a.state {
		a.state[i].Store(slotEmpty)
	}
	a.refs.Store(1)
	return a
}

// insert publishes the entry into the table, evicting stale idle
// entries that block its probe window. Returns false (and recycles
// nothing — the caller owns the entry) when the window is full.
func (c *Collector) insert(a *active, now int64) bool {
	h := hashID(a.id)
	for i := uint32(0); i < probeLen; i++ {
		slot := (h + i) & tabMask
		a.slot = int32(slot)
		if c.tab[slot].CompareAndSwap(nil, a) {
			return true
		}
		if e := c.tab[slot].Load(); e != nil && c.stale(e, now) {
			c.evict(e)
			if c.tab[slot].CompareAndSwap(nil, a) {
				return true
			}
		}
	}
	return false
}

// create mints a live entry for a new trace. Returns nil when the
// table has no room (the trace is dropped, counted).
func (c *Collector) create(id TraceID, now int64, local, keep bool) *active {
	a := c.newEntry(id, now, local, keep)
	if !c.insert(a, now) {
		c.drop.Add(1)
		a.refs.Store(sealedRefs)
		c.pool.Put(a)
		return nil
	}
	return a
}

// lookup finds and acquires the live entry for id, sweeping stale
// entries it probes past. Returns nil when absent.
func (c *Collector) lookup(id TraceID) *active {
	now := time.Now().UnixNano()
	h := hashID(id)
	for i := uint32(0); i < probeLen; i++ {
		e := c.tab[(h+i)&tabMask].Load()
		if e == nil {
			continue
		}
		if e.acquire() {
			if e.id == id {
				return e
			}
			e.release()
		}
		if c.stale(e, now) {
			c.evict(e)
		}
	}
	return nil
}

// join acquires the live entry for id, creating one if this process
// has not seen the trace yet. Two racing first sights can create two
// entries for one ID; the export groups by TraceID, so the only cost
// is a split span list.
func (c *Collector) join(id TraceID, now int64) *active {
	if e := c.lookup(id); e != nil {
		return e
	}
	return c.create(id, now, false, false)
}

// stale reports whether an entry is idle and old enough to evict.
func (c *Collector) stale(e *active, now int64) bool {
	return e.refs.Load() == 0 && now-e.touch.Load() > int64(staleAfter)
}

// evict marks an idle entry done and seals it if still unreferenced.
func (c *Collector) evict(e *active) {
	e.done.Store(true)
	if e.refs.Load() == 0 {
		c.trySeal(e)
	}
}

// trySeal wins the right to seal: exactly one caller moves the count
// from zero to the sealed sentinel and retires the entry.
func (c *Collector) trySeal(a *active) {
	if !a.refs.CompareAndSwap(0, sealedRefs) {
		return
	}
	c.seal(a)
}

// seal retires a trace: removes it from the table, applies the tail
// retention decision, publishes retained copies and recycles the entry.
func (c *Collector) seal(a *active) {
	if a.slot >= 0 {
		c.tab[a.slot].CompareAndSwap(a, nil)
	}
	end := a.touch.Load()
	if end < a.start {
		end = a.start
	}
	dur := end - a.start
	slow := slowNs.Load()
	retain := a.keep.Load() || (slow > 0 && dur >= slow)
	if retain || a.local {
		t := &Trace{ID: a.id, Start: a.start, Dur: dur}
		n := a.n.Load()
		if n > maxSpans {
			n = maxSpans
		}
		t.Spans = make([]Span, 0, n)
		for i := int32(0); i < n; i++ {
			st := a.state[i].Load()
			if st == slotEmpty {
				continue
			}
			s := a.spans[i]
			if st == slotOpen {
				s.Dur = end - s.Start
			}
			t.Spans = append(t.Spans, s)
		}
		if retain {
			c.ring[(c.pos.Add(1)-1)&ringMask].Store(t)
		}
		if a.local {
			c.last.Store(t)
		}
	}
	c.pool.Put(a)
}

// Sweep seals every idle entry older than the staleness bound. Exports
// call it so lingering traces become visible without waiting for a
// probe collision.
func (c *Collector) Sweep() {
	now := time.Now().UnixNano()
	for i := range c.tab {
		if e := c.tab[i].Load(); e != nil && c.stale(e, now) {
			c.evict(e)
		}
	}
}

// Snapshot returns the retained traces, newest last.
func (c *Collector) Snapshot() []*Trace {
	out := make([]*Trace, 0, ringSize)
	for i := range c.ring {
		if t := c.ring[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sortTraces(out, func(a, b *Trace) bool { return a.Start < b.Start })
	return out
}

// Slowest returns up to n retained traces, longest first.
func (c *Collector) Slowest(n int) []*Trace {
	out := c.Snapshot()
	sortTraces(out, func(a, b *Trace) bool { return a.Dur > b.Dur })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Last returns the most recently sealed locally-rooted trace (the REPL
// `trace` command), or nil.
func (c *Collector) Last() *Trace { return c.last.Load() }

// Reset drops all retained and live state. Test helper: callers must
// ensure no handles are open.
func (c *Collector) Reset() {
	for i := range c.tab {
		if e := c.tab[i].Swap(nil); e != nil {
			e.done.Store(true)
			// Entries with open handles seal (harmlessly, off-table)
			// when their last handle ends.
			if e.refs.CompareAndSwap(0, sealedRefs) {
				e.slot = -1
			}
		}
	}
	for i := range c.ring {
		c.ring[i].Store(nil)
	}
	c.pos.Store(0)
	c.last.Store(nil)
	c.drop.Store(0)
}

// sortTraces is a tiny insertion sort — snapshots are bounded by
// ringSize, and keeping sort out of the import set keeps this package
// dependency-free for the wire and transport layers to import.
func sortTraces(ts []*Trace, less func(a, b *Trace) bool) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && less(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
