package offline

import (
	"net"
	"testing"
	"time"

	"faust/internal/wire"
)

// freeAddrs reserves n distinct loopback addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close()
	}
	return addrs
}

func meshPair(t *testing.T) (*TCPMesh, *TCPMesh) {
	t.Helper()
	addrs := freeAddrs(t, 2)
	peers := map[int]string{0: addrs[0], 1: addrs[1]}
	m0, err := ListenTCP(0, addrs[0], peers, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m0.Close)
	m1, err := ListenTCP(1, addrs[1], peers, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m1.Close)
	return m0, m1
}

func TestTCPMeshSendRecv(t *testing.T) {
	m0, m1 := meshPair(t)
	if err := m0.Send(1, &wire.Probe{From: 0}); err != nil {
		t.Fatalf("send: %v", err)
	}
	msg, err := m1.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if msg.From != 0 {
		t.Fatalf("From = %d", msg.From)
	}
	if _, ok := msg.Body.(*wire.Probe); !ok {
		t.Fatalf("Body = %T", msg.Body)
	}
}

func TestTCPMeshBroadcast(t *testing.T) {
	addrs := freeAddrs(t, 3)
	peers := map[int]string{0: addrs[0], 1: addrs[1], 2: addrs[2]}
	meshes := make([]*TCPMesh, 3)
	for i := 0; i < 3; i++ {
		m, err := ListenTCP(i, addrs[i], peers, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		meshes[i] = m
	}
	if err := meshes[0].Broadcast(&wire.Failure{From: 0}); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	for i := 1; i < 3; i++ {
		msg, err := meshes[i].Recv()
		if err != nil {
			t.Fatalf("mesh %d recv: %v", i, err)
		}
		if msg.From != 0 {
			t.Fatalf("mesh %d From = %d", i, msg.From)
		}
	}
}

func TestTCPMeshEventualDeliveryToLateListener(t *testing.T) {
	// The recipient is offline at send time: delivery must happen once it
	// comes online (store-and-forward through the retry loop).
	addrs := freeAddrs(t, 2)
	peers := map[int]string{0: addrs[0], 1: addrs[1]}
	m0, err := ListenTCP(0, addrs[0], peers, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m0.Close)

	if err := m0.Send(1, &wire.Probe{From: 0}); err != nil {
		t.Fatalf("send to offline peer must queue, not fail: %v", err)
	}
	// Peer comes online later.
	time.Sleep(100 * time.Millisecond)
	m1, err := ListenTCP(1, addrs[1], peers, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m1.Close)

	done := make(chan Msg, 1)
	go func() {
		msg, err := m1.Recv()
		if err == nil {
			done <- msg
		}
	}()
	select {
	case msg := <-done:
		if msg.From != 0 {
			t.Fatalf("From = %d", msg.From)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued message never delivered")
	}
}

func TestTCPMeshSelfAndUnknownPeer(t *testing.T) {
	m0, _ := meshPair(t)
	if err := m0.Send(0, &wire.Probe{}); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := m0.Send(9, &wire.Probe{}); err == nil {
		t.Fatal("unknown peer accepted")
	}
}

func TestTCPMeshCloseUnblocksRecv(t *testing.T) {
	m0, _ := meshPair(t)
	done := make(chan error, 1)
	go func() {
		_, err := m0.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	m0.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned a message after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestTCPMeshManyMessages(t *testing.T) {
	m0, m1 := meshPair(t)
	const k = 100
	for i := 0; i < k; i++ {
		if err := m0.Send(1, &wire.VersionMsg{From: 0, SV: wire.ZeroSignedVersion(2)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		if _, err := m1.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
}
