package wire

// Trace context propagation.
//
// A TraceCtx is the wire form of a distributed-tracing context
// (internal/obs/trace): the 128-bit trace ID minted by the client for
// one operation, the 64-bit span the receiver's work should parent
// under, and a flags byte whose low bit carries the sender's
// head-sampling decision so the receiving process retains exactly the
// traces its clients chose to keep.
//
// The field is optional everywhere it appears (Invocation, Reply and
// the four blob messages) and encodes with the same presence-bool
// discipline as Submit.Piggyback: one strictly-validated 0/1 byte
// followed, when present, by a fixed-width body. Fixed width plus the
// strict bool keeps the codec canonical — there is exactly one byte
// string for every decoded value, which FuzzWireDecode pins.
//
// Signature coverage: a TraceCtx carried by an Invocation is covered by
// that invocation's SUBMIT-signature (AppendSubmitPayload), and since
// the server echoes pending invocations verbatim in REPLY.L, verifiers
// recompute the same payload from the same fields — a server that
// tampers with a traced invocation's context breaks the signature just
// as it would by touching the opcode. The Reply and blob-message trace
// fields are advisory observability metadata on channels that carry no
// server signatures by design (the server holds no keys; blobs are
// content-addressed), so tampering there can corrupt traces but never
// state.

// TraceFlagKeep marks a trace the sender decided to retain.
const TraceFlagKeep uint8 = 1

// TraceCtx is an optional trace context attached to a message.
type TraceCtx struct {
	ID    [16]byte // 128-bit trace ID
	Span  uint64   // sender-side parent span
	Flags uint8
}

// Clone returns a copy (TraceCtx is a value; this exists for the
// pointer-field deep copies in Reply.Clone).
func (t *TraceCtx) Clone() *TraceCtx {
	if t == nil {
		return nil
	}
	c := *t
	return &c
}

// appendTraceCtx encodes the optional trace context: presence bool,
// then the fixed 25-byte body.
func appendTraceCtx(buf []byte, t *TraceCtx) []byte {
	if t == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = append(buf, t.ID[:]...)
	buf = appendI64(buf, int64(t.Span))
	return append(buf, t.Flags)
}

// appendTracePayload appends the trace context to a signing payload in
// the same canonical form the codec uses, so signer and verifier agree
// byte for byte.
func appendTracePayload(buf []byte, t *TraceCtx) []byte {
	return appendTraceCtx(buf, t)
}

// traceCtx decodes an optional trace context.
func (r *reader) traceCtx() *TraceCtx {
	if !r.bool() {
		return nil
	}
	t := &TraceCtx{}
	if r.err != nil || len(r.data) < 16 {
		r.fail()
		return nil
	}
	copy(t.ID[:], r.data[:16])
	r.data = r.data[16:]
	t.Span = uint64(r.i64())
	t.Flags = r.u8()
	if r.err != nil {
		return nil
	}
	return t
}
