// Package history records executions as histories of operation events —
// the input format of every consistency checker in this repository.
//
// The paper (Section 2) models an execution's history as the sequence of
// invocation and response events of the functionality F. We timestamp
// both events of every operation with a global logical clock (an atomic
// counter), which captures exactly the real-time precedence relation
// o <_sigma o' ("o completes before o' is invoked") needed by the
// definitions, while remaining cheap enough to record inside benchmarks.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// OpKind identifies read vs write operations. Values start at one so the
// zero value is invalid.
type OpKind uint8

const (
	// OpRead is a read operation read_i(X_j).
	OpRead OpKind = iota + 1
	// OpWrite is a write operation write_i(X_i, x).
	OpWrite
)

// String returns "read" or "write".
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Pending marks the Resp field of an operation that never completed.
const Pending int64 = -1

// Op is one operation of a history.
type Op struct {
	// ID is a unique identifier assigned by the recorder (its index in
	// recording order).
	ID int
	// Client is the invoking client index.
	Client int
	// Kind says whether this is a read or a write.
	Kind OpKind
	// Reg is the register index the operation targets.
	Reg int
	// Value is the written value for writes and the returned value for
	// reads; nil is the paper's bottom (initial value / pending read).
	Value []byte
	// Inv and Resp are logical times of the invocation and response
	// events. Resp == Pending for incomplete operations.
	Inv, Resp int64
	// Timestamp is the protocol timestamp returned by the operation
	// (FAUST extension); zero when not applicable.
	Timestamp int64
}

// IsComplete reports whether the operation has a response event.
func (o Op) IsComplete() bool { return o.Resp != Pending }

// Precedes reports real-time precedence: o completes before p is invoked.
// A pending operation precedes nothing.
func (o Op) Precedes(p Op) bool { return o.IsComplete() && o.Resp < p.Inv }

// String renders the op in the paper's notation.
func (o Op) String() string {
	val := "_"
	if o.Value != nil {
		v := string(o.Value)
		if len(v) > 12 {
			v = v[:12] + "…"
		}
		val = fmt.Sprintf("%q", v)
	}
	if o.Kind == OpWrite {
		return fmt.Sprintf("write%d(X%d,%s)@[%d,%d]", o.Client, o.Reg, val, o.Inv, o.Resp)
	}
	return fmt.Sprintf("read%d(X%d)->%s@[%d,%d]", o.Client, o.Reg, val, o.Inv, o.Resp)
}

// History is a recorded execution over n clients (and hence n registers).
type History struct {
	N   int
	Ops []Op
}

// Complete returns the sub-history of complete operations, preserving IDs.
func (h History) Complete() History {
	out := History{N: h.N, Ops: make([]Op, 0, len(h.Ops))}
	for _, o := range h.Ops {
		if o.IsComplete() {
			out.Ops = append(out.Ops, o)
		}
	}
	return out
}

// ByClient returns the operations of client i in invocation order.
func (h History) ByClient(i int) []Op {
	var out []Op
	for _, o := range h.Ops {
		if o.Client == i {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Inv < out[b].Inv })
	return out
}

// ByRegister returns the operations touching register r, sorted by
// invocation time.
func (h History) ByRegister(r int) []Op {
	var out []Op
	for _, o := range h.Ops {
		if o.Reg == r {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Inv < out[b].Inv })
	return out
}

// Writes returns all write operations.
func (h History) Writes() []Op {
	var out []Op
	for _, o := range h.Ops {
		if o.Kind == OpWrite {
			out = append(out, o)
		}
	}
	return out
}

// String renders the whole history, one op per line, in ID order.
func (h History) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "history(n=%d, %d ops):\n", h.N, len(h.Ops))
	for _, o := range h.Ops {
		fmt.Fprintf(&b, "  %s\n", o.String())
	}
	return b.String()
}

// WellFormed verifies that the per-client subsequences alternate
// invocation/response (at most one pending op per client, and operations
// of one client do not overlap). It returns a descriptive error when the
// history is malformed.
func (h History) WellFormed() error {
	for c := 0; c < h.N; c++ {
		ops := h.ByClient(c)
		var lastResp int64 = -1
		for k, o := range ops {
			if o.Inv <= lastResp {
				return fmt.Errorf("history: client %d op %s overlaps predecessor", c, o)
			}
			if !o.IsComplete() {
				if k != len(ops)-1 {
					return fmt.Errorf("history: client %d has op after pending %s", c, o)
				}
				continue
			}
			if o.Resp <= o.Inv {
				return fmt.Errorf("history: op %s responds before invocation", o)
			}
			lastResp = o.Resp
		}
	}
	return nil
}

// Recorder accumulates a history from concurrent clients.
type Recorder struct {
	n     int
	clock atomic.Int64

	mu  sync.Mutex
	ops []Op
}

// NewRecorder creates a recorder for n clients.
func NewRecorder(n int) *Recorder { return &Recorder{n: n} }

// PendingOp is a handle for an invoked-but-not-yet-complete operation.
type PendingOp struct {
	r  *Recorder
	id int
}

// Invoke records an invocation event and returns a handle to complete it.
// For writes, value is the written value; for reads pass nil.
func (r *Recorder) Invoke(client int, kind OpKind, reg int, value []byte) *PendingOp {
	now := r.clock.Add(1)
	r.mu.Lock()
	id := len(r.ops)
	r.ops = append(r.ops, Op{
		ID:     id,
		Client: client,
		Kind:   kind,
		Reg:    reg,
		Value:  value,
		Inv:    now,
		Resp:   Pending,
	})
	r.mu.Unlock()
	return &PendingOp{r: r, id: id}
}

// Complete records the response event. For reads, value is the returned
// value; for writes pass nil to keep the written value recorded at
// invocation. ts is the protocol timestamp (0 if not applicable).
func (p *PendingOp) Complete(value []byte, ts int64) {
	now := p.r.clock.Add(1)
	p.r.mu.Lock()
	op := &p.r.ops[p.id]
	op.Resp = now
	op.Timestamp = ts
	if value != nil {
		op.Value = value
	}
	p.r.mu.Unlock()
}

// History returns a snapshot of everything recorded so far.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := make([]Op, len(r.ops))
	copy(ops, r.ops)
	return History{N: r.n, Ops: ops}
}

// Builder constructs histories explicitly, for tests that encode specific
// executions from the paper (e.g. Figure 3). Times are assigned from an
// internal logical clock; Concurrent blocks let operations overlap.
type Builder struct {
	n    int
	time int64
	ops  []Op
}

// NewBuilder creates a builder for n clients.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// Write appends a complete, non-overlapping write_c(X_c, value).
func (b *Builder) Write(client int, value string) *Builder {
	b.time++
	inv := b.time
	b.time++
	b.ops = append(b.ops, Op{
		ID: len(b.ops), Client: client, Kind: OpWrite, Reg: client,
		Value: []byte(value), Inv: inv, Resp: b.time,
	})
	return b
}

// Read appends a complete, non-overlapping read_c(X_reg) -> value.
// value == "" records a bottom read (nil).
func (b *Builder) Read(client, reg int, value string) *Builder {
	b.time++
	inv := b.time
	b.time++
	var v []byte
	if value != "" {
		v = []byte(value)
	}
	b.ops = append(b.ops, Op{
		ID: len(b.ops), Client: client, Kind: OpRead, Reg: reg,
		Value: v, Inv: inv, Resp: b.time,
	})
	return b
}

// Concurrent appends a set of mutually overlapping complete operations.
// Each spec is (client, kind, reg, value).
func (b *Builder) Concurrent(specs ...OpSpec) *Builder {
	b.time++
	inv := b.time
	for _, s := range specs {
		var v []byte
		if s.Value != "" {
			v = []byte(s.Value)
		}
		b.time++
		b.ops = append(b.ops, Op{
			ID: len(b.ops), Client: s.Client, Kind: s.Kind, Reg: s.Reg,
			Value: v, Inv: inv, Resp: b.time,
		})
	}
	return b
}

// PendingWrite appends a write that never completes.
func (b *Builder) PendingWrite(client int, value string) *Builder {
	b.time++
	b.ops = append(b.ops, Op{
		ID: len(b.ops), Client: client, Kind: OpWrite, Reg: client,
		Value: []byte(value), Inv: b.time, Resp: Pending,
	})
	return b
}

// OpSpec describes one operation for Builder.Concurrent.
type OpSpec struct {
	Client int
	Kind   OpKind
	Reg    int
	Value  string
}

// History returns the built history.
func (b *Builder) History() History {
	ops := make([]Op, len(b.ops))
	copy(ops, b.ops)
	return History{N: b.n, Ops: ops}
}
