package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"faust/internal/crypto"
	"faust/internal/wire"
)

// Network is an in-memory star network connecting n clients to one server
// core over reliable FIFO links. A single dispatcher goroutine drains
// client messages in arrival-order batches and runs the core's handlers
// one at a time, exactly as Algorithm 2 assumes (batching changes how
// much the dispatcher takes per drain, never the application order).
type Network struct {
	n        int
	core     ServerCore
	inbox    *envelopeQueue
	outboxes []*queue
	links    []*memoryLink

	metrics  bool
	stats    Stats
	ring     *crypto.Keyring
	maxBatch int

	blobs BlobStore // nil = no bulk channel

	delayMax  time.Duration
	delayRand *rand.Rand
	delayMu   sync.Mutex

	wg       sync.WaitGroup
	stopped  atomic.Bool
	dropped  atomic.Int64 // messages discarded after Stop, for tests
	pumpGate sync.WaitGroup
}

// Option configures a Network.
type Option func(*Network)

// WithMetrics enables message counting and size accounting. Sizes are
// computed with the canonical codec, so in-memory runs report the same
// bytes a TCP deployment would send.
func WithMetrics() Option {
	return func(nw *Network) { nw.metrics = true }
}

// WithBlobStore attaches a bulk blob store to the network. Clients reach
// it through Network.BlobChannel; blob transfers run concurrently with
// the dispatcher, exactly as the TCP transport's blob connections do.
func WithBlobStore(bs BlobStore) Option {
	return func(nw *Network) { nw.blobs = bs }
}

// WithDelay makes every client->server message wait a pseudo-random delay
// up to max before entering the server inbox. Per-client FIFO order is
// preserved (each client has its own delay pump); cross-client
// interleaving becomes nondeterministic, exercising asynchrony.
func WithDelay(max time.Duration, seed int64) Option {
	return func(nw *Network) {
		nw.delayMax = max
		nw.delayRand = rand.New(rand.NewSource(seed))
	}
}

// WithVerifier arms server-side SUBMIT-signature verification: the
// dispatcher checks every SUBMIT against the ring and silently drops
// forged ones. The protocol's guarantees never depend on this (the
// server is the untrusted party); it is admission hygiene, and it gives
// the batch pipeline its parallel verification stage.
func WithVerifier(ring *crypto.Keyring) Option {
	return func(nw *Network) { nw.ring = ring }
}

// WithMaxBatch caps how many queued messages the dispatcher drains per
// batch (default DefaultMaxBatch). 1 disables batching — every op takes
// the fast path — which is the ablation baseline of the E22 experiment.
func WithMaxBatch(n int) Option {
	return func(nw *Network) { nw.maxBatch = n }
}

// envelopeQueue is an unbounded FIFO of envelopes with blocking pop.
type envelopeQueue = fifo[envelope]

func newEnvelopeQueue() *envelopeQueue { return newFIFO[envelope]() }

// memoryLink is the client-side endpoint of an in-memory FIFO channel.
type memoryLink struct {
	nw     *Network
	id     int
	in     *queue // server -> client
	closed atomic.Bool
	// sendQ serializes this client's messages through the optional delay
	// pump so per-client FIFO order survives randomized delays.
	sendQ *envelopeQueue
}

var _ Link = (*memoryLink)(nil)

// NewNetwork creates an in-memory network with n client links attached to
// the given server core and starts the dispatcher.
func NewNetwork(n int, core ServerCore, opts ...Option) *Network {
	nw := &Network{
		n:        n,
		core:     core,
		inbox:    newEnvelopeQueue(),
		outboxes: make([]*queue, n),
		links:    make([]*memoryLink, n),
		maxBatch: DefaultMaxBatch,
	}
	for _, o := range opts {
		o(nw)
	}
	for i := 0; i < n; i++ {
		nw.outboxes[i] = newQueue()
		nw.links[i] = &memoryLink{nw: nw, id: i, in: nw.outboxes[i]}
		if nw.delayMax > 0 {
			l := nw.links[i]
			l.sendQ = newEnvelopeQueue()
			nw.pumpGate.Add(1)
			go nw.delayPump(l)
		}
	}
	if gc, ok := core.(GenericCore); ok {
		gc.AttachPusher(nw.push)
	}
	nw.wg.Add(1)
	go nw.dispatch()
	return nw
}

// push delivers a core-initiated message to client `to`, with metrics.
func (nw *Network) push(to int, m wire.Message) error {
	if to < 0 || to >= nw.n {
		return ErrClosed
	}
	if nw.metrics {
		atomic.AddInt64(&nw.stats.ServerToClientMsgs, 1)
		atomic.AddInt64(&nw.stats.ServerToClientBytes, int64(wire.EncodedSize(m)))
	}
	return nw.outboxes[to].push(m)
}

// delayPump moves one client's messages into the server inbox after a
// random delay, preserving that client's FIFO order.
func (nw *Network) delayPump(l *memoryLink) {
	defer nw.pumpGate.Done()
	for {
		e, ok := l.sendQ.pop()
		if !ok {
			return
		}
		nw.delayMu.Lock()
		d := time.Duration(nw.delayRand.Int63n(int64(nw.delayMax) + 1))
		nw.delayMu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		if !e.enq.IsZero() {
			// The queue span measures inbox wait, not simulated network
			// delay: restamp after the delay has elapsed.
			e.enq = time.Now()
		}
		if !nw.inbox.push(e) {
			// The network stopped while this message was in its delay
			// window; account it like any other post-Stop discard.
			nw.dropped.Add(1)
			return
		}
	}
}

// dispatch is the server event loop: the shared batched engine over this
// network's inbox. Handlers still run one at a time in arrival order.
func (nw *Network) dispatch() {
	defer nw.wg.Done()
	dispatchBatches(nw.inbox, nw.maxBatch)
}

// batchSink implementation: the whole in-memory network is one sink.

func (nw *Network) sinkCore() ServerCore      { return nw.core }
func (nw *Network) sinkRing() *crypto.Keyring { return nw.ring }
func (nw *Network) sinkName() string          { return "" }
func (nw *Network) countOp()                  {}
func (nw *Network) dropUnknown()              { nw.dropped.Add(1) }
func (nw *Network) sendReply(to int, m wire.Message) {
	if nw.metrics {
		atomic.AddInt64(&nw.stats.ServerToClientMsgs, 1)
		atomic.AddInt64(&nw.stats.ServerToClientBytes, int64(wire.EncodedSize(m)))
	}
	if err := nw.outboxes[to].push(m); err != nil {
		nw.dropped.Add(1)
	}
}

func (nw *Network) sendReplies(to int, msgs []wire.Message) {
	if nw.metrics {
		atomic.AddInt64(&nw.stats.ServerToClientMsgs, int64(len(msgs)))
		var bytes int64
		for _, m := range msgs {
			bytes += int64(wire.EncodedSize(m))
		}
		atomic.AddInt64(&nw.stats.ServerToClientBytes, bytes)
	}
	if err := nw.outboxes[to].pushAll(msgs); err != nil {
		nw.dropped.Add(int64(len(msgs)))
	}
}

// ClientLink returns the link endpoint for client i.
func (nw *Network) ClientLink(i int) Link { return nw.links[i] }

// Blobs returns the network's blob store, nil when none is attached.
func (nw *Network) Blobs() BlobStore { return nw.blobs }

// BlobChannel opens a bulk blob channel into the network's blob store.
// It fails when the network was created without WithBlobStore.
func (nw *Network) BlobChannel() (BlobChannel, error) {
	if nw.blobs == nil {
		return nil, ErrNoBlobStore
	}
	return &memBlobChannel{nw: nw}, nil
}

// countBlob accounts one blob transfer in the traffic counters.
// toServer is true for puts (client->server direction).
func (nw *Network) countBlob(toServer bool, bytes int) {
	if toServer {
		atomic.AddInt64(&nw.stats.ClientToServerMsgs, 1)
		atomic.AddInt64(&nw.stats.ClientToServerBytes, int64(bytes))
		return
	}
	atomic.AddInt64(&nw.stats.ServerToClientMsgs, 1)
	atomic.AddInt64(&nw.stats.ServerToClientBytes, int64(bytes))
}

// Stats returns a snapshot of the traffic counters. Valid only when the
// network was created WithMetrics.
func (nw *Network) Stats() Stats {
	return Stats{
		ClientToServerMsgs:  atomic.LoadInt64(&nw.stats.ClientToServerMsgs),
		ClientToServerBytes: atomic.LoadInt64(&nw.stats.ClientToServerBytes),
		ServerToClientMsgs:  atomic.LoadInt64(&nw.stats.ServerToClientMsgs),
		ServerToClientBytes: atomic.LoadInt64(&nw.stats.ServerToClientBytes),
	}
}

// Stop shuts the network down: all links close, blocked Recv calls return
// ErrClosed, and the dispatcher exits after draining nothing further.
// Stop is idempotent.
func (nw *Network) Stop() {
	if nw.stopped.Swap(true) {
		return
	}
	for _, l := range nw.links {
		l.closed.Store(true)
		if l.sendQ != nil {
			l.sendQ.close()
		}
	}
	nw.pumpGate.Wait()
	nw.inbox.close()
	nw.wg.Wait()
	for _, q := range nw.outboxes {
		q.close()
	}
}

// Send enqueues a message toward the server.
func (l *memoryLink) Send(m wire.Message) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if l.nw.metrics {
		atomic.AddInt64(&l.nw.stats.ClientToServerMsgs, 1)
		atomic.AddInt64(&l.nw.stats.ClientToServerBytes, int64(wire.EncodedSize(m)))
	}
	e := envelope{sink: l.nw, from: l.id, msg: m, enq: traceStamp(m)}
	if l.sendQ != nil {
		if !l.sendQ.push(e) {
			return ErrClosed
		}
		return nil
	}
	if !l.nw.inbox.push(e) {
		return ErrClosed
	}
	return nil
}

// Recv blocks for the next server message.
func (l *memoryLink) Recv() (wire.Message, error) {
	return l.in.pop()
}

// Close closes only this client's endpoint; the rest of the network keeps
// running. Used to simulate client crashes.
func (l *memoryLink) Close() error {
	l.closed.Store(true)
	l.in.close()
	if l.sendQ != nil {
		l.sendQ.close()
	}
	return nil
}
