// Package obs is the observability substrate of the FAUST reproduction:
// lock-free counters and gauges, log-bucketed latency histograms with
// mergeable snapshots and quantile estimation, and a bounded ring-buffer
// protocol event log recording the fail-aware outcomes the paper is about
// (fork detection, fail notifications, stability-cut advances, rollbacks,
// preflight rejections, blob tampering).
//
// The package is zero-dependency (standard library only) and built so the
// instrumented hot paths pay only an atomic add or two per observation:
// metric handles are resolved once at construction time and touched
// lock-free afterwards. A process-wide default registry (Default) collects
// everything the built-in instrumentation emits; cmd/faust-server exposes
// it over HTTP as Prometheus text exposition, expvar JSON and
// net/http/pprof (see expose.go).
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every observation site. It defaults to on; benchmarks flip
// it off to measure instrumentation overhead (see cmd/faust-bench E20).
// Reads are a single atomic load, so the gate itself is nearly free.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns observation on or off process-wide. Metric handles stay
// valid either way; disabled handles simply drop observations.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether observation is currently on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing lock-free counter. The zero value
// is ready to use, but counters obtained from a Registry are also exported
// over /metrics; prefer those for anything an operator should see.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the exposition to stay monotonic;
// this is not enforced).
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value (current connections, in-flight
// requests). Unlike Counter it may go down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if enabled.Load() {
		g.v.Store(n)
	}
}

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if enabled.Load() {
		g.v.Add(n)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// StartTimer returns the current time when observation is enabled and the
// zero time otherwise. Paired with Histogram.ObserveSince it keeps fully
// disabled hot paths free of clock reads.
func StartTimer() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the nanoseconds elapsed since start, dropping the
// observation when start is the zero time (i.e. observation was disabled
// when the timer started).
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// metricKind discriminates registry entries for the exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered time series: a metric family name, an optional
// sorted label set, and exactly one of the three instrument types.
type metric struct {
	family string // family name without labels
	labels string // rendered {k="v",...} or ""
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named collection of metrics plus one protocol event log.
// Registration (Counter/Gauge/Histogram calls) takes a mutex and is
// idempotent — the same name+labels returns the same handle — so callers
// register once at construction time and keep the returned pointer for the
// hot path. The zero value is not usable; use NewRegistry or Default.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	help    map[string]string // family -> HELP text
	events  *EventLog
}

// NewRegistry creates an empty registry whose event log keeps the last
// eventCap events (DefaultEventCap when eventCap <= 0).
func NewRegistry(eventCap int) *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
		events:  NewEventLog(eventCap),
	}
}

// defaultRegistry is the process-wide registry the built-in
// instrumentation reports into.
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry. All instrumentation in
// internal/{transport,store,crypto,...} reports here unless explicitly
// given another registry or event log.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry(0) })
	return defaultReg
}

// Labels is an alternating key, value, key, value... list. It renders in
// sorted key order so label order at the call site does not create
// distinct series.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "INVALID")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the metric registered under family+labels, creating it
// with mk when absent. Panics if the name is already registered with a
// different instrument kind — that is a programming error, not runtime
// input.
func (r *Registry) lookup(family string, kind metricKind, kv []string, mk func() *metric) *metric {
	key := family + renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic("obs: metric " + key + " re-registered with a different kind")
		}
		return m
	}
	m := mk()
	m.family = family
	m.labels = renderLabels(kv)
	m.kind = kind
	r.metrics[key] = m
	return m
}

// Counter returns the counter registered under name with the given
// alternating key/value labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	m := r.lookup(name, kindCounter, labels, func() *metric { return &metric{c: &Counter{}} })
	return m.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	m := r.lookup(name, kindGauge, labels, func() *metric { return &metric{g: &Gauge{}} })
	return m.g
}

// Histogram returns the histogram registered under name+labels, creating
// it on first use. Histograms record non-negative int64 observations
// (nanoseconds by convention; the exposition converts to seconds).
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	m := r.lookup(name, kindHistogram, labels, func() *metric { return &metric{h: NewHistogram()} })
	return m.h
}

// Help sets the HELP text for a metric family. Optional; families without
// help render only the TYPE line.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

// Events returns the registry's protocol event log.
func (r *Registry) Events() *EventLog { return r.events }

// snapshotMetrics returns the registered metrics sorted by family then
// label string, so the exposition is deterministic and families stay
// contiguous.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}
