package store

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/version"
	"faust/internal/wire"
)

// submitRecord builds a well-formed SUBMIT record for tests.
func submitRecord(from int, t int64) Record {
	return Record{From: from, Msg: &wire.Submit{
		T:       t,
		Inv:     wire.Invocation{Client: from, Op: wire.OpWrite, Reg: from, SubmitSig: []byte("sig")},
		Value:   []byte(fmt.Sprintf("v%d", t)),
		DataSig: []byte("data"),
	}}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []Record{
		submitRecord(2, 7),
		{From: 1, Msg: &wire.Commit{Ver: version.New(3), CommitSig: []byte("c"), ProofSig: []byte("p")}},
	}
	for i, rec := range recs {
		enc, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if got.From != rec.From {
			t.Fatalf("record %d: from = %d, want %d", i, got.From, rec.From)
		}
		if !bytes.Equal(wire.Encode(got.Msg), wire.Encode(rec.Msg)) {
			t.Fatalf("record %d: message did not round-trip", i)
		}
	}
}

func TestRecordCodecRejectsNonStateMessages(t *testing.T) {
	if _, err := EncodeRecord(Record{From: 0, Msg: &wire.Probe{From: 0}}); err == nil {
		t.Fatal("PROBE accepted as a WAL record")
	}
	probe := append([]byte{0, 0, 0, 0}, wire.Encode(&wire.Probe{From: 0})...)
	if _, err := DecodeRecord(probe); err == nil {
		t.Fatal("encoded PROBE decoded as a WAL record")
	}
	if _, err := DecodeRecord([]byte{1, 2}); err == nil {
		t.Fatal("short record accepted")
	}
}

// backendContract runs the Backend semantics every implementation must
// satisfy: append/load round trip and snapshot truncation.
func backendContract(t *testing.T, reopen func(t *testing.T) Backend) {
	t.Helper()
	b := reopen(t)
	if snap, tail, err := b.Load(); err != nil || snap != nil || len(tail) != 0 {
		t.Fatalf("fresh backend: Load = (%v, %d records, %v)", snap, len(tail), err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Append(submitRecord(i%2, int64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	b = reopen(t)
	snap, tail, err := b.Load()
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if snap != nil || len(tail) != 5 {
		t.Fatalf("after 5 appends: snap=%v, %d records", snap, len(tail))
	}
	for i, rec := range tail {
		if rec.Msg.(*wire.Submit).T != int64(i) {
			t.Fatalf("record %d out of order: T=%d", i, rec.Msg.(*wire.Submit).T)
		}
	}
	state := []byte("the-state")
	if err := b.WriteSnapshot(state); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := b.Append(submitRecord(0, 99)); err != nil {
		t.Fatalf("post-snapshot append: %v", err)
	}
	_ = b.Close()

	b = reopen(t)
	snap, tail, err = b.Load()
	if err != nil {
		t.Fatalf("reload after snapshot: %v", err)
	}
	if !bytes.Equal(snap, state) {
		t.Fatalf("snapshot = %q, want %q", snap, state)
	}
	if len(tail) != 1 || tail[0].Msg.(*wire.Submit).T != 99 {
		t.Fatalf("tail after snapshot: %d records", len(tail))
	}
	_ = b.Close()
}

func TestMemBackendContract(t *testing.T) {
	b := NewMemBackend()
	// The same MemBackend survives "reopening" — that is its purpose.
	backendContract(t, func(t *testing.T) Backend { return b })
}

func TestFileBackendContract(t *testing.T) {
	dir := t.TempDir()
	backendContract(t, func(t *testing.T) Backend {
		b, err := OpenFile(dir, FileOptions{})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return b
	})
}

// TestPersistentRecoversExactState drives a real USTOR cluster through a
// persistent server, simulates a restart by handing the same MemBackend to
// a fresh server, and requires bit-identical state.
func TestPersistentRecoversExactState(t *testing.T) {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 51)
	backend := NewMemBackend()
	ps, err := Open(ustor.NewServer(n), backend, Options{SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	nw := transport.NewNetwork(n, ps)
	clients := make([]*ustor.Client, n)
	for i := range clients {
		clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
	}
	for round := 0; round < 4; round++ {
		for i, c := range clients {
			if err := c.Write([]byte(fmt.Sprintf("r%d-c%d", round, i))); err != nil {
				t.Fatalf("write: %v", err)
			}
			if _, err := c.Read((i + 1) % n); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}
	nw.Stop() // quiesce: all handler calls done
	want := ps.ExportState()

	ps2, err := Open(ustor.NewServer(n), backend, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if got := ps2.ExportState(); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from pre-restart state")
	}
	fromSnap, replayed := ps2.Recovered()
	if !fromSnap {
		t.Fatal("expected recovery from a snapshot (SnapshotEvery=7, 24 ops)")
	}
	if replayed == 0 {
		t.Log("note: recovery replayed no WAL records (snapshot happened to be last)")
	}

	// The recovered server must also serve: clients rebind and continue.
	nw2 := transport.NewNetwork(n, ps2)
	defer nw2.Stop()
	for i, c := range clients {
		c.Rebind(nw2.ClientLink(i))
	}
	for i, c := range clients {
		if err := c.Write([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatalf("post-recovery write by %d: %v", i, err)
		}
	}
	for i, c := range clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d failed against recovered server: %v", i, reason)
		}
	}
}

// TestGroupCommitPersistentClusterRecovery drives a real cluster through a
// group-commit FileBackend, simulates a crash (no Close — the segment
// keeps its preallocated padding), recovers into a fresh server and
// requires bit-identical state plus failure-free continued operation by
// the rebound clients.
func TestGroupCommitPersistentClusterRecovery(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	ring, signers := crypto.NewTestKeyring(n, 52)
	backend, err := OpenFile(dir, FileOptions{Fsync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Open(ustor.NewServer(n), backend, Options{SnapshotEvery: 9})
	if err != nil {
		t.Fatal(err)
	}
	nw := transport.NewNetwork(n, ps)
	clients := make([]*ustor.Client, n)
	for i := range clients {
		clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
	}
	for round := 0; round < 4; round++ {
		for i, c := range clients {
			if err := c.Write([]byte(fmt.Sprintf("r%d-c%d", round, i))); err != nil {
				t.Fatalf("write: %v", err)
			}
			if _, err := c.Read((i + 1) % n); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}
	nw.Stop() // quiesce: all handler calls done
	// Flush the trailing COMMITs so the crash point is a flushed state and
	// recovery must be bit-exact (an unflushed trailing commit would be
	// lost fail-safely instead — see the Persistent docs).
	if err := backend.Flush(); err != nil {
		t.Fatal(err)
	}
	want := ps.ExportState()

	// Crash: abandon ps/backend without Close and recover from disk.
	backend2, err := OpenFile(dir, FileOptions{Fsync: true, GroupCommit: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	ps2, err := Open(ustor.NewServer(n), backend2, Options{SnapshotEvery: 9})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer ps2.Close()
	if got := ps2.ExportState(); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from pre-crash state")
	}

	nw2 := transport.NewNetwork(n, ps2)
	defer nw2.Stop()
	for i, c := range clients {
		c.Rebind(nw2.ClientLink(i))
	}
	for i, c := range clients {
		if err := c.Write([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatalf("post-recovery write by %d: %v", i, err)
		}
	}
	for i, c := range clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d failed against recovered server: %v", i, reason)
		}
	}
}

// TestPersistentStopsServingOnAppendFailure checks the fail-stop contract:
// a server that cannot persist must fall silent, not serve.
func TestPersistentStopsServingOnAppendFailure(t *testing.T) {
	ps, err := Open(ustor.NewServer(2), failingBackend{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := ps.HandleSubmit(context.Background(), 0, submitRecord(0, 1).Msg.(*wire.Submit)); r != nil {
		t.Fatal("server replied to an operation it could not log")
	}
	if ps.Err() == nil {
		t.Fatal("append failure not recorded")
	}
}

type failingBackend struct{}

func (failingBackend) Load() ([]byte, []Record, error) { return nil, nil, nil }
func (failingBackend) Append(Record) error             { return fmt.Errorf("disk full") }
func (failingBackend) Flush() error                    { return fmt.Errorf("disk full") }
func (failingBackend) WriteSnapshot([]byte) error      { return fmt.Errorf("disk full") }
func (failingBackend) Close() error                    { return nil }
