package kv

import (
	"sync/atomic"

	"faust/internal/obs"
)

// Process-wide KV traffic counters in the default obs registry. Every
// Store in the process reports here (the per-store view stays available
// via Store.Stats, which snapshots the store-local atomics).
var (
	kvRegisterOps = map[string]*obs.Counter{
		"read":  obs.Default().Counter("faust_kv_register_ops_total", "op", "read"),
		"write": obs.Default().Counter("faust_kv_register_ops_total", "op", "write"),
	}
	kvBlobOps = map[string]*obs.Counter{
		"put": obs.Default().Counter("faust_kv_blob_ops_total", "dir", "put"),
		"get": obs.Default().Counter("faust_kv_blob_ops_total", "dir", "get"),
	}
	kvBlobBytes = map[string]*obs.Counter{
		"put": obs.Default().Counter("faust_kv_blob_bytes_total", "dir", "put"),
		"get": obs.Default().Counter("faust_kv_blob_bytes_total", "dir", "get"),
	}
	kvCacheHits = map[string]*obs.Counter{
		"chunk": obs.Default().Counter("faust_kv_cache_hits_total", "cache", "chunk"),
		"node":  obs.Default().Counter("faust_kv_cache_hits_total", "cache", "node"),
		"value": obs.Default().Counter("faust_kv_cache_hits_total", "cache", "value"),
	}
)

func init() {
	r := obs.Default()
	r.Help("faust_kv_register_ops_total", "fail-aware register round trips issued by the KV layer")
	r.Help("faust_kv_blob_ops_total", "blob-channel transfers (chunks and tree nodes)")
	r.Help("faust_kv_blob_bytes_total", "blob payload bytes transferred")
	r.Help("faust_kv_cache_hits_total", "fetches served from a validating client cache")
}

// statCounters is the store-local, lock-free form of Stats. Counters are
// atomics so hot read paths (which take s.mu only for cache maps) and
// Stats() snapshots never race — previously several of these were plain
// int64 fields bumped under s.mu, and any future increment outside the
// lock was a data race waiting to happen.
type statCounters struct {
	registerReads  atomic.Int64
	registerWrites atomic.Int64
	blobPuts       atomic.Int64
	blobGets       atomic.Int64
	blobPutBytes   atomic.Int64
	blobGetBytes   atomic.Int64
	chunkCacheHits atomic.Int64
	nodeCacheHits  atomic.Int64
	valueCacheHits atomic.Int64
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		RegisterReads:  c.registerReads.Load(),
		RegisterWrites: c.registerWrites.Load(),
		BlobPuts:       c.blobPuts.Load(),
		BlobGets:       c.blobGets.Load(),
		BlobPutBytes:   c.blobPutBytes.Load(),
		BlobGetBytes:   c.blobGetBytes.Load(),
		ChunkCacheHits: c.chunkCacheHits.Load(),
		NodeCacheHits:  c.nodeCacheHits.Load(),
		ValueCacheHits: c.valueCacheHits.Load(),
	}
}

// The stat* helpers bump the store-local atomic and mirror into the
// process-wide obs registry. Safe with or without s.mu held.

func (s *Store) statRegisterRead() {
	s.stats.registerReads.Add(1)
	kvRegisterOps["read"].Inc()
}

func (s *Store) statRegisterWrite() {
	s.stats.registerWrites.Add(1)
	kvRegisterOps["write"].Inc()
}

func (s *Store) statBlobPut(n int) {
	s.stats.blobPuts.Add(1)
	s.stats.blobPutBytes.Add(int64(n))
	kvBlobOps["put"].Inc()
	kvBlobBytes["put"].Add(int64(n))
}

func (s *Store) statBlobGet(n int) {
	s.stats.blobGets.Add(1)
	s.stats.blobGetBytes.Add(int64(n))
	kvBlobOps["get"].Inc()
	kvBlobBytes["get"].Add(int64(n))
}

func (s *Store) statChunkCacheHit() {
	s.stats.chunkCacheHits.Add(1)
	kvCacheHits["chunk"].Inc()
}

func (s *Store) statNodeCacheHit() {
	s.stats.nodeCacheHits.Add(1)
	kvCacheHits["node"].Inc()
}

func (s *Store) statValueCacheHit() {
	s.stats.valueCacheHits.Add(1)
	kvCacheHits["value"].Inc()
}
