package blobfleet

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faust/internal/crypto"
	"faust/internal/store"
	"faust/internal/transport"
)

// auditBlobDir fails the test if the published namespace holds anything
// torn: every non-temp file must be a complete blob whose content hashes
// to its own name. This is the crash-consistency invariant of the
// tmp+rename publication protocol.
func auditBlobDir(t *testing.T, dir string) (published int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("published blob unreadable: %v", err)
		}
		want, err := hex.DecodeString(e.Name())
		if err != nil {
			t.Fatalf("published blob with non-hash name %q", e.Name())
		}
		if !bytes.Equal(crypto.Hash(data), want) {
			t.Fatalf("TORN BLOB published: %s (%d bytes, wrong content hash)", e.Name(), len(data))
		}
		published++
	}
	return published
}

// TestCrashConsistencyUnderInjectedFaults drives a FaultyBlobs-wrapped
// FileBlobs while the file layer's sync and rename stages are made to
// fail on a schedule. Whatever combination of faults hits a put, the
// published namespace must never contain a torn blob, and an
// acknowledged put must stay readable.
func TestCrashConsistencyUnderInjectedFaults(t *testing.T) {
	dir := t.TempDir()
	fb, err := store.OpenFileBlobs(dir, true) // fsync on: exercise the sync stage too
	if err != nil {
		t.Fatal(err)
	}
	syncN, renameN := 0, 0
	fb.InjectFaults(store.BlobFaultHooks{
		BeforeSync: func() error {
			syncN++
			if syncN%3 == 0 {
				return fmt.Errorf("injected: disk full during sync")
			}
			return nil
		},
		BeforeRename: func() error {
			renameN++
			if renameN%4 == 0 {
				return fmt.Errorf("injected: crash before rename")
			}
			return nil
		},
	})
	faulty := NewFaultyBlobs("disk", fb, FaultConfig{Seed: 11, ErrRate: 0.2})

	type blob struct{ hash, data []byte }
	var acked []blob
	for i := 0; i < 200; i++ {
		data := []byte(fmt.Sprintf("crash-consistency blob %d", i))
		hash := crypto.Hash(data)
		if err := faulty.PutBlob(hash, data); err == nil {
			acked = append(acked, blob{hash, data})
		}
		if i%20 == 0 {
			auditBlobDir(t, dir)
		}
	}
	if len(acked) == 0 {
		t.Fatal("every put failed — fault schedule too aggressive to test anything")
	}
	published := auditBlobDir(t, dir)
	if published < len(acked) {
		t.Fatalf("%d puts acknowledged but only %d blobs published", len(acked), published)
	}
	faulty.SetConfig(FaultConfig{}) // chaos over; verify the surviving state
	for _, b := range acked {
		got, err := faulty.GetBlob(b.hash)
		if err != nil || !bytes.Equal(got, b.data) {
			t.Fatalf("acknowledged blob lost or corrupt: %v", err)
		}
	}
	// Failed puts must clean up their temp files (no .tmp litter).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
	if syncN == 0 || renameN == 0 {
		t.Fatal("hooks never fired")
	}
}

// TestFailoverMasksInjectedDiskFaults puts a flaky disk primary behind a
// Failover with a healthy memory secondary: callers see no errors even
// while the disk's sync/rename stages fail, and the disk never publishes
// a torn blob.
func TestFailoverMasksInjectedDiskFaults(t *testing.T) {
	dir := t.TempDir()
	fb, err := store.OpenFileBlobs(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	fb.InjectFaults(store.BlobFaultHooks{BeforeRename: func() error {
		n++
		if n%2 == 0 {
			return fmt.Errorf("injected: crash before rename")
		}
		return nil
	}})
	f, err := New([]Backend{
		{Name: "disk", Store: NewFaultyBlobs("disk", fb, FaultConfig{Seed: 5})},
		{Name: "mem", Store: transport.NewMemBlobs()},
	}, Options{WriteReplicas: 2, RetryAttempts: 1, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 60; i++ {
		data := []byte(fmt.Sprintf("masked blob %d", i))
		hash := crypto.Hash(data)
		if err := f.PutBlob(hash, data); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if got, err := f.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("get %d: %q, %v", i, got, err)
		}
	}
	auditBlobDir(t, dir)
}
