package byzantine

import (
	"context"
	"errors"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/history"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/version"
	"faust/internal/wire"

	"faust/internal/consistency"
)

func TestForkingServerPartitionValidation(t *testing.T) {
	if _, err := NewForkingServer(2, [][]int{{0}}); err == nil {
		t.Fatal("missing client accepted")
	}
	if _, err := NewForkingServer(2, [][]int{{0, 1}, {1}}); err == nil {
		t.Fatal("duplicate client accepted")
	}
	if _, err := NewForkingServer(2, [][]int{{0, 7}, {1}}); err == nil {
		t.Fatal("out-of-range client accepted")
	}
	if _, err := NewForkingServer(2, [][]int{{0}, {1}}); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
}

// TestFig3AttackUndetectedByUSTOR drives the exact attack of Figure 3:
// the server pretends the completed write of client 0 did not occur while
// serving client 1's first read, then makes it visible for the second
// read. USTOR must NOT detect it (the history is weak fork-linearizable
// and the protocol is accurate), the resulting history must match
// Figure 3's consistency classification, and the clients' versions must
// end up incomparable (the fork FAUST later catches).
func TestFig3AttackUndetectedByUSTOR(t *testing.T) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 3)
	server, err := NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	nw := transport.NewNetwork(n, server)
	defer nw.Stop()
	c0 := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))
	c1 := ustor.NewClient(1, ring, signers[1], nw.ClientLink(1))

	rec := history.NewRecorder(n)

	// write0(X0, u) — served by branch 0.
	p := rec.Invoke(0, history.OpWrite, 0, []byte("u"))
	w, err := c0.WriteX(context.Background(), []byte("u"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	p.Complete(nil, w.Timestamp)

	// read1(X0) -> bottom — served by branch 1, which has not seen the write.
	p = rec.Invoke(1, history.OpRead, 0, nil)
	r1, err := c1.ReadX(context.Background(), 0)
	if err != nil {
		t.Fatalf("first read: %v", err)
	}
	p.Complete(r1.Value, r1.Timestamp)
	if r1.Value != nil {
		t.Fatalf("first read = %q, want bottom", r1.Value)
	}

	// The attacker replays client 0's captured write into branch 1.
	if server.CapturedOps(0) != 1 {
		t.Fatalf("captured ops = %d, want 1", server.CapturedOps(0))
	}
	if err := server.Replay(0, 0, 1); err != nil {
		t.Fatalf("replay: %v", err)
	}

	// read1(X0) -> u, still with no detection.
	p = rec.Invoke(1, history.OpRead, 0, nil)
	r2, err := c1.ReadX(context.Background(), 0)
	if err != nil {
		t.Fatalf("second read must pass all checks (accuracy): %v", err)
	}
	p.Complete(r2.Value, r2.Timestamp)
	if string(r2.Value) != "u" {
		t.Fatalf("second read = %q, want u", r2.Value)
	}

	if failed, _ := c0.Failed(); failed {
		t.Fatal("client 0 failed during an undetectable attack")
	}
	if failed, _ := c1.Failed(); failed {
		t.Fatal("client 1 failed during an undetectable attack")
	}

	// The recorded history is exactly Figure 3: weak fork-linearizable
	// but neither linearizable nor fork-linearizable.
	h := rec.History()
	if res := consistency.CheckLinearizable(h); res.OK {
		t.Fatal("attack history must not be linearizable")
	}
	if res := consistency.CheckForkLinearizable(h, 10); res.OK {
		t.Fatal("attack history must not be fork-linearizable")
	}
	if res := consistency.CheckWeakForkLinearizable(h, 10); !res.OK {
		t.Fatalf("attack history must be weak fork-linearizable: %s", res.Reason)
	}
	if res := consistency.CheckCausal(h); !res.OK {
		t.Fatalf("attack history must stay causally consistent: %s", res.Reason)
	}

	// The fork is now established: the two clients' versions are
	// incomparable, which is exactly the evidence FAUST's offline
	// exchange will surface.
	if version.Comparable(c0.Version(), c1.Version()) {
		t.Fatal("fork must leave the clients with incomparable versions")
	}
}

func TestForkingServerTwoIndependentGroups(t *testing.T) {
	const n = 4
	ring, signers := crypto.NewTestKeyring(n, 5)
	server, err := NewForkingServer(n, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	nw := transport.NewNetwork(n, server)
	defer nw.Stop()
	clients := make([]*ustor.Client, n)
	for i := range clients {
		clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
	}

	// Each group collaborates internally without any detection.
	if err := clients[0].Write([]byte("g0")); err != nil {
		t.Fatal(err)
	}
	if v, err := clients[1].Read(0); err != nil || string(v) != "g0" {
		t.Fatalf("group 0 internal read = %q, %v", v, err)
	}
	if err := clients[2].Write([]byte("g1")); err != nil {
		t.Fatal(err)
	}
	if v, err := clients[3].Read(2); err != nil || string(v) != "g1" {
		t.Fatalf("group 1 internal read = %q, %v", v, err)
	}

	// Cross-group state is invisible: group 1 reads bottom for X0.
	if v, err := clients[3].Read(0); err != nil || v != nil {
		t.Fatalf("cross-group read = %q, %v; want bottom", v, err)
	}

	// Versions within a group are comparable; across groups incomparable.
	if !version.Comparable(clients[0].Version(), clients[1].Version()) {
		t.Fatal("intra-group versions must be comparable")
	}
	if version.Comparable(clients[1].Version(), clients[3].Version()) {
		t.Fatal("cross-group versions must be incomparable")
	}
}

func TestReplayValidation(t *testing.T) {
	server, err := NewForkingServer(2, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Replay(0, 0, 1); err == nil {
		t.Fatal("replay of nonexistent op accepted")
	}
	if err := server.Replay(0, -1, 0); err == nil {
		t.Fatal("negative op index accepted")
	}
}

func TestCrashServerBlocksOperations(t *testing.T) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 7)
	server := NewCrashServer(n, 1) // serve one submit, then crash
	nw := transport.NewNetwork(n, server)
	defer nw.Stop()
	c0 := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))
	c1 := ustor.NewClient(1, ring, signers[1], nw.ClientLink(1))

	if err := c0.Write([]byte("before")); err != nil {
		t.Fatalf("pre-crash write: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c1.Read(0)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("operation on crashed server returned (%v); it must block", err)
	case <-time.After(100 * time.Millisecond):
		// Blocked, as the model dictates: no wait-freedom under a faulty
		// server; FAUST handles detection via the offline channel.
	}
}

func TestReplyTamperServerNilTamper(t *testing.T) {
	const n = 1
	ring, signers := crypto.NewTestKeyring(n, 8)
	server := &ReplyTamperServer{Inner: ustor.NewServer(n)}
	nw := transport.NewNetwork(n, server)
	defer nw.Stop()
	c := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))
	if err := c.Write([]byte("x")); err != nil {
		t.Fatalf("pass-through tamper server broke the protocol: %v", err)
	}
}

func TestReplyTamperServerDropsReply(t *testing.T) {
	const n = 1
	ring, signers := crypto.NewTestKeyring(n, 9)
	server := &ReplyTamperServer{
		Inner:  ustor.NewServer(n),
		Tamper: func(from int, r *wire.Reply) *wire.Reply { return nil },
	}
	nw := transport.NewNetwork(n, server)
	defer nw.Stop()
	c := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))
	done := make(chan error, 1)
	go func() { done <- c.Write([]byte("x")) }()
	select {
	case err := <-done:
		t.Fatalf("silenced operation returned: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestDropCommitServerDetectedBySoleWriter(t *testing.T) {
	// With a single active client, dropping COMMITs forces the server to
	// show a version that does not extend the client's own: line 36.
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 10)
	server := NewDropCommitServer(n)
	nw := transport.NewNetwork(n, server)
	defer nw.Stop()
	c0 := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))

	if err := c0.Write([]byte("a")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	err := c0.Write([]byte("b"))
	if err == nil {
		t.Fatal("commit-dropping server not detected by second op")
	}
	var det *ustor.DetectionError
	if !errors.As(err, &det) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCrashServerCommitIgnoredAfterCrash(t *testing.T) {
	// Purely for coverage of the post-crash commit path.
	server := NewCrashServer(1, 0)
	server.HandleCommit(context.Background(), 0, &wire.Commit{Ver: version.New(1)})
	if r := server.HandleSubmit(context.Background(), 0, &wire.Submit{}); r != nil {
		t.Fatal("crashed server replied")
	}
}
