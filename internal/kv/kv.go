// Package kv is the authenticated key-value layer over FAUST registers:
// the application-facing data model the ROADMAP calls for.
//
// Each client owns one fail-aware register (package ustor). Instead of a
// single opaque value, the register holds a small ROOT RECORD — the
// content hash of the root node of the client's directory TREE plus
// counts — while the tree nodes and all value chunks travel over the
// transport's bulk blob channel as content-addressed blobs. The tree is
// a Merkle B+-tree (see tree.go): a mutation re-uploads only the
// root-to-leaf path it touched, and a cross-client point read fetches
// and verifies only the nodes it traverses — O(log n) small blobs per
// operation where the flat-directory design moved all n entries.
// Because the root record rides on WriteX/ReadX, every Get/Put/Delete
// inherits the protocol's guarantees end to end:
//
//   - integrity: a tampered chunk or tree node fails its content hash
//     check (every node is fetched by the hash its parent — or the root
//     record — committed) and the operation errors out before any value
//     byte is returned;
//   - fail-awareness: a forking or rolling-back server trips the usual
//     Algorithm 1 checks during the register read/write, the client
//     outputs fail and halts — through the KV API;
//   - single-writer semantics: only the register owner can change its
//     namespace (the root record is covered by the owner's signatures).
//
// Values larger than the chunk size are split into content-addressed
// chunks, deduplicated against previously uploaded ones. Chunk and node
// fetches run with bounded parallelism over the blob channel, which
// pipelines them on one connection. A validating client cache
// (content-hash-checked on every use) serves repeated chunk reads
// without bulk transfers, verified tree nodes are reused while the
// owner's root is unchanged, and CachedGetFrom serves repeated reads
// with no server round trip at all as long as the client's observed
// version of the owner's register is unchanged.
package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/version"
)

// Span names of the KV stages. Static constants (hotpathalloc): the
// record path never formats. Operation roots are created per public
// call; node/chunk spans nest under them and, through the blob channel,
// over the wire into the server's trace entry for the same ID.
const (
	spanPut    = "kv.put"
	spanGet    = "kv.get"
	spanGetF   = "kv.getfrom"
	spanList   = "kv.list"
	spanDelete = "kv.delete"
	spanNode   = "kv.node"
	spanChunk  = "kv.chunk"
)

// DefaultChunkSize is the default split size for values. Values up to
// one chunk cost exactly one blob round trip.
const DefaultChunkSize = 64 << 10

// DefaultFetchParallelism bounds how many chunk or tree-node fetches a
// single operation keeps in flight on the blob channel.
const DefaultFetchParallelism = 8

// ErrNotFound is returned when a key is absent from the namespace.
var ErrNotFound = errors.New("kv: key not found")

// Register is the slice of the ustor client the KV layer drives:
// extended reads and writes on fail-aware registers plus version
// introspection. *ustor.Client implements it. Implementations must be
// safe for concurrent use (ustor.Client serializes operations
// internally); the KV layer issues register calls without holding its
// own locks so blob traffic never queues behind a register round trip.
type Register interface {
	ID() int
	N() int
	WriteX(ctx context.Context, x []byte) (ustor.OpResult, error)
	ReadX(ctx context.Context, j int) (ustor.ReadResult, error)
	Version() version.Version
	// ObservedTimestamp returns V[j] of the client's current version
	// without copying it; the value cache consults it on every hit.
	ObservedTimestamp(j int) int64
}

var _ Register = (*ustor.Client)(nil)

// Stats counts the store's traffic split by path. Round trips through
// the register (server dispatcher) and through the bulk blob channel are
// tracked separately; cache hits explain their absence. The byte
// counters cover blob payloads only (chunks and tree nodes), which is
// what grows with namespace and value size — register records are
// constant-size.
type Stats struct {
	RegisterReads  int64 // ReadX round trips
	RegisterWrites int64 // WriteX round trips
	BlobPuts       int64 // chunk + tree-node uploads
	BlobGets       int64 // chunk + tree-node downloads
	BlobPutBytes   int64 // payload bytes uploaded
	BlobGetBytes   int64 // payload bytes downloaded
	ChunkCacheHits int64 // chunk fetches served from the validating cache
	NodeCacheHits  int64 // tree-node fetches served from the node cache
	ValueCacheHits int64 // CachedGetFrom served entirely locally
}

// Option configures a Store.
type Option func(*Store)

// WithChunkSize sets the value split size (default DefaultChunkSize).
func WithChunkSize(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.chunkSize = n
		}
	}
}

// WithChunkCacheBudget bounds the bytes the validating chunk cache may
// hold (default 64 MiB). Zero disables chunk caching.
func WithChunkCacheBudget(n int) Option {
	return func(s *Store) { s.chunkBudget = n }
}

// WithNodeCacheBudget bounds the bytes (encoded size) of verified tree
// nodes kept for reuse across reads (default 16 MiB). Zero disables node
// caching, making every remote read fetch its full path — the cold-read
// configuration the E19 experiment measures.
func WithNodeCacheBudget(n int) Option {
	return func(s *Store) { s.nodeBudget = n }
}

// WithValueCacheBudget bounds the bytes CachedGetFrom's assembled-value
// cache may hold (default 64 MiB), independent of the chunk cache's
// budget. Zero disables value caching (CachedGetFrom then always falls
// through to GetFrom).
func WithValueCacheBudget(n int) Option {
	return func(s *Store) { s.valBudget = n }
}

// WithTreeFanout sets the directory tree's node widths: a leaf splits
// beyond leaf entries, an interior node beyond interior children
// (defaults DefaultLeafFanout, DefaultInteriorFanout; minimum 2 each).
// Small fanouts make deep trees for tests; an effectively unbounded
// fanout keeps the whole namespace in one leaf, reproducing the flat
// directory design as an ablation baseline.
func WithTreeFanout(leaf, interior int) Option {
	return func(s *Store) {
		if leaf >= 2 {
			s.shape.leafMax = leaf
		}
		if interior >= 2 {
			s.shape.intMax = interior
		}
	}
}

// WithFetchParallelism bounds the concurrent blob fetches/uploads a
// single operation issues (default DefaultFetchParallelism; minimum 1).
func WithFetchParallelism(n int) Option {
	return func(s *Store) {
		if n >= 1 {
			s.fetchPar = n
		}
	}
}

// Item is one key/value pair for PutBatch.
type Item struct {
	Key   string
	Value []byte
}

// cachedValue is one fully assembled remote value in the value cache.
type cachedValue struct {
	value  []byte
	digest []byte // content hash of value, re-checked on every hit
	ownerT int64  // owner register timestamp the value was read at
}

// Store is one client's view of the KV namespace: read-write for its own
// keys, read-only (Get*From) for every other client's. Safe for
// concurrent use. Writers (Put/PutBatch/Delete) serialize with each
// other; reads run concurrently with them and with each other — the
// mutex guards only in-memory state, never a network round trip, so
// blob transfers from different operations overlap on the pipelined
// channel.
type Store struct {
	reg         Register
	blobs       transport.BlobChannel
	chunkSize   int
	chunkBudget int
	nodeBudget  int
	valBudget   int
	fetchPar    int
	shape       treeShape

	wmu sync.Mutex // serializes mutations of the own namespace

	mu         sync.Mutex
	root       *node  // own directory tree, authoritative (single writer); nil = empty
	gen        uint64 // own mutation counter, persisted in the root record
	chunkCache map[string][]byte
	chunkBytes int
	nodeCache  map[string]*node // verified, immutable tree nodes by content hash
	nodeBytes  int
	valCache   map[int]map[string]*cachedValue
	valBytes   int

	stats  statCounters // lock-free; see metrics.go
	events *obs.EventLog
}

// WithEventLog routes the store's protocol events (blob-tamper
// detections) to l instead of the process-wide default event log.
func WithEventLog(l *obs.EventLog) Option {
	return func(s *Store) { s.events = l }
}

// Open creates the store and bootstraps the own namespace from the
// register: a never-written register (nil value — see ustor.Client.Read)
// starts the empty directory; an existing root record is fetched and the
// whole tree loaded and verified so a client resuming within a process
// continues its namespace.
func Open(reg Register, blobs transport.BlobChannel, opts ...Option) (*Store, error) {
	s := &Store{
		reg:         reg,
		blobs:       blobs,
		chunkSize:   DefaultChunkSize,
		chunkBudget: 64 << 20,
		nodeBudget:  16 << 20,
		valBudget:   64 << 20,
		fetchPar:    DefaultFetchParallelism,
		shape:       treeShape{leafMax: DefaultLeafFanout, intMax: DefaultInteriorFanout},
		chunkCache:  make(map[string][]byte),
		nodeCache:   make(map[string]*node),
		valCache:    make(map[int]map[string]*cachedValue),
	}
	for _, o := range opts {
		o(s)
	}
	if s.events == nil {
		s.events = obs.Default().Events()
	}
	res, err := reg.ReadX(context.Background(), reg.ID())
	if err != nil {
		return nil, fmt.Errorf("kv: bootstrapping from own register: %w", err)
	}
	s.statRegisterRead()
	if res.Value != nil {
		rr, err := decodeRoot(res.Value)
		if err != nil {
			return nil, fmt.Errorf("kv: own register: %w", err)
		}
		root, err := s.loadTree(context.Background(), rr)
		if err != nil {
			return nil, fmt.Errorf("kv: recovering own directory: %w", err)
		}
		s.root = root
		s.gen = rr.Gen
	}
	return s, nil
}

// ID returns the owning client's index.
func (s *Store) ID() int { return s.reg.ID() }

// Stats returns a snapshot of the traffic counters. The counters are
// atomics, so this never blocks on (or races with) in-flight operations.
func (s *Store) Stats() Stats {
	return s.stats.snapshot()
}

// Root returns the current root hash of the own directory tree (the
// fixed empty-tree hash for an empty namespace).
func (s *Store) Root() []byte {
	s.mu.Lock()
	root := s.root
	s.mu.Unlock()
	if root == nil {
		return append([]byte(nil), emptyTreeRoot...)
	}
	return append([]byte(nil), root.hash...)
}

// Len returns the number of keys in the own namespace.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root == nil {
		return 0
	}
	return int(s.root.count())
}

// Height returns the number of levels of the own directory tree (0 for
// an empty namespace). Exposed for benchmarks and introspection.
func (s *Store) Height() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(treeHeight(s.root))
}

// Keys returns the own namespace's keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	root := s.root
	s.mu.Unlock()
	return treeKeys(root, nil)
}

// Put stores value under key in the own namespace: chunks are uploaded
// (deduplicated against the cache), the dirty tree path is uploaded,
// and the new root record is committed through the fail-aware register.
// The value may be empty; nil is stored as empty. A failed Put leaves
// the namespace unchanged (the previous tree is immutable; rollback is
// dropping the new root, an O(1) pointer discard).
// The context carries the operation's trace (see package obs/trace);
// pass context.Background() when untraced.
func (s *Store) Put(ctx context.Context, key string, value []byte) error {
	return s.PutBatch(ctx, []Item{{Key: key, Value: value}})
}

// PutBatch stores several key/value pairs in one commit: one tree
// rebuild, one root-record write, chunk uploads deduplicated and issued
// with bounded parallelism. Later items win on duplicate keys. The
// batch is atomic — either the single commit publishes every pair or
// the namespace is unchanged.
func (s *Store) PutBatch(ctx context.Context, items []Item) error {
	if len(items) == 0 {
		return nil
	}
	ctx, op := trace.Start(ctx, spanPut)
	defer op.End()
	// Validate everything BEFORE any byte leaves the client: an
	// oversized entry would commit state every reader — and the owner's
	// own next bootstrap — rejects as malformed.
	for i := range items {
		if err := validKey(items[i].Key); err != nil {
			return err
		}
		nchunks := (len(items[i].Value) + s.chunkSize - 1) / s.chunkSize
		if nchunks > maxChunksPerValue {
			return fmt.Errorf("kv: value of %d bytes needs %d chunks, limit %d (raise the chunk size)",
				len(items[i].Value), nchunks, maxChunksPerValue)
		}
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()

	// Chunk every value (hashing outside any lock), then collect the
	// chunks the cache doesn't already know, deduplicated across items.
	entries := make([]entry, len(items))
	type pendingChunk struct{ hash, data []byte }
	var uploads []pendingChunk
	seen := make(map[string]struct{})
	for i := range items {
		v := items[i].Value
		e := entry{Key: items[i].Key, Size: int64(len(v))}
		for off := 0; off < len(v); off += s.chunkSize {
			end := off + s.chunkSize
			if end > len(v) {
				end = len(v)
			}
			chunk := v[off:end]
			h := crypto.Hash(chunk)
			e.Chunks = append(e.Chunks, h)
			if _, dup := seen[string(h)]; !dup {
				seen[string(h)] = struct{}{}
				uploads = append(uploads, pendingChunk{hash: h, data: chunk})
			}
		}
		entries[i] = e
	}
	s.mu.Lock()
	missing := uploads[:0]
	for _, u := range uploads {
		if _, ok := s.chunkCache[string(u.hash)]; !ok {
			missing = append(missing, u)
		}
	}
	s.mu.Unlock()
	if err := s.forEachParallel(len(missing), func(k int) error {
		u := missing[k]
		cctx, h := trace.Child(ctx, spanChunk)
		defer h.End()
		if err := s.blobs.PutBlob(cctx, u.hash, u.data); err != nil {
			return fmt.Errorf("kv: uploading chunk: %w", err)
		}
		s.statBlobPut(len(u.data))
		s.mu.Lock()
		s.cacheChunk(u.hash, u.data)
		s.mu.Unlock()
		return nil
	}); err != nil {
		return err
	}

	// Copy-on-write inserts: the current tree is never modified, so a
	// commit failure needs no rollback at all.
	s.mu.Lock()
	root := s.root
	s.mu.Unlock()
	for i := range entries {
		root = treePut(root, entries[i], s.shape)
	}
	return s.commit(ctx, root)
}

// Delete removes key from the own namespace. Deleting an absent key
// returns ErrNotFound. Chunks and orphaned tree nodes are not
// garbage-collected from the blob store (content addressing makes them
// harmless; other entries or readers may share them).
func (s *Store) Delete(ctx context.Context, key string) error {
	ctx, op := trace.Start(ctx, spanDelete)
	defer op.End()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	root := s.root
	s.mu.Unlock()
	newRoot, ok := treeDelete(root, key, s.shape)
	if !ok {
		return ErrNotFound
	}
	return s.commit(ctx, newRoot)
}

// commit uploads the dirty nodes of newRoot's path (everything without a
// hash yet, bottom-up) and writes the new root record through the
// register. Only on success does the in-memory root advance; a failure
// leaves the previous, still-valid tree in place — O(1) rollback by
// construction. Caller holds s.wmu.
func (s *Store) commit(ctx context.Context, newRoot *node) error {
	rr := &rootRecord{Gen: s.gen + 1, RootHash: emptyTreeRoot}
	if newRoot != nil {
		if err := s.uploadDirty(ctx, newRoot); err != nil {
			return err
		}
		rr.NumEntries = newRoot.count()
		rr.TotalBytes = newRoot.totalBytes()
		rr.Height = treeHeight(newRoot)
		rr.RootHash = newRoot.hash
	}
	if _, err := s.reg.WriteX(ctx, encodeRoot(rr)); err != nil {
		return fmt.Errorf("kv: committing root record: %w", err)
	}
	s.mu.Lock()
	s.root = newRoot
	s.gen = rr.Gen
	s.mu.Unlock()
	s.statRegisterWrite()
	return nil
}

// uploadDirty encodes and uploads every node below n that has no content
// hash yet (the copy-on-write path of the current mutation), children
// before parents so interior encodings can name their children's
// hashes. Within one depth the nodes are independent, so each level is
// uploaded with bounded parallelism — a bulk PutBatch commit pipelines
// its sibling subtrees instead of paying one serial round trip per node.
func (s *Store) uploadDirty(ctx context.Context, root *node) error {
	var levels [][]*node
	var collect func(n *node, depth int)
	collect = func(n *node, depth int) {
		if n.hash != nil {
			return
		}
		for len(levels) <= depth {
			levels = append(levels, nil)
		}
		levels[depth] = append(levels[depth], n)
		if !n.leaf {
			for i := range n.children {
				if n.children[i].hash == nil {
					collect(n.children[i].child, depth+1)
				}
			}
		}
	}
	collect(root, 0)
	for d := len(levels) - 1; d >= 0; d-- {
		nodes := levels[d]
		if err := s.forEachParallel(len(nodes), func(k int) error {
			n := nodes[k]
			if !n.leaf {
				// Deeper levels uploaded first: every dirty child has its
				// hash by now.
				for i := range n.children {
					if c := &n.children[i]; c.hash == nil {
						c.hash = c.child.hash
					}
				}
			}
			enc := encodeNode(n)
			h := crypto.Hash(enc)
			nctx, hn := trace.Child(ctx, spanNode)
			defer hn.End()
			if err := s.blobs.PutBlob(nctx, h, enc); err != nil {
				return fmt.Errorf("kv: uploading tree node: %w", err)
			}
			s.statBlobPut(len(enc))
			n.hash = h
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// Get reads a key of the own namespace. The own directory is
// authoritative (single-writer), so Get costs no register round trip;
// chunks not in the validating cache are fetched over the blob channel
// (in parallel) and hash-checked.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	ctx, op := trace.Start(ctx, spanGet)
	defer op.End()
	s.mu.Lock()
	root := s.root
	s.mu.Unlock()
	e, ok := treeFind(root, key)
	if !ok {
		return nil, ErrNotFound
	}
	return s.assemble(ctx, e)
}

// GetFrom reads a key of client j's namespace with full authentication:
// one ReadX of j's register (fail-aware, fork-detecting), then the tree
// path and chunk fetches as needed — every fetched node hash-checked
// against the reference that named it before use. For the own namespace
// it is equivalent to Get.
func (s *Store) GetFrom(ctx context.Context, j int, key string) ([]byte, error) {
	if j == s.reg.ID() {
		return s.Get(ctx, key)
	}
	ctx, op := trace.Start(ctx, spanGetF)
	defer op.End()
	rr, ownerT, err := s.readRoot(ctx, j)
	if err != nil {
		return nil, err
	}
	if rr == nil {
		// Never-written register: the empty namespace (see the empty-read
		// semantics documented on ustor.Client.Read).
		return nil, ErrNotFound
	}
	e, err := s.remoteFind(ctx, rr, key)
	if err != nil {
		return nil, err
	}
	value, err := s.assemble(ctx, e)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.rememberValueLocked(j, key, value, ownerT)
	s.mu.Unlock()
	return value, nil
}

// ListFrom returns the sorted keys of client j's namespace, fetching and
// verifying every node of j's current directory tree (leaves are where
// the keys live, so a listing is necessarily O(n); the level-by-level
// fetches run with bounded parallelism).
func (s *Store) ListFrom(ctx context.Context, j int) ([]string, error) {
	if j == s.reg.ID() {
		return s.Keys(), nil
	}
	ctx, op := trace.Start(ctx, spanList)
	defer op.End()
	rr, _, err := s.readRoot(ctx, j)
	if err != nil {
		return nil, err
	}
	if rr == nil {
		return nil, nil
	}
	return s.remoteKeys(ctx, rr)
}

// CachedGetFrom is GetFrom with register-version-based caching: when the
// client's observed version of j's register is unchanged since the value
// was last read, the cached value is digest-checked and returned with NO
// server round trip. The client's knowledge of j advances whenever any
// of its operations observes a newer version of j (Algorithm 1's L
// walk), at which point the stale entry is invalidated and the next call
// falls through to a fresh GetFrom.
//
// The freshness contract is therefore weaker than GetFrom's: the value
// is as fresh as the client's last contact with the server, never
// fresher. Use GetFrom when read-your-peers'-writes matters.
func (s *Store) CachedGetFrom(ctx context.Context, j int, key string) ([]byte, error) {
	if j == s.reg.ID() {
		return s.Get(ctx, key)
	}
	s.mu.Lock()
	if byKey := s.valCache[j]; byKey != nil {
		if cv, ok := byKey[key]; ok {
			if cv.ownerT == s.reg.ObservedTimestamp(j) && bytes.Equal(crypto.Hash(cv.value), cv.digest) {
				s.statValueCacheHit()
				out := append([]byte(nil), cv.value...)
				s.mu.Unlock()
				return out, nil
			}
			delete(byKey, key) // version moved or digest check failed
			s.valBytes -= len(cv.value)
		}
	}
	s.mu.Unlock()
	return s.GetFrom(ctx, j, key)
}

// readRoot performs the authenticated register read of client j and
// returns j's current root record (nil for a never-written register)
// plus the owner timestamp this read observed (MEM[j].T, which
// Algorithm 1 line 51 pins to V[j] at the moment of the read).
func (s *Store) readRoot(ctx context.Context, j int) (*rootRecord, int64, error) {
	res, err := s.reg.ReadX(ctx, j)
	if err != nil {
		return nil, 0, fmt.Errorf("kv: reading register %d: %w", j, err)
	}
	s.statRegisterRead()
	// WriterTimestamp is the owner timestamp of THIS read (line 51 pins
	// it to V[j] during the operation). Sampling ObservedTimestamp here
	// instead would race with concurrent operations on the shared
	// register client and could tag the value newer than it is.
	ownerT := res.WriterTimestamp
	if res.Value == nil {
		return nil, ownerT, nil
	}
	rr, err := decodeRoot(res.Value)
	if err != nil {
		return nil, 0, fmt.Errorf("kv: register %d: %w", j, err)
	}
	return rr, ownerT, nil
}

// rememberValueLocked stores a remote value in the value cache, tagged
// with ownerT — the owner's register timestamp observed by the ReadX
// that produced the value (NOT re-sampled here: a concurrent direct
// operation on the shared register client could have advanced the
// observed version meanwhile, and tagging a stale value with the newer
// timestamp would defeat invalidation). The cache has its own byte
// budget (WithValueCacheBudget): arbitrary entries are evicted to stay
// under it, and values that alone exceed it are simply not cached.
func (s *Store) rememberValueLocked(j int, key string, value []byte, ownerT int64) {
	if s.valBudget <= 0 || len(value) > s.valBudget {
		return
	}
	for s.valBytes+len(value) > s.valBudget && s.valBytes > 0 {
		for owner, byKey := range s.valCache {
			for k, cv := range byKey {
				delete(byKey, k)
				s.valBytes -= len(cv.value)
				break
			}
			if len(byKey) == 0 {
				delete(s.valCache, owner)
			}
			break
		}
	}
	byKey := s.valCache[j]
	if byKey == nil {
		byKey = make(map[string]*cachedValue)
		s.valCache[j] = byKey
	}
	if old, ok := byKey[key]; ok {
		s.valBytes -= len(old.value)
	}
	byKey[key] = &cachedValue{
		value:  append([]byte(nil), value...),
		digest: crypto.Hash(value),
		ownerT: ownerT,
	}
	s.valBytes += len(value)
}

// remoteFind walks client j's committed tree from the root record to the
// leaf responsible for key, fetching each node by the hash its parent
// declared and validating the declared subtree facts at every step. The
// root node's totals are checked against the root record, so the
// metadata a reader reports is pinned to the register-committed hash.
func (s *Store) remoteFind(ctx context.Context, rr *rootRecord, key string) (*entry, error) {
	if rr.NumEntries == 0 {
		return nil, ErrNotFound
	}
	n, err := s.getNode(ctx, rr.RootHash)
	if err != nil {
		return nil, err
	}
	if n.count() != rr.NumEntries || n.totalBytes() != rr.TotalBytes {
		return nil, errors.New("kv: directory metadata mismatch")
	}
	for depth := uint32(1); ; depth++ {
		if n.leaf {
			if depth != rr.Height {
				return nil, errors.New("kv: tree shape mismatch")
			}
			i, ok := findEntry(n.entries, key)
			if !ok {
				return nil, ErrNotFound
			}
			return &n.entries[i], nil
		}
		if depth >= rr.Height {
			return nil, errors.New("kv: tree shape mismatch")
		}
		if key < n.children[0].minKey {
			// The committed separator keys prove absence without
			// descending further.
			return nil, ErrNotFound
		}
		c := &n.children[childIndex(n.children, key)]
		child, err := s.getNode(ctx, c.hash)
		if err != nil {
			return nil, err
		}
		if err := checkRef(child, c.minKey, c.count, c.bytes); err != nil {
			return nil, err
		}
		n = child
	}
}

// remoteKeys fetches and verifies client j's whole tree level by level
// (bounded-parallel fetches) and returns the sorted key list.
func (s *Store) remoteKeys(ctx context.Context, rr *rootRecord) ([]string, error) {
	if rr.NumEntries == 0 {
		return nil, nil
	}
	root, err := s.getNode(ctx, rr.RootHash)
	if err != nil {
		return nil, err
	}
	if root.count() != rr.NumEntries || root.totalBytes() != rr.TotalBytes {
		return nil, errors.New("kv: directory metadata mismatch")
	}
	level := []*node{root}
	for depth := uint32(1); ; depth++ {
		if level[0].leaf {
			if depth != rr.Height {
				return nil, errors.New("kv: tree shape mismatch")
			}
			keys := make([]string, 0, rr.NumEntries)
			for _, n := range level {
				if !n.leaf {
					return nil, errors.New("kv: tree shape mismatch")
				}
				for i := range n.entries {
					keys = append(keys, n.entries[i].Key)
				}
			}
			for i := 1; i < len(keys); i++ {
				if keys[i] <= keys[i-1] {
					return nil, errors.New("kv: directory keys not strictly sorted")
				}
			}
			return keys, nil
		}
		if depth >= rr.Height {
			return nil, errors.New("kv: tree shape mismatch")
		}
		var refs []*childRef
		for _, n := range level {
			if n.leaf {
				return nil, errors.New("kv: tree shape mismatch")
			}
			for i := range n.children {
				refs = append(refs, &n.children[i])
			}
		}
		next := make([]*node, len(refs))
		if err := s.forEachParallel(len(refs), func(k int) error {
			child, err := s.getNode(ctx, refs[k].hash)
			if err != nil {
				return err
			}
			if err := checkRef(child, refs[k].minKey, refs[k].count, refs[k].bytes); err != nil {
				return err
			}
			next[k] = child
			return nil
		}); err != nil {
			return nil, err
		}
		level = next
	}
}

// loadTree fetches and verifies the owner's entire tree at Open, level
// by level (so the fetch parallelism stays bounded at fetchPar, never
// compounding across depths), linking the nodes in memory so later
// operations run without node fetches. The structure checks are the
// same every remote read performs. Children are linked on COPIES of the
// decoded nodes: cached nodes are shared and immutable, the owner tree
// needs child pointers.
func (s *Store) loadTree(ctx context.Context, rr *rootRecord) (*node, error) {
	if rr.NumEntries == 0 {
		return nil, nil
	}
	root, err := s.loadNodeCopy(ctx, rr.RootHash)
	if err != nil {
		return nil, err
	}
	if root.count() != rr.NumEntries || root.totalBytes() != rr.TotalBytes {
		return nil, errors.New("kv: directory metadata mismatch")
	}
	level := []*node{root}
	for depth := uint32(1); ; depth++ {
		if level[0].leaf {
			if depth != rr.Height {
				return nil, errors.New("kv: tree shape mismatch")
			}
			for _, n := range level {
				if !n.leaf {
					return nil, errors.New("kv: tree shape mismatch")
				}
			}
			return root, nil
		}
		if depth >= rr.Height {
			return nil, errors.New("kv: tree shape mismatch")
		}
		var refs []*childRef
		for _, n := range level {
			if n.leaf {
				return nil, errors.New("kv: tree shape mismatch")
			}
			for i := range n.children {
				refs = append(refs, &n.children[i])
			}
		}
		next := make([]*node, len(refs))
		if err := s.forEachParallel(len(refs), func(k int) error {
			child, err := s.loadNodeCopy(ctx, refs[k].hash)
			if err != nil {
				return err
			}
			if err := checkRef(child, refs[k].minKey, refs[k].count, refs[k].bytes); err != nil {
				return err
			}
			refs[k].child = child // distinct parents' slices: no write overlap
			next[k] = child
			return nil
		}); err != nil {
			return nil, err
		}
		level = next
	}
}

// loadNodeCopy fetches a verified node and returns a private copy with
// its hash resolved, safe for the owner tree to link children into.
func (s *Store) loadNodeCopy(ctx context.Context, hash []byte) (*node, error) {
	dn, err := s.getNode(ctx, hash)
	if err != nil {
		return nil, err
	}
	n := &node{leaf: dn.leaf, entries: dn.entries, hash: append([]byte(nil), hash...)}
	if !dn.leaf {
		n.children = append([]childRef(nil), dn.children...)
	}
	return n, nil
}

// getNode returns the verified tree node stored under hash, serving from
// the node cache when possible. A fetched blob is hash-checked against
// the hash that named it (committed by the parent node or the root
// record) BEFORE decoding; cache entries were verified the same way at
// insertion and are immutable afterwards.
func (s *Store) getNode(ctx context.Context, hash []byte) (*node, error) {
	key := string(hash)
	s.mu.Lock()
	if n, ok := s.nodeCache[key]; ok {
		s.statNodeCacheHit()
		s.mu.Unlock()
		return n, nil
	}
	s.mu.Unlock()
	ctx, h := trace.Child(ctx, spanNode)
	defer h.End()
	blob, err := s.blobs.GetBlob(ctx, hash)
	if err != nil {
		return nil, fmt.Errorf("kv: fetching tree node: %w", err)
	}
	if !bytes.Equal(crypto.Hash(blob), hash) {
		s.events.Record(obs.EventBlobTamper, s.reg.ID(), "",
			fmt.Sprintf("tree node %x fails its content hash", hash))
		return nil, errors.New("kv: tree node digest mismatch (tampered tree node)")
	}
	n, err := decodeNode(blob)
	if err != nil {
		return nil, err
	}
	s.statBlobGet(len(blob))
	s.mu.Lock()
	s.cacheNode(key, n, len(blob))
	s.mu.Unlock()
	return n, nil
}

// cacheNode stores a verified node under its hash, evicting arbitrary
// entries when over budget. size is the encoded length, used as the
// budget unit. A hash already present (two concurrent misses racing) is
// left alone so the accounting never double-counts. Caller holds s.mu.
func (s *Store) cacheNode(key string, n *node, size int) {
	if s.nodeBudget <= 0 || size > s.nodeBudget {
		return
	}
	if _, ok := s.nodeCache[key]; ok {
		return
	}
	for s.nodeBytes+size > s.nodeBudget && len(s.nodeCache) > 0 {
		for k, old := range s.nodeCache {
			delete(s.nodeCache, k)
			if old.leaf {
				s.nodeBytes -= encodedLeafSize(old.entries)
			} else {
				s.nodeBytes -= encodedInteriorSize(old.children)
			}
			break
		}
	}
	if s.nodeBytes+size > s.nodeBudget {
		return
	}
	s.nodeCache[key] = n
	s.nodeBytes += size
}

// assemble reconstructs an entry's value from its chunks, fetching what
// the validating cache does not hold with bounded parallelism and
// hash-verifying every chunk before use.
func (s *Store) assemble(ctx context.Context, e *entry) ([]byte, error) {
	if e.Size == 0 && len(e.Chunks) == 0 {
		return []byte{}, nil
	}
	chunks := make([][]byte, len(e.Chunks))
	var missing [][]byte            // distinct hashes to fetch, in order
	missingAt := map[string][]int{} // hash -> every chunk index using it
	s.mu.Lock()
	for i, h := range e.Chunks {
		if cached, ok := s.chunkCache[string(h)]; ok {
			if bytes.Equal(crypto.Hash(cached), h) {
				chunks[i] = cached
				s.statChunkCacheHit()
				continue
			}
			// The validating part of the cache: a corrupted entry is
			// dropped and refetched rather than served.
			delete(s.chunkCache, string(h))
			s.chunkBytes -= len(cached)
		}
		if _, dup := missingAt[string(h)]; !dup {
			missing = append(missing, h)
		}
		missingAt[string(h)] = append(missingAt[string(h)], i)
	}
	s.mu.Unlock()
	if err := s.forEachParallel(len(missing), func(k int) error {
		h := missing[k]
		cctx, hc := trace.Child(ctx, spanChunk)
		defer hc.End()
		fetched, err := s.blobs.GetBlob(cctx, h)
		if err != nil {
			return fmt.Errorf("kv: fetching chunk: %w", err)
		}
		if !bytes.Equal(crypto.Hash(fetched), h) {
			s.events.Record(obs.EventBlobTamper, s.reg.ID(), "",
				fmt.Sprintf("chunk %x fails its content hash", h))
			return errors.New("kv: chunk digest mismatch (tampered chunk)")
		}
		s.statBlobGet(len(fetched))
		s.mu.Lock()
		s.cacheChunk(h, fetched)
		s.mu.Unlock()
		for _, i := range missingAt[string(h)] {
			chunks[i] = fetched
		}
		return nil
	}); err != nil {
		return nil, err
	}
	value := make([]byte, 0, e.Size)
	for _, c := range chunks {
		value = append(value, c...)
	}
	if int64(len(value)) != e.Size {
		return nil, errors.New("kv: reassembled value size mismatch")
	}
	return value, nil
}

// cacheChunk stores a verified chunk, evicting arbitrary entries when
// over budget. A hash already present is left alone — content
// addressing guarantees the bytes are identical, and re-inserting would
// double-count the size. Caller holds s.mu.
func (s *Store) cacheChunk(hash, chunk []byte) {
	if s.chunkBudget <= 0 {
		return
	}
	if _, ok := s.chunkCache[string(hash)]; ok {
		return
	}
	for s.chunkBytes+len(chunk) > s.chunkBudget && len(s.chunkCache) > 0 {
		for k, v := range s.chunkCache {
			delete(s.chunkCache, k)
			s.chunkBytes -= len(v)
			break
		}
	}
	if s.chunkBytes+len(chunk) > s.chunkBudget {
		return
	}
	s.chunkCache[string(hash)] = append([]byte(nil), chunk...)
	s.chunkBytes += len(chunk)
}

// forEachParallel runs f(0..n-1) with at most s.fetchPar invocations in
// flight and returns the first error (after letting started calls
// finish, so no goroutine outlives the operation).
func (s *Store) forEachParallel(n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	par := s.fetchPar
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, par)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			errs <- f(i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
