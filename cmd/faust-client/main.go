// Faust-client is an interactive client for a faust-server. It keeps the
// USTOR protocol state for one client identity and runs a small REPL:
//
//	write <text>      write to the own register
//	read <j>          read register j
//	put <key> <text>  store a key-value pair in the own KV namespace
//	get <key>         read a key of the own namespace
//	del <key>         delete a key of the own namespace
//	ls [j]            list the own (or client j's) KV namespace
//	getfrom <j> <key> authenticated read of client j's namespace
//	cut               print the stability cut (requires -listen/-peers)
//	status            print failure state
//	stats             print session KV traffic and round-trip latency stats
//	trace             print the span tree of the last traced operation
//	quit
//
// Without -listen/-peers it runs the bare USTOR protocol (storage with
// failure detection, no stability). With them it runs the full FAUST
// stack, exchanging PROBE/VERSION/FAILURE messages with peers over TCP.
// The KV commands drive the authenticated key-value layer (package kv):
// values are chunked over the bulk blob channel and every read verifies
// content hashes against the owner's Merkle root. They are available in
// USTOR mode (the kv layer needs the extended register API).
//
// The client dials with the v2 handshake (naming the shard, "default"
// when -shard is empty), so a server-side rejection — unknown shard,
// out-of-range id — is reported with the server's reason and a non-zero
// exit instead of a bare connection error on the first operation.
// -legacy forces the pre-shard 4-byte hello for old servers.
//
// Keys are derived from -seed (demo-grade; all parties must use the same
// seed and -n).
//
// Example (three shells):
//
//	faust-server -addr :7440 -n 2
//	faust-client -server localhost:7440 -n 2 -id 0 -listen :7450 -peers 1=localhost:7451
//	faust-client -server localhost:7440 -n 2 -id 1 -listen :7451 -peers 0=localhost:7450
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/kv"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
)

func main() {
	server := flag.String("server", "localhost:7440", "faust-server address")
	shardName := flag.String("shard", "", "shard name on a multi-tenant server; empty = the default shard")
	legacy := flag.Bool("legacy", false, "use the pre-shard 4-byte hello (no server ack; for old servers)")
	n := flag.Int("n", 3, "number of clients in this shard's group (must match the server)")
	id := flag.Int("id", 0, "this client's identity (0..n-1)")
	seed := flag.Int64("seed", 42, "deterministic demo key seed (must match peers)")
	listen := flag.String("listen", "", "offline-channel listen address (enables FAUST)")
	peersFlag := flag.String("peers", "", "offline peers as id=host:port,id=host:port")
	probe := flag.Duration("probe", 2*time.Second, "probe timeout (FAUST delta)")
	flag.Parse()

	if *id < 0 || *id >= *n {
		log.Fatalf("faust-client: -id %d out of range [0,%d)", *id, *n)
	}
	// Tracing is always on in the interactive client: at human pace the
	// recording cost is nil, every operation is retained (head 1-in-1),
	// and the `trace` REPL command can inspect the last one. The keep bit
	// travels on the wire, so a tracing-enabled server retains its half of
	// exactly these traces.
	trace.SetEnabled(true)
	trace.Configure(1, 50*time.Millisecond)
	if *legacy && *shardName != "" {
		log.Fatalf("faust-client: -legacy cannot name a -shard (the v1 hello always lands on %q)", transport.DefaultShard)
	}
	ring, signers := crypto.NewTestKeyring(*n, *seed)
	var link transport.Link
	var err error
	if *legacy {
		link, err = transport.DialTCP(*server, *id)
	} else {
		// v2 handshake: the server acks, so an unknown shard or a
		// preflight-rejected id fails right here with the server's
		// reason (and a non-zero exit) instead of surfacing as a bare
		// connection error on the first operation.
		link, err = transport.DialTCPShard(*server, *shardName, *id)
	}
	if err != nil {
		log.Fatalf("faust-client: %v", err)
	}

	var fclient *faustproto.Client
	var uclient *ustor.Client
	if *listen != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			log.Fatalf("faust-client: %v", err)
		}
		mesh, err := offline.ListenTCP(*id, *listen, peers, time.Second)
		if err != nil {
			log.Fatalf("faust-client: %v", err)
		}
		cfg := faustproto.Config{ProbeTimeout: *probe, PollInterval: *probe / 4}
		fclient = faustproto.NewClient(*id, ring, signers[*id], link, mesh,
			faustproto.WithConfig(cfg),
			faustproto.WithStableHandler(func(w []int64) {
				fmt.Printf("\n[stable] cut=%v\n> ", w)
			}),
			faustproto.WithFailHandler(func(err error) {
				fmt.Printf("\n[FAIL] server exposed: %v\n> ", err)
			}),
		)
		fclient.Start()
		defer fclient.Stop()
		fmt.Printf("faust-client %d/%d%s: FAUST mode (offline channel on %s)\n", *id, *n, shardSuffix(*shardName), *listen)
	} else {
		uclient = ustor.NewClient(*id, ring, signers[*id], link,
			ustor.WithFailHandler(func(err error) {
				fmt.Printf("\n[FAIL] server exposed: %v\n> ", err)
			}))
		fmt.Printf("faust-client %d/%d%s: USTOR mode (no offline channel)\n", *id, *n, shardSuffix(*shardName))
	}

	repl(&session{
		fc:     fclient,
		uc:     uclient,
		server: *server,
		shard:  *shardName,
	})
}

func shardSuffix(shard string) string {
	if shard == "" {
		return ""
	}
	return fmt.Sprintf(" (shard %q)", shard)
}

func parsePeers(s string) (map[int]string, error) {
	peers := make(map[int]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		pid, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		peers[pid] = kv[1]
	}
	return peers, nil
}

// session bundles the protocol clients with the lazily opened KV store.
type session struct {
	fc     *faustproto.Client
	uc     *ustor.Client
	server string
	shard  string
	store  *kv.Store
}

// kvStore opens the KV layer on first use: a blob channel to the shard
// plus a kv.Store over the USTOR client.
func (s *session) kvStore() (*kv.Store, error) {
	if s.store != nil {
		return s.store, nil
	}
	if s.uc == nil {
		return nil, errors.New("kv commands need USTOR mode (run without -listen/-peers)")
	}
	// A TCP blob channel is sticky-poisoned after any connection-level
	// failure; the redial wrapper re-dials and retries (bounded) so a
	// bounced server or dropped connection doesn't strand the KV session.
	ch := transport.NewRedialBlobChannel(func() (transport.BlobChannel, error) {
		return transport.DialTCPBlob(s.server, s.shard)
	}, transport.RedialOptions{})
	st, err := kv.Open(s.uc, ch)
	if err != nil {
		_ = ch.Close()
		return nil, err
	}
	s.store = st
	return st, nil
}

func repl(s *session) {
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "write":
			if len(fields) < 2 {
				fmt.Println("usage: write <text>")
				break
			}
			text := strings.Join(fields[1:], " ")
			if s.fc != nil {
				ts, err := s.fc.Write([]byte(text))
				report(err, func() { fmt.Printf("ok, timestamp %d\n", ts) })
			} else {
				res, err := s.uc.WriteX(context.Background(), []byte(text))
				report(err, func() { fmt.Printf("ok, timestamp %d\n", res.Timestamp) })
			}
		case "read":
			if len(fields) != 2 {
				fmt.Println("usage: read <register>")
				break
			}
			j, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Printf("bad register: %v\n", err)
				break
			}
			if s.fc != nil {
				v, ts, err := s.fc.Read(j)
				report(err, func() { fmt.Printf("%q (timestamp %d)\n", v, ts) })
			} else {
				v, err := s.uc.Read(j)
				report(err, func() { fmt.Printf("%q\n", v) })
			}
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <text>")
				break
			}
			withKV(s, func(st *kv.Store) error {
				if err := st.Put(context.Background(), fields[1], []byte(strings.Join(fields[2:], " "))); err != nil {
					return err
				}
				fmt.Printf("ok, %d keys, root %x...\n", st.Len(), st.Root()[:8])
				return nil
			})
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				break
			}
			withKV(s, func(st *kv.Store) error {
				v, err := st.Get(context.Background(), fields[1])
				if err != nil {
					return err
				}
				fmt.Printf("%q\n", v)
				return nil
			})
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				break
			}
			withKV(s, func(st *kv.Store) error {
				if err := st.Delete(context.Background(), fields[1]); err != nil {
					return err
				}
				fmt.Println("ok")
				return nil
			})
		case "ls":
			if len(fields) > 2 {
				fmt.Println("usage: ls [client]")
				break
			}
			withKV(s, func(st *kv.Store) error {
				keys := st.Keys()
				if len(fields) == 2 {
					j, err := strconv.Atoi(fields[1])
					if err != nil {
						return fmt.Errorf("bad client index: %w", err)
					}
					if keys, err = st.ListFrom(context.Background(), j); err != nil {
						return err
					}
				}
				for _, k := range keys {
					fmt.Println(k)
				}
				fmt.Printf("(%d keys)\n", len(keys))
				return nil
			})
		case "getfrom":
			if len(fields) != 3 {
				fmt.Println("usage: getfrom <client> <key>")
				break
			}
			withKV(s, func(st *kv.Store) error {
				j, err := strconv.Atoi(fields[1])
				if err != nil {
					return fmt.Errorf("bad client index: %w", err)
				}
				v, err := st.GetFrom(context.Background(), j, fields[2])
				if err != nil {
					return err
				}
				fmt.Printf("%q\n", v)
				return nil
			})
		case "cut":
			if s.fc == nil {
				fmt.Println("stability cuts need FAUST mode (-listen/-peers)")
				break
			}
			fmt.Printf("cut=%v\n", s.fc.StableCut())
		case "stats":
			printStats(s)
		case "trace":
			trace.Default().Sweep()
			if t := trace.Default().Last(); t != nil {
				t.WriteTree(os.Stdout)
			} else {
				fmt.Println("no trace retained yet (run an operation first)")
			}
		case "status":
			var failed bool
			var reason error
			if s.fc != nil {
				failed, reason = s.fc.Failed()
			} else {
				failed, reason = s.uc.Failed()
			}
			if failed {
				fmt.Printf("FAILED: %v\n", reason)
			} else {
				fmt.Println("ok (no failure detected)")
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: write <text> | read <j> | put <k> <text> | get <k> | del <k> | ls [j] | getfrom <j> <k> | cut | status | stats | trace | quit")
		}
		fmt.Print("> ")
	}
}

// printStats prints the session's KV traffic counters (when the KV layer
// has been used) and the client-observed register round-trip latency
// histograms (ustor-level, so write/read latency shows in both modes).
func printStats(s *session) {
	if s.store != nil {
		st := s.store.Stats()
		fmt.Printf("kv traffic:\n")
		fmt.Printf("  register reads / writes:   %d / %d\n", st.RegisterReads, st.RegisterWrites)
		fmt.Printf("  blob puts / gets:          %d / %d\n", st.BlobPuts, st.BlobGets)
		fmt.Printf("  blob bytes up / down:      %d / %d\n", st.BlobPutBytes, st.BlobGetBytes)
		fmt.Printf("  cache hits (chunk/node/value): %d / %d / %d\n",
			st.ChunkCacheHits, st.NodeCacheHits, st.ValueCacheHits)
	} else {
		fmt.Println("kv traffic: (kv layer not used yet)")
	}
	read, write := ustor.OpLatency()
	printLatency("read", read)
	printLatency("write", write)
}

func printLatency(op string, h obs.HistSnapshot) {
	if h.Count == 0 {
		fmt.Printf("%s round trips: none\n", op)
		return
	}
	fmt.Printf("%s round trips: %d  mean %.2fms  p50 %.2fms  p99 %.2fms  max %.2fms\n",
		op, h.Count, float64(h.Sum)/float64(h.Count)/1e6,
		float64(h.Quantile(0.50))/1e6, float64(h.Quantile(0.99))/1e6, float64(h.Max)/1e6)
}

// withKV runs a KV command against the lazily opened store.
func withKV(s *session, f func(*kv.Store) error) {
	st, err := s.kvStore()
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if err := f(st); err != nil {
		fmt.Printf("error: %v\n", err)
	}
}

func report(err error, onOK func()) {
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	onOK()
}
