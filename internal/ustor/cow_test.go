package ustor

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/version"
	"faust/internal/wire"
)

// recordingCore wraps a Server and keeps every REPLY it produced together
// with the reply's encoding at production time. The COW property test
// re-encodes the replies after the server state has moved on and demands
// byte-identical output — any aliasing of mutable server state into a
// reply would change the re-encoding.
type recordingCore struct {
	*Server
	mu      sync.Mutex
	replies []*wire.Reply
	encs    [][]byte
}

func (r *recordingCore) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	reply := r.Server.HandleSubmit(ctx, from, s)
	if reply != nil {
		r.mu.Lock()
		r.replies = append(r.replies, reply)
		r.encs = append(r.encs, wire.Encode(reply))
		r.mu.Unlock()
	}
	return reply
}

// TestReplySnapshotsImmuneToServerMutations is the copy-on-write aliasing
// property test: REPLY messages captured at any point must not change when
// the server's MEM, SVER, L and P are subsequently mutated by further
// submits, commits (which truncate L and replace P entries) and state
// restores. This pins the deep-clone semantics the pre-COW server
// guaranteed by copying.
func TestReplySnapshotsImmuneToServerMutations(t *testing.T) {
	const n = 4
	ring, signers := crypto.NewTestKeyring(n, 77)
	core := &recordingCore{Server: NewServer(n)}
	nw := transport.NewNetwork(n, core)
	t.Cleanup(nw.Stop)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		// Mix piggyback and plain commit clients: piggyback keeps tuples in
		// L longer, so captured replies carry non-empty L snapshots that a
		// later commit truncates.
		var opts []ClientOption
		if i%2 == 1 {
			opts = append(opts, WithCommitPiggyback())
		}
		clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i), opts...)
	}

	genBefore := core.Server.Generation()
	for round := 0; round < 6; round++ {
		for i, c := range clients {
			if err := c.Write([]byte(fmt.Sprintf("r%d-c%d", round, i))); err != nil {
				t.Fatalf("write: %v", err)
			}
			if _, err := c.Read((i + round) % n); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}
	for _, c := range clients {
		if err := c.Flush(); err != nil { // deliver deferred piggyback COMMITs
			t.Fatal(err)
		}
	}
	// One more burst so the flushed COMMITs' L-truncations and P updates
	// happen while all earlier replies are still held.
	for i, c := range clients {
		if err := c.Write([]byte(fmt.Sprintf("final-%d", i))); err != nil {
			t.Fatalf("final write: %v", err)
		}
	}
	nw.Stop() // quiesce before touching captured replies

	if got := core.Server.Generation(); got == genBefore {
		t.Fatal("server generation did not advance; the test mutated nothing")
	}
	core.mu.Lock()
	defer core.mu.Unlock()
	if len(core.replies) == 0 {
		t.Fatal("no replies captured")
	}
	var withL int
	for i, reply := range core.replies {
		if len(reply.L) > 0 {
			withL++
		}
		if got := wire.Encode(reply); !bytes.Equal(got, core.encs[i]) {
			t.Fatalf("reply %d changed after server mutations:\n  captured: %x\n  now:      %x", i, core.encs[i], got)
		}
	}
	if withL == 0 {
		t.Fatal("no captured reply carried a non-empty L; the test exercised no interesting snapshot")
	}
}

// TestReplyUnaffectedByDirectHandlerMutations drives the raw server
// handlers (the server verifies nothing, so synthetic messages suffice)
// and checks the sharpest COW edges one by one: a reply captured while
// tuples sit in L must survive the commit that truncates L, replaces the
// committer's SVER entry and installs a new P array, and must survive
// later appends to L that reuse the backing array beyond the snapshot.
func TestReplyUnaffectedByDirectHandlerMutations(t *testing.T) {
	const n = 3
	server := NewServer(n)
	submit := func(from int, t64 int64) *wire.Reply {
		return server.HandleSubmit(context.Background(), from, &wire.Submit{
			T: t64,
			Inv: wire.Invocation{
				Client: from, Op: wire.OpWrite, Reg: from,
				SubmitSig: []byte(fmt.Sprintf("sig-%d-%d", from, t64)),
			},
			Value:   []byte(fmt.Sprintf("v-%d-%d", from, t64)),
			DataSig: []byte(fmt.Sprintf("data-%d-%d", from, t64)),
		})
	}

	// Build up L = [c0, c1] and capture a reply whose snapshot holds both.
	submit(0, 1)
	submit(1, 1)
	captured := submit(2, 1) // sees L = [c0's tuple, c1's tuple]
	if len(captured.L) != 2 {
		t.Fatalf("captured reply has %d tuples in L, want 2", len(captured.L))
	}
	enc := wire.Encode(captured)

	// Mutation 1: append to L (same backing array, beyond the snapshot).
	submit(0, 2)
	// Mutation 2: a commit with a larger version truncates L, replaces
	// SVER[1] and installs a new P — the structures the snapshot aliases.
	ver := version.New(n)
	ver.V[1] = 1
	ver.M[1] = bytes.Repeat([]byte{0xAB}, crypto.HashSize)
	server.HandleCommit(context.Background(), 1, &wire.Commit{Ver: ver, CommitSig: []byte("phi"), ProofSig: []byte("psi")})
	// Mutation 3: more traffic on the truncated L.
	submit(1, 2)
	submit(2, 2)

	if got := wire.Encode(captured); !bytes.Equal(got, enc) {
		t.Fatalf("captured reply changed after direct handler mutations:\n  captured: %x\n  now:      %x", enc, got)
	}
}

// TestConcurrentClientsRaceStress hammers one server with 8 concurrent
// clients over the in-memory network (run under -race in CI). The client
// goroutines race against the dispatcher and against each other while the
// COW snapshots flow out of the critical section; any write-through into a
// handed-out reply is a data race the detector flags.
func TestConcurrentClientsRaceStress(t *testing.T) {
	const n, opsPer = 8, 40
	tc := newCluster(t, n)
	var wg sync.WaitGroup
	for i, c := range tc.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				if k%3 == 0 {
					if _, err := c.Read((i + k) % n); err != nil {
						t.Errorf("client %d read: %v", i, err)
						return
					}
				} else if err := c.Write([]byte(fmt.Sprintf("c%d-%d", i, k))); err != nil {
					t.Errorf("client %d write: %v", i, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, c := range tc.clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d failed under concurrency: %v", i, reason)
		}
	}
}

// TestConcurrentDirectHandlersRaceStress bypasses the transport and calls
// the server's handlers from 8 goroutines at once — the server documents
// itself safe for concurrent handler calls — while each goroutine walks
// the COW snapshots (L, P, SVER) of the replies it receives. Run under
// -race this checks the mutex discipline and that snapshot readers never
// observe in-place mutation.
func TestConcurrentDirectHandlersRaceStress(t *testing.T) {
	const n, opsPer = 8, 60
	server := NewServer(n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 1; k <= opsPer; k++ {
				reply := server.HandleSubmit(context.Background(), g, &wire.Submit{
					T: int64(k),
					Inv: wire.Invocation{
						Client: g, Op: wire.OpWrite, Reg: g,
						SubmitSig: []byte{byte(g), byte(k)},
					},
					Value:   []byte(fmt.Sprintf("g%d-%d", g, k)),
					DataSig: []byte{byte(k)},
				})
				if reply == nil {
					t.Errorf("goroutine %d: nil reply", g)
					return
				}
				// Walk the snapshot while other goroutines mutate state.
				var sum int
				for _, inv := range reply.L {
					sum += inv.Client + len(inv.SubmitSig)
				}
				for _, p := range reply.P {
					sum += len(p)
				}
				sum += len(reply.CVer.Ver.V)
				_ = sum
				ver := version.New(n)
				ver.V[g] = int64(k)
				server.HandleCommit(context.Background(), g, &wire.Commit{Ver: ver, CommitSig: []byte{byte(g)}, ProofSig: []byte{byte(k)}})
			}
		}(g)
	}
	wg.Wait()
}
