package blobfleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/transport"
)

// Fleet defaults. Retries are deliberately cheap and short: the layer
// above (the blob channel serving a client) is synchronous, so a slow
// backend must fail over quickly rather than be nursed.
const (
	DefaultWriteReplicas = 2
	DefaultRetryAttempts = 3
	DefaultRetryBase     = 2 * time.Millisecond
	DefaultRetryCap      = 50 * time.Millisecond
	DefaultOpDeadline    = 2 * time.Second
	DefaultProbeInterval = time.Second
)

// Options configures a Failover fleet. The zero value gets the defaults
// above; a negative ProbeInterval disables the background prober (tests
// drive ProbeNow instead).
type Options struct {
	// Shard labels this fleet's metrics and events (one fleet per shard
	// in a multi-tenant server).
	Shard string
	// WriteReplicas is W: puts go to the first W alive backends in
	// order. Capped at the fleet size.
	WriteReplicas int
	// EMA aliveness parameters (see ema.go).
	Alpha, DeadBelow, AliveAbove float64
	// Retry policy per backend per operation: RetryAttempts tries with
	// capped exponential backoff (RetryBase doubling up to RetryCap,
	// jittered), all under the per-operation OpDeadline.
	RetryAttempts       int
	RetryBase, RetryCap time.Duration
	OpDeadline          time.Duration
	// ProbeInterval paces the background prober that resurrects dead
	// backends. 0 means DefaultProbeInterval; negative disables it.
	ProbeInterval time.Duration
	// DisableVerify turns off content-hash verification of reads. On by
	// default for SHA-256-sized addresses: the address commits the
	// content, so the fleet can reject a byzantine replica's garbage
	// locally and fail over to the next replica instead of serving it.
	DisableVerify bool
	// Seed feeds the backoff jitter (0 behaves like 1).
	Seed int64
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
	// Events receives degraded-mode entries (default registry's log when
	// nil).
	Events *obs.EventLog
}

// Stats snapshots a fleet's counters (instance-local; the same numbers
// feed the process-wide obs registry).
type Stats struct {
	Puts, Gets     int64 // operations served (successfully)
	FailoverPuts   int64 // puts completed without the primary
	FailoverGets   int64 // gets served by a non-primary backend
	Retries        int64 // per-backend retry attempts
	ReadRepairs    int64 // secondary-served blobs written back to the primary
	TamperSkips    int64 // replicas skipped on content-hash mismatch
	ProbesOK       int64
	ProbesFailed   int64
	BackendsDied   int64 // rotation departures
	BackendsRevive int64 // rotation returns (traffic or probe)
}

// Failover is a transport.BlobStore composed of an ordered backend list
// with EMA aliveness, first-W-alive writes, fan-out verified reads with
// read repair, retry/backoff, and a background prober. Safe for
// concurrent use. Close stops the prober; the backends themselves are
// not closed (the fleet does not own their lifecycles).
type Failover struct {
	opts     Options
	backends []*backendState
	events   *obs.EventLog

	jmu sync.Mutex
	rng *rand.Rand // backoff jitter

	puts, gets, failoverPuts, failoverGets atomic.Int64
	retries, readRepairs, tamperSkips      atomic.Int64
	probesOK, probesFailed                 atomic.Int64
	died, revived                          atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

var _ transport.BlobStore = (*Failover)(nil)
var _ transport.BlobStoreCtx = (*Failover)(nil)

// Span names of the fleet's trace instrumentation. Per-backend attempt
// spans ("fleet.put:<name>") are precomputed at construction; the retry
// and repair names are shared constants.
const (
	spanFleetRetry  = "fleet.retry"
	spanFleetRepair = "fleet.repair"
)

// probeHash is the address the prober asks dead backends for: any
// answer — including a clean not-found — proves the backend is back.
var probeHash = crypto.Hash([]byte("blobfleet/aliveness-probe"))

// New builds a fleet over the ordered backends. The first backend is
// the primary: writes prefer it, reads try it first, read repair
// converges it. At least one backend is required.
func New(backends []Backend, opts Options) (*Failover, error) {
	if len(backends) == 0 {
		return nil, errors.New("blobfleet: a fleet needs at least one backend")
	}
	if opts.WriteReplicas <= 0 {
		opts.WriteReplicas = DefaultWriteReplicas
	}
	if opts.WriteReplicas > len(backends) {
		opts.WriteReplicas = len(backends)
	}
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = DefaultAlpha
	}
	if opts.DeadBelow <= 0 {
		opts.DeadBelow = DefaultDeadBelow
	}
	if opts.AliveAbove <= 0 {
		opts.AliveAbove = DefaultAliveAbove
	}
	if opts.DeadBelow >= opts.AliveAbove {
		return nil, fmt.Errorf("blobfleet: dead threshold %.2f must be below alive threshold %.2f", opts.DeadBelow, opts.AliveAbove)
	}
	if opts.RetryAttempts <= 0 {
		opts.RetryAttempts = DefaultRetryAttempts
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	if opts.RetryCap < opts.RetryBase {
		opts.RetryCap = DefaultRetryCap
	}
	if opts.OpDeadline <= 0 {
		opts.OpDeadline = DefaultOpDeadline
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.Events == nil {
		opts.Events = obs.Default().Events()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	f := &Failover{
		opts:   opts,
		events: opts.Events,
		rng:    rand.New(rand.NewSource(seed)),
		stop:   make(chan struct{}),
	}
	for i, b := range backends {
		if b.Store == nil {
			return nil, fmt.Errorf("blobfleet: backend %d (%q) has no store", i, b.Name)
		}
		if b.Name == "" {
			b.Name = fmt.Sprintf("backend%d", i)
		}
		st := &backendState{Backend: b, idx: i, score: 1.0}
		st.putSpan = "fleet.put:" + b.Name
		st.getSpan = "fleet.get:" + b.Name
		st.alivenessG, st.upG, st.errsC = backendGauges(opts.Shard, b.Name)
		st.alivenessG.Set(1000)
		st.upG.Set(1)
		f.backends = append(f.backends, st)
	}
	if opts.ProbeInterval > 0 {
		f.wg.Add(1)
		go f.prober()
	}
	return f, nil
}

// Close stops the background prober. The fleet stays usable (operations
// still fail over), but dead backends are no longer resurrected
// automatically.
func (f *Failover) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
	return nil
}

// Status lists every backend's aliveness, in fleet order.
func (f *Failover) Status() []BackendStatus {
	out := make([]BackendStatus, len(f.backends))
	for i, b := range f.backends {
		out[i] = b.status()
	}
	return out
}

// Stats snapshots the fleet counters.
func (f *Failover) Stats() Stats {
	return Stats{
		Puts: f.puts.Load(), Gets: f.gets.Load(),
		FailoverPuts: f.failoverPuts.Load(), FailoverGets: f.failoverGets.Load(),
		Retries: f.retries.Load(), ReadRepairs: f.readRepairs.Load(),
		TamperSkips: f.tamperSkips.Load(),
		ProbesOK:    f.probesOK.Load(), ProbesFailed: f.probesFailed.Load(),
		BackendsDied: f.died.Load(), BackendsRevive: f.revived.Load(),
	}
}

// report feeds one operation outcome into a backend's aliveness and
// records the degraded-mode event if it caused a transition.
func (f *Failover) report(b *backendState, ok bool) {
	switch b.observe(f, ok) {
	case -1:
		f.died.Add(1)
		f.events.Record(obs.EventBackendDown, -1, f.opts.Shard,
			fmt.Sprintf("blob backend %s left the rotation (EMA below %.2f); fleet degraded", b.Name, f.opts.DeadBelow))
	case +1:
		f.revived.Add(1)
		f.events.Record(obs.EventBackendUp, -1, f.opts.Shard,
			fmt.Sprintf("blob backend %s rejoined the rotation (EMA above %.2f)", b.Name, f.opts.AliveAbove))
	}
}

// candidates returns the alive backends in fleet order; allDead reports
// whether the rotation is empty (callers then fall back to trying
// everything — a fully dead fleet must still attempt, not wedge).
func (f *Failover) candidates() (alive, dead []*backendState) {
	for _, b := range f.backends {
		if b.isDead() {
			dead = append(dead, b)
		} else {
			alive = append(alive, b)
		}
	}
	return alive, dead
}

// backoff returns the jittered sleep before retry k (0-based).
func (f *Failover) backoff(k int) time.Duration {
	d := f.opts.RetryBase << uint(k)
	if d > f.opts.RetryCap || d <= 0 {
		d = f.opts.RetryCap
	}
	f.jmu.Lock()
	jitter := time.Duration(f.rng.Int63n(int64(d)/2 + 1))
	f.jmu.Unlock()
	return d/2 + jitter // uniform in [d/2, d]
}

// withRetries runs op against one backend with capped exponential
// backoff under the deadline. A not-found answer is returned immediately
// (the backend is fine, the blob just isn't there); everything else is
// retried while attempts and time budget remain. Each backoff sleep is
// recorded as a fleet.retry span of ctx's trace, so a traced operation
// that limped through retries shows where the time went.
func (f *Failover) withRetries(ctx context.Context, deadline time.Time, op func() error) error {
	var err error
	for attempt := 0; attempt < f.opts.RetryAttempts; attempt++ {
		if err = op(); err == nil || errors.Is(err, fs.ErrNotExist) {
			return err
		}
		if attempt == f.opts.RetryAttempts-1 {
			break
		}
		sleep := f.backoff(attempt)
		if time.Now().Add(sleep).After(deadline) {
			break
		}
		f.retries.Add(1)
		fmRetries.Inc()
		retryStart := time.Now()
		f.opts.Sleep(sleep)
		trace.Event(ctx, spanFleetRetry, retryStart)
	}
	return err
}

// verified reports whether data matches a SHA-256-sized address (other
// address sizes, and fleets with verification disabled, pass trivially).
func (f *Failover) verified(hash, data []byte) bool {
	if f.opts.DisableVerify || len(hash) != crypto.HashSize {
		return true
	}
	return bytes.Equal(crypto.Hash(data), hash)
}

// PutBlob implements transport.BlobStore: the blob goes to the first W
// alive backends in fleet order, skipping past failures to later
// backends so the replication factor survives individual faults. One
// durable copy is enough to succeed (the trust model needs any one
// verifiable replica); zero copies is an error.
func (f *Failover) PutBlob(hash, data []byte) error {
	return f.PutBlobCtx(context.Background(), hash, data)
}

// PutBlobCtx implements transport.BlobStoreCtx: PutBlob with every
// per-backend attempt (including its retries) recorded as a span of
// ctx's trace.
func (f *Failover) PutBlobCtx(ctx context.Context, hash, data []byte) error {
	deadline := time.Now().Add(f.opts.OpDeadline)
	alive, dead := f.candidates()
	cands := alive
	if len(cands) == 0 {
		cands = dead // fully dead fleet: try anyway rather than wedge
	}
	wrote := 0
	wroteToPrimary := false
	var errs []error
	for _, b := range cands {
		if wrote >= f.opts.WriteReplicas {
			break
		}
		actx, h := trace.Child(ctx, b.putSpan)
		err := f.withRetries(actx, deadline, func() error { return b.Store.PutBlob(hash, data) })
		h.End()
		f.report(b, err == nil)
		if err != nil {
			b.errsC.Inc()
			errs = append(errs, fmt.Errorf("%s: %w", b.Name, err))
			continue
		}
		wrote++
		if b.idx == 0 {
			wroteToPrimary = true
		}
	}
	if wrote == 0 {
		return fmt.Errorf("blobfleet: put %x failed on all %d backends: %w",
			shortHash(hash), len(cands), errors.Join(errs...))
	}
	f.puts.Add(1)
	if !wroteToPrimary {
		f.failoverPuts.Add(1)
		fmFailovers["put"].Inc()
	}
	return nil
}

// GetBlob implements transport.BlobStore: reads fan through the alive
// backends in fleet order and the first answer that passes content-hash
// verification wins. A tampered replica is skipped (and demoted in the
// aliveness score — a byzantine backend is worse than a dead one); a
// clean not-found moves on to the next backend without penalty. Dead
// backends get one last-resort attempt only if no alive backend served
// the blob. A secondary-served blob is written back to the primary.
func (f *Failover) GetBlob(hash []byte) ([]byte, error) {
	return f.GetBlobCtx(context.Background(), hash)
}

// GetBlobCtx implements transport.BlobStoreCtx: GetBlob with every
// per-backend attempt recorded as a span of ctx's trace.
func (f *Failover) GetBlobCtx(ctx context.Context, hash []byte) ([]byte, error) {
	deadline := time.Now().Add(f.opts.OpDeadline)
	alive, dead := f.candidates()

	notFound := 0
	var errs []error
	try := func(b *backendState, retry bool) ([]byte, bool) {
		actx, h := trace.Child(ctx, b.getSpan)
		defer h.End()
		var data []byte
		op := func() error {
			var err error
			data, err = b.Store.GetBlob(hash)
			return err
		}
		var err error
		if retry {
			err = f.withRetries(actx, deadline, op)
		} else {
			err = op()
		}
		switch {
		case err == nil:
			if !f.verified(hash, data) {
				// The address commits the content: this replica is
				// byzantine for this blob. Skip it, demote it, remember.
				f.tamperSkips.Add(1)
				fmTamperSkips.Inc()
				f.events.Record(obs.EventBlobTamper, -1, f.opts.Shard,
					fmt.Sprintf("backend %s served a corrupt payload for %x; skipped", b.Name, shortHash(hash)))
				f.report(b, false)
				b.errsC.Inc()
				errs = append(errs, fmt.Errorf("%s: payload failed content-hash verification", b.Name))
				return nil, false
			}
			f.report(b, true)
			return data, true
		case errors.Is(err, fs.ErrNotExist):
			f.report(b, true) // the backend answered; it just lacks the blob
			notFound++
			return nil, false
		default:
			f.report(b, false)
			b.errsC.Inc()
			errs = append(errs, fmt.Errorf("%s: %w", b.Name, err))
			return nil, false
		}
	}

	serve := func(b *backendState, data []byte) []byte {
		f.gets.Add(1)
		if b.idx != 0 {
			f.failoverGets.Add(1)
			fmFailovers["get"].Inc()
			f.readRepair(ctx, hash, data)
		}
		return data
	}
	for _, b := range alive {
		if data, ok := try(b, true); ok {
			return serve(b, data), nil
		}
	}
	for _, b := range dead {
		if data, ok := try(b, false); ok {
			return serve(b, data), nil
		}
	}
	if len(errs) == 0 && notFound > 0 {
		return nil, fmt.Errorf("blobfleet: blob %x: %w", shortHash(hash), fs.ErrNotExist)
	}
	return nil, fmt.Errorf("blobfleet: get %x failed on all backends (%d clean not-founds): %w",
		shortHash(hash), notFound, errors.Join(errs...))
}

// readRepair copies a secondary-served blob back to the primary so a
// recovered (or lagging) primary converges from live read traffic. Best
// effort and synchronous: a single attempt whose result still feeds the
// primary's aliveness.
func (f *Failover) readRepair(ctx context.Context, hash, data []byte) {
	primary := f.backends[0]
	if primary.isDead() {
		return
	}
	_, h := trace.Child(ctx, spanFleetRepair)
	err := primary.Store.PutBlob(hash, data)
	h.End()
	f.report(primary, err == nil)
	if err == nil {
		f.readRepairs.Add(1)
		fmReadRepairs.Inc()
	} else {
		primary.errsC.Inc()
	}
}

// prober periodically re-checks dead backends so the fleet heals
// without operator action.
func (f *Failover) prober() {
	defer f.wg.Done()
	t := time.NewTicker(f.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.ProbeNow()
		}
	}
}

// ProbeNow probes every dead backend once: any answer — data or a clean
// not-found — resurrects it into the rotation immediately (live traffic
// then keeps its score honest); an error keeps it dead. Exported so
// tests and benches can heal the fleet deterministically instead of
// waiting out the probe interval.
func (f *Failover) ProbeNow() {
	for _, b := range f.backends {
		if !b.isDead() {
			continue
		}
		_, err := b.Store.GetBlob(probeHash)
		ok := err == nil || errors.Is(err, fs.ErrNotExist)
		fmProbes[ok].Inc()
		if !ok {
			f.probesFailed.Add(1)
			f.report(b, false)
			continue
		}
		f.probesOK.Add(1)
		if b.resurrect() {
			f.revived.Add(1)
			f.events.Record(obs.EventBackendUp, -1, f.opts.Shard,
				fmt.Sprintf("blob backend %s answered a probe and rejoined the rotation", b.Name))
		}
	}
}

func shortHash(hash []byte) []byte {
	if len(hash) > 8 {
		return hash[:8]
	}
	return hash
}
