package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("hello"), []byte("world"))
	b := Hash([]byte("hello"), []byte("world"))
	if !bytes.Equal(a, b) {
		t.Fatalf("hash not deterministic: %x vs %x", a, b)
	}
	if len(a) != HashSize {
		t.Fatalf("hash size = %d, want %d", len(a), HashSize)
	}
}

func TestHashConcatenationEqualsSingle(t *testing.T) {
	a := Hash([]byte("hello"), []byte("world"))
	b := Hash([]byte("helloworld"))
	if !bytes.Equal(a, b) {
		t.Fatalf("Hash(parts...) must equal Hash(concat): %x vs %x", a, b)
	}
}

func TestHashDistinguishesInputs(t *testing.T) {
	if bytes.Equal(Hash([]byte("a")), Hash([]byte("b"))) {
		t.Fatal("different inputs hashed equal")
	}
}

func TestHashOrNil(t *testing.T) {
	if HashOrNil(nil) != nil {
		t.Fatal("HashOrNil(nil) must be nil (bottom)")
	}
	if got := HashOrNil([]byte{}); got == nil {
		t.Fatal("HashOrNil(empty non-nil) must hash, not return nil")
	}
	if !bytes.Equal(HashOrNil([]byte("x")), Hash([]byte("x"))) {
		t.Fatal("HashOrNil(x) != Hash(x)")
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	ring, signers := NewTestKeyring(3, 1)
	payload := []byte("the payload")
	for i, s := range signers {
		sig := s.Sign(DomainCommit, payload)
		if !ring.Verify(i, sig, DomainCommit, payload) {
			t.Fatalf("client %d: valid signature rejected", i)
		}
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	ring, signers := NewTestKeyring(3, 1)
	sig := signers[0].Sign(DomainCommit, []byte("p"))
	if ring.Verify(1, sig, DomainCommit, []byte("p")) {
		t.Fatal("signature by client 0 verified as client 1")
	}
}

func TestVerifyRejectsWrongDomain(t *testing.T) {
	ring, signers := NewTestKeyring(1, 1)
	sig := signers[0].Sign(DomainSubmit, []byte("p"))
	if ring.Verify(0, sig, DomainData, []byte("p")) {
		t.Fatal("domain separation violated: SUBMIT signature verified under DATA")
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	ring, signers := NewTestKeyring(1, 1)
	sig := signers[0].Sign(DomainData, []byte("p"))
	if ring.Verify(0, sig, DomainData, []byte("q")) {
		t.Fatal("tampered payload verified")
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	ring, _ := NewTestKeyring(2, 1)
	if ring.Verify(0, []byte("short"), DomainData, []byte("p")) {
		t.Fatal("malformed signature verified")
	}
	if ring.Verify(-1, make([]byte, 64), DomainData, []byte("p")) {
		t.Fatal("negative client index verified")
	}
	if ring.Verify(2, make([]byte, 64), DomainData, []byte("p")) {
		t.Fatal("out-of-range client index verified")
	}
}

func TestTestKeyringDeterministic(t *testing.T) {
	ring1, signers1 := NewTestKeyring(4, 42)
	ring2, signers2 := NewTestKeyring(4, 42)
	sig1 := signers1[2].Sign(DomainProof, []byte("m"))
	sig2 := signers2[2].Sign(DomainProof, []byte("m"))
	if !bytes.Equal(sig1, sig2) {
		t.Fatal("same seed produced different keys")
	}
	if !ring1.Verify(2, sig2, DomainProof, []byte("m")) || !ring2.Verify(2, sig1, DomainProof, []byte("m")) {
		t.Fatal("cross-verification between identically seeded rings failed")
	}
}

func TestTestKeyringSeedsDiffer(t *testing.T) {
	_, signers1 := NewTestKeyring(1, 1)
	_, signers2 := NewTestKeyring(1, 2)
	s1 := signers1[0].Sign(DomainData, []byte("m"))
	s2 := signers2[0].Sign(DomainData, []byte("m"))
	if bytes.Equal(s1, s2) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestGenerateKeyring(t *testing.T) {
	ring, signers, err := GenerateKeyring(2)
	if err != nil {
		t.Fatalf("GenerateKeyring: %v", err)
	}
	if ring.N() != 2 || len(signers) != 2 {
		t.Fatalf("wrong sizes: ring.N()=%d signers=%d", ring.N(), len(signers))
	}
	sig := signers[1].Sign(DomainCommit, []byte("x"))
	if !ring.Verify(1, sig, DomainCommit, []byte("x")) {
		t.Fatal("generated key does not verify")
	}
	if _, _, err := GenerateKeyring(0); err == nil {
		t.Fatal("GenerateKeyring(0) should fail")
	}
}

func TestSignerID(t *testing.T) {
	_, signers := NewTestKeyring(3, 7)
	for i, s := range signers {
		if s.ID() != i {
			t.Fatalf("signer %d reports ID %d", i, s.ID())
		}
	}
}

func TestKeyringMarshalRoundTrip(t *testing.T) {
	ring, signers := NewTestKeyring(5, 9)
	data := MarshalKeyring(ring)
	got, err := UnmarshalKeyring(data)
	if err != nil {
		t.Fatalf("UnmarshalKeyring: %v", err)
	}
	sig := signers[3].Sign(DomainData, []byte("z"))
	if !got.Verify(3, sig, DomainData, []byte("z")) {
		t.Fatal("round-tripped keyring rejects valid signature")
	}
}

func TestKeyringUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalKeyring(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := UnmarshalKeyring([]byte{0, 0, 0, 2, 1, 2, 3}); err == nil {
		t.Fatal("truncated input accepted")
	}
}

// Property: signatures over random payloads always round-trip, and never
// verify under a different domain.
func TestQuickSignVerify(t *testing.T) {
	ring, signers := NewTestKeyring(2, 123)
	f := func(payload []byte) bool {
		sig := signers[0].Sign(DomainSubmit, payload)
		if !ring.Verify(0, sig, DomainSubmit, payload) {
			return false
		}
		return !ring.Verify(0, sig, DomainCommit, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
