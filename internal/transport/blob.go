package transport

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"sync/atomic"

	"faust/internal/obs/trace"
	"faust/internal/wire"
)

// The bulk blob channel. The KV layer stores large values as
// content-addressed chunks and its directory tree as content-addressed
// nodes; moving them through the USTOR request path would serialize bulk
// transfers behind the shard dispatcher and bloat the O(n) protocol
// messages. Instead every transport offers a second, independent channel
// that speaks only wire.BlobPut/BlobGet and talks directly to a
// BlobStore — concurrent with the dispatcher, with many requests in
// flight per channel (requests carry IDs; responses are matched as they
// arrive, so a batch of fetches pays one round trip, not one per blob).
//
// The channel is deliberately unauthenticated (the server is the
// untrusted party either way): readers recompute the content hash of
// every blob they receive, and the hashes themselves are integrity-
// protected by the KV directory whose Merkle root lives in a fail-aware
// register.
//
// Like the SUBMIT path — where any connection presenting an in-range
// client id may stream arbitrarily many operations — the blob channel
// imposes no identity, quota, or rate limit beyond the per-blob size
// cap: resource exhaustion by a network-level attacker is outside the
// protocol's threat model (it protects DATA, not AVAILABILITY; the
// paper's server can always refuse service). Deployments that care
// should front the listener with network ACLs, exactly as they would
// add TLS for confidentiality (see the transport comment in tcp.go).

// MaxBlobSize bounds a single blob. It stays under the TCP frame limit
// with room for framing.
const MaxBlobSize = 8 << 20

// ErrNoBlobStore is returned when the server side has no blob store
// configured for the requested shard.
var ErrNoBlobStore = fmt.Errorf("transport: no blob store")

// ErrBlobChannelBroken marks blob-channel failures caused by the
// underlying connection (dial, send, receive, decode) rather than by the
// request itself. A channel that returned such an error is permanently
// poisoned; callers who want to survive transient drops wrap the channel
// with NewRedialBlobChannel, which retries exactly these errors on a
// fresh connection. Server-side answers (a rejected put, a store error, a
// missing blob) are NOT tagged with it — redialing cannot fix those.
var ErrBlobChannelBroken = errors.New("transport: blob channel broken")

// BlobStore is the server-side storage of the bulk channel: a flat
// content-addressed blob namespace. Implementations must be safe for
// concurrent use. A missing blob reads as an error wrapping fs.ErrNotExist.
//
// PutBlob stores verbatim under the given hash WITHOUT verifying that the
// hash matches the data: the server verifies nothing in this protocol,
// and it is the reader's job to check content hashes. Tests exploit this
// to plant tampered chunks.
type BlobStore interface {
	PutBlob(hash, data []byte) error
	GetBlob(hash []byte) ([]byte, error)
}

// BlobStoreCtx is an optional BlobStore extension for stores that want
// the request's tracing context — the replicated blob fleet records its
// per-backend attempts and retries as spans of the operation's trace.
// BlobStore itself keeps context-free signatures: most stores (files, a
// map) have nothing to trace, and the interface is implemented widely.
type BlobStoreCtx interface {
	PutBlobCtx(ctx context.Context, hash, data []byte) error
	GetBlobCtx(ctx context.Context, hash []byte) ([]byte, error)
}

// putBlobStore routes a put to bs, through the ctx-aware entry point
// when the store offers one.
func putBlobStore(ctx context.Context, bs BlobStore, hash, data []byte) error {
	if tc, ok := bs.(BlobStoreCtx); ok {
		return tc.PutBlobCtx(ctx, hash, data)
	}
	return bs.PutBlob(hash, data)
}

func getBlobStore(ctx context.Context, bs BlobStore, hash []byte) ([]byte, error) {
	if tc, ok := bs.(BlobStoreCtx); ok {
		return tc.GetBlobCtx(ctx, hash)
	}
	return bs.GetBlob(hash)
}

// BlobChannel is the client-side handle of the bulk channel.
// Implementations are safe for concurrent use and keep concurrent calls
// in flight simultaneously — the TCP channel pipelines them over one
// connection using wire-level request IDs — so a caller that wants
// parallel transfers simply issues them from several goroutines.
//
// The context carries the operation's tracing context (attached to the
// wire messages so server-side spans join the same trace); it is not
// used for cancellation. Untraced callers pass context.Background().
type BlobChannel interface {
	PutBlob(ctx context.Context, hash, data []byte) error
	GetBlob(ctx context.Context, hash []byte) ([]byte, error)
	Close() error
}

// BlobResolver is an optional ShardResolver extension mapping a shard
// name to that shard's blob store. A TCP server whose resolver implements
// it accepts blob-channel handshakes; otherwise they are rejected.
type BlobResolver interface {
	ResolveBlobs(name string) (BlobStore, error)
}

// errBlobNotFound wraps fs.ErrNotExist with the hash for diagnostics.
func errBlobNotFound(hash []byte) error {
	return fmt.Errorf("blob %x: %w", shortHash(hash), fs.ErrNotExist)
}

func shortHash(hash []byte) []byte {
	if len(hash) > 8 {
		return hash[:8]
	}
	return hash
}

// checkBlobSizes validates a put against the channel limits.
func checkBlobSizes(hash, data []byte) error {
	if len(hash) == 0 {
		return fmt.Errorf("transport: empty blob hash")
	}
	if len(hash) > 64 {
		return fmt.Errorf("transport: blob hash of %d bytes exceeds limit 64", len(hash))
	}
	if len(data) > MaxBlobSize {
		return fmt.Errorf("transport: blob of %d bytes exceeds limit %d", len(data), MaxBlobSize)
	}
	return nil
}

// MemBlobs is the in-memory BlobStore: a map from hash to bytes. Safe for
// concurrent use.
type MemBlobs struct {
	mu sync.RWMutex
	m  map[string][]byte
}

var _ BlobStore = (*MemBlobs)(nil)

// NewMemBlobs creates an empty in-memory blob store.
func NewMemBlobs() *MemBlobs {
	return &MemBlobs{m: make(map[string][]byte)}
}

// PutBlob stores a copy of data under hash, overwriting any previous
// blob. No hash verification happens here (see BlobStore).
func (b *MemBlobs) PutBlob(hash, data []byte) error {
	if err := checkBlobSizes(hash, data); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	b.mu.Lock()
	b.m[string(hash)] = cp
	b.mu.Unlock()
	return nil
}

// GetBlob returns a copy of the blob stored under hash.
func (b *MemBlobs) GetBlob(hash []byte) ([]byte, error) {
	b.mu.RLock()
	data, ok := b.m[string(hash)]
	b.mu.RUnlock()
	if !ok {
		return nil, errBlobNotFound(hash)
	}
	return append([]byte(nil), data...), nil
}

// Len returns the number of stored blobs.
func (b *MemBlobs) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.m)
}

// serveBlobMsg executes one decoded blob-channel request against a store
// and returns the response message, echoing the request's ID so a
// pipelining client can match it. Shared by the TCP connection loop and
// the in-memory channel. When the request carries a trace context, the
// store call runs as a span of that trace (joined non-final: one KV
// operation issues many blob requests against the same trace).
func serveBlobMsg(bs BlobStore, m wire.Message) wire.Message {
	switch req := m.(type) {
	case *wire.BlobPut:
		ctx, h := joinWireTrace(context.Background(), req.Trace, false, spanBlobPut)
		defer h.End()
		// Enforce the channel limits here so every store behind the
		// server — in-memory or file-backed — rejects oversized blobs
		// uniformly, whatever its own validation does.
		err := checkBlobSizes(req.Hash, req.Data)
		if err == nil {
			err = putBlobStore(ctx, bs, req.Hash, req.Data)
		}
		if err != nil {
			return &wire.BlobAck{ID: req.ID, Hash: req.Hash, OK: false, Msg: err.Error()}
		}
		return &wire.BlobAck{ID: req.ID, Hash: req.Hash, OK: true}
	case *wire.BlobGet:
		ctx, h := joinWireTrace(context.Background(), req.Trace, false, spanBlobGet)
		defer h.End()
		data, err := getBlobStore(ctx, bs, req.Hash)
		switch {
		case err == nil:
			return &wire.BlobData{ID: req.ID, Hash: req.Hash, Found: true, Data: data}
		case errors.Is(err, fs.ErrNotExist):
			return &wire.BlobData{ID: req.ID, Hash: req.Hash, Found: false}
		default:
			// A real store failure (I/O error, permissions) must not
			// masquerade as "not found" — answer with an explicit error
			// ack so operators and callers can tell the two apart.
			return &wire.BlobAck{ID: req.ID, Hash: req.Hash, OK: false, Msg: err.Error()}
		}
	default:
		return nil
	}
}

// memBlobChannel is the memory transport's BlobChannel: requests go
// straight to the network's store, bypassing the dispatcher. Like the
// TCP channel it keeps concurrent calls in flight simultaneously — the
// store (required to be concurrency-safe) is the only serialization.
type memBlobChannel struct {
	nw   *Network
	dead atomic.Bool
}

var _ BlobChannel = (*memBlobChannel)(nil)

func (c *memBlobChannel) PutBlob(ctx context.Context, hash, data []byte) error {
	if c.dead.Load() {
		return ErrClosed
	}
	if err := checkBlobSizes(hash, data); err != nil {
		return err
	}
	if c.nw.metrics {
		c.nw.countBlob(true, len(hash)+len(data))
	}
	// In-process: the client's context IS the trace, no wire join needed.
	ctx, h := trace.Child(ctx, spanBlobPut)
	defer h.End()
	return putBlobStore(ctx, c.nw.blobs, hash, data)
}

func (c *memBlobChannel) GetBlob(ctx context.Context, hash []byte) ([]byte, error) {
	if c.dead.Load() {
		return nil, ErrClosed
	}
	ctx, h := trace.Child(ctx, spanBlobGet)
	defer h.End()
	data, err := getBlobStore(ctx, c.nw.blobs, hash)
	if err != nil {
		return nil, err
	}
	if c.nw.metrics {
		c.nw.countBlob(false, len(hash)+len(data))
	}
	return data, nil
}

func (c *memBlobChannel) Close() error {
	c.dead.Store(true)
	return nil
}
