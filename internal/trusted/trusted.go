// Package trusted implements the baseline everyone implicitly compares
// against: a plain register service on a server that the clients fully
// trust. No signatures, no versions, no checks — a single request-reply
// round per operation.
//
// It exists to isolate the price of fail-awareness: the benchmark suite
// (experiment E14) measures USTOR and FAUST against this baseline on the
// same transport.
package trusted

import (
	"context"
	"fmt"
	"sync"

	"faust/internal/transport"
	"faust/internal/wire"
)

// Server is the trusted register server.
type Server struct {
	mu     sync.Mutex
	n      int
	values [][]byte
}

var _ transport.ServerCore = (*Server)(nil)

// NewServer creates a trusted server for n registers.
func NewServer(n int) *Server {
	return &Server{n: n, values: make([][]byte, n)}
}

// HandleSubmit stores writes and serves reads immediately.
func (s *Server) HandleSubmit(_ context.Context, from int, m *wire.Submit) *wire.Reply {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 || from >= s.n {
		return nil
	}
	if m.Inv.Op == wire.OpWrite {
		s.values[from] = append([]byte(nil), m.Value...)
		return &wire.Reply{C: from, CVer: wire.ZeroSignedVersion(0)}
	}
	j := m.Inv.Reg
	if j < 0 || j >= s.n {
		return nil
	}
	var v []byte
	if s.values[j] != nil {
		v = append([]byte(nil), s.values[j]...)
	}
	return &wire.Reply{
		IsRead: true,
		C:      from,
		CVer:   wire.ZeroSignedVersion(0),
		Mem:    wire.MemEntry{Value: v},
	}
}

// HandleCommit is unused; the trusted protocol has no commits.
func (s *Server) HandleCommit(context.Context, int, *wire.Commit) {}

// Client is the trusted protocol client.
type Client struct {
	id   int
	n    int
	link transport.Link
	mu   sync.Mutex
}

// NewClient creates a trusted client.
func NewClient(id, n int, link transport.Link) *Client {
	return &Client{id: id, n: n, link: link}
}

// Write stores x in the client's own register.
func (c *Client) Write(x []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//faustlint:ignore lockheldio c.mu is the session lock of the trusted baseline; one request-reply round per operation is the point of the baseline
	if err := c.link.Send(&wire.Submit{
		Inv:   wire.Invocation{Client: c.id, Op: wire.OpWrite, Reg: c.id},
		Value: x,
	}); err != nil {
		return fmt.Errorf("trusted: submit: %w", err)
	}
	//faustlint:ignore lockheldio c.mu is the session lock of the trusted baseline; the reply belongs to the request sent above
	if _, err := c.link.Recv(); err != nil {
		return fmt.Errorf("trusted: reply: %w", err)
	}
	return nil
}

// Read returns the value of register j.
func (c *Client) Read(j int) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j < 0 || j >= c.n {
		return nil, fmt.Errorf("trusted: register %d out of range [0,%d)", j, c.n)
	}
	//faustlint:ignore lockheldio c.mu is the session lock of the trusted baseline; one request-reply round per operation is the point of the baseline
	if err := c.link.Send(&wire.Submit{
		Inv: wire.Invocation{Client: c.id, Op: wire.OpRead, Reg: j},
	}); err != nil {
		return nil, fmt.Errorf("trusted: submit: %w", err)
	}
	//faustlint:ignore lockheldio c.mu is the session lock of the trusted baseline; the reply belongs to the request sent above
	m, err := c.link.Recv()
	if err != nil {
		return nil, fmt.Errorf("trusted: reply: %w", err)
	}
	reply, isReply := m.(*wire.Reply)
	if !isReply {
		return nil, fmt.Errorf("trusted: unexpected message %T", m)
	}
	return reply.Mem.Value, nil
}

// Close closes the transport link.
func (c *Client) Close() error { return c.link.Close() }
