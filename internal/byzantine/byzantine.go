// Package byzantine implements faulty servers mounting the attacks the
// paper analyzes. All of them satisfy transport.ServerCore and can be
// dropped into any cluster in place of the correct server:
//
//   - ForkingServer: the canonical forking attack. Clients are split into
//     partitions; each partition is served by an independent correct
//     server, so the partitions' views diverge silently. USTOR alone
//     cannot detect the fork (that is inherent — forking semantics);
//     FAUST's offline version exchange must. Captured SUBMIT messages can
//     be replayed into other branches, which makes hidden operations
//     selectively visible and realizes the Figure 3 attack exactly.
//   - ReplyTamperServer: a correct server whose replies pass through an
//     arbitrary corruption function. Used to exercise every client-side
//     check of Algorithm 1.
//   - CrashServer: stops replying after a configurable number of
//     operations (a crash-faulty, not malicious, server). Operations
//     block; FAUST's offline probing keeps stability detection alive.
//   - DropCommitServer: discards COMMIT messages, pretending operations
//     never finished.
package byzantine

import (
	"context"
	"fmt"
	"sync"

	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/wire"
)

// ForkingServer serves each partition of clients from an independent
// correct USTOR server, creating diverging views.
type ForkingServer struct {
	mu       sync.Mutex
	n        int
	branchOf []int
	branches []*ustor.Server
	captured map[int][]*wire.Submit // per client, submits in order
}

var _ transport.ServerCore = (*ForkingServer)(nil)

// NewForkingServer creates a forking server for n clients. partition
// lists the client sets of each branch; every client must appear exactly
// once.
func NewForkingServer(n int, partition [][]int) (*ForkingServer, error) {
	f := &ForkingServer{
		n:        n,
		branchOf: make([]int, n),
		captured: make(map[int][]*wire.Submit),
	}
	for i := range f.branchOf {
		f.branchOf[i] = -1
	}
	for b, clients := range partition {
		f.branches = append(f.branches, ustor.NewServer(n))
		for _, c := range clients {
			if c < 0 || c >= n {
				return nil, fmt.Errorf("byzantine: client %d out of range", c)
			}
			if f.branchOf[c] != -1 {
				return nil, fmt.Errorf("byzantine: client %d in two partitions", c)
			}
			f.branchOf[c] = b
		}
	}
	for c, b := range f.branchOf {
		if b == -1 {
			return nil, fmt.Errorf("byzantine: client %d not in any partition", c)
		}
	}
	return f, nil
}

// HandleSubmit routes the submit to the client's branch and captures it
// for potential replay into other branches.
func (f *ForkingServer) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	f.mu.Lock()
	branch := f.branches[f.branchOf[from]]
	f.captured[from] = append(f.captured[from], s)
	f.mu.Unlock()
	return branch.HandleSubmit(ctx, from, s)
}

// HandleCommit routes the commit to the client's branch.
func (f *ForkingServer) HandleCommit(ctx context.Context, from int, c *wire.Commit) {
	f.mu.Lock()
	branch := f.branches[f.branchOf[from]]
	f.mu.Unlock()
	branch.HandleCommit(ctx, from, c)
}

// Replay feeds the opIndex-th captured SUBMIT of client into the given
// branch, making that single operation visible there without its COMMIT —
// the mechanism behind the Figure 3 attack. The branch's reply is
// discarded (the real client never sees it).
func (f *ForkingServer) Replay(client, opIndex, branch int) error {
	f.mu.Lock()
	subs := f.captured[client]
	if opIndex < 0 || opIndex >= len(subs) {
		f.mu.Unlock()
		return fmt.Errorf("byzantine: client %d has no captured op %d", client, opIndex)
	}
	if branch < 0 || branch >= len(f.branches) {
		f.mu.Unlock()
		return fmt.Errorf("byzantine: branch %d out of range", branch)
	}
	b := f.branches[branch]
	s := subs[opIndex]
	f.mu.Unlock()
	b.HandleSubmit(context.Background(), client, s)
	return nil
}

// CapturedOps returns how many SUBMITs of the client were captured.
func (f *ForkingServer) CapturedOps(client int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.captured[client])
}

// ReplyTamperServer wraps an inner server and passes every reply through
// Tamper. A nil return silences the server for that operation.
type ReplyTamperServer struct {
	Inner transport.ServerCore
	// Tamper may mutate and return the reply, return a different reply,
	// or return nil to drop it. It runs on the dispatcher goroutine.
	Tamper func(from int, r *wire.Reply) *wire.Reply
}

var _ transport.ServerCore = (*ReplyTamperServer)(nil)

// HandleSubmit delegates and then tampers. The reply is deep-cloned
// before it reaches Tamper: the correct server hands out copy-on-write
// snapshots aliasing its live state, and a tamper that mutated those in
// place would corrupt the inner server for every client instead of lying
// to this one.
func (t *ReplyTamperServer) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	r := t.Inner.HandleSubmit(ctx, from, s)
	if r == nil || t.Tamper == nil {
		return r
	}
	return t.Tamper(from, r.Clone())
}

// HandleCommit delegates.
func (t *ReplyTamperServer) HandleCommit(ctx context.Context, from int, c *wire.Commit) {
	t.Inner.HandleCommit(ctx, from, c)
}

// CrashServer behaves correctly for the first Limit submits, then crashes
// silently: no replies, no state changes.
type CrashServer struct {
	mu    sync.Mutex
	inner *ustor.Server
	seen  int

	// Limit is the number of submits served before the crash.
	Limit int
}

var _ transport.ServerCore = (*CrashServer)(nil)

// NewCrashServer creates a server that crashes after limit submits.
func NewCrashServer(n, limit int) *CrashServer {
	return &CrashServer{inner: ustor.NewServer(n), Limit: limit}
}

// HandleSubmit serves until the crash point, then goes silent.
func (c *CrashServer) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	c.mu.Lock()
	c.seen++
	crashed := c.seen > c.Limit
	c.mu.Unlock()
	if crashed {
		return nil
	}
	return c.inner.HandleSubmit(ctx, from, s)
}

// HandleCommit is dropped after the crash point.
func (c *CrashServer) HandleCommit(ctx context.Context, from int, m *wire.Commit) {
	c.mu.Lock()
	crashed := c.seen > c.Limit
	c.mu.Unlock()
	if crashed {
		return
	}
	c.inner.HandleCommit(ctx, from, m)
}

// DropCommitServer forwards submits to a correct server but discards all
// COMMIT messages, so the schedule appears to contain only uncommitted
// operations. Clients detect this on their next operations (missing
// PROOF-signatures, or their own operation listed as concurrent).
type DropCommitServer struct {
	inner *ustor.Server
}

var _ transport.ServerCore = (*DropCommitServer)(nil)

// NewDropCommitServer creates the commit-dropping server.
func NewDropCommitServer(n int) *DropCommitServer {
	return &DropCommitServer{inner: ustor.NewServer(n)}
}

// HandleSubmit delegates to the correct server.
func (d *DropCommitServer) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	return d.inner.HandleSubmit(ctx, from, s)
}

// HandleCommit silently discards the commit.
func (d *DropCommitServer) HandleCommit(context.Context, int, *wire.Commit) {}
