module faust/tools/faustlint

go 1.22

require golang.org/x/tools v0.0.0

// The build environment is hermetic (no module proxy), so the analysis
// framework is vendored as an API-compatible subset under
// internal/xtools. To use the real upstream implementation, delete this
// replace directive and `go get golang.org/x/tools` — the analyzer
// sources need no changes.
replace golang.org/x/tools => ./internal/xtools
