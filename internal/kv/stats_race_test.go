package kv_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestStatsConcurrentWithOperations pins the satellite fix: the traffic
// counters are atomics, so Stats() may be polled concurrently with
// reads and writes without tripping the race detector (run with -race)
// and without serializing behind an operation's lock.
func TestStatsConcurrentWithOperations(t *testing.T) {
	cl := newCluster(t, 2, nil)
	s := cl.stores[0]
	peer := cl.stores[1]
	if err := peer.Put(context.Background(), "shared", []byte("peer value")); err != nil {
		t.Fatal(err)
	}

	const iters = 50
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := s.Put(context.Background(), fmt.Sprintf("k%d", i), []byte("value")); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := s.GetFrom(context.Background(), 1, "shared"); err != nil {
				t.Errorf("getfrom: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := s.CachedGetFrom(context.Background(), 1, "shared"); err != nil {
				t.Errorf("cachedgetfrom: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4*iters; i++ {
			st := s.Stats()
			if st.RegisterReads < 0 || st.BlobGetBytes < 0 {
				t.Error("negative counter")
				return
			}
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.RegisterWrites < iters {
		t.Fatalf("RegisterWrites = %d, want >= %d", st.RegisterWrites, iters)
	}
	if st.RegisterReads == 0 || st.BlobPuts == 0 || st.BlobGets == 0 {
		t.Fatalf("counters not flowing: %+v", st)
	}
}
