package blobfleet

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"faust/internal/store"
	"faust/internal/transport"
)

// FleetEntry is one backend in a parsed fleet spec.
type FleetEntry struct {
	Kind string // "dir" (file-backed under the shard directory) or "mem"
	Name string // metrics/event label; defaulted to "<kind><index>"
}

// FleetSpec is a parsed -blob-backends value: an ordered backend list
// plus the write replication factor.
//
// Grammar (comma-separated, spaces ignored):
//
//	dir | mem        one backend of that kind
//	dir=NAME         same, with an explicit name
//	w=N              write replication factor (default 2, capped at the
//	                 fleet size)
//
// Example: "dir,dir=mirror,mem,w=2" — a primary on disk, a second disk
// directory named "mirror", an in-memory third, writes to the first two
// alive. The first dir entry uses the shard's legacy <dir>/blobs path so
// existing single-backend deployments upgrade in place; later dir
// entries get <dir>/blobs<index>.
type FleetSpec struct {
	Entries       []FleetEntry
	WriteReplicas int
}

// ParseFleetSpec parses a -blob-backends flag value. Empty means no
// fleet (the caller keeps its single default store) and returns nil.
func ParseFleetSpec(s string) (*FleetSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := &FleetSpec{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, hasVal := strings.Cut(item, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "dir", "mem":
			name := val
			if name == "" {
				name = fmt.Sprintf("%s%d", key, len(spec.Entries))
			}
			spec.Entries = append(spec.Entries, FleetEntry{Kind: key, Name: name})
		case "w":
			if !hasVal {
				return nil, fmt.Errorf("blobfleet: spec %q: w needs a value (w=N)", s)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("blobfleet: spec %q: bad write replicas %q", s, val)
			}
			spec.WriteReplicas = n
		default:
			return nil, fmt.Errorf("blobfleet: spec %q: unknown entry %q (want dir, mem or w=N)", s, item)
		}
	}
	if len(spec.Entries) == 0 {
		return nil, fmt.Errorf("blobfleet: spec %q declares no backends", s)
	}
	return spec, nil
}

// FaultPlan is a parsed -blob-faults value: which backend index to wrap
// in a FaultyBlobs and with what mix.
//
// Grammar (comma-separated key=value): backend=I (default 0), errs=P,
// latency=D, jitter=D, hang=P, hangfor=D, short=P, flip=P, seed=N —
// P a probability in [0,1], D a Go duration.
//
// Example: "backend=0,errs=0.3,latency=2ms,seed=7" makes the primary
// fail 30% of operations and lag 2ms on the rest, reproducibly.
type FaultPlan struct {
	Backend int
	Config  FaultConfig
}

// ParseFaultPlan parses a -blob-faults flag value. Empty means no
// injection and returns nil.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	plan := &FaultPlan{}
	bad := func(key, val string, err error) error {
		return fmt.Errorf("blobfleet: faults %q: bad %s value %q: %v", s, key, val, err)
	}
	prob := func(key, val string) (float64, error) {
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, bad(key, val, err)
		}
		if p < 0 || p > 1 {
			return 0, fmt.Errorf("blobfleet: faults %q: %s=%q out of [0,1]", s, key, val)
		}
		return p, nil
	}
	dur := func(key, val string) (time.Duration, error) {
		d, err := time.ParseDuration(val)
		if err != nil {
			return 0, bad(key, val, err)
		}
		if d < 0 {
			return 0, fmt.Errorf("blobfleet: faults %q: negative %s", s, key)
		}
		return d, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, hasVal := strings.Cut(item, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !hasVal {
			return nil, fmt.Errorf("blobfleet: faults %q: entry %q needs key=value", s, item)
		}
		var err error
		switch key {
		case "backend":
			plan.Backend, err = strconv.Atoi(val)
			if err != nil || plan.Backend < 0 {
				return nil, bad(key, val, fmt.Errorf("want a backend index"))
			}
			err = nil
		case "errs":
			plan.Config.ErrRate, err = prob(key, val)
		case "hang":
			plan.Config.HangRate, err = prob(key, val)
		case "short":
			plan.Config.ShortReadRate, err = prob(key, val)
		case "flip":
			plan.Config.FlipRate, err = prob(key, val)
		case "latency":
			plan.Config.Latency, err = dur(key, val)
		case "jitter":
			plan.Config.Jitter, err = dur(key, val)
		case "hangfor":
			plan.Config.HangFor, err = dur(key, val)
		case "seed":
			plan.Config.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = bad(key, val, err)
			}
		default:
			return nil, fmt.Errorf("blobfleet: faults %q: unknown key %q", s, key)
		}
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// Build materializes the spec into a running Failover fleet for one
// shard. dir is the shard's data directory ("" for an in-memory shard:
// dir entries then degrade to mem backends, keeping the spec usable
// across mixed tenants); fsync applies to every file-backed entry. plan,
// when non-nil, wraps the indexed backend in a FaultyBlobs.
func (s *FleetSpec) Build(dir string, fsync bool, opts Options, plan *FaultPlan) (*Failover, error) {
	if plan != nil && plan.Backend >= len(s.Entries) {
		return nil, fmt.Errorf("blobfleet: fault plan targets backend %d but the fleet has %d", plan.Backend, len(s.Entries))
	}
	if opts.WriteReplicas == 0 {
		opts.WriteReplicas = s.WriteReplicas
	}
	backends := make([]Backend, 0, len(s.Entries))
	dirs := 0
	for i, e := range s.Entries {
		var bs transport.BlobStore
		kind := e.Kind
		if kind == "dir" && dir == "" {
			kind = "mem"
		}
		switch kind {
		case "dir":
			sub := "blobs"
			if dirs > 0 {
				sub = fmt.Sprintf("blobs%d", i)
			}
			dirs++
			fb, err := store.OpenFileBlobs(filepath.Join(dir, sub), fsync)
			if err != nil {
				return nil, fmt.Errorf("blobfleet: opening backend %q: %w", e.Name, err)
			}
			bs = fb
		case "mem":
			bs = transport.NewMemBlobs()
		}
		if plan != nil && plan.Backend == i {
			bs = NewFaultyBlobs(e.Name, bs, plan.Config)
		}
		backends = append(backends, Backend{Name: e.Name, Store: bs})
	}
	return New(backends, opts)
}
