// Package inspector is an API-compatible subset of
// golang.org/x/tools/go/ast/inspector (see the package comment of
// golang.org/x/tools/go/analysis in this tree for why it is vendored).
// It favors simplicity over the upstream's event-list representation:
// traversals re-walk the syntax trees, which is plenty fast for a
// repository of this size.
package inspector

import (
	"go/ast"
	"reflect"
)

// Inspector traverses a package's syntax trees with node-type filters.
type Inspector struct {
	files []*ast.File
}

// New returns an Inspector for the given files.
func New(files []*ast.File) *Inspector {
	return &Inspector{files: files}
}

// typeSet builds the dynamic-type filter. A nil result means "every
// node", matching the upstream contract for an empty types list.
func typeSet(nodeTypes []ast.Node) map[reflect.Type]bool {
	if len(nodeTypes) == 0 {
		return nil
	}
	set := make(map[reflect.Type]bool, len(nodeTypes))
	for _, n := range nodeTypes {
		set[reflect.TypeOf(n)] = true
	}
	return set
}

func match(set map[reflect.Type]bool, n ast.Node) bool {
	return set == nil || set[reflect.TypeOf(n)]
}

// Preorder visits the nodes of the filtered types in depth-first order.
func (in *Inspector) Preorder(nodeTypes []ast.Node, f func(ast.Node)) {
	set := typeSet(nodeTypes)
	for _, file := range in.files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil && match(set, n) {
				f(n)
			}
			return true
		})
	}
}

// WithStack visits matching nodes with push/pop events and the stack of
// enclosing nodes, outermost first (stack[0] is the *ast.File). The
// callback's return value controls whether children are visited on a
// push event; it is ignored on pop.
func (in *Inspector) WithStack(nodeTypes []ast.Node, f func(n ast.Node, push bool, stack []ast.Node) bool) {
	set := typeSet(nodeTypes)
	for _, file := range in.files {
		var stack []ast.Node
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			stack = append(stack, n)
			descend := true
			matched := match(set, n)
			if matched {
				descend = f(n, true, stack)
			}
			if descend {
				for _, child := range childNodes(n) {
					walk(child)
				}
			}
			if matched {
				f(n, false, stack)
			}
			stack = stack[:len(stack)-1]
		}
		walk(file)
	}
}

// childNodes returns the direct child nodes of n in source order, via a
// one-level ast.Inspect.
func childNodes(n ast.Node) []ast.Node {
	var children []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // enter n itself
		}
		if c != nil {
			children = append(children, c)
		}
		return false // do not descend past direct children
	})
	return children
}
