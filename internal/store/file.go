package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"faust/internal/obs"
	"faust/internal/wire"
)

// On-disk layout. A directory holds generations of (snapshot, WAL segment)
// pairs:
//
//	snap-00000003       full server state at the start of generation 3
//	wal-00000003.log    records appended after that snapshot
//
// Generation 0 has no snapshot (the initial server state is implicit).
// Every WAL segment starts with an 8-byte magic, followed by records
// framed as u32 length || u32 CRC-32C || payload. Snapshots carry their
// own magic and the same length+CRC framing around a single payload.
//
// WriteSnapshot is crash-safe by ordering: the new snapshot is written to
// a temporary file, synced, and renamed into place before the new WAL
// segment is created and the old generation is deleted. Recovery picks the
// highest generation with a valid snapshot, so a crash at any point leaves
// either the old baseline or the new one, never neither.
//
// Recovery tolerates a torn final record (the append that was in flight
// when the process died): the WAL invariant guarantees the server never
// replied to an operation whose record did not finish writing, so dropping
// the torn tail loses nothing a client observed. The tail is truncated at
// the last valid record so subsequent appends continue a clean log.

const (
	walMagic    = "FAUSTWAL"
	snapMagic   = "FAUSTSNP"
	maxRecord   = 1 << 24 // matches the transport's frame limit
	frameHeader = 8       // u32 length + u32 crc
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptSnapshot reports that no valid snapshot could be read even
// though snapshot files exist.
var ErrCorruptSnapshot = errors.New("store: all snapshots corrupt")

// FileOptions configures a FileBackend.
type FileOptions struct {
	// Fsync syncs the WAL after appends and the directory after every
	// snapshot rotation. Off, the backend survives process crashes (the
	// OS page cache keeps writes); on, it also survives power loss, at a
	// per-operation cost the benchmarks quantify.
	Fsync bool
	// GroupCommit batches appends: records accumulate in a buffer and hit
	// the disk on the next Flush as one write plus (with Fsync) one
	// fdatasync, instead of one write + fsync per record. Concurrent
	// flushers coalesce: a caller whose records were covered by another
	// caller's in-flight flush returns without a second sync. Group-commit
	// segments are also preallocated in chunks so steady-state syncs do
	// not rewrite file metadata. Durability of an individual record is
	// deferred to the next Flush — exactly the WAL contract the Persistent
	// wrapper needs, since it flushes before any REPLY escapes.
	GroupCommit bool
	// FlushInterval, with GroupCommit, bounds how long a buffered record
	// may linger before a background flush picks it up (idle servers would
	// otherwise keep the last COMMITs of a burst in memory indefinitely).
	// Zero disables the background flusher; Flush, WriteSnapshot and Close
	// still flush.
	FlushInterval time.Duration
}

// preallocChunk is the step in which group-commit WAL segments are grown
// ahead of the write offset. Appends then overwrite already-allocated
// zeros, so an fdatasync needs no metadata write — the classic WAL
// preallocation trick. Recovery treats the zero-filled tail as torn and
// truncates it.
const preallocChunk = 1 << 20

// FileBackend is the durable Backend: length-prefixed, CRC-checksummed WAL
// segments plus atomic snapshot files in a single directory.
//
// Lock order: flushMu (held across disk writes) before mu (guards buffers
// and handles, held only for memory operations).
type FileBackend struct {
	mu   sync.Mutex
	dir  string
	opts FileOptions

	gen    uint64
	wal    *os.File
	snap   []byte   // recovered snapshot, handed out by Load
	tail   []Record // recovered records, handed out by Load
	loaded bool
	closed bool

	// Group-commit state.
	flushMu     sync.Mutex
	buf         []byte // framed records awaiting flush
	spare       []byte // recycled batch buffer
	flushErr    error  // sticky write/sync failure
	off         int64  // end of written data in the current segment
	preallocEnd int64  // file size extended ahead of off
	flushStop   chan struct{}
	flushDone   chan struct{}
	stopOnce    sync.Once
}

var _ Backend = (*FileBackend)(nil)

func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%08d.log", gen) }

// OpenFile opens (or initializes) a persistence directory and performs
// crash recovery: it selects the newest valid snapshot, replays the
// matching WAL segment tolerating a torn final record, truncates the torn
// tail, and removes files from older generations.
func OpenFile(dir string, opts FileOptions) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	b := &FileBackend{dir: dir, opts: opts}
	if err := b.recover(); err != nil {
		return nil, err
	}
	if opts.GroupCommit && opts.FlushInterval > 0 {
		b.flushStop = make(chan struct{})
		b.flushDone = make(chan struct{})
		go b.flushLoop()
	}
	return b, nil
}

// flushLoop is the background group-commit flusher: it bounds how long a
// buffered record may stay memory-only while the server is idle.
func (b *FileBackend) flushLoop() {
	defer close(b.flushDone)
	ticker := time.NewTicker(b.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.flushStop:
			return
		case <-ticker.C:
			_ = b.Flush() // errors are sticky; the next Append/Flush reports them
		}
	}
}

// recover selects the generation, reads snapshot and WAL, and leaves the
// WAL file open for appending.
func (b *FileBackend) recover() error {
	snaps, wals, stale, err := b.scan()
	if err != nil {
		return err
	}
	// Newest valid snapshot wins; generation 0 (no snapshot) is the
	// fallback baseline.
	b.gen = 0
	for i := len(snaps) - 1; i >= 0; i-- {
		state, err := readSnapshot(filepath.Join(b.dir, snapName(snaps[i])))
		if err == nil {
			b.gen = snaps[i]
			b.snap = state
			break
		}
	}
	if b.snap == nil && len(snaps) > 0 {
		return fmt.Errorf("%w in %s", ErrCorruptSnapshot, b.dir)
	}

	wal, tail, valid, err := openWAL(filepath.Join(b.dir, walName(b.gen)))
	if err != nil {
		return err
	}
	b.wal = wal
	b.tail = tail
	b.off = valid
	b.preallocEnd = valid
	if b.opts.Fsync {
		// The segment may have just been created (or truncated): persist
		// its directory entry too, or power loss could drop the whole file
		// out from under the per-append syncs.
		if err := wal.Sync(); err != nil {
			return err
		}
		if err := syncDir(b.dir); err != nil {
			return err
		}
	}

	// Best-effort cleanup of other generations and of temporary files from
	// an interrupted snapshot rotation. Older generations are superseded by
	// the chosen baseline; newer ones are rotation debris whose snapshot
	// failed validation (otherwise they would have been chosen).
	for _, g := range snaps {
		if g != b.gen {
			_ = os.Remove(filepath.Join(b.dir, snapName(g)))
		}
	}
	for _, g := range wals {
		if g != b.gen {
			_ = os.Remove(filepath.Join(b.dir, walName(g)))
		}
	}
	for _, name := range stale {
		_ = os.Remove(filepath.Join(b.dir, name))
	}
	return nil
}

// scan lists snapshot and WAL generations present in the directory, plus
// leftover temporary files.
func (b *FileBackend) scan() (snaps, wals []uint64, stale []string, err error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: reading %s: %w", b.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = append(stale, name)
		case strings.HasPrefix(name, "snap-"):
			if _, err := fmt.Sscanf(name, "snap-%08d", &g); err == nil && snapName(g) == name {
				snaps = append(snaps, g)
			}
		case strings.HasPrefix(name, "wal-"):
			if _, err := fmt.Sscanf(name, "wal-%08d.log", &g); err == nil && walName(g) == name {
				wals = append(wals, g)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, stale, nil
}

// readSnapshot reads and validates one snapshot file.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+frameHeader || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: %s: bad snapshot header", path)
	}
	body := data[len(snapMagic):]
	length := binary.BigEndian.Uint32(body)
	sum := binary.BigEndian.Uint32(body[4:])
	payload := body[frameHeader:]
	if uint32(len(payload)) != length || crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("store: %s: snapshot checksum mismatch", path)
	}
	return append([]byte(nil), payload...), nil
}

// writeSnapshotFile writes state to path atomically (tmp + rename).
func writeSnapshotFile(path string, state []byte, fsync bool) error {
	tmp := path + ".tmp"
	buf := make([]byte, 0, len(snapMagic)+frameHeader+len(state))
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(state)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(state, crcTable))
	buf = append(buf, state...)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// openWAL opens (creating if absent) one WAL segment, parses its records,
// drops a torn or corrupt tail (including the zero-filled padding a
// preallocated group-commit segment leaves after a crash), truncates the
// file to the valid prefix and returns it positioned for appending, along
// with the valid end offset.
func openWAL(path string) (*os.File, []Record, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: opening WAL %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, nil, 0, err
	}
	if info.Size() < int64(len(walMagic)) {
		// Empty or torn at creation: no record was ever fully written, so
		// nothing can be lost by starting the segment over.
		if err := initWAL(f); err != nil {
			_ = f.Close()
			return nil, nil, 0, err
		}
		return f, nil, int64(len(walMagic)), nil
	}
	data := make([]byte, info.Size())
	if _, err := io.ReadFull(f, data); err != nil {
		_ = f.Close()
		return nil, nil, 0, err
	}
	if string(data[:len(walMagic)]) != walMagic {
		_ = f.Close()
		return nil, nil, 0, fmt.Errorf("store: %s is not a WAL segment", path)
	}
	tail, offsets := scanRecords(data, true)
	valid := offsets[len(offsets)-1]
	if err := f.Truncate(valid); err != nil {
		_ = f.Close()
		return nil, nil, 0, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, 0, err
	}
	return f, tail, valid, nil
}

// scanRecords walks the framed records of a WAL image and returns the
// decoded records (when collect is true) plus the end offset of every
// valid record: offsets[0] is the start of the record area and
// offsets[len-1] the end of the valid prefix. The scan stops at the first
// torn, corrupt or undecodable frame — it is the single definition of
// record validity, shared by recovery and RollbackWAL so the two can
// never disagree about where records end.
func scanRecords(data []byte, collect bool) ([]Record, []int64) {
	var tail []Record
	offsets := []int64{int64(len(walMagic))}
	rest := data[len(walMagic):]
	for len(rest) >= frameHeader {
		length := binary.BigEndian.Uint32(rest)
		sum := binary.BigEndian.Uint32(rest[4:])
		if length > maxRecord || uint32(len(rest)-frameHeader) < length {
			break // torn or insane length: drop the tail
		}
		payload := rest[frameHeader : frameHeader+length]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot or torn write inside the record
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break // framing intact but content undecodable: treat as torn
		}
		if collect {
			tail = append(tail, rec)
		}
		advance := int64(frameHeader) + int64(length)
		offsets = append(offsets, offsets[len(offsets)-1]+advance)
		rest = rest[advance:]
	}
	return tail, offsets
}

// initWAL (re)writes the segment header.
func initWAL(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := f.WriteString(walMagic)
	return err
}

// Load implements Backend.
func (b *FileBackend) Load() ([]byte, []Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.loaded {
		return nil, nil, errors.New("store: Load called twice")
	}
	b.loaded = true
	snap, tail := b.snap, b.tail
	b.snap, b.tail = nil, nil
	return snap, tail, nil
}

// appendFramed frames rec (u32 len | u32 crc | payload) directly into buf
// and returns the extended slice — no intermediate allocation, so the
// group-commit path encodes straight into the shared batch buffer.
func appendFramed(buf []byte, rec Record) ([]byte, error) {
	switch rec.Msg.(type) {
	case *wire.Submit, *wire.Commit:
	default:
		return buf, ErrBadRecord
	}
	start := len(buf)
	buf = append(buf, make([]byte, frameHeader)...) // header backfilled below
	buf = binary.BigEndian.AppendUint32(buf, uint32(rec.From))
	buf = wire.AppendEncode(buf, rec.Msg)
	payload := buf[start+frameHeader:]
	if len(payload) > maxRecord {
		//faustlint:ignore hotpathalloc oversize-record rejection path; allocating the error here is fine because the record is discarded anyway
		return buf[:start], fmt.Errorf("store: record of %d bytes exceeds limit", len(payload))
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf, nil
}

// Append implements Backend. In group-commit mode the record lands in the
// batch buffer and becomes durable on the next Flush; otherwise it is
// written (and, with Fsync, synced) immediately.
func (b *FileBackend) Append(rec Record) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("store: backend closed")
	}
	if b.flushErr != nil {
		err := b.flushErr
		b.mu.Unlock()
		return err
	}
	if b.opts.GroupCommit {
		var err error
		b.buf, err = appendFramed(b.buf, rec)
		b.mu.Unlock()
		if err == nil {
			smAppends.Inc()
		}
		return err
	}
	b.mu.Unlock()

	// Immediate mode: the write and sync syscalls run under flushMu, the
	// I/O serialization lock, so the state lock is never held across disk
	// I/O (readers of off/gen are not stalled behind an fsync). flushMu
	// also orders immediate appends against segment rotation.
	buf, err := appendFramed(nil, rec)
	if err != nil {
		return err
	}
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("store: backend closed")
	}
	wal, off := b.wal, b.off
	b.mu.Unlock()
	if _, err := wal.WriteAt(buf, off); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	if b.opts.Fsync {
		start := obs.StartTimer()
		err := wal.Sync()
		smFsyncNs.ObserveSince(start)
		if err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	b.mu.Lock()
	b.off = off + int64(len(buf))
	b.mu.Unlock()
	smAppends.Inc()
	return nil
}

// Flush implements Backend: it writes the batched records in one write
// syscall and (with Fsync) one fdatasync. Concurrent callers coalesce —
// whoever wins the flush lock carries every record buffered so far, and
// the others observe an empty buffer and return.
func (b *FileBackend) Flush() error {
	if !b.opts.GroupCommit {
		return nil // immediate mode: Append already persisted everything
	}
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	return b.flushLocked()
}

// flushLocked is Flush with flushMu already held (WriteSnapshot and Close
// reuse it as part of their larger critical sections).
func (b *FileBackend) flushLocked() error {
	b.mu.Lock()
	if b.flushErr != nil {
		err := b.flushErr
		b.mu.Unlock()
		return err
	}
	if len(b.buf) == 0 {
		b.mu.Unlock()
		return nil
	}
	batch := b.buf
	b.buf = b.spare[:0] // swap buffers so appenders continue during the write
	wal, off, preallocEnd := b.wal, b.off, b.preallocEnd
	b.mu.Unlock()

	start := obs.StartTimer()
	err := writeBatch(wal, batch, off, &preallocEnd, b.opts.Fsync)
	smFlushNs.ObserveSince(start)
	smBatchBytes.Observe(int64(len(batch)))
	smFlushes.Inc()

	b.mu.Lock()
	b.spare = batch[:0]
	b.preallocEnd = preallocEnd
	if err != nil {
		b.flushErr = err
	} else {
		b.off = off + int64(len(batch))
	}
	b.mu.Unlock()
	return err
}

// zeroChunk is the write-ahead padding installed by preallocation. It is
// written, not just reserved: materializing the blocks up front means a
// steady-state flush changes no file metadata (no size update, no extent
// allocation, no unwritten-extent conversion), so its fdatasync is a pure
// data flush — the preallocation discipline production WALs (etcd, etc.)
// use.
var zeroChunk = make([]byte, preallocChunk)

// writeBatch persists one batch at offset off, zero-filling the file in
// preallocChunk steps ahead of the data so the (data)sync does not have to
// update file metadata on the steady path. Recovery treats the zero
// padding as a torn tail and truncates it.
func writeBatch(wal *os.File, batch []byte, off int64, preallocEnd *int64, sync bool) error {
	if end := off + int64(len(batch)); end > *preallocEnd {
		grown := (end/preallocChunk + 1) * preallocChunk
		for at := *preallocEnd; at < grown; at += preallocChunk {
			n := grown - at
			if n > preallocChunk {
				n = preallocChunk
			}
			if _, err := wal.WriteAt(zeroChunk[:n], at); err != nil {
				return fmt.Errorf("store: preallocating WAL: %w", err)
			}
		}
		*preallocEnd = grown
	}
	if _, err := wal.WriteAt(batch, off); err != nil {
		return fmt.Errorf("store: appending WAL batch: %w", err)
	}
	if sync {
		start := obs.StartTimer()
		err := datasync(wal)
		smFsyncNs.ObserveSince(start)
		if err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

// WriteSnapshot implements Backend. See the layout comment for the
// crash-safe ordering. In group-commit mode the pending batch is flushed
// into the outgoing segment first, so the rotation never drops a record
// that is not covered by the new snapshot.
func (b *FileBackend) WriteSnapshot(state []byte) error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	if b.opts.GroupCommit {
		if err := b.flushLocked(); err != nil {
			return err
		}
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("store: backend closed")
	}
	next := b.gen + 1
	b.mu.Unlock()

	// The heavy I/O — snapshot write, segment creation, syncs — runs with
	// only flushMu held. Appenders keep making progress: group-commit
	// appends buffer under the state lock, and immediate-mode appends
	// queue on flushMu exactly as they would behind a flush.
	if err := writeSnapshotFile(filepath.Join(b.dir, snapName(next)), state, b.opts.Fsync); err != nil {
		return fmt.Errorf("store: writing snapshot %d: %w", next, err)
	}
	// O_TRUNC: the segment must start empty even if a file of that name
	// survived an interrupted earlier rotation — its records predate the
	// new snapshot, whatever state they are in.
	wal, err := os.OpenFile(filepath.Join(b.dir, walName(next)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating WAL segment %d: %w", next, err)
	}
	if _, err := wal.WriteString(walMagic); err != nil {
		_ = wal.Close()
		return err
	}
	if b.opts.Fsync {
		if err := wal.Sync(); err != nil {
			_ = wal.Close()
			return err
		}
		if err := syncDir(b.dir); err != nil {
			_ = wal.Close()
			return err
		}
	}
	b.mu.Lock()
	old := b.gen
	_ = b.wal.Close()
	b.wal = wal
	b.gen = next
	b.off = int64(len(walMagic))
	b.preallocEnd = b.off
	b.mu.Unlock()
	_ = os.Remove(filepath.Join(b.dir, walName(old)))
	if old > 0 {
		_ = os.Remove(filepath.Join(b.dir, snapName(old)))
	}
	return nil
}

// Close implements Backend: it stops the background flusher, flushes the
// pending batch, trims preallocated padding and closes the segment.
func (b *FileBackend) Close() error {
	if b.flushStop != nil {
		b.stopOnce.Do(func() { close(b.flushStop) })
		<-b.flushDone
	}
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	var flushErr error
	if b.opts.GroupCommit {
		flushErr = b.flushLocked() // still close below; error propagated after
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	wal, off, preallocEnd := b.wal, b.off, b.preallocEnd
	b.mu.Unlock()
	// closed is set: every other path checks it under the state lock
	// before touching b.wal, so the final trim/sync/close can run on the
	// captured handle without holding b.mu across the syscalls.
	if off < preallocEnd {
		// Trim the preallocated zeros: a gracefully closed segment ends at
		// its last record, so only a crash leaves padding for recovery.
		_ = wal.Truncate(off)
	}
	if b.opts.Fsync {
		_ = wal.Sync()
	}
	if err := wal.Close(); err != nil {
		return err
	}
	// A failed final flush means buffered records were dropped — a graceful
	// shutdown must not report success over that.
	return flushErr
}

// Dir returns the persistence directory.
func (b *FileBackend) Dir() string { return b.dir }

// Generation returns the current snapshot generation (0 = none yet).
func (b *FileBackend) Generation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// RollbackWAL truncates the newest WAL segment in dir at a record
// boundary, discarding the last drop records. It is attack tooling for the
// rollback experiments and tests: the truncation is framing-clean, so a
// subsequent OpenFile recovers "successfully" into the stale state — which
// is precisely what a malicious storage operator would engineer, and what
// the clients' fail-awareness checks must expose. It returns the number of
// records remaining. The backend must not have the directory open.
func RollbackWAL(dir string, drop int) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var newest string
	var newestGen uint64
	for _, e := range entries {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &g); err == nil && walName(g) == e.Name() {
			if newest == "" || g >= newestGen {
				newest, newestGen = e.Name(), g
			}
		}
	}
	if newest == "" {
		return 0, fmt.Errorf("store: no WAL segment in %s", dir)
	}
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("store: %s is not a WAL segment", path)
	}
	// Record boundaries come from the same scanner recovery uses, so the
	// attack tool and recovery can never disagree about what counts as a
	// record (zero-filled group-commit padding, torn tails, bit rot).
	_, offsets := scanRecords(data, false)
	total := len(offsets) - 1
	keep := total - drop
	if keep < 0 {
		keep = 0
	}
	if err := os.Truncate(path, offsets[keep]); err != nil {
		return 0, err
	}
	return keep, nil
}
