package crypto

import (
	"runtime"
	"sync"
	"sync/atomic"

	"faust/internal/obs"
)

// Batched signature verification for the server-side dispatch pipeline.
//
// The paper's protocol puts every verification burden on the clients — the
// server is untrusted and can serve without holding a single key. A server
// that does hold the public keyring may still verify SUBMIT signatures as
// hygiene (shedding forged traffic before it pollutes the operation log)
// and, more importantly for throughput, it can verify a whole dispatch
// batch at once: Ed25519 verifies are embarrassingly parallel, so a batch
// drained from the inbox fans out across a bounded worker pool while the
// single-writer apply stage stays sequential.
//
// VerifyBatch reports per-job results rather than a single verdict: one
// forged signature must reject only its own operation, never the batch.

// Batch-verification volume: how often the dispatcher verified a drained
// batch at all, and how often the batch was wide enough to fan out across
// the worker pool (a batch of one, or a single-worker configuration,
// verifies inline on the dispatcher goroutine).
var (
	vmBatches  = obs.Default().Counter("faust_verify_batch_total")
	vmParallel = obs.Default().Counter("faust_verify_parallel_total")
)

func init() {
	r := obs.Default()
	r.Help("faust_verify_batch_total", "SUBMIT signature batches verified by the dispatch pipeline")
	r.Help("faust_verify_parallel_total", "verification batches that fanned out across the worker pool")
}

// VerifyJob is one signature check inside a batch. The caller fills every
// field but OK; VerifyBatch sets OK. Payload must stay immutable until
// VerifyBatch returns.
type VerifyJob struct {
	// Ring is the keyring to verify against. Jobs in one batch may carry
	// different rings (a shared dispatcher drains several shards into one
	// batch). A nil ring fails the job.
	Ring    *Keyring
	Signer  int
	Domain  byte
	Sig     []byte
	Payload []byte
	OK      bool
}

// verifyWorkersCfg is the configured pool width; 0 means GOMAXPROCS.
var verifyWorkersCfg atomic.Int64

// SetVerifyWorkers bounds the verification worker pool. n <= 0 restores
// the default (GOMAXPROCS at call time). The pool is shared process-wide
// by every dispatcher, matching the "one server, many shards" deployment:
// parallelism is bounded by cores, not by tenant count.
func SetVerifyWorkers(n int) {
	if n < 0 {
		n = 0
	}
	verifyWorkersCfg.Store(int64(n))
}

// VerifyWorkers reports the effective pool width.
func VerifyWorkers() int {
	if n := verifyWorkersCfg.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// verifyTask carries one batch through the pool. Workers (and the
// submitting dispatcher) claim jobs by atomic index increment, so a slow
// verify never blocks the others and a stale worker waking up after the
// batch completed sees an exhausted index and touches nothing. Tasks are
// allocated per batch — one allocation amortized over the whole batch —
// because recycling them would race a stale worker's index read against
// the reset.
type verifyTask struct {
	jobs []VerifyJob
	next atomic.Int64
	wg   sync.WaitGroup
}

func (t *verifyTask) run() {
	for {
		i := int(t.next.Add(1)) - 1
		if i >= len(t.jobs) {
			return
		}
		verifyOne(&t.jobs[i])
		t.wg.Done()
	}
}

func verifyOne(j *VerifyJob) {
	j.OK = j.Ring != nil && j.Ring.Verify(j.Signer, j.Sig, j.Domain, j.Payload)
}

// verifyQueue hands tasks to parked pool workers. Sends are non-blocking:
// with every worker busy the submitting dispatcher simply keeps more of
// the batch for itself, so progress never depends on pool capacity.
var verifyQueue = make(chan *verifyTask, 64)

// liveWorkers counts started pool goroutines. Workers are spawned lazily
// up to the configured width and then parked on verifyQueue forever —
// idle workers cost one blocked goroutine each, and single-CPU or
// verification-free deployments never start any.
var liveWorkers atomic.Int64

func ensureWorkers(n int) {
	for {
		cur := liveWorkers.Load()
		if int(cur) >= n {
			return
		}
		if liveWorkers.CompareAndSwap(cur, cur+1) {
			go func() {
				for t := range verifyQueue {
					t.run()
				}
			}()
		}
	}
}

// VerifyBatch checks every job and sets its OK field. Batches of one (or
// a pool bounded to a single worker) verify inline on the caller's
// goroutine — the fast path costs exactly one ed25519.Verify and no
// synchronization. Wider batches fan out: the caller participates too, so
// the batch completes even when every pool worker is busy elsewhere.
//
//faustlint:hotpath
func VerifyBatch(jobs []VerifyJob) {
	n := len(jobs)
	if n == 0 {
		return
	}
	vmBatches.Inc()
	w := VerifyWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := range jobs {
			verifyOne(&jobs[i])
		}
		return
	}
	vmParallel.Inc()
	ensureWorkers(w - 1)
	t := &verifyTask{jobs: jobs}
	t.wg.Add(n)
dispatch:
	for i := 0; i < w-1; i++ {
		select {
		case verifyQueue <- t:
		default:
			break dispatch // no parked worker; the caller absorbs the rest
		}
	}
	t.run()
	t.wg.Wait()
}
