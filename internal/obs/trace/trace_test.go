package trace

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"
)

// withTracing enables recording for one test against the default
// collector and restores the disabled state afterwards.
func withTracing(t *testing.T, sampleN int, slow time.Duration) {
	t.Helper()
	SetEnabled(true)
	Configure(sampleN, slow)
	t.Cleanup(func() {
		SetEnabled(false)
		Configure(0, 0)
		Default().Reset()
	})
}

func TestStartChildEventRoundTrip(t *testing.T) {
	withTracing(t, 1, 0)

	ctx, root := Start(context.Background(), "op")
	if id, span, keep, ok := FromContext(ctx); !ok || id.IsZero() || span == 0 || !keep {
		t.Fatalf("FromContext = (%v, %v, %v, %v), want live kept trace", id, span, keep, ok)
	}
	cctx, child := Child(ctx, "stage")
	Event(cctx, "queued", time.Now().Add(-time.Millisecond))
	child.End()
	root.End()

	Default().Sweep()
	last := Default().Last()
	if last == nil {
		t.Fatal("no trace retained after final handle ended")
	}
	names := map[string]bool{}
	for _, s := range last.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"op", "stage", "queued"} {
		if !names[want] {
			t.Fatalf("span %q missing from %v", want, names)
		}
	}
	// Parent links must resolve within the trace.
	ids := map[SpanID]bool{}
	for _, s := range last.Spans {
		ids[s.ID] = true
	}
	for _, s := range last.Spans {
		if s.Parent != 0 && !ids[s.Parent] {
			t.Fatalf("span %q has dangling parent %d", s.Name, s.Parent)
		}
	}
}

func TestChildWithoutTraceRecordsNothing(t *testing.T) {
	withTracing(t, 1, 0)

	ctx, h := Child(context.Background(), "inner")
	h.End()
	if _, _, _, ok := FromContext(ctx); ok {
		t.Fatal("Child minted a trace from a bare context")
	}
	if got := len(Default().Snapshot()); got != 0 {
		t.Fatalf("%d traces retained, want 0", got)
	}
}

func TestDisabledPathIsInert(t *testing.T) {
	// Not enabled: every entry point must return zero values and leave
	// the context untouched.
	ctx := context.Background()
	c2, h := Start(ctx, "op")
	if c2 != ctx || h != (Handle{}) {
		t.Fatal("disabled Start touched the context or returned a live handle")
	}
	h.End()
	if _, _, _, ok := FromContext(c2); ok {
		t.Fatal("disabled FromContext reported a live trace")
	}
}

// TestCollectorConcurrentStress hammers the default collector from many
// goroutines at once — local roots with nested children, remote joins
// against both fresh and shared trace IDs, span-slot overflow, and
// concurrent snapshot/export/sweep readers — and is meant to run under
// -race: the collector promises lock-free recording safe against
// concurrent sealing and eviction.
func TestCollectorConcurrentStress(t *testing.T) {
	withTracing(t, 1, 0)

	const (
		writers   = 8
		perWriter = 300
		readers   = 3
	)
	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})

	// Shared remote IDs: several goroutines join the same trace
	// concurrently, racing first-sight creation against lookups.
	shared := make([]TraceID, 16)
	for i := range shared {
		shared[i] = NewTraceID()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 3 {
				case 0: // local root with children and an event
					ctx, root := Start(context.Background(), "root")
					cctx, c1 := Child(ctx, "child")
					Event(cctx, "event", time.Now())
					_, c2 := Child(cctx, "leaf")
					c2.End()
					c1.End()
					root.End()
				case 1: // remote join on a shared ID, non-final
					id := shared[(w*perWriter+i)%len(shared)]
					_, h := StartRemote(context.Background(), id, 0, true, false, "remote")
					h.End()
				case 2: // span-slot overflow: more claims than maxSpans
					ctx, root := Start(context.Background(), "big")
					for k := 0; k < maxSpans+8; k++ {
						_, h := Child(ctx, "spam")
						h.End()
					}
					root.End()
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				Default().Sweep()
				_ = Default().Snapshot()
				_ = Default().Slowest(3)
				_ = Default().Last()
				_ = Default().WriteTraceEvents(io.Discard)
			}
		}()
	}

	wg.Wait()
	close(stop)
	rwg.Wait()

	// Seal the lingering remote-join entries (they are never marked done
	// by a final handle) and check the retained state is coherent.
	Default().Sweep()
	traces := Default().Snapshot()
	if len(traces) == 0 {
		t.Fatal("stress run retained no traces")
	}
	if len(traces) > ringSize {
		t.Fatalf("%d retained traces exceed the ring bound %d", len(traces), ringSize)
	}
	for _, tr := range traces {
		if len(tr.Spans) == 0 {
			t.Fatalf("trace %s retained with zero spans", tr.ID)
		}
		if len(tr.Spans) > maxSpans {
			t.Fatalf("trace %s has %d spans, above the %d cap", tr.ID, len(tr.Spans), maxSpans)
		}
		if tr.Dur < 0 {
			t.Fatalf("trace %s has negative duration %d", tr.ID, tr.Dur)
		}
	}
	if Default().Last() == nil {
		t.Fatal("no locally-rooted trace recorded as Last")
	}
}

// TestTailSamplingRetainsSlowTraces checks the retention decision: with
// head sampling off and a slow threshold set, only traces that ran at
// least that long are kept.
func TestTailSamplingRetainsSlowTraces(t *testing.T) {
	withTracing(t, 0, 10*time.Millisecond)

	_, fast := Start(context.Background(), "fast")
	fast.End()

	_, slow := Start(context.Background(), "slow")
	time.Sleep(15 * time.Millisecond)
	slow.End()

	Default().Sweep()
	traces := Default().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("%d traces retained, want exactly the slow one", len(traces))
	}
	if got := traces[0].Spans[0].Name; got != "slow" && got != "wait" {
		t.Fatalf("retained trace's spans are %q, want the slow trace", got)
	}
}
