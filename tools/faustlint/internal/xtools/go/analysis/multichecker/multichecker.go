// Package multichecker builds a command that runs a set of analyzers
// over packages named on the command line, mirroring
// golang.org/x/tools/go/analysis/multichecker.
package multichecker

import (
	"flag"
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/internal/faustdrive"
	"golang.org/x/tools/internal/faustload"
)

// Main runs the analyzers over the package patterns in os.Args and
// exits: 0 when clean, 3 when diagnostics were reported, 1 on failure
// to load or analyze. Patterns are resolved by the go command relative
// to the current working directory.
func Main(analyzers ...*analysis.Analyzer) {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-list] package...\n\nRegistered analyzers:\n", os.Args[0])
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if err := analysis.Validate(analyzers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(1)
	}

	pkgs, err := faustload.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := faustdrive.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, f := range findings {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(f.Diagnostic.Pos), f.Diagnostic.Message, f.Analyzer.Name)
			exit = 3
		}
	}
	os.Exit(exit)
}
