// Package workload generates deterministic, seeded operation streams for
// tests and benchmarks: read/write mixes, Zipf-skewed register selection
// and sized unique values. Written values are globally unique, which the
// consistency checkers rely on (Section 2 of the paper makes the same
// assumption).
package workload

import (
	"fmt"
	"math/rand"
)

// Op is one generated operation.
type Op struct {
	Client  int
	IsWrite bool
	Reg     int    // register to read; writes always target the client's own
	Value   []byte // written value; nil for reads
}

// Config parameterizes a workload.
type Config struct {
	// ReadFraction is the probability of generating a read (0..1).
	ReadFraction float64
	// ValueSize is the size in bytes of written values (minimum large
	// enough for the unique prefix; small values are padded).
	ValueSize int
	// ZipfS skews register selection for reads; 0 selects uniformly.
	// Values > 1 make low-index registers proportionally hotter.
	ZipfS float64
	// Seed makes the workload reproducible.
	Seed int64
}

// DefaultConfig is a 50/50 mix of reads and writes over uniformly chosen
// registers with 64-byte values.
func DefaultConfig() Config {
	return Config{ReadFraction: 0.5, ValueSize: 64, Seed: 1}
}

// Workload owns one deterministic stream per client.
type Workload struct {
	n       int
	cfg     Config
	streams []*Stream
}

// New creates a workload for n clients.
func New(n int, cfg Config) *Workload {
	w := &Workload{n: n, cfg: cfg, streams: make([]*Stream, n)}
	for i := 0; i < n; i++ {
		w.streams[i] = newStream(i, n, cfg)
	}
	return w
}

// Stream returns client i's operation stream. Streams are independent:
// each may be driven from its own goroutine.
func (w *Workload) Stream(i int) *Stream { return w.streams[i] }

// Stream generates operations for one client.
type Stream struct {
	client int
	n      int
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	seq    int
}

func newStream(client, n int, cfg Config) *Stream {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(client)*7919))
	s := &Stream{client: client, n: n, cfg: cfg, rng: rng}
	if cfg.ZipfS > 1 {
		s.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(n-1))
	}
	return s
}

// Next produces the client's next operation.
func (s *Stream) Next() Op {
	if s.rng.Float64() < s.cfg.ReadFraction {
		return Op{Client: s.client, Reg: s.pickRegister()}
	}
	s.seq++
	return Op{
		Client:  s.client,
		IsWrite: true,
		Reg:     s.client,
		Value:   s.value(),
	}
}

// NextWrite forces a write operation.
func (s *Stream) NextWrite() Op {
	s.seq++
	return Op{Client: s.client, IsWrite: true, Reg: s.client, Value: s.value()}
}

// NextRead forces a read operation.
func (s *Stream) NextRead() Op {
	return Op{Client: s.client, Reg: s.pickRegister()}
}

func (s *Stream) pickRegister() int {
	if s.zipf != nil {
		return int(s.zipf.Uint64())
	}
	return s.rng.Intn(s.n)
}

// value builds a unique value of the configured size. The unique prefix
// "c<client>-<seq>|" guarantees global uniqueness; the rest is padding.
func (s *Stream) value() []byte {
	prefix := fmt.Sprintf("c%d-%d|", s.client, s.seq)
	size := s.cfg.ValueSize
	if size < len(prefix) {
		size = len(prefix)
	}
	out := make([]byte, size)
	copy(out, prefix)
	for i := len(prefix); i < size; i++ {
		out[i] = byte('a' + (i % 26))
	}
	return out
}
