package obs_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/obs"
	"faust/internal/offline"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// TestMetricsEndpointEndToEnd drives a real deployment shape — WAL-backed
// USTOR server over TCP, plus a forked pair of FAUST clients reporting to
// the default registry — then scrapes /metrics and validates the
// exposition: parseable Prometheus text carrying op-latency histograms,
// WAL fsync timings and the fork/fail event counters.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 42)

	// WAL-backed server over TCP with fsync, so faust_wal_fsync_ns flows.
	backend, err := store.OpenFile(t.TempDir(), store.FileOptions{
		Fsync: true, GroupCommit: true, FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := store.Open(ustor.NewServer(n), backend, store.Options{SnapshotEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCP(ln, ps)
	defer func() {
		srv.Stop()
		_ = ps.Close()
	}()
	clients := make([]*ustor.Client, n)
	for i := range clients {
		link, err := transport.DialTCP(ln.Addr().String(), i)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = ustor.NewClient(i, ring, signers[i], link)
	}
	for round := 0; round < 10; round++ {
		for i, c := range clients {
			if err := c.Write([]byte(fmt.Sprintf("w-%d-%d", i, round))); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Read((i + 1) % n); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A forked FAUST pair on the in-memory transport, reporting to the
	// default registry: fork-detected and fail-notification counters.
	forking, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	fnet := transport.NewNetwork(n, forking)
	defer fnet.Stop()
	hub := offline.NewHub(n)
	defer hub.Stop()
	cfg := faustproto.Config{ProbeTimeout: 50 * time.Millisecond, PollInterval: 10 * time.Millisecond, DisableDummyReads: true}
	fclients := make([]*faustproto.Client, n)
	for i := range fclients {
		fclients[i] = faustproto.NewClient(i, ring, signers[i], fnet.ClientLink(i), hub.Endpoint(i), faustproto.WithConfig(cfg))
		fclients[i].Start()
	}
	for i, c := range fclients {
		if _, err := c.Write([]byte(fmt.Sprintf("branch-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range fclients {
		if err := c.WaitFail(10 * time.Second); err != nil {
			t.Fatalf("client %d: fork never detected: %v", i, err)
		}
	}
	for _, c := range fclients {
		c.Stop()
	}

	// Scrape.
	mln, mshut, err := obs.Serve("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer mshut()
	resp, err := http.Get("http://" + mln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every sample line parses as `name{labels} value`.
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}

	mustPositive := func(key string) {
		t.Helper()
		if samples[key] <= 0 {
			t.Fatalf("%s = %v, want > 0\nexposition:\n%s", key, samples[key], text)
		}
	}
	// Server-side op latency histograms (TCP dispatcher).
	mustPositive(`faust_ustor_op_latency_ns_count{op="submit"}`)
	mustPositive(`faust_ustor_op_latency_ns_count{op="commit"}`)
	// Client-observed round trips, with visible tail quantiles.
	mustPositive(`faust_client_op_latency_ns_count{op="write"}`)
	mustPositive(`faust_client_op_latency_ns_p99{op="write"}`)
	// WAL fsync timings from the persistent server.
	mustPositive(`faust_wal_fsync_ns_count`)
	mustPositive(`faust_wal_appends_total`)
	// Protocol events from the forked pair.
	mustPositive(`faust_events_total{kind="fork-detected"}`)
	mustPositive(`faust_events_total{kind="fail-notification"}`)
	// Transport accounting.
	mustPositive(`faust_transport_frames_total{dir="in"}`)
	mustPositive(`faust_transport_handshakes_total{result="accepted"}`)
	for _, typ := range []string{
		"# TYPE faust_ustor_op_latency_ns histogram",
		"# TYPE faust_wal_fsync_ns histogram",
		"# TYPE faust_events_total counter",
	} {
		if !strings.Contains(text, typ+"\n") {
			t.Fatalf("missing %q in exposition", typ)
		}
	}

	// The /events endpoint serves the same log as JSON.
	eresp, err := http.Get("http://" + mln.Addr().String() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	edata, err := io.ReadAll(eresp.Body)
	_ = eresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(edata), string(obs.EventFork)) {
		t.Fatalf("/events misses the fork event: %s", edata)
	}
}
