package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-linear histogram for non-negative int64
// observations, nanosecond-scale by convention. The bucket layout follows
// the HdrHistogram idea: values up to 2^(subBits+1) are recorded exactly,
// larger values fall into one of 2^subBits linear sub-buckets per power of
// two, bounding the relative quantile error by 2^-subBits (≈1.6% with
// subBits = 6). Observations are single atomic adds; snapshots are
// mergeable across histograms (and across processes, if serialized), which
// is what lets faust-bench aggregate per-worker recordings into one tail
// estimate.
// Observations are striped across histLanes to keep concurrent observers
// off each other's cache lines: with one shared lane, every Observe from
// every goroutine hammers the same count/sum words, and that true sharing
// costs several percent of throughput on the crypto-bound hot path (E20
// measures it). The lane is picked from the low bits of the observed value
// itself — nanosecond timings have effectively uniform low bits, so this
// spreads load without needing any goroutine identity.
type Histogram struct {
	lanes [histLanes]histLane
}

type histLane struct {
	count   atomic.Int64
	sum     atomic.Int64
	maxSeen atomic.Int64
	// pad the hot scalars of consecutive lanes onto separate cache lines;
	// the bucket array between lanes makes inter-lane sharing unlikely
	// anyway, but the scalars see every observation.
	_       [5]int64
	buckets [numBuckets]atomic.Int64
}

// histLanes must be a power of two (lane = value & (histLanes-1)).
const histLanes = 4

const (
	// subBits fixes the resolution: 2^subBits linear sub-buckets per
	// octave, i.e. a worst-case relative error of 1/64 on any quantile.
	subBits = 6
	subMask = (1 << subBits) - 1

	// The first two octaves (values < 2^(subBits+1)) are exact; above
	// that each of the remaining 63-subBits octaves contributes 2^subBits
	// buckets. Values are clamped to int64 max, which lands in the top
	// bucket.
	numBuckets = (64 - subBits) << subBits
)

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	// exp is the number of significant bits; values below 2^(subBits+1)
	// map to themselves (exact buckets 0..2^(subBits+1)-1).
	exp := bits.Len64(u)
	if exp <= subBits+1 {
		return int(u)
	}
	// Keep the top subBits+1 bits: the leading bit selects the octave,
	// the next subBits bits the linear sub-bucket within it.
	shift := exp - (subBits + 1)
	idx := (shift << subBits) + int(u>>uint(shift))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest value mapping to bucket idx (the upper
// bound reported for quantiles in that bucket).
func bucketUpper(idx int) int64 {
	if idx < (1 << (subBits + 1)) {
		return int64(idx)
	}
	// Buckets above the exact range encode as shift*2^subBits + sub with
	// sub in [2^subBits, 2^(subBits+1)); the sub term carries one into
	// idx>>subBits, hence the -1.
	shift := (idx >> subBits) - 1
	base := uint64(idx&subMask|(1<<subBits)) << uint(shift)
	upper := base + (uint64(1)<<uint(shift) - 1)
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Observe records one value. It is safe for concurrent use and costs three
// atomic adds (plus one conditional store for the max) when enabled, on a
// lane that concurrent observers mostly don't share.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	l := &h.lanes[v&(histLanes-1)]
	l.count.Add(1)
	l.sum.Add(v)
	for {
		cur := l.maxSeen.Load()
		if v <= cur || l.maxSeen.CompareAndSwap(cur, v) {
			break
		}
	}
	l.buckets[bucketIndex(v)].Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram, safe to read,
// merge, and quantile without further synchronization. Buckets is sparse:
// only non-empty buckets appear.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets map[int]int64
}

// Snapshot copies the histogram's current state, merging all lanes.
// Concurrent observations during the copy may be partially included;
// counts remain consistent enough for monitoring (each bucket is read
// once, atomically).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make(map[int]int64)}
	for l := range h.lanes {
		lane := &h.lanes[l]
		s.Count += lane.count.Load()
		s.Sum += lane.sum.Load()
		if m := lane.maxSeen.Load(); m > s.Max {
			s.Max = m
		}
		for i := range lane.buckets {
			if n := lane.buckets[i].Load(); n > 0 {
				s.Buckets[i] += n
			}
		}
	}
	return s
}

// Merge adds other's observations into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	if s.Buckets == nil {
		s.Buckets = make(map[int]int64)
	}
	for i, n := range other.Buckets {
		s.Buckets[i] += n
	}
}

// Quantile returns the value at quantile q (0 < q <= 1) as the upper bound
// of the bucket containing the q-th ranked observation — an overestimate
// by at most the bucket's relative width (1/64). Returns 0 for an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	// Walk buckets in index order; the sparse map needs sorting, but
	// snapshots are cold-path (scrapes, REPL stats), so sorting is fine.
	idxs := make([]int, 0, len(s.Buckets))
	for i := range s.Buckets {
		idxs = append(idxs, i)
	}
	sortInts(idxs)
	var seen int64
	for _, i := range idxs {
		seen += s.Buckets[i]
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// P50, P99, P999 are the quantiles the bench trajectory tracks.
func (s HistSnapshot) P50() int64  { return s.Quantile(0.50) }
func (s HistSnapshot) P99() int64  { return s.Quantile(0.99) }
func (s HistSnapshot) P999() int64 { return s.Quantile(0.999) }

// sortInts is an insertion sort; snapshots have at most a few dozen
// non-empty buckets, where this beats the generic sort on allocations.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
