package wire

// ServerState is the complete state of the USTOR server of Algorithm 2:
// MEM, the last-committed pointer c, SVER, the concurrent-operation list L
// and the PROOF-signature array P. The persistence subsystem (package
// store) snapshots it to disk and restores it on recovery; the canonical
// encoding below is the snapshot payload.
//
// The server is untrusted, so nothing here is secret and nothing needs to
// be authenticated at rest: a snapshot altered by an attacker is just one
// more way for the server to lie, and the client-side checks of
// Algorithm 1 catch it exactly as they catch a lying live server.
type ServerState struct {
	N    int             // number of clients (registers)
	C    int             // client who committed the last scheduled operation
	Mem  []MemEntry      // MEM, n entries
	Sver []SignedVersion // SVER, n entries
	L    []Invocation    // invocation tuples of uncommitted operations
	P    [][]byte        // PROOF-signatures, n entries; nil = bottom
}

// stateSize computes the exact encoded size of st so EncodeServerState can
// build the snapshot in a single allocation — snapshots of a busy server
// are the largest payloads the system produces, and growing the buffer
// doubling-by-doubling copies the whole state O(log n) times.
func stateSize(st *ServerState) int {
	size := 4 + 4 // n, c
	for _, m := range st.Mem {
		size += 8 + 4 + len(m.Value) + 4 + len(m.DataSig)
	}
	for _, sv := range st.Sver {
		size += 4 + 4 + 8*len(sv.Ver.V) // committer, vector length, V
		for _, d := range sv.Ver.M {
			size += 4 + len(d)
		}
		size += 4 + len(sv.Sig)
	}
	size += 4 // len(L)
	for _, inv := range st.L {
		size += 4 + 1 + 4 + 4 + len(inv.SubmitSig)
	}
	for _, p := range st.P {
		size += 4 + len(p)
	}
	return size
}

// EncodeServerState renders the state canonically:
// n || c || MEM[0..n-1] || SVER[0..n-1] || len(L) || L || P[0..n-1].
func EncodeServerState(st *ServerState) []byte {
	buf := make([]byte, 0, stateSize(st))
	buf = appendU32(buf, uint32(st.N))
	buf = appendU32(buf, uint32(int32(st.C)))
	for _, m := range st.Mem {
		buf = appendMemEntry(buf, m)
	}
	for _, sv := range st.Sver {
		buf = appendSignedVersion(buf, sv)
	}
	buf = appendU32(buf, uint32(len(st.L)))
	for _, inv := range st.L {
		buf = appendInvocation(buf, inv)
	}
	for _, p := range st.P {
		buf = appendBytes(buf, p)
	}
	return buf
}

// DecodeServerState parses an encoding produced by EncodeServerState.
// Trailing garbage is rejected; all returned slices are freshly allocated
// and do not alias data.
func DecodeServerState(data []byte) (*ServerState, error) {
	r := &reader{data: data}
	n := r.u32()
	if r.err != nil || n == 0 || n > maxVectorLen {
		return nil, ErrCodec
	}
	st := &ServerState{N: int(n)}
	st.C = int(int32(r.u32()))
	st.Mem = make([]MemEntry, n)
	for i := range st.Mem {
		st.Mem[i] = r.memEntry()
	}
	st.Sver = make([]SignedVersion, n)
	for i := range st.Sver {
		st.Sver[i] = r.signedVersion()
	}
	nl := r.u32()
	if r.err != nil || nl > maxVectorLen {
		return nil, ErrCodec
	}
	st.L = make([]Invocation, nl)
	for i := range st.L {
		st.L[i] = r.invocation()
	}
	st.P = make([][]byte, n)
	for i := range st.P {
		st.P[i] = r.bytes()
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, ErrCodec
	}
	if st.C < 0 || st.C >= st.N {
		return nil, ErrCodec
	}
	return st, nil
}
