package ustor

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/version"
	"faust/internal/wire"
)

// piggyCluster builds a cluster whose clients all use COMMIT piggybacking
// (the Section 5 optimization).
func piggyCluster(t *testing.T, n int, opts ...transport.Option) (*transport.Network, []*Client, *Server) {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 4242)
	server := NewServer(n)
	nw := transport.NewNetwork(n, server, opts...)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i), WithCommitPiggyback())
	}
	t.Cleanup(nw.Stop)
	return nw, clients, server
}

func TestPiggybackBasicFlow(t *testing.T) {
	_, clients, _ := piggyCluster(t, 2)
	for i := 0; i < 5; i++ {
		val := []byte(fmt.Sprintf("v%d", i))
		if err := clients[0].Write(val); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := clients[1].Read(0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(got) != string(val) {
			t.Fatalf("read %d = %q, want %q", i, got, val)
		}
	}
}

func TestPiggybackHalvesClientMessages(t *testing.T) {
	nw, clients, _ := piggyCluster(t, 1, transport.WithMetrics())
	const ops = 20
	for i := 0; i < ops; i++ {
		if err := clients[0].Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := nw.Stats()
	// Exactly one client->server message per op: the COMMIT rides along.
	if st.ClientToServerMsgs != ops {
		t.Fatalf("client->server msgs = %d, want %d (one per op)", st.ClientToServerMsgs, ops)
	}
	if st.ServerToClientMsgs != ops {
		t.Fatalf("server->client msgs = %d, want %d", st.ServerToClientMsgs, ops)
	}
}

func TestPiggybackMixedWithPlainClients(t *testing.T) {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 11)
	nw := transport.NewNetwork(n, NewServer(n))
	t.Cleanup(nw.Stop)
	piggy := NewClient(0, ring, signers[0], nw.ClientLink(0), WithCommitPiggyback())
	plain1 := NewClient(1, ring, signers[1], nw.ClientLink(1))
	plain2 := NewClient(2, ring, signers[2], nw.ClientLink(2))

	for i := 0; i < 5; i++ {
		if err := piggy.Write([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("piggy write: %v", err)
		}
		if err := plain1.Write([]byte(fmt.Sprintf("q%d", i))); err != nil {
			t.Fatalf("plain write: %v", err)
		}
		v, err := plain2.Read(0)
		if err != nil {
			t.Fatalf("read of piggyback register: %v", err)
		}
		if string(v) != fmt.Sprintf("p%d", i) {
			t.Fatalf("read = %q", v)
		}
		w, err := piggy.Read(1)
		if err != nil {
			t.Fatalf("piggy read: %v", err)
		}
		if string(w) != fmt.Sprintf("q%d", i) {
			t.Fatalf("piggy read = %q", w)
		}
	}
}

func TestPiggybackConcurrentClientsStayConsistent(t *testing.T) {
	const n, ops = 4, 20
	_, clients, _ := piggyCluster(t, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var versions []version.Version
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				res, err := clients[c].WriteX(context.Background(), []byte(fmt.Sprintf("c%d-%d", c, i)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				mu.Lock()
				versions = append(versions, res.Version.Ver)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for i := range versions {
		for j := i + 1; j < len(versions); j++ {
			if !version.Comparable(versions[i], versions[j]) {
				t.Fatalf("piggyback mode produced incomparable versions:\n%v\n%v",
					versions[i], versions[j])
			}
		}
	}
}

func TestPiggybackFlush(t *testing.T) {
	_, clients, server := piggyCluster(t, 1)
	if err := clients[0].Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// The op's COMMIT is still pending; L holds the tuple.
	if got := server.PendingOps(); got != 1 {
		t.Fatalf("PendingOps = %d, want 1 before flush", got)
	}
	if err := clients[0].Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Synchronize: one more op round-trip guarantees the commit was
	// processed (FIFO), then flush again.
	if err := clients[0].Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[0].Read(0); err != nil {
		t.Fatal(err)
	}
	if got := server.PendingOps(); got > 1 {
		t.Fatalf("PendingOps = %d after flush+op", got)
	}
}

func TestFlushNoOpOnPlainClient(t *testing.T) {
	ring, signers := crypto.NewTestKeyring(1, 12)
	nw := transport.NewNetwork(1, NewServer(1))
	t.Cleanup(nw.Stop)
	c := NewClient(0, ring, signers[0], nw.ClientLink(0))
	if err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush on plain client: %v", err)
	}
}

func TestSubmitWithPiggybackCodecRoundTrip(t *testing.T) {
	s := &wire.Submit{
		T:       3,
		Inv:     wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0, SubmitSig: []byte("sig")},
		Value:   []byte("v"),
		DataSig: []byte("d"),
		Piggyback: &wire.Commit{
			Ver:       version.New(2),
			CommitSig: []byte("c"),
			ProofSig:  []byte("p"),
		},
	}
	data := wire.Encode(s)
	back, err := wire.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := back.(*wire.Submit)
	if got.Piggyback == nil || string(got.Piggyback.CommitSig) != "c" {
		t.Fatalf("piggyback lost in codec: %+v", got)
	}
}
