package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// On-disk layout. A directory holds generations of (snapshot, WAL segment)
// pairs:
//
//	snap-00000003       full server state at the start of generation 3
//	wal-00000003.log    records appended after that snapshot
//
// Generation 0 has no snapshot (the initial server state is implicit).
// Every WAL segment starts with an 8-byte magic, followed by records
// framed as u32 length || u32 CRC-32C || payload. Snapshots carry their
// own magic and the same length+CRC framing around a single payload.
//
// WriteSnapshot is crash-safe by ordering: the new snapshot is written to
// a temporary file, synced, and renamed into place before the new WAL
// segment is created and the old generation is deleted. Recovery picks the
// highest generation with a valid snapshot, so a crash at any point leaves
// either the old baseline or the new one, never neither.
//
// Recovery tolerates a torn final record (the append that was in flight
// when the process died): the WAL invariant guarantees the server never
// replied to an operation whose record did not finish writing, so dropping
// the torn tail loses nothing a client observed. The tail is truncated at
// the last valid record so subsequent appends continue a clean log.

const (
	walMagic    = "FAUSTWAL"
	snapMagic   = "FAUSTSNP"
	maxRecord   = 1 << 24 // matches the transport's frame limit
	frameHeader = 8       // u32 length + u32 crc
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptSnapshot reports that no valid snapshot could be read even
// though snapshot files exist.
var ErrCorruptSnapshot = errors.New("store: all snapshots corrupt")

// FileOptions configures a FileBackend.
type FileOptions struct {
	// Fsync syncs the WAL file after every append and the directory after
	// every snapshot rotation. Off, the backend survives process crashes
	// (the OS page cache keeps writes); on, it also survives power loss,
	// at a heavy per-operation cost the benchmarks quantify.
	Fsync bool
}

// FileBackend is the durable Backend: length-prefixed, CRC-checksummed WAL
// segments plus atomic snapshot files in a single directory.
type FileBackend struct {
	mu   sync.Mutex
	dir  string
	opts FileOptions

	gen    uint64
	wal    *os.File
	snap   []byte   // recovered snapshot, handed out by Load
	tail   []Record // recovered records, handed out by Load
	loaded bool
	closed bool
}

var _ Backend = (*FileBackend)(nil)

func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%08d.log", gen) }

// OpenFile opens (or initializes) a persistence directory and performs
// crash recovery: it selects the newest valid snapshot, replays the
// matching WAL segment tolerating a torn final record, truncates the torn
// tail, and removes files from older generations.
func OpenFile(dir string, opts FileOptions) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	b := &FileBackend{dir: dir, opts: opts}
	if err := b.recover(); err != nil {
		return nil, err
	}
	return b, nil
}

// recover selects the generation, reads snapshot and WAL, and leaves the
// WAL file open for appending.
func (b *FileBackend) recover() error {
	snaps, wals, stale, err := b.scan()
	if err != nil {
		return err
	}
	// Newest valid snapshot wins; generation 0 (no snapshot) is the
	// fallback baseline.
	b.gen = 0
	for i := len(snaps) - 1; i >= 0; i-- {
		state, err := readSnapshot(filepath.Join(b.dir, snapName(snaps[i])))
		if err == nil {
			b.gen = snaps[i]
			b.snap = state
			break
		}
	}
	if b.snap == nil && len(snaps) > 0 {
		return fmt.Errorf("%w in %s", ErrCorruptSnapshot, b.dir)
	}

	wal, tail, err := openWAL(filepath.Join(b.dir, walName(b.gen)))
	if err != nil {
		return err
	}
	b.wal = wal
	b.tail = tail
	if b.opts.Fsync {
		// The segment may have just been created (or truncated): persist
		// its directory entry too, or power loss could drop the whole file
		// out from under the per-append syncs.
		if err := wal.Sync(); err != nil {
			return err
		}
		if err := syncDir(b.dir); err != nil {
			return err
		}
	}

	// Best-effort cleanup of other generations and of temporary files from
	// an interrupted snapshot rotation. Older generations are superseded by
	// the chosen baseline; newer ones are rotation debris whose snapshot
	// failed validation (otherwise they would have been chosen).
	for _, g := range snaps {
		if g != b.gen {
			_ = os.Remove(filepath.Join(b.dir, snapName(g)))
		}
	}
	for _, g := range wals {
		if g != b.gen {
			_ = os.Remove(filepath.Join(b.dir, walName(g)))
		}
	}
	for _, name := range stale {
		_ = os.Remove(filepath.Join(b.dir, name))
	}
	return nil
}

// scan lists snapshot and WAL generations present in the directory, plus
// leftover temporary files.
func (b *FileBackend) scan() (snaps, wals []uint64, stale []string, err error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: reading %s: %w", b.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = append(stale, name)
		case strings.HasPrefix(name, "snap-"):
			if _, err := fmt.Sscanf(name, "snap-%08d", &g); err == nil && snapName(g) == name {
				snaps = append(snaps, g)
			}
		case strings.HasPrefix(name, "wal-"):
			if _, err := fmt.Sscanf(name, "wal-%08d.log", &g); err == nil && walName(g) == name {
				wals = append(wals, g)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, stale, nil
}

// readSnapshot reads and validates one snapshot file.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+frameHeader || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: %s: bad snapshot header", path)
	}
	body := data[len(snapMagic):]
	length := binary.BigEndian.Uint32(body)
	sum := binary.BigEndian.Uint32(body[4:])
	payload := body[frameHeader:]
	if uint32(len(payload)) != length || crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("store: %s: snapshot checksum mismatch", path)
	}
	return append([]byte(nil), payload...), nil
}

// writeSnapshotFile writes state to path atomically (tmp + rename).
func writeSnapshotFile(path string, state []byte, fsync bool) error {
	tmp := path + ".tmp"
	buf := make([]byte, 0, len(snapMagic)+frameHeader+len(state))
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(state)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(state, crcTable))
	buf = append(buf, state...)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// openWAL opens (creating if absent) one WAL segment, parses its records,
// drops a torn or corrupt tail, truncates the file to the valid prefix and
// returns it positioned for appending.
func openWAL(path string) (*os.File, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening WAL %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if info.Size() < int64(len(walMagic)) {
		// Empty or torn at creation: no record was ever fully written, so
		// nothing can be lost by starting the segment over.
		if err := initWAL(f); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		return f, nil, nil
	}
	data := make([]byte, info.Size())
	if _, err := io.ReadFull(f, data); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if string(data[:len(walMagic)]) != walMagic {
		_ = f.Close()
		return nil, nil, fmt.Errorf("store: %s is not a WAL segment", path)
	}
	var tail []Record
	valid := int64(len(walMagic))
	rest := data[len(walMagic):]
	for len(rest) >= frameHeader {
		length := binary.BigEndian.Uint32(rest)
		sum := binary.BigEndian.Uint32(rest[4:])
		if length > maxRecord || uint32(len(rest)-frameHeader) < length {
			break // torn or insane length: drop the tail
		}
		payload := rest[frameHeader : frameHeader+length]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot or torn write inside the record
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break // framing intact but content undecodable: treat as torn
		}
		tail = append(tail, rec)
		advance := int64(frameHeader) + int64(length)
		valid += advance
		rest = rest[advance:]
	}
	if err := f.Truncate(valid); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return f, tail, nil
}

// initWAL (re)writes the segment header.
func initWAL(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := f.WriteString(walMagic)
	return err
}

// Load implements Backend.
func (b *FileBackend) Load() ([]byte, []Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.loaded {
		return nil, nil, errors.New("store: Load called twice")
	}
	b.loaded = true
	snap, tail := b.snap, b.tail
	b.snap, b.tail = nil, nil
	return snap, tail, nil
}

// Append implements Backend.
func (b *FileBackend) Append(rec Record) error {
	payload, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("store: record of %d bytes exceeds limit", len(payload))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return errors.New("store: backend closed")
	}
	buf := make([]byte, 0, frameHeader+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	if _, err := b.wal.Write(buf); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	if b.opts.Fsync {
		if err := b.wal.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

// WriteSnapshot implements Backend. See the layout comment for the
// crash-safe ordering.
func (b *FileBackend) WriteSnapshot(state []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return errors.New("store: backend closed")
	}
	next := b.gen + 1
	if err := writeSnapshotFile(filepath.Join(b.dir, snapName(next)), state, b.opts.Fsync); err != nil {
		return fmt.Errorf("store: writing snapshot %d: %w", next, err)
	}
	// O_TRUNC: the segment must start empty even if a file of that name
	// survived an interrupted earlier rotation — its records predate the
	// new snapshot, whatever state they are in.
	wal, err := os.OpenFile(filepath.Join(b.dir, walName(next)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating WAL segment %d: %w", next, err)
	}
	if _, err := wal.WriteString(walMagic); err != nil {
		_ = wal.Close()
		return err
	}
	if b.opts.Fsync {
		if err := wal.Sync(); err != nil {
			_ = wal.Close()
			return err
		}
		if err := syncDir(b.dir); err != nil {
			_ = wal.Close()
			return err
		}
	}
	old := b.gen
	_ = b.wal.Close()
	b.wal = wal
	b.gen = next
	_ = os.Remove(filepath.Join(b.dir, walName(old)))
	if old > 0 {
		_ = os.Remove(filepath.Join(b.dir, snapName(old)))
	}
	return nil
}

// Close implements Backend.
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.opts.Fsync {
		_ = b.wal.Sync()
	}
	return b.wal.Close()
}

// Dir returns the persistence directory.
func (b *FileBackend) Dir() string { return b.dir }

// Generation returns the current snapshot generation (0 = none yet).
func (b *FileBackend) Generation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// RollbackWAL truncates the newest WAL segment in dir at a record
// boundary, discarding the last drop records. It is attack tooling for the
// rollback experiments and tests: the truncation is framing-clean, so a
// subsequent OpenFile recovers "successfully" into the stale state — which
// is precisely what a malicious storage operator would engineer, and what
// the clients' fail-awareness checks must expose. It returns the number of
// records remaining. The backend must not have the directory open.
func RollbackWAL(dir string, drop int) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var newest string
	var newestGen uint64
	for _, e := range entries {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &g); err == nil && walName(g) == e.Name() {
			if newest == "" || g >= newestGen {
				newest, newestGen = e.Name(), g
			}
		}
	}
	if newest == "" {
		return 0, fmt.Errorf("store: no WAL segment in %s", dir)
	}
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	// Collect the end offset of every valid record.
	offsets := []int64{int64(len(walMagic))}
	rest := data[len(walMagic):]
	for len(rest) >= frameHeader {
		length := binary.BigEndian.Uint32(rest)
		if length > maxRecord || uint32(len(rest)-frameHeader) < length {
			break
		}
		advance := int64(frameHeader) + int64(length)
		offsets = append(offsets, offsets[len(offsets)-1]+advance)
		rest = rest[advance:]
	}
	total := len(offsets) - 1
	keep := total - drop
	if keep < 0 {
		keep = 0
	}
	if err := os.Truncate(path, offsets[keep]); err != nil {
		return 0, err
	}
	return keep, nil
}
