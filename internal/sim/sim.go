// Package sim wires complete clusters — clients, server core, transport,
// offline hub, history recorder — for integration tests and benchmarks.
// It is the harness behind the paper-level experiments: run a workload
// against a correct or Byzantine server, record the history, and hand it
// to the consistency checkers.
package sim

import (
	"context"
	"fmt"
	"sync"

	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/history"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/workload"
)

// Cluster is a fully wired USTOR (and optionally FAUST) deployment over
// the in-memory transport with history recording.
type Cluster struct {
	N        int
	Ring     *crypto.Keyring
	Signers  []*crypto.Signer
	Net      *transport.Network
	Hub      *offline.Hub
	Recorder *history.Recorder
	Core     transport.ServerCore

	UClients []*ustor.Client
	FClients []*faustproto.Client
}

// Options configure a cluster.
type Options struct {
	// Core is the server; nil means a correct ustor.Server.
	Core transport.ServerCore
	// NetOpts are passed to the in-memory network (delays, metrics).
	NetOpts []transport.Option
	// Faust enables the FAUST layer on every client.
	Faust bool
	// FaustCfg configures the FAUST layer when enabled.
	FaustCfg faustproto.Config
	// KeySeed seeds the deterministic test keyring.
	KeySeed int64
}

// NewCluster builds and starts a cluster of n clients.
func NewCluster(n int, opts Options) *Cluster {
	if opts.Core == nil {
		opts.Core = ustor.NewServer(n)
	}
	if opts.KeySeed == 0 {
		opts.KeySeed = 20240610
	}
	ring, signers := crypto.NewTestKeyring(n, opts.KeySeed)
	cl := &Cluster{
		N:        n,
		Ring:     ring,
		Signers:  signers,
		Net:      transport.NewNetwork(n, opts.Core, opts.NetOpts...),
		Recorder: history.NewRecorder(n),
		Core:     opts.Core,
	}
	if opts.Faust {
		cl.Hub = offline.NewHub(n)
		cl.FClients = make([]*faustproto.Client, n)
		for i := 0; i < n; i++ {
			cl.FClients[i] = faustproto.NewClient(i, ring, signers[i],
				cl.Net.ClientLink(i), cl.Hub.Endpoint(i),
				faustproto.WithConfig(opts.FaustCfg))
			cl.FClients[i].Start()
		}
		return cl
	}
	cl.UClients = make([]*ustor.Client, n)
	for i := 0; i < n; i++ {
		cl.UClients[i] = ustor.NewClient(i, ring, signers[i], cl.Net.ClientLink(i))
	}
	return cl
}

// Stop tears the cluster down.
func (cl *Cluster) Stop() {
	if cl.FClients != nil {
		for _, c := range cl.FClients {
			c.Stop()
		}
	}
	cl.Net.Stop()
	if cl.Hub != nil {
		cl.Hub.Stop()
	}
}

// Write performs a recorded write by client c.
func (cl *Cluster) Write(c int, value []byte) error {
	p := cl.Recorder.Invoke(c, history.OpWrite, c, value)
	var ts int64
	var err error
	if cl.FClients != nil {
		ts, err = cl.FClients[c].Write(value)
	} else {
		var res ustor.OpResult
		res, err = cl.UClients[c].WriteX(context.Background(), value)
		ts = res.Timestamp
	}
	if err != nil {
		return err
	}
	p.Complete(nil, ts)
	return nil
}

// Read performs a recorded read of register reg by client c.
func (cl *Cluster) Read(c, reg int) ([]byte, error) {
	p := cl.Recorder.Invoke(c, history.OpRead, reg, nil)
	var val []byte
	var ts int64
	var err error
	if cl.FClients != nil {
		val, ts, err = cl.FClients[c].Read(reg)
	} else {
		var res ustor.ReadResult
		res, err = cl.UClients[c].ReadX(context.Background(), reg)
		val, ts = res.Value, res.Timestamp
	}
	if err != nil {
		return nil, err
	}
	p.Complete(val, ts)
	return val, nil
}

// Apply executes one generated operation.
func (cl *Cluster) Apply(op workload.Op) error {
	if op.IsWrite {
		return cl.Write(op.Client, op.Value)
	}
	_, err := cl.Read(op.Client, op.Reg)
	return err
}

// RunWorkload drives opsPerClient operations per client concurrently (one
// goroutine per client) and returns the first error encountered, if any.
func (cl *Cluster) RunWorkload(w *workload.Workload, opsPerClient int) error {
	var wg sync.WaitGroup
	errCh := make(chan error, cl.N)
	for c := 0; c < cl.N; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := w.Stream(c)
			for i := 0; i < opsPerClient; i++ {
				if err := cl.Apply(stream.Next()); err != nil {
					errCh <- fmt.Errorf("client %d op %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// History snapshots the recorded history.
func (cl *Cluster) History() history.History { return cl.Recorder.History() }
