package trusted

import (
	"fmt"
	"sync"
	"testing"

	"faust/internal/transport"
)

func newCluster(t *testing.T, n int) []*Client {
	t.Helper()
	nw := transport.NewNetwork(n, NewServer(n))
	t.Cleanup(nw.Stop)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(i, n, nw.ClientLink(i))
	}
	return clients
}

func TestWriteThenRead(t *testing.T) {
	clients := newCluster(t, 2)
	if err := clients[0].Write([]byte("u")); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, err := clients[1].Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(v) != "u" {
		t.Fatalf("read = %q", v)
	}
}

func TestReadUnwritten(t *testing.T) {
	clients := newCluster(t, 2)
	v, err := clients[1].Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("read = %q, want bottom", v)
	}
}

func TestReadOutOfRange(t *testing.T) {
	clients := newCluster(t, 2)
	if _, err := clients[0].Read(9); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	clients := newCluster(t, 4)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := clients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if _, err := clients[c].Read((c + 1) % 4); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestLastWriteWins(t *testing.T) {
	clients := newCluster(t, 1)
	for i := 0; i < 3; i++ {
		if err := clients[0].Write([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := clients[0].Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "c" {
		t.Fatalf("read = %q, want c", v)
	}
}
