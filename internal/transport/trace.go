package transport

import (
	"context"
	"time"

	"faust/internal/obs/trace"
	"faust/internal/wire"
)

// Bridging between in-process trace contexts (internal/obs/trace) and
// their wire form (wire.TraceCtx). Senders attach, receivers join.

// Span names used by the transport layer. Static constants: the record
// path never formats.
const (
	spanSrvSubmit  = "srv.submit"
	spanSrvCommit  = "srv.commit"
	spanQueue      = "queue"
	spanVerify     = "verify"
	spanBatchFlush = "batch.flush"
	spanBlobPut    = "srv.blob.put"
	spanBlobGet    = "srv.blob.get"
	spanBlobRPC    = "blob.rpc"
	spanRedial     = "blob.redial"
)

// WireTrace renders ctx's trace context in wire form, nil when ctx
// carries none (or tracing is off). Exported because every layer that
// puts a message on a link needs it (ustor attaches it to SUBMIT).
func WireTrace(ctx context.Context) *wire.TraceCtx {
	id, span, keep, ok := trace.FromContext(ctx)
	if !ok {
		return nil
	}
	tc := &wire.TraceCtx{ID: id, Span: uint64(span)}
	if keep {
		tc.Flags |= wire.TraceFlagKeep
	}
	return tc
}

// joinWireTrace starts a receiver-side span for a trace that arrived on
// the wire. final marks the trace complete when the handle ends — true
// for SUBMIT handling (the operation's last message), false for blob
// requests, which linger so one KV operation's many requests share one
// server-side trace. Returns ctx unchanged and a no-op handle for
// untraced messages.
func joinWireTrace(ctx context.Context, tc *wire.TraceCtx, final bool, name string) (context.Context, trace.Handle) {
	if tc == nil {
		return ctx, trace.Handle{}
	}
	return trace.StartRemote(ctx, trace.TraceID(tc.ID), trace.SpanID(tc.Span),
		tc.Flags&wire.TraceFlagKeep != 0, final, name)
}

// exemplarID converts a wire trace context into the histogram-exemplar
// form, zero when absent.
func exemplarID(tc *wire.TraceCtx) trace.TraceID {
	if tc == nil {
		return trace.TraceID{}
	}
	return trace.TraceID(tc.ID)
}

// traceStamp returns the enqueue stamp for a dispatcher envelope: the
// current time when tracing is on and the message carries a trace,
// zero otherwise (the disabled path stays clock-free).
func traceStamp(m wire.Message) time.Time {
	if !trace.Enabled() {
		return time.Time{}
	}
	if s, ok := m.(*wire.Submit); !ok || s.Inv.Trace == nil {
		return time.Time{}
	}
	return time.Now()
}
