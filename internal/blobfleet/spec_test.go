package blobfleet

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/store"
)

func TestParseFleetSpec(t *testing.T) {
	spec, err := ParseFleetSpec(" dir, dir=mirror ,mem, w=2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []FleetEntry{{"dir", "dir0"}, {"dir", "mirror"}, {"mem", "mem2"}}
	if len(spec.Entries) != len(want) {
		t.Fatalf("entries = %+v", spec.Entries)
	}
	for i, e := range want {
		if spec.Entries[i] != e {
			t.Fatalf("entry %d = %+v, want %+v", i, spec.Entries[i], e)
		}
	}
	if spec.WriteReplicas != 2 {
		t.Fatalf("w = %d", spec.WriteReplicas)
	}

	if s, err := ParseFleetSpec(""); s != nil || err != nil {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"disk", "w=0", "w=x", "w", ","} {
		if _, err := ParseFleetSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("backend=1,errs=0.3,latency=2ms,jitter=1ms,hang=0.01,hangfor=100ms,short=0.1,flip=1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan.Config
	if plan.Backend != 1 || cfg.ErrRate != 0.3 || cfg.Latency != 2*time.Millisecond ||
		cfg.Jitter != time.Millisecond || cfg.HangRate != 0.01 || cfg.HangFor != 100*time.Millisecond ||
		cfg.ShortReadRate != 0.1 || cfg.FlipRate != 1 || cfg.Seed != 7 {
		t.Fatalf("plan = %+v", plan)
	}
	if p, err := ParseFaultPlan(""); p != nil || err != nil {
		t.Fatalf("empty plan: %+v, %v", p, err)
	}
	for _, bad := range []string{"errs=2", "errs=x", "latency=-1ms", "backend=-1", "bogus=1", "errs"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("plan %q accepted", bad)
		}
	}
}

func TestSpecBuild(t *testing.T) {
	dir := t.TempDir()
	spec, err := ParseFleetSpec("dir,dir=mirror,mem")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan("backend=2,errs=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	f, err := spec.Build(dir, false, Options{Shard: "t", ProbeInterval: -1}, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	data := []byte("spec-built fleet")
	hash := crypto.Hash(data)
	if err := f.PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	// The first dir backend uses the legacy <dir>/blobs layout; the
	// second gets an indexed directory.
	fb, err := store.OpenFileBlobs(filepath.Join(dir, "blobs"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := fb.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("primary dir backend: %q, %v", got, err)
	}
	mirror, err := store.OpenFileBlobs(filepath.Join(dir, "blobs1"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mirror.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("mirror dir backend: %q, %v", got, err)
	}
	// The fault plan wrapped backend 2.
	if _, ok := f.backends[2].Store.(*FaultyBlobs); !ok {
		t.Fatalf("backend 2 is %T, want *FaultyBlobs", f.backends[2].Store)
	}

	// A plan targeting a backend the fleet doesn't have is rejected.
	if _, err := spec.Build(dir, false, Options{ProbeInterval: -1}, &FaultPlan{Backend: 9}); err == nil {
		t.Fatal("out-of-range fault plan accepted")
	}
}

func TestSpecBuildMemoryShardDegradesDirEntries(t *testing.T) {
	spec, err := ParseFleetSpec("dir,mem")
	if err != nil {
		t.Fatal(err)
	}
	f, err := spec.Build("", false, Options{ProbeInterval: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := []byte("memory shard")
	hash := crypto.Hash(data)
	if err := f.PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	if got, err := f.GetBlob(hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get: %q, %v", got, err)
	}
}
