package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventKind names one class of fail-aware protocol outcome. The set
// mirrors what the paper makes first-class: integrity violations detected
// by USTOR's checks, FAUST's fail and stability notifications, and the
// server-side admission/tamper signals added by later layers.
type EventKind string

const (
	// EventFork: a client's consistency checks found evidence of a forked
	// or otherwise inconsistent server history (USTOR DetectionError,
	// FAUST incomparable-version ForkError).
	EventFork EventKind = "fork-detected"
	// EventFail: a FAUST client delivered a fail_i notification — locally
	// detected or received from another client as a FAILURE message.
	EventFail EventKind = "fail-notification"
	// EventStabilityCut: a FAUST client's stability cut advanced and the
	// OnStable callback fired with a new vector W.
	EventStabilityCut EventKind = "stability-cut-advance"
	// EventRollback: the server presented a version that does not extend
	// the client's own — the signature of replaying old state.
	EventRollback EventKind = "rollback-detected"
	// EventPreflightReject: the server refused a shard handshake during
	// preflight (unknown shard, dimension mismatch, bad magic).
	EventPreflightReject EventKind = "preflight-reject"
	// EventBlobTamper: a reader recomputed a blob's content hash and it
	// did not match the address it was fetched under.
	EventBlobTamper EventKind = "blob-tamper"
	// EventBackendDown: a blob backend's EMA aliveness fell below the
	// dead threshold and the failover store stopped routing to it —
	// the fleet is serving in degraded mode (see internal/blobfleet).
	EventBackendDown EventKind = "blob-backend-down"
	// EventBackendUp: a previously dead blob backend answered a probe
	// (or live traffic) and was resurrected into the rotation.
	EventBackendUp EventKind = "blob-backend-up"
	// EventSubmitReject: the dispatcher's opt-in SUBMIT verification
	// refused an operation — forged signature, or a sender id claiming
	// another client's identity. The op is dropped before it can touch
	// the core; the rest of its batch proceeds.
	EventSubmitReject EventKind = "submit-sig-reject"
)

// Event is one timestamped entry of the protocol event log. Client is the
// client index the event concerns (-1 when not applicable, e.g. server-side
// preflight rejections of unknown peers); Shard is the shard name ("" for
// single-tenant setups). Detail carries the human-readable specifics: the
// failed check, the stability cut, the offending hash.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   EventKind `json:"kind"`
	Client int       `json:"client"`
	Shard  string    `json:"shard,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// DefaultEventCap is the ring capacity used when none is given.
const DefaultEventCap = 1024

// EventLog is a bounded ring buffer of protocol events plus per-kind
// lifetime counters (the counters survive ring eviction, so
// faust_events_total stays accurate however small the ring). Append is
// mutex-guarded — protocol events are rare by design (each one is a
// detection or a notification, not a data operation), so a lock here costs
// nothing on the hot path.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	cap  int
	seq  uint64
	next int // ring write position
	full bool

	counts sync.Map // EventKind -> *atomic.Int64

	// now is the clock, swappable by tests for deterministic timestamps.
	now func() time.Time
}

// NewEventLog creates an event log keeping the last capacity events
// (DefaultEventCap when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{
		buf: make([]Event, capacity),
		cap: capacity,
		now: time.Now,
	}
}

// SetClock replaces the timestamp source. Intended for tests.
func (l *EventLog) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Record appends an event, stamping sequence number and time. It returns
// the stamped event. Safe for concurrent use; sequence numbers are
// strictly increasing and assigned in timestamp order (both under the same
// lock).
func (l *EventLog) Record(kind EventKind, client int, shard, detail string) Event {
	if !enabled.Load() {
		return Event{}
	}
	cv, _ := l.counts.LoadOrStore(kind, new(atomic.Int64))
	cv.(*atomic.Int64).Add(1)

	l.mu.Lock()
	l.seq++
	e := Event{
		Seq:    l.seq,
		Time:   l.now(),
		Kind:   kind,
		Client: client,
		Shard:  shard,
		Detail: detail,
	}
	l.buf[l.next] = e
	l.next++
	if l.next == l.cap {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
	return e
}

// Snapshot returns the retained events oldest-first.
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Event(nil), l.buf[:l.next]...)
	}
	out := make([]Event, 0, l.cap)
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return l.cap
	}
	return l.next
}

// Total returns the lifetime count of events of the given kind, including
// ones already evicted from the ring.
func (l *EventLog) Total(kind EventKind) int64 {
	cv, ok := l.counts.Load(kind)
	if !ok {
		return 0
	}
	return cv.(*atomic.Int64).Load()
}

// Kinds returns every kind that has ever been recorded, sorted.
func (l *EventLog) Kinds() []EventKind {
	var out []EventKind
	l.counts.Range(func(k, _ any) bool {
		out = append(out, k.(EventKind))
		return true
	})
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
