package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"faust/internal/wire"
)

// echoCore replies to every SUBMIT with a REPLY whose C field echoes the
// submitted timestamp, and records commit order.
type echoCore struct {
	mu      sync.Mutex
	commits []int
	submits []int
	inFlght int
	maxConc int
}

func (c *echoCore) HandleSubmit(_ context.Context, from int, s *wire.Submit) *wire.Reply {
	c.mu.Lock()
	c.inFlght++
	if c.inFlght > c.maxConc {
		c.maxConc = c.inFlght
	}
	c.submits = append(c.submits, int(s.T))
	c.inFlght--
	c.mu.Unlock()
	return &wire.Reply{C: int(s.T), CVer: wire.ZeroSignedVersion(1), P: [][]byte{nil}}
}

func (c *echoCore) HandleCommit(_ context.Context, from int, m *wire.Commit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commits = append(c.commits, from)
}

var _ ServerCore = (*echoCore)(nil)

func TestRequestReplyRoundTrip(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(2, core)
	defer nw.Stop()

	link := nw.ClientLink(0)
	if err := link.Send(&wire.Submit{T: 7}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := link.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	reply, ok := m.(*wire.Reply)
	if !ok {
		t.Fatalf("got %T, want *wire.Reply", m)
	}
	if reply.C != 7 {
		t.Fatalf("reply.C = %d, want 7", reply.C)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(1, core)
	defer nw.Stop()

	link := nw.ClientLink(0)
	const k = 100
	for i := 0; i < k; i++ {
		if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < k; i++ {
		m, err := link.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got := m.(*wire.Reply).C; got != i {
			t.Fatalf("reply %d out of order: got %d", i, got)
		}
	}
}

func TestPerLinkFIFOWithDelays(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(2, core, WithDelay(200*time.Microsecond, 42))
	defer nw.Stop()

	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			link := nw.ClientLink(c)
			for i := 0; i < 50; i++ {
				if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
					t.Errorf("client %d send %d: %v", c, i, err)
					return
				}
			}
			for i := 0; i < 50; i++ {
				m, err := link.Recv()
				if err != nil {
					t.Errorf("client %d recv %d: %v", c, i, err)
					return
				}
				if got := m.(*wire.Reply).C; got != i {
					t.Errorf("client %d reply %d out of order: got %d", c, i, got)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestHandlerSerialization(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(4, core)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			link := nw.ClientLink(c)
			for i := 0; i < 200; i++ {
				_ = link.Send(&wire.Submit{T: int64(i)})
				if _, err := link.Recv(); err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	nw.Stop()
	if core.maxConc != 1 {
		t.Fatalf("handlers overlapped: max concurrency %d", core.maxConc)
	}
	if len(core.submits) != 800 {
		t.Fatalf("lost submits: %d/800", len(core.submits))
	}
}

func TestCommitDelivered(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(1, core)
	link := nw.ClientLink(0)
	for i := 0; i < 10; i++ {
		_ = link.Send(&wire.Commit{})
	}
	// Push a submit through to establish ordering: all commits handled
	// before a later submit on the same link.
	_ = link.Send(&wire.Submit{T: 1})
	if _, err := link.Recv(); err != nil {
		t.Fatal(err)
	}
	nw.Stop()
	core.mu.Lock()
	defer core.mu.Unlock()
	if len(core.commits) != 10 {
		t.Fatalf("commits delivered = %d, want 10", len(core.commits))
	}
}

func TestClientCloseSimulatesCrash(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(2, core)
	defer nw.Stop()

	crashed := nw.ClientLink(0)
	_ = crashed.Close()
	if err := crashed.Send(&wire.Submit{T: 1}); err == nil {
		t.Fatal("Send after Close succeeded")
	}
	if _, err := crashed.Recv(); err == nil {
		t.Fatal("Recv after Close succeeded")
	}

	// Other clients are unaffected (wait-freedom of the substrate).
	healthy := nw.ClientLink(1)
	if err := healthy.Send(&wire.Submit{T: 5}); err != nil {
		t.Fatalf("healthy Send: %v", err)
	}
	if _, err := healthy.Recv(); err != nil {
		t.Fatalf("healthy Recv: %v", err)
	}
}

func TestRecvUnblocksOnStop(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(1, core)
	done := make(chan error, 1)
	go func() {
		_, err := nw.ClientLink(0).Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	nw.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil error after Stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Stop")
	}
}

func TestStopIdempotent(t *testing.T) {
	nw := NewNetwork(1, &echoCore{})
	nw.Stop()
	nw.Stop() // must not panic or deadlock
}

func TestMetrics(t *testing.T) {
	core := &echoCore{}
	nw := NewNetwork(1, core, WithMetrics())
	defer nw.Stop()
	link := nw.ClientLink(0)
	const ops = 5
	for i := 0; i < ops; i++ {
		_ = link.Send(&wire.Submit{T: int64(i)})
		if _, err := link.Recv(); err != nil {
			t.Fatal(err)
		}
		_ = link.Send(&wire.Commit{})
	}
	// Commits are async; force them through with a final synchronous op.
	_ = link.Send(&wire.Submit{T: 99})
	if _, err := link.Recv(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.ClientToServerMsgs != 2*ops+1 {
		t.Fatalf("client->server msgs = %d, want %d", st.ClientToServerMsgs, 2*ops+1)
	}
	if st.ServerToClientMsgs != ops+1 {
		t.Fatalf("server->client msgs = %d, want %d", st.ServerToClientMsgs, ops+1)
	}
	if st.ClientToServerBytes <= 0 || st.ServerToClientBytes <= 0 {
		t.Fatal("byte counters not populated")
	}
	if rpp := st.RoundsPerOp(ops + 1); rpp != 1 {
		t.Fatalf("rounds per op = %v, want 1", rpp)
	}
}

func TestStatsRoundsPerOpZeroOps(t *testing.T) {
	var s Stats
	if s.RoundsPerOp(0) != 0 {
		t.Fatal("RoundsPerOp(0) must be 0")
	}
}

// silentCore never replies: the transport must not deadlock other clients.
type silentCore struct{}

func (silentCore) HandleSubmit(context.Context, int, *wire.Submit) *wire.Reply { return nil }
func (silentCore) HandleCommit(context.Context, int, *wire.Commit)             {}

func TestNilReplyMeansSilence(t *testing.T) {
	nw := NewNetwork(1, silentCore{})
	defer nw.Stop()
	link := nw.ClientLink(0)
	_ = link.Send(&wire.Submit{T: 1})
	got := make(chan struct{})
	go func() {
		_, _ = link.Recv()
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("received a reply from a silent server")
	case <-time.After(50 * time.Millisecond):
	}
}
