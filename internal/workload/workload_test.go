package workload

import (
	"testing"
)

func TestUniqueWrittenValues(t *testing.T) {
	w := New(4, Config{ReadFraction: 0.5, ValueSize: 16, Seed: 1})
	seen := make(map[string]bool)
	for c := 0; c < 4; c++ {
		s := w.Stream(c)
		for i := 0; i < 200; i++ {
			op := s.Next()
			if !op.IsWrite {
				continue
			}
			if seen[string(op.Value)] {
				t.Fatalf("duplicate value %q", op.Value)
			}
			seen[string(op.Value)] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no writes generated")
	}
}

func TestDeterministicStreams(t *testing.T) {
	a := New(2, Config{ReadFraction: 0.3, ValueSize: 8, Seed: 7})
	b := New(2, Config{ReadFraction: 0.3, ValueSize: 8, Seed: 7})
	for i := 0; i < 100; i++ {
		x, y := a.Stream(1).Next(), b.Stream(1).Next()
		if x.IsWrite != y.IsWrite || x.Reg != y.Reg || string(x.Value) != string(y.Value) {
			t.Fatalf("streams diverged at op %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestReadFractionHonored(t *testing.T) {
	w := New(1, Config{ReadFraction: 0.8, ValueSize: 8, Seed: 3})
	reads := 0
	const total = 2000
	s := w.Stream(0)
	for i := 0; i < total; i++ {
		if !s.Next().IsWrite {
			reads++
		}
	}
	frac := float64(reads) / total
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("read fraction = %.3f, want ~0.8", frac)
	}
}

func TestWritesTargetOwnRegister(t *testing.T) {
	w := New(3, Config{ReadFraction: 0, ValueSize: 8, Seed: 2})
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			op := w.Stream(c).Next()
			if !op.IsWrite || op.Reg != c || op.Client != c {
				t.Fatalf("bad write op %+v for client %d", op, c)
			}
		}
	}
}

func TestValueSizePadding(t *testing.T) {
	w := New(1, Config{ReadFraction: 0, ValueSize: 128, Seed: 4})
	op := w.Stream(0).NextWrite()
	if len(op.Value) != 128 {
		t.Fatalf("value size = %d, want 128", len(op.Value))
	}
	// Tiny configured size still yields the unique prefix.
	w2 := New(1, Config{ReadFraction: 0, ValueSize: 1, Seed: 4})
	op2 := w2.Stream(0).NextWrite()
	if len(op2.Value) < 4 {
		t.Fatalf("value %q lost its unique prefix", op2.Value)
	}
}

func TestZipfSkewsRegisters(t *testing.T) {
	w := New(16, Config{ReadFraction: 1, ZipfS: 2.0, ValueSize: 8, Seed: 5})
	counts := make([]int, 16)
	s := w.Stream(0)
	for i := 0; i < 5000; i++ {
		counts[s.NextRead().Reg]++
	}
	if counts[0] <= counts[15]*2 {
		t.Fatalf("zipf not skewed: reg0=%d reg15=%d", counts[0], counts[15])
	}
}

func TestUniformWithoutZipf(t *testing.T) {
	w := New(4, Config{ReadFraction: 1, ValueSize: 8, Seed: 6})
	counts := make([]int, 4)
	s := w.Stream(0)
	const total = 4000
	for i := 0; i < total; i++ {
		counts[s.NextRead().Reg]++
	}
	for r, c := range counts {
		if c < total/8 {
			t.Fatalf("register %d starved: %d/%d", r, c, total)
		}
	}
}

func TestForcedKinds(t *testing.T) {
	s := New(2, DefaultConfig()).Stream(0)
	if op := s.NextWrite(); !op.IsWrite {
		t.Fatal("NextWrite returned a read")
	}
	if op := s.NextRead(); op.IsWrite {
		t.Fatal("NextRead returned a write")
	}
}

// TestKVWorkloadDeterminism: identical configs generate identical
// streams; different clients generate different ones.
func TestKVWorkloadDeterminism(t *testing.T) {
	cfg := DefaultKVConfig()
	a := NewKV(3, cfg)
	b := NewKV(3, cfg)
	sameOps := 0
	for i := 0; i < 200; i++ {
		opA, opB := a.Stream(1).Next(), b.Stream(1).Next()
		if opA.Kind != opB.Kind || opA.Key != opB.Key || opA.Owner != opB.Owner ||
			string(opA.Value) != string(opB.Value) {
			t.Fatalf("op %d diverged: %+v vs %+v", i, opA, opB)
		}
		opC := a.Stream(2).Next()
		if opA.Kind == opC.Kind && opA.Key == opC.Key && string(opA.Value) == string(opC.Value) {
			sameOps++
		}
	}
	if sameOps == 200 {
		t.Fatal("distinct clients generated identical streams")
	}
}

// TestKVWorkloadMix checks the generated mix: fractions roughly honored,
// owners valid, put values globally unique and of the configured size.
func TestKVWorkloadMix(t *testing.T) {
	const n, ops = 4, 2000
	cfg := KVConfig{Keys: 16, ValueSize: 64, ReadFraction: 0.6, CrossReadFraction: 0.5, DeleteFraction: 0.1, Seed: 9}
	w := NewKV(n, cfg)
	counts := map[KVOpKind]int{}
	seen := map[string]bool{}
	for c := 0; c < n; c++ {
		s := w.Stream(c)
		for i := 0; i < ops; i++ {
			op := s.Next()
			counts[op.Kind]++
			switch op.Kind {
			case KVGetFrom:
				if op.Owner == c || op.Owner < 0 || op.Owner >= n {
					t.Fatalf("GetFrom owner %d invalid for client %d", op.Owner, c)
				}
			case KVPut:
				if len(op.Value) != cfg.ValueSize {
					t.Fatalf("put value size %d, want %d", len(op.Value), cfg.ValueSize)
				}
				if seen[string(op.Value)] {
					t.Fatalf("duplicate put value %q", op.Value[:20])
				}
				seen[string(op.Value)] = true
			case KVGet, KVDelete:
				if op.Owner != c {
					t.Fatalf("%v owner %d, want self %d", op.Kind, op.Owner, c)
				}
			default:
				t.Fatalf("invalid kind %v", op.Kind)
			}
			if len(op.Key) == 0 {
				t.Fatal("empty key generated")
			}
		}
	}
	total := float64(n * ops)
	reads := float64(counts[KVGet] + counts[KVGetFrom])
	if f := reads / total; f < 0.55 || f > 0.65 {
		t.Fatalf("read fraction %.3f, want ~0.6", f)
	}
	if f := float64(counts[KVGetFrom]) / reads; f < 0.42 || f > 0.58 {
		t.Fatalf("cross-read fraction %.3f, want ~0.5", f)
	}
	if f := float64(counts[KVDelete]) / total; f < 0.07 || f > 0.13 {
		t.Fatalf("delete fraction %.3f, want ~0.1", f)
	}
}

// TestKVWorkloadZipf: skewed key selection concentrates on low-index
// keys.
func TestKVWorkloadZipf(t *testing.T) {
	w := NewKV(1, KVConfig{Keys: 64, ValueSize: 16, ReadFraction: 1, ZipfS: 1.5, Seed: 3})
	s := w.Stream(0)
	hot := 0
	for i := 0; i < 1000; i++ {
		if s.Next().Key <= "key-000003" {
			hot++
		}
	}
	if hot < 500 {
		t.Fatalf("zipf skew too weak: %d/1000 ops on the 4 hottest keys", hot)
	}
}
