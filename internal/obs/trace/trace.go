// Package trace implements request-scoped distributed tracing for the
// FAUST stack: 128-bit trace IDs minted at the client once per register
// or KV operation, 64-bit span IDs for every timed stage, carried
// in-process via context.Context and across the wire in the optional
// trace fields of SUBMIT/REPLY and the blob messages (package wire).
//
// The design constraints come from PR 8's invariants:
//
//   - Near-zero cost when disabled: every entry point checks one atomic
//     bool and returns zero values; no clock reads, no allocation, no
//     context wrapping happen on the disabled path.
//   - No locks: the collector is built from atomic slot claims, a
//     refcount-guarded seal, and atomic.Pointer rings — span recording
//     never blocks and is safe to call with application mutexes held.
//   - Pooled span storage: spans are value slots inside pooled per-trace
//     entries; the record path allocates nothing and formats nothing
//     (span names are static string constants supplied by callers).
//
// Sampling is tail-based: every span of every trace is recorded while
// the trace is live, and the retention decision happens when the trace
// seals — traces whose wall-clock duration meets the slow threshold are
// always retained, plus a deterministic 1-in-N head sample (whose
// "keep" bit travels on the wire so a server retains exactly the traces
// its clients chose). Retained traces land in a bounded ring exported
// by the /trace and /trace/slowest endpoints of package obs.
package trace

import (
	"context"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end operation; 128 bits so independent
// clients never collide without coordination.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID uint64

// IsZero reports whether the ID is the absent value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the canonical lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// Span is one timed region of a trace: a named stage with a parent link
// that reconstructs the tree. Start is unix nanoseconds; Dur is the
// span's length in nanoseconds (zero while still open).
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  int64
	Dur    int64
}

// Trace is one sealed, retained trace: the spans recorded by this
// process for one TraceID. Over TCP each process retains its own side;
// the export groups by TraceID so the halves line up in Perfetto.
type Trace struct {
	ID    TraceID
	Start int64 // unix nanoseconds of the first span
	Dur   int64 // wall-clock of the whole trace as seen by this process
	Spans []Span
}

// Process-wide tracing state. Tracing is off until a cmd enables it
// (faust-server -trace-sample/-trace-slow, faust-client, faust-bench);
// the library never turns it on by itself.
var (
	enabled atomic.Bool
	slowNs  atomic.Int64 // tail retention threshold; <= 0 disables
	headN   atomic.Int64 // head sampling 1-in-N; <= 0 disables
	headCtr atomic.Uint64
)

// SetEnabled turns span recording on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether tracing is on.
func Enabled() bool { return enabled.Load() }

// Configure sets the sampling knobs: retain one trace in sampleN by
// head sampling (<= 0 disables head sampling) and always retain traces
// at least slow long (<= 0 disables tail retention).
func Configure(sampleN int, slow time.Duration) {
	headN.Store(int64(sampleN))
	slowNs.Store(int64(slow))
}

// SlowNs returns the tail-retention threshold in nanoseconds (<= 0 when
// disabled). Histograms use it to decide when an observation deserves a
// trace-ID exemplar.
func SlowNs() int64 { return slowNs.Load() }

// headSample makes the 1-in-N head sampling decision for a new root.
func headSample() bool {
	n := headN.Load()
	return n > 0 && headCtr.Add(1)%uint64(n) == 0
}

// ID generation: splitmix64 over an atomic counter, seeded per process.
// Tracing IDs need uniqueness, not unpredictability, so this stays off
// the crypto boundary (package crypto owns all key material).
var idCtr atomic.Uint64

func init() {
	seed := uint64(time.Now().UnixNano())
	idCtr.Store(splitmix64(seed ^ 0x9e3779b97f4a7c15))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextID() uint64 {
	// A zero draw would read as "absent" on the wire; skip it.
	for {
		if v := splitmix64(idCtr.Add(1)); v != 0 {
			return v
		}
	}
}

// NewTraceID mints a fresh trace ID.
func NewTraceID() TraceID {
	var id TraceID
	a, b := nextID(), nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
		id[8+i] = byte(b >> (8 * i))
	}
	return id
}

// ctxKey carries a ctxRef through context.Context.
type ctxKey struct{}

// ctxRef is the in-process carrier: the live entry plus the span that
// children should parent under. The entry stays valid for as long as
// the handle that created this ref is open (it holds a reference).
type ctxRef struct {
	e    *active
	span SpanID
}

// Handle is an open span. End completes it; a Handle created by the
// call that started (or joined) the trace also settles the trace's
// fate when it ends. The zero Handle is a no-op.
type Handle struct {
	e     *active
	idx   int32
	id    SpanID
	final bool // mark the trace done when this handle ends
}

// End completes the span (and, for a final handle, seals the trace once
// no other local handles remain open).
func (h Handle) End() {
	if h.e == nil {
		return
	}
	h.e.finishSpan(h.idx, time.Now().UnixNano())
	if h.final {
		h.e.done.Store(true)
	}
	h.e.release()
}

// Start begins a span. If ctx already carries a trace, the span is a
// child of the current one; otherwise a new root trace is created
// (applying the head-sampling decision). With tracing disabled it
// returns ctx unchanged and a no-op handle.
func Start(ctx context.Context, name string) (context.Context, Handle) {
	if !enabled.Load() {
		return ctx, Handle{}
	}
	now := time.Now().UnixNano()
	if ref, ok := ctx.Value(ctxKey{}).(ctxRef); ok {
		if !ref.e.acquire() {
			return ctx, Handle{}
		}
		idx, id := ref.e.claim(ref.span, name, now)
		if idx < 0 {
			ref.e.release()
			return ctx, Handle{}
		}
		h := Handle{e: ref.e, idx: idx, id: id}
		return context.WithValue(ctx, ctxKey{}, ctxRef{e: ref.e, span: id}), h
	}
	e := defaultCollector.create(NewTraceID(), now, true, headSample())
	if e == nil {
		return ctx, Handle{}
	}
	idx, id := e.claim(0, name, now)
	h := Handle{e: e, idx: idx, id: id, final: true}
	return context.WithValue(ctx, ctxKey{}, ctxRef{e: e, span: id}), h
}

// Child begins a span only when ctx already carries a live trace; it
// never creates a root. Inner stages (blob transfers, tree-node
// fetches, WAL appends) use it so that work running outside any traced
// operation — background probes, untraced callers — records nothing.
func Child(ctx context.Context, name string) (context.Context, Handle) {
	if !enabled.Load() {
		return ctx, Handle{}
	}
	if _, ok := ctx.Value(ctxKey{}).(ctxRef); !ok {
		return ctx, Handle{}
	}
	return Start(ctx, name)
}

// StartRemote begins a span for a trace that arrived over the wire:
// the span joins the process-local entry for id (creating one if this
// is the first sight of the trace), parented under the sender's span.
// keep forces retention (the sender's head-sampling decision). final
// marks the trace done when the handle ends — the SUBMIT that finishes
// an operation passes true; blob requests pass false so the entry
// lingers and accumulates across the many requests of one KV op.
func StartRemote(ctx context.Context, id TraceID, parent SpanID, keep, final bool, name string) (context.Context, Handle) {
	if !enabled.Load() || id.IsZero() {
		return ctx, Handle{}
	}
	now := time.Now().UnixNano()
	e := defaultCollector.join(id, now)
	if e == nil {
		return ctx, Handle{}
	}
	if keep {
		e.keep.Store(true)
	}
	idx, sid := e.claim(parent, name, now)
	if idx < 0 {
		e.release()
		return ctx, Handle{}
	}
	h := Handle{e: e, idx: idx, id: sid, final: final}
	return context.WithValue(ctx, ctxKey{}, ctxRef{e: e, span: sid}), h
}

// Event records an already-elapsed span [start, now] under the current
// trace — used for stages whose start predates having a context, like
// the dispatcher queue wait measured from the enqueue stamp.
func Event(ctx context.Context, name string, start time.Time) {
	if !enabled.Load() || start.IsZero() {
		return
	}
	ref, ok := ctx.Value(ctxKey{}).(ctxRef)
	if !ok || !ref.e.acquire() {
		return
	}
	s := start.UnixNano()
	if idx, _ := ref.e.claim(ref.span, name, s); idx >= 0 {
		ref.e.finishSpan(idx, time.Now().UnixNano())
	}
	ref.e.release()
}

// RecordAt records one completed span into the live entry for id, if
// this process has one — a one-shot for instrumentation points that see
// only the wire message (e.g. frame writes). Absent traces are dropped.
func RecordAt(id TraceID, parent SpanID, name string, start, end int64) {
	if !enabled.Load() || id.IsZero() {
		return
	}
	e := defaultCollector.lookup(id)
	if e == nil {
		return
	}
	if idx, _ := e.claim(parent, name, start); idx >= 0 {
		e.finishSpan(idx, end)
	}
	e.release()
}

// FromContext extracts the wire-propagation fields of the current
// trace: its ID, the span new remote work should parent under, and the
// keep bit. ok is false when ctx carries no live trace.
func FromContext(ctx context.Context) (id TraceID, span SpanID, keep bool, ok bool) {
	if !enabled.Load() {
		return TraceID{}, 0, false, false
	}
	ref, refOK := ctx.Value(ctxKey{}).(ctxRef)
	if !refOK {
		return TraceID{}, 0, false, false
	}
	return ref.e.id, ref.span, ref.e.keep.Load(), true
}
