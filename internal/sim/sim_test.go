package sim

import (
	"fmt"
	"testing"
	"time"

	"faust/internal/byzantine"
	"faust/internal/consistency"
	"faust/internal/faustproto"
	"faust/internal/history"
	"faust/internal/transport"
	"faust/internal/wire"
	"faust/internal/workload"
)

// TestUSTORLinearizableUnderConcurrency is experiment E7's core claim:
// with a correct server, every recorded concurrent execution of USTOR is
// linearizable and wait-free.
func TestUSTORLinearizableUnderConcurrency(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		cl := NewCluster(n, Options{
			NetOpts: []transport.Option{transport.WithDelay(300*time.Microsecond, 7)},
		})
		w := workload.New(n, workload.Config{ReadFraction: 0.6, ValueSize: 32, Seed: int64(n)})
		if err := cl.RunWorkload(w, 30); err != nil {
			t.Fatalf("n=%d: workload: %v", n, err)
		}
		h := cl.History()
		cl.Stop()

		if res := consistency.CheckWaitFree(h, func(int) bool { return true }); !res.OK {
			t.Fatalf("n=%d: not wait-free: %s", n, res.Reason)
		}
		if res := consistency.CheckLinearizable(h); !res.OK {
			t.Fatalf("n=%d: not linearizable: %s\n%s", n, res.Reason, h)
		}
		if res := consistency.CheckCausal(h); !res.OK {
			t.Fatalf("n=%d: not causal: %s", n, res.Reason)
		}
	}
}

// TestCausalConsistencyUnderForkAttack is experiment E9: even under a
// forking attack, recorded histories stay causally consistent (weak
// fork-linearizability implies causality).
func TestCausalConsistencyUnderForkAttack(t *testing.T) {
	const n = 4
	server, err := byzantine.NewForkingServer(n, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(n, Options{Core: server})
	defer cl.Stop()

	// Each partition collaborates internally; reads target partition
	// members so values actually flow.
	for round := 0; round < 10; round++ {
		for c := 0; c < n; c++ {
			if err := cl.Write(c, []byte(uniqueVal(c, round))); err != nil {
				t.Fatalf("client %d: %v", c, err)
			}
			peer := c ^ 1 // partner within the partition
			if _, err := cl.Read(c, peer); err != nil {
				t.Fatalf("client %d read: %v", c, err)
			}
		}
	}
	// Cross-partition reads make the fork observable: they return bottom
	// although the other partition's writes completed long ago.
	for c := 0; c < n; c++ {
		other := (c + 2) % n
		v, err := cl.Read(c, other)
		if err != nil {
			t.Fatalf("client %d cross read: %v", c, err)
		}
		if v != nil {
			t.Fatalf("client %d saw cross-partition value %q", c, v)
		}
	}
	h := cl.History()
	if res := consistency.CheckLinearizable(h); res.OK {
		t.Fatal("forked history unexpectedly linearizable (attack had no effect)")
	}
	if res := consistency.CheckCausal(h); !res.OK {
		t.Fatalf("fork attack broke causal consistency: %s", res.Reason)
	}
	// Each partition's own sub-history IS linearizable.
	for _, part := range [][]int{{0, 1}, {2, 3}} {
		sub := subHistory(h, part)
		if res := consistency.CheckLinearizable(sub); !res.OK {
			t.Fatalf("partition %v sub-history not linearizable: %s", part, res.Reason)
		}
	}
}

// TestNoFalsePositivesCorrectServer is experiment E10 (failure-detection
// accuracy): long random runs against a correct server never trigger fail
// at any client, with FAUST's full machinery enabled.
func TestNoFalsePositivesCorrectServer(t *testing.T) {
	const n = 4
	cl := NewCluster(n, Options{
		Faust: true,
		FaustCfg: faustproto.Config{
			ProbeTimeout: 30 * time.Millisecond,
			PollInterval: 5 * time.Millisecond,
		},
		NetOpts: []transport.Option{transport.WithDelay(200*time.Microsecond, 3)},
	})
	defer cl.Stop()
	w := workload.New(n, workload.Config{ReadFraction: 0.5, ValueSize: 24, Seed: 99})
	if err := cl.RunWorkload(w, 40); err != nil {
		t.Fatalf("workload: %v", err)
	}
	for i, c := range cl.FClients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d false positive: %v", i, reason)
		}
	}
	// And the recorded history is linearizable.
	if res := consistency.CheckLinearizable(cl.History()); !res.OK {
		t.Fatalf("FAUST history not linearizable: %s", res.Reason)
	}
}

// TestStabilityCutSound is experiment E10's stability side: with a
// correct server, operations become stable and the history up to any
// stable cut is linearizable (trivially here, since the whole history is;
// the meaningful assertion is that stability arrives and cuts are
// monotone per client).
func TestStabilityCutSound(t *testing.T) {
	const n = 3
	cl := NewCluster(n, Options{
		Faust: true,
		FaustCfg: faustproto.Config{
			ProbeTimeout: 30 * time.Millisecond,
			PollInterval: 5 * time.Millisecond,
		},
	})
	defer cl.Stop()
	var lastTS int64
	for i := 0; i < 5; i++ {
		if err := cl.Write(0, []byte(uniqueVal(0, i))); err != nil {
			t.Fatal(err)
		}
	}
	lastTS = 5
	if err := cl.FClients[0].WaitStable(lastTS, 10*time.Second); err != nil {
		t.Fatalf("stability: %v", err)
	}
	cut := cl.FClients[0].StableCut()
	for j, w := range cut {
		if w < lastTS {
			t.Fatalf("cut[%d] = %d < %d after WaitStable", j, w, lastTS)
		}
	}
}

// TestForkEventuallyDetected is experiment E11: under a forking attack
// with active clients on both sides, every client eventually outputs fail.
func TestForkEventuallyDetected(t *testing.T) {
	const n = 4
	server, err := byzantine.NewForkingServer(n, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(n, Options{
		Core:  server,
		Faust: true,
		FaustCfg: faustproto.Config{
			ProbeTimeout: 30 * time.Millisecond,
			PollInterval: 5 * time.Millisecond,
		},
	})
	defer cl.Stop()
	for c := 0; c < n; c++ {
		if err := cl.Write(c, []byte(uniqueVal(c, 0))); err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for i, c := range cl.FClients {
		if err := c.WaitFail(10 * time.Second); err != nil {
			t.Fatalf("client %d never detected the fork: %v", i, err)
		}
	}
	// The audit over the clients' final versions confirms the fork.
	versions := make([]wire.SignedVersion, 0, n)
	for _, c := range cl.FClients {
		versions = append(versions, c.MaxVersion())
	}
	report := faustproto.Audit(cl.Ring, versions)
	if report.OK {
		t.Fatal("audit did not confirm the fork")
	}
}

// TestFaustWorkloadStaysLinearizable runs FAUST under concurrency with
// dummy reads mixed in and re-checks linearizability of the user ops.
func TestFaustWorkloadStaysLinearizable(t *testing.T) {
	const n = 3
	cl := NewCluster(n, Options{
		Faust: true,
		FaustCfg: faustproto.Config{
			ProbeTimeout: 40 * time.Millisecond,
			PollInterval: 10 * time.Millisecond,
		},
	})
	defer cl.Stop()
	w := workload.New(n, workload.Config{ReadFraction: 0.4, ValueSize: 16, Seed: 5})
	if err := cl.RunWorkload(w, 25); err != nil {
		t.Fatalf("workload: %v", err)
	}
	if res := consistency.CheckLinearizable(cl.History()); !res.OK {
		t.Fatalf("not linearizable: %s", res.Reason)
	}
}

// helpers

func uniqueVal(client, round int) string {
	return fmt.Sprintf("v%d-%d", client, round)
}

func subHistory(h history.History, clients []int) history.History {
	in := make(map[int]bool, len(clients))
	for _, c := range clients {
		in[c] = true
	}
	out := history.History{N: h.N}
	for _, o := range h.Ops {
		if in[o.Client] {
			out.Ops = append(out.Ops, o)
		}
	}
	return out
}
