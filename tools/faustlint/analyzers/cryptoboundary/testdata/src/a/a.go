// Fixture for the cryptoboundary analyzer: a package outside
// internal/crypto touching raw primitives.
package a

import (
	"crypto/ed25519"
	"crypto/sha256"
)

func rawSign(priv ed25519.PrivateKey, msg []byte) []byte {
	return ed25519.Sign(priv, msg) // want `raw ed25519\.Sign outside internal/crypto`
}

func rawVerify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return ed25519.Verify(pub, msg, sig) // want `raw ed25519\.Verify outside internal/crypto`
}

func rawDigest(b []byte) [32]byte {
	return sha256.Sum256(b) // want `raw sha256\.Sum256 outside internal/crypto`
}

func rawHasher() int {
	h := sha256.New() // want `raw sha256\.New outside internal/crypto`
	return h.Size()
}

func rawKeygen() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(nil) // want `raw ed25519\.GenerateKey outside internal/crypto`
}

// Constants stay usable: only operations are guarded.
const keySize = ed25519.PublicKeySize

var digestSize = sha256.Size

// justified ignore: a test-vector helper allowed to go raw.
func knownAnswer(b []byte) [32]byte {
	//faustlint:ignore cryptoboundary RFC test vector check needs the undomained digest
	return sha256.Sum256(b)
}
