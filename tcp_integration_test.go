package faust

import (
	"fmt"
	"net"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// TestTCPEndToEndUSTOR runs the USTOR protocol over a real TCP loopback
// server, exactly as cmd/faust-server and cmd/faust-client deploy it.
func TestTCPEndToEndUSTOR(t *testing.T) {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 31)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCP(ln, ustor.NewServer(n))
	t.Cleanup(srv.Stop)

	clients := make([]*ustor.Client, n)
	for i := 0; i < n; i++ {
		link, err := transport.DialTCP(ln.Addr().String(), i)
		if err != nil {
			t.Fatalf("client %d dial: %v", i, err)
		}
		clients[i] = ustor.NewClient(i, ring, signers[i], link)
	}

	for round := 0; round < 5; round++ {
		for i, c := range clients {
			if err := c.Write([]byte(fmt.Sprintf("tcp-%d-%d", i, round))); err != nil {
				t.Fatalf("client %d write: %v", i, err)
			}
		}
		for i, c := range clients {
			v, err := c.Read((i + 1) % n)
			if err != nil {
				t.Fatalf("client %d read: %v", i, err)
			}
			want := fmt.Sprintf("tcp-%d-%d", (i+1)%n, round)
			if string(v) != want {
				t.Fatalf("client %d read %q, want %q", i, v, want)
			}
		}
	}
	for i, c := range clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d failed over TCP: %v", i, reason)
		}
	}
}

// TestTCPEndToEndFAUSTStability runs the full FAUST stack over TCP: the
// storage server on one listener and the offline channel as a TCP mesh —
// the deployment of cmd/faust-client with -listen/-peers. A write must
// become stable across the network.
func TestTCPEndToEndFAUSTStability(t *testing.T) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 32)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCP(ln, ustor.NewServer(n))
	t.Cleanup(srv.Stop)

	// Reserve mesh addresses.
	meshAddrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		meshAddrs[i] = l.Addr().String()
		listeners[i] = l
	}
	peers := map[int]string{0: meshAddrs[0], 1: meshAddrs[1]}
	for _, l := range listeners {
		_ = l.Close()
	}

	cfg := faustproto.Config{
		ProbeTimeout: 60 * time.Millisecond,
		PollInterval: 15 * time.Millisecond,
	}
	clients := make([]*faustproto.Client, n)
	for i := 0; i < n; i++ {
		link, err := transport.DialTCP(ln.Addr().String(), i)
		if err != nil {
			t.Fatal(err)
		}
		mesh, err := offline.ListenTCP(i, meshAddrs[i], peers, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = faustproto.NewClient(i, ring, signers[i], link, mesh,
			faustproto.WithConfig(cfg))
		clients[i].Start()
	}
	t.Cleanup(func() {
		for _, c := range clients {
			c.Stop()
		}
	})

	ts, err := clients[0].Write([]byte("over-the-wire"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	v, _, err := clients[1].Read(0)
	if err != nil || string(v) != "over-the-wire" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if err := clients[0].WaitStable(ts, 15*time.Second); err != nil {
		t.Fatalf("stability over TCP: %v", err)
	}
	for i, c := range clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d false positive over TCP: %v", i, reason)
		}
	}
}
