package wire_test

import (
	"bytes"
	"testing"

	"faust/internal/version"
	"faust/internal/wire"
)

// seedMessages returns one representative of every message kind, with
// the optional sections exercised in both states where they exist.
func seedMessages() []wire.Message {
	ver := version.New(2)
	ver.V[0], ver.V[1] = 3, 5
	ver.M[0] = []byte{0xaa, 0xbb}
	ver.M[1] = nil // nil and empty digests are distinct on the wire

	sv := wire.SignedVersion{Committer: 1, Ver: ver, Sig: []byte("sig")}
	inv := wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0, SubmitSig: []byte("sigma")}
	commit := &wire.Commit{Ver: ver, CommitSig: []byte("phi"), ProofSig: []byte("psi")}
	tc := &wire.TraceCtx{Span: 0x1122334455667788, Flags: wire.TraceFlagKeep}
	copy(tc.ID[:], "trace-id-16-byte")
	tinv := inv
	tinv.Trace = tc

	return []wire.Message{
		&wire.Submit{T: 7, Inv: inv, Value: []byte("value"), DataSig: []byte("delta")},
		&wire.Submit{T: 8, Inv: inv, Value: nil, DataSig: []byte("delta"), Piggyback: commit},
		&wire.Submit{T: 9, Inv: tinv, Value: []byte("traced"), DataSig: []byte("delta")},
		&wire.Reply{IsRead: false, C: 2, CVer: sv, L: []wire.Invocation{inv}, P: [][]byte{[]byte("p")}},
		&wire.Reply{IsRead: false, C: 2, CVer: sv, L: []wire.Invocation{tinv}, Trace: tc},
		&wire.Reply{IsRead: true, C: 2, CVer: sv, JVer: sv,
			Mem: wire.MemEntry{T: 4, Value: []byte("v"), DataSig: []byte("d")}},
		commit,
		&wire.Probe{From: 3},
		&wire.VersionMsg{From: 1, SV: sv},
		&wire.Failure{From: 2},
		&wire.Failure{From: 2, HasEvidence: true, EvidenceA: sv, EvidenceB: sv},
		&wire.LSSubmit{Op: wire.OpWrite, Reg: 1, Value: []byte("x"), HaveSeq: 9},
		&wire.LSReply{Records: []wire.LSRecord{{
			Seq: 1, Client: 0, Op: wire.OpWrite, Reg: 0,
			ValueHash: []byte("vh"), ChainHash: []byte("ch"), Sig: []byte("s"),
		}}, Value: []byte("val")},
		&wire.LSCommit{Record: wire.LSRecord{Seq: 2, Client: 1, Op: wire.OpRead, Reg: 0,
			ChainHash: []byte("ch2"), Sig: []byte("s2")}},
		&wire.BlobPut{ID: 1, Hash: []byte("h"), Data: []byte("blob")},
		&wire.BlobPut{ID: 5, Hash: []byte("h"), Data: []byte("blob"), Trace: tc},
		&wire.BlobAck{ID: 1, Hash: []byte("h"), OK: false, Msg: "tampered"},
		&wire.BlobAck{ID: 2, Hash: []byte("h"), OK: true, Msg: "", Trace: tc},
		&wire.BlobGet{ID: 3, Hash: []byte("h")},
		&wire.BlobGet{ID: 6, Hash: []byte("h"), Trace: tc},
		&wire.BlobData{ID: 3, Hash: []byte("h"), Found: true, Data: []byte("blob")},
		&wire.BlobData{ID: 4, Hash: []byte("h"), Found: false, Trace: tc},
	}
}

// FuzzWireDecode checks that the frame codec is strictly canonical:
// every byte string the decoder accepts re-encodes to exactly itself.
// This is a protocol property, not a convenience — SUBMIT and COMMIT
// signatures cover encoded payloads, so if two distinct byte strings
// decoded to the same message, a malicious server could swap one for
// the other behind a valid signature check. The property implies, and
// so subsumes, ordinary round-trip correctness.
func FuzzWireDecode(f *testing.F) {
	for _, m := range seedMessages() {
		f.Add(wire.Encode(m))
	}
	// Malformed seeds: empty, unknown kind, truncated, trailing byte.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Add(wire.Encode(&wire.Probe{From: 1})[:3])
	f.Add(append(wire.Encode(&wire.Probe{From: 1}), 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wire.Decode(data)
		if err != nil {
			return // rejected inputs are out of scope
		}
		re := wire.Encode(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical frame:\n in: %x\nout: %x", data, re)
		}
		if n := wire.EncodedSize(m); n != len(re) {
			t.Fatalf("EncodedSize = %d, encoding is %d bytes", n, len(re))
		}
	})
}
