// Package wire defines the message types exchanged by the USTOR and FAUST
// protocols and a canonical, deterministic binary codec for them.
//
// USTOR (client <-> server, Algorithms 1 and 2):
//
//	SUBMIT  carries the operation's timestamp, invocation tuple, the new
//	        value (writes only) and the DATA-signature.
//	REPLY   carries the index c of the last committed operation's client,
//	        the signed version SVER[c], the list L of invocation tuples of
//	        concurrent operations, the PROOF-signature array P and, for
//	        reads, SVER[j] and MEM[j] for the requested register j.
//	COMMIT  carries the client's new version with COMMIT- and
//	        PROOF-signatures.
//
// FAUST (client <-> client over the offline channel, Section 6):
//
//	PROBE    asks a client for the maximal version it knows.
//	VERSION  carries a signed version in response to a probe (or
//	         proactively).
//	FAILURE  announces a detected server failure, optionally with
//	         verifiable evidence (a pair of incomparable signed versions).
//
// The codec is used verbatim over TCP and for the communication-overhead
// experiments (E6); the in-memory transport moves decoded messages but
// reports their encoded size.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"faust/internal/version"
)

// OpCode identifies the kind of a storage operation.
type OpCode uint8

// Operation codes. Values start at one so the zero value is invalid.
const (
	OpRead OpCode = iota + 1
	OpWrite
)

// String returns the paper's name for the opcode.
func (o OpCode) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(o))
	}
}

// Kind tags the wire messages.
type Kind uint8

// Message kinds. Values start at one so the zero value is invalid.
const (
	KindSubmit Kind = iota + 1
	KindReply
	KindCommit
	KindProbe
	KindVersion
	KindFailure
)

// Message is implemented by every protocol message.
type Message interface {
	// MsgKind returns the message's tag.
	MsgKind() Kind
	// encodeBody appends the message body (without the kind tag) to buf.
	encodeBody(buf []byte) []byte
}

// Invocation is the invocation tuple (i, oc, j, sigma) of Algorithm 1: the
// invoking client, the opcode, the register index and the
// SUBMIT-signature. Trace optionally carries the operation's
// distributed-tracing context; it is covered by the SUBMIT-signature
// (see AppendSubmitPayload) and echoed verbatim in REPLY.L, so
// verifiers of pending operations recompute the identical payload.
type Invocation struct {
	Client    int
	Op        OpCode
	Reg       int
	SubmitSig []byte
	Trace     *TraceCtx
}

// SignedVersion pairs a version with the COMMIT-signature of the client
// that committed it. A zero version carries Committer == -1 and no
// signature.
type SignedVersion struct {
	Committer int
	Ver       version.Version
	Sig       []byte
}

// ZeroSignedVersion returns the unsigned initial version for n clients.
func ZeroSignedVersion(n int) SignedVersion {
	return SignedVersion{Committer: -1, Ver: version.New(n)}
}

// Clone returns a deep copy.
func (sv SignedVersion) Clone() SignedVersion {
	c := SignedVersion{Committer: sv.Committer, Ver: sv.Ver.Clone()}
	if sv.Sig != nil {
		c.Sig = append([]byte(nil), sv.Sig...)
	}
	return c
}

// MemEntry is the server's MEM[j] record: the last timestamp, register
// value and DATA-signature received from client C_j. Value == nil encodes
// the initial bottom value.
type MemEntry struct {
	T       int64
	Value   []byte
	DataSig []byte
}

// Clone returns a deep copy. Nil and empty byte strings stay distinct: a
// nil Value is the paper's bottom while an empty one is a present
// zero-length register value, and collapsing the latter to nil would
// make honest empty values fail the reader's DATA-signature check.
func (m MemEntry) Clone() MemEntry {
	c := MemEntry{T: m.T}
	if m.Value != nil {
		c.Value = make([]byte, len(m.Value))
		copy(c.Value, m.Value)
	}
	if m.DataSig != nil {
		c.DataSig = append([]byte(nil), m.DataSig...)
	}
	return c
}

// Submit is the SUBMIT message of Algorithm 1 (lines 15 and 27).
type Submit struct {
	T       int64      // the operation's timestamp
	Inv     Invocation // invocation tuple (i, oc, j, sigma)
	Value   []byte     // new register value; nil for reads
	DataSig []byte     // DATA-signature delta on (t, xbar)
	// Piggyback optionally carries the COMMIT message of the client's
	// previous operation, realizing the optimization of Section 5 ("this
	// message can be eliminated by piggybacking its contents on the
	// SUBMIT message of the next operation"). The server processes it
	// before the submit, preserving FIFO semantics.
	Piggyback *Commit
}

// Reply is the REPLY message of Algorithm 2 (lines 111 and 114). For
// write operations JVer and Mem are absent (IsRead == false). Trace
// optionally echoes the SUBMIT's trace context back with the server's
// root span, letting the client link the server-side subtree; it is
// advisory (the server signs nothing) and never influences protocol
// state.
type Reply struct {
	IsRead bool
	C      int           // client who committed the last scheduled operation
	CVer   SignedVersion // SVER[c]
	JVer   SignedVersion // SVER[j], reads only
	Mem    MemEntry      // MEM[j], reads only
	L      []Invocation  // invocation tuples of concurrent operations
	P      [][]byte      // PROOF-signatures, indexed by client; nil = bottom
	Trace  *TraceCtx
}

// Clone returns a deep copy of the reply sharing no memory with the
// original. The correct server hands out copy-on-write snapshots that
// must never be written through; wrappers that deliberately mutate
// replies (byzantine.ReplyTamperServer) clone first.
func (rp *Reply) Clone() *Reply {
	c := &Reply{
		IsRead: rp.IsRead,
		C:      rp.C,
		CVer:   rp.CVer.Clone(),
		JVer:   rp.JVer.Clone(),
		Mem:    rp.Mem.Clone(),
	}
	if rp.L != nil {
		c.L = make([]Invocation, len(rp.L))
		for i, inv := range rp.L {
			c.L[i] = inv
			c.L[i].SubmitSig = append([]byte(nil), inv.SubmitSig...)
			c.L[i].Trace = inv.Trace.Clone()
		}
	}
	if rp.P != nil {
		c.P = make([][]byte, len(rp.P))
		for i, p := range rp.P {
			if p != nil {
				c.P[i] = append([]byte(nil), p...)
			}
		}
	}
	c.Trace = rp.Trace.Clone()
	return c
}

// Commit is the COMMIT message of Algorithm 1 (lines 19 and 32).
type Commit struct {
	Ver       version.Version
	CommitSig []byte // phi on the version
	ProofSig  []byte // psi on M[i]
}

// Probe is FAUST's offline PROBE message.
type Probe struct {
	From int
}

// VersionMsg is FAUST's offline VERSION message carrying the maximal
// version the sender knows (not necessarily committed by the sender).
type VersionMsg struct {
	From int
	SV   SignedVersion
}

// Failure is FAUST's offline FAILURE message. When the detection was
// triggered by incomparable versions, Evidence carries the two signed
// versions so that receivers can independently verify server misbehavior.
type Failure struct {
	From        int
	HasEvidence bool
	EvidenceA   SignedVersion
	EvidenceB   SignedVersion
}

// MsgKind implementations.
func (*Submit) MsgKind() Kind     { return KindSubmit }
func (*Reply) MsgKind() Kind      { return KindReply }
func (*Commit) MsgKind() Kind     { return KindCommit }
func (*Probe) MsgKind() Kind      { return KindProbe }
func (*VersionMsg) MsgKind() Kind { return KindVersion }
func (*Failure) MsgKind() Kind    { return KindFailure }

// Interface compliance checks.
var (
	_ Message = (*Submit)(nil)
	_ Message = (*Reply)(nil)
	_ Message = (*Commit)(nil)
	_ Message = (*Probe)(nil)
	_ Message = (*VersionMsg)(nil)
	_ Message = (*Failure)(nil)
)

// Signing payloads. These are the exact byte strings covered by the four
// signature kinds of Algorithm 1, rendered canonically.

// SubmitPayload is the payload of the SUBMIT-signature:
// opcode || register || timestamp || trace context.
func SubmitPayload(op OpCode, reg int, t int64, tr *TraceCtx) []byte {
	return AppendSubmitPayload(nil, op, reg, t, tr)
}

// AppendSubmitPayload appends the SUBMIT-signature payload to buf and
// returns the extended slice. The hot path reuses a scratch buffer instead
// of allocating per signature. The trace context is part of the signed
// payload: it travels inside the invocation tuple, so verifiers of
// pending operations (REPLY.L) hold exactly the fields the signer
// covered, and a server cannot reassign a trace to another operation
// behind a valid signature.
func AppendSubmitPayload(buf []byte, op OpCode, reg int, t int64, tr *TraceCtx) []byte {
	buf = append(buf, byte(op))
	buf = appendU32(buf, uint32(reg))
	buf = appendI64(buf, t)
	return appendTracePayload(buf, tr)
}

// DataPayload is the payload of the DATA-signature: timestamp || xbar,
// where xbar is the hash of the signer's most recently written value or
// nil (bottom) if it never wrote. Bottom and present hashes encode
// distinctly.
func DataPayload(t int64, xbar []byte) []byte {
	return AppendDataPayload(nil, t, xbar)
}

// AppendDataPayload appends the DATA-signature payload to buf and returns
// the extended slice.
func AppendDataPayload(buf []byte, t int64, xbar []byte) []byte {
	buf = appendI64(buf, t)
	if xbar == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return append(buf, xbar...)
}

// CommitPayload is the payload of the COMMIT-signature: the canonical
// encoding of the version.
func CommitPayload(v version.Version) []byte { return v.CanonicalBytes() }

// AppendCommitPayload appends the COMMIT-signature payload to buf and
// returns the extended slice.
func AppendCommitPayload(buf []byte, v version.Version) []byte {
	return v.AppendCanonical(buf)
}

// ProofPayload is the payload of the PROOF-signature: the digest M[i].
func ProofPayload(m []byte) []byte { return m }

// Codec. Values are encoded big-endian; byte strings carry a u32 length
// with the sentinel 0xFFFFFFFF for nil (bottom).

const nilSentinel = ^uint32(0)

// ErrCodec reports a malformed encoded message.
var ErrCodec = errors.New("wire: malformed message")

func appendU8(buf []byte, v uint8) []byte { return append(buf, v) }

func appendU32(buf []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(buf, tmp[:]...)
}

func appendI64(buf []byte, v int64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(v))
	return append(buf, tmp[:]...)
}

func appendBytes(buf, b []byte) []byte {
	if b == nil {
		return appendU32(buf, nilSentinel)
	}
	buf = appendU32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// appendString encodes a string as u32 length + bytes. Unlike
// appendBytes there is no nil sentinel: Go strings have no nil/empty
// distinction, so giving them one on the wire would create two
// encodings of "" and break canonical round-trips.
func appendString(buf []byte, s string) []byte {
	buf = appendU32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendVersion(buf []byte, v version.Version) []byte {
	buf = appendU32(buf, uint32(len(v.V)))
	for _, t := range v.V {
		buf = appendI64(buf, t)
	}
	for _, d := range v.M {
		buf = appendBytes(buf, d)
	}
	return buf
}

func appendSignedVersion(buf []byte, sv SignedVersion) []byte {
	buf = appendU32(buf, uint32(int32(sv.Committer)))
	buf = appendVersion(buf, sv.Ver)
	return appendBytes(buf, sv.Sig)
}

func appendInvocation(buf []byte, inv Invocation) []byte {
	buf = appendU32(buf, uint32(inv.Client))
	buf = appendU8(buf, uint8(inv.Op))
	buf = appendU32(buf, uint32(inv.Reg))
	buf = appendBytes(buf, inv.SubmitSig)
	return appendTraceCtx(buf, inv.Trace)
}

func appendMemEntry(buf []byte, m MemEntry) []byte {
	buf = appendI64(buf, m.T)
	buf = appendBytes(buf, m.Value)
	return appendBytes(buf, m.DataSig)
}

// reader decodes with sticky error handling.
type reader struct {
	data []byte
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrCodec
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.data) < 1 {
		r.fail()
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.data) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.data)
	r.data = r.data[4:]
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil || len(r.data) < 8 {
		r.fail()
		return 0
	}
	v := int64(binary.BigEndian.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n == nilSentinel {
		return nil
	}
	if uint32(len(r.data)) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[:n])
	r.data = r.data[n:]
	return out
}

// bool accepts exactly 0 or 1. Any other byte is rejected so that every
// accepted frame has a single canonical encoding — a forwarder that
// re-encodes a message must produce the very bytes that were signed.
func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail()
		return false
	}
}

// str decodes an appendString value. The nil sentinel is rejected: ""
// has exactly one encoding (length 0).
func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || n == nilSentinel {
		r.fail()
		return ""
	}
	if uint32(len(r.data)) < n {
		r.fail()
		return ""
	}
	out := string(r.data[:n])
	r.data = r.data[n:]
	return out
}

// maxVectorLen bounds decoded vector sizes to keep a malicious peer from
// forcing huge allocations.
const maxVectorLen = 1 << 20

func (r *reader) version() version.Version {
	n := r.u32()
	if r.err != nil || n > maxVectorLen {
		r.fail()
		return version.Version{}
	}
	v := version.New(int(n))
	for i := range v.V {
		v.V[i] = r.i64()
	}
	for i := range v.M {
		v.M[i] = r.bytes()
	}
	return v
}

func (r *reader) signedVersion() SignedVersion {
	var sv SignedVersion
	sv.Committer = int(int32(r.u32()))
	sv.Ver = r.version()
	sv.Sig = r.bytes()
	return sv
}

func (r *reader) invocation() Invocation {
	var inv Invocation
	inv.Client = int(r.u32())
	inv.Op = OpCode(r.u8())
	inv.Reg = int(r.u32())
	inv.SubmitSig = r.bytes()
	inv.Trace = r.traceCtx()
	return inv
}

func (r *reader) memEntry() MemEntry {
	var m MemEntry
	m.T = r.i64()
	m.Value = r.bytes()
	m.DataSig = r.bytes()
	return m
}

func (s *Submit) encodeBody(buf []byte) []byte {
	buf = appendI64(buf, s.T)
	buf = appendInvocation(buf, s.Inv)
	buf = appendBytes(buf, s.Value)
	buf = appendBytes(buf, s.DataSig)
	buf = appendBool(buf, s.Piggyback != nil)
	if s.Piggyback != nil {
		buf = s.Piggyback.encodeBody(buf)
	}
	return buf
}

func (rp *Reply) encodeBody(buf []byte) []byte {
	buf = appendBool(buf, rp.IsRead)
	buf = appendU32(buf, uint32(rp.C))
	buf = appendSignedVersion(buf, rp.CVer)
	if rp.IsRead {
		buf = appendSignedVersion(buf, rp.JVer)
		buf = appendMemEntry(buf, rp.Mem)
	}
	buf = appendU32(buf, uint32(len(rp.L)))
	for _, inv := range rp.L {
		buf = appendInvocation(buf, inv)
	}
	buf = appendU32(buf, uint32(len(rp.P)))
	for _, p := range rp.P {
		buf = appendBytes(buf, p)
	}
	return appendTraceCtx(buf, rp.Trace)
}

func (c *Commit) encodeBody(buf []byte) []byte {
	buf = appendVersion(buf, c.Ver)
	buf = appendBytes(buf, c.CommitSig)
	return appendBytes(buf, c.ProofSig)
}

func (p *Probe) encodeBody(buf []byte) []byte {
	return appendU32(buf, uint32(p.From))
}

func (v *VersionMsg) encodeBody(buf []byte) []byte {
	buf = appendU32(buf, uint32(v.From))
	return appendSignedVersion(buf, v.SV)
}

func (f *Failure) encodeBody(buf []byte) []byte {
	buf = appendU32(buf, uint32(f.From))
	buf = appendBool(buf, f.HasEvidence)
	if f.HasEvidence {
		buf = appendSignedVersion(buf, f.EvidenceA)
		buf = appendSignedVersion(buf, f.EvidenceB)
	}
	return buf
}

// Encode serializes a message with its kind tag.
func Encode(m Message) []byte {
	buf := make([]byte, 0, 128)
	buf = append(buf, byte(m.MsgKind()))
	return m.encodeBody(buf)
}

// AppendEncode appends the canonical encoding (kind tag + body) to buf and
// returns the extended slice. Combined with GetBuffer/PutBuffer it makes
// serialization allocation-free on the steady path; transports and the WAL
// use it to frame messages directly into reusable buffers.
func AppendEncode(buf []byte, m Message) []byte {
	buf = append(buf, byte(m.MsgKind()))
	return m.encodeBody(buf)
}

// bufPool recycles encoding scratch buffers. Stored as *[]byte so the
// slice header itself does not allocate on Put.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuffer borrows a zero-length scratch buffer from the codec pool.
// Return it with PutBuffer when the encoded bytes are no longer referenced.
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer returns a scratch buffer to the codec pool.
func PutBuffer(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// EncodedSize returns the length in bytes of the canonical encoding. The
// communication-overhead experiment uses it to measure per-message cost;
// it encodes into a pooled scratch buffer, so the measurement itself does
// not allocate.
func EncodedSize(m Message) int {
	buf := GetBuffer()
	*buf = AppendEncode((*buf)[:0], m) // keep any growth for the pool
	n := len(*buf)
	PutBuffer(buf)
	return n
}

// Decode parses a message produced by Encode. Trailing garbage is
// rejected.
func Decode(data []byte) (Message, error) {
	if len(data) < 1 {
		return nil, ErrCodec
	}
	kind := Kind(data[0])
	r := &reader{data: data[1:]}
	var m Message
	switch kind {
	case KindSubmit:
		s := &Submit{}
		s.T = r.i64()
		s.Inv = r.invocation()
		s.Value = r.bytes()
		s.DataSig = r.bytes()
		if r.bool() {
			c := &Commit{}
			c.Ver = r.version()
			c.CommitSig = r.bytes()
			c.ProofSig = r.bytes()
			s.Piggyback = c
		}
		m = s
	case KindReply:
		rp := &Reply{}
		rp.IsRead = r.bool()
		rp.C = int(r.u32())
		rp.CVer = r.signedVersion()
		if rp.IsRead {
			rp.JVer = r.signedVersion()
			rp.Mem = r.memEntry()
		}
		nl := r.u32()
		if r.err == nil && nl <= maxVectorLen {
			rp.L = make([]Invocation, nl)
			for i := range rp.L {
				rp.L[i] = r.invocation()
			}
		} else {
			r.fail()
		}
		np := r.u32()
		if r.err == nil && np <= maxVectorLen {
			rp.P = make([][]byte, np)
			for i := range rp.P {
				rp.P[i] = r.bytes()
			}
		} else {
			r.fail()
		}
		rp.Trace = r.traceCtx()
		m = rp
	case KindCommit:
		c := &Commit{}
		c.Ver = r.version()
		c.CommitSig = r.bytes()
		c.ProofSig = r.bytes()
		m = c
	case KindProbe:
		p := &Probe{}
		p.From = int(r.u32())
		m = p
	case KindVersion:
		v := &VersionMsg{}
		v.From = int(r.u32())
		v.SV = r.signedVersion()
		m = v
	case KindFailure:
		f := &Failure{}
		f.From = int(r.u32())
		f.HasEvidence = r.bool()
		if f.HasEvidence {
			f.EvidenceA = r.signedVersion()
			f.EvidenceB = r.signedVersion()
		}
		m = f
	case KindLSSubmit, KindLSReply, KindLSCommit:
		m = decodeLockstep(kind, r)
		if m == nil {
			return nil, ErrCodec
		}
	case KindBlobPut, KindBlobAck, KindBlobGet, KindBlobData:
		m = decodeBlob(kind, r)
		if m == nil {
			return nil, ErrCodec
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCodec, kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.data))
	}
	return m, nil
}
