// Package inspect provides the shared syntax inspector as an analyzer
// result, mirroring golang.org/x/tools/go/analysis/passes/inspect.
package inspect

import (
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer provides an *inspector.Inspector for the package under
// analysis. Depend on it via Requires and fetch the inspector from
// pass.ResultOf[inspect.Analyzer].
var Analyzer = &analysis.Analyzer{
	Name:       "inspect",
	Doc:        "optimize AST traversal for later passes",
	Run:        run,
	ResultType: reflect.TypeOf(new(inspector.Inspector)),
}

func run(pass *analysis.Pass) (interface{}, error) {
	return inspector.New(pass.Files), nil
}
