// Package faustproto implements FAUST, the fail-aware untrusted storage
// protocol of Section 6 of the paper, on top of the USTOR protocol.
//
// FAUST turns USTOR's extended operations into a fail-aware untrusted
// service (Definition 5): every operation returns a timestamp; the client
// asynchronously emits stability cuts stable_i(W) — vector W[j] bounds the
// timestamps of its operations known to be consistent with client C_j —
// and fail_i notifications when the server provably misbehaved.
//
// Mechanisms, exactly as in the paper:
//
//   - VER, an array with the maximal version received from every client,
//     updated from USTOR responses and offline VERSION messages;
//   - every received version must be comparable to VER[max]; an
//     incomparable pair is proof of a forking attack;
//   - periodic dummy reads over all registers in round-robin order
//     propagate versions through the server while the client is idle;
//   - when an entry VER[j] stays silent longer than the probe timeout,
//     the client sends C_j a PROBE over the offline channel; C_j answers
//     with a VERSION message carrying the maximal version it knows;
//   - on detection, a FAILURE message (with the incomparable version pair
//     as verifiable evidence when available) is broadcast to all clients,
//     fail_i is output, and the client halts.
package faustproto

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/version"
	"faust/internal/wire"
)

// ErrHalted is returned by operations after the client has output fail_i
// (or was stopped).
var ErrHalted = errors.New("faust: client halted")

// ForkError is the payload of fail_i when detection came from a pair of
// incomparable versions: cryptographically verifiable evidence that the
// server mounted a forking attack.
type ForkError struct {
	Client int
	A, B   wire.SignedVersion
}

// Error implements error.
func (e *ForkError) Error() string {
	return fmt.Sprintf("faust: client %d holds incomparable versions %s and %s: server mounted a forking attack",
		e.Client, e.A.Ver, e.B.Ver)
}

// Config tunes the FAUST background machinery.
type Config struct {
	// ProbeTimeout is the paper's delta: how long an entry of VER may stay
	// silent before the owner is probed over the offline channel.
	ProbeTimeout time.Duration
	// PollInterval is the cadence of the dummy-read and probe loops.
	PollInterval time.Duration
	// DisableDummyReads turns off the periodic dummy reads (used by tests
	// that need full control over the operation sequence).
	DisableDummyReads bool
}

// DefaultConfig returns the configuration used by the examples: probe
// after 200ms of silence, poll every 50ms.
func DefaultConfig() Config {
	return Config{ProbeTimeout: 200 * time.Millisecond, PollInterval: 50 * time.Millisecond}
}

// Option configures a Client.
type Option func(*Client)

// WithConfig replaces the default configuration.
func WithConfig(cfg Config) Option {
	return func(c *Client) { c.cfg = cfg }
}

// WithStableHandler registers a callback for stable_i(W) notifications.
// The callback receives a copy of the stability cut and runs outside the
// client's locks.
func WithStableHandler(f func(w []int64)) Option {
	return func(c *Client) { c.onStable = f }
}

// WithFailHandler registers a callback for the fail_i notification. It is
// invoked exactly once.
func WithFailHandler(f func(err error)) Option {
	return func(c *Client) { c.onFail = f }
}

// WithEventLog routes this client's protocol events (stability-cut
// advances, fail notifications, fork detections) to l instead of the
// process-wide default event log. The log is also handed to the
// underlying USTOR client.
func WithEventLog(l *obs.EventLog) Option {
	return func(c *Client) { c.events = l }
}

// Client is a FAUST client (Figure 4: USTOR client + failure detector +
// offline exchange). Create with NewClient, then Start the background
// machinery; user operations may run concurrently with it.
type Client struct {
	id   int
	n    int
	ring *crypto.Keyring
	us   *ustor.Client
	ep   offline.Channel
	cfg  Config

	onStable func([]int64)
	onFail   func(error)
	events   *obs.EventLog

	mu        sync.Mutex
	cond      *sync.Cond
	ver       []wire.SignedVersion // VER[j]: maximal version received from C_j
	lastUpd   []time.Time          // last time VER[j] was refreshed
	lastProbe []time.Time
	maxIdx    int // index of the maximum of all versions in VER
	w         []int64
	userBusy  int
	dummyReg  int
	failed    bool
	failErr   error
	stopped   bool

	stopCh    chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
	failOnce  sync.Once
}

// NewClient creates a FAUST client for client index id, talking to the
// server over link and to other clients over the offline endpoint ep.
func NewClient(id int, ring *crypto.Keyring, signer *crypto.Signer, link transport.Link, ep offline.Channel, opts ...Option) *Client {
	c := &Client{
		id:        id,
		n:         ring.N(),
		ring:      ring,
		ep:        ep,
		cfg:       DefaultConfig(),
		ver:       make([]wire.SignedVersion, ring.N()),
		lastUpd:   make([]time.Time, ring.N()),
		lastProbe: make([]time.Time, ring.N()),
		w:         make([]int64, ring.N()),
		stopCh:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := range c.ver {
		c.ver[i] = wire.ZeroSignedVersion(ring.N())
	}
	for _, o := range opts {
		o(c)
	}
	if c.events == nil {
		c.events = obs.Default().Events()
	}
	now := time.Now()
	for i := range c.lastUpd {
		c.lastUpd[i] = now
	}
	c.us = ustor.NewClient(id, ring, signer, link,
		ustor.WithFailHandler(c.ustorFailed), ustor.WithEventLog(c.events))
	return c
}

// ID returns the client index.
func (c *Client) ID() int { return c.id }

// Start launches the offline receiver, the dummy-read loop and the probe
// loop. It is idempotent.
func (c *Client) Start() {
	c.startOnce.Do(func() {
		c.wg.Add(2)
		go c.receiveLoop()
		go c.probeLoop()
		if !c.cfg.DisableDummyReads {
			c.wg.Add(1)
			go c.dummyReadLoop()
		}
	})
}

// Stop terminates the background machinery and unblocks pending waiters
// and operations. It does not constitute a failure.
func (c *Client) Stop() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.stopped = true
		c.cond.Broadcast()
		c.mu.Unlock()
		close(c.stopCh)
		c.ep.Close()
		_ = c.us.Close()
		c.wg.Wait()
	})
}

// Write implements write_i(X_i, x) of the fail-aware service: it returns
// the operation's timestamp.
func (c *Client) Write(x []byte) (int64, error) {
	if err := c.opStart(); err != nil {
		return 0, err
	}
	res, err := c.us.WriteX(context.Background(), x)
	c.opEnd()
	if err != nil {
		return 0, err
	}
	c.integrateVersion(c.id, res.Version)
	return res.Timestamp, nil
}

// Read implements read_i(X_j): it returns the register value and the
// operation's timestamp.
func (c *Client) Read(j int) ([]byte, int64, error) {
	if err := c.opStart(); err != nil {
		return nil, 0, err
	}
	res, err := c.us.ReadX(context.Background(), j)
	c.opEnd()
	if err != nil {
		return nil, 0, err
	}
	c.integrateVersion(c.id, res.Version)
	if !res.WriterVersion.Ver.IsZero() {
		sv := res.WriterVersion.Clone()
		// USTOR verified the COMMIT-signature with key j (line 49); pin
		// the committer rather than trusting the server's field.
		sv.Committer = j
		c.integrateVersion(j, sv)
	}
	return res.Value, res.Timestamp, nil
}

// StableCut returns a copy of the current stability cut W. An operation
// of this client with timestamp t is stable w.r.t. C_j iff W[j] >= t.
func (c *Client) StableCut() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.w))
	copy(out, c.w)
	return out
}

// MaxVersion returns the maximal version the client knows (VER[max]).
func (c *Client) MaxVersion() wire.SignedVersion {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver[c.maxIdx].Clone()
}

// Failed reports whether fail_i has been output, and its reason.
func (c *Client) Failed() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed, c.failErr
}

// IsStable reports whether the operation with timestamp t is stable
// w.r.t. all clients.
func (c *Client) IsStable(t int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, wj := range c.w {
		if wj < t {
			return false
		}
	}
	return true
}

// WaitStable blocks until the operation with timestamp t is stable w.r.t.
// all clients, the client fails (returning the failure), or the timeout
// elapses.
func (c *Client) WaitStable(t int64, timeout time.Duration) error {
	return c.waitCut(timeout, func() bool {
		for _, wj := range c.w {
			if wj < t {
				return false
			}
		}
		return true
	})
}

// WaitStableFor blocks until the operation with timestamp t is stable
// w.r.t. client j.
func (c *Client) WaitStableFor(j int, t int64, timeout time.Duration) error {
	return c.waitCut(timeout, func() bool { return c.w[j] >= t })
}

// WaitFail blocks until fail_i occurs (returning nil) or the timeout
// elapses.
func (c *Client) WaitFail(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.failed {
		if c.stopped || time.Now().After(deadline) {
			return fmt.Errorf("faust: no failure within %v", timeout)
		}
		c.cond.Wait()
	}
	return nil
}

func (c *Client) waitCut(timeout time.Duration, pred func() bool) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !pred() {
		if c.failed {
			return c.failErr
		}
		if c.stopped {
			return ErrHalted
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("faust: stability not reached within %v (cut %v)", timeout, c.w)
		}
		c.cond.Wait()
	}
	return nil
}

func (c *Client) opStart() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return ErrHalted
	}
	if c.stopped {
		return ErrHalted
	}
	c.userBusy++
	return nil
}

func (c *Client) opEnd() {
	c.mu.Lock()
	c.userBusy--
	c.mu.Unlock()
}

// integrateVersion folds a version received "from" client from into VER,
// performing the comparability check against VER[max], updating the
// stability cut, and waking waiters. It fires fail on incomparability.
func (c *Client) integrateVersion(from int, sv wire.SignedVersion) {
	now := time.Now()
	c.mu.Lock()
	if c.failed || c.stopped {
		c.mu.Unlock()
		return
	}
	c.lastUpd[from] = now
	if sv.Ver.IsZero() {
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	maxSV := c.ver[c.maxIdx]
	if !version.Comparable(sv.Ver, maxSV.Ver) {
		c.mu.Unlock()
		fe := &ForkError{Client: c.id, A: maxSV.Clone(), B: sv.Clone()}
		c.events.Record(obs.EventFork, c.id, "",
			fmt.Sprintf("incomparable versions %s / %s (from client %d)", fe.A.Ver, fe.B.Ver, from))
		c.failWith(fe, true)
		return
	}
	var notify []int64
	if c.ver[from].Ver.Less(sv.Ver) {
		c.ver[from] = sv.Clone()
		if c.ver[c.maxIdx].Ver.LessEq(sv.Ver) {
			c.maxIdx = from
		}
		if wj := sv.Ver.V[c.id]; wj > c.w[from] {
			c.w[from] = wj
			notify = make([]int64, len(c.w))
			copy(notify, c.w)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if notify != nil {
		c.events.Record(obs.EventStabilityCut, c.id, "", fmt.Sprintf("W=%v", notify))
		if c.onStable != nil {
			c.onStable(notify)
		}
	}
}

// ustorFailed is the fail handler of the underlying USTOR client.
func (c *Client) ustorFailed(err error) {
	c.failWith(err, false)
}

// failWith outputs fail_i exactly once: records the reason, broadcasts a
// FAILURE message to all clients (with evidence when the cause is a pair
// of incomparable versions) and wakes all waiters.
func (c *Client) failWith(err error, withEvidence bool) {
	c.failOnce.Do(func() {
		c.mu.Lock()
		c.failed = true
		c.failErr = err
		c.cond.Broadcast()
		c.mu.Unlock()

		msg := &wire.Failure{From: c.id}
		var fe *ForkError
		if withEvidence && errors.As(err, &fe) {
			msg.HasEvidence = true
			msg.EvidenceA = fe.A
			msg.EvidenceB = fe.B
		}
		c.events.Record(obs.EventFail, c.id, "", err.Error())
		_ = c.ep.Broadcast(msg)
		if c.onFail != nil {
			c.onFail(err)
		}
	})
}

// receiveLoop handles offline PROBE / VERSION / FAILURE messages.
func (c *Client) receiveLoop() {
	defer c.wg.Done()
	for {
		msg, err := c.ep.Recv()
		if err != nil {
			return
		}
		switch m := msg.Body.(type) {
		case *wire.Probe:
			c.handleProbe(msg.From)
		case *wire.VersionMsg:
			c.handleVersion(msg.From, m)
		case *wire.Failure:
			c.handleFailure(m)
		}
	}
}

func (c *Client) handleProbe(from int) {
	c.mu.Lock()
	failed := c.failed
	sv := c.ver[c.maxIdx].Clone()
	c.mu.Unlock()
	if failed {
		// A failed client re-announces the failure instead of a version.
		_ = c.ep.Send(from, &wire.Failure{From: c.id})
		return
	}
	_ = c.ep.Send(from, &wire.VersionMsg{From: c.id, SV: sv})
}

func (c *Client) handleVersion(from int, m *wire.VersionMsg) {
	sv := m.SV
	if sv.Ver.IsZero() {
		// Nothing to learn, but the peer is alive: refresh its timer.
		c.integrateVersion(from, wire.ZeroSignedVersion(c.n))
		return
	}
	if sv.Committer < 0 || sv.Committer >= c.n {
		return // malformed; honest clients never send this
	}
	if !c.ring.Verify(sv.Committer, sv.Sig, crypto.DomainCommit, wire.CommitPayload(sv.Ver)) {
		return // unverifiable version carries no information
	}
	c.integrateVersion(from, sv)
}

func (c *Client) handleFailure(m *wire.Failure) {
	if m.HasEvidence {
		// Evidence is verifiable: two validly signed, incomparable
		// versions prove server misbehavior regardless of the sender.
		a, b := m.EvidenceA, m.EvidenceB
		okA := a.Committer >= 0 && a.Committer < c.n &&
			c.ring.Verify(a.Committer, a.Sig, crypto.DomainCommit, wire.CommitPayload(a.Ver))
		okB := b.Committer >= 0 && b.Committer < c.n &&
			c.ring.Verify(b.Committer, b.Sig, crypto.DomainCommit, wire.CommitPayload(b.Ver))
		if !okA || !okB || version.Comparable(a.Ver, b.Ver) {
			return // bogus evidence; ignore
		}
		c.events.Record(obs.EventFork, c.id, "",
			fmt.Sprintf("verified fork evidence relayed by client %d", m.From))
		c.failWith(&ForkError{Client: c.id, A: a, B: b}, true)
		return
	}
	// Clients are trusted (the model assumes honest clients), so a bare
	// FAILURE notification is believed.
	c.failWith(fmt.Errorf("faust: client %d reported a server failure", m.From), false)
}

// dummyReadLoop periodically issues a read over all registers round-robin
// while no user operation is in flight, propagating fresh versions
// through the server (Section 6).
func (c *Client) dummyReadLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		if c.failed || c.stopped {
			c.mu.Unlock()
			return
		}
		busy := c.userBusy > 0
		reg := c.dummyReg
		c.dummyReg = (c.dummyReg + 1) % c.n
		c.mu.Unlock()
		if busy {
			continue
		}
		res, err := c.us.ReadX(context.Background(), reg)
		if err != nil {
			// Detection is handled by the fail handler; transport errors
			// mean shutdown. Either way this loop is done.
			return
		}
		c.integrateVersion(c.id, res.Version)
		if !res.WriterVersion.Ver.IsZero() {
			sv := res.WriterVersion.Clone()
			sv.Committer = reg
			c.integrateVersion(reg, sv)
		}
	}
}

// probeLoop watches the freshness of VER entries and probes silent
// clients over the offline channel. It runs independently of the dummy
// reads so that a crashed (silent) server cannot disable probing.
func (c *Client) probeLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-ticker.C:
		}
		now := time.Now()
		var targets []int
		c.mu.Lock()
		if c.failed || c.stopped {
			c.mu.Unlock()
			return
		}
		for j := 0; j < c.n; j++ {
			if j == c.id {
				continue
			}
			if now.Sub(c.lastUpd[j]) > c.cfg.ProbeTimeout && now.Sub(c.lastProbe[j]) > c.cfg.ProbeTimeout {
				c.lastProbe[j] = now
				targets = append(targets, j)
			}
		}
		c.mu.Unlock()
		for _, j := range targets {
			_ = c.ep.Send(j, &wire.Probe{From: c.id})
		}
	}
}
