package kv

import (
	"bytes"
	"testing"

	"faust/internal/crypto"
)

// fuzzLeaf returns a valid leaf node: keys sorted and distinct, each
// entry's chunk list consistent with its size.
func fuzzLeaf() *node {
	mk := func(key string, size int64, nchunks int) entry {
		e := entry{Key: key, Size: size}
		for i := 0; i < nchunks; i++ {
			e.Chunks = append(e.Chunks, crypto.Hash([]byte{byte(i)}))
		}
		return e
	}
	return &node{leaf: true, entries: []entry{
		mk("alpha", 0, 0),
		mk("beta", 12, 1),
		mk("gamma", 1<<20, 3),
	}}
}

// fuzzInterior returns a valid interior node: child minKeys sorted and
// distinct, counts positive.
func fuzzInterior() *node {
	return &node{children: []childRef{
		{minKey: "alpha", count: 2, bytes: 40, hash: crypto.Hash([]byte("left"))},
		{minKey: "beta", count: 1, bytes: 0, hash: crypto.Hash([]byte("right"))},
	}}
}

// FuzzNodeDecode checks that the tree-node codec is strictly canonical:
// every byte string decodeNode accepts re-encodes to exactly itself.
// Node hashes ARE hashes of encodings — if two byte strings decoded to
// the same node, a lying server could serve either under one authenticated
// hash, so acceptance of non-canonical encodings would be a hole in the
// directory tree's integrity story.
func FuzzNodeDecode(f *testing.F) {
	f.Add(encodeNode(fuzzLeaf()))
	f.Add(encodeNode(fuzzInterior()))
	f.Add(encodeNode(&node{leaf: true})) // empty leaf (empty directory)
	// Malformed seeds: bad magic, truncated, trailing byte.
	f.Add([]byte("FKVX"))
	f.Add(encodeNode(fuzzLeaf())[:9])
	f.Add(append(encodeNode(fuzzInterior()), 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := decodeNode(data)
		if err != nil {
			return
		}
		if re := encodeNode(n); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical node encoding:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzRootDecode checks the same canonicality property for the root
// record, whose encoding is what the fail-aware register actually
// stores: decodeRoot must accept exactly the byte strings encodeRoot
// can produce for internally consistent records.
func FuzzRootDecode(f *testing.F) {
	f.Add(encodeRoot(&rootRecord{Gen: 7, RootHash: emptyTreeRoot}))
	f.Add(encodeRoot(&rootRecord{
		Gen: 9, NumEntries: 3, TotalBytes: 1 << 21, Height: 2,
		RootHash: crypto.Hash([]byte("root")),
	}))
	// Malformed seeds: wrong magic, truncated, trailing byte.
	f.Add([]byte("FKVR1"))
	f.Add(encodeRoot(&rootRecord{Gen: 1, RootHash: emptyTreeRoot})[:10])
	f.Add(append(encodeRoot(&rootRecord{Gen: 1, RootHash: emptyTreeRoot}), 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		rr, err := decodeRoot(data)
		if err != nil {
			return
		}
		if re := encodeRoot(rr); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical root encoding:\n in: %x\nout: %x", data, re)
		}
	})
}
