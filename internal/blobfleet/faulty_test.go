package blobfleet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/transport"
)

func putOne(t *testing.T, bs transport.BlobStore, data []byte) []byte {
	t.Helper()
	hash := crypto.Hash(data)
	if err := bs.PutBlob(hash, data); err != nil {
		t.Fatalf("put: %v", err)
	}
	return hash
}

func TestFaultyPassthrough(t *testing.T) {
	fb := NewFaultyBlobs("b", transport.NewMemBlobs(), FaultConfig{})
	data := []byte("hello fleet")
	hash := putOne(t, fb, data)
	got, err := fb.GetBlob(hash)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
	if c := fb.Counts(); c != (FaultCounts{}) {
		t.Fatalf("zero-config wrapper injected faults: %+v", c)
	}
}

func TestFaultyKillRevive(t *testing.T) {
	fb := NewFaultyBlobs("b", transport.NewMemBlobs(), FaultConfig{})
	data := []byte("survives the crash")
	hash := putOne(t, fb, data)

	fb.Kill()
	if !fb.Killed() {
		t.Fatal("Killed() = false after Kill")
	}
	if err := fb.PutBlob(hash, data); !errors.Is(err, ErrInjected) {
		t.Fatalf("put on killed backend: %v, want ErrInjected", err)
	}
	if _, err := fb.GetBlob(hash); !errors.Is(err, ErrInjected) {
		t.Fatalf("get on killed backend: %v, want ErrInjected", err)
	}

	fb.Revive()
	got, err := fb.GetBlob(hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after revive: %q, %v", got, err)
	}
}

func TestFaultyDeterministicErrors(t *testing.T) {
	run := func() (errs int) {
		fb := NewFaultyBlobs("b", transport.NewMemBlobs(), FaultConfig{Seed: 42, ErrRate: 0.5})
		data := []byte("x")
		hash := crypto.Hash(data)
		for i := 0; i < 100; i++ {
			if err := fb.PutBlob(hash, data); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error kind: %v", err)
				}
				errs++
			}
		}
		return errs
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault streams: %d vs %d", a, b)
	}
	if a < 30 || a > 70 {
		t.Fatalf("ErrRate 0.5 injected %d/100 errors", a)
	}
}

func TestFaultyShortReadAndFlip(t *testing.T) {
	inner := transport.NewMemBlobs()
	fb := NewFaultyBlobs("b", inner, FaultConfig{Seed: 1, ShortReadRate: 1})
	data := []byte("0123456789abcdef")
	hash := putOne(t, fb, data)

	got, err := fb.GetBlob(hash)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(got) != len(data)/2 {
		t.Fatalf("short read returned %d bytes, want %d", len(got), len(data)/2)
	}

	fb.SetConfig(FaultConfig{FlipRate: 1})
	got, err = fb.GetBlob(hash)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("FlipRate=1 returned an intact payload")
	}
	// The stored blob must stay intact: faults corrupt the wire, not the disk.
	stored, err := inner.GetBlob(hash)
	if err != nil || !bytes.Equal(stored, data) {
		t.Fatalf("inner store corrupted: %q, %v", stored, err)
	}
	c := fb.Counts()
	if c.ShortReads != 1 || c.BitFlips != 1 {
		t.Fatalf("counts = %+v, want 1 short read and 1 bit flip", c)
	}
}

func TestFaultyHangReleasedByRevive(t *testing.T) {
	fb := NewFaultyBlobs("b", transport.NewMemBlobs(), FaultConfig{Seed: 1, HangRate: 1, HangFor: time.Minute})
	done := make(chan error, 1)
	go func() {
		_, err := fb.GetBlob(crypto.Hash([]byte("x")))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hung op returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	fb.Revive()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released hang returned %v, want ErrInjected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Revive did not release the hanging operation")
	}
}

func TestFaultyHangTimesOut(t *testing.T) {
	fb := NewFaultyBlobs("b", transport.NewMemBlobs(), FaultConfig{Seed: 1, HangRate: 1, HangFor: 10 * time.Millisecond})
	start := time.Now()
	if _, err := fb.GetBlob(crypto.Hash([]byte("x"))); !errors.Is(err, ErrInjected) {
		t.Fatalf("hang: %v, want ErrInjected", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("hang returned before HangFor elapsed")
	}
	if c := fb.Counts(); c.Hangs != 1 {
		t.Fatalf("counts = %+v, want 1 hang", c)
	}
}
