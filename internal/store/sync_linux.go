//go:build linux

package store

import (
	"errors"
	"os"
	"syscall"
)

// datasync flushes a file's data (and only the metadata needed to read it
// back, e.g. size changes) with fdatasync. Combined with segment
// preallocation this skips the inode timestamp writes a full fsync pays on
// every group-commit flush.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if !errors.Is(err, syscall.EINTR) {
			return err
		}
	}
}
