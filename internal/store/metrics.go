package store

import "faust/internal/obs"

// WAL observability: how long syncs take, how well group commit batches,
// and how much record data flows. All handles live in the process-wide
// default registry and are resolved once here.
var (
	// One observation per fsync/fdatasync of WAL data — the dominant cost
	// of durable operation handling (the paper's server-side bottleneck
	// once signatures are off the critical path).
	smFsyncNs = obs.Default().Histogram("faust_wal_fsync_ns")

	// One observation per group-commit flush: end-to-end batch write
	// latency (prealloc + write + optional sync) and batch size in bytes.
	smFlushNs    = obs.Default().Histogram("faust_wal_flush_ns")
	smBatchBytes = obs.Default().Histogram("faust_wal_batch_bytes")

	smAppends = obs.Default().Counter("faust_wal_appends_total")
	smFlushes = obs.Default().Counter("faust_wal_flushes_total")
)

func init() {
	r := obs.Default()
	r.Help("faust_wal_fsync_ns", "WAL fsync/fdatasync latency, nanoseconds")
	r.Help("faust_wal_flush_ns", "group-commit flush latency (write+sync), nanoseconds")
	r.Help("faust_wal_batch_bytes", "bytes of framed records per group-commit flush")
	r.Help("faust_wal_appends_total", "WAL records appended")
	r.Help("faust_wal_flushes_total", "group-commit flushes that wrote a batch")
}
