package consistency

import (
	"math"
	"sort"

	"faust/internal/history"
)

// CheckLinearizable decides linearizability (Definition 2) of a history of
// SWMR registers with unique written values in polynomial time.
//
// By the locality theorem of Herlihy and Wing, a history is linearizable
// iff each per-register sub-history is. For one SWMR register with unique
// values the classic three conditions characterize atomicity, with w_k
// denoting the k-th write in the (single) writer's program order and k(r)
// the index of the write a read r returns (0 for bottom):
//
//  1. no read from the future: w_{k(r)} is invoked before r responds;
//  2. no stale read: k(r) >= max{ j : w_j completed before r was invoked };
//  3. no new-old inversion: if r1 completes before r2 is invoked then
//     k(r1) <= k(r2).
//
// Pending writes may or may not take effect; they satisfy (2) and (3)
// vacuously because they complete after every response. Pending reads are
// ignored (they may be completed with any consistent value).
func CheckLinearizable(h history.History) Result {
	rf, err := readsFrom(h)
	if err != nil {
		return fail("%v", err)
	}
	if err := h.WellFormed(); err != nil {
		return fail("%v", err)
	}
	_, writePos := registerWriteOrder(h)

	for r := 0; r < h.N; r++ {
		res := checkRegisterAtomic(h, r, rf, writePos)
		if !res.OK {
			return res
		}
	}
	return ok
}

func checkRegisterAtomic(h history.History, reg int, rf map[int]int, writePos map[int]int) Result {
	ops := h.ByRegister(reg)
	type writeInfo struct {
		op  history.Op
		idx int // 1-based program-order index
	}
	var writes []writeInfo
	var reads []history.Op
	for _, o := range ops {
		switch o.Kind {
		case history.OpWrite:
			writes = append(writes, writeInfo{op: o, idx: writePos[o.ID]})
		case history.OpRead:
			if o.IsComplete() {
				reads = append(reads, o)
			}
		}
	}
	sort.Slice(writes, func(a, b int) bool { return writes[a].idx < writes[b].idx })

	resp := func(o history.Op) int64 {
		if !o.IsComplete() {
			return math.MaxInt64
		}
		return o.Resp
	}

	// kOf maps a read to the index of the write it returns.
	kOf := func(r history.Op) int {
		w := rf[r.ID]
		if w == -1 {
			return 0
		}
		return writePos[w]
	}

	for _, r := range reads {
		k := kOf(r)
		// Condition 1: the write must be invoked before the read responds.
		if k > 0 {
			w := writes[k-1].op
			if w.Inv >= r.Resp {
				return fail("register %d: %s reads from the future write %s", reg, r, w)
			}
		}
		// Condition 2: no completed, newer-than-k write may precede the read.
		for _, w := range writes {
			if resp(w.op) < r.Inv && w.idx > k {
				return fail("register %d: %s returns stale value; %s completed before it",
					reg, r, w.op)
			}
		}
	}
	// Condition 3: reads ordered in real time respect write order.
	for i := range reads {
		for j := range reads {
			if reads[i].Resp < reads[j].Inv && kOf(reads[i]) > kOf(reads[j]) {
				return fail("register %d: new-old inversion between %s and %s",
					reg, reads[i], reads[j])
			}
		}
	}
	return ok
}

// CheckLinearizableExhaustive decides linearizability by explicit search
// over linearization orders (the Wing–Gong algorithm with spec pruning).
// It exists to cross-validate CheckLinearizable on small histories and to
// handle degenerate inputs (duplicate values) the fast path rejects.
// Histories larger than maxOps complete operations yield an error result.
func CheckLinearizableExhaustive(h history.History, maxOps int) Result {
	complete := h.Complete()
	if len(complete.Ops) > maxOps {
		return fail("history too large for exhaustive search: %d > %d ops",
			len(complete.Ops), maxOps)
	}
	// Pending writes may linearize; enumerate every subset of them.
	var pendingWrites []history.Op
	for _, o := range h.Ops {
		if !o.IsComplete() && o.Kind == history.OpWrite {
			pendingWrites = append(pendingWrites, o)
		}
	}
	if len(pendingWrites) > 10 {
		return fail("too many pending writes for exhaustive search: %d", len(pendingWrites))
	}
	for mask := 0; mask < 1<<len(pendingWrites); mask++ {
		ops := append([]history.Op(nil), complete.Ops...)
		for b, w := range pendingWrites {
			if mask&(1<<b) != 0 {
				ops = append(ops, w)
			}
		}
		if searchLinearization(ops) {
			return ok
		}
	}
	return fail("no linearization order exists")
}

// searchLinearization backtracks over orders of ops that respect real-time
// precedence and the sequential specification.
func searchLinearization(ops []history.Op) bool {
	used := make([]bool, len(ops))
	state := make(map[int][]byte)
	var rec func(placed int) bool
	rec = func(placed int) bool {
		if placed == len(ops) {
			return true
		}
		for i, o := range ops {
			if used[i] {
				continue
			}
			// o may go next only if no unplaced op precedes it in real time.
			eligible := true
			for j, p := range ops {
				if i == j || used[j] {
					continue
				}
				if p.Precedes(o) {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			var saved []byte
			var hadKey bool
			if o.Kind == history.OpRead {
				if !valueEqual(state[o.Reg], o.Value) {
					continue
				}
			} else {
				saved, hadKey = state[o.Reg]
				state[o.Reg] = o.Value
			}
			used[i] = true
			if rec(placed + 1) {
				return true
			}
			used[i] = false
			if o.Kind == history.OpWrite {
				if hadKey {
					state[o.Reg] = saved
				} else {
					delete(state, o.Reg)
				}
			}
		}
		return false
	}
	return rec(0)
}

// CheckWaitFree verifies Definition 4 on a recorded history: every
// operation invoked by a client marked correct has completed. The caller
// supplies the set of correct clients (crashed clients are exempt).
func CheckWaitFree(h history.History, correct func(client int) bool) Result {
	for _, o := range h.Ops {
		if !o.IsComplete() && correct(o.Client) {
			return fail("operation %s of correct client %d never completed", o, o.Client)
		}
	}
	return ok
}
