// Fixture for the hotpathalloc analyzer.
package a

import "fmt"

func sink(args ...interface{}) { _ = args }

// AppendRecord is bound to the zero-alloc contract by its Append* name.
func AppendRecord(buf []byte, v int) []byte {
	buf = append(buf, make([]byte, 8)...) // sanctioned zero-extend: exempt
	tmp := make([]byte, 8)                // want `make\(\) allocates on the AppendRecord hot path`
	_ = tmp
	s := fmt.Sprintf("%d", v) // want `fmt\.Sprintf allocates on the AppendRecord hot path`
	_ = s
	_ = string(buf[:4]) // want `string/\[\]byte conversion copies on the AppendRecord hot path`
	sink(v)             // want `passing int to a variadic interface parameter boxes it`
	sink(&v)            // pointers fit the interface word: no boxing, not flagged
	return buf
}

// HashInto is bound by its *Into suffix.
func HashInto(dst []byte, name string) []byte {
	b := []byte(name) // want `string/\[\]byte conversion copies on the HashInto hot path`
	return append(dst, b...)
}

// EncodedSize is bound by name.
func EncodedSize(payload []byte) int {
	hdr := make([]byte, 4) // want `make\(\) allocates on the EncodedSize hot path`
	return len(hdr) + len(payload)
}

// VerifyBatch is bound by name: the batch dispatch pipeline's verify
// fan-out runs once per dispatched batch.
func VerifyBatch(jobs []int) {
	seen := make(map[int]bool) // want `make\(\) allocates on the VerifyBatch hot path`
	for _, j := range jobs {
		seen[j] = true
	}
}

// dispatchBatches is bound by name: it is the dispatcher's drain loop.
func dispatchBatches(inbox <-chan []byte) {
	for b := range inbox {
		_ = string(b) // want `string/\[\]byte conversion copies on the dispatchBatches hot path`
	}
}

// popBatch is bound by name; appending into the caller's buffer is fine.
func popBatch(q [][]byte, buf [][]byte) [][]byte {
	return append(buf, q...)
}

//faustlint:hotpath opted in: runs per frame on the decode path
func decodeFrame(b []byte) []byte {
	out := make([]byte, len(b)) // want `make\(\) allocates on the decodeFrame hot path`
	copy(out, b)
	return out
}

// buildReport is not a contract function: allocations are fine.
func buildReport(v int) string {
	parts := make([]string, 0, 4)
	parts = append(parts, fmt.Sprintf("%d", v))
	return parts[0]
}

// AppendError shows the escape hatch on a cold error path.
func AppendError(buf []byte, n int) ([]byte, error) {
	if n > len(buf) {
		//faustlint:ignore hotpathalloc oversize rejection path, never taken on the steady path
		return buf, fmt.Errorf("a: %d exceeds limit", n)
	}
	return buf[:n], nil
}

// Closures inside a contract function run outside the contract body.
func AppendLazy(buf []byte) ([]byte, func() string) {
	report := func() string { return fmt.Sprintf("%d bytes", len(buf)) }
	return buf, report
}
