package wire

// Lock-step protocol messages. The lock-step baseline (package lockstep)
// is a fork-linearizable protocol in the style of SUNDR and of the
// protocols in [5] (Cachin–Shelat–Shraer): the server maintains one
// globally ordered log of operations, each secured by a hash chain and the
// author's signature, and admits ONE operation at a time. The REPLY to an
// operation is deferred until the previous operation commits, which is
// what makes the protocol blocking — the behavior the paper proves
// unavoidable for fork-linearizability and which USTOR eliminates.

// LSRecord is one entry of the global log.
type LSRecord struct {
	Seq       int64
	Client    int
	Op        OpCode
	Reg       int
	ValueHash []byte // hash of the written value; nil for reads
	ChainHash []byte // hash chain value after appending this record
	Sig       []byte // author's signature over ChainHash
}

// Clone returns a deep copy.
func (r LSRecord) Clone() LSRecord {
	c := r
	c.ValueHash = cloneBytes(r.ValueHash)
	c.ChainHash = cloneBytes(r.ChainHash)
	c.Sig = cloneBytes(r.Sig)
	return c
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// LSSubmit announces an operation to the lock-step server. HaveSeq tells
// the server which log prefix the client already holds.
type LSSubmit struct {
	Op      OpCode
	Reg     int
	Value   []byte // written value; nil for reads
	HaveSeq int64
}

// LSReply delivers the log suffix the client is missing and, for reads,
// the current register value. It is sent only when the operation becomes
// the single active operation (lock-step admission).
type LSReply struct {
	Records []LSRecord
	Value   []byte // register value for reads; nil otherwise/bottom
}

// LSCommit carries the client's own signed record, appended to the log by
// the server, which then admits the next operation.
type LSCommit struct {
	Record LSRecord
}

// MsgKind values continue after the FAUST messages.
const (
	KindLSSubmit Kind = iota + 7
	KindLSReply
	KindLSCommit
)

// MsgKind implementations.
func (*LSSubmit) MsgKind() Kind { return KindLSSubmit }
func (*LSReply) MsgKind() Kind  { return KindLSReply }
func (*LSCommit) MsgKind() Kind { return KindLSCommit }

var (
	_ Message = (*LSSubmit)(nil)
	_ Message = (*LSReply)(nil)
	_ Message = (*LSCommit)(nil)
)

func appendLSRecord(buf []byte, r LSRecord) []byte {
	buf = appendI64(buf, r.Seq)
	buf = appendU32(buf, uint32(r.Client))
	buf = appendU8(buf, uint8(r.Op))
	buf = appendU32(buf, uint32(r.Reg))
	buf = appendBytes(buf, r.ValueHash)
	buf = appendBytes(buf, r.ChainHash)
	return appendBytes(buf, r.Sig)
}

func (r *reader) lsRecord() LSRecord {
	var rec LSRecord
	rec.Seq = r.i64()
	rec.Client = int(r.u32())
	rec.Op = OpCode(r.u8())
	rec.Reg = int(r.u32())
	rec.ValueHash = r.bytes()
	rec.ChainHash = r.bytes()
	rec.Sig = r.bytes()
	return rec
}

func (s *LSSubmit) encodeBody(buf []byte) []byte {
	buf = appendU8(buf, uint8(s.Op))
	buf = appendU32(buf, uint32(s.Reg))
	buf = appendBytes(buf, s.Value)
	return appendI64(buf, s.HaveSeq)
}

func (rp *LSReply) encodeBody(buf []byte) []byte {
	buf = appendU32(buf, uint32(len(rp.Records)))
	for _, rec := range rp.Records {
		buf = appendLSRecord(buf, rec)
	}
	return appendBytes(buf, rp.Value)
}

func (c *LSCommit) encodeBody(buf []byte) []byte {
	return appendLSRecord(buf, c.Record)
}

// ChainPayload is the byte string whose hash extends the lock-step chain
// for a record: seq || client || opcode || reg || valuehash.
func ChainPayload(seq int64, client int, op OpCode, reg int, valueHash []byte) []byte {
	buf := make([]byte, 0, 8+4+1+4+1+len(valueHash))
	buf = appendI64(buf, seq)
	buf = appendU32(buf, uint32(client))
	buf = appendU8(buf, uint8(op))
	buf = appendU32(buf, uint32(reg))
	return appendBytes(buf, valueHash)
}

// decodeLockstep extends Decode for the lock-step kinds; called from
// Decode.
func decodeLockstep(kind Kind, r *reader) Message {
	switch kind {
	case KindLSSubmit:
		s := &LSSubmit{}
		s.Op = OpCode(r.u8())
		s.Reg = int(r.u32())
		s.Value = r.bytes()
		s.HaveSeq = r.i64()
		return s
	case KindLSReply:
		rp := &LSReply{}
		n := r.u32()
		if r.err != nil || n > maxVectorLen {
			r.fail()
			return nil
		}
		rp.Records = make([]LSRecord, n)
		for i := range rp.Records {
			rp.Records[i] = r.lsRecord()
		}
		rp.Value = r.bytes()
		return rp
	case KindLSCommit:
		c := &LSCommit{}
		c.Record = r.lsRecord()
		return c
	default:
		return nil
	}
}
