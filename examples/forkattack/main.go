// Forkattack demonstrates the attack at the heart of the paper and FAUST's
// detection of it (Figure 4's full stack).
//
// A malicious storage server mounts a FORKING ATTACK: it splits the
// clients into two groups and serves each group from an independent copy
// of the state, so each group sees a consistent — but diverging — history.
// No fork-consistent storage protocol can detect this from server messages
// alone (that is exactly what forking semantics permit). FAUST detects it
// anyway through its offline client-to-client exchange: the clients'
// signed versions become incomparable, which is cryptographic proof of
// misbehavior, and every client outputs a fail notification.
//
// Run with:
//
//	go run ./examples/forkattack
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/wire"
)

func main() {
	const n = 4
	ring, signers := crypto.NewTestKeyring(n, 1)

	// The malicious server: clients {0,1} see one world, {2,3} another.
	server, err := byzantine.NewForkingServer(n, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	network := transport.NewNetwork(n, server)
	defer network.Stop()
	hub := offline.NewHub(n)
	defer hub.Stop()

	cfg := faustproto.Config{
		ProbeTimeout: 100 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
	}
	clients := make([]*faustproto.Client, n)
	for i := 0; i < n; i++ {
		i := i
		clients[i] = faustproto.NewClient(i, ring, signers[i],
			network.ClientLink(i), hub.Endpoint(i),
			faustproto.WithConfig(cfg),
			faustproto.WithFailHandler(func(err error) {
				fmt.Printf("  fail_%d: %v\n", i, err)
			}),
		)
		clients[i].Start()
		defer clients[i].Stop()
	}

	fmt.Println("— both groups work; the server forks their views —")
	for i, c := range clients {
		ts, err := c.Write([]byte(fmt.Sprintf("doc-by-%d", i)))
		if err != nil {
			log.Fatalf("client %d write: %v", i, err)
		}
		fmt.Printf("  client %d wrote (timestamp %d) — no error, fork is invisible\n", i, ts)
	}

	// Within a group everything looks perfectly consistent:
	v, _, err := clients[1].Read(0)
	if err != nil {
		log.Fatalf("intra-group read: %v", err)
	}
	fmt.Printf("  client 1 reads client 0's register: %q (group A is coherent)\n", v)

	// ...but across the fork, client 3 sees nothing of client 0:
	v, _, err = clients[3].Read(0)
	if err == nil {
		fmt.Printf("  client 3 reads client 0's register: %q (stale bottom — group B was forked)\n", v)
	}

	fmt.Println("— FAUST's offline exchange kicks in —")
	for i, c := range clients {
		if err := c.WaitFail(10 * time.Second); err != nil {
			log.Fatalf("client %d never detected the fork: %v", i, err)
		}
	}
	fmt.Println("all clients output fail: the server is exposed")

	// The evidence is independently verifiable: two validly signed,
	// incomparable versions.
	for i, c := range clients {
		_, reason := c.Failed()
		var fe *faustproto.ForkError
		if errors.As(reason, &fe) {
			fmt.Printf("  client %d holds evidence:\n    %s\n    %s\n", i, fe.A.Ver, fe.B.Ver)
			report := faustproto.Audit(ring, []wire.SignedVersion{fe.A, fe.B})
			fmt.Printf("  independent audit of the evidence: OK=%v (%s)\n", report.OK, report.Reason)
			break
		}
	}
}
