package kv_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/kv"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// cluster is the standard in-memory fixture: n ustor clients, a shared
// blob store, one kv.Store per client.
type cluster struct {
	net     *transport.Network
	blobs   *transport.MemBlobs
	clients []*ustor.Client
	stores  []*kv.Store
}

func newCluster(t *testing.T, n int, core transport.ServerCore, opts ...kv.Option) *cluster {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 77)
	blobs := transport.NewMemBlobs()
	if core == nil {
		core = ustor.NewServer(n)
	}
	nw := transport.NewNetwork(n, core, transport.WithBlobStore(blobs))
	t.Cleanup(nw.Stop)
	cl := &cluster{net: nw, blobs: blobs}
	for i := 0; i < n; i++ {
		c := ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
		ch, err := nw.BlobChannel()
		if err != nil {
			t.Fatal(err)
		}
		st, err := kv.Open(c, ch, opts...)
		if err != nil {
			t.Fatalf("open store %d: %v", i, err)
		}
		cl.clients = append(cl.clients, c)
		cl.stores = append(cl.stores, st)
	}
	return cl
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	cl := newCluster(t, 2, nil)
	s := cl.stores[0]

	if _, err := s.Get(context.Background(), "missing"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("get missing = %v, want ErrNotFound", err)
	}
	pairs := map[string]string{
		"config":  "a small value",
		"empty":   "",
		"article": "some longer value that still fits one chunk",
	}
	for k, v := range pairs {
		if err := s.Put(context.Background(), k, []byte(v)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	for k, v := range pairs {
		got, err := s.Get(context.Background(), k)
		if err != nil || string(got) != v {
			t.Fatalf("get %q = %q, %v; want %q", k, got, err, v)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "article" || keys[1] != "config" || keys[2] != "empty" {
		t.Fatalf("keys = %v", keys)
	}
	// Overwrite.
	if err := s.Put(context.Background(), "config", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(context.Background(), "config"); string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	// Delete.
	if err := s.Delete(context.Background(), "config"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), "config"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("get deleted = %v, want ErrNotFound", err)
	}
	if err := s.Delete(context.Background(), "config"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	// Key validation.
	if err := s.Put(context.Background(), "", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(context.Background(), string(make([]byte, kv.MaxKeyLen+1)), []byte("x")); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// TestLargeValueChunking: a value far beyond the chunk size splits into
// content-addressed chunks and reassembles byte-identically, locally and
// cross-client.
func TestLargeValueChunking(t *testing.T) {
	const chunkSize = 1 << 10
	cl := newCluster(t, 2, nil, kv.WithChunkSize(chunkSize))
	owner, reader := cl.stores[0], cl.stores[1]

	value := make([]byte, 10*chunkSize+123) // 11 chunks
	for i := range value {
		// Period 251 is coprime with the chunk size, so no two chunks
		// have identical content (which would dedup and skew the count).
		value[i] = byte(i % 251)
	}
	before := owner.Stats()
	if err := owner.Put(context.Background(), "big", value); err != nil {
		t.Fatal(err)
	}
	after := owner.Stats()
	// 11 chunks + 1 directory blob.
	if puts := after.BlobPuts - before.BlobPuts; puts != 12 {
		t.Fatalf("puts = %d, want 12 (11 chunks + directory)", puts)
	}

	got, err := reader.GetFrom(context.Background(), 0, "big")
	if err != nil {
		t.Fatalf("cross-client get: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Fatal("cross-client reassembly corrupted the value")
	}

	// Chunk dedup: re-putting the same value under another key uploads
	// only the directory again.
	before = owner.Stats()
	if err := owner.Put(context.Background(), "big-copy", value); err != nil {
		t.Fatal(err)
	}
	after = owner.Stats()
	if puts := after.BlobPuts - before.BlobPuts; puts != 1 {
		t.Fatalf("dedup failed: %d uploads for identical content, want 1", puts)
	}
}

// TestPutCapacityLimits: a value whose chunk count would exceed the
// directory codec's per-entry bound is refused up front — before a
// single chunk is uploaded — because committing it would brick the
// namespace for every reader.
func TestPutCapacityLimits(t *testing.T) {
	cl := newCluster(t, 1, nil, kv.WithChunkSize(1))
	s := cl.stores[0]
	before := s.Stats()
	err := s.Put(context.Background(), "huge", make([]byte, 1<<16+1)) // 65537 one-byte chunks
	if err == nil || !strings.Contains(err.Error(), "chunks, limit") {
		t.Fatalf("oversized chunk count accepted: %v", err)
	}
	if after := s.Stats(); after.BlobPuts != before.BlobPuts {
		t.Fatalf("doomed put uploaded %d blobs", after.BlobPuts-before.BlobPuts)
	}
	if s.Len() != 0 {
		t.Fatal("failed put left an entry behind")
	}
}

// TestTamperedChunkRejected plants corrupted bytes under a chunk's hash
// in the server's blob store; the reader's digest verification must
// reject the value — acceptance criterion (a), first half.
func TestTamperedChunkRejected(t *testing.T) {
	cl := newCluster(t, 2, nil, kv.WithChunkSize(256))
	owner, reader := cl.stores[0], cl.stores[1]

	value := bytes.Repeat([]byte("sensitive "), 100) // multiple chunks
	if err := owner.Put(context.Background(), "doc", value); err != nil {
		t.Fatal(err)
	}
	// The attacker (the server owns its blob store) swaps the bytes of
	// the second chunk, keeping the hash key.
	secondChunk := value[256:512]
	h := crypto.Hash(secondChunk)
	if err := cl.blobs.PutBlob(h, []byte("tampered bytes of the wrong content")); err != nil {
		t.Fatal(err)
	}
	_, err := reader.GetFrom(context.Background(), 0, "doc")
	if err == nil || !strings.Contains(err.Error(), "tampered chunk") {
		t.Fatalf("tampered chunk not rejected: %v", err)
	}
	// The register client did NOT halt: blob tampering is an integrity
	// error on unauthenticated bulk data, not protocol evidence.
	if failed, _ := cl.clients[1].Failed(); failed {
		t.Fatal("blob tampering must not halt the protocol client")
	}
}

// TestForgedDirectoryRejected covers acceptance criterion (a), second
// half, against the tree encoding: a tree node swapped under its hash
// (content check), a root record naming a hash the blob store cannot
// honestly answer, and a root record whose totals disagree with the tree
// it names (metadata check) — each rejected before any value byte is
// returned.
func TestForgedDirectoryRejected(t *testing.T) {
	cl := newCluster(t, 2, nil)
	owner, reader := cl.stores[0], cl.stores[1]

	if err := owner.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Learn the current directory honestly first.
	if _, err := reader.GetFrom(context.Background(), 0, "k"); err != nil {
		t.Fatal(err)
	}

	// (1) Forged root record: correct counts but a root hash nothing
	// valid lives under. The owner itself writes it (only its signatures
	// validate), modeling a compromised owner binary the reader must
	// still not trust blindly. Planting arbitrary bytes at the forged
	// hash must not help: the node digest check catches the swap.
	honest, err := cl.clients[1].ReadX(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), honest.Value...)
	forged[len(forged)-1] ^= 0xFF // flip a bit of the root hash
	forgedHash := forged[len(forged)-32:]
	if err := cl.blobs.PutBlob(forgedHash, []byte("attacker-chosen bytes")); err != nil {
		t.Fatal(err)
	}
	if err := cl.clients[0].Write(forged); err != nil {
		t.Fatal(err)
	}
	// The WARM reader (nodes cached from the honest read) must reject
	// exactly like a cold one — the forged hash names a different node,
	// so the cache cannot satisfy it.
	_, err = reader.GetFrom(context.Background(), 0, "k")
	if err == nil || !strings.Contains(err.Error(), "tampered tree node") {
		t.Fatalf("warm-cache reader accepted forged root hash: %v", err)
	}
	freshReader := freshStore(t, cl, 1)
	_, err = freshReader.GetFrom(context.Background(), 0, "k")
	if err == nil || !strings.Contains(err.Error(), "tampered tree node") {
		t.Fatalf("forged root hash not rejected: %v", err)
	}

	// (2) Forged metadata: the record names the real, consistent root
	// node but claims the wrong entry count. Warm and cold readers must
	// reject identically — the totals are re-checked on every read.
	miscounted := append([]byte(nil), honest.Value...)
	miscounted[13]++ // NumEntries lives at offset 5(magic)+8(gen)
	if err := cl.clients[0].Write(miscounted); err != nil {
		t.Fatal(err)
	}
	_, err = reader.GetFrom(context.Background(), 0, "k")
	if err == nil || !strings.Contains(err.Error(), "metadata mismatch") {
		t.Fatalf("warm-cache reader accepted forged metadata: %v", err)
	}
	_, err = freshStore(t, cl, 1).GetFrom(context.Background(), 0, "k")
	if err == nil || !strings.Contains(err.Error(), "metadata mismatch") {
		t.Fatalf("forged metadata not rejected: %v", err)
	}

	// Restore a correct root record (and fresh tree nodes).
	if err := owner.Put(context.Background(), "k2", []byte("w")); err != nil {
		t.Fatal(err)
	}

	// (3) Tamper the root tree node under its content hash — the
	// attacker controls the blob store. A fresh reader (empty caches)
	// must reject the swap before returning anything.
	rootHash := rootHashOfRegister(t, cl, 0)
	if err := cl.blobs.PutBlob(rootHash, []byte("not the tree node")); err != nil {
		t.Fatal(err)
	}
	freshReader2 := freshStore(t, cl, 1)
	_, err = freshReader2.GetFrom(context.Background(), 0, "k")
	if err == nil || !strings.Contains(err.Error(), "tampered tree node") {
		t.Fatalf("tampered tree node not rejected: %v", err)
	}
}

// TestForkingServerDetectedThroughKV is acceptance criterion (b): the
// Figure 3 forking attack, mounted while the clients only ever use the
// KV API. The replayed-but-never-committed operation trips the reader's
// PROOF-signature check and the client halts with the usual fail-aware
// error — surfaced by GetFrom.
func TestForkingServerDetectedThroughKV(t *testing.T) {
	const n = 2
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, n, server)
	owner, reader := cl.stores[0], cl.stores[1]

	// The attacker makes the owner's hidden operations selectively
	// visible in the reader's branch by replaying the captured SUBMITs
	// (never the COMMITs) — the Figure 3 mechanism. The first replayed
	// operation passes the reader's checks (the attack is momentarily
	// invisible: weak fork-linearizability permits it)...
	if err := server.Replay(0, 0, 1); err != nil { // owner's bootstrap read
		t.Fatal(err)
	}
	if _, err := reader.GetFrom(context.Background(), 0, "k"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("pre-detection read = %v, want ErrNotFound (empty namespace, no failure)", err)
	}
	if failed, reason := cl.clients[1].Failed(); failed {
		t.Fatalf("premature detection: %v", reason)
	}

	// ...but once the reader has the owner in its digest chain, the next
	// replayed-but-never-committed operation has no PROOF-signature in
	// this branch, and detection fires through the KV read.
	if err := owner.Put(context.Background(), "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := server.Replay(0, server.CapturedOps(0)-1, 1); err != nil {
		t.Fatal(err)
	}
	_, err = reader.GetFrom(context.Background(), 0, "k")
	var det *ustor.DetectionError
	if !errors.As(err, &det) {
		t.Fatalf("forking server not detected through KV API: %v", err)
	}
	if failed, reason := cl.clients[1].Failed(); !failed {
		t.Fatalf("client did not halt (reason=%v)", reason)
	}
	// Every subsequent KV operation fails: the client halted.
	if _, err := reader.GetFrom(context.Background(), 0, "k"); !errors.Is(err, ustor.ErrHalted) {
		t.Fatalf("post-detection read = %v, want ErrHalted", err)
	}
}

// TestValidatingCache is acceptance criterion (c): repeat reads are
// served from the cache — GetFrom without bulk transfers, CachedGetFrom
// without any server round trip — and the cache invalidates when the
// client's observed version of the owner's register changes.
func TestValidatingCache(t *testing.T) {
	cl := newCluster(t, 2, nil)
	owner, reader := cl.stores[0], cl.stores[1]

	if err := owner.Put(context.Background(), "hot", []byte("value-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.GetFrom(context.Background(), 0, "hot"); err != nil {
		t.Fatal(err)
	}

	// Repeat GetFrom: register round trip only, zero blob traffic
	// (directory unchanged, chunks cached).
	before := reader.Stats()
	if v, err := reader.GetFrom(context.Background(), 0, "hot"); err != nil || string(v) != "value-1" {
		t.Fatalf("repeat GetFrom = %q, %v", v, err)
	}
	after := reader.Stats()
	if after.BlobGets != before.BlobGets {
		t.Fatalf("repeat GetFrom fetched %d blobs, want 0", after.BlobGets-before.BlobGets)
	}
	if after.RegisterReads != before.RegisterReads+1 {
		t.Fatalf("repeat GetFrom made %d register reads, want 1", after.RegisterReads-before.RegisterReads)
	}

	// CachedGetFrom: no server round trip at all.
	before = reader.Stats()
	if v, err := reader.CachedGetFrom(context.Background(), 0, "hot"); err != nil || string(v) != "value-1" {
		t.Fatalf("CachedGetFrom = %q, %v", v, err)
	}
	after = reader.Stats()
	if after.RegisterReads != before.RegisterReads || after.BlobGets != before.BlobGets {
		t.Fatalf("CachedGetFrom hit the server: %+v -> %+v", before, after)
	}
	if after.ValueCacheHits != before.ValueCacheHits+1 {
		t.Fatal("CachedGetFrom did not count a cache hit")
	}

	// Invalidation: the owner writes; the reader observes the version
	// change through a fresh read of ANOTHER key; the cached entry for
	// "hot" is then stale and CachedGetFrom refetches the new value.
	if err := owner.Put(context.Background(), "other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := owner.Put(context.Background(), "hot", []byte("value-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.GetFrom(context.Background(), 0, "other"); err != nil {
		t.Fatal(err) // advances the reader's observed version of owner
	}
	v, err := reader.CachedGetFrom(context.Background(), 0, "hot")
	if err != nil || string(v) != "value-2" {
		t.Fatalf("post-invalidation CachedGetFrom = %q, %v; want value-2", v, err)
	}
}

// TestEmptyNamespaceBootstrap: reading a namespace whose owner never
// wrote anything — the satellite-defined nil register semantics — yields
// ErrNotFound / empty listings, not errors.
func TestEmptyNamespaceBootstrap(t *testing.T) {
	cl := newCluster(t, 2, nil)
	reader := cl.stores[1]
	if _, err := reader.GetFrom(context.Background(), 0, "anything"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("get from empty namespace = %v, want ErrNotFound", err)
	}
	keys, err := reader.ListFrom(context.Background(), 0)
	if err != nil || len(keys) != 0 {
		t.Fatalf("list of empty namespace = %v, %v", keys, err)
	}
}

// TestReopenResumesNamespace: a second kv.Open over the same register
// client recovers the directory from the root record + blob store (the
// in-process resume path; cross-restart recovery is covered by the shard
// integration test).
func TestReopenResumesNamespace(t *testing.T) {
	cl := newCluster(t, 1, nil)
	s := cl.stores[0]
	if err := s.Put(context.Background(), "persisted", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	reopened := freshStore(t, cl, 0)
	if got, err := reopened.Get(context.Background(), "persisted"); err != nil || string(got) != "survives" {
		t.Fatalf("reopened get = %q, %v", got, err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened len = %d", reopened.Len())
	}
}

func TestListFrom(t *testing.T) {
	cl := newCluster(t, 2, nil)
	owner, reader := cl.stores[0], cl.stores[1]
	for _, k := range []string{"b", "a", "c"} {
		if err := owner.Put(context.Background(), k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := reader.ListFrom(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[a b c]" {
		t.Fatalf("ListFrom = %v", keys)
	}
}

// freshStore opens a new kv.Store over cluster client i's existing
// register client (empty caches, state recovered from the root record).
func freshStore(t *testing.T, cl *cluster, i int) *kv.Store {
	t.Helper()
	ch, err := cl.net.BlobChannel()
	if err != nil {
		t.Fatal(err)
	}
	st, err := kv.Open(cl.clients[i], ch)
	if err != nil {
		t.Fatalf("fresh store: %v", err)
	}
	return st
}

// rootHashOfRegister extracts the tree root hash from client j's current
// root record (read via reader client 1).
func rootHashOfRegister(t *testing.T, cl *cluster, j int) []byte {
	t.Helper()
	res, err := cl.clients[1].ReadX(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	// Root record layout: magic(5) gen(8) entries(4) bytes(8) height(4) roothash(32).
	if len(res.Value) != 5+8+4+8+4+32 {
		t.Fatalf("unexpected root record size %d", len(res.Value))
	}
	return res.Value[29:61]
}
