package wire

// Bulk blob channel messages.
//
// The KV layer (package kv) stores large values as content-addressed
// chunks. Chunks do not travel through the USTOR request path — a SUBMIT
// carries at most one register value and every message on that path is
// serialized through the shard's dispatcher — but over a dedicated bulk
// channel with its own four messages:
//
//	BLOB_PUT   uploads one blob under its content hash.
//	BLOB_ACK   acknowledges a BLOB_PUT (or reports the store's error).
//	BLOB_GET   requests the blob stored under a hash.
//	BLOB_DATA  answers a BLOB_GET; Found is false for unknown hashes.
//
// The channel carries NO authentication on purpose: blobs are
// content-addressed, so the reader recomputes the hash of every byte it
// receives and rejects mismatches — a lying server is caught exactly like
// a lying register reply, just by hashing instead of signature checks.
// Integrity of the hash itself comes from the KV directory tree, whose
// root hash is committed through the fail-aware register.
//
// Every blob message carries a request ID chosen by the client. The
// server echoes the ID of the request into its response (BLOB_ACK and
// BLOB_DATA), which lets a client keep many requests in flight on one
// connection and match responses as they arrive — the pipelining the KV
// layer's parallel chunk and tree-node fetches rely on. IDs only need to
// be unique among a connection's in-flight requests; a simple counter
// suffices.

// Blob message kinds, continuing after the lock-step baseline's kinds.
const (
	KindBlobPut Kind = iota + 10
	KindBlobAck
	KindBlobGet
	KindBlobData
)

// BlobPut uploads Data under its content hash. The server stores the
// bytes verbatim; it verifies nothing (it is the untrusted party).
// Trace optionally carries the requesting operation's tracing context
// so the server-side store work (blobfleet failover, retries) joins the
// client's trace; like everything on this channel it is unauthenticated
// advisory metadata.
type BlobPut struct {
	ID    uint32
	Hash  []byte
	Data  []byte
	Trace *TraceCtx
}

// BlobAck acknowledges a BlobPut, echoing its request ID. OK is false
// when the store failed, with the reason in Msg. Trace echoes the
// request's trace context.
type BlobAck struct {
	ID    uint32
	Hash  []byte
	OK    bool
	Msg   string
	Trace *TraceCtx
}

// BlobGet requests the blob stored under Hash. Trace as on BlobPut.
type BlobGet struct {
	ID    uint32
	Hash  []byte
	Trace *TraceCtx
}

// BlobData answers a BlobGet, echoing its request ID. Found is false
// (and Data nil) when no blob is stored under the hash. Trace echoes
// the request's trace context.
type BlobData struct {
	ID    uint32
	Hash  []byte
	Found bool
	Data  []byte
	Trace *TraceCtx
}

// MsgKind implementations.
func (*BlobPut) MsgKind() Kind  { return KindBlobPut }
func (*BlobAck) MsgKind() Kind  { return KindBlobAck }
func (*BlobGet) MsgKind() Kind  { return KindBlobGet }
func (*BlobData) MsgKind() Kind { return KindBlobData }

// Interface compliance checks.
var (
	_ Message = (*BlobPut)(nil)
	_ Message = (*BlobAck)(nil)
	_ Message = (*BlobGet)(nil)
	_ Message = (*BlobData)(nil)
)

func (b *BlobPut) encodeBody(buf []byte) []byte {
	buf = appendU32(buf, b.ID)
	buf = appendBytes(buf, b.Hash)
	buf = appendBytes(buf, b.Data)
	return appendTraceCtx(buf, b.Trace)
}

func (b *BlobAck) encodeBody(buf []byte) []byte {
	buf = appendU32(buf, b.ID)
	buf = appendBytes(buf, b.Hash)
	buf = appendBool(buf, b.OK)
	buf = appendString(buf, b.Msg)
	return appendTraceCtx(buf, b.Trace)
}

func (b *BlobGet) encodeBody(buf []byte) []byte {
	buf = appendU32(buf, b.ID)
	buf = appendBytes(buf, b.Hash)
	return appendTraceCtx(buf, b.Trace)
}

func (b *BlobData) encodeBody(buf []byte) []byte {
	buf = appendU32(buf, b.ID)
	buf = appendBytes(buf, b.Hash)
	buf = appendBool(buf, b.Found)
	buf = appendBytes(buf, b.Data)
	return appendTraceCtx(buf, b.Trace)
}

// decodeBlob parses the body of a blob-channel message. It returns nil
// for kinds it does not own; the reader carries any codec error.
func decodeBlob(kind Kind, r *reader) Message {
	switch kind {
	case KindBlobPut:
		b := &BlobPut{}
		b.ID = r.u32()
		b.Hash = r.bytes()
		b.Data = r.bytes()
		b.Trace = r.traceCtx()
		return b
	case KindBlobAck:
		b := &BlobAck{}
		b.ID = r.u32()
		b.Hash = r.bytes()
		b.OK = r.bool()
		b.Msg = r.str()
		b.Trace = r.traceCtx()
		return b
	case KindBlobGet:
		b := &BlobGet{}
		b.ID = r.u32()
		b.Hash = r.bytes()
		b.Trace = r.traceCtx()
		return b
	case KindBlobData:
		b := &BlobData{}
		b.ID = r.u32()
		b.Hash = r.bytes()
		b.Found = r.bool()
		b.Data = r.bytes()
		b.Trace = r.traceCtx()
		return b
	default:
		return nil
	}
}
