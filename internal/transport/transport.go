// Package transport provides the communication substrate of the model in
// Section 2 of the paper: asynchronous reliable FIFO channels between each
// client and the server.
//
// Two implementations share one interface: an in-memory network used by
// tests, simulations and benchmarks (optionally with randomized
// per-message delays to exercise asynchrony), and a TCP transport used by
// the cmd/ tools. Both preserve per-link FIFO order and never drop
// messages while open; that is exactly the reliability the protocol
// assumes.
package transport

import (
	"context"
	"errors"
	"sync"
	"time"

	"faust/internal/wire"
)

// ErrClosed is returned by link operations after the link has been closed.
var ErrClosed = errors.New("transport: link closed")

// Link is one endpoint of a reliable FIFO duplex channel between a client
// and the server. Send never blocks (channels are unbounded, matching the
// asynchronous model); Recv blocks until a message arrives or the link
// closes.
type Link interface {
	Send(m wire.Message) error
	Recv() (wire.Message, error)
	Close() error
}

// ServerCore is the pure state machine of a storage server. The network
// delivers each arriving message to exactly one handler call; calls are
// serialized, matching the paper's atomic event handlers ("the server
// processes arriving SUBMIT messages in FIFO order, and the execution of
// each event handler is atomic").
//
// HandleSubmit returns the REPLY to send back to the submitting client.
// A nil reply means the server sends nothing (only Byzantine servers do
// that; a correct server always replies, which is what makes the protocol
// wait-free).
//
// The context carries the operation's tracing context (when the SUBMIT
// arrived with one) so wrapping cores — the durable store, the USTOR
// state machine — can attach their stages to the request's trace. Cores
// must not use it for cancellation: the protocol's atomic handlers run
// to completion.
type ServerCore interface {
	HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply
	HandleCommit(ctx context.Context, from int, c *wire.Commit)
}

// GenericCore is an optional extension of ServerCore for protocols whose
// servers push messages to arbitrary clients at arbitrary times — the
// lock-step baseline defers its replies until the previous operation
// commits, so a plain request-reply core does not fit it.
//
// When the core implements GenericCore, the network calls AttachPusher
// once before dispatch starts, and routes every message that is neither a
// SUBMIT nor a COMMIT to HandleMessage (still serialized with all other
// handler calls).
type GenericCore interface {
	HandleMessage(from int, m wire.Message)
	AttachPusher(push func(to int, m wire.Message) error)
}

// queue is an unbounded FIFO of messages with blocking Pop.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []wire.Message
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(m wire.Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, m)
	q.cond.Signal()
	return nil
}

// pushAll appends a batch of messages atomically — one lock round and
// one wake-up for a whole batch of coalesced replies.
func (q *queue) pushAll(ms []wire.Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, ms...)
	q.cond.Broadcast()
	return nil
}

// pop blocks until an item is available or the queue closes. Items
// already queued at close time are still delivered (reliable channel).
func (q *queue) pop() (wire.Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, ErrClosed
	}
	m := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return m, nil
}

func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// envelope tags a message with its sender and destination for a server
// inbox. sink is the transport-specific runtime (a TCP shard, the
// in-memory network) the batched dispatcher applies the message against —
// one inbox may serve several sinks under a shared dispatcher. enq is
// the enqueue stamp for the dispatcher queue-wait span; it is zero when
// tracing is off so the disabled path never reads the clock.
type envelope struct {
	sink batchSink
	from int
	msg  wire.Message
	enq  time.Time
}

// fifo is an unbounded FIFO with blocking pop, shared by the in-memory
// network's envelope inbox and the TCP server's per-shard inboxes. push
// returns false once the queue is closed; pop blocks until an item is
// available or the queue closes (items queued before close are still
// delivered — reliable channel).
type fifo[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

func newFIFO[T any]() *fifo[T] {
	q := &fifo[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fifo[T]) push(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, v)
	q.cond.Signal()
	return true
}

func (q *fifo[T]) pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// popBatch blocks like pop, then drains up to max queued items (all of
// them when max <= 0) into buf and returns the extended slice. Items
// queued before close are still delivered — the drain path after close
// behaves exactly like the live path, batching included. The second
// return is false only when the queue is closed AND empty.
//
//faustlint:hotpath
func (q *fifo[T]) popBatch(max int, buf []T) ([]T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	n := len(q.items)
	if n == 0 {
		return buf, false
	}
	if max > 0 && n > max {
		n = max
	}
	buf = append(buf, q.items[:n]...)
	var zero T
	for i := 0; i < n; i++ {
		q.items[i] = zero
	}
	q.items = q.items[n:]
	return buf, true
}

func (q *fifo[T]) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Stats aggregates message counts and encoded sizes per direction. It is
// populated only when the network is created with metrics enabled.
type Stats struct {
	ClientToServerMsgs  int64
	ClientToServerBytes int64
	ServerToClientMsgs  int64
	ServerToClientBytes int64
}

// RoundsPerOp returns the average number of client->server->client message
// rounds per operation, assuming every operation sends SUBMIT + COMMIT and
// receives one REPLY. It exists for the E5 experiment.
func (s Stats) RoundsPerOp(ops int) float64 {
	if ops == 0 {
		return 0
	}
	return float64(s.ServerToClientMsgs) / float64(ops)
}
