// Package consistency implements checkers for every consistency notion the
// paper builds on or introduces: the sequential specification of SWMR
// registers, linearizability (Definition 2), causal consistency
// (Definition 3), fork-linearizability, fork-*-linearizability, and the
// paper's new weak fork-linearizability (Definition 6).
//
// Histories are assumed to use unique written values (the paper makes the
// same assumption in Section 2), which makes the reads-from relation
// unambiguous and enables polynomial linearizability checking for SWMR
// registers. The fork-family checkers perform a bounded exhaustive search
// over per-client views and are intended for the small separation
// histories the paper discusses (e.g. Figure 3), cross-validated against
// protocol-level auditing for large executions.
package consistency

import (
	"bytes"
	"fmt"

	"faust/internal/history"
)

// Result reports the outcome of a consistency check with a human-readable
// explanation for failures.
type Result struct {
	OK     bool
	Reason string
}

// ok is the successful result.
var ok = Result{OK: true}

func fail(format string, args ...any) Result {
	return Result{Reason: fmt.Sprintf(format, args...)}
}

// valueEqual compares register values, distinguishing bottom (nil) from an
// empty but present value.
func valueEqual(a, b []byte) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return bytes.Equal(a, b)
}

// CheckSequential verifies that a sequence of operations satisfies the
// sequential specification of n SWMR registers: every read of X_j returns
// the value of the most recent preceding write to X_j, or bottom if there
// is none, and only client j writes X_j.
func CheckSequential(ops []history.Op) Result {
	state := make(map[int][]byte)
	for idx, o := range ops {
		switch o.Kind {
		case history.OpWrite:
			if o.Reg != o.Client {
				return fail("op %d (%s): client %d writes register %d (SWMR violation)",
					idx, o, o.Client, o.Reg)
			}
			state[o.Reg] = o.Value
		case history.OpRead:
			want := state[o.Reg]
			if !valueEqual(o.Value, want) {
				return fail("op %d (%s): read returns %q, register holds %q",
					idx, o, o.Value, want)
			}
		default:
			return fail("op %d: invalid kind %v", idx, o.Kind)
		}
	}
	return ok
}

// readsFrom resolves the reads-from relation of a history with unique
// written values: it maps each complete read's op ID to the op ID of the
// write it returns, or -1 for bottom reads. The error is non-nil when a
// read returns a value no write produced, which no consistency notion in
// this package tolerates.
func readsFrom(h history.History) (map[int]int, error) {
	writesByValue := make(map[string]history.Op)
	for _, o := range h.Ops {
		if o.Kind != history.OpWrite {
			continue
		}
		key := fmt.Sprintf("%d/%s", o.Reg, o.Value)
		if prev, dup := writesByValue[key]; dup {
			return nil, fmt.Errorf("consistency: duplicate written value: %s and %s", prev, o)
		}
		writesByValue[key] = o
	}
	rf := make(map[int]int)
	for _, o := range h.Ops {
		if o.Kind != history.OpRead || !o.IsComplete() {
			continue
		}
		if o.Value == nil {
			rf[o.ID] = -1
			continue
		}
		w, found := writesByValue[fmt.Sprintf("%d/%s", o.Reg, o.Value)]
		if !found {
			return nil, fmt.Errorf("consistency: read %s returns a value never written", o)
		}
		rf[o.ID] = w.ID
	}
	return rf, nil
}

// registerWriteOrder returns, per register, the op IDs of its writes in
// the writer's program order, and a map from write ID to its 1-based
// position (0 denotes the initial bottom value).
func registerWriteOrder(h history.History) (map[int][]int, map[int]int) {
	perReg := make(map[int][]int)
	pos := make(map[int]int)
	for r := 0; r < h.N; r++ {
		for _, o := range h.ByClient(r) {
			if o.Kind == history.OpWrite && o.Reg == r {
				perReg[r] = append(perReg[r], o.ID)
				pos[o.ID] = len(perReg[r])
			}
		}
	}
	return perReg, pos
}
