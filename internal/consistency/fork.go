package consistency

import (
	"faust/internal/history"
)

// The fork-family checkers decide, by bounded exhaustive search, whether a
// history admits per-client views satisfying one of the forking
// consistency notions:
//
//   - fork-linearizability (Mazières–Shasha): views preserve real-time
//     order and satisfy the *no-join* property — any operation common to
//     two views has identical prefixes in both.
//   - fork-*-linearizability (Li–Mazières, adapted): views preserve
//     real-time order; joins are limited per client (*at-most-one-join*):
//     for two common operations of the same client, the prefix up to the
//     earlier one must agree. Causal consistency is NOT required.
//   - weak fork-linearizability (Definition 6, this paper): views preserve
//     only the *weak* real-time order (the positionally last operation of
//     each client inside a view is exempt), must be causally closed and
//     causality-ordered, and satisfy at-most-one-join.
//
// The search is exponential; callers bound it with maxOps. It is meant
// for the separation examples of Section 4 (e.g. Figure 3, three
// operations) and for property tests on random small histories.

// forkSpec selects the notion to check.
type forkSpec struct {
	name          string
	weakRealTime  bool
	requireCausal bool
	noJoin        bool
}

// searchLimits bound the view enumeration.
const (
	maxViewsPerClient = 100000
	maxSearchNodes    = 4000000
)

// CheckForkLinearizable decides fork-linearizability.
func CheckForkLinearizable(h history.History, maxOps int) Result {
	return checkFork(h, forkSpec{name: "fork-linearizability", noJoin: true}, maxOps)
}

// CheckForkStarLinearizable decides fork-*-linearizability (adapted to
// this model as in Section 4 of the paper).
func CheckForkStarLinearizable(h history.History, maxOps int) Result {
	return checkFork(h, forkSpec{name: "fork-*-linearizability"}, maxOps)
}

// CheckWeakForkLinearizable decides weak fork-linearizability
// (Definition 6).
func CheckWeakForkLinearizable(h history.History, maxOps int) Result {
	return checkFork(h, forkSpec{
		name:          "weak fork-linearizability",
		weakRealTime:  true,
		requireCausal: true,
	}, maxOps)
}

// viewCand is one candidate view: a sequence of op IDs with a position
// index.
type viewCand struct {
	seq []int
	pos map[int]int
}

func checkFork(h history.History, spec forkSpec, maxOps int) Result {
	complete := h.Complete()
	if len(complete.Ops) > maxOps {
		return fail("%s: history too large for exhaustive search: %d > %d ops",
			spec.name, len(complete.Ops), maxOps)
	}
	rf, err := readsFrom(h)
	if err != nil {
		return fail("%s: %v", spec.name, err)
	}
	co := newCausalOrder(h, rf)

	// Candidate pool: complete operations plus pending writes (a pending
	// write may have taken effect; the view's extension sigma' may
	// complete it).
	var pool []history.Op
	for _, o := range h.Ops {
		if o.IsComplete() || o.Kind == history.OpWrite {
			pool = append(pool, o)
		}
	}
	byID := make(map[int]history.Op, len(pool))
	for _, o := range pool {
		byID[o.ID] = o
	}

	gen := &viewGenerator{h: h, spec: spec, co: co, pool: pool, byID: byID}
	views := make([][]viewCand, h.N)
	for c := 0; c < h.N; c++ {
		cands, err := gen.generate(c)
		if err != nil {
			return fail("%s: %v", spec.name, err)
		}
		if len(cands) == 0 {
			return fail("%s: no valid view exists for client %d", spec.name, c)
		}
		views[c] = cands
	}

	// Joint selection: one view per client, pairwise join conditions.
	assigned := make([]*viewCand, h.N)
	var pick func(c int) bool
	pick = func(c int) bool {
		if c == h.N {
			return true
		}
		for idx := range views[c] {
			cand := &views[c][idx]
			pairOK := true
			for prev := 0; prev < c; prev++ {
				if !joinOK(spec, assigned[prev], cand, byID) {
					pairOK = false
					break
				}
			}
			if !pairOK {
				continue
			}
			assigned[c] = cand
			if pick(c + 1) {
				return true
			}
			assigned[c] = nil
		}
		return false
	}
	if !pick(0) {
		return fail("%s: no compatible combination of views exists", spec.name)
	}
	return ok
}

// viewGenerator enumerates candidate views for one client.
type viewGenerator struct {
	h     history.History
	spec  forkSpec
	co    *causalOrder
	pool  []history.Op
	byID  map[int]history.Op
	nodes int
}

func (g *viewGenerator) generate(client int) ([]viewCand, error) {
	// Required: every complete operation of the client.
	required := make(map[int]bool)
	var clientOps []history.Op // the client's complete ops in program order
	for _, o := range g.h.Complete().Ops {
		if o.Client == client {
			required[o.ID] = true
		}
	}
	clientOps = g.h.Complete().ByClient(client)

	var out []viewCand
	used := make(map[int]bool, len(g.pool))
	state := make(map[int][]byte)
	var seq []int
	var nextOwn int // index into clientOps of the next own op to place

	emit := func() error {
		if nextOwn != len(clientOps) {
			return nil // not all own ops placed yet
		}
		cand := viewCand{
			seq: append([]int(nil), seq...),
			pos: make(map[int]int, len(seq)),
		}
		for i, id := range cand.seq {
			cand.pos[id] = i
		}
		if !g.viewConditionsHold(client, cand) {
			return nil
		}
		out = append(out, cand)
		if len(out) > maxViewsPerClient {
			return errTooManyViews
		}
		return nil
	}

	var rec func() error
	rec = func() error {
		g.nodes++
		if g.nodes > maxSearchNodes {
			return errSearchTooLarge
		}
		if err := emit(); err != nil {
			return err
		}
		for _, o := range g.pool {
			if used[o.ID] {
				continue
			}
			// The client's own operations appear in program order and
			// completely (view condition 2 of Definition 1).
			if o.Client == client {
				if o.IsComplete() {
					if nextOwn >= len(clientOps) || clientOps[nextOwn].ID != o.ID {
						continue
					}
				} else if nextOwn != len(clientOps) {
					// The client's own pending op can only follow all its
					// complete ops.
					continue
				}
			}
			// Spec pruning.
			var saved []byte
			var hadKey bool
			if o.Kind == history.OpRead {
				if !valueEqual(state[o.Reg], o.Value) {
					continue
				}
			} else {
				saved, hadKey = state[o.Reg]
				state[o.Reg] = o.Value
			}
			// Real-time pruning for full real-time notions: placing o
			// after an already placed op it really precedes is fatal.
			if !g.spec.weakRealTime {
				bad := false
				for _, placedID := range seq {
					if o.Precedes(g.byID[placedID]) {
						bad = true
						break
					}
				}
				if bad {
					if o.Kind == history.OpWrite {
						if hadKey {
							state[o.Reg] = saved
						} else {
							delete(state, o.Reg)
						}
					}
					continue
				}
			}

			used[o.ID] = true
			seq = append(seq, o.ID)
			wasOwn := o.Client == client && o.IsComplete()
			if wasOwn {
				nextOwn++
			}
			if err := rec(); err != nil {
				return err
			}
			if wasOwn {
				nextOwn--
			}
			seq = seq[:len(seq)-1]
			used[o.ID] = false
			if o.Kind == history.OpWrite {
				if hadKey {
					state[o.Reg] = saved
				} else {
					delete(state, o.Reg)
				}
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return out, nil
}

// viewConditionsHold applies the per-view conditions that can only be
// checked on a complete candidate: (weak) real-time order and, when
// required, causal closure and causal ordering.
func (g *viewGenerator) viewConditionsHold(client int, cand viewCand) bool {
	ops := make([]history.Op, len(cand.seq))
	for i, id := range cand.seq {
		ops[i] = g.byID[id]
	}
	// lastops(pi): the positionally last op of each client present.
	last := make(map[int]bool)
	if g.spec.weakRealTime {
		lastPerClient := make(map[int]int)
		for i, o := range ops {
			lastPerClient[o.Client] = i
		}
		for _, idx := range lastPerClient {
			last[cand.seq[idx]] = true
		}
	}
	// Real-time order: for each ordered pair (a after b in view) with
	// a really-preceding b, fail — unless one of them is exempt under the
	// weak order.
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			if ops[j].Precedes(ops[i]) {
				if g.spec.weakRealTime && (last[ops[i].ID] || last[ops[j].ID]) {
					continue
				}
				return false
			}
		}
	}
	if g.spec.requireCausal {
		// Definition 6 condition 3: every update of sigma causally
		// preceding an op of the view is in the view, before it.
		for _, o := range ops {
			for _, u := range g.h.Ops {
				if u.Kind != history.OpWrite {
					continue
				}
				if !g.co.precedes(u.ID, o.ID) {
					continue
				}
				upos, in := cand.pos[u.ID]
				if !in || upos >= cand.pos[o.ID] {
					return false
				}
			}
		}
	}
	return true
}

// joinOK verifies the pairwise join condition between two views.
func joinOK(spec forkSpec, a, b *viewCand, byID map[int]history.Op) bool {
	if spec.noJoin {
		// Fork-linearizability: every common op has identical prefixes.
		for _, id := range a.seq {
			if _, in := b.pos[id]; in {
				if !prefixEqual(a, b, id) {
					return false
				}
			}
		}
		return true
	}
	// At-most-one-join: for two common ops of the same client where one
	// really precedes the other, the prefix up to the earlier must agree.
	for _, id1 := range a.seq {
		if _, in := b.pos[id1]; !in {
			continue
		}
		for _, id2 := range a.seq {
			if id1 == id2 {
				continue
			}
			if _, in := b.pos[id2]; !in {
				continue
			}
			o1, o2 := byID[id1], byID[id2]
			if o1.Client == o2.Client && o1.Precedes(o2) {
				if !prefixEqual(a, b, id1) {
					return false
				}
			}
		}
	}
	return true
}

func prefixEqual(a, b *viewCand, id int) bool {
	pa, pb := a.pos[id], b.pos[id]
	if pa != pb {
		return false
	}
	for i := 0; i <= pa; i++ {
		if a.seq[i] != b.seq[i] {
			return false
		}
	}
	return true
}

// Sentinel errors of the bounded search.
var (
	errTooManyViews   = searchError("too many candidate views; raise maxOps limits or shrink the history")
	errSearchTooLarge = searchError("view search exceeded the node budget")
)

type searchError string

func (e searchError) Error() string { return string(e) }
