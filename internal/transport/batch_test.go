package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/obs/trace"
	"faust/internal/wire"
)

// recCore is a recording ServerCore with an optional gate: when armed,
// the FIRST HandleSubmit blocks until the gate closes, signaling entry
// via entered. Tests use the gate to park the dispatcher inside a
// handler while they queue more messages, forcing the next drain to
// form a batch of known content — batching becomes deterministic
// instead of a race against the dispatcher.
type recCore struct {
	mu      sync.Mutex
	entered chan struct{}
	gate    chan struct{}
	gated   bool
	applied [][2]int // {from, T} per applied SUBMIT, arrival order
	commits int
}

func (c *recCore) arm() {
	c.entered = make(chan struct{})
	c.gate = make(chan struct{})
}

func (c *recCore) HandleSubmit(_ context.Context, from int, s *wire.Submit) *wire.Reply {
	c.mu.Lock()
	block := c.gate != nil && !c.gated
	if block {
		c.gated = true
		close(c.entered)
	}
	c.mu.Unlock()
	if block {
		<-c.gate
	}
	c.mu.Lock()
	c.applied = append(c.applied, [2]int{from, int(s.T)})
	c.mu.Unlock()
	return &wire.Reply{C: int(s.T), CVer: wire.ZeroSignedVersion(1), P: [][]byte{nil}}
}

func (c *recCore) HandleCommit(_ context.Context, from int, m *wire.Commit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commits++
}

func (c *recCore) appliedOps() [][2]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][2]int(nil), c.applied...)
}

// batchRecCore extends recCore into a BatchCore test double, counting
// buffered applies and flushes.
type batchRecCore struct {
	recCore
	buffered int
	flushes  int
	flushErr error
}

var _ BatchCore = (*batchRecCore)(nil)

func (c *batchRecCore) HandleSubmitBuffered(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	c.mu.Lock()
	c.buffered++
	c.mu.Unlock()
	return c.HandleSubmit(ctx, from, s)
}

func (c *batchRecCore) FlushBatch() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushes++
	return c.flushErr
}

// genCore extends recCore with GenericCore: every generic message is
// answered by pushing a PROBE back to its sender.
type genCore struct {
	recCore
	push func(to int, m wire.Message) error
}

func (c *genCore) HandleMessage(from int, m wire.Message) {
	_ = c.push(from, &wire.Probe{From: from})
}

func (c *genCore) AttachPusher(p func(to int, m wire.Message) error) { c.push = p }

// signedSubmit builds a SUBMIT correctly signed by s, claiming identity
// `from`.
func signedSubmit(s *crypto.Signer, from int, t int64) *wire.Submit {
	sub := &wire.Submit{T: t, Inv: wire.Invocation{Client: from, Op: wire.OpWrite, Reg: from}}
	sub.Inv.SubmitSig = s.Sign(crypto.DomainSubmit, wire.SubmitPayload(sub.Inv.Op, sub.Inv.Reg, t, nil))
	return sub
}

func mustRecvReply(t *testing.T, link Link, wantC int) {
	t.Helper()
	m, err := link.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	r, ok := m.(*wire.Reply)
	if !ok {
		t.Fatalf("got %T, want *wire.Reply", m)
	}
	if r.C != wantC {
		t.Fatalf("reply.C = %d, want %d", r.C, wantC)
	}
}

// TestMemoryBatchGroupApply parks the dispatcher in the first op's
// handler, queues nine more, and requires the release to drain them as
// ONE batch: nine buffered applies, one flush, replies in FIFO order.
func TestMemoryBatchGroupApply(t *testing.T) {
	core := &batchRecCore{}
	core.arm()
	nw := NewNetwork(1, core)
	defer nw.Stop()
	link := nw.ClientLink(0)

	if err := link.Send(&wire.Submit{T: 0}); err != nil {
		t.Fatal(err)
	}
	<-core.entered
	for i := 1; i <= 9; i++ {
		if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(core.gate)

	for i := 0; i <= 9; i++ {
		mustRecvReply(t, link, i)
	}

	core.mu.Lock()
	defer core.mu.Unlock()
	if core.buffered != 9 {
		t.Fatalf("buffered applies = %d, want 9 (one batch)", core.buffered)
	}
	if core.flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (amortized)", core.flushes)
	}
	for i, op := range core.applied {
		if op[1] != i {
			t.Fatalf("applied[%d] = T%d, want T%d (arrival order)", i, op[1], i)
		}
	}
}

// TestBatchRespectsMaxBatchCap queues far more ops than the cap and
// requires no drain to exceed it.
func TestBatchRespectsMaxBatchCap(t *testing.T) {
	core := &batchRecCore{}
	core.arm()
	nw := NewNetwork(1, core, WithMaxBatch(4))
	defer nw.Stop()
	link := nw.ClientLink(0)

	if err := link.Send(&wire.Submit{T: 0}); err != nil {
		t.Fatal(err)
	}
	<-core.entered
	for i := 1; i <= 20; i++ {
		if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(core.gate)
	for i := 0; i <= 20; i++ {
		mustRecvReply(t, link, i)
	}
	core.mu.Lock()
	defer core.mu.Unlock()
	// 20 queued ops at cap 4 need at least ceil(20/4) = 5 flushes; under
	// the cap they could never have been fewer.
	if core.flushes < 5 {
		t.Fatalf("flushes = %d for 20 buffered ops at cap 4, want >= 5", core.flushes)
	}
}

// TestBatchFlushFailureSuppressesReplies: when FlushBatch fails, every
// reply of that batch must be withheld — clients may never observe an
// operation whose durability point was not reached.
func TestBatchFlushFailureSuppressesReplies(t *testing.T) {
	core := &batchRecCore{flushErr: errors.New("sync failed")}
	core.arm()
	nw := NewNetwork(1, core)
	link := nw.ClientLink(0)

	if err := link.Send(&wire.Submit{T: 0}); err != nil {
		t.Fatal(err)
	}
	<-core.entered
	for i := 1; i <= 4; i++ {
		if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(core.gate)

	// The first op took the fast path (plain HandleSubmit, no batch
	// flush), so its reply arrives; the batched four must be silent.
	mustRecvReply(t, link, 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		core.mu.Lock()
		f := core.flushes
		core.mu.Unlock()
		if f >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the batch flush")
		}
		time.Sleep(time.Millisecond)
	}
	nw.Stop()
	for {
		m, err := link.Recv()
		if err != nil {
			break // drained
		}
		t.Fatalf("got %v after a failed batch flush, want silence", m)
	}
}

// TestBatchForgedSignatureMidBatch forms one deterministic batch holding
// valid, forged and impersonated SUBMITs and requires exactly the valid
// ones to apply and reply, in order — batching never admits an
// unverified op, and one bad signature rejects only its own op.
func TestBatchForgedSignatureMidBatch(t *testing.T) {
	ring, signers := crypto.NewTestKeyring(2, 7)
	core := &recCore{}
	core.arm()
	nw := NewNetwork(2, core, WithVerifier(ring))
	defer nw.Stop()
	link := nw.ClientLink(0)

	rejectsBefore := tmVerifyRejects.Value()
	if err := link.Send(signedSubmit(signers[0], 0, 0)); err != nil {
		t.Fatal(err)
	}
	<-core.entered
	for i := 1; i <= 9; i++ {
		sub := signedSubmit(signers[0], 0, int64(i))
		switch i {
		case 5: // forged: signed by the wrong key
			sub.Inv.SubmitSig = signers[1].Sign(crypto.DomainSubmit,
				wire.SubmitPayload(sub.Inv.Op, sub.Inv.Reg, sub.T, nil))
		case 7: // impersonation: valid signature, wrong claimed identity
			sub = signedSubmit(signers[1], 1, 7)
		}
		if err := link.Send(sub); err != nil {
			t.Fatal(err)
		}
	}
	close(core.gate)

	for _, want := range []int{0, 1, 2, 3, 4, 6, 8, 9} {
		mustRecvReply(t, link, want)
	}
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 6}, {0, 8}, {0, 9}}
	got := core.appliedOps()
	if len(got) != len(want) {
		t.Fatalf("applied %d ops, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if d := tmVerifyRejects.Value() - rejectsBefore; d != 2 {
		t.Fatalf("verify rejects = %d, want 2", d)
	}

	// The fast path (batch of one) must reject the same way: a lone
	// forged op is silent, the valid op after it still replies.
	bad := signedSubmit(signers[0], 0, 100)
	bad.Inv.SubmitSig[0] ^= 0xff
	if err := link.Send(bad); err != nil {
		t.Fatal(err)
	}
	if err := link.Send(signedSubmit(signers[0], 0, 101)); err != nil {
		t.Fatal(err)
	}
	mustRecvReply(t, link, 101)
	if d := tmVerifyRejects.Value() - rejectsBefore; d != 3 {
		t.Fatalf("verify rejects after fast-path forgery = %d, want 3", d)
	}
}

// TestBatchGenericBarrierOrdering: a generic message inside a batch is a
// barrier — replies owed to its client from earlier in the batch must be
// delivered before the generic handler can push anything, and later
// replies after.
func TestBatchGenericBarrierOrdering(t *testing.T) {
	core := &genCore{}
	core.arm()
	nw := NewNetwork(1, core)
	defer nw.Stop()
	link := nw.ClientLink(0)

	if err := link.Send(&wire.Submit{T: 0}); err != nil {
		t.Fatal(err)
	}
	<-core.entered
	if err := link.Send(&wire.Submit{T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := link.Send(&wire.Probe{From: 0}); err != nil {
		t.Fatal(err)
	}
	if err := link.Send(&wire.Submit{T: 2}); err != nil {
		t.Fatal(err)
	}
	close(core.gate)

	mustRecvReply(t, link, 0)
	mustRecvReply(t, link, 1)
	m, err := link.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*wire.Probe); !ok {
		t.Fatalf("got %T after the batch prefix, want the pushed *wire.Probe", m)
	}
	mustRecvReply(t, link, 2)
}

// stressTransport abstracts the two transports for the shared stress
// test: build a verified server over core, hand out per-client links.
type stressTransport struct {
	name  string
	setup func(t *testing.T, n int, core ServerCore, ring *crypto.Keyring) []Link
}

var stressTransports = []stressTransport{
	{"memory", func(t *testing.T, n int, core ServerCore, ring *crypto.Keyring) []Link {
		nw := NewNetwork(n, core, WithVerifier(ring))
		t.Cleanup(nw.Stop)
		links := make([]Link, n)
		for i := range links {
			links[i] = nw.ClientLink(i)
		}
		return links
	}},
	{"tcp", func(t *testing.T, n int, core ServerCore, ring *crypto.Keyring) []Link {
		_, addr := startTCP(t, core, WithVerifyKeyring(ring))
		links := make([]Link, n)
		for i := range links {
			l, err := DialTCP(addr, i)
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			t.Cleanup(func() { _ = l.Close() })
			links[i] = l
		}
		return links
	}},
}

// TestBatchStressFIFOExactlyOnce floods both transports from 8
// concurrent clients, with a forged SUBMIT every 10th op, and requires
// per-client FIFO reply order, exactly-once apply across batch
// boundaries, and rejection of exactly the forged ops. Run with -race.
func TestBatchStressFIFOExactlyOnce(t *testing.T) {
	const (
		clients = 8
		ops     = 120
	)
	forged := func(i int) bool { return i%10 == 7 }

	for _, tr := range stressTransports {
		t.Run(tr.name, func(t *testing.T) {
			ring, signers := crypto.NewTestKeyring(clients, 11)
			core := &recCore{}
			links := tr.setup(t, clients, core, ring)

			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					link := links[c]
					for i := 0; i < ops; i++ {
						sub := signedSubmit(signers[c], c, int64(i))
						if forged(i) {
							sub.Inv.SubmitSig[0] ^= 0xff
						}
						if err := link.Send(sub); err != nil {
							t.Errorf("client %d send %d: %v", c, i, err)
							return
						}
					}
					for i := 0; i < ops; i++ {
						if forged(i) {
							continue // rejected: no reply
						}
						m, err := link.Recv()
						if err != nil {
							t.Errorf("client %d recv %d: %v", c, i, err)
							return
						}
						if got := m.(*wire.Reply).C; got != i {
							t.Errorf("client %d: reply %d out of order: got %d", c, i, got)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Exactly-once, in order, only the valid ops.
			perClient := make(map[int][]int)
			for _, op := range core.appliedOps() {
				perClient[op[0]] = append(perClient[op[0]], op[1])
			}
			for c := 0; c < clients; c++ {
				var want []int
				for i := 0; i < ops; i++ {
					if !forged(i) {
						want = append(want, i)
					}
				}
				got := perClient[c]
				if len(got) != len(want) {
					t.Fatalf("client %d: %d ops applied, want %d", c, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("client %d: applied[%d] = %d, want %d", c, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// waitFIFOLen polls a fifo until it holds at least n queued items.
func waitFIFOLen(t *testing.T, q *fifo[envelope], n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		q.mu.Lock()
		have := len(q.items)
		q.mu.Unlock()
		if have >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued envelopes (have %d)", n, have)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitFIFOClosed polls a fifo until close() has run.
func waitFIFOClosed(t *testing.T, q *fifo[envelope]) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		q.mu.Lock()
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the inbox to close")
		}
		time.Sleep(time.Millisecond)
	}
}

// tracedSubmit builds a SUBMIT carrying a kept trace with a
// deterministic per-index ID.
func tracedSubmit(i int) *wire.Submit {
	var id [16]byte
	binary.BigEndian.PutUint64(id[:8], uint64(i)+1)
	binary.BigEndian.PutUint64(id[8:], ^uint64(i))
	return &wire.Submit{T: int64(i), Inv: wire.Invocation{
		Client: 0, Op: wire.OpWrite,
		Trace: &wire.TraceCtx{ID: id, Span: 1, Flags: wire.TraceFlagKeep},
	}}
}

// testDrainSpansAfterClose is the shared transport-conformance check for
// the shutdown drain: messages still queued when the inbox closes must
// be dispatched with full span instrumentation — the drain path emits
// the same queue-wait and handler spans as the live path, on BOTH
// transports.
func testDrainSpansAfterClose(t *testing.T, inboxOf func(core *recCore) (*fifo[envelope], func(m wire.Message) error, func())) {
	trace.SetEnabled(true)
	trace.Configure(1, 0)
	t.Cleanup(func() {
		trace.SetEnabled(false)
		trace.Configure(0, 0)
		trace.Default().Reset()
	})
	trace.Default().Reset()

	const k = 6
	core := &recCore{}
	core.arm()
	inbox, send, stop := inboxOf(core)

	if err := send(tracedSubmit(0)); err != nil {
		t.Fatal(err)
	}
	<-core.entered
	for i := 1; i <= k; i++ {
		if err := send(tracedSubmit(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFIFOLen(t, inbox, k)

	stopped := make(chan struct{})
	go func() { stop(); close(stopped) }()
	waitFIFOClosed(t, inbox)
	close(core.gate) // dispatcher resumes: the k queued ops drain post-close
	<-stopped

	if got := len(core.appliedOps()); got != k+1 {
		t.Fatalf("applied %d ops, want %d (drain lost messages)", got, k+1)
	}
	trace.Default().Sweep()
	spansByTrace := make(map[trace.TraceID]map[string]bool)
	for _, tr := range trace.Default().Snapshot() {
		names := make(map[string]bool)
		for _, s := range tr.Spans {
			names[s.Name] = true
		}
		spansByTrace[tr.ID] = names
	}
	for i := 0; i <= k; i++ {
		id := trace.TraceID(tracedSubmit(i).Inv.Trace.ID)
		names, ok := spansByTrace[id]
		if !ok {
			t.Fatalf("op %d: trace not retained (drained after close without sealing)", i)
		}
		for _, want := range []string{spanSrvSubmit, spanQueue} {
			if !names[want] {
				t.Errorf("op %d: span %q missing from drained trace %v", i, want, names)
			}
		}
	}
}

func TestMemoryDrainSpansAfterClose(t *testing.T) {
	testDrainSpansAfterClose(t, func(core *recCore) (*fifo[envelope], func(wire.Message) error, func()) {
		nw := NewNetwork(1, core)
		return nw.inbox, nw.ClientLink(0).Send, nw.Stop
	})
}

func TestTCPDrainSpansAfterClose(t *testing.T) {
	testDrainSpansAfterClose(t, func(core *recCore) (*fifo[envelope], func(wire.Message) error, func()) {
		srv, addr := startTCP(t, core)
		link, err := DialTCP(addr, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = link.Close() })
		srv.mu.Lock()
		rt := srv.shards[DefaultShard]
		srv.mu.Unlock()
		if rt == nil {
			t.Fatal("default shard runtime missing after handshake")
		}
		return rt.inbox, link.Send, srv.Stop
	})
}
