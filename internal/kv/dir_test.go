package kv

import (
	"bytes"
	"testing"

	"faust/internal/crypto"
)

func testDir(t *testing.T, keys ...string) *directory {
	t.Helper()
	d := &directory{}
	for _, k := range keys {
		d.put(entry{Key: k, Size: 5, Chunks: [][]byte{crypto.Hash([]byte(k))}})
	}
	return d
}

func TestDirectorySortedOps(t *testing.T) {
	d := testDir(t, "mango", "apple", "zebra", "kiwi")
	want := []string{"apple", "kiwi", "mango", "zebra"}
	got := d.keys()
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	// Replacement keeps one entry per key.
	d.put(entry{Key: "kiwi", Size: 9, Chunks: [][]byte{crypto.Hash([]byte("new"))}})
	if len(d.entries) != 4 {
		t.Fatalf("replace grew the directory to %d entries", len(d.entries))
	}
	if i, ok := d.find("kiwi"); !ok || d.entries[i].Size != 9 {
		t.Fatal("replacement not applied")
	}
	if !d.remove("apple") || d.remove("apple") {
		t.Fatal("remove semantics broken")
	}
}

func TestDirectoryCodecRoundTrip(t *testing.T) {
	for _, d := range []*directory{
		{}, // empty
		testDir(t, "a"),
		testDir(t, "a", "b", "c", "d", "e"),
	} {
		blob := encodeDirectory(d)
		got, err := decodeDirectory(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(encodeDirectory(got), blob) {
			t.Fatal("directory did not round-trip canonically")
		}
		if !bytes.Equal(got.merkleRoot(), d.merkleRoot()) {
			t.Fatal("merkle root changed across the codec")
		}
	}
}

// TestDirectoryCanonicalForm: unsorted or malformed encodings are
// rejected, so a server cannot present two encodings of one directory.
func TestDirectoryCanonicalForm(t *testing.T) {
	unsorted := &directory{entries: []entry{
		{Key: "b", Size: 1, Chunks: [][]byte{crypto.Hash([]byte("1"))}},
		{Key: "a", Size: 1, Chunks: [][]byte{crypto.Hash([]byte("2"))}},
	}}
	if _, err := decodeDirectory(encodeDirectory(unsorted)); err == nil {
		t.Fatal("unsorted directory accepted")
	}
	dup := &directory{entries: []entry{
		{Key: "a", Size: 1, Chunks: [][]byte{crypto.Hash([]byte("1"))}},
		{Key: "a", Size: 1, Chunks: [][]byte{crypto.Hash([]byte("2"))}},
	}}
	if _, err := decodeDirectory(encodeDirectory(dup)); err == nil {
		t.Fatal("duplicate key accepted")
	}
	// Size/chunk inconsistency.
	bad := &directory{entries: []entry{{Key: "a", Size: 7}}}
	if _, err := decodeDirectory(encodeDirectory(bad)); err == nil {
		t.Fatal("sized entry without chunks accepted")
	}
	// Truncations die cleanly.
	blob := encodeDirectory(testDir(t, "x", "y"))
	for l := 0; l < len(blob); l++ {
		if _, err := decodeDirectory(blob[:l]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", l)
		}
	}
}

// TestMerkleRootSensitivity: the root moves under every kind of
// modification and is insensitive to none.
func TestMerkleRootSensitivity(t *testing.T) {
	base := testDir(t, "a", "b", "c")
	root := base.merkleRoot()

	mutations := map[string]func(*directory){
		"added key":     func(d *directory) { d.put(entry{Key: "d", Size: 1, Chunks: [][]byte{crypto.Hash([]byte("d"))}}) },
		"removed key":   func(d *directory) { d.remove("b") },
		"changed size":  func(d *directory) { d.entries[0].Size = 99 },
		"changed chunk": func(d *directory) { d.entries[1].Chunks[0] = crypto.Hash([]byte("evil")) },
	}
	for name, mutate := range mutations {
		d := testDir(t, "a", "b", "c")
		mutate(d)
		if bytes.Equal(d.merkleRoot(), root) {
			t.Fatalf("merkle root did not move under %s", name)
		}
	}

	// Deterministic: same content, same root, regardless of insert order.
	d2 := testDir(t, "c", "a", "b")
	if !bytes.Equal(d2.merkleRoot(), root) {
		t.Fatal("merkle root depends on insertion order")
	}
	// Empty root is fixed and distinct.
	empty := &directory{}
	if bytes.Equal(empty.merkleRoot(), root) || empty.merkleRoot() == nil {
		t.Fatal("empty-directory root broken")
	}
}

func TestRootRecordRoundTrip(t *testing.T) {
	rr := &rootRecord{
		Gen:        42,
		NumEntries: 3,
		TotalBytes: 12345,
		DirHash:    crypto.Hash([]byte("dir")),
		Root:       crypto.Hash([]byte("root")),
	}
	enc := encodeRoot(rr)
	got, err := decodeRoot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != rr.Gen || got.NumEntries != rr.NumEntries || got.TotalBytes != rr.TotalBytes ||
		!bytes.Equal(got.DirHash, rr.DirHash) || !bytes.Equal(got.Root, rr.Root) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rr)
	}
	if _, err := decodeRoot(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated root record accepted")
	}
	if _, err := decodeRoot([]byte("not a root record")); err == nil {
		t.Fatal("garbage accepted as root record")
	}
}

// TestVerifyDirectory covers the three verification failures a lying
// server can cause: wrong bytes (content hash), forged Merkle root, and
// inconsistent metadata.
func TestVerifyDirectory(t *testing.T) {
	d := testDir(t, "a", "b")
	blob := encodeDirectory(d)
	rr := &rootRecord{
		Gen:        1,
		NumEntries: 2,
		TotalBytes: d.totalBytes(),
		DirHash:    crypto.Hash(blob),
		Root:       d.merkleRoot(),
	}
	if _, err := verifyDirectory(rr, blob); err != nil {
		t.Fatalf("valid directory rejected: %v", err)
	}
	// Tampered blob bytes.
	tampered := append([]byte(nil), blob...)
	tampered[len(tampered)-1] ^= 1
	if _, err := verifyDirectory(rr, tampered); err == nil {
		t.Fatal("tampered blob accepted")
	}
	// Forged Merkle root in the record.
	forged := *rr
	forged.Root = crypto.Hash([]byte("wrong"))
	if _, err := verifyDirectory(&forged, blob); err == nil {
		t.Fatal("forged merkle root accepted")
	}
	// Metadata mismatch.
	miscounted := *rr
	miscounted.NumEntries = 5
	if _, err := verifyDirectory(&miscounted, blob); err == nil {
		t.Fatal("miscounted metadata accepted")
	}
}
