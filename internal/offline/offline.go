// Package offline implements the reliable offline client-to-client
// communication method of the paper's model (Section 2, Figure 1): a
// message sent from one client to another is eventually delivered even if
// the two clients are never simultaneously connected.
//
// The in-memory Hub realizes this with unbounded store-and-forward
// inboxes: a recipient that is slow, busy, or "offline" simply finds all
// pending messages when it next receives. Per sender-recipient pair, FIFO
// order is preserved. FAUST uses this channel for its PROBE / VERSION /
// FAILURE exchange (Section 6).
package offline

import (
	"errors"
	"fmt"
	"sync"

	"faust/internal/wire"
)

// ErrClosed is returned after an endpoint or the hub has been closed.
var ErrClosed = errors.New("offline: endpoint closed")

// Msg is a delivered offline message together with its sender.
type Msg struct {
	From int
	Body wire.Message
}

// Channel is one client's attachment to the offline communication method,
// abstracting over the in-memory Hub and the TCP mesh so the FAUST layer
// works with either.
type Channel interface {
	// ID returns the owning client's index.
	ID() int
	// Send reliably delivers m to client to (eventually, even if the
	// recipient is currently offline).
	Send(to int, m wire.Message) error
	// Broadcast sends m to every other client.
	Broadcast(m wire.Message) error
	// Recv blocks for the next message or returns ErrClosed.
	Recv() (Msg, error)
	// Close shuts the channel down.
	Close()
}

// Endpoint is one client's attachment to the in-memory offline channel.
type Endpoint struct {
	hub *Hub
	id  int

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []Msg
	closed bool
}

// Hub connects n endpoints with reliable eventual delivery.
type Hub struct {
	endpoints []*Endpoint
}

// NewHub creates a hub with n endpoints, one per client.
func NewHub(n int) *Hub {
	h := &Hub{endpoints: make([]*Endpoint, n)}
	for i := 0; i < n; i++ {
		e := &Endpoint{hub: h, id: i}
		e.cond = sync.NewCond(&e.mu)
		h.endpoints[i] = e
	}
	return h
}

// N returns the number of endpoints.
func (h *Hub) N() int { return len(h.endpoints) }

// Endpoint returns client i's endpoint.
func (h *Hub) Endpoint(i int) *Endpoint { return h.endpoints[i] }

// Stop closes all endpoints; blocked Recv calls return ErrClosed after
// draining already-delivered messages.
func (h *Hub) Stop() {
	for _, e := range h.endpoints {
		e.Close()
	}
}

// ID returns the client index of this endpoint.
func (e *Endpoint) ID() int { return e.id }

// Send delivers m to client `to`'s inbox. Delivery is reliable: it
// succeeds even when the recipient is not currently receiving. Sending to
// self or out of range is an error.
func (e *Endpoint) Send(to int, m wire.Message) error {
	if to < 0 || to >= len(e.hub.endpoints) {
		return fmt.Errorf("offline: recipient %d out of range [0,%d)", to, len(e.hub.endpoints))
	}
	if to == e.id {
		return fmt.Errorf("offline: client %d cannot send to itself", e.id)
	}
	e.mu.Lock()
	senderClosed := e.closed
	e.mu.Unlock()
	if senderClosed {
		return ErrClosed
	}
	return e.hub.endpoints[to].deliver(Msg{From: e.id, Body: m})
}

// Broadcast sends m to every other endpoint. A closed recipient does not
// abort the rest; the first delivery error (other than a closed
// recipient) is returned.
func (e *Endpoint) Broadcast(m wire.Message) error {
	var firstErr error
	for i := range e.hub.endpoints {
		if i == e.id {
			continue
		}
		if err := e.Send(i, m); err != nil && !errors.Is(err, ErrClosed) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *Endpoint) deliver(m Msg) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		// A crashed client never receives; the model allows that (clients
		// may fail by crashing). The send itself is not an error.
		return nil
	}
	e.inbox = append(e.inbox, m)
	e.cond.Signal()
	return nil
}

// Recv blocks until a message is available or the endpoint closes.
// Messages already delivered before Close are still returned.
func (e *Endpoint) Recv() (Msg, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		return Msg{}, ErrClosed
	}
	m := e.inbox[0]
	e.inbox[0] = Msg{}
	e.inbox = e.inbox[1:]
	return m, nil
}

// TryRecv returns the next pending message without blocking. ok reports
// whether a message was available.
func (e *Endpoint) TryRecv() (Msg, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.inbox) == 0 {
		return Msg{}, false
	}
	m := e.inbox[0]
	e.inbox[0] = Msg{}
	e.inbox = e.inbox[1:]
	return m, true
}

// Pending returns the number of queued messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox)
}

// Close marks the endpoint closed and wakes blocked receivers. Close is
// idempotent.
func (e *Endpoint) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	e.cond.Broadcast()
}
