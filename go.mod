module faust

go 1.21
