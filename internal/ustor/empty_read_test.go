package ustor

import (
	"context"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
)

// TestEmptyRegisterReadSemantics pins the documented bootstrap contract
// of Read/ReadX, which the kv layer builds its empty-directory bootstrap
// on: a never-written register reads as (nil, nil) with a zero writer
// version; an explicit nil write still reads nil but with a non-zero
// writer version; and nil vs empty-slice values stay distinct.
func TestEmptyRegisterReadSemantics(t *testing.T) {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 55)
	nw := transport.NewNetwork(n, NewServer(n))
	defer nw.Stop()
	c0 := NewClient(0, ring, signers[0], nw.ClientLink(0))
	c1 := NewClient(1, ring, signers[1], nw.ClientLink(1))

	// Never written: nil value, nil error, zero writer version.
	res, err := c1.ReadX(context.Background(), 0)
	if err != nil {
		t.Fatalf("reading a never-written register must not error: %v", err)
	}
	if res.Value != nil {
		t.Fatalf("never-written register read %q, want nil", res.Value)
	}
	if !res.WriterVersion.Ver.IsZero() {
		t.Fatalf("never-written register has writer version %v, want zero", res.WriterVersion.Ver)
	}

	// Reading one's own never-written register works the same way (the
	// kv bootstrap path).
	own, err := c0.ReadX(context.Background(), 0)
	if err != nil || own.Value != nil {
		t.Fatalf("own empty read = %q, %v; want nil, nil", own.Value, err)
	}

	// Explicit nil write (bottom): still reads nil, but the writer
	// version is now non-zero — the two cases are distinguishable.
	if err := c0.Write(nil); err != nil {
		t.Fatal(err)
	}
	res, err = c1.ReadX(context.Background(), 0)
	if err != nil || res.Value != nil {
		t.Fatalf("after Write(nil): read %q, %v; want nil, nil", res.Value, err)
	}
	if res.WriterVersion.Ver.IsZero() {
		t.Fatal("after Write(nil) the writer version must be non-zero")
	}

	// Empty-slice write is NOT bottom: it reads back as a present,
	// zero-length value.
	if err := c0.Write([]byte{}); err != nil {
		t.Fatal(err)
	}
	v, err := c1.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || len(v) != 0 {
		t.Fatalf("after Write([]byte{}): read %v, want non-nil empty", v)
	}

	for i, c := range []*Client{c0, c1} {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d failed: %v", i, reason)
		}
	}
}
