package blobfleet

import "faust/internal/obs"

// Process-wide fleet counters in the default obs registry. Per-backend
// gauges (aliveness, up/down) are registered per Failover instance,
// labeled with the backend name, because backends are configuration, not
// code. Every Failover also keeps instance-local atomics (Stats) so
// tests and the E21 bench can assert without scraping.
var (
	fmFailovers = map[string]*obs.Counter{
		"put": obs.Default().Counter("faust_blob_failover_total", "op", "put"),
		"get": obs.Default().Counter("faust_blob_failover_total", "op", "get"),
	}
	fmRetries     = obs.Default().Counter("faust_blob_retries_total")
	fmReadRepairs = obs.Default().Counter("faust_blob_read_repair_total")
	fmTamperSkips = obs.Default().Counter("faust_blob_tamper_skips_total")
	fmProbes      = map[bool]*obs.Counter{
		true:  obs.Default().Counter("faust_blob_probes_total", "result", "ok"),
		false: obs.Default().Counter("faust_blob_probes_total", "result", "failed"),
	}
	fmFaults = map[string]*obs.Counter{
		"error":      obs.Default().Counter("faust_blob_faults_injected_total", "kind", "error"),
		"latency":    obs.Default().Counter("faust_blob_faults_injected_total", "kind", "latency"),
		"hang":       obs.Default().Counter("faust_blob_faults_injected_total", "kind", "hang"),
		"short-read": obs.Default().Counter("faust_blob_faults_injected_total", "kind", "short-read"),
		"bit-flip":   obs.Default().Counter("faust_blob_faults_injected_total", "kind", "bit-flip"),
		"kill":       obs.Default().Counter("faust_blob_faults_injected_total", "kind", "kill"),
	}
)

func init() {
	r := obs.Default()
	r.Help("faust_blob_failover_total", "blob operations completed without the primary backend")
	r.Help("faust_blob_retries_total", "per-backend blob operation retries after transient failures")
	r.Help("faust_blob_read_repair_total", "blobs served by a secondary and written back to the primary")
	r.Help("faust_blob_tamper_skips_total", "replicas skipped because their payload failed content-hash verification")
	r.Help("faust_blob_probes_total", "background aliveness probes of dead backends")
	r.Help("faust_blob_faults_injected_total", "faults manufactured by FaultyBlobs wrappers")
	r.Help("faust_blob_backend_aliveness", "per-backend EMA aliveness score, scaled to 0-1000")
	r.Help("faust_blob_backend_alive", "per-backend rotation membership (1 = alive, 0 = dead)")
	r.Help("faust_blob_backend_errors_total", "failed blob operations per backend (after retries)")
}

// backendGauges resolves the per-backend metric handles, labeled
// "<shard>/<name>" when the fleet serves a named shard.
func backendGauges(shard, name string) (aliveness, up *obs.Gauge, errs *obs.Counter) {
	label := name
	if shard != "" {
		label = shard + "/" + name
	}
	r := obs.Default()
	return r.Gauge("faust_blob_backend_aliveness", "backend", label),
		r.Gauge("faust_blob_backend_alive", "backend", label),
		r.Counter("faust_blob_backend_errors_total", "backend", label)
}
