package faustproto

import (
	"fmt"

	"faust/internal/crypto"
	"faust/internal/version"
	"faust/internal/wire"
)

// AuditReport is the outcome of an offline audit over committed versions.
type AuditReport struct {
	OK     bool
	Reason string
	// A and B carry the offending version pair when OK is false because
	// of a fork: cryptographic evidence of server misbehavior.
	A, B wire.SignedVersion
}

// Audit performs the offline auditor's global consistency check: given
// signed versions collected from any set of clients (e.g. each client's
// MaxVersion), it verifies every signature and checks that all versions
// are pairwise comparable. With a correct server all committed versions
// lie on one chain; any incomparable pair proves a forking attack — the
// same evidence FAUST's online exchange produces, but usable post hoc.
func Audit(ring *crypto.Keyring, versions []wire.SignedVersion) AuditReport {
	valid := make([]wire.SignedVersion, 0, len(versions))
	for i, sv := range versions {
		if sv.Ver.IsZero() {
			continue
		}
		if sv.Committer < 0 || sv.Committer >= ring.N() {
			return AuditReport{Reason: fmt.Sprintf("version %d names invalid committer %d", i, sv.Committer)}
		}
		if !ring.Verify(sv.Committer, sv.Sig, crypto.DomainCommit, wire.CommitPayload(sv.Ver)) {
			return AuditReport{Reason: fmt.Sprintf("version %d carries an invalid COMMIT-signature", i)}
		}
		valid = append(valid, sv)
	}
	for i := 0; i < len(valid); i++ {
		for j := i + 1; j < len(valid); j++ {
			if !version.Comparable(valid[i].Ver, valid[j].Ver) {
				return AuditReport{
					Reason: "incomparable versions: the server mounted a forking attack",
					A:      valid[i],
					B:      valid[j],
				}
			}
		}
	}
	return AuditReport{OK: true}
}
