// Package hotpathalloc enforces the zero-allocation contract of PR 2 on
// codec and crypto hot paths.
//
// The contract functions are identified by naming convention — Append*
// / append* (append-style encoders writing into a caller buffer),
// *Into (HashInto-style helpers filling caller storage), EncodedSize,
// and the batch dispatch drain/verify functions (VerifyBatch, popBatch,
// dispatchBatches) — plus any function opted in explicitly with a
// //faustlint:hotpath marker comment. Inside a contract function the
// analyzer flags the allocation patterns that have crept into hot paths
// before:
//
//   - calls into package fmt (Sprintf/Errorf/...) — every call
//     allocates for the format machinery and boxes its operands
//   - make() of a slice or map — a fresh allocation per call; encoders
//     must write into the caller's buffer instead
//   - string<->[]byte conversions, which copy
//   - boxing: passing a concrete value to a variadic ...interface{}
//     parameter
//
// One idiom is exempt: append(buf, make([]byte, n)...) — the compiler
// recognizes the spread and extends buf in place without materializing
// the temporary, so it is the sanctioned way to zero-extend a buffer.
// Error paths that genuinely need formatting carry a justified
// //faustlint:ignore hotpathalloc directive.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"

	"faust/tools/faustlint/internal/directive"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags allocations (fmt, make, string conversions, interface boxing) in zero-alloc contract functions",
	Run:  run,
}

var _ = directive.Register(Analyzer.Name)

// contractName matches function names bound to the zero-alloc contract.
// Beyond the codec conventions (Append*, *Into, EncodedSize), the batch
// dispatch pipeline of PR 10 binds its per-batch drain/verify functions
// by exact name: these run once per dispatched batch at full load, so a
// stray allocation multiplies by the op rate just like a codec miss.
var contractName = regexp.MustCompile(`(?i)^(append.+|.+into|encodedsize|verifybatch|popbatch|dispatchbatches)$`)

func run(pass *analysis.Pass) (interface{}, error) {
	dp := directive.New(pass)
	marked := directive.HotpathFuncs(pass.Fset, pass.Files)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !contractName.MatchString(fd.Name.Name) && !marked[fd] {
				continue
			}
			checkFunc(dp, pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(dp *directive.Pass, pass *analysis.Pass, fd *ast.FuncDecl) {
	// exemptMake collects make() calls in the sanctioned
	// append(buf, make([]byte, n)...) spread position.
	exemptMake := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Ellipsis == 0 || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("append") {
			if mk, ok := call.Args[len(call.Args)-1].(*ast.CallExpr); ok && isBuiltin(pass, mk.Fun, "make") {
				exemptMake[mk] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures run outside the contract body
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// make([]T, ...) / make(map...) outside the append-spread idiom.
		if isBuiltin(pass, call.Fun, "make") && !exemptMake[call] {
			if tv, ok := pass.TypesInfo.Types[call]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					dp.Reportf(call.Pos(),
						"make() allocates on the %s hot path; write into the caller's buffer (append(buf, make([]byte, n)...) is the sanctioned zero-extend)",
						fd.Name.Name)
				}
			}
			return true
		}

		// string <-> []byte conversion: a copy per call.
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if isStringByteConv(pass, tv.Type, call.Args[0]) {
				dp.Reportf(call.Pos(),
					"string/[]byte conversion copies on the %s hot path; keep one representation end to end",
					fd.Name.Name)
			}
			return true
		}

		// Calls into package fmt allocate unconditionally.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				dp.Reportf(call.Pos(),
					"fmt.%s allocates on the %s hot path; zero-alloc contract functions must not format",
					fn.Name(), fd.Name.Name)
				return true
			}
		}

		// Boxing: concrete values passed to a variadic ...interface{}.
		checkBoxing(dp, pass, fd, call)
		return true
	})
}

// checkBoxing flags concrete (non-interface) arguments spread into a
// variadic interface parameter — each one is boxed into an allocation.
func checkBoxing(dp *directive.Pass, pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis != 0 {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return
	}
	if _, ok := slice.Elem().Underlying().(*types.Interface); !ok {
		return
	}
	for i := sig.Params().Len() - 1; i < len(call.Args); i++ {
		argTV, ok := pass.TypesInfo.Types[call.Args[i]]
		if !ok || argTV.Type == nil || argTV.IsNil() {
			continue
		}
		if _, isIface := argTV.Type.Underlying().(*types.Interface); isIface {
			continue
		}
		if isPointerShaped(argTV.Type) {
			// Pointers (and chan/map/func values) are stored directly in
			// the interface word — the conversion never allocates.
			continue
		}
		dp.Reportf(call.Args[i].Pos(),
			"passing %s to a variadic interface parameter boxes it (allocation) on the %s hot path",
			argTV.Type.String(), fd.Name.Name)
	}
}

// isPointerShaped reports whether values of t fit the interface data
// word without boxing: pointers, channels, maps, funcs and
// unsafe.Pointer are stored directly by the runtime.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	return ok && id.Name == name && pass.TypesInfo.Uses[id] == types.Universe.Lookup(name)
}

// isStringByteConv reports whether converting arg to target crosses the
// string/[]byte boundary (both directions copy).
func isStringByteConv(pass *analysis.Pass, target types.Type, arg ast.Expr) bool {
	argTV, ok := pass.TypesInfo.Types[arg]
	if !ok || argTV.Type == nil {
		return false
	}
	return (isString(target) && isByteSlice(argTV.Type)) ||
		(isByteSlice(target) && isString(argTV.Type))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
