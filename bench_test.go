// Benchmarks regenerating the paper-level experiments (DESIGN.md,
// E2-E14). Each benchmark maps to one experiment row; cmd/faust-bench
// prints the corresponding human-readable tables, and EXPERIMENTS.md
// records paper-claim vs measured. Run with:
//
//	go test -bench=. -benchmem
package faust

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/lockstep"
	"faust/internal/offline"
	"faust/internal/shard"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/trusted"
	"faust/internal/ustor"
	"faust/internal/wire"
	"faust/internal/workload"
)

// ustorCluster builds a raw USTOR cluster for benchmarking.
func ustorCluster(b *testing.B, n int, opts ...transport.Option) (*transport.Network, []*ustor.Client) {
	b.Helper()
	ring, signers := crypto.NewTestKeyring(n, 1)
	nw := transport.NewNetwork(n, ustor.NewServer(n), opts...)
	clients := make([]*ustor.Client, n)
	for i := 0; i < n; i++ {
		clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
	}
	b.Cleanup(nw.Stop)
	return nw, clients
}

// BenchmarkWriteLatency measures single-client write latency (E7).
func BenchmarkWriteLatency(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, clients := ustorCluster(b, n)
			w := workload.New(n, workload.Config{ReadFraction: 0, ValueSize: 64, Seed: 1})
			s := w.Stream(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := clients[0].Write(s.NextWrite().Value); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadLatency measures single-client read latency (E7).
func BenchmarkReadLatency(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, clients := ustorCluster(b, n)
			if err := clients[1].Write([]byte("the-value")); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := clients[0].Read(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRoundsPerOp verifies the one-round claim (E5): exactly one
// server->client message per operation.
func BenchmarkRoundsPerOp(b *testing.B) {
	nw, clients := ustorCluster(b, 2, transport.WithMetrics())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := clients[0].Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := nw.Stats()
	b.ReportMetric(float64(st.ServerToClientMsgs)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(st.ClientToServerMsgs)/float64(b.N), "msgs-sent/op")
}

// BenchmarkMessageSizeVsN measures the per-operation communication volume
// as n grows (E6): the paper claims O(n) bits per request.
func BenchmarkMessageSizeVsN(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw, clients := ustorCluster(b, n, transport.WithMetrics())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := clients[0].Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := nw.Stats()
			perOp := float64(st.ClientToServerBytes+st.ServerToClientBytes) / float64(b.N)
			b.ReportMetric(perOp, "bytes/op")
			b.ReportMetric(perOp/float64(n), "bytes/op/client")
		})
	}
}

// BenchmarkWaitFreedom measures reads while another client holds a
// submitted-but-uncommitted write (E8): USTOR does not block.
func BenchmarkWaitFreedom(b *testing.B) {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 1)
	nw := transport.NewNetwork(n, ustor.NewServer(n))
	b.Cleanup(nw.Stop)

	// Client 0 crashes mid-operation.
	link0 := nw.ClientLink(0)
	sigma := signers[0].Sign(crypto.DomainSubmit, wire.SubmitPayload(wire.OpWrite, 0, 1, nil))
	delta := signers[0].Sign(crypto.DomainData, wire.DataPayload(1, crypto.Hash([]byte("w"))))
	if err := link0.Send(&wire.Submit{T: 1, Inv: wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0, SubmitSig: sigma}, Value: []byte("w"), DataSig: delta}); err != nil {
		b.Fatal(err)
	}
	if _, err := link0.Recv(); err != nil {
		b.Fatal(err)
	}

	c1 := ustor.NewClient(1, ring, signers[1], nw.ClientLink(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c1.Read(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUSTORvsLockstepUnderContention compares write throughput with
// four concurrent writers (E8b): the lock-step baseline serializes
// globally.
func BenchmarkUSTORvsLockstepUnderContention(b *testing.B) {
	const n = 4
	ring, signers := crypto.NewTestKeyring(n, 1)

	b.Run("ustor", func(b *testing.B) {
		nw := transport.NewNetwork(n, ustor.NewServer(n))
		b.Cleanup(nw.Stop)
		clients := make([]*ustor.Client, n)
		for i := range clients {
			clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
		}
		var next int32
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			c := clients[int(atomicAdd(&next, 1))%n]
			i := 0
			for pb.Next() {
				i++
				if err := c.Write([]byte(fmt.Sprintf("c%d-%d", c.ID(), i))); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("lockstep", func(b *testing.B) {
		nw := transport.NewNetwork(n, lockstep.NewServer(n))
		b.Cleanup(nw.Stop)
		clients := make([]*lockstep.Client, n)
		for i := range clients {
			clients[i] = lockstep.NewClient(i, ring, signers[i], nw.ClientLink(i))
		}
		var next int32
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			c := clients[int(atomicAdd(&next, 1))%n]
			i := 0
			for pb.Next() {
				i++
				if err := c.Write([]byte(fmt.Sprintf("c%d-%d", c.ID(), i))); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkUSTORvsTrusted isolates the price of fail-awareness (E14).
func BenchmarkUSTORvsTrusted(b *testing.B) {
	const n = 2
	b.Run("trusted-write", func(b *testing.B) {
		nw := transport.NewNetwork(n, trusted.NewServer(n))
		b.Cleanup(nw.Stop)
		c := trusted.NewClient(0, n, nw.ClientLink(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ustor-write", func(b *testing.B) {
		_, clients := ustorCluster(b, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := clients[0].Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("faust-write", func(b *testing.B) {
		svc := NewTestService(n, 1,
			WithProbeTimeout(time.Second),
			WithPollInterval(250*time.Millisecond))
		b.Cleanup(svc.Close)
		c, err := svc.Client(0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Client(1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStabilityLatencyOnline measures write-to-stable time through
// the live server with dummy reads (E13).
func BenchmarkStabilityLatencyOnline(b *testing.B) {
	svc := NewTestService(3, 1,
		WithProbeTimeout(50*time.Millisecond),
		WithPollInterval(10*time.Millisecond))
	b.Cleanup(svc.Close)
	clients := make([]*Client, 3)
	for i := range clients {
		c, err := svc.Client(i)
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, err := clients[0].Write([]byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := clients[0].WaitStable(ts, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStabilityLatencyOffline measures the offline PROBE/VERSION
// stability path with a crashed server (E13). Each iteration builds a
// fresh cluster, performs the propagation ops, crashes the server and
// waits for offline stability.
func BenchmarkStabilityLatencyOffline(b *testing.B) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 1)
	cfg := faustproto.Config{
		ProbeTimeout:      30 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		DisableDummyReads: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core := byzantine.NewCrashServer(n, 3)
		nw := transport.NewNetwork(n, core)
		hub := offline.NewHub(n)
		clients := make([]*faustproto.Client, n)
		for j := 0; j < n; j++ {
			clients[j] = faustproto.NewClient(j, ring, signers[j], nw.ClientLink(j), hub.Endpoint(j), faustproto.WithConfig(cfg))
			clients[j].Start()
		}
		ts, err := clients[0].Write([]byte("x"))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := clients[1].Read(0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := clients[0].WaitStableFor(1, ts, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, c := range clients {
			c.Stop()
		}
		nw.Stop()
		hub.Stop()
		b.StartTimer()
	}
}

// BenchmarkDetectionLatency measures the full fork-detection cycle (E11):
// fork materialized -> all clients failed.
func BenchmarkDetectionLatency(b *testing.B) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 1)
	cfg := faustproto.Config{
		ProbeTimeout:      20 * time.Millisecond,
		PollInterval:      5 * time.Millisecond,
		DisableDummyReads: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
		if err != nil {
			b.Fatal(err)
		}
		nw := transport.NewNetwork(n, server)
		hub := offline.NewHub(n)
		clients := make([]*faustproto.Client, n)
		for j := 0; j < n; j++ {
			clients[j] = faustproto.NewClient(j, ring, signers[j], nw.ClientLink(j), hub.Endpoint(j), faustproto.WithConfig(cfg))
			clients[j].Start()
		}
		if _, err := clients[0].Write([]byte("a")); err != nil {
			b.Fatal(err)
		}
		if _, err := clients[1].Write([]byte("b")); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, c := range clients {
			if err := c.WaitFail(30 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for _, c := range clients {
			c.Stop()
		}
		nw.Stop()
		hub.Stop()
		b.StartTimer()
	}
}

// BenchmarkFig2Collaboration replays the Figure 2 scenario (E2) and
// verifies the exact stability cut [10 8 3].
func BenchmarkFig2Collaboration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		svc := NewTestService(3, 1, WithoutDummyReads(),
			WithProbeTimeout(time.Second), WithPollInterval(250*time.Millisecond))
		alice, _ := svc.Client(0)
		bob, _ := svc.Client(1)
		carlos, _ := svc.Client(2)
		b.StartTimer()

		for k := 1; k <= 3; k++ {
			if _, err := alice.Write([]byte(fmt.Sprintf("a%d", k))); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := carlos.Read(0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := alice.Read(2); err != nil {
			b.Fatal(err)
		}
		for k := 5; k <= 8; k++ {
			if _, err := alice.Write([]byte(fmt.Sprintf("a%d", k))); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := bob.Read(0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := alice.Read(1); err != nil {
			b.Fatal(err)
		}
		if _, err := alice.Write([]byte("a10")); err != nil {
			b.Fatal(err)
		}
		cut := alice.StableCut()
		if cut[0] != 10 || cut[1] != 8 || cut[2] != 3 {
			b.Fatalf("stable_Alice(%v), want [10 8 3]", cut)
		}
		b.StopTimer()
		svc.Close()
		b.StartTimer()
	}
}

// BenchmarkFig3Attack replays the Figure 3 attack (E3) per iteration and
// verifies USTOR accepts it while the versions fork.
func BenchmarkFig3Attack(b *testing.B) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 1)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
		if err != nil {
			b.Fatal(err)
		}
		nw := transport.NewNetwork(n, server)
		c0 := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))
		c1 := ustor.NewClient(1, ring, signers[1], nw.ClientLink(1))
		b.StartTimer()

		if _, err := c0.WriteX(context.Background(), []byte("u")); err != nil {
			b.Fatal(err)
		}
		r1, err := c1.ReadX(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if r1.Value != nil {
			b.Fatal("first read must return bottom")
		}
		if err := server.Replay(0, 0, 1); err != nil {
			b.Fatal(err)
		}
		r2, err := c1.ReadX(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if string(r2.Value) != "u" {
			b.Fatalf("second read = %q", r2.Value)
		}
		b.StopTimer()
		nw.Stop()
		b.StartTimer()
	}
}

// BenchmarkPiggybackAblation compares the standard protocol (separate
// COMMIT message) against the Section 5 piggyback optimization: identical
// semantics, half the client->server messages.
func BenchmarkPiggybackAblation(b *testing.B) {
	run := func(b *testing.B, piggyback bool) {
		const n = 2
		ring, signers := crypto.NewTestKeyring(n, 1)
		nw := transport.NewNetwork(n, ustor.NewServer(n), transport.WithMetrics())
		b.Cleanup(nw.Stop)
		var opts []ustor.ClientOption
		if piggyback {
			opts = append(opts, ustor.WithCommitPiggyback())
		}
		c := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0), opts...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := nw.Stats()
		b.ReportMetric(float64(st.ClientToServerMsgs)/float64(b.N), "msgs-sent/op")
		b.ReportMetric(float64(st.ClientToServerBytes+st.ServerToClientBytes)/float64(b.N), "bytes/op")
	}
	b.Run("separate-commit", func(b *testing.B) { run(b, false) })
	b.Run("piggyback", func(b *testing.B) { run(b, true) })
}

// BenchmarkCryptoPerOp measures the primitives dominating USTOR's cost
// (E12).
func BenchmarkCryptoPerOp(b *testing.B) {
	ring, signers := crypto.NewTestKeyring(2, 1)
	payload := wire.SubmitPayload(wire.OpWrite, 0, 1, nil)
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = signers[0].Sign(crypto.DomainSubmit, payload)
		}
	})
	sig := signers[0].Sign(crypto.DomainSubmit, payload)
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !ring.Verify(0, sig, crypto.DomainSubmit, payload) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("digest-step", func(b *testing.B) {
		d := []byte(nil)
		for i := 0; i < b.N; i++ {
			d = crypto.Hash(d, payload)
		}
	})
}

// BenchmarkSignVerify is the raw Ed25519 measurement used in EXPERIMENTS
// (E12).
func BenchmarkSignVerify(b *testing.B) {
	_, signers := crypto.NewTestKeyring(1, 1)
	msg := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = signers[0].Sign(crypto.DomainData, msg)
	}
}

// BenchmarkServerPersist measures the write path of the persistence
// subsystem (E15): the same single-client write loop against a plain
// in-memory server, a WAL on a MemBackend (record codec only), and a
// FileBackend with fsync off (process-crash durability) and on
// (power-loss durability).
func BenchmarkServerPersist(b *testing.B) {
	const n = 2
	run := func(b *testing.B, core transport.ServerCore) {
		ring, signers := crypto.NewTestKeyring(n, 1)
		nw := transport.NewNetwork(n, core)
		b.Cleanup(nw.Stop)
		c := ustor.NewClient(0, ring, signers[0], nw.ClientLink(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Write([]byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	}
	persistent := func(b *testing.B, backend store.Backend) *store.Persistent {
		b.Helper()
		ps, err := store.Open(ustor.NewServer(n), backend, store.Options{SnapshotEvery: 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = ps.Close() })
		return ps
	}
	file := func(b *testing.B, opts store.FileOptions) store.Backend {
		b.Helper()
		backend, err := store.OpenFile(b.TempDir(), opts)
		if err != nil {
			b.Fatal(err)
		}
		return backend
	}
	b.Run("mem-no-persistence", func(b *testing.B) { run(b, ustor.NewServer(n)) })
	b.Run("wal-membackend", func(b *testing.B) { run(b, persistent(b, store.NewMemBackend())) })
	b.Run("wal-file-nofsync", func(b *testing.B) {
		run(b, persistent(b, file(b, store.FileOptions{GroupCommit: true, FlushInterval: 2 * time.Millisecond})))
	})
	// wal-file-fsync is the production configuration: group commit, one
	// batched write + fdatasync per reply covering every buffered record.
	b.Run("wal-file-fsync", func(b *testing.B) {
		run(b, persistent(b, file(b, store.FileOptions{Fsync: true, GroupCommit: true, FlushInterval: 2 * time.Millisecond})))
	})
	// wal-file-fsync-each is the pre-group-commit behavior (one fsync per
	// record), kept as the ablation baseline.
	b.Run("wal-file-fsync-each", func(b *testing.B) {
		run(b, persistent(b, file(b, store.FileOptions{Fsync: true})))
	})
}

// BenchmarkThroughput measures aggregate operation throughput with m
// concurrent clients running a read/write mix over the n single-writer
// registers — the many-client load the ROADMAP targets. Run with
// -benchmem; the ops/sec metric is the headline number and feeds the
// performance trajectory in README.md.
func BenchmarkThroughput(b *testing.B) {
	cases := []struct {
		clients  int
		readFrac float64
	}{
		{4, 0.5},
		{8, 0.5},
		{8, 0.9},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("clients=%d/reads=%.0f%%", tc.clients, tc.readFrac*100), func(b *testing.B) {
			_, clients := ustorCluster(b, tc.clients)
			w := workload.New(tc.clients, workload.Config{ReadFraction: tc.readFrac, ValueSize: 64, Seed: 7})
			// Seed every register so reads hit written values.
			for i, c := range clients {
				if err := c.Write(w.Stream(i).NextWrite().Value); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for i, c := range clients {
				ops := b.N / len(clients)
				if i < b.N%len(clients) {
					ops++
				}
				wg.Add(1)
				go func(c *ustor.Client, s *workload.Stream, ops int) {
					defer wg.Done()
					for k := 0; k < ops; k++ {
						op := s.Next()
						var err error
						if op.IsWrite {
							err = c.Write(op.Value)
						} else {
							_, err = c.Read(op.Reg)
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				}(c, w.Stream(i), ops)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// BenchmarkShardThroughput measures aggregate multi-tenant write
// throughput over TCP (E17): the same 8 client identities served as one
// register group vs. split across 4 independent shards, each with its own
// dispatcher goroutine and a quarter-size group. cmd/faust-bench -run
// multishard prints the full table including the shared-dispatcher
// ablation.
func BenchmarkShardThroughput(b *testing.B) {
	const totalClients = 8
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			per := totalClients / shards
			ring, signers := crypto.NewTestKeyring(per, 1)
			specs := make([]shard.Spec, shards)
			for s := range specs {
				specs[s] = shard.Spec{Name: fmt.Sprintf("tenant-%d", s), N: per}
			}
			router, err := shard.NewRouter(specs, shard.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := transport.ServeTCPSharded(ln, router)
			b.Cleanup(srv.Stop)
			clients := make([]*ustor.Client, 0, totalClients)
			for s := range specs {
				for i := 0; i < per; i++ {
					link, err := transport.DialTCPShard(ln.Addr().String(), specs[s].Name, i)
					if err != nil {
						b.Fatal(err)
					}
					clients = append(clients, ustor.NewClient(i, ring, signers[i], link))
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for c, cl := range clients {
				ops := b.N / len(clients)
				if c < b.N%len(clients) {
					ops++
				}
				wg.Add(1)
				go func(c int, cl *ustor.Client, ops int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						if err := cl.Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
							b.Error(err)
							return
						}
					}
				}(c, cl, ops)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
			for _, cl := range clients {
				_ = cl.Close()
			}
		})
	}
}

// atomicAdd spreads RunParallel workers over clients.
func atomicAdd(p *int32, d int32) int32 {
	return atomic.AddInt32(p, d) - d
}
