// Quickstart: three clients collaborate through an untrusted storage
// server using the public faust API (the architecture of Figure 1 of the
// paper, wired in-process).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"faust"
)

func main() {
	// One service = one untrusted server + an offline client-to-client
	// channel + up to n clients.
	svc, err := faust.NewService(3)
	if err != nil {
		log.Fatalf("creating service: %v", err)
	}
	defer svc.Close()

	alice, err := svc.Client(0)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := svc.Client(1)
	if err != nil {
		log.Fatal(err)
	}
	carol, err := svc.Client(2)
	if err != nil {
		log.Fatal(err)
	}

	// Alice publishes a document revision in her register.
	ts, err := alice.Write([]byte("design-doc: revision 1"))
	if err != nil {
		log.Fatalf("alice write: %v", err)
	}
	fmt.Printf("alice wrote revision 1 (timestamp %d)\n", ts)

	// Bob and Carol read it. Register 0 belongs to Alice (client 0).
	for _, reader := range []*faust.Client{bob, carol} {
		val, rts, err := reader.Read(0)
		if err != nil {
			log.Fatalf("client %d read: %v", reader.ID(), err)
		}
		fmt.Printf("client %d read %q (timestamp %d)\n", reader.ID(), val, rts)
	}

	// Wait until the write is STABLE: guaranteed consistent with every
	// client, i.e. the execution prefix up to it is linearizable. The
	// guarantee holds even though nobody trusts the server.
	if err := alice.WaitStable(ts, 5*time.Second); err != nil {
		log.Fatalf("stability: %v", err)
	}
	fmt.Printf("alice's write is stable w.r.t. everyone; cut = %v\n", alice.StableCut())

	// No failures were (or could accurately be) reported.
	if failed, reason := alice.Failed(); failed {
		log.Fatalf("unexpected failure: %v", reason)
	}
	fmt.Println("no failures detected — the server behaved")
}
