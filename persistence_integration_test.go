package faust

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"

	"faust/internal/crypto"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// startPersistentTCP boots a persistent USTOR server over TCP from dir,
// recovering whatever state the directory holds.
func startPersistentTCP(t *testing.T, dir string, n int, opts store.Options) (*transport.TCPServer, *store.Persistent, string) {
	t.Helper()
	backend, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatalf("opening backend: %v", err)
	}
	ps, err := store.Open(ustor.NewServer(n), backend, opts)
	if err != nil {
		t.Fatalf("recovering server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return transport.ServeTCP(ln, ps), ps, ln.Addr().String()
}

func dialAll(t *testing.T, addr string, clients []*ustor.Client) {
	t.Helper()
	for i, c := range clients {
		link, err := transport.DialTCP(addr, i)
		if err != nil {
			t.Fatalf("client %d dial: %v", i, err)
		}
		c.Rebind(link)
	}
}

// TestPersistentServerKillRestartRecovery is the paper-meets-production
// scenario the store subsystem exists for: a FileBackend server killed
// mid-workload recovers its exact pre-crash MEM/SVER/L/P state, and the
// clients — who keep their own protocol state — resume and complete their
// workload with no fail signal.
func TestPersistentServerKillRestartRecovery(t *testing.T) {
	const n, rounds = 3, 5
	dir := t.TempDir()
	ring, signers := crypto.NewTestKeyring(n, 61)

	srv, ps, addr := startPersistentTCP(t, dir, n, store.Options{SnapshotEvery: 8})
	// Piggyback mode makes every client->server message synchronous (the
	// COMMIT rides the next SUBMIT, and SUBMITs await their REPLY), so
	// stopping the server between operations loses no in-flight messages
	// and the kill is a clean cut. With separate async COMMITs a kill can
	// swallow a sent-but-unprocessed COMMIT — which IS a rollback, and the
	// clients would rightly flag it; the rollback test below covers that
	// side.
	clients := make([]*ustor.Client, n)
	for i := range clients {
		clients[i] = ustor.NewClient(i, ring, signers[i], nil, ustor.WithCommitPiggyback())
	}
	dialAll(t, addr, clients)

	workload := func(phase string) {
		for r := 0; r < rounds; r++ {
			for i, c := range clients {
				if err := c.Write([]byte(fmt.Sprintf("%s-%d-%d", phase, i, r))); err != nil {
					t.Fatalf("%s: client %d write: %v", phase, i, err)
				}
			}
			for i, c := range clients {
				v, err := c.Read((i + 1) % n)
				if err != nil {
					t.Fatalf("%s: client %d read: %v", phase, i, err)
				}
				want := fmt.Sprintf("%s-%d-%d", phase, (i+1)%n, r)
				if string(v) != want {
					t.Fatalf("%s: client %d read %q, want %q", phase, i, v, want)
				}
			}
		}
	}

	workload("pre")
	// Kill the server mid-workload. Stop drains the dispatcher, so the
	// exported state is exactly what made it into the WAL; Close without a
	// snapshot makes the next boot take the full recovery path.
	srv.Stop()
	preCrash := ps.ExportState()
	if err := ps.Close(); err != nil {
		t.Fatalf("closing backend: %v", err)
	}

	srv2, ps2, addr2 := startPersistentTCP(t, dir, n, store.Options{SnapshotEvery: 8})
	t.Cleanup(srv2.Stop)
	if got := ps2.ExportState(); !bytes.Equal(got, preCrash) {
		t.Fatal("recovered state is not bit-identical to the pre-crash state")
	}
	fromSnap, replayed := ps2.Recovered()
	t.Logf("recovered: snapshot=%v, %d WAL records replayed", fromSnap, replayed)
	if !fromSnap && replayed == 0 {
		t.Fatal("recovery found nothing to recover; the workload was not persisted")
	}

	dialAll(t, addr2, clients)
	workload("post")
	for i, c := range clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d output fail against the honestly recovered server: %v", i, reason)
		}
	}
}

// TestPersistentServerRollbackDetected ties durability back to the
// fail-awareness guarantee: an attacker who truncates the WAL (rolling the
// server back to an older state) produces a perfectly valid-looking log,
// the server recovers without complaint — and the clients' Algorithm 1
// checks expose the rollback as a server fault on their next operations.
func TestPersistentServerRollbackDetected(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	ring, signers := crypto.NewTestKeyring(n, 62)

	// SnapshotEvery 0: everything stays in the WAL for the attacker to cut.
	srv, ps, addr := startPersistentTCP(t, dir, n, store.Options{})
	clients := make([]*ustor.Client, n)
	for i := range clients {
		clients[i] = ustor.NewClient(i, ring, signers[i], nil)
	}
	dialAll(t, addr, clients)

	for r := 0; r < 4; r++ {
		for i, c := range clients {
			if err := c.Write([]byte(fmt.Sprintf("w-%d-%d", i, r))); err != nil {
				t.Fatalf("client %d write: %v", i, err)
			}
		}
	}
	srv.Stop()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// The attack: drop the second half of the log at a record boundary.
	remaining, err := store.RollbackWAL(dir, 12)
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	t.Logf("attacker truncated WAL to %d records", remaining)

	// The server itself cannot tell: recovery succeeds silently.
	srv2, _, addr2 := startPersistentTCP(t, dir, n, store.Options{})
	t.Cleanup(srv2.Stop)
	dialAll(t, addr2, clients)

	failures := 0
	for i, c := range clients {
		err := c.Write([]byte(fmt.Sprintf("probe-%d", i)))
		var det *ustor.DetectionError
		if errors.As(err, &det) {
			t.Logf("client %d output fail: %v", i, det)
			failures++
		} else if err != nil {
			t.Fatalf("client %d: unexpected non-detection error: %v", i, err)
		}
	}
	if failures == 0 {
		t.Fatal("no client detected the rolled-back server: fail-awareness broken")
	}
}
