package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// Model-based property tests: random operation sequences through the
// full Store API, checked against a plain map[string][]byte model per
// namespace — the flat-directory era's semantics, which the tree must
// reproduce exactly — plus a tamper sweep proving that corrupting ANY
// tree node blob is detected before a value byte is returned.

// modelCluster is the fixture: n stores over one in-memory network and a
// shared blob store, with deliberately small fanouts and chunks so the
// sequences exercise splits, merges and multi-chunk values.
type modelCluster struct {
	blobs   *transport.MemBlobs
	net     *transport.Network
	clients []*ustor.Client
	stores  []*Store
}

func newModelCluster(t *testing.T, n int, opts ...Option) *modelCluster {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 1234)
	blobs := transport.NewMemBlobs()
	nw := transport.NewNetwork(n, ustor.NewServer(n), transport.WithBlobStore(blobs))
	t.Cleanup(nw.Stop)
	mc := &modelCluster{blobs: blobs, net: nw}
	for i := 0; i < n; i++ {
		c := ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
		ch, err := nw.BlobChannel()
		if err != nil {
			t.Fatal(err)
		}
		st, err := Open(c, ch, opts...)
		if err != nil {
			t.Fatal(err)
		}
		mc.clients = append(mc.clients, c)
		mc.stores = append(mc.stores, st)
	}
	return mc
}

// TestModelRandomOps drives random put/get/delete/cross-get/list
// sequences and asserts every result agrees with the map model.
func TestModelRandomOps(t *testing.T) {
	const n = 2
	for seed := int64(1); seed <= 3; seed++ {
		mc := newModelCluster(t, n,
			WithTreeFanout(4, 4), WithChunkSize(64))
		rng := rand.New(rand.NewSource(seed))
		models := make([]map[string][]byte, n)
		for i := range models {
			models[i] = map[string][]byte{}
		}
		value := func() []byte {
			v := make([]byte, rng.Intn(300)) // 0..4 chunks at 64 B
			rng.Read(v)
			return v
		}
		for step := 0; step < 400; step++ {
			c := rng.Intn(n)
			key := fmt.Sprintf("key-%02d", rng.Intn(40))
			switch rng.Intn(5) {
			case 0, 1: // put
				v := value()
				if err := mc.stores[c].Put(context.Background(), key, v); err != nil {
					t.Fatalf("seed %d step %d: put: %v", seed, step, err)
				}
				models[c][key] = v
			case 2: // own get
				got, err := mc.stores[c].Get(context.Background(), key)
				want, ok := models[c][key]
				checkModelRead(t, seed, step, "get", got, err, want, ok)
			case 3: // delete
				err := mc.stores[c].Delete(context.Background(), key)
				if _, ok := models[c][key]; ok {
					if err != nil {
						t.Fatalf("seed %d step %d: delete: %v", seed, step, err)
					}
					delete(models[c], key)
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("seed %d step %d: delete absent = %v, want ErrNotFound", seed, step, err)
				}
			case 4: // cross-get (authenticated read of the other namespace)
				owner := (c + 1) % n
				got, err := mc.stores[c].GetFrom(context.Background(), owner, key)
				want, ok := models[owner][key]
				checkModelRead(t, seed, step, "cross-get", got, err, want, ok)
			}
		}
		// Full-listing and full-content comparison, own and cross.
		for c := 0; c < n; c++ {
			wantKeys := make([]string, 0, len(models[c]))
			for k := range models[c] {
				wantKeys = append(wantKeys, k)
			}
			sort.Strings(wantKeys)
			gotKeys := mc.stores[c].Keys()
			if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
				t.Fatalf("seed %d: keys(%d) = %v, want %v", seed, c, gotKeys, wantKeys)
			}
			crossKeys, err := mc.stores[(c+1)%n].ListFrom(context.Background(), c)
			if err != nil || fmt.Sprint(crossKeys) != fmt.Sprint(wantKeys) {
				t.Fatalf("seed %d: ListFrom(%d) = %v, %v", seed, c, crossKeys, err)
			}
			for _, k := range wantKeys {
				if got, err := mc.stores[(c+1)%n].GetFrom(context.Background(), c, k); err != nil || !bytes.Equal(got, models[c][k]) {
					t.Fatalf("seed %d: final cross-get %d/%q: %v", seed, c, k, err)
				}
			}
		}
		// A reopened store recovers the exact namespace from the root
		// record and blobs.
		reopened, err := Open(mc.clients[0], mustChannel(t, mc.net), WithTreeFanout(4, 4), WithChunkSize(64))
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		for k, v := range models[0] {
			if got, err := reopened.Get(context.Background(), k); err != nil || !bytes.Equal(got, v) {
				t.Fatalf("seed %d: reopened get %q: %v", seed, k, err)
			}
		}
		if reopened.Len() != len(models[0]) {
			t.Fatalf("seed %d: reopened len = %d, want %d", seed, reopened.Len(), len(models[0]))
		}
	}
}

func checkModelRead(t *testing.T, seed int64, step int, op string, got []byte, err error, want []byte, ok bool) {
	t.Helper()
	if !ok {
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("seed %d step %d: %s absent = %v, want ErrNotFound", seed, step, op, err)
		}
		return
	}
	if err != nil {
		t.Fatalf("seed %d step %d: %s: %v", seed, step, op, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("seed %d step %d: %s returned wrong bytes (%d vs %d)", seed, step, op, len(got), len(want))
	}
}

func mustChannel(t *testing.T, nw *transport.Network) transport.BlobChannel {
	t.Helper()
	ch, err := nw.BlobChannel()
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestModelEveryNodeTamperDetected builds a multi-level namespace, then
// corrupts every tree node blob in turn (substituting a DIFFERENT valid
// node, not just garbage) and asserts a fresh reader rejects every read
// that traverses the corrupted node — and returns correct values once
// the node is restored.
func TestModelEveryNodeTamperDetected(t *testing.T) {
	mc := newModelCluster(t, 2, WithTreeFanout(4, 4), WithChunkSize(64))
	owner := mc.stores[0]
	model := map[string][]byte{}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, 100+i)
		if err := owner.Put(context.Background(), k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if owner.Height() < 3 {
		t.Fatalf("fixture too shallow: height %d, want >= 3", owner.Height())
	}

	// Walk the committed tree from the register's root record and
	// collect every node hash with one key each node is responsible for.
	res, err := mc.clients[1].ReadX(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := decodeRoot(res.Value)
	if err != nil {
		t.Fatal(err)
	}
	type target struct {
		hash []byte
		key  string // a key whose lookup path crosses this node
	}
	var targets []target
	var walk func(hash []byte)
	walk = func(hash []byte) {
		blob, err := mc.blobs.GetBlob(hash)
		if err != nil {
			t.Fatal(err)
		}
		n, err := decodeNode(blob)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, target{hash: hash, key: n.minKey()})
		for i := range n.children {
			walk(n.children[i].hash)
		}
	}
	walk(rr.RootHash)
	if len(targets) < 10 {
		t.Fatalf("fixture produced only %d nodes", len(targets))
	}

	// A convincing substitute: a syntactically valid leaf holding an
	// attacker-chosen value — not random garbage, so only the hash check
	// can catch it.
	forged := encodeNode(&node{leaf: true, entries: []entry{
		{Key: "key-000", Size: 4, Chunks: [][]byte{crypto.Hash([]byte("evil"))}},
	}})

	for i, tgt := range targets {
		orig, err := mc.blobs.GetBlob(tgt.hash)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.blobs.PutBlob(tgt.hash, forged); err != nil {
			t.Fatal(err)
		}
		// Fresh reader: cold caches, so the lookup must traverse the
		// corrupted node and reject it.
		reader, err := Open(mc.clients[1], mustChannel(t, mc.net), WithTreeFanout(4, 4), WithChunkSize(64))
		if err != nil {
			t.Fatal(err)
		}
		_, err = reader.GetFrom(context.Background(), 0, tgt.key)
		if err == nil {
			t.Fatalf("node %d/%d: read through a corrupted node succeeded", i, len(targets))
		}
		if !strings.Contains(err.Error(), "tampered tree node") && !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("node %d/%d: unexpected rejection reason: %v", i, len(targets), err)
		}
		if errors.Is(err, ErrNotFound) {
			t.Fatalf("node %d/%d: corruption misread as absence", i, len(targets))
		}
		// Restore; the same reader now gets the true value.
		if err := mc.blobs.PutBlob(tgt.hash, orig); err != nil {
			t.Fatal(err)
		}
		got, err := reader.GetFrom(context.Background(), 0, tgt.key)
		if err != nil || !bytes.Equal(got, model[tgt.key]) {
			t.Fatalf("node %d/%d: post-restore read: %v", i, len(targets), err)
		}
	}

	// The protocol client never halted: blob tampering is an integrity
	// error on unauthenticated bulk data, not fail-aware evidence.
	if failed, reason := mc.clients[1].Failed(); failed {
		t.Fatalf("blob tampering halted the protocol client: %v", reason)
	}
}
