package faust

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/offline"
	"faust/internal/shard"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// TestTCPEndToEndUSTOR runs the USTOR protocol over a real TCP loopback
// server, exactly as cmd/faust-server and cmd/faust-client deploy it.
func TestTCPEndToEndUSTOR(t *testing.T) {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 31)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCP(ln, ustor.NewServer(n))
	t.Cleanup(srv.Stop)

	clients := make([]*ustor.Client, n)
	for i := 0; i < n; i++ {
		link, err := transport.DialTCP(ln.Addr().String(), i)
		if err != nil {
			t.Fatalf("client %d dial: %v", i, err)
		}
		clients[i] = ustor.NewClient(i, ring, signers[i], link)
	}

	for round := 0; round < 5; round++ {
		for i, c := range clients {
			if err := c.Write([]byte(fmt.Sprintf("tcp-%d-%d", i, round))); err != nil {
				t.Fatalf("client %d write: %v", i, err)
			}
		}
		for i, c := range clients {
			v, err := c.Read((i + 1) % n)
			if err != nil {
				t.Fatalf("client %d read: %v", i, err)
			}
			want := fmt.Sprintf("tcp-%d-%d", (i+1)%n, round)
			if string(v) != want {
				t.Fatalf("client %d read %q, want %q", i, v, want)
			}
		}
	}
	for i, c := range clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d failed over TCP: %v", i, reason)
		}
	}
}

// TestTCPEndToEndFAUSTStability runs the full FAUST stack over TCP: the
// storage server on one listener and the offline channel as a TCP mesh —
// the deployment of cmd/faust-client with -listen/-peers. A write must
// become stable across the network.
func TestTCPEndToEndFAUSTStability(t *testing.T) {
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 32)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCP(ln, ustor.NewServer(n))
	t.Cleanup(srv.Stop)

	// Reserve mesh addresses.
	meshAddrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		meshAddrs[i] = l.Addr().String()
		listeners[i] = l
	}
	peers := map[int]string{0: meshAddrs[0], 1: meshAddrs[1]}
	for _, l := range listeners {
		_ = l.Close()
	}

	cfg := faustproto.Config{
		ProbeTimeout: 60 * time.Millisecond,
		PollInterval: 15 * time.Millisecond,
	}
	clients := make([]*faustproto.Client, n)
	for i := 0; i < n; i++ {
		link, err := transport.DialTCP(ln.Addr().String(), i)
		if err != nil {
			t.Fatal(err)
		}
		mesh, err := offline.ListenTCP(i, meshAddrs[i], peers, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = faustproto.NewClient(i, ring, signers[i], link, mesh,
			faustproto.WithConfig(cfg))
		clients[i].Start()
	}
	t.Cleanup(func() {
		for _, c := range clients {
			c.Stop()
		}
	})

	ts, err := clients[0].Write([]byte("over-the-wire"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	v, _, err := clients[1].Read(0)
	if err != nil || string(v) != "over-the-wire" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if err := clients[0].WaitStable(ts, 15*time.Second); err != nil {
		t.Fatalf("stability over TCP: %v", err)
	}
	for i, c := range clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d false positive over TCP: %v", i, reason)
		}
	}
}

// TestTCPMultiShardIsolation deploys a multi-tenant server: three shards
// (the default one plus two persistent tenants) behind one listener. It
// proves (1) shards are fully isolated — the same client identity writes
// different values into different shards and reads them back unmixed,
// (2) each persistent shard keeps its own data directory and recovers its
// own state across a restart, and (3) legacy single-tenant clients
// interoperate with v2 clients through the default shard.
func TestTCPMultiShardIsolation(t *testing.T) {
	const n = 2
	base := t.TempDir()
	ring, signers := crypto.NewTestKeyring(n, 34)

	newRouter := func() *shard.Router {
		r, err := shard.NewRouter([]shard.Spec{
			{Name: transport.DefaultShard, N: n},
			{Name: "alpha", N: n, Persist: true},
			{Name: "beta", N: n, Persist: true},
		}, shard.Options{BaseDir: base, StoreOptions: store.Options{SnapshotEvery: 8}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serve := func(r *shard.Router) (*transport.TCPServer, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return transport.ServeTCPSharded(ln, r), ln.Addr().String()
	}
	dialShard := func(addr, name string, id int) transport.Link {
		link, err := transport.DialTCPShard(addr, name, id)
		if err != nil {
			t.Fatalf("dial shard %q id %d: %v", name, id, err)
		}
		return link
	}

	router := newRouter()
	srv, addr := serve(router)

	// The same identity (0) lives in three shards at once; each instance
	// is an independent protocol participant.
	alpha0 := ustor.NewClient(0, ring, signers[0], dialShard(addr, "alpha", 0))
	beta0 := ustor.NewClient(0, ring, signers[0], dialShard(addr, "beta", 0))
	legacyLink, err := transport.DialTCP(addr, 0) // legacy v1 hello -> default shard
	if err != nil {
		t.Fatal(err)
	}
	def0 := ustor.NewClient(0, ring, signers[0], legacyLink)

	if err := alpha0.Write([]byte("alpha-secret")); err != nil {
		t.Fatalf("alpha write: %v", err)
	}
	if err := beta0.Write([]byte("beta-value")); err != nil {
		t.Fatalf("beta write: %v", err)
	}
	if err := def0.Write([]byte("default-value")); err != nil {
		t.Fatalf("legacy write: %v", err)
	}

	// Cross-shard isolation: register 0 of each shard holds that shard's
	// value, observed by the other group member.
	alpha1 := ustor.NewClient(1, ring, signers[1], dialShard(addr, "alpha", 1))
	beta1 := ustor.NewClient(1, ring, signers[1], dialShard(addr, "beta", 1))
	if v, err := alpha1.Read(0); err != nil || string(v) != "alpha-secret" {
		t.Fatalf("alpha read = %q, %v; want alpha-secret", v, err)
	}
	if v, err := beta1.Read(0); err != nil || string(v) != "beta-value" {
		t.Fatalf("beta read = %q, %v; want beta-value", v, err)
	}

	// Legacy/v2 interop on the default shard: a v2 client naming
	// "default" shares state with the legacy-hello client.
	def1 := ustor.NewClient(1, ring, signers[1], dialShard(addr, transport.DefaultShard, 1))
	if v, err := def1.Read(0); err != nil || string(v) != "default-value" {
		t.Fatalf("default-shard read = %q, %v; want default-value", v, err)
	}

	// Per-shard persistence layout: the two tenants have their own
	// directories; the non-persistent default shard has none.
	for _, name := range []string{"alpha", "beta"} {
		dir := filepath.Join(base, "shards", name)
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Fatalf("missing per-shard dir %s: %v", dir, err)
		}
	}
	if _, err := os.Stat(filepath.Join(base, "shards", transport.DefaultShard)); !os.IsNotExist(err) {
		t.Fatalf("in-memory default shard grew a data dir (err=%v)", err)
	}

	// Restart the whole server process: stop transport, close the router
	// (final snapshots), bring up a fresh router on the same directories.
	srv.Stop()
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	router2 := newRouter()
	srv2, addr2 := serve(router2)
	defer func() {
		srv2.Stop()
		_ = router2.Close()
	}()

	// The readers resume with their protocol state (Rebind) and must see
	// exactly their own shard's pre-restart value — recovery restored each
	// tenant from its own directory.
	alpha1.Rebind(dialShard(addr2, "alpha", 1))
	beta1.Rebind(dialShard(addr2, "beta", 1))
	if v, err := alpha1.Read(0); err != nil || string(v) != "alpha-secret" {
		t.Fatalf("alpha read after restart = %q, %v; want alpha-secret", v, err)
	}
	if v, err := beta1.Read(0); err != nil || string(v) != "beta-value" {
		t.Fatalf("beta read after restart = %q, %v; want beta-value", v, err)
	}

	for name, c := range map[string]*ustor.Client{
		"alpha0": alpha0, "alpha1": alpha1, "beta0": beta0, "beta1": beta1, "def0": def0, "def1": def1,
	} {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %s reported failure: %v", name, reason)
		}
	}
}

// TestTCPRejectedHandshakeNoInstantiation: a handshake refused for an
// out-of-range id must not leave a lazily created shard behind (goroutine,
// WAL directory, dispatcher) — the preflight runs before instantiation.
func TestTCPRejectedHandshakeNoInstantiation(t *testing.T) {
	router, err := shard.NewRouter(nil, shard.Options{Default: &shard.Spec{N: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeTCPSharded(ln, router)
	t.Cleanup(srv.Stop)

	if _, err := transport.DialTCPShard(ln.Addr().String(), "fresh", 5); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if got := router.OpenShards(); len(got) != 0 {
		t.Fatalf("rejected handshake instantiated shards: %+v", got)
	}
	link, err := transport.DialTCPShard(ln.Addr().String(), "fresh", 1)
	if err != nil {
		t.Fatalf("valid handshake after rejection: %v", err)
	}
	defer link.Close()
	if got := router.OpenShards(); len(got) != 1 || got[0].Name != "fresh" {
		t.Fatalf("OpenShards = %+v, want [fresh]", got)
	}
}
