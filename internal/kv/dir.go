package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"faust/internal/crypto"
)

// The directory is the per-client key→value index of the KV layer: a
// strictly key-sorted list of entries, each naming the value's size and
// the ordered content hashes of its chunks. The directory serializes
// with the wire package's append-codec idiom (fixed-width big-endian
// integers, length-prefixed byte strings, sticky-error reader) into a
// single blob; its deterministic Merkle root — together with the blob's
// content hash — is what the owner commits through its fail-aware
// register, so every Get anywhere inherits the protocol's guarantees.
//
// Canonical form is enforced on decode (strictly increasing keys, exact
// chunk-hash sizes, chunk count matching the value size): two byte
// strings decode to the same directory only if they are identical, so a
// server cannot present two encodings of "the same" directory with
// different hashes.

// entry is one key → value record. Chunks holds the content hashes of
// the value's chunks in order; a zero-length value has no chunks.
type entry struct {
	Key    string
	Size   int64
	Chunks [][]byte
}

// digest returns the entry's leaf digest for the Merkle tree:
// H(0x00 || len(key) || key || size || nchunks || chunk hashes). The
// leading domain byte separates leaves from interior nodes.
func (e *entry) digest() []byte {
	var tmp [8]byte
	buf := make([]byte, 0, 1+4+len(e.Key)+8+4+len(e.Chunks)*crypto.HashSize)
	buf = append(buf, 0x00)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(e.Key)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, e.Key...)
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Size))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(e.Chunks)))
	buf = append(buf, tmp[:4]...)
	for _, h := range e.Chunks {
		buf = append(buf, h...)
	}
	return crypto.Hash(buf)
}

// directory is the sorted entry list. The zero value is the empty
// directory (the state of a register that was never written).
type directory struct {
	entries []entry
}

// find returns the index of key and whether it is present; absent keys
// return the insertion index.
func (d *directory) find(key string) (int, bool) {
	i := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].Key >= key })
	return i, i < len(d.entries) && d.entries[i].Key == key
}

// put inserts or replaces the entry for e.Key, keeping the sort order.
func (d *directory) put(e entry) {
	i, ok := d.find(e.Key)
	if ok {
		d.entries[i] = e
		return
	}
	d.entries = append(d.entries, entry{})
	copy(d.entries[i+1:], d.entries[i:])
	d.entries[i] = e
}

// remove deletes the entry for key, reporting whether it existed.
func (d *directory) remove(key string) bool {
	i, ok := d.find(key)
	if !ok {
		return false
	}
	d.entries = append(d.entries[:i], d.entries[i+1:]...)
	return true
}

// keys returns the sorted key list.
func (d *directory) keys() []string {
	out := make([]string, len(d.entries))
	for i := range d.entries {
		out[i] = d.entries[i].Key
	}
	return out
}

// totalBytes sums the value sizes.
func (d *directory) totalBytes() int64 {
	var total int64
	for i := range d.entries {
		total += d.entries[i].Size
	}
	return total
}

// merkleRoot computes the deterministic Merkle root over the entry leaf
// digests in key order: interior nodes are H(0x01 || left || right), an
// odd node is promoted unchanged, and the empty directory has a fixed
// domain-separated root.
func (d *directory) merkleRoot() []byte {
	if len(d.entries) == 0 {
		return crypto.Hash([]byte("faust-kv-empty-directory"))
	}
	level := make([][]byte, len(d.entries))
	for i := range d.entries {
		level[i] = d.entries[i].digest()
	}
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				break
			}
			next = append(next, crypto.Hash([]byte{0x01}, level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

// Codec. Same conventions as package wire: big-endian fixed-width
// integers, u32 length prefixes. Limits keep a malicious blob from
// forcing huge allocations before validation fails.

const (
	dirMagic  = "FKVD1"
	rootMagic = "FKVR1"

	// MaxKeyLen bounds a key's length in bytes.
	MaxKeyLen = 1 << 10
	// maxDirEntries bounds the decoded directory size.
	maxDirEntries = 1 << 20
	// maxChunksPerValue bounds a single value's chunk list.
	maxChunksPerValue = 1 << 16
)

var errCodec = errors.New("kv: malformed encoding")

// EncodedEntrySize returns the encoded size in bytes of one directory
// entry for a key of the given length and chunk count. Together with
// the capacity note on Put it lets applications plan namespace sizes
// against ErrNamespaceFull (the whole directory must stay within
// transport.MaxBlobSize).
func EncodedEntrySize(keyLen, nchunks int) int {
	return 4 + keyLen + 8 + 4 + nchunks*crypto.HashSize
}

// encodedEntrySize is the internal form taking the key itself.
func encodedEntrySize(key string, nchunks int) int {
	return EncodedEntrySize(len(key), nchunks)
}

// encodedDirSize returns the exact size encodeDirectory would produce,
// without building it. Put uses it for the capacity check before any
// upload starts.
func encodedDirSize(d *directory) int {
	size := len(dirMagic) + 4
	for i := range d.entries {
		size += encodedEntrySize(d.entries[i].Key, len(d.entries[i].Chunks))
	}
	return size
}

// encodeDirectory renders the canonical directory blob.
func encodeDirectory(d *directory) []byte {
	buf := make([]byte, 0, encodedDirSize(d))
	var tmp [8]byte
	buf = append(buf, dirMagic...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(d.entries)))
	buf = append(buf, tmp[:4]...)
	for i := range d.entries {
		e := &d.entries[i]
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(e.Key)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, e.Key...)
		binary.BigEndian.PutUint64(tmp[:], uint64(e.Size))
		buf = append(buf, tmp[:]...)
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(e.Chunks)))
		buf = append(buf, tmp[:4]...)
		for _, h := range e.Chunks {
			buf = append(buf, h...)
		}
	}
	return buf
}

// reader decodes with sticky error handling, mirroring wire.reader.
type reader struct {
	data []byte
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errCodec
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.data) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.data)
	r.data = r.data[4:]
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil || len(r.data) < 8 {
		r.fail()
		return 0
	}
	v := int64(binary.BigEndian.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.data) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[:n])
	r.data = r.data[n:]
	return out
}

// decodeDirectory parses and validates a directory blob: canonical order
// (strictly increasing keys), hash-sized chunk digests, and chunk counts
// consistent with the declared value sizes.
func decodeDirectory(data []byte) (*directory, error) {
	if len(data) < len(dirMagic) || string(data[:len(dirMagic)]) != dirMagic {
		return nil, fmt.Errorf("%w: bad directory magic", errCodec)
	}
	r := &reader{data: data[len(dirMagic):]}
	n := r.u32()
	if r.err != nil || n > maxDirEntries {
		return nil, fmt.Errorf("%w: directory entry count", errCodec)
	}
	d := &directory{entries: make([]entry, 0, n)}
	prev := ""
	for i := uint32(0); i < n; i++ {
		klen := r.u32()
		if r.err != nil || klen == 0 || klen > MaxKeyLen {
			return nil, fmt.Errorf("%w: key length", errCodec)
		}
		key := string(r.take(int(klen)))
		size := r.i64()
		nchunks := r.u32()
		if r.err != nil || size < 0 || nchunks > maxChunksPerValue {
			return nil, fmt.Errorf("%w: entry shape", errCodec)
		}
		if i > 0 && key <= prev {
			return nil, fmt.Errorf("%w: directory keys not strictly sorted", errCodec)
		}
		prev = key
		if (size == 0) != (nchunks == 0) {
			return nil, fmt.Errorf("%w: chunk count %d inconsistent with size %d", errCodec, nchunks, size)
		}
		chunks := make([][]byte, nchunks)
		for j := range chunks {
			chunks[j] = r.take(crypto.HashSize)
		}
		if r.err != nil {
			return nil, r.err
		}
		d.entries = append(d.entries, entry{Key: key, Size: size, Chunks: chunks})
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCodec, len(r.data))
	}
	return d, nil
}

// rootRecord is the value the owner writes into its fail-aware register:
// everything a reader needs to authenticate the directory blob. Root is
// the directory's Merkle root, DirHash the content hash of its encoded
// blob, Gen a monotone mutation counter, and the counts are convenience
// metadata (validated against the fetched directory).
type rootRecord struct {
	Gen        uint64
	NumEntries uint32
	TotalBytes int64
	DirHash    []byte
	Root       []byte
}

// encodeRoot renders the register value.
func encodeRoot(rr *rootRecord) []byte {
	buf := make([]byte, 0, len(rootMagic)+8+4+8+2*crypto.HashSize)
	var tmp [8]byte
	buf = append(buf, rootMagic...)
	binary.BigEndian.PutUint64(tmp[:], rr.Gen)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], rr.NumEntries)
	buf = append(buf, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(rr.TotalBytes))
	buf = append(buf, tmp[:]...)
	buf = append(buf, rr.DirHash...)
	buf = append(buf, rr.Root...)
	return buf
}

// decodeRoot parses a register value as a KV root record.
func decodeRoot(data []byte) (*rootRecord, error) {
	want := len(rootMagic) + 8 + 4 + 8 + 2*crypto.HashSize
	if len(data) != want || string(data[:len(rootMagic)]) != rootMagic {
		return nil, fmt.Errorf("%w: register does not hold a KV root record", errCodec)
	}
	r := &reader{data: data[len(rootMagic):]}
	rr := &rootRecord{}
	rr.Gen = uint64(r.i64())
	rr.NumEntries = r.u32()
	rr.TotalBytes = r.i64()
	rr.DirHash = r.take(crypto.HashSize)
	rr.Root = r.take(crypto.HashSize)
	if r.err != nil {
		return nil, r.err
	}
	return rr, nil
}

// verifyDirectory checks a fetched directory blob against its root
// record: content hash, Merkle root, and the metadata counts. It returns
// the parsed directory on success.
func verifyDirectory(rr *rootRecord, blob []byte) (*directory, error) {
	if !bytes.Equal(crypto.Hash(blob), rr.DirHash) {
		return nil, errors.New("kv: directory blob digest mismatch (tampered directory)")
	}
	d, err := decodeDirectory(blob)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(d.merkleRoot(), rr.Root) {
		return nil, errors.New("kv: directory Merkle root mismatch (forged directory)")
	}
	if uint32(len(d.entries)) != rr.NumEntries || d.totalBytes() != rr.TotalBytes {
		return nil, errors.New("kv: directory metadata mismatch")
	}
	return d, nil
}
