// Faust-demo is a self-contained narrative walkthrough of the paper: an
// honest phase (linearizable collaboration with stability notifications),
// the exact Figure 3 attack (undetectable by USTOR, by design), and a
// forking attack caught by FAUST's offline exchange.
//
// Run with:
//
//	go run ./cmd/faust-demo
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"faust"
	"faust/internal/byzantine"
	"faust/internal/consistency"
	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/history"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/version"
)

func main() {
	fmt.Println("FAUST — Fail-Aware Untrusted Storage (Cachin, Keidar, Shraer; DSN 2009)")
	fmt.Println()
	actOne()
	actTwo()
	actThree()
}

// render shows a register value, with the paper's bottom for nil.
func render(v []byte) string {
	if v == nil {
		return "⊥"
	}
	return fmt.Sprintf("%q", v)
}

// actOne: the common case. The server is correct; the service is
// linearizable, wait-free, and operations become stable.
func actOne() {
	fmt.Println("ACT 1 — honest server: linearizable, wait-free, eventually stable")
	svc := faust.NewTestService(3, 1,
		faust.WithProbeTimeout(80*time.Millisecond),
		faust.WithPollInterval(20*time.Millisecond))
	defer svc.Close()
	alice, _ := svc.Client(0)
	bob, _ := svc.Client(1)
	if _, err := svc.Client(2); err != nil { // carol idles, but is online
		log.Fatal(err)
	}

	ts, err := alice.Write([]byte("meeting notes v1"))
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := bob.Read(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  alice wrote; bob read %q\n", v)
	if err := alice.WaitStable(ts, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  alice's write is stable w.r.t. all clients: cut=%v\n", alice.StableCut())
	fmt.Println()
}

// actTwo: Figure 3. The server hides a completed write from a reader,
// then reveals it. USTOR accepts the execution — it is weak
// fork-linearizable, and the protocol is accurate — but the resulting
// versions are forked forever.
func actTwo() {
	fmt.Println("ACT 2 — the Figure 3 attack: stale read, invisible to USTOR")
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 2)
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewNetwork(n, server)
	defer net.Stop()
	c0 := ustor.NewClient(0, ring, signers[0], net.ClientLink(0))
	c1 := ustor.NewClient(1, ring, signers[1], net.ClientLink(1))

	rec := history.NewRecorder(n)
	p := rec.Invoke(0, history.OpWrite, 0, []byte("u"))
	if _, err := c0.WriteX(context.Background(), []byte("u")); err != nil {
		log.Fatal(err)
	}
	p.Complete(nil, 1)
	fmt.Println("  client 0: write(X0, \"u\") — completed")

	p = rec.Invoke(1, history.OpRead, 0, nil)
	r1, err := c1.ReadX(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	p.Complete(r1.Value, r1.Timestamp)
	fmt.Printf("  client 1: read(X0) -> %s   (the server pretends the write never happened)\n", render(r1.Value))

	_ = server.Replay(0, 0, 1) // the attacker now reveals the write to branch 1
	p = rec.Invoke(1, history.OpRead, 0, nil)
	r2, err := c1.ReadX(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	p.Complete(r2.Value, r2.Timestamp)
	fmt.Printf("  client 1: read(X0) -> %s  (now the server reveals it)\n", render(r2.Value))

	h := rec.History()
	lin := consistency.CheckLinearizable(h)
	forkLin := consistency.CheckForkLinearizable(h, 10)
	weak := consistency.CheckWeakForkLinearizable(h, 10)
	fmt.Printf("  history classification: linearizable=%v fork-linearizable=%v weak-fork-linearizable=%v\n",
		lin.OK, forkLin.OK, weak.OK)
	fmt.Printf("  clients' versions comparable: %v — the fork is permanent and FAUST will catch it\n",
		version.Comparable(c0.Version(), c1.Version()))
	fmt.Println()
}

// actThree: the full FAUST stack against a forking server. The offline
// exchange detects the fork and all clients output fail with verifiable
// evidence.
func actThree() {
	fmt.Println("ACT 3 — FAUST exposes the forking server")
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 3)
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewNetwork(n, server)
	defer net.Stop()
	hub := offline.NewHub(n)
	defer hub.Stop()
	cfg := faustproto.Config{ProbeTimeout: 60 * time.Millisecond, PollInterval: 15 * time.Millisecond}
	clients := make([]*faustproto.Client, n)
	for i := 0; i < n; i++ {
		clients[i] = faustproto.NewClient(i, ring, signers[i], net.ClientLink(i), hub.Endpoint(i),
			faustproto.WithConfig(cfg))
		clients[i].Start()
		defer clients[i].Stop()
	}
	start := time.Now()
	for i, c := range clients {
		if _, err := c.Write([]byte(fmt.Sprintf("branch-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	for i, c := range clients {
		if err := c.WaitFail(30 * time.Second); err != nil {
			log.Fatalf("client %d: %v", i, err)
		}
	}
	fmt.Printf("  fork detected by every client %v after the writes\n", time.Since(start).Round(time.Millisecond))
	_, reason := clients[0].Failed()
	fmt.Printf("  evidence: %v\n", reason)
	fmt.Println()
	fmt.Println("The server was caught. Recovery (out of scope of the protocol) can now begin.")
}
