// Package ustor implements USTOR, the weak fork-linearizable untrusted
// storage protocol of Section 5 of the paper (Algorithms 1 and 2).
//
// USTOR emulates n single-writer multi-reader registers X_0..X_{n-1} on an
// untrusted server. When the server is correct the protocol is
// linearizable and wait-free; every operation takes a single round of
// message exchange (SUBMIT -> REPLY) plus an asynchronous COMMIT that only
// expedites garbage collection at the server. When the server is faulty,
// clients either detect an inconsistency (output fail and halt) or their
// views remain weak fork-linearizable — at which point the FAUST layer
// (package faustproto) guarantees eventual detection through offline
// client-to-client version exchange.
package ustor

import (
	"fmt"
	"sync"

	"faust/internal/version"
	"faust/internal/wire"
)

// Server is the correct USTOR server of Algorithm 2. It is a pure state
// machine driven by HandleSubmit / HandleCommit; package transport
// serializes the calls, matching the paper's atomic event handlers. The
// server keeps no secrets and verifies nothing — all integrity guarantees
// come from the client-side checks.
type Server struct {
	mu sync.Mutex

	n    int
	mem  []wire.MemEntry      // MEM: last timestamp, value, DATA-signature per client
	c    int                  // client who committed the last operation in the schedule
	sver []wire.SignedVersion // SVER: last version and COMMIT-signature per client
	l    []wire.Invocation    // L: invocation tuples of concurrent (uncommitted) operations
	p    [][]byte             // P: PROOF-signatures per client
}

// compile-time interface check lives in transport tests; avoid the import
// cycle here by asserting locally against the method set.
var _ interface {
	HandleSubmit(from int, s *wire.Submit) *wire.Reply
	HandleCommit(from int, c *wire.Commit)
} = (*Server)(nil)

// NewServer creates a correct server for n clients. Initially every
// register holds bottom, every version is (0^n, bottom^n), and the "last
// committed" pointer c refers to client 0, whose initial version is zero —
// exactly the initial state of Algorithm 2.
func NewServer(n int) *Server {
	s := &Server{
		n:    n,
		mem:  make([]wire.MemEntry, n),
		sver: make([]wire.SignedVersion, n),
		p:    make([][]byte, n),
	}
	for i := 0; i < n; i++ {
		s.sver[i] = wire.ZeroSignedVersion(n)
	}
	return s
}

// N returns the number of clients.
func (s *Server) N() int { return s.n }

// HandleSubmit implements Algorithm 2 lines 107-116. It updates MEM,
// builds the REPLY from the pre-append state of L, and appends the new
// invocation tuple afterwards, so an operation's own tuple is never in its
// REPLY. A piggybacked COMMIT (Section 5 optimization) is processed
// first, exactly as if it had arrived as its own message.
func (s *Server) HandleSubmit(from int, m *wire.Submit) *wire.Reply {
	if m.Piggyback != nil {
		s.HandleCommit(from, m.Piggyback)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 || from >= s.n {
		return nil
	}

	var reply *wire.Reply
	if m.Inv.Op == wire.OpRead {
		j := m.Inv.Reg
		if j < 0 || j >= s.n {
			return nil
		}
		// Reads refresh the timestamp and DATA-signature but keep the
		// stored value (line 110).
		s.mem[from] = wire.MemEntry{T: m.T, Value: s.mem[from].Value, DataSig: m.DataSig}
		reply = &wire.Reply{
			IsRead: true,
			C:      s.c,
			CVer:   s.sver[s.c].Clone(),
			JVer:   s.sver[j].Clone(),
			Mem:    s.mem[j].Clone(),
			L:      s.cloneL(),
			P:      s.cloneP(),
		}
	} else {
		s.mem[from] = wire.MemEntry{T: m.T, Value: m.Value, DataSig: m.DataSig}
		reply = &wire.Reply{
			IsRead: false,
			C:      s.c,
			CVer:   s.sver[s.c].Clone(),
			L:      s.cloneL(),
			P:      s.cloneP(),
		}
	}
	s.l = append(s.l, m.Inv)
	return reply
}

// HandleCommit implements Algorithm 2 lines 117-123. When the committed
// version exceeds the current maximum, the committer becomes the new
// schedule head and its tuple — plus all earlier tuples — leave L.
func (s *Server) HandleCommit(from int, m *wire.Commit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 || from >= s.n {
		return
	}
	vc := s.sver[s.c].Ver
	if version.VectorLess(vc.V, m.Ver.V) {
		s.c = from
		for idx := len(s.l) - 1; idx >= 0; idx-- {
			if s.l[idx].Client == from {
				s.l = append([]wire.Invocation(nil), s.l[idx+1:]...)
				break
			}
		}
	}
	s.sver[from] = wire.SignedVersion{
		Committer: from,
		Ver:       m.Ver.Clone(),
		Sig:       append([]byte(nil), m.CommitSig...),
	}
	s.p[from] = append([]byte(nil), m.ProofSig...)
}

// ExportState serializes the server's complete state (MEM, c, SVER, L, P)
// with the canonical wire.ServerState encoding. Together with
// RestoreState it makes the server snapshottable: because the server is a
// deterministic state machine, restoring a snapshot and replaying the
// SUBMIT/COMMIT messages received afterwards reproduces the state exactly.
// Package store builds its WAL + snapshot persistence on this pair.
func (s *Server) ExportState() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return wire.EncodeServerState(&wire.ServerState{
		N:    s.n,
		C:    s.c,
		Mem:  s.mem,
		Sver: s.sver,
		L:    s.l,
		P:    s.p,
	})
}

// RestoreState replaces the server's state with a previously exported one.
// The snapshot's dimension must match the server's n.
func (s *Server) RestoreState(data []byte) error {
	st, err := wire.DecodeServerState(data)
	if err != nil {
		return fmt.Errorf("ustor: decoding server state: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.N != s.n {
		return fmt.Errorf("ustor: snapshot is for %d clients, server has %d", st.N, s.n)
	}
	s.mem = st.Mem
	s.c = st.C
	s.sver = st.Sver
	s.l = st.L
	s.p = st.P
	return nil
}

// PendingOps returns the current length of L, i.e. the number of
// submitted-but-uncommitted operations the server tracks. Exposed for
// tests and the garbage-collection experiment.
func (s *Server) PendingOps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.l)
}

// cloneL snapshots L. REPLY messages must not alias server state: the
// in-memory transport hands the same object to the client.
func (s *Server) cloneL() []wire.Invocation {
	out := make([]wire.Invocation, len(s.l))
	for i, inv := range s.l {
		out[i] = inv
		out[i].SubmitSig = append([]byte(nil), inv.SubmitSig...)
	}
	return out
}

// cloneP snapshots P.
func (s *Server) cloneP() [][]byte {
	out := make([][]byte, len(s.p))
	for i, sig := range s.p {
		if sig != nil {
			out[i] = append([]byte(nil), sig...)
		}
	}
	return out
}
