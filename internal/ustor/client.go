package ustor

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/transport"
	"faust/internal/version"
	"faust/internal/wire"
)

// Span names of the client-side operation stages. Static constants: the
// record path never formats (hotpathalloc).
const (
	spanWrite  = "write"
	spanRead   = "read"
	spanSign   = "sign"
	spanRPC    = "rpc"
	spanVerify = "verify"
)

// ErrHalted is returned by every operation after the client has detected
// server misbehavior and halted ("outputs fail_i ... and halts").
var ErrHalted = errors.New("ustor: client halted after failure detection")

// DetectionError reports which of Algorithm 1's checks exposed the server.
// It is the payload of the fail_i output action.
type DetectionError struct {
	Client int    // detecting client
	Check  string // which protocol check failed, in the paper's terms
}

// Error implements error.
func (e *DetectionError) Error() string {
	return fmt.Sprintf("ustor: client %d detected faulty server: %s", e.Client, e.Check)
}

// OpResult is the extended part of a completed operation's response: the
// version the operation committed (with its COMMIT-signature) and the
// operation's timestamp t = V[i]. The FAUST layer consumes both.
type OpResult struct {
	Version   wire.SignedVersion
	Timestamp int64
}

// ReadResult extends OpResult for reads with the returned register value
// and the writer's signed version SVER[j] from the REPLY.
// WriterTimestamp is the timestamp t_j of the returned value — the
// reply's MEM[j].T, which the line 51 check pins to V[j] as of this
// operation (0 for a never-written register). Cache layers use it to
// tag values with exactly the version they were read at, immune to
// concurrent operations on the same client.
type ReadResult struct {
	OpResult
	Value           []byte
	WriterVersion   wire.SignedVersion
	WriterTimestamp int64
}

// Client is the USTOR client of Algorithm 1. A Client executes operations
// sequentially (concurrent calls are serialized internally, matching the
// well-formedness assumption of the model). It is wait-free as long as
// the server responds: an operation performs exactly one SUBMIT -> REPLY
// round and never waits for other clients.
type Client struct {
	id     int
	n      int
	signer *crypto.Signer
	ring   *crypto.Keyring
	onFail func(error)
	events *obs.EventLog // protocol event sink for detections

	// The link has its own lock: Close must be callable while an
	// operation blocks in link.Recv holding c.mu, and Rebind must not
	// race either of them.
	linkMu sync.Mutex
	link   transport.Link

	mu        sync.Mutex
	xbar      []byte          // hash of the most recently written value; nil = bottom
	ver       version.Version // (V_i, M_i)
	failed    bool
	reason    error
	piggyback bool
	pending   *wire.Commit // deferred COMMIT awaiting the next SUBMIT

	// Scratch buffers for signature payloads and value hashes, reused
	// across operations (guarded by mu). They keep the steady-state
	// operation path free of per-call allocations; everything that escapes
	// into a message or result is still freshly allocated or cloned.
	payload []byte
	hash    []byte

	// One-entry memo of the last COMMIT-signature known to verify:
	// (committer, canonical payload, signature). Ed25519 verification is a
	// pure function, so re-presenting byte-identical inputs needs no second
	// verification. In steady state the server's SVER[c] is the version
	// this client just committed (memoized when it signs) or the one it
	// verified on the previous reply, which removes a full verify from the
	// hot path without weakening any check: one differing byte falls back
	// to real verification.
	memoC       int
	memoPayload []byte
	memoSig     []byte
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithFailHandler registers a callback invoked exactly once when the
// client detects server misbehavior (the fail_i output action). The
// callback runs on the operation's goroutine before the operation returns.
func WithFailHandler(f func(error)) ClientOption {
	return func(c *Client) { c.onFail = f }
}

// WithEventLog redirects the client's protocol events (fork-detected,
// rollback-detected) from the process-wide default log to the given one.
// Tests use it to observe one client cluster in isolation; the FAUST layer
// uses it to gather USTOR detections and its own notifications in a single
// log.
func WithEventLog(l *obs.EventLog) ClientOption {
	return func(c *Client) { c.events = l }
}

// WithCommitPiggyback enables the Section 5 optimization: instead of
// sending a separate COMMIT message after each operation, the COMMIT is
// attached to the next operation's SUBMIT, halving the client's message
// count. The protocol is unchanged otherwise — the client's operations
// merely stay in the server's concurrent list L a little longer. Call
// Flush before abandoning the client to deliver the final COMMIT.
func WithCommitPiggyback() ClientOption {
	return func(c *Client) { c.piggyback = true }
}

// NewClient creates the USTOR client for client index id out of ring.N()
// clients, communicating over link.
func NewClient(id int, ring *crypto.Keyring, signer *crypto.Signer, link transport.Link, opts ...ClientOption) *Client {
	c := &Client{
		id:     id,
		n:      ring.N(),
		signer: signer,
		ring:   ring,
		link:   link,
		ver:    version.New(ring.N()),
		memoC:  -1,
		events: obs.Default().Events(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ID returns the client index.
func (c *Client) ID() int { return c.id }

// N returns the number of clients.
func (c *Client) N() int { return c.n }

// Failed reports whether the client has detected server misbehavior, and
// the detection error if so.
func (c *Client) Failed() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed, c.reason
}

// Version returns the client's current version (a copy).
func (c *Client) Version() version.Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver.Clone()
}

// ObservedTimestamp returns V[j] of the client's current version: the
// timestamp of the last operation by client j that this client has
// observed (through replies and their concurrent-operation lists).
// Unlike Version it copies nothing — cache layers consult it on their
// hot path. Out-of-range indices return 0.
func (c *Client) ObservedTimestamp(j int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j < 0 || j >= c.n {
		return 0
	}
	return c.ver.V[j]
}

// getLink returns the current transport link.
func (c *Client) getLink() transport.Link {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	return c.link
}

// Close closes the current transport link, unblocking any pending
// operation.
func (c *Client) Close() error { return c.getLink().Close() }

// Rebind replaces the client's transport link, keeping all protocol state
// (version, xbar, deferred piggyback COMMIT). Use it to reconnect after a
// server restart: the client resumes exactly where it left off, and its
// line 36 check then verifies that the server really recovered every
// operation the client committed — a rolled-back server is detected as
// faulty on the next operation. The caller is responsible for closing the
// old link.
//
// CAVEAT: Rebind requires that no operation is in flight. It swaps the
// link pointer but does not interrupt an operation already blocked in
// Recv on the old link — that operation keeps waiting on the dead link
// (or fails with its transport error) and its REPLY is never re-requested
// on the new one. Sequence a reconnect as: let the failing operation
// return its error, Close the old link, Rebind, then retry the operation.
// Calling Rebind concurrently with Write/Read is a programming error, not
// a recoverable race.
func (c *Client) Rebind(link transport.Link) {
	c.linkMu.Lock()
	defer c.linkMu.Unlock()
	c.link = link
}

// Write implements write_i(X_i, x) (Algorithm 1 lines 8-10).
func (c *Client) Write(x []byte) error {
	_, err := c.WriteX(context.Background(), x)
	return err
}

// Read implements read_i(X_j) (Algorithm 1 lines 21-23).
//
// # Empty-register semantics
//
// A register whose owner has never completed a write reads as a nil
// value with a nil error — the paper's bottom, not a failure. The same
// holds after the owner explicitly writes nil (writing bottom is legal);
// the two cases are distinguishable through ReadX: a never-written
// register comes with the zero WriterVersion, an explicit nil write with
// a non-zero one. A nil value and a present-but-empty value ([]byte{})
// are distinct: Write(nil) stores bottom, Write([]byte{}) stores an
// empty value, and reads return exactly what was written. Layers above
// rely on this bootstrap contract — package kv treats a nil register as
// the empty key directory.
func (c *Client) Read(j int) ([]byte, error) {
	res, err := c.ReadX(context.Background(), j)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// WriteX is the extended write (Algorithm 1 lines 11-20): identical to
// Write but additionally returns the committed version. ctx carries the
// operation's trace context: when absent (and tracing is on) the write
// becomes a new trace root, and the context travels inside the SUBMIT —
// covered by the SUBMIT-signature — so server-side spans join it.
func (c *Client) WriteX(ctx context.Context, x []byte) (OpResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return OpResult{}, ErrHalted
	}
	ctx, op := trace.Start(ctx, spanWrite)
	defer op.End()
	tc := transport.WireTrace(ctx)
	start := obs.StartTimer()
	defer func() { cmWriteNs.ObserveSinceExemplar(start, traceExemplar(tc)) }()

	_, hs := trace.Child(ctx, spanSign)
	t := c.ver.V[c.id] + 1
	if x == nil {
		c.xbar = nil
	} else {
		c.hash = crypto.HashInto(c.hash[:0], x)
		c.xbar = c.hash
	}
	c.payload = wire.AppendSubmitPayload(c.payload[:0], wire.OpWrite, c.id, t, tc)
	sigma := c.signer.Sign(crypto.DomainSubmit, c.payload)
	c.payload = wire.AppendDataPayload(c.payload[:0], t, c.xbar)
	delta := c.signer.Sign(crypto.DomainData, c.payload)
	hs.End()

	submit := &wire.Submit{
		T:         t,
		Inv:       wire.Invocation{Client: c.id, Op: wire.OpWrite, Reg: c.id, SubmitSig: sigma, Trace: tc},
		Value:     x,
		DataSig:   delta,
		Piggyback: c.takePending(),
	}
	_, hrpc := trace.Child(ctx, spanRPC)
	//faustlint:ignore lockheldio c.mu is the USTOR session lock; Algorithm 1 serializes a client's own SUBMIT..COMMIT round, and wait-freedom is across clients, not within one
	if err := c.getLink().Send(submit); err != nil {
		hrpc.End()
		return OpResult{}, fmt.Errorf("ustor: submitting write: %w", err)
	}

	reply, err := c.recvReply(false)
	hrpc.End()
	if err != nil {
		return OpResult{}, err
	}
	_, hv := trace.Child(ctx, spanVerify)
	err = c.updateVersion(reply)
	hv.End()
	if err != nil {
		return OpResult{}, err
	}
	sv, err := c.commit()
	if err != nil {
		return OpResult{}, err
	}
	return OpResult{Version: sv, Timestamp: c.ver.V[c.id]}, nil
}

// ReadX is the extended read (Algorithm 1 lines 24-33): identical to Read
// but additionally returns the committed version and the writer's signed
// version.
//
// Empty-register semantics match Read: a never-written register yields
// Value == nil, err == nil, and a WriterVersion whose Ver.IsZero() —
// never an error. See Read for the nil / empty / never-written
// distinctions.
func (c *Client) ReadX(ctx context.Context, j int) (ReadResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return ReadResult{}, ErrHalted
	}
	if j < 0 || j >= c.n {
		return ReadResult{}, fmt.Errorf("ustor: register %d out of range [0,%d)", j, c.n)
	}
	ctx, op := trace.Start(ctx, spanRead)
	defer op.End()
	tc := transport.WireTrace(ctx)
	start := obs.StartTimer()
	defer func() { cmReadNs.ObserveSinceExemplar(start, traceExemplar(tc)) }()

	_, hs := trace.Child(ctx, spanSign)
	t := c.ver.V[c.id] + 1
	c.payload = wire.AppendSubmitPayload(c.payload[:0], wire.OpRead, j, t, tc)
	sigma := c.signer.Sign(crypto.DomainSubmit, c.payload)
	c.payload = wire.AppendDataPayload(c.payload[:0], t, c.xbar)
	delta := c.signer.Sign(crypto.DomainData, c.payload)
	hs.End()

	submit := &wire.Submit{
		T:         t,
		Inv:       wire.Invocation{Client: c.id, Op: wire.OpRead, Reg: j, SubmitSig: sigma, Trace: tc},
		DataSig:   delta,
		Piggyback: c.takePending(),
	}
	_, hrpc := trace.Child(ctx, spanRPC)
	//faustlint:ignore lockheldio c.mu is the USTOR session lock; Algorithm 1 serializes a client's own SUBMIT..COMMIT round, and wait-freedom is across clients, not within one
	if err := c.getLink().Send(submit); err != nil {
		hrpc.End()
		return ReadResult{}, fmt.Errorf("ustor: submitting read: %w", err)
	}

	reply, err := c.recvReply(true)
	hrpc.End()
	if err != nil {
		return ReadResult{}, err
	}
	_, hv := trace.Child(ctx, spanVerify)
	err = c.updateVersion(reply)
	if err == nil {
		err = c.checkData(reply, j)
	}
	hv.End()
	if err != nil {
		return ReadResult{}, err
	}
	sv, err := c.commit()
	if err != nil {
		return ReadResult{}, err
	}
	return ReadResult{
		OpResult:        OpResult{Version: sv, Timestamp: c.ver.V[c.id]},
		Value:           reply.Mem.Value,
		WriterVersion:   reply.JVer.Clone(),
		WriterTimestamp: reply.Mem.T,
	}, nil
}

// recvReply waits for the REPLY message. A response of the wrong shape is
// itself evidence of server misbehavior.
func (c *Client) recvReply(isRead bool) (*wire.Reply, error) {
	m, err := c.getLink().Recv()
	if err != nil {
		return nil, fmt.Errorf("ustor: awaiting reply: %w", err)
	}
	reply, ok := m.(*wire.Reply)
	if !ok {
		return nil, c.fail("server sent a non-REPLY message")
	}
	if reply.IsRead != isRead {
		return nil, c.fail("REPLY kind does not match the submitted operation")
	}
	if err := c.validateReplyShape(reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// validateReplyShape rejects structurally malformed replies before the
// protocol checks run. A correct server can never produce these.
func (c *Client) validateReplyShape(r *wire.Reply) error {
	if r.C < 0 || r.C >= c.n {
		return c.fail("REPLY names an out-of-range committing client")
	}
	if r.CVer.Ver.N() != c.n || len(r.CVer.Ver.M) != c.n {
		return c.fail("REPLY carries a version of the wrong dimension")
	}
	if len(r.P) != c.n {
		return c.fail("REPLY carries a PROOF array of the wrong dimension")
	}
	if r.IsRead && (r.JVer.Ver.N() != c.n || len(r.JVer.Ver.M) != c.n) {
		return c.fail("REPLY carries a writer version of the wrong dimension")
	}
	for _, inv := range r.L {
		if inv.Client < 0 || inv.Client >= c.n {
			return c.fail("invocation tuple names an out-of-range client")
		}
		if inv.Op != wire.OpRead && inv.Op != wire.OpWrite {
			return c.fail("invocation tuple carries an invalid opcode")
		}
		if inv.Reg < 0 || inv.Reg >= c.n {
			return c.fail("invocation tuple names an out-of-range register")
		}
	}
	return nil
}

// updateVersion implements Algorithm 1 lines 34-47: verify the largest
// committed version shown by the server, adopt it, and advance it over the
// concurrent operations listed in L, checking every tuple's signatures and
// extending the digest chain.
func (c *Client) updateVersion(r *wire.Reply) error {
	vc, mc := r.CVer.Ver, r.CVer.Ver.M

	// Line 35: the shown version is either the initial one or carries a
	// valid COMMIT-signature by client C_c.
	if !vc.IsZero() {
		c.payload = wire.AppendCommitPayload(c.payload[:0], vc)
		if !c.verifyCommitSig(r.C, r.CVer.Sig) {
			return c.fail("COMMIT-signature on SVER[c] invalid (line 35)")
		}
	}
	// Line 36: the shown version extends the client's own version and
	// agrees on the client's own timestamp.
	if !c.ver.LessEq(vc) || vc.V[c.id] != c.ver.V[c.id] {
		return c.fail("server version does not extend own version (line 36)")
	}

	// Line 37: adopt (V_c, M_c). CopyFrom reuses c.ver's storage — safe
	// because everything shared out of c.ver (commit messages, results)
	// was cloned at the sharing point.
	c.ver.CopyFrom(vc)

	// Lines 38-45: walk the concurrent operations.
	d := mc[r.C]
	for _, inv := range r.L {
		k := inv.Client
		// Line 41: the previous operation of C_k must be committed and
		// covered by the PROOF-signature the server presents.
		if c.ver.M[k] != nil {
			if !c.ring.Verify(k, r.P[k], crypto.DomainProof, wire.ProofPayload(c.ver.M[k])) {
				return c.fail("PROOF-signature for concurrent operation invalid (line 41)")
			}
		}
		// Line 42: account for C_k's operation.
		c.ver.V[k]++
		// Line 43: no client is concurrent with itself, and the
		// SUBMIT-signature must cover the expected timestamp.
		if k == c.id {
			return c.fail("own operation listed as concurrent (line 43)")
		}
		// inv.Trace is whatever the submitter put under its signature;
		// recomputing the payload from the echoed tuple keeps the check
		// sound whether or not the operation was traced.
		c.payload = wire.AppendSubmitPayload(c.payload[:0], inv.Op, inv.Reg, c.ver.V[k], inv.Trace)
		if !c.ring.Verify(k, inv.SubmitSig, crypto.DomainSubmit, c.payload) {
			return c.fail("SUBMIT-signature for concurrent operation invalid (line 43)")
		}
		// Lines 44-45: extend the digest chain, writing the new digest into
		// M[k]'s existing storage (DigestStepInto computes before writing,
		// so d may alias the destination).
		d = version.DigestStepInto(c.ver.M[k][:0], d, k)
		c.ver.M[k] = d
	}

	// Lines 46-47: append the own operation.
	c.ver.V[c.id]++
	c.ver.M[c.id] = version.DigestStepInto(c.ver.M[c.id][:0], d, c.id)
	return nil
}

// checkData implements Algorithm 1 lines 48-52: validate the returned
// register value and the writer's version against the adopted version.
func (c *Client) checkData(r *wire.Reply, j int) error {
	vj := r.JVer.Ver
	tj, xj := r.Mem.T, r.Mem.Value

	// Line 49: the writer's version is initial or properly signed by C_j.
	if !vj.IsZero() {
		c.payload = wire.AppendCommitPayload(c.payload[:0], vj)
		if !c.verifyCommitSig(j, r.JVer.Sig) {
			return c.fail("COMMIT-signature on SVER[j] invalid (line 49)")
		}
	}
	// Line 50: the value integrity check via the DATA-signature.
	if tj != 0 {
		c.payload = wire.AppendDataPayload(c.payload[:0], tj, crypto.HashOrNil(xj))
		if !c.ring.Verify(j, r.Mem.DataSig, crypto.DomainData, c.payload) {
			return c.fail("DATA-signature on returned value invalid (line 50)")
		}
	}
	// Line 51: the writer's version is no newer than the adopted one, and
	// the returned timestamp matches C_j's last operation in the view.
	if !vj.LessEq(r.CVer.Ver) || tj != c.ver.V[j] {
		return c.fail("returned value is not from the latest operation of the writer (line 51)")
	}
	// Line 52: the writer's own entry is current or one behind (its COMMIT
	// may still be in flight).
	if vj.V[j] != tj && vj.V[j] != tj-1 {
		return c.fail("writer version timestamp inconsistent with returned value (line 52)")
	}
	return nil
}

// verifyCommitSig checks a COMMIT-signature by client i over the payload
// currently in c.payload, consulting the one-entry verification memo
// first. A hit is exactly as strong as a fresh verification (same pure
// function, same inputs); a miss verifies for real and refreshes the memo.
func (c *Client) verifyCommitSig(i int, sig []byte) bool {
	if i == c.memoC && bytes.Equal(c.payload, c.memoPayload) && bytes.Equal(sig, c.memoSig) {
		return true
	}
	if !c.ring.Verify(i, sig, crypto.DomainCommit, c.payload) {
		return false
	}
	c.memoize(i, c.payload, sig)
	return true
}

// memoize records a (committer, payload, signature) triple known to
// verify, copying into owned buffers reused across operations.
func (c *Client) memoize(i int, payload, sig []byte) {
	c.memoC = i
	c.memoPayload = append(c.memoPayload[:0], payload...)
	c.memoSig = append(c.memoSig[:0], sig...)
}

// commit signs the COMMIT message (lines 18-19 / 31-32) and either sends
// it immediately or defers it to the next SUBMIT (piggyback mode). It
// returns the signed version for the caller.
func (c *Client) commit() (wire.SignedVersion, error) {
	c.payload = wire.AppendCommitPayload(c.payload[:0], c.ver)
	phi := c.signer.Sign(crypto.DomainCommit, c.payload)
	// The client's own signature over its own version trivially verifies;
	// memoizing it here is what makes the next reply's SVER[c] check a
	// memo hit in the common uncontended case.
	c.memoize(c.id, c.payload, phi)
	psi := c.signer.Sign(crypto.DomainProof, wire.ProofPayload(c.ver.M[c.id]))
	// One clone, shared by the COMMIT message and the returned result:
	// both treat the version as immutable (the server adopts received
	// versions without writing through them, and the FAUST layer clones on
	// retention), while c.ver itself keeps mutating in later operations.
	sv := c.ver.Clone()
	msg := &wire.Commit{Ver: sv, CommitSig: phi, ProofSig: psi}
	if c.piggyback {
		c.pending = msg
	} else if err := c.getLink().Send(msg); err != nil {
		return wire.SignedVersion{}, fmt.Errorf("ustor: sending commit: %w", err)
	}
	return wire.SignedVersion{Committer: c.id, Ver: sv, Sig: phi}, nil
}

// traceExemplar converts a wire trace context to the histogram-exemplar
// trace ID, zero when the operation is untraced.
func traceExemplar(tc *wire.TraceCtx) trace.TraceID {
	if tc == nil {
		return trace.TraceID{}
	}
	return trace.TraceID(tc.ID)
}

// takePending returns and clears the deferred COMMIT. Caller holds c.mu.
func (c *Client) takePending() *wire.Commit {
	msg := c.pending
	c.pending = nil
	return msg
}

// Flush sends any deferred COMMIT immediately. Only meaningful in
// piggyback mode; a no-op otherwise. Call before a graceful shutdown so
// the client's last operation leaves the server's concurrent list.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	msg := c.takePending()
	if msg == nil {
		return nil
	}
	//faustlint:ignore lockheldio c.mu is the USTOR session lock; the deferred COMMIT must leave before any new operation reuses the session
	if err := c.getLink().Send(msg); err != nil {
		return fmt.Errorf("ustor: flushing commit: %w", err)
	}
	return nil
}

// fail records the detection, fires the fail_i output action once, halts
// the client, and returns the detection error. The first detection also
// lands in the protocol event log: the line 36 check (server version does
// not extend the client's own) is the signature of replayed old state and
// is classified as rollback-detected; every other failed check is
// fork-detected evidence.
func (c *Client) fail(check string) error {
	err := &DetectionError{Client: c.id, Check: check}
	if !c.failed {
		c.failed = true
		c.reason = err
		kind := obs.EventFork
		if strings.Contains(check, "(line 36)") {
			kind = obs.EventRollback
		}
		c.events.Record(kind, c.id, "", check)
		if c.onFail != nil {
			c.onFail(err)
		}
	}
	return err
}
