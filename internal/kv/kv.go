// Package kv is the authenticated key-value layer over FAUST registers:
// the application-facing data model the ROADMAP calls for.
//
// Each client owns one fail-aware register (package ustor). Instead of a
// single opaque value, the register holds a small ROOT RECORD — the
// Merkle root and content hash of the client's key→value DIRECTORY plus
// some counts — while the directory itself and all value chunks travel
// over the transport's bulk blob channel as content-addressed blobs.
// Because the root record rides on WriteX/ReadX, every Get/Put/Delete
// inherits the protocol's guarantees end to end:
//
//   - integrity: a tampered chunk or directory blob fails its content
//     hash or Merkle check and the operation errors out;
//   - fail-awareness: a forking or rolling-back server trips the usual
//     Algorithm 1 checks during the register read/write, the client
//     outputs fail and halts — through the KV API;
//   - single-writer semantics: only the register owner can change its
//     namespace (the root record is covered by the owner's signatures).
//
// Values larger than the chunk size are split into content-addressed
// chunks, deduplicated against previously uploaded ones. A validating
// client cache (content-hash-checked on every use) serves repeated reads
// without bulk transfers, and CachedGetFrom serves them with no server
// round trip at all as long as the client's observed version of the
// owner's register is unchanged.
package kv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/version"
)

// DefaultChunkSize is the default split size for values. Values up to
// one chunk cost exactly one blob round trip.
const DefaultChunkSize = 64 << 10

// ErrNotFound is returned when a key is absent from the namespace.
var ErrNotFound = errors.New("kv: key not found")

// ErrNamespaceFull is returned by Put when the updated directory would
// exceed the blob channel's transfer limit (see Put's capacity note).
var ErrNamespaceFull = errors.New("kv: namespace too large (encoded directory exceeds the blob size limit)")

// Register is the slice of the ustor client the KV layer drives:
// extended reads and writes on fail-aware registers plus version
// introspection. *ustor.Client implements it.
type Register interface {
	ID() int
	N() int
	WriteX(x []byte) (ustor.OpResult, error)
	ReadX(j int) (ustor.ReadResult, error)
	Version() version.Version
	// ObservedTimestamp returns V[j] of the client's current version
	// without copying it; the value cache consults it on every hit.
	ObservedTimestamp(j int) int64
}

var _ Register = (*ustor.Client)(nil)

// Stats counts the store's traffic split by path. Round trips through
// the register (server dispatcher) and through the bulk blob channel are
// tracked separately; cache hits explain their absence.
type Stats struct {
	RegisterReads  int64 // ReadX round trips
	RegisterWrites int64 // WriteX round trips
	BlobPuts       int64 // chunk + directory uploads
	BlobGets       int64 // chunk + directory downloads
	ChunkCacheHits int64 // chunk fetches served from the validating cache
	DirCacheHits   int64 // directory fetches avoided (unchanged root)
	ValueCacheHits int64 // CachedGetFrom served entirely locally
}

// Option configures a Store.
type Option func(*Store)

// WithChunkSize sets the value split size (default DefaultChunkSize).
func WithChunkSize(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.chunkSize = n
		}
	}
}

// WithChunkCacheBudget bounds the bytes the validating chunk cache may
// hold (default 64 MiB). Zero disables chunk caching.
func WithChunkCacheBudget(n int) Option {
	return func(s *Store) { s.chunkBudget = n }
}

// WithValueCacheBudget bounds the bytes CachedGetFrom's assembled-value
// cache may hold (default 64 MiB), independent of the chunk cache's
// budget. Zero disables value caching (CachedGetFrom then always falls
// through to GetFrom).
func WithValueCacheBudget(n int) Option {
	return func(s *Store) { s.valBudget = n }
}

// cachedValue is one fully assembled remote value in the value cache.
type cachedValue struct {
	value  []byte
	digest []byte // content hash of value, re-checked on every hit
	ownerT int64  // owner register timestamp the value was read at
}

// remoteDir caches another client's verified directory together with
// the facts it was verified against, so a cache hit can re-check a new
// root record's Merkle root and metadata without re-hashing anything.
type remoteDir struct {
	dirHash    []byte
	root       []byte // the directory's Merkle root, computed at verify time
	numEntries uint32
	totalBytes int64
	dir        *directory
}

// Store is one client's view of the KV namespace: read-write for its own
// keys, read-only (Get*From) for every other client's. Safe for
// concurrent use; operations serialize like the underlying register
// client's.
type Store struct {
	reg         Register
	blobs       transport.BlobChannel
	chunkSize   int
	chunkBudget int
	valBudget   int

	mu         sync.Mutex
	dir        directory // own namespace, authoritative (single writer)
	gen        uint64    // own mutation counter, persisted in the root record
	chunkCache map[string][]byte
	chunkBytes int
	dirCache   map[int]*remoteDir
	valCache   map[int]map[string]*cachedValue
	valBytes   int
	stats      Stats
}

// Open creates the store and bootstraps the own namespace from the
// register: a never-written register (nil value — see ustor.Client.Read)
// starts the empty directory; an existing root record is fetched and
// verified so a client resuming within a process continues its
// namespace.
func Open(reg Register, blobs transport.BlobChannel, opts ...Option) (*Store, error) {
	s := &Store{
		reg:         reg,
		blobs:       blobs,
		chunkSize:   DefaultChunkSize,
		chunkBudget: 64 << 20,
		valBudget:   64 << 20,
		chunkCache:  make(map[string][]byte),
		dirCache:    make(map[int]*remoteDir),
		valCache:    make(map[int]map[string]*cachedValue),
	}
	for _, o := range opts {
		o(s)
	}
	res, err := reg.ReadX(reg.ID())
	if err != nil {
		return nil, fmt.Errorf("kv: bootstrapping from own register: %w", err)
	}
	s.stats.RegisterReads++
	if res.Value != nil {
		rr, err := decodeRoot(res.Value)
		if err != nil {
			return nil, fmt.Errorf("kv: own register: %w", err)
		}
		d, err := s.fetchDirectory(rr)
		if err != nil {
			return nil, fmt.Errorf("kv: recovering own directory: %w", err)
		}
		s.dir = *d
		s.gen = rr.Gen
	}
	return s, nil
}

// ID returns the owning client's index.
func (s *Store) ID() int { return s.reg.ID() }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Root returns the current Merkle root of the own directory.
func (s *Store) Root() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dir.merkleRoot()
}

// Len returns the number of keys in the own namespace.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dir.entries)
}

// Keys returns the own namespace's keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dir.keys()
}

// Put stores value under key in the own namespace: chunks are uploaded
// (deduplicated against the cache), the updated directory is uploaded,
// and the new root record is committed through the fail-aware register.
// The value may be empty; nil is stored as empty.
//
// Capacity: the whole directory travels as one blob, so a namespace is
// bounded by transport.MaxBlobSize worth of encoded entries (roughly
// 50+keylen bytes per single-chunk entry, plus 32 per extra chunk —
// on the order of 10^5 keys). A Put that would push the directory over
// the limit fails with ErrNamespaceFull and leaves the namespace
// unchanged.
func (s *Store) Put(key string, value []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Capacity checks BEFORE any chunk leaves the client: the chunk
	// count must stay decodable (an oversized entry would commit a root
	// record every reader — and the owner's own next bootstrap —
	// rejects as malformed), and the updated directory must still fit
	// the blob channel. Both are computable up front, so a doomed Put
	// uploads nothing.
	nchunks := (len(value) + s.chunkSize - 1) / s.chunkSize
	if nchunks > maxChunksPerValue {
		return fmt.Errorf("kv: value of %d bytes needs %d chunks, limit %d (raise the chunk size)",
			len(value), nchunks, maxChunksPerValue)
	}
	projected := encodedDirSize(&s.dir) + encodedEntrySize(key, nchunks)
	if i, ok := s.dir.find(key); ok {
		projected -= encodedEntrySize(key, len(s.dir.entries[i].Chunks))
	}
	if projected > transport.MaxBlobSize {
		return ErrNamespaceFull
	}

	e := entry{Key: key, Size: int64(len(value))}
	for off := 0; off < len(value); off += s.chunkSize {
		end := off + s.chunkSize
		if end > len(value) {
			end = len(value)
		}
		chunk := value[off:end]
		h := crypto.Hash(chunk)
		if _, ok := s.chunkCache[string(h)]; !ok {
			if err := s.blobs.PutBlob(h, chunk); err != nil {
				return fmt.Errorf("kv: uploading chunk: %w", err)
			}
			s.stats.BlobPuts++
			s.cacheChunk(h, chunk)
		}
		e.Chunks = append(e.Chunks, h)
	}

	prevEntries := append([]entry(nil), s.dir.entries...)
	s.dir.put(e)
	if err := s.commitDirLocked(); err != nil {
		s.dir.entries = prevEntries
		return err
	}
	return nil
}

// Delete removes key from the own namespace. Deleting an absent key
// returns ErrNotFound. Chunks are not garbage-collected from the blob
// store (content addressing makes them harmless; other entries may share
// them).
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dir.find(key); !ok {
		return ErrNotFound
	}
	prevEntries := append([]entry(nil), s.dir.entries...)
	s.dir.remove(key)
	if err := s.commitDirLocked(); err != nil {
		s.dir.entries = prevEntries
		return err
	}
	return nil
}

// commitDirLocked uploads the current directory blob and writes the new
// root record through the register. Caller holds s.mu; on error the
// caller restores the previous entries.
func (s *Store) commitDirLocked() error {
	blob := encodeDirectory(&s.dir)
	if len(blob) > transport.MaxBlobSize {
		return ErrNamespaceFull
	}
	dirHash := crypto.Hash(blob)
	if err := s.blobs.PutBlob(dirHash, blob); err != nil {
		return fmt.Errorf("kv: uploading directory: %w", err)
	}
	s.stats.BlobPuts++
	rr := &rootRecord{
		Gen:        s.gen + 1,
		NumEntries: uint32(len(s.dir.entries)),
		TotalBytes: s.dir.totalBytes(),
		DirHash:    dirHash,
		Root:       s.dir.merkleRoot(),
	}
	if _, err := s.reg.WriteX(encodeRoot(rr)); err != nil {
		return fmt.Errorf("kv: committing root record: %w", err)
	}
	s.stats.RegisterWrites++
	s.gen = rr.Gen
	return nil
}

// Get reads a key of the own namespace. The own directory is
// authoritative (single-writer), so Get costs no register round trip;
// chunks not in the validating cache are fetched over the blob channel
// and hash-checked.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.dir.find(key)
	if !ok {
		return nil, ErrNotFound
	}
	return s.assembleLocked(&s.dir.entries[i])
}

// GetFrom reads a key of client j's namespace with full authentication:
// one ReadX of j's register (fail-aware, fork-detecting), directory and
// chunk fetches as needed — all verified against the root record. For
// the own namespace it is equivalent to Get.
func (s *Store) GetFrom(j int, key string) ([]byte, error) {
	if j == s.reg.ID() {
		return s.Get(key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ownerT, err := s.readDirLocked(j)
	if err != nil {
		return nil, err
	}
	i, ok := d.find(key)
	if !ok {
		return nil, ErrNotFound
	}
	value, err := s.assembleLocked(&d.entries[i])
	if err != nil {
		return nil, err
	}
	s.rememberValueLocked(j, key, value, ownerT)
	return value, nil
}

// ListFrom returns the sorted keys of client j's namespace, reading and
// verifying j's current directory.
func (s *Store) ListFrom(j int) ([]string, error) {
	if j == s.reg.ID() {
		return s.Keys(), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, _, err := s.readDirLocked(j)
	if err != nil {
		return nil, err
	}
	return d.keys(), nil
}

// CachedGetFrom is GetFrom with register-version-based caching: when the
// client's observed version of j's register is unchanged since the value
// was last read, the cached value is digest-checked and returned with NO
// server round trip. The client's knowledge of j advances whenever any
// of its operations observes a newer version of j (Algorithm 1's L
// walk), at which point the stale entry is invalidated and the next call
// falls through to a fresh GetFrom.
//
// The freshness contract is therefore weaker than GetFrom's: the value
// is as fresh as the client's last contact with the server, never
// fresher. Use GetFrom when read-your-peers'-writes matters.
func (s *Store) CachedGetFrom(j int, key string) ([]byte, error) {
	if j == s.reg.ID() {
		return s.Get(key)
	}
	s.mu.Lock()
	if byKey := s.valCache[j]; byKey != nil {
		if cv, ok := byKey[key]; ok {
			if cv.ownerT == s.reg.ObservedTimestamp(j) && bytes.Equal(crypto.Hash(cv.value), cv.digest) {
				s.stats.ValueCacheHits++
				out := append([]byte(nil), cv.value...)
				s.mu.Unlock()
				return out, nil
			}
			delete(byKey, key) // version moved or digest check failed
			s.valBytes -= len(cv.value)
		}
	}
	s.mu.Unlock()
	return s.GetFrom(j, key)
}

// rememberValueLocked stores a remote value in the value cache, tagged
// with ownerT — the owner's register timestamp observed by the ReadX
// that produced the value (NOT re-sampled here: a concurrent direct
// operation on the shared register client could have advanced the
// observed version meanwhile, and tagging a stale value with the newer
// timestamp would defeat invalidation). The cache has its own byte
// budget (WithValueCacheBudget): arbitrary entries are evicted to stay
// under it, and values that alone exceed it are simply not cached.
func (s *Store) rememberValueLocked(j int, key string, value []byte, ownerT int64) {
	if s.valBudget <= 0 || len(value) > s.valBudget {
		return
	}
	for s.valBytes+len(value) > s.valBudget && s.valBytes > 0 {
		for owner, byKey := range s.valCache {
			for k, cv := range byKey {
				delete(byKey, k)
				s.valBytes -= len(cv.value)
				break
			}
			if len(byKey) == 0 {
				delete(s.valCache, owner)
			}
			break
		}
	}
	byKey := s.valCache[j]
	if byKey == nil {
		byKey = make(map[string]*cachedValue)
		s.valCache[j] = byKey
	}
	if old, ok := byKey[key]; ok {
		s.valBytes -= len(old.value)
	}
	byKey[key] = &cachedValue{
		value:  append([]byte(nil), value...),
		digest: crypto.Hash(value),
		ownerT: ownerT,
	}
	s.valBytes += len(value)
}

// readDirLocked performs the authenticated register read of client j and
// returns j's verified directory plus the owner timestamp this read
// observed (MEM[j].T, which Algorithm 1 line 51 pins to V[j] at the
// moment of the read), reusing the cached directory when the root
// record still names the same blob.
func (s *Store) readDirLocked(j int) (*directory, int64, error) {
	res, err := s.reg.ReadX(j)
	if err != nil {
		return nil, 0, fmt.Errorf("kv: reading register %d: %w", j, err)
	}
	s.stats.RegisterReads++
	// WriterTimestamp is the owner timestamp of THIS read (line 51 pins
	// it to V[j] during the operation). Sampling ObservedTimestamp here
	// instead would race with concurrent operations on the shared
	// register client and could tag the value newer than it is.
	ownerT := res.WriterTimestamp
	if res.Value == nil {
		// Never-written register: the empty namespace (see the empty-read
		// semantics documented on ustor.Client.Read).
		return &directory{}, ownerT, nil
	}
	rr, err := decodeRoot(res.Value)
	if err != nil {
		return nil, 0, fmt.Errorf("kv: register %d: %w", j, err)
	}
	if rd := s.dirCache[j]; rd != nil && bytes.Equal(rd.dirHash, rr.DirHash) {
		// A hit still validates the REST of the root record against the
		// facts recorded at verify time: a record naming a known-good
		// directory blob but a forged Merkle root (or wrong counts)
		// must be rejected identically with warm and cold caches.
		if !bytes.Equal(rd.root, rr.Root) {
			return nil, 0, errors.New("kv: directory Merkle root mismatch (forged directory)")
		}
		if rd.numEntries != rr.NumEntries || rd.totalBytes != rr.TotalBytes {
			return nil, 0, errors.New("kv: directory metadata mismatch")
		}
		s.stats.DirCacheHits++
		return rd.dir, ownerT, nil
	}
	d, err := s.fetchDirectory(rr)
	if err != nil {
		return nil, 0, err
	}
	s.dirCache[j] = &remoteDir{
		dirHash:    rr.DirHash,
		root:       rr.Root,
		numEntries: rr.NumEntries,
		totalBytes: rr.TotalBytes,
		dir:        d,
	}
	return d, ownerT, nil
}

// fetchDirectory downloads and fully verifies the directory blob a root
// record names.
func (s *Store) fetchDirectory(rr *rootRecord) (*directory, error) {
	blob, err := s.blobs.GetBlob(rr.DirHash)
	if err != nil {
		return nil, fmt.Errorf("kv: fetching directory blob: %w", err)
	}
	s.stats.BlobGets++
	return verifyDirectory(rr, blob)
}

// assembleLocked reconstructs an entry's value from its chunks, fetching
// and hash-verifying what the validating cache does not hold. Caller
// holds s.mu.
func (s *Store) assembleLocked(e *entry) ([]byte, error) {
	value := make([]byte, 0, e.Size)
	for _, h := range e.Chunks {
		chunk, ok := s.chunkCache[string(h)]
		if ok && !bytes.Equal(crypto.Hash(chunk), h) {
			// The validating part of the cache: a corrupted entry is
			// dropped and refetched rather than served.
			delete(s.chunkCache, string(h))
			s.chunkBytes -= len(chunk)
			ok = false
		}
		if ok {
			s.stats.ChunkCacheHits++
		} else {
			fetched, err := s.blobs.GetBlob(h)
			if err != nil {
				return nil, fmt.Errorf("kv: fetching chunk: %w", err)
			}
			s.stats.BlobGets++
			if !bytes.Equal(crypto.Hash(fetched), h) {
				return nil, errors.New("kv: chunk digest mismatch (tampered chunk)")
			}
			s.cacheChunk(h, fetched)
			chunk = fetched
		}
		value = append(value, chunk...)
	}
	if int64(len(value)) != e.Size {
		return nil, errors.New("kv: reassembled value size mismatch")
	}
	return value, nil
}

// cacheChunk stores a verified chunk, evicting arbitrary entries when
// over budget. Caller holds s.mu.
func (s *Store) cacheChunk(hash, chunk []byte) {
	if s.chunkBudget <= 0 {
		return
	}
	for s.chunkBytes+len(chunk) > s.chunkBudget && len(s.chunkCache) > 0 {
		for k, v := range s.chunkCache {
			delete(s.chunkCache, k)
			s.chunkBytes -= len(v)
			break
		}
	}
	if s.chunkBytes+len(chunk) > s.chunkBudget {
		return
	}
	s.chunkCache[string(hash)] = append([]byte(nil), chunk...)
	s.chunkBytes += len(chunk)
}

// validKey checks the key constraints: non-empty, at most MaxKeyLen
// bytes.
func validKey(key string) error {
	if len(key) == 0 {
		return errors.New("kv: empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("kv: key of %d bytes exceeds limit %d", len(key), MaxKeyLen)
	}
	return nil
}
