// Package lockstep implements a fork-linearizable — and deliberately
// blocking — untrusted storage protocol in the style of SUNDR [16] and the
// lock-step protocol of [5].
//
// The server maintains one globally ordered log of operations secured by a
// hash chain; every record carries its author's signature over the chain
// value, so the server cannot rewrite or reorder history without
// detection, and once two clients' chains diverge they can never be
// joined again (the no-join property of fork-linearizability).
//
// The price is the one the paper proves unavoidable (Section 1, [5], [4]):
// the server admits ONE operation at a time. The REPLY for operation k+1
// is deferred until the COMMIT of operation k arrives. A client that
// crashes between REPLY and COMMIT therefore blocks every other client
// forever — no wait-freedom. USTOR exists precisely to remove this
// blocking, and the benchmark suite compares the two protocols head to
// head (experiment E8).
package lockstep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/transport"
	"faust/internal/wire"
)

// ErrHalted is returned by operations after the client detected server
// misbehavior.
var ErrHalted = errors.New("lockstep: client halted after failure detection")

// DetectionError reports a failed integrity check.
type DetectionError struct {
	Client int
	Check  string
}

// Error implements error.
func (e *DetectionError) Error() string {
	return fmt.Sprintf("lockstep: client %d detected faulty server: %s", e.Client, e.Check)
}

// Server is the correct lock-step server. It implements
// transport.ServerCore (with unused USTOR handlers) plus
// transport.GenericCore for the lock-step message kinds.
type Server struct {
	mu      sync.Mutex
	n       int
	log     []wire.LSRecord
	values  map[int][]byte // current register values, for serving reads
	busy    bool           // an admitted operation awaits its COMMIT
	pending []pendingOp    // queued operations in arrival order
	push    func(to int, m wire.Message) error
}

type pendingOp struct {
	from   int
	submit *wire.LSSubmit
}

var (
	_ transport.ServerCore  = (*Server)(nil)
	_ transport.GenericCore = (*Server)(nil)
)

// NewServer creates a correct lock-step server for n clients.
func NewServer(n int) *Server {
	return &Server{n: n, values: make(map[int][]byte, n)}
}

// AttachPusher implements transport.GenericCore.
func (s *Server) AttachPusher(push func(to int, m wire.Message) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.push = push
}

// HandleSubmit implements transport.ServerCore; the lock-step protocol
// does not use USTOR SUBMIT messages.
func (s *Server) HandleSubmit(context.Context, int, *wire.Submit) *wire.Reply { return nil }

// HandleCommit implements transport.ServerCore; unused.
func (s *Server) HandleCommit(context.Context, int, *wire.Commit) {}

// HandleMessage processes LSSubmit and LSCommit messages.
func (s *Server) HandleMessage(from int, m wire.Message) {
	switch msg := m.(type) {
	case *wire.LSSubmit:
		s.handleSubmit(from, msg)
	case *wire.LSCommit:
		s.handleCommit(from, msg)
	}
}

func (s *Server) handleSubmit(from int, msg *wire.LSSubmit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, pendingOp{from: from, submit: msg})
	s.admitLocked()
}

func (s *Server) handleCommit(from int, msg *wire.LSCommit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.busy {
		return // spurious commit; a correct client never sends one
	}
	rec := msg.Record.Clone()
	s.log = append(s.log, rec)
	s.busy = false
	s.admitLocked()
}

// admitLocked grants the head of the queue its turn when no operation is
// active: it sends the deferred LSReply. Caller holds s.mu.
func (s *Server) admitLocked() {
	if s.busy || len(s.pending) == 0 || s.push == nil {
		return
	}
	op := s.pending[0]
	s.pending = s.pending[1:]
	s.busy = true

	// Writes take effect at admission so the subsequent reads the server
	// serves (after the commit) return them.
	if op.submit.Op == wire.OpWrite {
		s.values[op.submit.Reg] = append([]byte(nil), op.submit.Value...)
	}

	reply := &wire.LSReply{}
	have := op.submit.HaveSeq
	for _, rec := range s.log {
		if rec.Seq > have {
			reply.Records = append(reply.Records, rec.Clone())
		}
	}
	if op.submit.Op == wire.OpRead {
		if v, found := s.values[op.submit.Reg]; found {
			reply.Value = append([]byte(nil), v...)
		}
	}
	_ = s.push(op.from, reply)
}

// QueueLen reports the number of operations waiting for admission, plus
// the active one. Exposed for the blocking experiments.
func (s *Server) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pending)
	if s.busy {
		n++
	}
	return n
}

// Client is the lock-step protocol client. Operations are serialized per
// client; each performs one LSSubmit -> LSReply round followed by an
// LSCommit, but the reply arrives only when the server admits the
// operation — after ALL previously admitted operations have committed.
type Client struct {
	id     int
	n      int
	signer *crypto.Signer
	ring   *crypto.Keyring
	link   transport.Link

	mu       sync.Mutex
	seq      int64
	chain    []byte         // hash chain value at seq
	regHash  map[int][]byte // register -> hash of latest written value
	failed   bool
	reason   error
	onDetect func(error)
	events   *obs.EventLog
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithFailHandler registers a detection callback.
func WithFailHandler(f func(error)) ClientOption {
	return func(c *Client) { c.onDetect = f }
}

// NewClient creates a lock-step client.
func NewClient(id int, ring *crypto.Keyring, signer *crypto.Signer, link transport.Link, opts ...ClientOption) *Client {
	c := &Client{
		id:      id,
		n:       ring.N(),
		signer:  signer,
		ring:    ring,
		link:    link,
		regHash: make(map[int][]byte, ring.N()),
		events:  obs.Default().Events(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ID returns the client index.
func (c *Client) ID() int { return c.id }

// Close closes the transport link.
func (c *Client) Close() error { return c.link.Close() }

// Failed reports detection state.
func (c *Client) Failed() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed, c.reason
}

// Write writes x to the client's own register.
func (c *Client) Write(x []byte) error {
	_, err := c.op(wire.OpWrite, c.id, x)
	return err
}

// Read reads register j.
func (c *Client) Read(j int) ([]byte, error) {
	return c.op(wire.OpRead, j, nil)
}

// WriteCrashBeforeCommit performs the SUBMIT -> REPLY round and then
// "crashes": it never sends the COMMIT, leaving the server's lock-step
// admission stuck. Exists for the blocking experiments (E8); a real
// client does this involuntarily.
func (c *Client) WriteCrashBeforeCommit(x []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return ErrHalted
	}
	//faustlint:ignore lockheldio c.mu is the per-client session lock; a lock-step round is deliberately serialized under it (the protocol admits one operation at a time)
	if err := c.link.Send(&wire.LSSubmit{Op: wire.OpWrite, Reg: c.id, Value: x, HaveSeq: c.seq}); err != nil {
		return fmt.Errorf("lockstep: submit: %w", err)
	}
	if _, err := c.awaitReply(); err != nil {
		return err
	}
	return nil // no commit: the protocol is now wedged
}

func (c *Client) op(op wire.OpCode, reg int, value []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return nil, ErrHalted
	}
	if reg < 0 || reg >= c.n {
		return nil, fmt.Errorf("lockstep: register %d out of range [0,%d)", reg, c.n)
	}
	//faustlint:ignore lockheldio c.mu is the per-client session lock; a lock-step round is deliberately serialized under it (the protocol admits one operation at a time)
	if err := c.link.Send(&wire.LSSubmit{Op: op, Reg: reg, Value: value, HaveSeq: c.seq}); err != nil {
		return nil, fmt.Errorf("lockstep: submit: %w", err)
	}
	reply, err := c.awaitReply()
	if err != nil {
		return nil, err
	}
	if err := c.applyRecords(reply.Records); err != nil {
		return nil, err
	}

	var result []byte
	var valueHash []byte
	if op == wire.OpRead {
		// The returned value must match the chain's belief about the
		// register.
		want := c.regHash[reg]
		got := crypto.HashOrNil(reply.Value)
		if !bytes.Equal(want, got) {
			return nil, c.fail("returned value disagrees with the signed operation log")
		}
		result = reply.Value
	} else {
		valueHash = crypto.Hash(value)
		c.regHash[reg] = valueHash
	}

	// Append the own operation to the chain, sign, commit.
	c.seq++
	c.chain = crypto.Hash(c.chain, wire.ChainPayload(c.seq, c.id, op, reg, valueHash))
	rec := wire.LSRecord{
		Seq:       c.seq,
		Client:    c.id,
		Op:        op,
		Reg:       reg,
		ValueHash: valueHash,
		ChainHash: append([]byte(nil), c.chain...),
		Sig:       c.signer.Sign(crypto.DomainLSChain, c.chain),
	}
	//faustlint:ignore lockheldio c.mu is the per-client session lock; the COMMIT must leave before the next operation starts, so it stays inside the round
	if err := c.link.Send(&wire.LSCommit{Record: rec}); err != nil {
		return nil, fmt.Errorf("lockstep: commit: %w", err)
	}
	return result, nil
}

func (c *Client) awaitReply() (*wire.LSReply, error) {
	m, err := c.link.Recv()
	if err != nil {
		return nil, fmt.Errorf("lockstep: awaiting reply: %w", err)
	}
	reply, isReply := m.(*wire.LSReply)
	if !isReply {
		return nil, c.fail("server sent a non-LSReply message")
	}
	return reply, nil
}

// applyRecords verifies and replays the log suffix: every record must
// extend the client's chain with a correctly signed hash.
func (c *Client) applyRecords(records []wire.LSRecord) error {
	for _, rec := range records {
		if rec.Seq != c.seq+1 {
			return c.fail(fmt.Sprintf("log gap: record %d after local seq %d", rec.Seq, c.seq))
		}
		if rec.Client < 0 || rec.Client >= c.n {
			return c.fail("record names an out-of-range client")
		}
		if rec.Op == wire.OpWrite && rec.Reg != rec.Client {
			return c.fail("record writes a foreign register")
		}
		next := crypto.Hash(c.chain, wire.ChainPayload(rec.Seq, rec.Client, rec.Op, rec.Reg, rec.ValueHash))
		if !bytes.Equal(next, rec.ChainHash) {
			return c.fail("hash chain mismatch: server forked or rewrote the log")
		}
		if !c.ring.Verify(rec.Client, rec.Sig, crypto.DomainLSChain, rec.ChainHash) {
			return c.fail("invalid signature on log record")
		}
		c.seq = rec.Seq
		c.chain = next
		if rec.Op == wire.OpWrite {
			c.regHash[rec.Reg] = append([]byte(nil), rec.ValueHash...)
		}
	}
	return nil
}

func (c *Client) fail(check string) error {
	err := &DetectionError{Client: c.id, Check: check}
	if !c.failed {
		c.failed = true
		c.reason = err
		// Detection must be visible, not just halting: the same
		// fork-detected / failure pair USTOR emits, so dashboards see both
		// protocols through one event stream.
		c.events.Record(obs.EventFork, c.id, "", check)
		c.events.Record(obs.EventFail, c.id, "", err.Error())
		if c.onDetect != nil {
			c.onDetect(err)
		}
	}
	return err
}
