package kv_test

import (
	"context"
	"fmt"
	"testing"

	"faust/internal/crypto"
	"faust/internal/kv"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/workload"
)

// benchPair builds an owner/reader store pair over the in-memory
// transport with nkeys prefilled (PutBatch: one commit) and returns them
// plus a cleanup func. The reader's node cache is disabled so every
// GetFrom pays its full O(log n) path — the cost the benchmark tracks.
func benchPair(b *testing.B, nkeys int, opts ...kv.Option) (owner, reader *kv.Store, stop func()) {
	b.Helper()
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 42)
	nw := transport.NewNetwork(n, ustor.NewServer(n), transport.WithBlobStore(transport.NewMemBlobs()))
	open := func(i int, extra ...kv.Option) *kv.Store {
		ch, err := nw.BlobChannel()
		if err != nil {
			b.Fatal(err)
		}
		st, err := kv.Open(ustor.NewClient(i, ring, signers[i], nw.ClientLink(i)), ch, append(append([]kv.Option(nil), opts...), extra...)...)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	owner = open(0)
	items := make([]kv.Item, nkeys)
	for i := range items {
		items[i] = kv.Item{Key: workload.KeyName(i), Value: []byte(fmt.Sprintf("value-%06d", i))}
	}
	if err := owner.PutBatch(context.Background(), items); err != nil {
		b.Fatal(err)
	}
	reader = open(1, kv.WithNodeCacheBudget(0))
	return owner, reader, nw.Stop
}

// BenchmarkKVPut measures steady-state overwrites into a 1024-key
// namespace: chunk upload + O(log n) dirty-path upload + root commit.
func BenchmarkKVPut(b *testing.B) {
	const nkeys = 1024
	owner, _, stop := benchPair(b, nkeys)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := workload.KeyName(i % nkeys)
		if err := owner.Put(context.Background(), key, []byte(fmt.Sprintf("overwrite-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVGetFrom measures authenticated cross-client point reads of
// a 1024-key namespace with the node cache disabled: one register round
// trip + a full verified root-to-leaf path + chunk fetch per op.
func BenchmarkKVGetFrom(b *testing.B) {
	const nkeys = 1024
	_, reader, stop := benchPair(b, nkeys)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reader.GetFrom(context.Background(), 0, workload.KeyName(i%nkeys)); err != nil {
			b.Fatal(err)
		}
	}
}
