package lockheldio_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"faust/tools/faustlint/analyzers/lockheldio"
)

func TestLockHeldIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockheldio.Analyzer, "a")
}
