package offline

import (
	"sync"
	"testing"
	"time"

	"faust/internal/wire"
)

func TestSendRecv(t *testing.T) {
	h := NewHub(2)
	defer h.Stop()
	if err := h.Endpoint(0).Send(1, &wire.Probe{From: 0}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := h.Endpoint(1).Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.From != 0 {
		t.Fatalf("From = %d, want 0", m.From)
	}
	if _, ok := m.Body.(*wire.Probe); !ok {
		t.Fatalf("Body = %T, want *wire.Probe", m.Body)
	}
}

func TestStoreAndForward(t *testing.T) {
	// The recipient is "offline" (not receiving); messages must queue and
	// be delivered later — the defining property of the offline channel.
	h := NewHub(2)
	defer h.Stop()
	for i := 0; i < 10; i++ {
		if err := h.Endpoint(0).Send(1, &wire.Probe{From: 0}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if got := h.Endpoint(1).Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := h.Endpoint(1).Recv(); err != nil {
			t.Fatalf("delayed Recv %d: %v", i, err)
		}
	}
}

func TestPerPairFIFO(t *testing.T) {
	h := NewHub(2)
	defer h.Stop()
	for i := 0; i < 50; i++ {
		_ = h.Endpoint(0).Send(1, &wire.VersionMsg{From: i})
	}
	for i := 0; i < 50; i++ {
		m, err := h.Endpoint(1).Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Body.(*wire.VersionMsg).From; got != i {
			t.Fatalf("message %d out of order: got %d", i, got)
		}
	}
}

func TestBroadcast(t *testing.T) {
	h := NewHub(4)
	defer h.Stop()
	if err := h.Endpoint(2).Broadcast(&wire.Failure{From: 2}); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for i := 0; i < 4; i++ {
		if i == 2 {
			if h.Endpoint(i).Pending() != 0 {
				t.Fatal("broadcast delivered to sender")
			}
			continue
		}
		m, err := h.Endpoint(i).Recv()
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
		if m.From != 2 {
			t.Fatalf("endpoint %d: From = %d", i, m.From)
		}
	}
}

func TestSendErrors(t *testing.T) {
	h := NewHub(2)
	defer h.Stop()
	if err := h.Endpoint(0).Send(0, &wire.Probe{}); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := h.Endpoint(0).Send(5, &wire.Probe{}); err == nil {
		t.Fatal("out-of-range recipient accepted")
	}
	if err := h.Endpoint(0).Send(-1, &wire.Probe{}); err == nil {
		t.Fatal("negative recipient accepted")
	}
}

func TestSendToClosedRecipientIsSilent(t *testing.T) {
	h := NewHub(2)
	defer h.Stop()
	h.Endpoint(1).Close()
	if err := h.Endpoint(0).Send(1, &wire.Probe{}); err != nil {
		t.Fatalf("send to crashed client must not error: %v", err)
	}
}

func TestSendFromClosedEndpointFails(t *testing.T) {
	h := NewHub(2)
	defer h.Stop()
	h.Endpoint(0).Close()
	if err := h.Endpoint(0).Send(1, &wire.Probe{}); err == nil {
		t.Fatal("send from closed endpoint accepted")
	}
}

func TestRecvDrainsAfterClose(t *testing.T) {
	h := NewHub(2)
	_ = h.Endpoint(0).Send(1, &wire.Probe{From: 0})
	h.Endpoint(1).Close()
	if _, err := h.Endpoint(1).Recv(); err != nil {
		t.Fatalf("queued message lost on close: %v", err)
	}
	if _, err := h.Endpoint(1).Recv(); err == nil {
		t.Fatal("empty closed endpoint returned a message")
	}
}

func TestRecvUnblocksOnClose(t *testing.T) {
	h := NewHub(1)
	done := make(chan error, 1)
	go func() {
		_, err := h.Endpoint(0).Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	h.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil error after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestTryRecv(t *testing.T) {
	h := NewHub(2)
	defer h.Stop()
	if _, ok := h.Endpoint(1).TryRecv(); ok {
		t.Fatal("TryRecv on empty inbox returned a message")
	}
	_ = h.Endpoint(0).Send(1, &wire.Probe{From: 0})
	if m, ok := h.Endpoint(1).TryRecv(); !ok || m.From != 0 {
		t.Fatalf("TryRecv = %+v, %v", m, ok)
	}
}

func TestConcurrentSendersNoLoss(t *testing.T) {
	h := NewHub(5)
	defer h.Stop()
	const per = 100
	var wg sync.WaitGroup
	for s := 1; s < 5; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := h.Endpoint(s).Send(0, &wire.VersionMsg{From: s}); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	counts := make(map[int]int)
	for i := 0; i < 4*per; i++ {
		m, err := h.Endpoint(0).Recv()
		if err != nil {
			t.Fatal(err)
		}
		counts[m.From]++
	}
	for s := 1; s < 5; s++ {
		if counts[s] != per {
			t.Fatalf("sender %d: delivered %d, want %d", s, counts[s], per)
		}
	}
}

func TestHubN(t *testing.T) {
	if NewHub(7).N() != 7 {
		t.Fatal("N() wrong")
	}
}

func TestEndpointID(t *testing.T) {
	h := NewHub(3)
	defer h.Stop()
	for i := 0; i < 3; i++ {
		if h.Endpoint(i).ID() != i {
			t.Fatalf("endpoint %d reports ID %d", i, h.Endpoint(i).ID())
		}
	}
}
