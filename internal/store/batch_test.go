package store

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/wire"
)

// The transport's batched dispatcher discovers batch-capable cores
// structurally; Persistent must satisfy the extension.
var _ transport.BatchCore = (*Persistent)(nil)

// TestBufferedApplyMatchesUnbatched drives the same SUBMIT stream
// through the per-op path and the buffered path and requires identical
// applied state, an identical WAL (recovery reproduces the state), and
// one shared flush per batch.
func TestBufferedApplyMatchesUnbatched(t *testing.T) {
	const n, ops = 3, 24
	mkSubmits := func() []Record {
		recs := make([]Record, 0, ops)
		for i := 0; i < ops; i++ {
			recs = append(recs, submitRecord(i%n, int64(i+1)))
		}
		return recs
	}

	perOp, err := Open(ustor.NewServer(n), NewMemBackend(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range mkSubmits() {
		if r := perOp.HandleSubmit(context.Background(), rec.From, rec.Msg.(*wire.Submit)); r == nil {
			t.Fatal("per-op path returned nil reply")
		}
	}

	backend := NewMemBackend()
	batched, err := Open(ustor.NewServer(n), backend, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 8
	recs := mkSubmits()
	for start := 0; start < len(recs); start += batch {
		for _, rec := range recs[start : start+batch] {
			if r := batched.HandleSubmitBuffered(context.Background(), rec.From, rec.Msg.(*wire.Submit)); r == nil {
				t.Fatal("buffered path returned nil reply")
			}
		}
		if err := batched.FlushBatch(); err != nil {
			t.Fatalf("FlushBatch: %v", err)
		}
	}

	if !bytes.Equal(perOp.ExportState(), batched.ExportState()) {
		t.Fatal("buffered apply diverged from per-op apply")
	}

	// The buffered WAL must be complete: recovery reproduces the state.
	recovered, err := Open(ustor.NewServer(n), backend, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if !bytes.Equal(recovered.ExportState(), batched.ExportState()) {
		t.Fatal("recovered state differs: buffered appends missing from the WAL")
	}
}

// flushFailBackend accepts appends but fails every Flush, modeling a
// device that buffers writes and dies at the sync.
type flushFailBackend struct{ MemBackend }

func (b *flushFailBackend) Flush() error { return fmt.Errorf("fsync: input/output error") }

// TestFlushBatchFailureSticky: a failed batch flush must poison the
// wrapper exactly like a per-op flush failure — the error surfaces to
// the dispatcher (which suppresses the batch's replies) and every later
// operation is refused.
func TestFlushBatchFailureSticky(t *testing.T) {
	ps, err := Open(ustor.NewServer(2), &flushFailBackend{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := submitRecord(0, 1)
	if r := ps.HandleSubmitBuffered(context.Background(), rec.From, rec.Msg.(*wire.Submit)); r == nil {
		t.Fatal("buffered apply refused before any failure")
	}
	if err := ps.FlushBatch(); err == nil {
		t.Fatal("FlushBatch succeeded over a failing backend")
	}
	if ps.Err() == nil {
		t.Fatal("flush failure did not stick")
	}
	rec2 := submitRecord(1, 2)
	if r := ps.HandleSubmitBuffered(context.Background(), rec2.From, rec2.Msg.(*wire.Submit)); r != nil {
		t.Fatal("buffered apply served after a sticky flush failure")
	}
	if r := ps.HandleSubmit(context.Background(), rec2.From, rec2.Msg.(*wire.Submit)); r != nil {
		t.Fatal("per-op apply served after a sticky flush failure")
	}
	if err := ps.FlushBatch(); err == nil {
		t.Fatal("FlushBatch cleared a sticky failure")
	}
}
