// Command faustlint is the project's invariant-enforcing static
// analysis suite. It bundles five go/analysis analyzers, each guarding
// a discipline a past PR paid to establish:
//
//	lockheldio     no network/disk I/O while a state mutex is held
//	cryptoboundary raw ed25519/sha256 only inside internal/crypto
//	erroriscmp     errors.Is instead of ==/!= against sentinels
//	hotpathalloc   zero allocations in Append*/*Into/EncodedSize
//	obsevent       detections record obs events; kinds are constants
//
// Run from the repository root:
//
//	go run ./tools/faustlint ./...
//
// Findings can be suppressed per line with a justified
// //faustlint:ignore directive; see tools/faustlint/internal/directive.
package main

import (
	"golang.org/x/tools/go/analysis/multichecker"

	"faust/tools/faustlint/analyzers/cryptoboundary"
	"faust/tools/faustlint/analyzers/erroriscmp"
	"faust/tools/faustlint/analyzers/hotpathalloc"
	"faust/tools/faustlint/analyzers/lockheldio"
	"faust/tools/faustlint/analyzers/obsevent"
)

func main() {
	multichecker.Main(
		cryptoboundary.Analyzer,
		erroriscmp.Analyzer,
		hotpathalloc.Analyzer,
		lockheldio.Analyzer,
		obsevent.Analyzer,
	)
}
