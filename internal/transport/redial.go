package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"faust/internal/obs/trace"
)

// A tcpBlobChannel is poisoned permanently by its first connection
// failure: the sticky error fails every later call. That is the right
// contract for the channel itself (callers must not silently lose
// pipelined requests), but it makes one transient drop fatal to a whole
// client session. RedialBlobChannel restores liveness at the layer
// above: it owns a current channel and, when an operation fails with a
// connection-level error (ErrBlobChannelBroken or ErrClosed from a died
// channel), discards it, dials a fresh one and retries the operation —
// a bounded number of times, with capped exponential backoff between
// attempts. Server-side answers (rejected puts, store errors, missing
// blobs) pass through untouched: a new connection cannot change them.
//
// Blob operations are idempotent by construction (puts are
// content-addressed, gets are reads), so retrying a request whose fate
// is unknown — the connection died after the frame was sent — is always
// safe.

// DefaultRedialAttempts is how many fresh connections one operation may
// consume before its error is surfaced.
const DefaultRedialAttempts = 3

// RedialOptions tunes a RedialBlobChannel.
type RedialOptions struct {
	// Attempts caps redials per operation (DefaultRedialAttempts if <= 0).
	Attempts int
	// Backoff is the sleep before redial k, doubling each time and capped
	// at BackoffCap. Defaults: 50ms, capped at 1s.
	Backoff    time.Duration
	BackoffCap time.Duration
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
}

// RedialBlobChannel is a BlobChannel that survives connection drops by
// redialing. Safe for concurrent use; concurrent operations share one
// underlying channel (and its pipelining) and one of them performs the
// redial while the others wait for it.
type RedialBlobChannel struct {
	dial func() (BlobChannel, error)
	opts RedialOptions

	mu     sync.Mutex
	ch     BlobChannel // nil until first use or after a discard
	gen    int         // bumped on every successful redial
	closed bool
}

var _ BlobChannel = (*RedialBlobChannel)(nil)

// NewRedialBlobChannel wraps a dial function (typically a closure over
// DialTCPBlob) in a redial-on-failure channel. The first connection is
// dialed lazily on first use.
func NewRedialBlobChannel(dial func() (BlobChannel, error), opts RedialOptions) *RedialBlobChannel {
	if opts.Attempts <= 0 {
		opts.Attempts = DefaultRedialAttempts
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &RedialBlobChannel{dial: dial, opts: opts}
}

// current returns the live channel and its generation, dialing if none
// is open. gen lets a failing caller tell "the channel I used is still
// installed" from "someone already replaced it" — in the latter case it
// retries on the replacement without burning a redial of its own.
func (r *RedialBlobChannel) current() (BlobChannel, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, ErrClosed
	}
	if r.ch == nil {
		ch, err := r.dial()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: redial: %v", ErrBlobChannelBroken, err)
		}
		r.ch = ch
		r.gen++
	}
	return r.ch, r.gen, nil
}

// discard drops the channel of generation gen (if still installed) so
// the next current() dials fresh. Returns true if this caller did the
// discarding (and thus should pay the backoff sleep).
func (r *RedialBlobChannel) discard(gen int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen || r.ch == nil {
		return false // someone else already replaced it
	}
	_ = r.ch.Close()
	r.ch = nil
	return true
}

// retryable reports whether err indicates a dead connection rather than
// a server-side answer.
func retryable(err error) bool {
	return errors.Is(err, ErrBlobChannelBroken) || errors.Is(err, ErrClosed)
}

// do runs op against the current channel, redialing on connection death.
// Each redial cycle (discard + backoff + fresh dial on the next
// current()) is recorded as a blob.redial span of ctx's trace, so a
// trace that survived a connection drop shows where the time went.
func (r *RedialBlobChannel) do(ctx context.Context, op func(ch BlobChannel) error) error {
	backoff := r.opts.Backoff
	var lastErr error
	for attempt := 0; attempt <= r.opts.Attempts; attempt++ {
		ch, gen, err := r.current()
		if err != nil {
			if !retryable(err) {
				return err
			}
			lastErr = err
		} else {
			err = op(ch)
			if err == nil || !retryable(err) {
				return err
			}
			lastErr = err
			r.discard(gen)
		}
		tmBlobRedials.Inc()
		if attempt < r.opts.Attempts {
			redialStart := time.Now()
			r.opts.Sleep(backoff)
			trace.Event(ctx, spanRedial, redialStart)
			if backoff *= 2; backoff > r.opts.BackoffCap {
				backoff = r.opts.BackoffCap
			}
		}
	}
	return fmt.Errorf("transport: blob channel still failing after %d redials: %w", r.opts.Attempts, lastErr)
}

// PutBlob implements BlobChannel.
func (r *RedialBlobChannel) PutBlob(ctx context.Context, hash, data []byte) error {
	return r.do(ctx, func(ch BlobChannel) error { return ch.PutBlob(ctx, hash, data) })
}

// GetBlob implements BlobChannel.
func (r *RedialBlobChannel) GetBlob(ctx context.Context, hash []byte) ([]byte, error) {
	var out []byte
	err := r.do(ctx, func(ch BlobChannel) error {
		var err error
		out, err = ch.GetBlob(ctx, hash)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close implements BlobChannel: it closes the current connection and
// rejects further operations.
func (r *RedialBlobChannel) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.ch != nil {
		err := r.ch.Close()
		r.ch = nil
		return err
	}
	return nil
}
