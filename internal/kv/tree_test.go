package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"faust/internal/crypto"
)

func testEntry(key string, size int) entry {
	e := entry{Key: key, Size: int64(size)}
	if size > 0 {
		e.Chunks = [][]byte{crypto.Hash([]byte(key))}
	}
	return e
}

// checkTree asserts every structural invariant of a fully loaded tree
// and returns its height.
func checkTree(t *testing.T, root *node, sh treeShape) uint32 {
	t.Helper()
	if root == nil {
		return 0
	}
	h, err := treeCheck(root, sh)
	if err != nil {
		t.Fatalf("tree invariant broken: %v", err)
	}
	return h
}

// TestTreeRandomOpsAgainstSortedModel drives the tree through random
// inserts, overwrites and deletes with a tiny fanout (deep trees, many
// splits and merges) and checks contents, counts and invariants against
// a sorted-map model after every operation batch.
func TestTreeRandomOpsAgainstSortedModel(t *testing.T) {
	sh := treeShape{leafMax: 4, intMax: 4}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		model := map[string]int{}
		var root *node
		for step := 0; step < 600; step++ {
			key := fmt.Sprintf("k%03d", rng.Intn(120))
			if rng.Intn(3) == 0 {
				newRoot, ok := treeDelete(root, key, sh)
				_, inModel := model[key]
				if ok != inModel {
					t.Fatalf("seed %d step %d: delete %q found=%v, model=%v", seed, step, key, ok, inModel)
				}
				root = newRoot
				delete(model, key)
			} else {
				size := rng.Intn(50)
				root = treePut(root, testEntry(key, size), sh)
				model[key] = size
			}
			if step%37 == 0 {
				checkTree(t, root, sh)
			}
		}
		checkTree(t, root, sh)

		// Full content comparison.
		keys := treeKeys(root, nil)
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		if len(keys) != len(want) {
			t.Fatalf("seed %d: %d keys, model has %d", seed, len(keys), len(want))
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("seed %d: key list diverged at %d: %q vs %q", seed, i, keys[i], want[i])
			}
			e, ok := treeFind(root, want[i])
			if !ok || e.Size != int64(model[want[i]]) {
				t.Fatalf("seed %d: find %q = %+v, %v", seed, want[i], e, ok)
			}
		}
		if _, ok := treeFind(root, "absent-key"); ok {
			t.Fatalf("seed %d: found a key that was never inserted", seed)
		}

		// Drain: delete everything and end at the empty tree.
		for _, k := range want {
			var ok bool
			root, ok = treeDelete(root, k, sh)
			if !ok {
				t.Fatalf("seed %d: drain delete %q missed", seed, k)
			}
		}
		if root != nil {
			t.Fatalf("seed %d: tree not empty after deleting every key", seed)
		}
	}
}

// TestTreeCopyOnWrite: mutations never change the nodes an old root
// reaches, so a pre-mutation root keeps serving the pre-mutation
// contents — the property O(1) rollback and lock-free readers rely on.
func TestTreeCopyOnWrite(t *testing.T) {
	sh := treeShape{leafMax: 4, intMax: 4}
	var root *node
	for i := 0; i < 40; i++ {
		root = treePut(root, testEntry(fmt.Sprintf("k%03d", i), i), sh)
	}
	old := root
	oldKeys := treeKeys(old, nil)

	root = treePut(root, testEntry("k005", 999), sh)
	root = treePut(root, testEntry("zzz", 1), sh)
	root, _ = treeDelete(root, "k010", sh)

	// The old root still sees the old world.
	if e, ok := treeFind(old, "k005"); !ok || e.Size != 5 {
		t.Fatalf("old root sees mutated entry: %+v, %v", e, ok)
	}
	if _, ok := treeFind(old, "zzz"); ok {
		t.Fatal("old root sees a later insert")
	}
	if e, ok := treeFind(old, "k010"); !ok || e.Size != 10 {
		t.Fatalf("old root lost a later-deleted key: %+v, %v", e, ok)
	}
	after := treeKeys(old, nil)
	if len(after) != len(oldKeys) {
		t.Fatalf("old root key count moved: %d -> %d", len(oldKeys), len(after))
	}
	// And the new root sees the new world.
	if e, ok := treeFind(root, "k005"); !ok || e.Size != 999 {
		t.Fatalf("new root missed the overwrite: %+v, %v", e, ok)
	}
	if _, ok := treeFind(root, "k010"); ok {
		t.Fatal("new root still has the deleted key")
	}
	checkTree(t, root, sh)
	checkTree(t, old, sh)
}

// TestTreeSplitBySize: a node whose ENCODED size exceeds the cap splits
// even when its entry count is within the fanout, so node blobs stay
// bounded whatever the fanout configuration says.
func TestTreeSplitBySize(t *testing.T) {
	oldCap := nodeSplitBytes
	nodeSplitBytes = 2048
	defer func() { nodeSplitBytes = oldCap }()

	sh := treeShape{leafMax: 1 << 20, intMax: 1 << 20} // fanout effectively unbounded
	var root *node
	for i := 0; i < 64; i++ {
		// ~100-byte entries: the size cap, not the fanout, must split.
		key := fmt.Sprintf("key-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, 40)))
		e := entry{Key: key, Size: 64, Chunks: [][]byte{crypto.Hash([]byte(key)), crypto.Hash([]byte(key + "2"))}}
		root = treePut(root, e, sh)
	}
	if h := checkTree(t, root, sh); h < 2 {
		t.Fatalf("size cap did not split: height %d, want >= 2", h)
	}
	var walk func(n *node)
	walk = func(n *node) {
		enc := encodeNode(n)
		if len(enc) > nodeSplitBytes+512 {
			t.Fatalf("node encoding of %d bytes far exceeds the %d cap", len(enc), nodeSplitBytes)
		}
		for i := range n.children {
			walk(n.children[i].child)
		}
	}
	// Hashes are not resolved here; encode interior nodes with child
	// hashes filled so encodeNode has them.
	var resolve func(n *node) []byte
	resolve = func(n *node) []byte {
		if !n.leaf {
			for i := range n.children {
				n.children[i].hash = resolve(n.children[i].child)
			}
		}
		enc := encodeNode(n)
		return crypto.Hash(enc)
	}
	resolve(root)
	walk(root)
}

// TestNodeCodecRoundTrip: leaves and interior nodes survive the codec
// canonically.
func TestNodeCodecRoundTrip(t *testing.T) {
	leaf := &node{leaf: true, entries: []entry{
		testEntry("a", 0),
		testEntry("b", 7),
		{Key: "c", Size: 100, Chunks: [][]byte{crypto.Hash([]byte("1")), crypto.Hash([]byte("2"))}},
	}}
	emptyLeaf := &node{leaf: true}
	interior := &node{children: []childRef{
		{minKey: "a", count: 3, bytes: 107, hash: crypto.Hash([]byte("left"))},
		{minKey: "m", count: 2, bytes: 30, hash: crypto.Hash([]byte("right"))},
	}}
	for _, n := range []*node{leaf, emptyLeaf, interior} {
		enc := encodeNode(n)
		got, err := decodeNode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(encodeNode(got), enc) {
			t.Fatal("node did not round-trip canonically")
		}
		if got.leaf != n.leaf || got.count() != n.count() || got.totalBytes() != n.totalBytes() {
			t.Fatalf("node facts changed across the codec: %+v vs %+v", got, n)
		}
	}
	if got := encodedLeafSize(leaf.entries); got != len(encodeNode(leaf)) {
		t.Fatalf("encodedLeafSize = %d, encoding is %d", got, len(encodeNode(leaf)))
	}
	if got := encodedInteriorSize(interior.children); got != len(encodeNode(interior)) {
		t.Fatalf("encodedInteriorSize = %d, encoding is %d", got, len(encodeNode(interior)))
	}
}

// TestNodeCodecRejectsMalformed: unsorted, inconsistent or truncated
// node encodings die cleanly, so a server cannot present two encodings
// of one node (or a bogus one) without changing its hash.
func TestNodeCodecRejectsMalformed(t *testing.T) {
	unsortedLeaf := &node{leaf: true, entries: []entry{testEntry("b", 1), testEntry("a", 1)}}
	if _, err := decodeNode(encodeNode(unsortedLeaf)); err == nil {
		t.Fatal("unsorted leaf accepted")
	}
	dupLeaf := &node{leaf: true, entries: []entry{testEntry("a", 1), testEntry("a", 2)}}
	if _, err := decodeNode(encodeNode(dupLeaf)); err == nil {
		t.Fatal("duplicate key accepted")
	}
	// Size/chunk inconsistency.
	bad := &node{leaf: true, entries: []entry{{Key: "a", Size: 7}}}
	if _, err := decodeNode(encodeNode(bad)); err == nil {
		t.Fatal("sized entry without chunks accepted")
	}
	unsortedInt := &node{children: []childRef{
		{minKey: "m", count: 1, bytes: 1, hash: crypto.Hash([]byte("1"))},
		{minKey: "a", count: 1, bytes: 1, hash: crypto.Hash([]byte("2"))},
	}}
	if _, err := decodeNode(encodeNode(unsortedInt)); err == nil {
		t.Fatal("unsorted interior node accepted")
	}
	zeroCount := &node{children: []childRef{{minKey: "a", count: 0, bytes: 0, hash: crypto.Hash([]byte("1"))}}}
	if _, err := decodeNode(encodeNode(zeroCount)); err == nil {
		t.Fatal("zero-count child accepted")
	}
	if _, err := decodeNode([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted as a tree node")
	}
	// Truncations die cleanly, for both node kinds.
	for _, blob := range [][]byte{
		encodeNode(&node{leaf: true, entries: []entry{testEntry("x", 5), testEntry("y", 6)}}),
		encodeNode(&node{children: []childRef{
			{minKey: "a", count: 1, bytes: 5, hash: crypto.Hash([]byte("c"))},
			{minKey: "b", count: 1, bytes: 6, hash: crypto.Hash([]byte("d"))},
		}}),
	} {
		for l := 0; l < len(blob); l++ {
			if _, err := decodeNode(blob[:l]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", l)
			}
		}
		if _, err := decodeNode(append(append([]byte(nil), blob...), 0)); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	}
}

// TestCheckRef: a child that does not match the facts its parent
// committed — min key, entry count, byte total — is rejected.
func TestCheckRef(t *testing.T) {
	child := &node{leaf: true, entries: []entry{testEntry("k1", 10), testEntry("k2", 20)}}
	if err := checkRef(child, "k1", 2, 30); err != nil {
		t.Fatalf("honest ref rejected: %v", err)
	}
	if err := checkRef(child, "k0", 2, 30); err == nil {
		t.Fatal("wrong min key accepted")
	}
	if err := checkRef(child, "k1", 3, 30); err == nil {
		t.Fatal("wrong count accepted")
	}
	if err := checkRef(child, "k1", 2, 31); err == nil {
		t.Fatal("wrong byte total accepted")
	}
	if err := checkRef(&node{leaf: true}, "k1", 0, 0); err == nil {
		t.Fatal("empty committed node accepted")
	}
}

// TestRootRecordRoundTrip pins the register-value codec, including the
// consistency rules between the counts, the height and the root hash.
func TestRootRecordRoundTrip(t *testing.T) {
	rr := &rootRecord{
		Gen:        42,
		NumEntries: 3,
		TotalBytes: 12345,
		Height:     2,
		RootHash:   crypto.Hash([]byte("root")),
	}
	enc := encodeRoot(rr)
	got, err := decodeRoot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != rr.Gen || got.NumEntries != rr.NumEntries || got.TotalBytes != rr.TotalBytes ||
		got.Height != rr.Height || !bytes.Equal(got.RootHash, rr.RootHash) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rr)
	}
	if _, err := decodeRoot(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated root record accepted")
	}
	if _, err := decodeRoot([]byte("not a root record")); err == nil {
		t.Fatal("garbage accepted as root record")
	}

	// The empty namespace has exactly one valid encoding.
	empty := &rootRecord{Gen: 7, RootHash: emptyTreeRoot}
	if _, err := decodeRoot(encodeRoot(empty)); err != nil {
		t.Fatalf("valid empty record rejected: %v", err)
	}
	badEmpty := &rootRecord{Gen: 7, RootHash: crypto.Hash([]byte("not empty"))}
	if _, err := decodeRoot(encodeRoot(badEmpty)); err == nil {
		t.Fatal("empty record with a non-empty root hash accepted")
	}
	tallEmpty := &rootRecord{Gen: 7, Height: 1, RootHash: emptyTreeRoot}
	if _, err := decodeRoot(encodeRoot(tallEmpty)); err == nil {
		t.Fatal("empty record with nonzero height accepted")
	}
	// Height bounds on non-empty records.
	absurd := &rootRecord{Gen: 1, NumEntries: 1, TotalBytes: 1, Height: maxTreeHeight + 1, RootHash: crypto.Hash([]byte("x"))}
	if _, err := decodeRoot(encodeRoot(absurd)); err == nil {
		t.Fatal("absurd height accepted")
	}
	flat := &rootRecord{Gen: 1, NumEntries: 1, TotalBytes: 1, Height: 0, RootHash: crypto.Hash([]byte("x"))}
	if _, err := decodeRoot(encodeRoot(flat)); err == nil {
		t.Fatal("non-empty record with zero height accepted")
	}
}
