// Package faust is a fail-aware untrusted storage service — a Go
// implementation of the FAUST and USTOR protocols from:
//
//	Christian Cachin, Idit Keidar, Alexander Shraer.
//	"Fail-Aware Untrusted Storage." DSN 2009.
//
// A set of n mutually-trusting clients shares n single-writer multi-reader
// registers through one storage server that nobody trusts. The service
// guarantees (Definition 5 of the paper):
//
//   - linearizability and wait-freedom whenever the server is correct;
//   - causal consistency always, even under a malicious server;
//   - accurate failure notifications: fail fires only if the server
//     really misbehaved, and then at every client;
//   - stability notifications: each client receives a monotonically
//     growing stability cut W, where W[j] bounds the timestamps of its
//     operations guaranteed consistent with client j. Operations stable
//     w.r.t. everyone are final: the execution prefix up to them is
//     linearizable.
//
// Under the hood every operation runs the USTOR protocol (one SUBMIT ->
// REPLY round plus an asynchronous COMMIT, O(n) bytes per message),
// maintaining hash-chained, signed version vectors that make any
// consistency violation by the server either immediately detectable or
// permanently fork the clients' views — in which case the background
// PROBE/VERSION exchange between clients exposes the fork with
// cryptographic evidence.
//
// # Quickstart
//
//	svc, err := faust.NewService(3)
//	if err != nil { ... }
//	defer svc.Close()
//
//	alice, _ := svc.Client(0)
//	bob, _ := svc.Client(1)
//
//	ts, _ := alice.Write([]byte("report-v1"))
//	val, _, _ := bob.Read(0)              // "report-v1"
//	_ = alice.WaitStable(ts, time.Second) // consistent with everyone
//
// See examples/ for complete programs, including a forking-attack
// demonstration and the paper's collaboration scenario.
package faust

import (
	"errors"
	"fmt"
	"time"

	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// Timestamp identifies an operation of one client; timestamps returned to
// a client increase monotonically (Definition 5, Integrity).
type Timestamp = int64

// Cut is a stability cut: Cut[j] is the largest timestamp t such that all
// of this client's operations up to t are known consistent with client j.
type Cut = []int64

// ErrHalted is returned by operations after the client detected a server
// failure (or was stopped).
var ErrHalted = faustproto.ErrHalted

// Service is an in-process FAUST deployment: a correct storage server, an
// offline client-to-client channel and up to n clients. It is the
// simplest way to use the library and the configuration every test and
// example builds on. For a networked deployment, see cmd/faust-server
// and cmd/faust-client.
type Service struct {
	n       int
	ring    *crypto.Keyring
	signers []*crypto.Signer
	network *transport.Network
	hub     *offline.Hub
	server  *ustor.Server
	clients []*Client
	cfg     faustproto.Config
}

// ServiceOption configures a Service.
type ServiceOption func(*Service)

// WithProbeTimeout sets how long a client waits for news from a peer
// before probing it over the offline channel (the paper's delta).
func WithProbeTimeout(d time.Duration) ServiceOption {
	return func(s *Service) { s.cfg.ProbeTimeout = d }
}

// WithPollInterval sets the cadence of the background dummy-read and
// probe loops.
func WithPollInterval(d time.Duration) ServiceOption {
	return func(s *Service) { s.cfg.PollInterval = d }
}

// WithoutDummyReads disables the background dummy reads. Stability then
// advances only through user operations and offline probes.
func WithoutDummyReads() ServiceOption {
	return func(s *Service) { s.cfg.DisableDummyReads = true }
}

// NewService creates an in-process service for n clients with freshly
// generated Ed25519 keys.
func NewService(n int, opts ...ServiceOption) (*Service, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faust: need at least one client, got %d", n)
	}
	ring, signers, err := crypto.GenerateKeyring(n)
	if err != nil {
		return nil, fmt.Errorf("faust: generating keys: %w", err)
	}
	return newService(n, ring, signers, opts...), nil
}

// NewTestService creates an in-process service with deterministic keys
// derived from seed. Intended for tests and benchmarks; the keys are not
// secure.
func NewTestService(n int, seed int64, opts ...ServiceOption) *Service {
	ring, signers := crypto.NewTestKeyring(n, seed)
	return newService(n, ring, signers, opts...)
}

func newService(n int, ring *crypto.Keyring, signers []*crypto.Signer, opts ...ServiceOption) *Service {
	s := &Service{
		n:       n,
		ring:    ring,
		signers: signers,
		server:  ustor.NewServer(n),
		hub:     offline.NewHub(n),
		clients: make([]*Client, n),
		cfg:     faustproto.DefaultConfig(),
	}
	for _, o := range opts {
		o(s)
	}
	s.network = transport.NewNetwork(n, s.server)
	return s
}

// N returns the number of clients the service supports.
func (s *Service) N() int { return s.n }

// ClientOption configures one client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	onStable func(Cut)
	onFail   func(error)
}

// OnStable registers a callback for stable notifications (stable_i(W) in
// the paper). The callback receives a copy of the cut and runs outside
// the client's locks.
func OnStable(f func(Cut)) ClientOption {
	return func(c *clientConfig) { c.onStable = f }
}

// OnFail registers a callback for the fail notification; it fires at most
// once, and only if the server demonstrably misbehaved.
func OnFail(f func(error)) ClientOption {
	return func(c *clientConfig) { c.onFail = f }
}

// Client creates (on first call) and returns client i, starting its
// background machinery. Options are honored only on the creating call.
func (s *Service) Client(i int, opts ...ClientOption) (*Client, error) {
	if i < 0 || i >= s.n {
		return nil, fmt.Errorf("faust: client %d out of range [0,%d)", i, s.n)
	}
	if s.clients[i] != nil {
		if len(opts) > 0 {
			return nil, errors.New("faust: client already created; options ignored would mislead")
		}
		return s.clients[i], nil
	}
	var cc clientConfig
	for _, o := range opts {
		o(&cc)
	}
	protoOpts := []faustproto.Option{faustproto.WithConfig(s.cfg)}
	if cc.onStable != nil {
		protoOpts = append(protoOpts, faustproto.WithStableHandler(cc.onStable))
	}
	if cc.onFail != nil {
		protoOpts = append(protoOpts, faustproto.WithFailHandler(cc.onFail))
	}
	inner := faustproto.NewClient(i, s.ring, s.signers[i],
		s.network.ClientLink(i), s.hub.Endpoint(i), protoOpts...)
	inner.Start()
	s.clients[i] = &Client{id: i, n: s.n, inner: inner}
	return s.clients[i], nil
}

// Close stops all clients and shuts the service down.
func (s *Service) Close() {
	for _, c := range s.clients {
		if c != nil {
			c.inner.Stop()
		}
	}
	s.network.Stop()
	s.hub.Stop()
}

// Client is one collaborator's handle to the fail-aware service. Methods
// are safe for concurrent use; operations are serialized per client as
// the model requires.
type Client struct {
	id    int
	n     int
	inner *faustproto.Client
}

// ID returns the client index; the client writes register ID() and may
// read any register.
func (c *Client) ID() int { return c.id }

// Write stores x in the client's own register and returns the operation's
// timestamp. The operation is immediately causally consistent; track its
// stability via StableCut, WaitStable, or an OnStable callback.
func (c *Client) Write(x []byte) (Timestamp, error) {
	return c.inner.Write(x)
}

// Read returns the current value of register j (nil if never written) and
// the operation's timestamp.
func (c *Client) Read(j int) ([]byte, Timestamp, error) {
	if j < 0 || j >= c.n {
		return nil, 0, fmt.Errorf("faust: register %d out of range [0,%d)", j, c.n)
	}
	return c.inner.Read(j)
}

// StableCut returns the current stability cut.
func (c *Client) StableCut() Cut { return c.inner.StableCut() }

// IsStable reports whether the operation with the given timestamp is
// stable w.r.t. every client; the execution prefix up to a stable
// operation is linearizable.
func (c *Client) IsStable(t Timestamp) bool { return c.inner.IsStable(t) }

// WaitStable blocks until the operation with timestamp t is stable w.r.t.
// all clients, a failure is detected (the detection error is returned),
// or the timeout elapses.
func (c *Client) WaitStable(t Timestamp, timeout time.Duration) error {
	return c.inner.WaitStable(t, timeout)
}

// WaitStableFor blocks until the operation with timestamp t is stable
// w.r.t. client j.
func (c *Client) WaitStableFor(j int, t Timestamp, timeout time.Duration) error {
	return c.inner.WaitStableFor(j, t, timeout)
}

// Failed reports whether this client has detected a server failure, and
// the reason. A failure is proof of misbehavior — the service never
// reports false positives.
func (c *Client) Failed() (bool, error) { return c.inner.Failed() }

// WaitFail blocks until a failure is detected (returns nil) or the
// timeout elapses (returns an error). Useful in tests and monitoring.
func (c *Client) WaitFail(timeout time.Duration) error {
	return c.inner.WaitFail(timeout)
}

// Stop halts this client's background machinery. It is not a failure.
func (c *Client) Stop() { c.inner.Stop() }
