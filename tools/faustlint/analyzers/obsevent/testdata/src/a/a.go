// Fixture for the obsevent analyzer.
package a

import "obs"

// DetectionError mirrors the protocol detection error types.
type DetectionError struct {
	Client int
	Check  string
}

func (e *DetectionError) Error() string { return e.Check }

// ForkError mirrors the fork-evidence error.
type ForkError struct {
	Client int
}

func (e *ForkError) Error() string { return "fork" }

type client struct {
	id     int
	events *obs.EventLog
}

// silentDetection constructs a detection without any event: flagged.
func (c *client) silentDetection(check string) error {
	return &DetectionError{Client: c.id, Check: check} // want `DetectionError constructed in silentDetection without recording an obs event`
}

// silentFork: same for fork evidence.
func (c *client) silentFork() error {
	return &ForkError{Client: c.id} // want `ForkError constructed in silentFork without recording an obs event`
}

// recordingDetection records in the same function: clean.
func (c *client) recordingDetection(check string) error {
	err := &DetectionError{Client: c.id, Check: check}
	c.events.Record(obs.EventFork, c.id, "", check)
	return err
}

// recordsInClosure: the failOnce.Do(func(){...}) idiom counts.
func (c *client) recordsInClosure(check string) error {
	err := &DetectionError{Client: c.id, Check: check}
	once := func() { c.events.Record(obs.EventFail, c.id, "", check) }
	once()
	return err
}

// delegates hands the evidence to a fail helper, which records.
func (c *client) delegates() {
	c.failWith(&ForkError{Client: c.id})
}

func (c *client) failWith(err error) {
	c.events.Record(obs.EventFail, c.id, "", err.Error())
}

// rawKindString mints a kind inline: flagged even though it records.
func (c *client) rawKindString() {
	c.events.Record("surprise-kind", c.id, "", "") // want `event kind "surprise-kind" is a raw string literal`
}

// mintedKind converts a string: flagged.
func (c *client) mintedKind() {
	c.events.Record(obs.EventKind("minted"), c.id, "", "") // want `event kind minted inline with an EventKind conversion`
}

// kindPlumbing passes a kind variable through: clean.
func (c *client) kindPlumbing(kind obs.EventKind) {
	c.events.Record(kind, c.id, "", "")
}

// ignored: the escape hatch with a justification.
func (c *client) ignored() error {
	//faustlint:ignore obsevent constructed only as a value for tests to compare against
	return &DetectionError{Client: c.id, Check: "fixture"}
}
