package transport

import (
	"context"
	"time"

	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/wire"
)

// Batched dispatch pipeline, shared by the TCP and in-memory transports.
//
// The pre-batching dispatchers popped one envelope at a time: one
// signature verify (when enabled), one HandleSubmit, one WAL fsync (under
// persistence) and one reply write per operation. Under load the inbox
// holds many queued operations, and every per-op cost that can legally be
// amortized across them should be. The pipeline stages a drained batch:
//
//	drain     popBatch takes everything queued, up to the -max-batch cap,
//	          preserving arrival (and therefore per-connection FIFO) order
//	verify    SUBMIT signatures of the whole batch check in parallel on
//	          crypto's worker pool — a forged one rejects only its own op
//	apply     verified ops run sequentially against the single-writer
//	          core, exactly as the paper's atomic handlers require; cores
//	          implementing BatchCore buffer their WAL appends
//	flush     each touched BatchCore makes the whole batch durable with
//	          one fsync instead of one per op
//	reply     replies coalesce into one framed write per destination
//
// A batch of one skips the machinery entirely (dispatchOne), so idle or
// low-concurrency deployments keep the pre-batching latency profile.
// Batches never reorder: ops apply in arrival order and per-client reply
// order is preserved, so the reliable-FIFO contract the protocol assumes
// is untouched.

// DefaultMaxBatch caps how many envelopes one drain may take when the
// transport was not configured otherwise. Large enough to amortize fsync
// and verification fan-out, small enough to bound the latency a first-in
// op waits for its batchmates' apply stage.
const DefaultMaxBatch = 64

// oversizedBatch is the size from which a drained batch is considered
// queue-pressure evidence worth linking to a trace: the batch-size
// histogram then records the batch's first traced SUBMIT as its exemplar.
const oversizedBatch = 32

// batchSink is the transport-specific half of the pipeline: which core
// and (optional) verification keyring own an envelope, and how replies
// leave the server. shardRT implements it for TCP, Network for the
// in-memory transport, which is what lets both run the same dispatch
// engine — and the same drain-after-close semantics.
type batchSink interface {
	sinkCore() ServerCore
	sinkRing() *crypto.Keyring
	sinkName() string
	// countOp accounts one dispatched envelope (per-tenant op counters).
	countOp()
	// sendReply delivers one reply to client `to`; sendReplies delivers a
	// batch's replies for `to` in order, coalesced into as few transport
	// writes as possible. Delivery failures are the destination's problem
	// (dead connection, closed outbox) — the dispatcher never blocks on
	// them.
	sendReply(to int, m wire.Message)
	sendReplies(to int, msgs []wire.Message)
	// dropUnknown accounts a message kind the core cannot handle.
	dropUnknown()
}

// BatchCore is an optional ServerCore extension for cores whose
// durability barrier can cover many operations at once. The dispatcher
// applies a batch's ops through HandleSubmitBuffered — append and apply,
// no flush — and calls FlushBatch once per batch; replies are withheld
// until the flush succeeds, so the "no client observes an operation
// recovery cannot replay" invariant of store.Persistent holds unchanged,
// at one fsync per batch instead of one per op. store.Persistent
// implements it structurally.
type BatchCore interface {
	ServerCore
	HandleSubmitBuffered(ctx context.Context, from int, s *wire.Submit) *wire.Reply
	FlushBatch() error
}

// verify-job markers for batchOp.job.
const (
	jobNone     = -1 // no verification configured for this op's sink
	jobRejected = -2 // rejected before verification (sender id mismatch)
)

// batchOp is the pipeline's per-SUBMIT state across stages. Ops stay
// index-aligned with their batch envelopes; COMMIT and generic messages
// leave their slot zeroed apart from done-keeping.
type batchOp struct {
	ctx      context.Context
	h        trace.Handle
	start    time.Time
	tid      trace.TraceID
	job      int
	reply    *wire.Reply
	bc       BatchCore
	isSubmit bool
	done     bool
}

// dispatchScratch is one dispatcher goroutine's reusable buffers: the
// steady state allocates nothing per batch beyond what crypto's pool
// needs for fan-out.
type dispatchScratch struct {
	batch   []envelope
	ops     []batchOp
	jobs    []crypto.VerifyJob
	payload []byte
	cores   []BatchCore
	failed  []BatchCore
	msgs    []wire.Message
}

// dispatchBatches is the dispatcher event loop both transports run: drain
// a batch, pipeline it, repeat until the inbox closes and empties.
func dispatchBatches(q *fifo[envelope], maxBatch int) {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	sc := &dispatchScratch{}
	for {
		batch, ok := q.popBatch(maxBatch, sc.batch[:0])
		sc.batch = batch
		if len(batch) == 0 {
			if !ok {
				return
			}
			continue
		}
		observeBatchSize(batch)
		if len(batch) == 1 {
			dispatchOne(&batch[0], sc)
		} else {
			runBatch(batch, sc)
		}
	}
}

// observeBatchSize feeds the dispatch batch-size histogram; oversized
// batches pin their first traced SUBMIT as the histogram exemplar so a
// queue-pressure spike links straight to a trace of an op that sat in it.
func observeBatchSize(batch []envelope) {
	var tid trace.TraceID
	if len(batch) >= oversizedBatch {
		for i := range batch {
			if s, ok := batch[i].msg.(*wire.Submit); ok {
				if id := exemplarID(s.Inv.Trace); !id.IsZero() {
					tid = id
					break
				}
			}
		}
	}
	tmBatchSize.ObserveExemplarAlways(int64(len(batch)), tid)
}

const submitRejectDetail = "SUBMIT signature verification failed"

// rejectSubmit accounts one refused SUBMIT: metrics plus a protocol
// event, mirroring how handshake preflight rejections are surfaced.
func rejectSubmit(sink batchSink, from int) {
	tmVerifyRejects.Inc()
	obs.Default().Events().Record(obs.EventSubmitReject, from, sink.sinkName(), submitRejectDetail)
}

// verifySubmit checks one SUBMIT inline (fast path): the sender must
// claim its own identity — otherwise a replayed honest SUBMIT would
// verify under the victim's key — and the signature must cover exactly
// the payload the client signed.
func verifySubmit(ring *crypto.Keyring, from int, m *wire.Submit, sc *dispatchScratch) bool {
	if m.Inv.Client != from {
		return false
	}
	sc.payload = wire.AppendSubmitPayload(sc.payload[:0], m.Inv.Op, m.Inv.Reg, m.T, m.Inv.Trace)
	return ring.Verify(from, m.Inv.SubmitSig, crypto.DomainSubmit, sc.payload)
}

// dispatchOne is the batch-of-one fast path: the pre-batching dispatch
// body, plus the optional inline signature check. No buffered apply, no
// batch flush — a persistent core takes its usual append-apply-fsync
// route through HandleSubmit, so low-concurrency latency is unchanged.
func dispatchOne(e *envelope, sc *dispatchScratch) {
	e.sink.countOp()
	switch m := e.msg.(type) {
	case *wire.Submit:
		ctx, h := joinWireTrace(context.Background(), m.Inv.Trace, true, spanSrvSubmit)
		trace.Event(ctx, spanQueue, e.enq)
		start := obs.StartTimer()
		if ring := e.sink.sinkRing(); ring != nil {
			var vstart time.Time
			if trace.Enabled() {
				vstart = time.Now()
			}
			ok := verifySubmit(ring, e.from, m, sc)
			trace.Event(ctx, spanVerify, vstart)
			if !ok {
				rejectSubmit(e.sink, e.from)
				tmSubmitNs.ObserveSinceExemplar(start, exemplarID(m.Inv.Trace))
				h.End()
				return
			}
		}
		reply := e.sink.sinkCore().HandleSubmit(ctx, e.from, m)
		tmSubmitNs.ObserveSinceExemplar(start, exemplarID(m.Inv.Trace))
		h.End()
		if reply != nil {
			e.sink.sendReply(e.from, reply)
		}
	case *wire.Commit:
		start := obs.StartTimer()
		e.sink.sinkCore().HandleCommit(context.Background(), e.from, m)
		tmCommitNs.ObserveSince(start)
	default:
		if gc, ok := e.sink.sinkCore().(GenericCore); ok {
			gc.HandleMessage(e.from, e.msg)
			return
		}
		e.sink.dropUnknown()
	}
}

// runBatch pipelines a drained batch of two or more envelopes through
// verify, apply, flush and coalesced reply.
//
//faustlint:hotpath
func runBatch(batch []envelope, sc *dispatchScratch) {
	ops := sc.ops[:0]
	jobs := sc.jobs[:0]
	payload := sc.payload[:0]

	// Stage 1 — classify: join traces, stamp queue waits, and build the
	// verification jobs. Job payloads slice into one shared scratch
	// buffer; each slice is taken immediately after its append, so later
	// growth cannot disturb it.
	for i := range batch {
		e := &batch[i]
		e.sink.countOp()
		var op batchOp
		if m, isSubmit := e.msg.(*wire.Submit); isSubmit {
			op.isSubmit = true
			op.job = jobNone
			op.ctx, op.h = joinWireTrace(context.Background(), m.Inv.Trace, true, spanSrvSubmit)
			trace.Event(op.ctx, spanQueue, e.enq)
			op.start = obs.StartTimer()
			op.tid = exemplarID(m.Inv.Trace)
			if ring := e.sink.sinkRing(); ring != nil {
				if m.Inv.Client != e.from {
					op.job = jobRejected
				} else {
					pstart := len(payload)
					payload = wire.AppendSubmitPayload(payload, m.Inv.Op, m.Inv.Reg, m.T, m.Inv.Trace)
					jobs = append(jobs, crypto.VerifyJob{
						Ring:    ring,
						Signer:  e.from,
						Domain:  crypto.DomainSubmit,
						Sig:     m.Inv.SubmitSig,
						Payload: payload[pstart:len(payload):len(payload)],
					})
					op.job = len(jobs) - 1
				}
			}
		}
		ops = append(ops, op)
	}
	sc.jobs = jobs
	sc.payload = payload

	// Stage 2 — verify the whole batch at once, fanning out across the
	// shared worker pool when it is wide enough to pay off.
	if len(jobs) > 0 {
		var vstart time.Time
		if trace.Enabled() {
			vstart = time.Now()
		}
		crypto.VerifyBatch(jobs)
		for i := range ops {
			if ops[i].job >= 0 {
				trace.Event(ops[i].ctx, spanVerify, vstart)
			}
		}
	}

	// Stage 3 — apply in arrival order. SUBMITs against a BatchCore
	// buffer their WAL append; everything else behaves as on the fast
	// path. A message kind with server-push semantics (GenericCore) is a
	// barrier: the prefix must flush and reply first, or its handler
	// could push messages that overtake replies owed to the same client.
	for i := range batch {
		e := &batch[i]
		op := &ops[i]
		switch m := e.msg.(type) {
		case *wire.Submit:
			if op.job == jobRejected || (op.job >= 0 && !jobs[op.job].OK) {
				rejectSubmit(e.sink, e.from)
				continue
			}
			if bc, ok := e.sink.sinkCore().(BatchCore); ok {
				op.reply = bc.HandleSubmitBuffered(op.ctx, e.from, m)
				op.bc = bc
			} else {
				op.reply = e.sink.sinkCore().HandleSubmit(op.ctx, e.from, m)
			}
		case *wire.Commit:
			start := obs.StartTimer()
			e.sink.sinkCore().HandleCommit(context.Background(), e.from, m)
			tmCommitNs.ObserveSince(start)
		default:
			flushAndSend(batch[:i], ops[:i], sc)
			if gc, ok := e.sink.sinkCore().(GenericCore); ok {
				gc.HandleMessage(e.from, e.msg)
				continue
			}
			e.sink.dropUnknown()
		}
	}

	// Stages 4+5 — flush every touched BatchCore once, then send the
	// batch's replies coalesced per destination.
	flushAndSend(batch, ops, sc)

	for i := range ops {
		op := &ops[i]
		if !op.isSubmit {
			continue
		}
		tmSubmitNs.ObserveSinceExemplar(op.start, op.tid)
		op.h.End()
	}
}

// flushAndSend settles every not-yet-done op in the prefix: batch-flush
// the distinct BatchCores touched (suppressing replies of a core whose
// flush failed — its clients must observe silence, exactly like the
// sticky-broken single-op path), then deliver replies grouped by
// destination in arrival order. Idempotent per op via the done flag, so
// the mid-batch barrier and the final call compose.
//
//faustlint:hotpath
func flushAndSend(batch []envelope, ops []batchOp, sc *dispatchScratch) {
	cores := sc.cores[:0]
	for i := range ops {
		op := &ops[i]
		if op.done || op.bc == nil {
			continue
		}
		seen := false
		for _, c := range cores {
			if c == op.bc {
				seen = true
				break
			}
		}
		if !seen {
			cores = append(cores, op.bc)
		}
	}
	sc.cores = cores
	if len(cores) > 0 {
		var fstart time.Time
		if trace.Enabled() {
			fstart = time.Now()
		}
		failed := sc.failed[:0]
		for _, bc := range cores {
			if err := bc.FlushBatch(); err != nil {
				failed = append(failed, bc)
			}
		}
		sc.failed = failed
		for i := range ops {
			op := &ops[i]
			if op.done || op.bc == nil {
				continue
			}
			for _, fc := range failed {
				if fc == op.bc {
					op.reply = nil
					break
				}
			}
			trace.Event(op.ctx, spanBatchFlush, fstart)
		}
	}

	for i := range ops {
		op := &ops[i]
		if op.done {
			continue
		}
		op.done = true
		if !op.isSubmit || op.reply == nil {
			continue
		}
		e := &batch[i]
		msgs := append(sc.msgs[:0], wire.Message(op.reply))
		for j := i + 1; j < len(ops); j++ {
			oj := &ops[j]
			if oj.done || oj.reply == nil {
				continue
			}
			ej := &batch[j]
			if ej.sink == e.sink && ej.from == e.from {
				msgs = append(msgs, oj.reply)
				oj.done = true
			}
		}
		sc.msgs = msgs
		e.sink.sendReplies(e.from, msgs)
	}
}
