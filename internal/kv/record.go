package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"faust/internal/crypto"
)

// The on-register and on-blob encodings of the KV layer. Same
// conventions as package wire: big-endian fixed-width integers, u32
// length prefixes, sticky-error reader. Limits keep a malicious blob
// from forcing huge allocations before validation fails.

const (
	rootMagic = "FKVR2"

	// MaxKeyLen bounds a key's length in bytes.
	MaxKeyLen = 1 << 10
	// maxChunksPerValue bounds a single value's chunk list.
	maxChunksPerValue = 1 << 16
	// maxNodeEntries bounds the decoded size of a single tree node
	// (leaf entries or interior children) regardless of the configured
	// fanout.
	maxNodeEntries = 1 << 21
	// maxTreeHeight bounds the tree depth a root record may declare; far
	// above anything a real namespace produces, it caps the work a
	// malicious record can demand before verification fails.
	maxTreeHeight = 64
)

var errCodec = errors.New("kv: malformed encoding")

// entry is one key → value record. Chunks holds the content hashes of
// the value's chunks in order; a zero-length value has no chunks.
// Entries are immutable once placed in a tree node: copy-on-write
// mutations build new entry slices and never modify an existing entry.
type entry struct {
	Key    string
	Size   int64
	Chunks [][]byte
}

// EncodedEntrySize returns the encoded size in bytes of one leaf entry
// for a key of the given length and chunk count. It lets applications
// estimate node sizes and lets the benchmarks report exact per-entry
// costs.
func EncodedEntrySize(keyLen, nchunks int) int {
	return 4 + keyLen + 8 + 4 + nchunks*crypto.HashSize
}

// encodedEntrySize is the internal form taking the entry itself.
func encodedEntrySize(e *entry) int {
	return EncodedEntrySize(len(e.Key), len(e.Chunks))
}

// appendEntry renders one leaf entry.
func appendEntry(buf []byte, e *entry) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(e.Key)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, e.Key...)
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Size))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(e.Chunks)))
	buf = append(buf, tmp[:4]...)
	for _, h := range e.Chunks {
		buf = append(buf, h...)
	}
	return buf
}

// readEntry parses one leaf entry, validating the shape constraints
// shared with Put (key length, chunk count, size/chunk consistency).
func readEntry(r *reader) (entry, error) {
	klen := r.u32()
	if r.err != nil || klen == 0 || klen > MaxKeyLen {
		return entry{}, fmt.Errorf("%w: key length", errCodec)
	}
	key := string(r.take(int(klen)))
	size := r.i64()
	nchunks := r.u32()
	if r.err != nil || size < 0 || nchunks > maxChunksPerValue {
		return entry{}, fmt.Errorf("%w: entry shape", errCodec)
	}
	if (size == 0) != (nchunks == 0) {
		return entry{}, fmt.Errorf("%w: chunk count %d inconsistent with size %d", errCodec, nchunks, size)
	}
	chunks := make([][]byte, nchunks)
	for j := range chunks {
		chunks[j] = r.take(crypto.HashSize)
	}
	if r.err != nil {
		return entry{}, r.err
	}
	return entry{Key: key, Size: size, Chunks: chunks}, nil
}

// reader decodes with sticky error handling, mirroring wire.reader.
type reader struct {
	data []byte
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errCodec
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.data) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.data)
	r.data = r.data[4:]
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil || len(r.data) < 8 {
		r.fail()
		return 0
	}
	v := int64(binary.BigEndian.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.data) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[:n])
	r.data = r.data[n:]
	return out
}

// rootRecord is the value the owner writes into its fail-aware register:
// everything a reader needs to authenticate the directory tree. RootHash
// is the content hash of the root tree node (emptyTreeRoot for an empty
// namespace), Height the number of tree levels, Gen a monotone mutation
// counter, and the counts are totals that every read validates against
// the root node it fetches.
type rootRecord struct {
	Gen        uint64
	NumEntries uint32
	TotalBytes int64
	Height     uint32
	RootHash   []byte
}

// rootRecordSize is the exact encoded size of a root record.
const rootRecordSize = len(rootMagic) + 8 + 4 + 8 + 4 + crypto.HashSize

// emptyTreeRoot is the fixed, domain-separated root hash of the empty
// namespace. No blob lives under it; readers recognize it directly.
var emptyTreeRoot = crypto.Hash([]byte("faust-kv-empty-directory"))

// encodeRoot renders the register value.
func encodeRoot(rr *rootRecord) []byte {
	buf := make([]byte, 0, rootRecordSize)
	var tmp [8]byte
	buf = append(buf, rootMagic...)
	binary.BigEndian.PutUint64(tmp[:], rr.Gen)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], rr.NumEntries)
	buf = append(buf, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(rr.TotalBytes))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], rr.Height)
	buf = append(buf, tmp[:4]...)
	buf = append(buf, rr.RootHash...)
	return buf
}

// decodeRoot parses a register value as a KV root record and validates
// its internal consistency (an empty namespace must carry the empty
// root and zero height; a non-empty one a plausible height).
func decodeRoot(data []byte) (*rootRecord, error) {
	if len(data) != rootRecordSize || string(data[:len(rootMagic)]) != rootMagic {
		return nil, fmt.Errorf("%w: register does not hold a KV root record", errCodec)
	}
	r := &reader{data: data[len(rootMagic):]}
	rr := &rootRecord{}
	rr.Gen = uint64(r.i64())
	rr.NumEntries = r.u32()
	rr.TotalBytes = r.i64()
	rr.Height = r.u32()
	rr.RootHash = r.take(crypto.HashSize)
	if r.err != nil {
		return nil, r.err
	}
	if rr.TotalBytes < 0 {
		return nil, fmt.Errorf("%w: negative total bytes", errCodec)
	}
	if rr.NumEntries == 0 {
		if rr.Height != 0 || rr.TotalBytes != 0 || !bytes.Equal(rr.RootHash, emptyTreeRoot) {
			return nil, fmt.Errorf("%w: inconsistent empty-namespace root record", errCodec)
		}
	} else if rr.Height == 0 || rr.Height > maxTreeHeight {
		return nil, fmt.Errorf("%w: tree height %d out of range", errCodec, rr.Height)
	}
	return rr, nil
}

// validKey checks the key constraints: non-empty, at most MaxKeyLen
// bytes.
func validKey(key string) error {
	if len(key) == 0 {
		return errors.New("kv: empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("kv: key of %d bytes exceeds limit %d", len(key), MaxKeyLen)
	}
	return nil
}
