// Collab reproduces the collaborative-editing scenario of Section 3 and
// Figure 2 of the paper: Alice and Bob collaborate from Europe during
// their day while Carlos (America) is asleep. Alice's stability cut ends
// up exactly stable_Alice([10, 8, 3]) — she is consistent with herself up
// to her operation with timestamp 10, with Bob up to 8, and with Carlos
// only up to 3. When Carlos comes back online, everything becomes stable.
//
// Run with:
//
//	go run ./examples/collab
package main

import (
	"fmt"
	"log"
	"time"

	"faust"
)

const (
	aliceID  = 0
	bobID    = 1
	carlosID = 2
)

func main() {
	// Dummy reads are disabled so the operation sequence (and hence the
	// timestamps) match Figure 2 exactly; stability still propagates
	// through operations and offline probes.
	svc := faust.NewTestService(3, 2009,
		faust.WithoutDummyReads(),
		faust.WithProbeTimeout(100*time.Millisecond),
		faust.WithPollInterval(20*time.Millisecond),
	)
	defer svc.Close()

	var cuts []faust.Cut
	alice, err := svc.Client(aliceID, faust.OnStable(func(w faust.Cut) {
		cuts = append(cuts, w)
		fmt.Printf("  stable_Alice(%v)\n", w)
	}))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := svc.Client(bobID)
	if err != nil {
		log.Fatal(err)
	}
	carlos, err := svc.Client(carlosID)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— morning in Europe: Alice edits the shared file —")
	for i := 1; i <= 3; i++ {
		must(alice.Write([]byte(fmt.Sprintf("alice edit %d", i))))
	}

	fmt.Println("— Carlos checks in before going to sleep (reads Alice) —")
	if _, _, err := carlos.Read(aliceID); err != nil {
		log.Fatal(err)
	}
	// Alice syncs with Carlos's state: her timestamp 4.
	if _, _, err := alice.Read(carlosID); err != nil {
		log.Fatal(err)
	}

	fmt.Println("— Carlos is asleep; Alice keeps editing (timestamps 5..8) —")
	for i := 5; i <= 8; i++ {
		must(alice.Write([]byte(fmt.Sprintf("alice edit %d", i))))
	}

	fmt.Println("— Bob reviews Alice's work —")
	if _, _, err := bob.Read(aliceID); err != nil {
		log.Fatal(err)
	}
	// Alice syncs with Bob (timestamp 9), then writes once more (10).
	if _, _, err := alice.Read(bobID); err != nil {
		log.Fatal(err)
	}
	ts10, err := alice.Write([]byte("alice edit 10"))
	if err != nil {
		log.Fatal(err)
	}

	cut := alice.StableCut()
	fmt.Printf("\nAlice's stability cut: %v   (Figure 2 of the paper: [10 8 3])\n", cut)
	fmt.Printf("  consistent with herself up to t=%d\n", cut[aliceID])
	fmt.Printf("  consistent with Bob     up to t=%d\n", cut[bobID])
	fmt.Printf("  consistent with Carlos  up to t=%d (he is asleep)\n", cut[carlosID])

	fmt.Println("\n— Carlos wakes up and reads Alice's latest work —")
	if _, _, err := carlos.Read(aliceID); err != nil {
		log.Fatal(err)
	}
	// Stability for Alice's op 10 w.r.t. everyone now arrives via the
	// offline PROBE/VERSION exchange.
	if err := alice.WaitStable(ts10, 10*time.Second); err != nil {
		log.Fatalf("stability after Carlos's return: %v", err)
	}
	fmt.Printf("all of Alice's operations are now stable: cut = %v\n", alice.StableCut())
}

func must(ts faust.Timestamp, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  write committed with timestamp %d\n", ts)
}
