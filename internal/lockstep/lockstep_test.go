package lockstep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/wire"
)

func newCluster(t *testing.T, n int) (*Server, []*Client, *transport.Network) {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 2024)
	server := NewServer(n)
	nw := transport.NewNetwork(n, server)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i))
	}
	t.Cleanup(nw.Stop)
	return server, clients, nw
}

func TestWriteThenRead(t *testing.T) {
	_, clients, _ := newCluster(t, 2)
	if err := clients[0].Write([]byte("u")); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, err := clients[1].Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(v) != "u" {
		t.Fatalf("read = %q", v)
	}
}

func TestReadUnwrittenReturnsBottom(t *testing.T) {
	_, clients, _ := newCluster(t, 2)
	v, err := clients[0].Read(1)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v != nil {
		t.Fatalf("read = %q, want bottom", v)
	}
}

func TestSequentialOverwrites(t *testing.T) {
	_, clients, _ := newCluster(t, 2)
	for i := 0; i < 5; i++ {
		val := []byte(fmt.Sprintf("v%d", i))
		if err := clients[0].Write(val); err != nil {
			t.Fatal(err)
		}
		got, err := clients[1].Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(val) {
			t.Fatalf("read %d = %q, want %q", i, got, val)
		}
	}
}

func TestConcurrentClientsSerialize(t *testing.T) {
	_, clients, _ := newCluster(t, 4)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := clients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if _, err := clients[c].Read((c + 1) % 4); err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestBlockingOnCrashedWriter(t *testing.T) {
	// THE defining difference from USTOR (experiment E8): a client that
	// crashes between REPLY and COMMIT wedges the whole service.
	server, clients, _ := newCluster(t, 3)
	if err := clients[0].WriteCrashBeforeCommit([]byte("wedge")); err != nil {
		t.Fatalf("crashing write: %v", err)
	}
	done := make(chan struct{})
	go func() {
		_, _ = clients[1].Read(0)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("read completed although the lock-step protocol is wedged")
	case <-time.After(200 * time.Millisecond):
	}
	if got := server.QueueLen(); got < 2 {
		t.Fatalf("QueueLen = %d, want >= 2 (wedged op + blocked op)", got)
	}
}

// tamperLS wraps a correct lock-step server and corrupts pushed replies.
type tamperLS struct {
	inner  *Server
	mu     sync.Mutex
	tamper func(to int, m wire.Message) wire.Message
	push   func(to int, m wire.Message) error
}

func (tl *tamperLS) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	return tl.inner.HandleSubmit(ctx, from, s)
}
func (tl *tamperLS) HandleCommit(ctx context.Context, from int, c *wire.Commit) {
	tl.inner.HandleCommit(ctx, from, c)
}
func (tl *tamperLS) HandleMessage(from int, m wire.Message) {
	tl.inner.HandleMessage(from, m)
}
func (tl *tamperLS) AttachPusher(push func(to int, m wire.Message) error) {
	tl.push = push
	tl.inner.AttachPusher(func(to int, m wire.Message) error {
		tl.mu.Lock()
		f := tl.tamper
		tl.mu.Unlock()
		if f != nil {
			m = f(to, m)
		}
		return push(to, m)
	})
}

func newTamperCluster(t *testing.T, n int, tamper func(to int, m wire.Message) wire.Message) []*Client {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 7)
	core := &tamperLS{inner: NewServer(n), tamper: tamper}
	nw := transport.NewNetwork(n, core)
	t.Cleanup(nw.Stop)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i))
	}
	return clients
}

func TestDetectsTamperedValue(t *testing.T) {
	clients := newTamperCluster(t, 2, func(to int, m wire.Message) wire.Message {
		if r, isReply := m.(*wire.LSReply); isReply && r.Value != nil {
			r.Value[0] ^= 0xFF
		}
		return m
	})
	if err := clients[0].Write([]byte("secret")); err != nil {
		t.Fatal(err)
	}
	_, err := clients[1].Read(0)
	var det *DetectionError
	if !errors.As(err, &det) {
		t.Fatalf("corrupted value not detected: %v", err)
	}
}

func TestDetectsRewrittenLog(t *testing.T) {
	clients := newTamperCluster(t, 2, func(to int, m wire.Message) wire.Message {
		if r, isReply := m.(*wire.LSReply); isReply {
			for i := range r.Records {
				if r.Records[i].ValueHash != nil {
					r.Records[i].ValueHash[0] ^= 0xFF
				}
			}
		}
		return m
	})
	if err := clients[0].Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	_, err := clients[1].Read(0)
	var det *DetectionError
	if !errors.As(err, &det) {
		t.Fatalf("rewritten log not detected: %v", err)
	}
}

func TestDetectsLogGap(t *testing.T) {
	clients := newTamperCluster(t, 2, func(to int, m wire.Message) wire.Message {
		if r, isReply := m.(*wire.LSReply); isReply && len(r.Records) > 0 {
			r.Records = r.Records[1:] // hide the oldest record
		}
		return m
	})
	if err := clients[0].Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	_, err := clients[1].Read(0)
	var det *DetectionError
	if !errors.As(err, &det) {
		t.Fatalf("log gap not detected: %v", err)
	}
}

func TestHaltAfterDetection(t *testing.T) {
	clients := newTamperCluster(t, 2, func(to int, m wire.Message) wire.Message {
		if r, isReply := m.(*wire.LSReply); isReply && r.Value != nil {
			r.Value[0] ^= 0xFF
		}
		return m
	})
	if err := clients[0].Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[1].Read(0); err == nil {
		t.Fatal("expected detection")
	}
	if _, err := clients[1].Read(0); !errors.Is(err, ErrHalted) {
		t.Fatalf("post-detection op: %v, want ErrHalted", err)
	}
	failed, reason := clients[1].Failed()
	if !failed || reason == nil {
		t.Fatal("Failed() not reporting")
	}
}

func TestFailHandlerFires(t *testing.T) {
	ring, signers := crypto.NewTestKeyring(1, 5)
	core := &tamperLS{inner: NewServer(1), tamper: func(to int, m wire.Message) wire.Message {
		if r, isReply := m.(*wire.LSReply); isReply {
			r.Value = []byte("forged")
		}
		return m
	}}
	nw := transport.NewNetwork(1, core)
	t.Cleanup(nw.Stop)
	var fired int
	c := NewClient(0, ring, signers[0], nw.ClientLink(0), WithFailHandler(func(error) { fired++ }))
	if _, err := c.Read(0); err == nil {
		t.Fatal("expected detection")
	}
	if fired != 1 {
		t.Fatalf("fail handler fired %d times", fired)
	}
}

func TestReadOutOfRange(t *testing.T) {
	_, clients, _ := newCluster(t, 2)
	if _, err := clients[0].Read(5); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestClientID(t *testing.T) {
	_, clients, _ := newCluster(t, 2)
	if clients[1].ID() != 1 {
		t.Fatal("ID wrong")
	}
}

func TestLockstepMessagesRoundTripCodec(t *testing.T) {
	rec := wire.LSRecord{
		Seq: 3, Client: 1, Op: wire.OpWrite, Reg: 1,
		ValueHash: []byte{1, 2}, ChainHash: []byte{3, 4}, Sig: []byte{5, 6},
	}
	msgs := []wire.Message{
		&wire.LSSubmit{Op: wire.OpRead, Reg: 2, HaveSeq: 7},
		&wire.LSReply{Records: []wire.LSRecord{rec}, Value: []byte("v")},
		&wire.LSCommit{Record: rec},
	}
	for _, m := range msgs {
		data := wire.Encode(m)
		back, err := wire.Decode(data)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if wire.EncodedSize(back) != len(data) {
			t.Fatalf("%T: reencode size mismatch", m)
		}
	}
}
