package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("faust_test_total", "shard", "alpha")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same handle.
	if c2 := r.Counter("faust_test_total", "shard", "alpha"); c2 != c {
		t.Fatalf("re-registration returned a different handle")
	}
	// Label order must not create a distinct series.
	g := r.Gauge("faust_test_gauge", "a", "1", "b", "2")
	g2 := r.Gauge("faust_test_gauge", "b", "2", "a", "1")
	if g != g2 {
		t.Fatalf("label order created a distinct gauge series")
	}
	g.Set(7)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("faust_conflict")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind conflict")
		}
	}()
	r.Gauge("faust_conflict")
}

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 127, 128, 129, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucket index %d out of range for %d", idx, v)
		}
		if up := bucketUpper(idx); up < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", idx, up, v)
		}
		prev = idx
	}
	// Exhaustively: upper bound of each bucket maps back to the bucket.
	for idx := 0; idx < numBuckets; idx += 7 {
		up := bucketUpper(idx)
		if got := bucketIndex(up); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", idx, got)
		}
	}
}

func TestHistogramQuantileError(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..100000 ns: quantile estimates must be within the 1/64
	// relative error bound of the true value.
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		truth := float64(q) * n
		got := float64(s.Quantile(q))
		if got < truth || got > truth*(1+1.0/64+0.001) {
			t.Fatalf("q=%g: got %g, true %g (outside [truth, truth*1.017])", q, got, truth)
		}
	}
	if s.Max != n {
		t.Fatalf("max = %d, want %d", s.Max, n)
	}
	if mean := s.Mean(); math.Abs(mean-float64(n+1)/2) > 1 {
		t.Fatalf("mean = %g", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 2000 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if sa.Max != 1000*1000 {
		t.Fatalf("merged max = %d", sa.Max)
	}
	// Merged p50 sits at the boundary between the two populations.
	if p := sa.P50(); p < 1000 || p > 1100 {
		t.Fatalf("merged p50 = %d, want ~1000", p)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < 10000; i++ {
				h.Observe(seed*31 + i%4096)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 80000 {
		t.Fatalf("count = %d, want 80000", got)
	}
}

func TestEventLogRingAndCounts(t *testing.T) {
	l := NewEventLog(4)
	base := time.Unix(1700000000, 0)
	tick := 0
	l.SetClock(func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Millisecond) })

	for i := 0; i < 6; i++ {
		l.Record(EventFork, i, "s0", "check failed")
	}
	l.Record(EventFail, 9, "s1", "notified")

	if got := l.Len(); got != 4 {
		t.Fatalf("ring len = %d, want 4", got)
	}
	if got := l.Total(EventFork); got != 6 {
		t.Fatalf("fork total = %d, want 6 (must survive eviction)", got)
	}
	if got := l.Total(EventFail); got != 1 {
		t.Fatalf("fail total = %d", got)
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Oldest-first, strictly increasing seq and time.
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("seq not increasing: %+v", snap)
		}
		if !snap[i].Time.After(snap[i-1].Time) {
			t.Fatalf("time not increasing: %+v", snap)
		}
	}
	if snap[len(snap)-1].Kind != EventFail || snap[len(snap)-1].Client != 9 {
		t.Fatalf("last event = %+v", snap[len(snap)-1])
	}
	kinds := l.Kinds()
	if !sort.SliceIsSorted(kinds, func(i, j int) bool { return kinds[i] < kinds[j] }) || len(kinds) != 2 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestEventLogConcurrentSeqOrder(t *testing.T) {
	l := NewEventLog(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(EventStabilityCut, id, "", "")
			}
		}(w)
	}
	wg.Wait()
	snap := l.Snapshot()
	if len(snap) != 800 {
		t.Fatalf("len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, snap[i-1].Seq, snap[i].Seq)
		}
		if snap[i].Time.Before(snap[i-1].Time) {
			t.Fatalf("timestamps out of order at %d", i)
		}
	}
}

func TestSetEnabledDropsObservations(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry(0)
	c := r.Counter("faust_gate_total")
	h := r.Histogram("faust_gate_ns")
	SetEnabled(false)
	c.Inc()
	h.Observe(5)
	r.Events().Record(EventFork, 0, "", "")
	SetEnabled(true)
	if c.Value() != 0 || h.Snapshot().Count != 0 || r.Events().Len() != 0 {
		t.Fatalf("disabled observations were recorded")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter did not record")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(0)
	r.Help("faust_ops_total", "operations handled")
	r.Counter("faust_ops_total", "shard", "alpha").Add(3)
	r.Counter("faust_ops_total", "shard", "beta").Add(5)
	r.Gauge("faust_conns").Set(2)
	h := r.Histogram("faust_op_latency_ns", "op", "read")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	r.Events().Record(EventFork, 1, "alpha", "line 36")
	r.Events().Record(EventFail, 1, "alpha", "")

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()

	for _, want := range []string{
		"# HELP faust_ops_total operations handled",
		"# TYPE faust_ops_total counter",
		`faust_ops_total{shard="alpha"} 3`,
		`faust_ops_total{shard="beta"} 5`,
		"# TYPE faust_conns gauge",
		"faust_conns 2",
		"# TYPE faust_op_latency_ns histogram",
		`faust_op_latency_ns_bucket{op="read",le="+Inf"} 1000`,
		`faust_op_latency_ns_count{op="read"} 1000`,
		"# TYPE faust_op_latency_ns_p50 gauge",
		`faust_op_latency_ns_p50{op="read"}`,
		`faust_op_latency_ns_p999{op="read"}`,
		"# TYPE faust_events_total counter",
		`faust_events_total{kind="fork-detected"} 1`,
		`faust_events_total{kind="fail-notification"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// Minimal format validation: every non-comment line is "name{...} value"
	// or "name value", every TYPE line appears exactly once per family.
	seenType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			if seenType[fam] {
				t.Fatalf("duplicate TYPE for %s", fam)
			}
			seenType[fam] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestExportJSON(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("faust_x_total").Add(2)
	r.Histogram("faust_y_ns").Observe(100)
	m := r.exportJSON()
	if m["faust_x_total"] != int64(2) {
		t.Fatalf("json counter = %v", m["faust_x_total"])
	}
	hy, ok := m["faust_y_ns"].(map[string]any)
	if !ok || hy["count"] != int64(1) {
		t.Fatalf("json histogram = %v", m["faust_y_ns"])
	}
}
