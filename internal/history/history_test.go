package history

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasic(t *testing.T) {
	r := NewRecorder(2)
	p := r.Invoke(0, OpWrite, 0, []byte("u"))
	p.Complete(nil, 1)
	q := r.Invoke(1, OpRead, 0, nil)
	q.Complete([]byte("u"), 1)

	h := r.History()
	if len(h.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(h.Ops))
	}
	w, rd := h.Ops[0], h.Ops[1]
	if w.Kind != OpWrite || string(w.Value) != "u" || w.Timestamp != 1 {
		t.Fatalf("bad write record: %+v", w)
	}
	if rd.Kind != OpRead || string(rd.Value) != "u" {
		t.Fatalf("bad read record: %+v", rd)
	}
	if !w.Precedes(rd) {
		t.Fatal("sequential ops must be real-time ordered")
	}
	if err := h.WellFormed(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
}

func TestPendingOpRecorded(t *testing.T) {
	r := NewRecorder(1)
	r.Invoke(0, OpWrite, 0, []byte("x"))
	h := r.History()
	if h.Ops[0].IsComplete() {
		t.Fatal("op without Complete reported complete")
	}
	if h.Ops[0].Precedes(h.Ops[0]) {
		t.Fatal("pending op cannot precede anything")
	}
	c := h.Complete()
	if len(c.Ops) != 0 {
		t.Fatal("Complete() kept a pending op")
	}
}

func TestConcurrentRecordingWellFormed(t *testing.T) {
	r := NewRecorder(4)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := r.Invoke(c, OpWrite, c, []byte{byte(i)})
				p.Complete(nil, int64(i))
			}
		}(c)
	}
	wg.Wait()
	h := r.History()
	if len(h.Ops) != 400 {
		t.Fatalf("ops = %d, want 400", len(h.Ops))
	}
	if err := h.WellFormed(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
}

func TestByClientOrdered(t *testing.T) {
	h := NewBuilder(2).Write(0, "a").Read(1, 0, "a").Write(0, "b").History()
	ops := h.ByClient(0)
	if len(ops) != 2 || string(ops[0].Value) != "a" || string(ops[1].Value) != "b" {
		t.Fatalf("ByClient(0) = %v", ops)
	}
	if len(h.ByClient(1)) != 1 {
		t.Fatal("ByClient(1) wrong")
	}
}

func TestByRegisterAndWrites(t *testing.T) {
	h := NewBuilder(2).Write(0, "a").Write(1, "b").Read(0, 1, "b").History()
	if got := len(h.ByRegister(1)); got != 2 {
		t.Fatalf("ByRegister(1) = %d ops, want 2", got)
	}
	if got := len(h.Writes()); got != 2 {
		t.Fatalf("Writes() = %d, want 2", got)
	}
}

func TestBuilderConcurrent(t *testing.T) {
	h := NewBuilder(2).
		Concurrent(
			OpSpec{Client: 0, Kind: OpWrite, Reg: 0, Value: "u"},
			OpSpec{Client: 1, Kind: OpRead, Reg: 0, Value: ""},
		).History()
	a, b := h.Ops[0], h.Ops[1]
	if a.Precedes(b) || b.Precedes(a) {
		t.Fatal("Concurrent ops must not be real-time ordered")
	}
	if b.Value != nil {
		t.Fatal("empty value must record bottom (nil)")
	}
	if err := h.WellFormed(); err != nil {
		t.Fatalf("well-formed: %v", err)
	}
}

func TestBuilderPendingWrite(t *testing.T) {
	h := NewBuilder(1).PendingWrite(0, "v").History()
	if h.Ops[0].IsComplete() {
		t.Fatal("pending write reported complete")
	}
	if err := h.WellFormed(); err != nil {
		t.Fatalf("well-formed: %v", err)
	}
}

func TestWellFormedRejectsOverlapSameClient(t *testing.T) {
	h := History{N: 1, Ops: []Op{
		{ID: 0, Client: 0, Kind: OpWrite, Reg: 0, Inv: 1, Resp: 5},
		{ID: 1, Client: 0, Kind: OpRead, Reg: 0, Inv: 3, Resp: 6},
	}}
	if err := h.WellFormed(); err == nil {
		t.Fatal("overlapping ops of one client accepted")
	}
}

func TestWellFormedRejectsOpAfterPending(t *testing.T) {
	h := History{N: 1, Ops: []Op{
		{ID: 0, Client: 0, Kind: OpWrite, Reg: 0, Inv: 1, Resp: Pending},
		{ID: 1, Client: 0, Kind: OpRead, Reg: 0, Inv: 3, Resp: 4},
	}}
	if err := h.WellFormed(); err == nil {
		t.Fatal("op after pending op accepted")
	}
}

func TestWellFormedRejectsBackwardsResponse(t *testing.T) {
	h := History{N: 1, Ops: []Op{
		{ID: 0, Client: 0, Kind: OpWrite, Reg: 0, Inv: 5, Resp: 2},
	}}
	if err := h.WellFormed(); err == nil {
		t.Fatal("response before invocation accepted")
	}
}

func TestOpString(t *testing.T) {
	w := Op{Client: 1, Kind: OpWrite, Reg: 1, Value: []byte("u"), Inv: 1, Resp: 2}
	if !strings.Contains(w.String(), "write1(X1") {
		t.Fatalf("write string: %s", w.String())
	}
	r := Op{Client: 2, Kind: OpRead, Reg: 1, Inv: 3, Resp: 4}
	if !strings.Contains(r.String(), "read2(X1)->_") {
		t.Fatalf("bottom read string: %s", r.String())
	}
}

func TestHistoryString(t *testing.T) {
	h := NewBuilder(2).Write(0, "a").History()
	if !strings.Contains(h.String(), "n=2") {
		t.Fatalf("history string: %s", h.String())
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("OpKind strings wrong")
	}
	if !strings.Contains(OpKind(9).String(), "9") {
		t.Fatal("unknown OpKind string wrong")
	}
}

func TestCompletePreservesIDs(t *testing.T) {
	r := NewRecorder(1)
	p0 := r.Invoke(0, OpWrite, 0, []byte("a"))
	p0.Complete(nil, 1)
	r.Invoke(0, OpWrite, 0, []byte("b")) // stays pending
	h := r.History().Complete()
	if len(h.Ops) != 1 || h.Ops[0].ID != 0 {
		t.Fatalf("Complete() mangled IDs: %+v", h.Ops)
	}
}

func TestReadCompleteKeepsNilForBottom(t *testing.T) {
	r := NewRecorder(1)
	p := r.Invoke(0, OpRead, 0, nil)
	p.Complete(nil, 1)
	if got := r.History().Ops[0].Value; got != nil {
		t.Fatalf("bottom read value = %v, want nil", got)
	}
}
