package cryptoboundary_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"faust/tools/faustlint/analyzers/cryptoboundary"
)

func TestCryptoBoundary(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), cryptoboundary.Analyzer,
		"a", "x/internal/crypto")
}
