package consistency

import (
	"faust/internal/history"
)

// causalOrder computes the potential-causality relation of the paper
// (Section 2): o ->* o' iff they are connected through program order and
// reads-from edges. It returns a reachability matrix indexed by op ID.
// Pending reads carry no value and induce no reads-from edge; pending
// writes can be read from (their value may have reached the server).
type causalOrder struct {
	n     int
	reach [][]bool // reach[a][b]: op a causally precedes op b (strictly)
}

func newCausalOrder(h history.History, rf map[int]int) *causalOrder {
	maxID := 0
	for _, o := range h.Ops {
		if o.ID > maxID {
			maxID = o.ID
		}
	}
	size := maxID + 1
	adj := make([][]int, size)

	// Program order: consecutive ops of each client.
	for c := 0; c < h.N; c++ {
		ops := h.ByClient(c)
		for i := 0; i+1 < len(ops); i++ {
			adj[ops[i].ID] = append(adj[ops[i].ID], ops[i+1].ID)
		}
	}
	// Reads-from: the write causally precedes the read.
	for readID, writeID := range rf {
		if writeID >= 0 {
			adj[writeID] = append(adj[writeID], readID)
		}
	}

	co := &causalOrder{n: size, reach: make([][]bool, size)}
	for src := 0; src < size; src++ {
		co.reach[src] = make([]bool, size)
		// BFS from src.
		queue := append([]int(nil), adj[src]...)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if co.reach[src][v] {
				continue
			}
			co.reach[src][v] = true
			queue = append(queue, adj[v]...)
		}
	}
	return co
}

// precedes reports a ->* b (strict causal precedence).
func (co *causalOrder) precedes(a, b int) bool {
	if a >= co.n || b >= co.n {
		return false
	}
	return co.reach[a][b]
}

// cyclic reports whether any operation causally precedes itself.
func (co *causalOrder) cyclic() (int, bool) {
	for i := 0; i < co.n; i++ {
		if co.reach[i][i] {
			return i, true
		}
	}
	return 0, false
}

// CheckCausal decides causal consistency (Definition 3, instantiated for
// SWMR registers with unique values, equivalent to Hutto–Ahamad causal
// memory). The characterization used:
//
//  1. the causality relation (program order + reads-from, transitively
//     closed) is acyclic;
//  2. every complete read of register X_r returns the causally latest
//     write to X_r among those causally preceding it: a read returning
//     w_k admits no write w_j to the same register with j > k and
//     w_j ->* read, and a bottom read admits no causally preceding write
//     at all.
//
// Per-register writes are totally ordered by the single writer's program
// order, so "latest" is well defined; per-client monotone reads follow
// from (2) and transitivity. Condition (2) is necessary directly from
// Definition 3; sufficiency for this data type is validated against an
// exhaustive view search in the tests.
func CheckCausal(h history.History) Result {
	rf, err := readsFrom(h)
	if err != nil {
		return fail("%v", err)
	}
	co := newCausalOrder(h, rf)
	if id, bad := co.cyclic(); bad {
		return fail("causality cycle through op %d", id)
	}

	_, writePos := registerWriteOrder(h)
	byID := make(map[int]history.Op, len(h.Ops))
	for _, o := range h.Ops {
		byID[o.ID] = o
	}

	for _, o := range h.Ops {
		if o.Kind != history.OpRead || !o.IsComplete() {
			continue
		}
		k := 0
		if w := rf[o.ID]; w >= 0 {
			k = writePos[w]
		}
		for _, w := range h.Ops {
			if w.Kind != history.OpWrite || w.Reg != o.Reg {
				continue
			}
			if writePos[w.ID] > k && co.precedes(w.ID, o.ID) {
				return fail("read %s misses causally preceding write %s", o, w)
			}
		}
	}
	return ok
}

// CheckCausalExhaustive decides causal consistency by explicit search: for
// each client it looks for a serialization of the client's complete ops
// together with (a subset of) writes that contains every causally
// preceding update, respects the causal order, and satisfies the
// sequential specification — a literal reading of Definition 3. Intended
// for cross-validating CheckCausal on small histories.
func CheckCausalExhaustive(h history.History, maxOps int) Result {
	complete := h.Complete()
	if len(complete.Ops) > maxOps {
		return fail("history too large for exhaustive search: %d > %d ops",
			len(complete.Ops), maxOps)
	}
	rf, err := readsFrom(h)
	if err != nil {
		return fail("%v", err)
	}
	co := newCausalOrder(h, rf)
	if id, bad := co.cyclic(); bad {
		return fail("causality cycle through op %d", id)
	}

	for c := 0; c < h.N; c++ {
		if !clientHasCausalView(complete, c, co) {
			return fail("no causally consistent view exists for client %d", c)
		}
	}
	return ok
}

// clientHasCausalView searches for a valid view for client c: all of c's
// complete ops, plus every update causally preceding any included op,
// ordered consistently with causality and the register spec.
func clientHasCausalView(h history.History, c int, co *causalOrder) bool {
	// The candidate op set: c's ops plus all writes that causally precede
	// any of them (Definition 3 condition 2 forces those in; including
	// further concurrent writes is never necessary for existence).
	include := make(map[int]history.Op)
	for _, o := range h.Ops {
		if o.Client == c {
			include[o.ID] = o
		}
	}
	changed := true
	for changed {
		changed = false
		for _, w := range h.Ops {
			if w.Kind != history.OpWrite {
				continue
			}
			if _, in := include[w.ID]; in {
				continue
			}
			for id := range include {
				if co.precedes(w.ID, id) {
					include[w.ID] = w
					changed = true
					break
				}
			}
		}
	}

	ops := make([]history.Op, 0, len(include))
	for _, o := range include {
		ops = append(ops, o)
	}
	// Backtracking search for a causal-order-respecting, spec-satisfying
	// sequence.
	used := make(map[int]bool, len(ops))
	state := make(map[int][]byte)
	var rec func(placed int) bool
	rec = func(placed int) bool {
		if placed == len(ops) {
			return true
		}
		for i, o := range ops {
			if used[o.ID] {
				continue
			}
			eligible := true
			for j, p := range ops {
				if i == j || used[p.ID] {
					continue
				}
				if co.precedes(p.ID, o.ID) {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			var saved []byte
			var hadKey bool
			if o.Kind == history.OpRead {
				if !valueEqual(state[o.Reg], o.Value) {
					continue
				}
			} else {
				saved, hadKey = state[o.Reg]
				state[o.Reg] = o.Value
			}
			used[o.ID] = true
			if rec(placed + 1) {
				return true
			}
			used[o.ID] = false
			if o.Kind == history.OpWrite {
				if hadKey {
					state[o.Reg] = saved
				} else {
					delete(state, o.Reg)
				}
			}
		}
		return false
	}
	return rec(0)
}
