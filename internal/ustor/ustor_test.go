package ustor

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/version"
	"faust/internal/wire"
)

// testCluster bundles a correct server, its network and n clients.
type testCluster struct {
	server  *Server
	network *transport.Network
	clients []*Client
}

func newCluster(t *testing.T, n int, opts ...transport.Option) *testCluster {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 1234)
	server := NewServer(n)
	nw := transport.NewNetwork(n, server, opts...)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i))
	}
	t.Cleanup(nw.Stop)
	return &testCluster{server: server, network: nw, clients: clients}
}

func TestWriteThenRead(t *testing.T) {
	tc := newCluster(t, 2)
	if err := tc.clients[0].Write([]byte("u")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := tc.clients[1].Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "u" {
		t.Fatalf("read = %q, want \"u\"", got)
	}
}

func TestReadUnwrittenRegisterReturnsBottom(t *testing.T) {
	tc := newCluster(t, 2)
	got, err := tc.clients[0].Read(1)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got != nil {
		t.Fatalf("read of unwritten register = %q, want bottom", got)
	}
}

func TestReadUnwrittenAfterOwnerReads(t *testing.T) {
	// The owner's MEM entry carries a nonzero timestamp after it performs
	// reads, but the register value must still be bottom.
	tc := newCluster(t, 2)
	for i := 0; i < 3; i++ {
		if _, err := tc.clients[1].Read(0); err != nil {
			t.Fatalf("owner read %d: %v", i, err)
		}
	}
	got, err := tc.clients[0].Read(1)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got != nil {
		t.Fatalf("read = %q, want bottom", got)
	}
}

func TestSelfRead(t *testing.T) {
	tc := newCluster(t, 2)
	if err := tc.clients[0].Write([]byte("mine")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := tc.clients[0].Read(0)
	if err != nil {
		t.Fatalf("self read: %v", err)
	}
	if string(got) != "mine" {
		t.Fatalf("self read = %q", got)
	}
}

func TestOverwriteVisible(t *testing.T) {
	tc := newCluster(t, 2)
	for i := 0; i < 5; i++ {
		val := []byte(fmt.Sprintf("v%d", i))
		if err := tc.clients[0].Write(val); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := tc.clients[1].Read(0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("read %d = %q, want %q", i, got, val)
		}
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	tc := newCluster(t, 2)
	var last int64
	for i := 0; i < 4; i++ {
		res, err := tc.clients[0].WriteX(context.Background(), []byte{byte(i)})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if res.Timestamp <= last {
			t.Fatalf("timestamp %d not increasing after %d", res.Timestamp, last)
		}
		last = res.Timestamp
		rr, err := tc.clients[0].ReadX(context.Background(), 1)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if rr.Timestamp <= last {
			t.Fatalf("read timestamp %d not increasing after %d", rr.Timestamp, last)
		}
		last = rr.Timestamp
	}
}

func TestVersionsTotallyOrderedWithCorrectServer(t *testing.T) {
	tc := newCluster(t, 3)
	var versions []version.Version
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := tc.clients[c].WriteX(context.Background(), []byte{byte(c), byte(i)})
				if err != nil {
					t.Errorf("client %d write %d: %v", c, i, err)
					return
				}
				mu.Lock()
				versions = append(versions, res.Version.Ver)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	// Every pair of committed versions must be comparable: a correct
	// server induces a total order (Section 5).
	for i := range versions {
		for j := i + 1; j < len(versions); j++ {
			if !version.Comparable(versions[i], versions[j]) {
				t.Fatalf("incomparable versions from a correct server:\n%v\n%v",
					versions[i], versions[j])
			}
		}
	}
}

func TestConcurrentClientsAllComplete(t *testing.T) {
	const n, ops = 8, 25
	tc := newCluster(t, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if i%3 == 0 {
					if err := tc.clients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := tc.clients[c].Read((c + i) % n); err != nil {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("operation failed under concurrency: %v", err)
	}
}

func TestWaitFreeDespiteCrashedClient(t *testing.T) {
	// A client that submits but never commits must not block others: this
	// is precisely what separates USTOR from fork-linearizable protocols.
	n := 3
	ring, signers := crypto.NewTestKeyring(n, 99)
	server := NewServer(n)
	nw := transport.NewNetwork(n, server)
	defer nw.Stop()

	// Client 0 crashes mid-operation: SUBMIT sent, REPLY consumed, COMMIT
	// never sent.
	link0 := nw.ClientLink(0)
	sigma := signers[0].Sign(crypto.DomainSubmit, wire.SubmitPayload(wire.OpWrite, 0, 1, nil))
	delta := signers[0].Sign(crypto.DomainData, wire.DataPayload(1, crypto.Hash([]byte("w"))))
	if err := link0.Send(&wire.Submit{
		T:       1,
		Inv:     wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0, SubmitSig: sigma},
		Value:   []byte("w"),
		DataSig: delta,
	}); err != nil {
		t.Fatalf("crashed client submit: %v", err)
	}
	if _, err := link0.Recv(); err != nil {
		t.Fatalf("crashed client recv: %v", err)
	}
	// No COMMIT: client 0 is dead from here on.

	c1 := NewClient(1, ring, signers[1], nw.ClientLink(1))
	c2 := NewClient(2, ring, signers[2], nw.ClientLink(2))
	for i := 0; i < 10; i++ {
		if err := c1.Write([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatalf("c1 write %d blocked or failed: %v", i, err)
		}
		v, err := c2.Read(1)
		if err != nil {
			t.Fatalf("c2 read %d blocked or failed: %v", i, err)
		}
		if string(v) != fmt.Sprintf("a%d", i) {
			t.Fatalf("c2 read %d = %q", i, v)
		}
		// The crashed client's write must be observable too.
		w, err := c2.Read(0)
		if err != nil {
			t.Fatalf("c2 read of crashed register: %v", err)
		}
		if string(w) != "w" {
			t.Fatalf("crashed client's write lost: %q", w)
		}
	}
}

func TestServerGarbageCollectsL(t *testing.T) {
	tc := newCluster(t, 2)
	for i := 0; i < 10; i++ {
		if err := tc.clients[0].Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tc.clients[1].Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// After quiescence, COMMITs processed at the server must have pruned
	// L. One pending tuple can remain if the last COMMIT raced the check,
	// so synchronize with one more operation.
	if err := tc.clients[0].Write([]byte("sync")); err != nil {
		t.Fatal(err)
	}
	if got := tc.server.PendingOps(); got > 2 {
		t.Fatalf("L not garbage collected: %d pending tuples", got)
	}
}

func TestReadOutOfRange(t *testing.T) {
	tc := newCluster(t, 2)
	if _, err := tc.clients[0].Read(7); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := tc.clients[0].Read(-1); err == nil {
		t.Fatal("negative register read accepted")
	}
}

func TestClientAccessors(t *testing.T) {
	tc := newCluster(t, 3)
	c := tc.clients[2]
	if c.ID() != 2 || c.N() != 3 {
		t.Fatalf("ID/N = %d/%d", c.ID(), c.N())
	}
	if failed, _ := c.Failed(); failed {
		t.Fatal("fresh client reports failed")
	}
	if !c.Version().IsZero() {
		t.Fatal("fresh client version not zero")
	}
	if err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.Version().V[2] != 1 {
		t.Fatalf("version after one op: %v", c.Version())
	}
}

// tamperCore wraps a correct server and mutates chosen replies, modeling a
// Byzantine server. tamper returns the (possibly modified) reply.
type tamperCore struct {
	inner  *Server
	mu     sync.Mutex
	tamper func(from int, r *wire.Reply) *wire.Reply
}

func (tc *tamperCore) HandleSubmit(ctx context.Context, from int, s *wire.Submit) *wire.Reply {
	r := tc.inner.HandleSubmit(ctx, from, s)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.tamper != nil && r != nil {
		return tc.tamper(from, r)
	}
	return r
}

func (tc *tamperCore) HandleCommit(ctx context.Context, from int, c *wire.Commit) {
	tc.inner.HandleCommit(ctx, from, c)
}

// tamperCluster builds a 2-client cluster whose server applies the given
// tampering function.
func tamperCluster(t *testing.T, tamper func(from int, r *wire.Reply) *wire.Reply) []*Client {
	t.Helper()
	const n = 2
	ring, signers := crypto.NewTestKeyring(n, 55)
	core := &tamperCore{inner: NewServer(n), tamper: tamper}
	nw := transport.NewNetwork(n, core)
	t.Cleanup(nw.Stop)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i))
	}
	return clients
}

func expectDetection(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatal("tampered reply accepted; expected detection")
	}
	var det *DetectionError
	if !errors.As(err, &det) {
		t.Fatalf("error %v is not a DetectionError", err)
	}
	if fragment != "" && !bytes.Contains([]byte(det.Check), []byte(fragment)) {
		t.Fatalf("detection %q does not mention %q", det.Check, fragment)
	}
}

func TestDetectsForgedCommitSignature(t *testing.T) {
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		if !r.CVer.Ver.IsZero() {
			r.CVer.Sig[0] ^= 0xFF
		}
		return r
	})
	if err := clients[0].Write([]byte("a")); err != nil {
		t.Fatalf("first write (zero version, nothing to forge): %v", err)
	}
	err := clients[0].Write([]byte("b"))
	expectDetection(t, err, "line 35")
}

func TestDetectsVersionRollback(t *testing.T) {
	// After the client advances, the server presents the initial version
	// again: line 36 must fire.
	var rollback bool
	var mu sync.Mutex
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		mu.Lock()
		defer mu.Unlock()
		if rollback {
			r.CVer = wire.ZeroSignedVersion(2)
			r.C = 0
			r.L = nil
		}
		return r
	})
	if err := clients[0].Write([]byte("a")); err != nil {
		t.Fatalf("setup write: %v", err)
	}
	mu.Lock()
	rollback = true
	mu.Unlock()
	err := clients[0].Write([]byte("b"))
	expectDetection(t, err, "line 36")
}

func TestDetectsCorruptedValue(t *testing.T) {
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		if r.IsRead && r.Mem.Value != nil {
			r.Mem.Value[0] ^= 0xFF
		}
		return r
	})
	if err := clients[0].Write([]byte("secret")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err := clients[1].Read(0)
	expectDetection(t, err, "line 50")
}

func TestDetectsStaleValueOmission(t *testing.T) {
	// The server hides client 0's write from a reader while still showing
	// the committed version: timestamps disagree (line 51).
	var hide bool
	var mu sync.Mutex
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		mu.Lock()
		defer mu.Unlock()
		if hide && r.IsRead {
			r.Mem = wire.MemEntry{} // pretend the writer never submitted
			r.JVer = wire.ZeroSignedVersion(2)
		}
		return r
	})
	if err := clients[0].Write([]byte("visible")); err != nil {
		t.Fatalf("write: %v", err)
	}
	mu.Lock()
	hide = true
	mu.Unlock()
	_, err := clients[1].Read(0)
	expectDetection(t, err, "line 51")
}

func TestDetectsWriterVersionMismatch(t *testing.T) {
	// The server presents a stale MEM timestamp while SVER[j] has moved
	// on by two: line 52 must fire. Construct by letting the writer do
	// two ops, then serving Mem.T = t-2 with matching (replayed) data sig.
	var captured []wire.MemEntry
	var mu sync.Mutex
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		mu.Lock()
		defer mu.Unlock()
		if r.IsRead {
			captured = append(captured, r.Mem.Clone())
			if len(captured) >= 2 {
				r.Mem = captured[0].Clone() // replay the old entry
			}
		}
		return r
	})
	if err := clients[0].Write([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[1].Read(0); err != nil {
		t.Fatalf("first read must pass: %v", err)
	}
	if err := clients[0].Write([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Write([]byte("v3")); err != nil {
		t.Fatal(err)
	}
	_, err := clients[1].Read(0)
	expectDetection(t, err, "line 51")
}

func TestDetectsOwnTupleInL(t *testing.T) {
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		// Echo the submitting client's own (valid!) tuple back in L.
		sigma := make([]byte, 64)
		r.L = append(r.L, wire.Invocation{Client: from, Op: wire.OpWrite, Reg: from, SubmitSig: sigma})
		return r
	})
	err := clients[0].Write([]byte("a"))
	expectDetection(t, err, "")
}

func TestDetectsForgedSubmitSignatureInL(t *testing.T) {
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		if from == 1 {
			r.L = append(r.L, wire.Invocation{
				Client: 0, Op: wire.OpWrite, Reg: 0,
				SubmitSig: bytes.Repeat([]byte{1}, 64),
			})
		}
		return r
	})
	err := clients[1].Write([]byte("b"))
	expectDetection(t, err, "line 43")
}

func TestDetectsMissingProofSignature(t *testing.T) {
	// A second tuple for a client whose digest entry is already set needs
	// a valid PROOF-signature; the server presents none.
	var inject bool
	var mu sync.Mutex
	var sigma0 []byte
	ring, signers := crypto.NewTestKeyring(2, 77)
	core := &tamperCore{inner: NewServer(2)}
	core.tamper = func(from int, r *wire.Reply) *wire.Reply {
		mu.Lock()
		defer mu.Unlock()
		if inject && from == 1 {
			// Forge a fresh concurrent op of client 0 with its real
			// signature for the expected timestamp, but clear P[0].
			r.L = append(r.L, wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0, SubmitSig: sigma0})
			r.P[0] = nil
		}
		return r
	}
	nw := transport.NewNetwork(2, core)
	t.Cleanup(nw.Stop)
	c0 := NewClient(0, ring, signers[0], nw.ClientLink(0))
	c1 := NewClient(1, ring, signers[1], nw.ClientLink(1))

	if err := c0.Write([]byte("a")); err != nil { // t=1
		t.Fatal(err)
	}
	if _, err := c1.Read(0); err != nil { // c1 digest entry for 0 set
		t.Fatal(err)
	}
	// Prepare a genuine signature of client 0 for its next timestamp.
	mu.Lock()
	sigma0 = signers[0].Sign(crypto.DomainSubmit, wire.SubmitPayload(wire.OpWrite, 0, 2, nil))
	inject = true
	mu.Unlock()
	err := c1.Write([]byte("x"))
	expectDetection(t, err, "line 41")
}

func TestDetectsWrongReplyKind(t *testing.T) {
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		r.IsRead = !r.IsRead
		if r.IsRead {
			r.JVer = wire.ZeroSignedVersion(2)
		}
		return r
	})
	err := clients[0].Write([]byte("a"))
	expectDetection(t, err, "")
}

func TestDetectsMalformedReplyShape(t *testing.T) {
	cases := []struct {
		name   string
		tamper func(from int, r *wire.Reply) *wire.Reply
	}{
		{"out-of-range c", func(from int, r *wire.Reply) *wire.Reply { r.C = 9; return r }},
		{"short P", func(from int, r *wire.Reply) *wire.Reply { r.P = r.P[:1]; return r }},
		{"wrong version dim", func(from int, r *wire.Reply) *wire.Reply {
			r.CVer = wire.ZeroSignedVersion(5)
			return r
		}},
		{"bad tuple client", func(from int, r *wire.Reply) *wire.Reply {
			r.L = append(r.L, wire.Invocation{Client: 17, Op: wire.OpRead, Reg: 0})
			return r
		}},
		{"bad tuple opcode", func(from int, r *wire.Reply) *wire.Reply {
			r.L = append(r.L, wire.Invocation{Client: 1, Op: 0, Reg: 0})
			return r
		}},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			clients := tamperCluster(t, tcase.tamper)
			err := clients[0].Write([]byte("a"))
			expectDetection(t, err, "")
		})
	}
}

func TestHaltAfterDetection(t *testing.T) {
	clients := tamperCluster(t, func(from int, r *wire.Reply) *wire.Reply {
		r.C = 9
		return r
	})
	c := clients[0]
	err := c.Write([]byte("a"))
	expectDetection(t, err, "")
	if err := c.Write([]byte("b")); !errors.Is(err, ErrHalted) {
		t.Fatalf("second op after detection: %v, want ErrHalted", err)
	}
	if _, err := c.Read(0); !errors.Is(err, ErrHalted) {
		t.Fatalf("read after detection: %v, want ErrHalted", err)
	}
	failed, reason := c.Failed()
	if !failed || reason == nil {
		t.Fatal("Failed() does not report the detection")
	}
}

func TestFailHandlerFiresOnce(t *testing.T) {
	const n = 1
	ring, signers := crypto.NewTestKeyring(n, 88)
	core := &tamperCore{inner: NewServer(n)}
	core.tamper = func(from int, r *wire.Reply) *wire.Reply { r.C = 5; return r }
	nw := transport.NewNetwork(n, core)
	t.Cleanup(nw.Stop)
	var calls int
	c := NewClient(0, ring, signers[0], nw.ClientLink(0), WithFailHandler(func(err error) { calls++ }))
	_ = c.Write([]byte("a"))
	_ = c.Write([]byte("b"))
	if calls != 1 {
		t.Fatalf("fail handler fired %d times, want 1", calls)
	}
}

func TestDetectionErrorMessage(t *testing.T) {
	e := &DetectionError{Client: 3, Check: "line 36"}
	if e.Error() == "" || !bytes.Contains([]byte(e.Error()), []byte("line 36")) {
		t.Fatalf("unhelpful error: %q", e.Error())
	}
}
