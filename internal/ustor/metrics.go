package ustor

import "faust/internal/obs"

// Client-side observability: the full round-trip latency of one register
// operation (sign + SUBMIT + REPLY + verify + COMMIT) as seen by the
// caller. Process-wide histograms: every Client in the process reports
// here, which is exactly the session view cmd/faust-client's `stats`
// command wants.
var (
	cmWriteNs = obs.Default().Histogram("faust_client_op_latency_ns", "op", "write")
	cmReadNs  = obs.Default().Histogram("faust_client_op_latency_ns", "op", "read")
)

func init() {
	obs.Default().Help("faust_client_op_latency_ns",
		"client-observed register operation round-trip latency, nanoseconds")
}

// OpLatency returns snapshots of the process-wide client-side operation
// latency histograms.
func OpLatency() (read, write obs.HistSnapshot) {
	return cmReadNs.Snapshot(), cmWriteNs.Snapshot()
}
