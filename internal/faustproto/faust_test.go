package faustproto

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/offline"
	"faust/internal/transport"
	"faust/internal/ustor"
	"faust/internal/version"
	"faust/internal/wire"
)

const waitLong = 10 * time.Second

// fastConfig keeps tests snappy: probe after 50ms silence, poll at 10ms.
func fastConfig(dummy bool) Config {
	return Config{
		ProbeTimeout:      50 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		DisableDummyReads: !dummy,
	}
}

type cluster struct {
	hub     *offline.Hub
	network *transport.Network
	clients []*Client
}

func newCluster(t *testing.T, n int, core transport.ServerCore, cfg Config, opts ...Option) *cluster {
	t.Helper()
	ring, signers := crypto.NewTestKeyring(n, 42)
	if core == nil {
		core = ustor.NewServer(n)
	}
	nw := transport.NewNetwork(n, core)
	hub := offline.NewHub(n)
	cl := &cluster{hub: hub, network: nw, clients: make([]*Client, n)}
	for i := 0; i < n; i++ {
		allOpts := append([]Option{WithConfig(cfg)}, opts...)
		cl.clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i), hub.Endpoint(i), allOpts...)
	}
	t.Cleanup(func() {
		for _, c := range cl.clients {
			c.Stop()
		}
		nw.Stop()
		hub.Stop()
	})
	return cl
}

func (cl *cluster) startAll() {
	for _, c := range cl.clients {
		c.Start()
	}
}

func TestWriteReadWithTimestamps(t *testing.T) {
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.startAll()
	t1, err := cl.clients[0].Write([]byte("hello"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if t1 != 1 {
		t.Fatalf("first timestamp = %d, want 1", t1)
	}
	v, t2, err := cl.clients[1].Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(v) != "hello" {
		t.Fatalf("read = %q", v)
	}
	if t2 != 1 {
		t.Fatalf("reader timestamp = %d, want 1", t2)
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	// Definition 5, Integrity.
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.startAll()
	var last int64
	for i := 0; i < 5; i++ {
		ts, err := cl.clients[0].Write([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if ts <= last {
			t.Fatalf("timestamp %d after %d", ts, last)
		}
		last = ts
		_, ts2, err := cl.clients[0].Read(1)
		if err != nil {
			t.Fatal(err)
		}
		if ts2 <= ts {
			t.Fatalf("read timestamp %d after %d", ts2, ts)
		}
		last = ts2
	}
}

func TestStabilityThroughDummyReads(t *testing.T) {
	// Detection completeness (Definition 5 property 7), online path: with
	// a correct server and dummy reads, every operation eventually
	// becomes stable at its client w.r.t. everyone.
	cl := newCluster(t, 3, nil, fastConfig(true))
	cl.startAll()
	ts, err := cl.clients[0].Write([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.clients[0].WaitStable(ts, waitLong); err != nil {
		t.Fatalf("operation never became stable: %v", err)
	}
	// Accuracy: nobody may have failed.
	for i, c := range cl.clients {
		if failed, reason := c.Failed(); failed {
			t.Fatalf("client %d false-failed: %v", i, reason)
		}
	}
}

func TestStabilityCutMonotonic(t *testing.T) {
	cl := newCluster(t, 2, nil, fastConfig(true))
	var mu sync.Mutex
	var cuts [][]int64
	c0 := cl.clients[0]
	c0.onStable = func(w []int64) {
		mu.Lock()
		cuts = append(cuts, w)
		mu.Unlock()
	}
	cl.startAll()
	var lastTS int64
	for i := 0; i < 5; i++ {
		ts, err := c0.Write([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		lastTS = ts
	}
	if err := c0.WaitStable(lastTS, waitLong); err != nil {
		t.Fatalf("stability: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(cuts) == 0 {
		t.Fatal("no stable notifications delivered")
	}
	for k := 1; k < len(cuts); k++ {
		for j := range cuts[k] {
			if cuts[k][j] < cuts[k-1][j] {
				t.Fatalf("stability cut regressed: %v then %v", cuts[k-1], cuts[k])
			}
		}
	}
}

// TestFigure2StabilityCut reproduces the exact scenario of Figure 2:
// Alice's notification stable_Alice([10, 8, 3]) — consistent with herself
// up to timestamp 10, with Bob up to 8, and with Carlos up to 3.
func TestFigure2StabilityCut(t *testing.T) {
	cl := newCluster(t, 3, nil, fastConfig(false))
	cl.startAll()
	alice, bob, carlos := cl.clients[0], cl.clients[1], cl.clients[2]

	// Alice works; timestamps 1..3.
	for i := 1; i <= 3; i++ {
		if _, err := alice.Write([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Carlos observes Alice's register (his version now covers ts 3)...
	if _, _, err := carlos.Read(0); err != nil {
		t.Fatal(err)
	}
	// ...and Alice learns Carlos's version: timestamp 4 for Alice.
	if _, _, err := alice.Read(2); err != nil {
		t.Fatal(err)
	}
	// Carlos goes to sleep. Alice keeps working: timestamps 5..8.
	for i := 5; i <= 8; i++ {
		if _, err := alice.Write([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Bob catches up on Alice's register (his version covers ts 8)...
	if _, _, err := bob.Read(0); err != nil {
		t.Fatal(err)
	}
	// ...Alice learns Bob's version (ts 9), then writes once more (ts 10).
	if _, _, err := alice.Read(1); err != nil {
		t.Fatal(err)
	}
	ts, err := alice.Write([]byte("a10"))
	if err != nil {
		t.Fatal(err)
	}
	if ts != 10 {
		t.Fatalf("Alice's last timestamp = %d, want 10", ts)
	}

	got := alice.StableCut()
	want := []int64{10, 8, 3}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("stable_Alice(%v), want %v", got, want)
		}
	}
	if !alice.IsStable(3) {
		t.Fatal("operation 3 must be stable w.r.t. everyone")
	}
	if alice.IsStable(4) {
		t.Fatal("operation 4 must not yet be stable (Carlos is behind)")
	}
}

func TestStabilityViaOfflineProbesAfterServerCrash(t *testing.T) {
	// Detection completeness, offline path: the server crashes right
	// after a value propagated; the PROBE/VERSION exchange must still
	// make the operation stable. (Section 6: "a faulty server, even when
	// it only crashes, may prevent two clients that are consistent ...
	// from ever discovering that.")
	const n = 2
	core := byzantine.NewCrashServer(n, 3) // write0 + read1 + one more, then dead
	cl := newCluster(t, n, core, fastConfig(false))
	cl.startAll()
	c0, c1 := cl.clients[0], cl.clients[1]

	ts, err := c0.Write([]byte("survives"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err := c1.Read(0); err != nil || string(v) != "survives" {
		t.Fatalf("read = %q, %v", v, err)
	}
	// The server is now (about to be) dead; no further server round trips
	// complete. Stability w.r.t. c1 must still arrive via offline probes.
	if err := c0.WaitStableFor(1, ts, waitLong); err != nil {
		t.Fatalf("offline stability path failed: %v", err)
	}
}

func TestForkDetectedThroughOfflineExchange(t *testing.T) {
	// The canonical FAUST guarantee: a forking attack that USTOR cannot
	// see is caught by the offline version exchange, and ALL clients
	// eventually output fail (Definition 5 properties 5 and 7).
	const n = 2
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, n, server, fastConfig(false))
	cl.startAll()
	c0, c1 := cl.clients[0], cl.clients[1]

	if _, err := c0.Write([]byte("branch-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write([]byte("branch-b")); err != nil {
		t.Fatal(err)
	}

	if err := c0.WaitFail(waitLong); err != nil {
		t.Fatalf("client 0 did not detect the fork: %v", err)
	}
	if err := c1.WaitFail(waitLong); err != nil {
		t.Fatalf("client 1 did not detect the fork: %v", err)
	}

	// At least one client must hold fork evidence (the other may have
	// been convinced by the FAILURE broadcast).
	_, e0 := c0.Failed()
	_, e1 := c1.Failed()
	var fe *ForkError
	if !errors.As(e0, &fe) && !errors.As(e1, &fe) {
		t.Fatalf("no fork evidence: %v / %v", e0, e1)
	}
}

func TestNoStabilityAcrossFork(t *testing.T) {
	// Stability-detection accuracy: once both sides of a fork hold
	// diverged state, an operation must never become stable across the
	// fork — the wait ends in a timeout or a fail notification, never in
	// stability. (Before the other side performs any operation, stability
	// w.r.t. it is trivially sound: an empty client is consistent with
	// every view. The paper's VERSION relay exploits that, so the fork
	// must first be materialized on both branches.)
	const n = 2
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, n, server, fastConfig(false))
	cl.startAll()
	c0, c1 := cl.clients[0], cl.clients[1]
	if _, err := c1.Write([]byte("theirs")); err != nil {
		t.Fatal(err)
	}
	ts, err := c0.Write([]byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.WaitStableFor(1, ts, 400*time.Millisecond); err == nil {
		t.Fatal("operation became stable w.r.t. a forked client")
	}
	cut := c0.StableCut()
	if cut[1] != 0 {
		t.Fatalf("W[1] = %d, want 0 (no consistency with forked client)", cut[1])
	}
	// And detection completeness: the fork is eventually reported.
	if err := c0.WaitFail(waitLong); err != nil {
		t.Fatalf("fork never detected: %v", err)
	}
}

func TestOperationsFailAfterDetection(t *testing.T) {
	const n = 2
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, n, server, fastConfig(false))
	cl.startAll()
	c0, c1 := cl.clients[0], cl.clients[1]
	if _, err := c0.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := c0.WaitFail(waitLong); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Write([]byte("after")); !errors.Is(err, ErrHalted) {
		t.Fatalf("write after fail: %v, want ErrHalted", err)
	}
	if _, _, err := c0.Read(0); !errors.Is(err, ErrHalted) {
		t.Fatalf("read after fail: %v, want ErrHalted", err)
	}
}

func TestFailHandlerAndBroadcastEvidence(t *testing.T) {
	const n = 3
	server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fails := map[int]error{}
	cl := newCluster(t, n, server, fastConfig(false))
	for i, c := range cl.clients {
		i := i
		c.onFail = func(err error) {
			mu.Lock()
			fails[i] = err
			mu.Unlock()
		}
	}
	cl.startAll()
	for i, c := range cl.clients {
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range cl.clients {
		if err := c.WaitFail(waitLong); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fails) != n {
		t.Fatalf("fail handlers fired %d times, want %d", len(fails), n)
	}
}

func TestBogusFailureEvidenceIgnored(t *testing.T) {
	// A FAILURE message with invalid evidence must not trigger fail
	// (failure-detection accuracy) — but note the model trusts bare
	// FAILURE messages from honest clients, so only the evidence variant
	// is validated.
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.startAll()
	c0 := cl.clients[0]

	bogus := &wire.Failure{
		From:        1,
		HasEvidence: true,
		EvidenceA:   wire.SignedVersion{Committer: 0, Ver: mkVer(2, 1, 0), Sig: []byte("junk")},
		EvidenceB:   wire.SignedVersion{Committer: 1, Ver: mkVer(2, 0, 1), Sig: []byte("junk")},
	}
	if err := cl.hub.Endpoint(1).Send(0, bogus); err != nil {
		t.Fatal(err)
	}
	if err := c0.WaitFail(300 * time.Millisecond); err == nil {
		t.Fatal("client failed on unverifiable evidence")
	}
}

func TestValidFailureEvidenceAccepted(t *testing.T) {
	// Genuine incomparable signed versions convince any client.
	ring, signers := crypto.NewTestKeyring(2, 42) // same seed as newCluster
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.startAll()
	c0 := cl.clients[0]

	verA := mkVer(2, 1, 0)
	verB := mkVer(2, 0, 1)
	evidence := &wire.Failure{
		From:        1,
		HasEvidence: true,
		EvidenceA: wire.SignedVersion{
			Committer: 0, Ver: verA,
			Sig: signers[0].Sign(crypto.DomainCommit, wire.CommitPayload(verA)),
		},
		EvidenceB: wire.SignedVersion{
			Committer: 1, Ver: verB,
			Sig: signers[1].Sign(crypto.DomainCommit, wire.CommitPayload(verB)),
		},
	}
	_ = ring
	if err := cl.hub.Endpoint(1).Send(0, evidence); err != nil {
		t.Fatal(err)
	}
	if err := c0.WaitFail(waitLong); err != nil {
		t.Fatalf("verifiable fork evidence ignored: %v", err)
	}
}

func TestBareFailureMessageTrusted(t *testing.T) {
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.startAll()
	if err := cl.hub.Endpoint(1).Send(0, &wire.Failure{From: 1}); err != nil {
		t.Fatal(err)
	}
	if err := cl.clients[0].WaitFail(waitLong); err != nil {
		t.Fatalf("bare FAILURE from honest client ignored: %v", err)
	}
}

func TestProbeAnsweredWithVersion(t *testing.T) {
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.clients[0].Start() // client 1 stays un-started; we act as client 1
	if _, err := cl.clients[0].Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	ep1 := cl.hub.Endpoint(1)
	if err := ep1.Send(0, &wire.Probe{From: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(waitLong)
	for {
		select {
		case <-deadline:
			t.Fatal("no VERSION reply to probe")
		default:
		}
		if m, ok := ep1.TryRecv(); ok {
			vm, isVer := m.Body.(*wire.VersionMsg)
			if !isVer {
				continue // skip e.g. probes from client 0
			}
			if vm.SV.Ver.IsZero() {
				t.Fatal("probe answered with zero version after a write")
			}
			if vm.SV.Ver.V[0] != 1 {
				t.Fatalf("version does not cover the write: %v", vm.SV.Ver)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLateJoinerCatchesUpViaStoredProbes(t *testing.T) {
	// Carlos pattern: a client that was offline (not started) receives
	// buffered probes when it comes online and the prober's cut advances.
	cl := newCluster(t, 2, nil, fastConfig(false))
	c0, c1 := cl.clients[0], cl.clients[1]
	c0.Start() // c1 offline

	ts, err := c0.Write([]byte("early"))
	if err != nil {
		t.Fatal(err)
	}
	// c1 must observe the op through the server before it can vouch for
	// it: bring it online and let it read.
	time.Sleep(100 * time.Millisecond) // let probes accumulate
	c1.Start()
	if _, _, err := c1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := c0.WaitStableFor(1, ts, waitLong); err != nil {
		t.Fatalf("stability after late join: %v", err)
	}
}

func TestAuditDetectsFork(t *testing.T) {
	ring, signers := crypto.NewTestKeyring(2, 9)
	verA := mkVer(2, 1, 0)
	verB := mkVer(2, 0, 1)
	svA := wire.SignedVersion{Committer: 0, Ver: verA, Sig: signers[0].Sign(crypto.DomainCommit, wire.CommitPayload(verA))}
	svB := wire.SignedVersion{Committer: 1, Ver: verB, Sig: signers[1].Sign(crypto.DomainCommit, wire.CommitPayload(verB))}

	if rep := Audit(ring, []wire.SignedVersion{svA, svB}); rep.OK {
		t.Fatal("audit missed a fork")
	}
	verC := mkVer(2, 1, 1)
	svC := wire.SignedVersion{Committer: 1, Ver: verC, Sig: signers[1].Sign(crypto.DomainCommit, wire.CommitPayload(verC))}
	if rep := Audit(ring, []wire.SignedVersion{svA, svC, wire.ZeroSignedVersion(2)}); !rep.OK {
		t.Fatalf("audit rejected a consistent chain: %s", rep.Reason)
	}
}

func TestAuditRejectsBadSignature(t *testing.T) {
	ring, _ := crypto.NewTestKeyring(2, 9)
	sv := wire.SignedVersion{Committer: 0, Ver: mkVer(2, 1, 0), Sig: []byte("garbage")}
	if rep := Audit(ring, []wire.SignedVersion{sv}); rep.OK {
		t.Fatal("audit accepted a forged version")
	}
	svBad := wire.SignedVersion{Committer: 7, Ver: mkVer(2, 1, 0), Sig: []byte("garbage")}
	if rep := Audit(ring, []wire.SignedVersion{svBad}); rep.OK {
		t.Fatal("audit accepted an out-of-range committer")
	}
}

func TestStopIsNotFailure(t *testing.T) {
	cl := newCluster(t, 2, nil, fastConfig(true))
	cl.startAll()
	if _, err := cl.clients[0].Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	cl.clients[0].Stop()
	if failed, _ := cl.clients[0].Failed(); failed {
		t.Fatal("Stop marked the client failed")
	}
	if _, err := cl.clients[0].Write([]byte("y")); !errors.Is(err, ErrHalted) {
		t.Fatalf("op after Stop: %v", err)
	}
}

func TestWaitStableTimesOut(t *testing.T) {
	// Client 1 is fully offline (never started): no dummy reads, no probe
	// replies. Stability w.r.t. it is unreachable and the wait times out.
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.clients[0].Start()
	ts, err := cl.clients[0].Write([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.clients[0].WaitStableFor(1, ts, 300*time.Millisecond); err == nil {
		t.Fatal("stability reported while client 1 is offline")
	}
}

func TestVersionRelayMakesIdleClientVouch(t *testing.T) {
	// The paper's propagation property: a VERSION message from C_j need
	// not contain a version committed by C_j. An idle-but-online client
	// relays the maximal version it verified, which legitimately makes
	// operations stable w.r.t. it (an empty client is consistent with
	// every view).
	cl := newCluster(t, 2, nil, fastConfig(false))
	cl.startAll()
	ts, err := cl.clients[0].Write([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.clients[0].WaitStableFor(1, ts, waitLong); err != nil {
		t.Fatalf("offline relay did not establish stability: %v", err)
	}
}

// mkVer builds a version with the given timestamp vector and dummy
// digests in nonzero entries.
func mkVer(n int, ts ...int64) version.Version {
	v := version.New(n)
	for i, t := range ts {
		v.V[i] = t
		if t != 0 {
			v.M[i] = []byte{byte(i + 1)}
		}
	}
	return v
}
