package obsevent_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"faust/tools/faustlint/analyzers/obsevent"
)

func TestObsEvent(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obsevent.Analyzer, "a")
}
