package ustor

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"faust/internal/crypto"
	"faust/internal/transport"
	"faust/internal/version"
	"faust/internal/wire"
)

// TestPropertyVersionChainInvariants drives random concurrent workloads
// against a correct server (with randomized delivery delays) and checks
// the protocol-level invariants Section 5 proves:
//
//  1. all committed versions are pairwise comparable (one chain);
//  2. two versions with equal timestamp vectors are identical (the digest
//     side-condition of Definition 7 never disambiguates honest runs);
//  3. per client, successive committed versions strictly grow;
//  4. every version's own entry equals the operation's timestamp.
func TestPropertyVersionChainInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			const n, ops = 4, 15
			ring, signers := crypto.NewTestKeyring(n, seed)
			nw := transport.NewNetwork(n, NewServer(n))
			defer nw.Stop()
			clients := make([]*Client, n)
			for i := 0; i < n; i++ {
				clients[i] = NewClient(i, ring, signers[i], nw.ClientLink(i))
			}

			type stamped struct {
				client int
				ts     int64
				ver    version.Version
			}
			var mu sync.Mutex
			var all []stamped
			perClient := make([][]stamped, n)

			var wg sync.WaitGroup
			for c := 0; c < n; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*100 + int64(c)))
					for i := 0; i < ops; i++ {
						var res OpResult
						var err error
						if rng.Intn(2) == 0 {
							res, err = clients[c].WriteX(context.Background(), []byte(fmt.Sprintf("s%d-c%d-%d", seed, c, i)))
						} else {
							var rr ReadResult
							rr, err = clients[c].ReadX(context.Background(), rng.Intn(n))
							res = rr.OpResult
						}
						if err != nil {
							t.Errorf("client %d: %v", c, err)
							return
						}
						mu.Lock()
						s := stamped{client: c, ts: res.Timestamp, ver: res.Version.Ver}
						all = append(all, s)
						perClient[c] = append(perClient[c], s)
						mu.Unlock()
					}
				}(c)
			}
			wg.Wait()

			// Invariant 1 + 2.
			for i := range all {
				for j := i + 1; j < len(all); j++ {
					a, b := all[i].ver, all[j].ver
					if !version.Comparable(a, b) {
						t.Fatalf("incomparable versions on an honest run:\n%v\n%v", a, b)
					}
					if vectorEqual(a.V, b.V) && !a.Equal(b) {
						t.Fatalf("same timestamp vector, different digests:\n%v\n%v", a, b)
					}
				}
			}
			// Invariant 3 + 4.
			for c := 0; c < n; c++ {
				for k, s := range perClient[c] {
					if s.ver.V[c] != s.ts {
						t.Fatalf("client %d op %d: own entry %d != timestamp %d",
							c, k, s.ver.V[c], s.ts)
					}
					if k > 0 {
						prev := perClient[c][k-1]
						if !prev.ver.Less(s.ver) {
							t.Fatalf("client %d: version did not grow:\n%v\n%v",
								c, prev.ver, s.ver)
						}
					}
				}
			}
		})
	}
}

func vectorEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertyReaderSeesFreshEnoughValue checks the regularity-style
// guarantee implied by line 51: a read returns the value of the writer's
// latest operation in the reader's view — with a single writer doing
// sequential writes and a concurrent reader, every read returns either
// the last completed write or the one in flight.
func TestPropertyReaderSeesFreshEnoughValue(t *testing.T) {
	const writes = 40
	ring, signers := crypto.NewTestKeyring(2, 9)
	nw := transport.NewNetwork(2, NewServer(2))
	defer nw.Stop()
	writer := NewClient(0, ring, signers[0], nw.ClientLink(0))
	reader := NewClient(1, ring, signers[1], nw.ClientLink(1))

	var mu sync.Mutex
	completed := -1 // index of the last completed write

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writes; i++ {
			if err := writer.Write([]byte(fmt.Sprintf("w%04d", i))); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			mu.Lock()
			completed = i
			mu.Unlock()
		}
	}()

	for {
		select {
		case <-done:
			// Final read must return the last write.
			v, err := reader.Read(0)
			if err != nil {
				t.Fatalf("final read: %v", err)
			}
			if string(v) != fmt.Sprintf("w%04d", writes-1) {
				t.Fatalf("final read = %q", v)
			}
			return
		default:
		}
		mu.Lock()
		floor := completed
		mu.Unlock()
		v, err := reader.Read(0)
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		if floor >= 0 {
			var got int
			if v == nil {
				t.Fatalf("bottom read after write %d completed", floor)
			}
			if _, err := fmt.Sscanf(string(v), "w%04d", &got); err != nil {
				t.Fatalf("unparseable value %q", v)
			}
			if got < floor {
				t.Fatalf("read %q older than completed write %d (stale read)", v, floor)
			}
		}
	}
}

// TestServerRejectsOutOfRangeTraffic covers the server's defensive paths.
func TestServerRejectsOutOfRangeTraffic(t *testing.T) {
	s := NewServer(2)
	if r := s.HandleSubmit(context.Background(), -1, &wire.Submit{}); r != nil {
		t.Fatal("negative client id accepted")
	}
	if r := s.HandleSubmit(context.Background(), 5, &wire.Submit{}); r != nil {
		t.Fatal("out-of-range client id accepted")
	}
	if r := s.HandleSubmit(context.Background(), 0, &wire.Submit{Inv: wire.Invocation{Op: wire.OpRead, Reg: 9}}); r != nil {
		t.Fatal("out-of-range register read accepted")
	}
	// Out-of-range commits must be ignored, not panic.
	s.HandleCommit(context.Background(), -1, &wire.Commit{Ver: version.New(2)})
	s.HandleCommit(context.Background(), 7, &wire.Commit{Ver: version.New(2)})
}
