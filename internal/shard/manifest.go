package shard

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Manifest format: one shard per line,
//
//	<name> n=<clients> [persist|persist=<bool>]
//
// Blank lines and '#' comments are ignored. Example:
//
//	# tenants
//	acme     n=4 persist
//	initech  n=8
//
// ParseManifest returns the declared specs in file order; directory layout
// (Spec.Dir) is left to Options.BaseDir.
func ParseManifest(r io.Reader) ([]Spec, error) {
	var specs []Spec
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		sp := Spec{Name: fields[0]}
		if !ValidName(sp.Name) {
			return nil, fmt.Errorf("shard manifest line %d: invalid shard name %q", lineNo, sp.Name)
		}
		if err := applyKeys(&sp, fields[1:]); err != nil {
			return nil, fmt.Errorf("shard manifest line %d: %w", lineNo, err)
		}
		if sp.N <= 0 {
			return nil, fmt.Errorf("shard manifest line %d: shard %q needs n=<clients>", lineNo, sp.Name)
		}
		specs = append(specs, sp)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("shard manifest: %w", err)
	}
	return specs, nil
}

// ParseSpec parses a nameless spec template like "n=4,persist" or
// "n=8,persist=false" — the -shard-spec flag's syntax for lazily created
// shards.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	if err := applyKeys(&sp, strings.Split(s, ",")); err != nil {
		return Spec{}, fmt.Errorf("shard spec %q: %w", s, err)
	}
	if sp.N <= 0 {
		return Spec{}, fmt.Errorf("shard spec %q: needs n=<clients>", s)
	}
	return sp, nil
}

// applyKeys parses "key=value" (or bare "persist") tokens into sp.
func applyKeys(sp *Spec, tokens []string) error {
	for _, tok := range tokens {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		switch key {
		case "n":
			if !hasVal {
				return fmt.Errorf("n needs a value")
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad n %q: %w", val, err)
			}
			sp.N = n
		case "persist":
			if !hasVal {
				sp.Persist = true
				break
			}
			b, err := strconv.ParseBool(val)
			if err != nil {
				return fmt.Errorf("bad persist %q: %w", val, err)
			}
			sp.Persist = b
		default:
			return fmt.Errorf("unknown key %q", key)
		}
	}
	return nil
}
