// Package shard hosts many independent USTOR instances ("shards") behind
// one server process — the multi-tenant deployment the ROADMAP targets.
//
// Each shard is its own n-client register group with its own ustor.Server
// and, optionally, its own store.Persistent backend in a per-shard data
// directory; shards share nothing but the process. The Router implements
// transport.ShardResolver, so a transport.TCPServer serves all shards from
// a single listener: the v2 handshake names the shard, legacy clients land
// on transport.DefaultShard, and every shard gets its own dispatcher
// goroutine in the transport — per-shard handler atomicity with cross-shard
// parallelism (see the E17 experiment in cmd/faust-bench).
//
// Shards are instantiated lazily on first resolution: a declared (or
// template-matched) shard costs nothing until a client connects, at which
// point its state is recovered from disk if it persists. Close snapshots
// and releases every instantiated persistent shard.
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"faust/internal/blobfleet"
	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/ustor"
)

// Router-level observability: how many tenants are live and how often
// preflight turns handshakes away before they can cost anything. (The
// per-tenant op counters live in the transport dispatcher, which labels
// them with the shard name this router resolved.)
var (
	rmShardsOpen       = obs.Default().Gauge("faust_shards_open")
	rmShardsCreated    = obs.Default().Counter("faust_shards_created_total")
	rmPreflightRejects = obs.Default().Counter("faust_shard_preflight_rejects_total")
)

func init() {
	r := obs.Default()
	r.Help("faust_shards_open", "shard instances currently instantiated")
	r.Help("faust_shards_created_total", "shard instantiations since process start")
	r.Help("faust_shard_preflight_rejects_total", "handshakes rejected by shard preflight validation")
}

// Spec declares one shard.
type Spec struct {
	// Name identifies the shard in handshakes and on disk. It must match
	// ValidName (letters, digits, '.', '_', '-'; leading alphanumeric; at
	// most 64 bytes) because it becomes a directory name.
	Name string
	// N is the shard's client-group size (number of registers).
	N int
	// Persist enables WAL + snapshot durability for this shard.
	Persist bool
	// Dir overrides the shard's data directory. Empty means
	// <Options.BaseDir>/shards/<Name>. Only meaningful with Persist.
	Dir string
}

// Options configures a Router.
type Options struct {
	// BaseDir is the root for per-shard data directories
	// (<BaseDir>/shards/<name>). Required if any persistent shard leaves
	// Spec.Dir empty.
	BaseDir string
	// FileOptions configures every persistent shard's FileBackend.
	FileOptions store.FileOptions
	// StoreOptions configures every persistent shard's WAL wrapper.
	StoreOptions store.Options
	// Default, when non-nil, is the template for shards that are resolved
	// without having been declared: the requested name is lazily created
	// with the template's N and Persist (Name and Dir are ignored). Nil
	// rejects unknown shard names.
	Default *Spec
	// BlobFleet, when non-nil, backs every shard's bulk blob channel with
	// a failover fleet built from this spec instead of the single default
	// store (in-memory shards degrade the spec's dir entries to mem —
	// see blobfleet.FleetSpec.Build). BlobFaults optionally wraps one
	// fleet backend in a fault injector.
	BlobFleet  *blobfleet.FleetSpec
	BlobFaults *blobfleet.FaultPlan
	// VerifyKeyring, when non-nil, supplies each shard's public keyring
	// for dispatcher-side SUBMIT-signature verification (see the
	// transport.VerifierResolver extension). It is called once per shard
	// instantiation with the shard's name and group size; returning nil
	// leaves that shard unverified. Admission hygiene only — the
	// protocol's guarantees stay client-enforced.
	VerifyKeyring func(name string, n int) *crypto.Keyring
}

// Info describes one instantiated shard.
type Info struct {
	Name              string
	N                 int
	Persistent        bool
	Dir               string // empty for in-memory shards
	RecoveredSnapshot bool   // recovery loaded a snapshot at instantiation
	ReplayedRecords   int    // WAL records replayed at instantiation
}

// instance is one live shard.
type instance struct {
	info  Info
	core  transport.ServerCore
	ps    *store.Persistent   // nil for in-memory shards
	ring  *crypto.Keyring     // nil when the shard is unverified
	blobs transport.BlobStore // bulk blob channel backing (KV chunks)
	fleet *blobfleet.Failover // nil without Options.BlobFleet; Close stops its prober
}

// pendingCreate tracks one shard's in-flight instantiation so concurrent
// resolutions of the same name share a single create — which may replay a
// WAL — without holding the router mutex across it.
type pendingCreate struct {
	done chan struct{} // closed once inst/err are set
	inst *instance
	err  error
}

// Router owns the shard table of a multi-tenant server. It is safe for
// concurrent use; each shard is instantiated exactly once, and
// instantiation (disk recovery included) runs outside the router mutex so
// one shard's recovery never stalls other shards' handshakes.
type Router struct {
	opts Options

	mu       sync.Mutex
	specs    map[string]Spec
	open     map[string]*instance
	creating map[string]*pendingCreate
	closed   bool
}

var (
	_ transport.ShardResolver    = (*Router)(nil)
	_ transport.ShardPreflight   = (*Router)(nil)
	_ transport.BlobResolver     = (*Router)(nil)
	_ transport.VerifierResolver = (*Router)(nil)
	_ transport.BlobStore        = (*store.FileBlobs)(nil)
)

// ValidName reports whether a shard name is acceptable: 1-64 bytes of
// letters, digits, '.', '_' or '-', starting with a letter or digit. The
// constraint keeps names safe to embed in directory paths.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// NewRouter validates the declared specs and returns a router. No shard is
// instantiated yet; each is created (and, if persistent, recovered) on its
// first ResolveShard.
func NewRouter(specs []Spec, opts Options) (*Router, error) {
	r := &Router{
		opts:     opts,
		specs:    make(map[string]Spec, len(specs)),
		open:     make(map[string]*instance),
		creating: make(map[string]*pendingCreate),
	}
	for _, sp := range specs {
		if err := r.validateSpec(sp); err != nil {
			return nil, err
		}
		if _, dup := r.specs[sp.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate shard %q", sp.Name)
		}
		r.specs[sp.Name] = sp
	}
	if d := opts.Default; d != nil {
		if d.N <= 0 {
			return nil, fmt.Errorf("shard: default spec needs a positive n, got %d", d.N)
		}
		if d.Persist && opts.BaseDir == "" {
			return nil, errors.New("shard: default spec persists but no base directory is configured")
		}
	}
	return r, nil
}

func (r *Router) validateSpec(sp Spec) error {
	if !ValidName(sp.Name) {
		return fmt.Errorf("shard: invalid shard name %q", sp.Name)
	}
	if sp.N <= 0 {
		return fmt.Errorf("shard: shard %q needs a positive n, got %d", sp.Name, sp.N)
	}
	if sp.Persist && sp.Dir == "" && r.opts.BaseDir == "" {
		return fmt.Errorf("shard: shard %q persists but has no directory (set Spec.Dir or Options.BaseDir)", sp.Name)
	}
	return nil
}

// PreflightShard implements transport.ShardPreflight: it validates a
// handshake's shard name and client id against the declared spec (or the
// lazy template) WITHOUT instantiating the shard, so rejected handshakes
// cannot force shard creation — otherwise an attacker cycling fresh names
// with bad ids could grow goroutines, FDs and directories without bound.
func (r *Router) PreflightShard(name string, id int) error {
	if err := r.preflight(name, id); err != nil {
		rmPreflightRejects.Inc()
		return err
	}
	return nil
}

func (r *Router) preflight(name string, id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("shard: router closed")
	}
	var n int
	switch {
	case r.open[name] != nil:
		n = r.open[name].info.N
	case r.hasSpec(name):
		n = r.specs[name].N
	case r.opts.Default != nil:
		if !ValidName(name) {
			return fmt.Errorf("shard: invalid shard name %q", name)
		}
		n = r.opts.Default.N
	default:
		return fmt.Errorf("shard: unknown shard %q", name)
	}
	if id < 0 || id >= n {
		return fmt.Errorf("shard: client id %d out of range for shard %q (n=%d)", id, name, n)
	}
	return nil
}

func (r *Router) hasSpec(name string) bool {
	_, ok := r.specs[name]
	return ok
}

// ResolveShard implements transport.ShardResolver: it returns the named
// shard's core, instantiating the shard on first use. Unknown names are
// created from Options.Default when set, rejected otherwise. The creation
// itself — including recovery of a persistent shard's WAL — runs outside
// r.mu, so preflights and resolutions of other shards proceed while one
// shard recovers; concurrent resolutions of the same name share the one
// in-flight creation.
func (r *Router) ResolveShard(name string) (transport.ServerCore, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("shard: router closed")
	}
	if inst, ok := r.open[name]; ok {
		r.mu.Unlock()
		return inst.core, nil
	}
	if pc, ok := r.creating[name]; ok {
		r.mu.Unlock()
		<-pc.done
		if pc.err != nil {
			return nil, pc.err
		}
		return pc.inst.core, nil
	}
	sp, declared := r.specs[name]
	if !declared {
		if r.opts.Default == nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("shard: unknown shard %q", name)
		}
		if !ValidName(name) {
			r.mu.Unlock()
			return nil, fmt.Errorf("shard: invalid shard name %q", name)
		}
		sp = Spec{Name: name, N: r.opts.Default.N, Persist: r.opts.Default.Persist}
	}
	pc := &pendingCreate{done: make(chan struct{})}
	r.creating[name] = pc
	r.mu.Unlock()

	inst, err := r.create(sp)

	r.mu.Lock()
	delete(r.creating, name)
	if err == nil {
		if r.closed {
			// Close ran while this shard was being created; it could not
			// have seen the instance, so release the backend here.
			if inst.ps != nil {
				_ = inst.ps.Close()
			}
			inst.closeBlobs()
			inst, err = nil, errors.New("shard: router closed")
		} else {
			r.open[name] = inst
			rmShardsCreated.Inc()
			rmShardsOpen.Set(int64(len(r.open)))
		}
	}
	r.mu.Unlock()
	pc.inst, pc.err = inst, err
	close(pc.done)
	if err != nil {
		return nil, err
	}
	return inst.core, nil
}

// create instantiates one shard, recovering persistent state if any.
// Every shard also gets a blob store for the bulk channel: by default an
// in-memory one for in-memory shards and a file-backed one under
// <dir>/blobs for persistent shards (so chunked KV values survive
// restarts with the registers); with Options.BlobFleet, a failover fleet
// built from the spec instead.
func (r *Router) create(sp Spec) (*instance, error) {
	srv := ustor.NewServer(sp.N)
	inst := &instance{
		info: Info{Name: sp.Name, N: sp.N, Persistent: sp.Persist},
		core: srv,
	}
	if r.opts.VerifyKeyring != nil {
		inst.ring = r.opts.VerifyKeyring(sp.Name, sp.N)
	}
	dir := ""
	if sp.Persist {
		dir = sp.Dir
		if dir == "" {
			dir = filepath.Join(r.opts.BaseDir, "shards", sp.Name)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating %q data dir: %w", sp.Name, err)
		}
	}
	if err := r.openBlobs(inst, sp, dir); err != nil {
		return nil, err
	}
	if !sp.Persist {
		return inst, nil
	}
	backend, err := store.OpenFile(dir, r.opts.FileOptions)
	if err != nil {
		inst.closeBlobs()
		return nil, fmt.Errorf("shard: opening %q backend: %w", sp.Name, err)
	}
	ps, err := store.Open(srv, backend, r.opts.StoreOptions)
	if err != nil {
		_ = backend.Close()
		inst.closeBlobs()
		return nil, fmt.Errorf("shard: recovering %q: %w", sp.Name, err)
	}
	inst.core = ps
	inst.ps = ps
	inst.info.Dir = dir
	inst.info.RecoveredSnapshot, inst.info.ReplayedRecords = ps.Recovered()
	return inst, nil
}

// openBlobs picks the shard's bulk blob backing: a failover fleet when
// one is configured, the legacy single store otherwise. dir is "" for
// in-memory shards.
func (r *Router) openBlobs(inst *instance, sp Spec, dir string) error {
	if fs := r.opts.BlobFleet; fs != nil {
		fleet, err := fs.Build(dir, r.opts.FileOptions.Fsync, blobfleet.Options{Shard: sp.Name}, r.opts.BlobFaults)
		if err != nil {
			return fmt.Errorf("shard: building %q blob fleet: %w", sp.Name, err)
		}
		inst.blobs, inst.fleet = fleet, fleet
		return nil
	}
	if dir == "" {
		inst.blobs = transport.NewMemBlobs()
		return nil
	}
	blobs, err := store.OpenFileBlobs(filepath.Join(dir, "blobs"), r.opts.FileOptions.Fsync)
	if err != nil {
		return fmt.Errorf("shard: opening %q blob store: %w", sp.Name, err)
	}
	inst.blobs = blobs
	return nil
}

// closeBlobs stops the shard's fleet prober, if it has a fleet.
func (inst *instance) closeBlobs() {
	if inst.fleet != nil {
		_ = inst.fleet.Close()
	}
}

// ResolveBlobs implements transport.BlobResolver: it returns the named
// shard's blob store, instantiating the shard on first use exactly like
// ResolveShard (same lazy-creation slot, same default template rules).
func (r *Router) ResolveBlobs(name string) (transport.BlobStore, error) {
	if _, err := r.ResolveShard(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.open[name]
	if !ok {
		return nil, fmt.Errorf("shard: shard %q closed", name)
	}
	return inst.blobs, nil
}

// ResolveVerifier implements transport.VerifierResolver: it returns the
// named shard's SUBMIT-verification keyring, nil when the shard is
// unverified (no Options.VerifyKeyring, or it declined this shard). The
// transport consults it after ResolveShard on the same handshake, so the
// instance always exists by the time this runs; a racing Close simply
// yields nil, which downgrades to no verification — never a wrong ring.
func (r *Router) ResolveVerifier(name string) *crypto.Keyring {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.open[name]
	if !ok {
		return nil
	}
	return inst.ring
}

// FleetStatus reports an instantiated shard's blob fleet backends, in
// fleet order. Nil when the shard is not open or runs without a fleet.
func (r *Router) FleetStatus(name string) []blobfleet.BackendStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.open[name]
	if !ok || inst.fleet == nil {
		return nil
	}
	return inst.fleet.Status()
}

// Info returns the instantiation record of an open shard.
func (r *Router) Info(name string) (Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.open[name]
	if !ok {
		return Info{}, false
	}
	return inst.info, true
}

// OpenShards lists every instantiated shard, sorted by name.
func (r *Router) OpenShards() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	infos := make([]Info, 0, len(r.open))
	for _, inst := range r.open {
		infos = append(infos, inst.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// DeclaredShards lists every declared (manifest) shard name, sorted.
func (r *Router) DeclaredShards() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.specs))
	for name := range r.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close snapshots and closes every instantiated persistent shard (so the
// next boot replays nothing) and rejects further resolutions. Stop the
// transport server first: a shard resolved mid-Close is not protected.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	rmShardsOpen.Set(0)
	var errs []error
	for name, inst := range r.open {
		inst.closeBlobs()
		if inst.ps == nil {
			continue
		}
		if err := inst.ps.Snapshot(); err != nil {
			errs = append(errs, fmt.Errorf("shard %q snapshot: %w", name, err))
		}
		if err := inst.ps.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %q close: %w", name, err))
		}
	}
	return errors.Join(errs...)
}
