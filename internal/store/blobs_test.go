package store

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"faust/internal/crypto"
)

func TestFileBlobsRoundTrip(t *testing.T) {
	b, err := OpenFileBlobs(filepath.Join(t.TempDir(), "blobs"), false)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("blob"), 1000)
	hash := crypto.Hash(data)
	if err := b.PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-put of the same content is a no-op, not an error.
	if err := b.PutBlob(hash, data); err != nil {
		t.Fatalf("re-put: %v", err)
	}
	got, err := b.GetBlob(hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get = %d bytes, %v", len(got), err)
	}
	if _, err := b.GetBlob(crypto.Hash([]byte("missing"))); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing blob error = %v, want fs.ErrNotExist", err)
	}
	if n, err := b.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
	if err := b.PutBlob(nil, data); err == nil {
		t.Fatal("empty hash accepted")
	}
}

// TestFileBlobsSurviveReopen is the property the KV recovery path needs:
// a fresh FileBlobs over the same directory serves everything the old one
// stored — chunks are as durable as the WAL next to them.
func TestFileBlobsSurviveReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "blobs")
	b1, err := OpenFileBlobs(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persisted chunk")
	hash := crypto.Hash(data)
	if err := b1.PutBlob(hash, data); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenFileBlobs(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b2.GetBlob(hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("after reopen: %d bytes, %v", len(got), err)
	}
}

// TestFileBlobsConcurrentSameHash: concurrent puts of one hash must all
// succeed and leave exactly one valid blob (atomic publish via rename).
func TestFileBlobsConcurrentSameHash(t *testing.T) {
	b, err := OpenFileBlobs(filepath.Join(t.TempDir(), "blobs"), false)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("c"), 1<<16)
	hash := crypto.Hash(data)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- b.PutBlob(hash, data)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent put: %v", err)
		}
	}
	got, err := b.GetBlob(hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after concurrent puts: %d bytes, %v", len(got), err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(b.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
