package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"faust/internal/wire"
)

func startTCP(t *testing.T, core ServerCore) (*TCPServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := ServeTCP(ln, core)
	t.Cleanup(srv.Stop)
	return srv, ln.Addr().String()
}

func TestTCPRoundTrip(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer link.Close()
	if err := link.Send(&wire.Submit{T: 9}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, err := link.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got := m.(*wire.Reply).C; got != 9 {
		t.Fatalf("reply.C = %d, want 9", got)
	}
}

func TestTCPFIFOPerClient(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	link, err := DialTCP(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	for i := 0; i < 50; i++ {
		if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		m, err := link.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Reply).C; got != i {
			t.Fatalf("reply %d out of order: %d", i, got)
		}
	}
}

func TestTCPMultipleClients(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			link, err := DialTCP(addr, c)
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer link.Close()
			for i := 0; i < 20; i++ {
				if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				m, err := link.Recv()
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if got := m.(*wire.Reply).C; got != i {
					t.Errorf("client %d reply %d: got %d", c, i, got)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestTCPCommitDelivered(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	for i := 0; i < 5; i++ {
		if err := link.Send(&wire.Commit{}); err != nil {
			t.Fatal(err)
		}
	}
	_ = link.Send(&wire.Submit{T: 1})
	if _, err := link.Recv(); err != nil {
		t.Fatal(err)
	}
	core.mu.Lock()
	defer core.mu.Unlock()
	if len(core.commits) != 5 {
		t.Fatalf("commits = %d, want 5", len(core.commits))
	}
}

func TestTCPRecvFailsAfterStop(t *testing.T) {
	core := &echoCore{}
	srv, addr := startTCP(t, core)
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	done := make(chan error, 1)
	go func() {
		_, err := link.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv succeeded after server stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestTCPDialUnreachable(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1", 0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
