// Package cryptoboundary forbids raw cryptographic primitive calls
// outside the internal/crypto package.
//
// All signing and protocol hashing in the fail-aware stack goes through
// faust/internal/crypto, whose helpers prepend the domain-separation
// tags of Algorithm 1 (DomainSubmit/Data/Commit/Proof) and feed the
// observability counters. A raw ed25519.Sign or sha256.Sum256 call
// anywhere else can silently bypass that discipline — a signature
// issued without its domain tag is exactly the cross-protocol confusion
// the tags exist to prevent, and a digest computed outside the helpers
// escapes both the domain conventions and the crypto metrics.
//
// Flagged outside packages whose import path ends in internal/crypto:
//
//   - calls to crypto/ed25519 Sign, Verify, VerifyWithOptions,
//     GenerateKey, NewKeyFromSeed, and the PrivateKey.Sign method
//   - calls to crypto/sha256 New, New224, Sum224, Sum256
//
// Constants (ed25519.PublicKeySize, sha256.Size) stay usable — only
// the operations are guarded.
package cryptoboundary

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"faust/tools/faustlint/internal/directive"
)

// Analyzer is the cryptoboundary analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "cryptoboundary",
	Doc:      "forbids raw ed25519/sha256 operations outside internal/crypto (domain-prefix discipline)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var forbidden = map[string]map[string]bool{
	"crypto/ed25519": {
		"Sign":              true,
		"Verify":            true,
		"VerifyWithOptions": true,
		"GenerateKey":       true,
		"NewKeyFromSeed":    true,
	},
	"crypto/sha256": {
		"New":    true,
		"New224": true,
		"Sum224": true,
		"Sum256": true,
	},
}

var _ = directive.Register(Analyzer.Name)

func run(pass *analysis.Pass) (interface{}, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/crypto") {
		return nil, nil // the one package allowed to touch primitives
	}
	dp := directive.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		pkgPath, name := fn.Pkg().Path(), fn.Name()
		if names, ok := forbidden[pkgPath]; ok && names[name] {
			dp.Reportf(call.Pos(),
				"raw %s.%s outside internal/crypto bypasses the domain-prefix discipline; use the faust/internal/crypto helpers (Hash/HashInto, Signer.Sign, Keyring.Verify)",
				pathBase(pkgPath), name)
			return
		}
		// (ed25519.PrivateKey).Sign — the crypto.Signer interface route
		// around the package-level function.
		if pkgPath == "crypto/ed25519" && name == "Sign" {
			dp.Reportf(call.Pos(),
				"raw ed25519 PrivateKey.Sign outside internal/crypto bypasses the domain-prefix discipline; use Signer.Sign")
		}
	})
	return nil, nil
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
