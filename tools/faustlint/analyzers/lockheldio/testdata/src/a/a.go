// Fixture for the lockheldio analyzer.
package a

import (
	"net"
	"os"
	"sync"
)

// Link mirrors the transport link contract: Send/Recv on an interface
// count as blocking transport I/O.
type Link interface {
	Send(m int) error
	Recv() (int, error)
}

type Blobs interface {
	PutBlob(key string, data []byte) error
	GetBlob(key string) ([]byte, error)
}

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	wmu   sync.Mutex
	conn  net.Conn
	file  *os.File
	link  Link
	blobs Blobs
	state int
}

func (s *server) writeUnderStateLock(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(b) // want `can block on I/O while mutex s\.mu is held`
	return err
}

func (s *server) syncUnderStateLock() error {
	s.mu.Lock()
	err := s.file.Sync() // want `\(\*os\.File\)\.Sync can block on I/O while mutex s\.mu is held`
	s.mu.Unlock()
	return err
}

func (s *server) sendUnderReadLock() error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.link.Send(1) // want `Send can block on I/O while mutex s\.rw is held`
}

func (s *server) blobUnderStateLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blobs.PutBlob("k", nil) // want `PutBlob can block on I/O while mutex s\.mu is held`
}

// narrowedCriticalSection drops the lock before the write: clean.
func (s *server) narrowedCriticalSection(b []byte) error {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	_, err := s.conn.Write(b)
	return err
}

// serializationLockIsExempt: wmu exists to be held across the write.
func (s *server) serializationLockIsExempt(b []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_, err := s.conn.Write(b)
	return err
}

// earlyReturnUnlock: the error path unlocks and leaves; the fall-through
// path still holds the lock, so the write after the if is flagged.
func (s *server) earlyReturnUnlock(b []byte, bad bool) error {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return nil
	}
	_, err := s.conn.Write(b) // want `can block on I/O while mutex s\.mu is held`
	s.mu.Unlock()
	return err
}

// bothBranchesUnlock: every rejoining path released the lock.
func (s *server) bothBranchesUnlock(b []byte, fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	} else {
		s.state++
		s.mu.Unlock()
	}
	_, err := s.conn.Write(b)
	return err
}

// writeInsideUnlockedBranch: the branch unlocks first, then writes.
func (s *server) writeInsideUnlockedBranch(b []byte, flush bool) error {
	s.mu.Lock()
	if flush {
		s.mu.Unlock()
		_, err := s.conn.Write(b)
		return err
	}
	s.mu.Unlock()
	return nil
}

// goroutineEscapes: the spawned body runs without the spawner's lock.
func (s *server) goroutineEscapes(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_, _ = s.conn.Write(b)
	}()
}

// justified ignore: suppressed.
func (s *server) sessionLockSend() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//faustlint:ignore lockheldio session lock intentionally spans the protocol round
	return s.link.Send(2)
}

// unjustified ignore: NOT honored, and called out.
func (s *server) unjustifiedIgnore() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//faustlint:ignore lockheldio
	return s.link.Send(3) // want `missing a justification — not honored`
}
