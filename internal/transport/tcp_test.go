package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"faust/internal/wire"
)

func startTCP(t *testing.T, core ServerCore, opts ...TCPOption) (*TCPServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := ServeTCP(ln, core, opts...)
	t.Cleanup(srv.Stop)
	return srv, ln.Addr().String()
}

func TestTCPRoundTrip(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer link.Close()
	if err := link.Send(&wire.Submit{T: 9}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, err := link.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got := m.(*wire.Reply).C; got != 9 {
		t.Fatalf("reply.C = %d, want 9", got)
	}
}

func TestTCPFIFOPerClient(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	link, err := DialTCP(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	for i := 0; i < 50; i++ {
		if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		m, err := link.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Reply).C; got != i {
			t.Fatalf("reply %d out of order: %d", i, got)
		}
	}
}

func TestTCPMultipleClients(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			link, err := DialTCP(addr, c)
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer link.Close()
			for i := 0; i < 20; i++ {
				if err := link.Send(&wire.Submit{T: int64(i)}); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				m, err := link.Recv()
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if got := m.(*wire.Reply).C; got != i {
					t.Errorf("client %d reply %d: got %d", c, i, got)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestTCPCommitDelivered(t *testing.T) {
	core := &echoCore{}
	_, addr := startTCP(t, core)
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	for i := 0; i < 5; i++ {
		if err := link.Send(&wire.Commit{}); err != nil {
			t.Fatal(err)
		}
	}
	_ = link.Send(&wire.Submit{T: 1})
	if _, err := link.Recv(); err != nil {
		t.Fatal(err)
	}
	core.mu.Lock()
	defer core.mu.Unlock()
	if len(core.commits) != 5 {
		t.Fatalf("commits = %d, want 5", len(core.commits))
	}
}

func TestTCPRecvFailsAfterStop(t *testing.T) {
	core := &echoCore{}
	srv, addr := startTCP(t, core)
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	done := make(chan error, 1)
	go func() {
		_, err := link.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv succeeded after server stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestTCPDialUnreachable(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1", 0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// sizedEchoCore exposes a client-group size, enabling the transport's
// handshake ID validation.
type sizedEchoCore struct {
	echoCore
	n int
}

func (c *sizedEchoCore) N() int { return c.n }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestTCPStopHalfOpenConn is the regression test for the shutdown hang: a
// connection that never completes the handshake used to block Stop forever
// (serveConn sat in readFrame, the conn was in no registry, wg.Wait
// deadlocked). Pre-handshake connections are now tracked and closed.
func TestTCPStopHalfOpenConn(t *testing.T) {
	srv, addr := startTCP(t, &echoCore{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Give the server time to accept the conn so it is truly half-open
	// server-side (accepted, no hello) when Stop runs.
	time.Sleep(30 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		srv.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on a half-open connection")
	}
}

// TestTCPHandshakeDeadline verifies that a connection which never sends a
// hello is closed by the handshake deadline even without Stop.
func TestTCPHandshakeDeadline(t *testing.T) {
	_, addr := startTCP(t, &echoCore{}, WithHandshakeTimeout(50*time.Millisecond))
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server kept a hello-less connection past the handshake deadline")
	}
}

// TestTCPConnCleanup is the regression test for the connection leak: dead
// connections used to stay in the registry forever.
func TestTCPConnCleanup(t *testing.T) {
	srv, addr := startTCP(t, &echoCore{})
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip to guarantee the handshake registered the conn.
	if err := link.Send(&wire.Submit{T: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := srv.ActiveConns(); got != 1 {
		t.Fatalf("ActiveConns = %d, want 1", got)
	}
	_ = link.Close()
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveConns() == 0 },
		"closed connection never left the registry")
}

// TestTCPDuplicateHandshake: a second handshake for the same ID replaces
// (and closes) the first connection, and the first conn's teardown must not
// evict the second from the registry.
func TestTCPDuplicateHandshake(t *testing.T) {
	srv, addr := startTCP(t, &echoCore{})
	link1, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link1.Close()
	if err := link1.Send(&wire.Submit{T: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := link1.Recv(); err != nil {
		t.Fatal(err)
	}
	link2, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link2.Close()
	if err := link2.Send(&wire.Submit{T: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := link2.Recv(); err != nil {
		t.Fatal(err)
	}
	// The first link was closed server-side; once its serveConn exits, the
	// registry must still hold exactly the second connection.
	if _, err := link1.Recv(); err == nil {
		t.Fatal("first connection still alive after duplicate handshake")
	}
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveConns() == 1 },
		"registry does not hold exactly the replacement connection")
	if err := link2.Send(&wire.Submit{T: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := link2.Recv(); err != nil {
		t.Fatalf("replacement connection broken: %v", err)
	}
}

// TestTCPOutOfRangeID: IDs outside [0, core.N()) must never occupy a
// registry entry (the unbounded-map memory-exhaustion vector).
func TestTCPOutOfRangeID(t *testing.T) {
	srv, addr := startTCP(t, &sizedEchoCore{n: 2})

	// Legacy handshake: no ack; the server just closes the conn.
	link, err := DialTCP(addr, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	if _, err := link.Recv(); err == nil {
		t.Fatal("server accepted out-of-range legacy id 7")
	}
	if got := srv.ActiveConns(); got != 0 {
		t.Fatalf("ActiveConns = %d after rejected handshake, want 0", got)
	}

	// v2 handshake: rejected in the ack, so Dial itself fails.
	if _, err := DialTCPShard(addr, DefaultShard, 7); err == nil {
		t.Fatal("DialTCPShard accepted out-of-range id 7")
	}
	// In-range v2 dial works against the same server.
	ok, err := DialTCPShard(addr, DefaultShard, 1)
	if err != nil {
		t.Fatalf("in-range v2 dial: %v", err)
	}
	defer ok.Close()
	if err := ok.Send(&wire.Submit{T: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Recv(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPUnknownShardRejected: the v2 ack carries the resolver's error.
func TestTCPUnknownShardRejected(t *testing.T) {
	_, addr := startTCP(t, &echoCore{})
	if _, err := DialTCPShard(addr, "no-such-shard", 0); err == nil {
		t.Fatal("dial to unknown shard succeeded")
	}
}

// pushCore records the attached pusher so tests can push from arbitrary
// goroutines, emulating cores with server-initiated messages.
type pushCore struct {
	echoCore
	push func(to int, m wire.Message) error
}

func (c *pushCore) HandleMessage(from int, m wire.Message) {}
func (c *pushCore) AttachPusher(push func(to int, m wire.Message) error) {
	c.push = push
}

var _ GenericCore = (*pushCore)(nil)

// TestTCPConcurrentPushIntegrity is the regression test for frame
// corruption: concurrent pushTo calls used to issue header and payload as
// separate unsynchronized writes, interleaving bytes on the stream. Every
// frame pushed from many goroutines must decode on the client side.
func TestTCPConcurrentPushIntegrity(t *testing.T) {
	core := &pushCore{}
	_, addr := startTCP(t, core) // ServeTCP attaches the pusher before returning
	link, err := DialTCP(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	// Round trip so the connection is registered before the hammering.
	if err := link.Send(&wire.Submit{T: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Recv(); err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Varying payload sizes stress partial-write interleaving.
				m := &wire.Reply{
					C:    g*perG + i,
					CVer: wire.ZeroSignedVersion(1),
					P:    [][]byte{make([]byte, (g*31+i)%257)},
				}
				if err := core.push(0, m); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(g)
	}

	seen := make(map[int]bool)
	for k := 0; k < goroutines*perG; k++ {
		m, err := link.Recv()
		if err != nil {
			t.Fatalf("frame %d corrupted: %v", k, err)
		}
		reply, ok := m.(*wire.Reply)
		if !ok {
			t.Fatalf("frame %d decoded as %T", k, m)
		}
		if seen[reply.C] {
			t.Fatalf("duplicate frame %d", reply.C)
		}
		seen[reply.C] = true
	}
	wg.Wait()
}

// TestTCPShardIsolationAndParallelDispatch runs two shards on one
// listener: both host a client with the same ID, yet their submissions
// reach distinct cores.
func TestTCPShardedRouting(t *testing.T) {
	coreA, coreB := &echoCore{}, &echoCore{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCPSharded(ln, StaticShards(map[string]ServerCore{"a": coreA, "b": coreB}))
	t.Cleanup(srv.Stop)

	linkA, err := DialTCPShard(ln.Addr().String(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer linkA.Close()
	linkB, err := DialTCPShard(ln.Addr().String(), "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer linkB.Close()

	for i := 0; i < 10; i++ {
		if err := linkA.Send(&wire.Submit{T: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := linkB.Send(&wire.Submit{T: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := linkA.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Reply).C; got != i {
			t.Fatalf("shard a reply %d: got %d", i, got)
		}
		m, err = linkB.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Reply).C; got != 100+i {
			t.Fatalf("shard b reply %d: got %d", i, got)
		}
	}
	coreA.mu.Lock()
	nA := len(coreA.submits)
	coreA.mu.Unlock()
	coreB.mu.Lock()
	nB := len(coreB.submits)
	coreB.mu.Unlock()
	if nA != 10 || nB != 10 {
		t.Fatalf("submit counts = %d/%d, want 10/10", nA, nB)
	}
}
