package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"faust/internal/crypto"
)

// The directory tree: a Merkle B+-tree of content-addressed nodes.
//
// Every node — leaf or interior — encodes to its own blob and is
// addressed by the hash of that encoding; an interior node holds its
// children's hashes, so the root node's content hash commits the entire
// namespace exactly like a classic Merkle root. The owner keeps its tree
// in memory as linked nodes; readers hold none of it and fetch only the
// nodes a lookup traverses, hash-checking each against the reference
// that named it (the root record for the root, the parent node for
// everything below). A mutation copies the root-to-leaf path it touches
// (copy-on-write) and re-uploads just those nodes: O(log n) small blobs
// where the flat directory re-uploaded all n entries.
//
// Invariants, enforced on decode and re-checked during traversal:
//
//   - leaf entries and interior separator keys are strictly increasing,
//     so an encoding is canonical for its content;
//   - every leaf sits at the same depth (splits add siblings, the root
//     grows/collapses by whole levels);
//   - each interior child reference carries the child subtree's minimum
//     key, entry count and byte total, and the fetched child must match
//     all three — so the totals in the root record are pinned,
//     transitively, by the root hash alone.
//
// Nodes are immutable once built: tree ops never modify a node in
// place, which is what makes rollback O(1) (keep the old root pointer)
// and lets concurrent readers walk an old root while a writer commits.

const (
	leafMagic     = "FKVL1"
	interiorMagic = "FKVI1"

	// DefaultLeafFanout and DefaultInteriorFanout size tree nodes: a
	// leaf splits beyond DefaultLeafFanout entries, an interior node
	// beyond DefaultInteriorFanout children. 64-wide nodes keep a
	// 10k-key namespace three levels tall with ~3 KiB node blobs.
	DefaultLeafFanout     = 64
	DefaultInteriorFanout = 64
)

// nodeSplitBytes caps a node's encoded size independently of the fanout:
// a node that grows beyond it splits even when its entry count is under
// the fanout, so no node blob can approach the transport's blob limit.
// (A single entry — bounded by MaxKeyLen and maxChunksPerValue — always
// fits.) A var so tests can shrink it.
var nodeSplitBytes = 4 << 20

// childRef is an interior node's reference to one child subtree: the
// child's content hash plus the subtree facts the parent commits to.
type childRef struct {
	minKey string
	count  uint32 // entries in the subtree
	bytes  int64  // value bytes in the subtree
	hash   []byte // content hash of the child node; nil while dirty
	child  *node  // in-memory child; nil in decoded (reader-side) nodes
}

// node is one tree node. Exactly one of entries (leaf) or children
// (interior) is populated.
type node struct {
	leaf     bool
	entries  []entry
	children []childRef
	hash     []byte // content hash of the canonical encoding; nil while dirty
}

// count returns the number of entries in the subtree.
func (n *node) count() uint32 {
	if n.leaf {
		return uint32(len(n.entries))
	}
	var total uint32
	for i := range n.children {
		total += n.children[i].count
	}
	return total
}

// totalBytes returns the value bytes in the subtree.
func (n *node) totalBytes() int64 {
	if n.leaf {
		var total int64
		for i := range n.entries {
			total += n.entries[i].Size
		}
		return total
	}
	var total int64
	for i := range n.children {
		total += n.children[i].bytes
	}
	return total
}

// minKey returns the smallest key in the subtree. Valid only on
// non-empty nodes.
func (n *node) minKey() string {
	if n.leaf {
		return n.entries[0].Key
	}
	return n.children[0].minKey
}

// ref builds the parent-side reference for this node. The hash is
// carried over when the node is clean, left nil when dirty (commit fills
// it in bottom-up).
func (n *node) ref() childRef {
	return childRef{
		minKey: n.minKey(),
		count:  n.count(),
		bytes:  n.totalBytes(),
		hash:   n.hash,
		child:  n,
	}
}

// findEntry locates key in a leaf's entries: the index and whether it is
// present (absent keys return the insertion index).
func findEntry(entries []entry, key string) (int, bool) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Key >= key })
	return i, i < len(entries) && entries[i].Key == key
}

// childIndex picks the child subtree responsible for key: the last child
// whose minKey is <= key, or the leftmost when key sorts before
// everything (inserts there extend its range downward).
func childIndex(children []childRef, key string) int {
	i := sort.Search(len(children), func(i int) bool { return children[i].minKey > key })
	if i > 0 {
		i--
	}
	return i
}

// treeShape carries the configured fanouts through the recursive ops.
type treeShape struct {
	leafMax int
	intMax  int
}

// treePut inserts or replaces e in the tree rooted at root (nil = empty
// tree) and returns the new root. The old root and every node it
// reaches remain untouched.
func treePut(root *node, e entry, sh treeShape) *node {
	if root == nil {
		root = &node{leaf: true}
	}
	reps := putRec(root, e, sh)
	if len(reps) == 1 {
		return reps[0]
	}
	// The root split: grow the tree by one level.
	children := make([]childRef, len(reps))
	for i, r := range reps {
		children[i] = r.ref()
	}
	return &node{children: children}
}

// putRec inserts e into the subtree at n and returns the replacement
// node(s) — more than one when the updated node split. n is never
// modified.
func putRec(n *node, e entry, sh treeShape) []*node {
	if n.leaf {
		i, ok := findEntry(n.entries, e.Key)
		es := make([]entry, 0, len(n.entries)+1)
		es = append(es, n.entries[:i]...)
		es = append(es, e)
		if ok {
			es = append(es, n.entries[i+1:]...)
		} else {
			es = append(es, n.entries[i:]...)
		}
		return splitLeaf(&node{leaf: true, entries: es}, sh)
	}
	i := childIndex(n.children, e.Key)
	reps := putRec(n.children[i].child, e, sh)
	children := make([]childRef, 0, len(n.children)+len(reps)-1)
	children = append(children, n.children[:i]...)
	for _, r := range reps {
		children = append(children, r.ref())
	}
	children = append(children, n.children[i+1:]...)
	return splitInterior(&node{children: children}, sh)
}

// splitLeaf halves a leaf (recursively) until it satisfies both the
// fanout and the encoded-size cap.
func splitLeaf(n *node, sh treeShape) []*node {
	if len(n.entries) <= 1 ||
		(len(n.entries) <= sh.leafMax && encodedLeafSize(n.entries) <= nodeSplitBytes) {
		return []*node{n}
	}
	mid := len(n.entries) / 2
	left := &node{leaf: true, entries: n.entries[:mid:mid]}
	right := &node{leaf: true, entries: n.entries[mid:]}
	return append(splitLeaf(left, sh), splitLeaf(right, sh)...)
}

// splitInterior halves an interior node (recursively) until it satisfies
// the fanout and size caps.
func splitInterior(n *node, sh treeShape) []*node {
	if len(n.children) <= 1 ||
		(len(n.children) <= sh.intMax && encodedInteriorSize(n.children) <= nodeSplitBytes) {
		return []*node{n}
	}
	mid := len(n.children) / 2
	left := &node{children: n.children[:mid:mid]}
	right := &node{children: n.children[mid:]}
	return append(splitInterior(left, sh), splitInterior(right, sh)...)
}

// treeDelete removes key from the tree rooted at root and returns the
// new root (nil when the tree became empty) and whether the key existed.
// The old root remains untouched.
func treeDelete(root *node, key string, sh treeShape) (*node, bool) {
	if root == nil {
		return nil, false
	}
	rep, ok := deleteRec(root, key, sh)
	if !ok {
		return root, false
	}
	// Collapse trivial roots so the height shrinks as the tree empties.
	for rep != nil && !rep.leaf && len(rep.children) == 1 {
		rep = rep.children[0].child
	}
	return rep, true
}

// deleteRec removes key from the subtree at n, returning the replacement
// node (nil when the subtree became empty) and whether the key existed.
// n is never modified.
func deleteRec(n *node, key string, sh treeShape) (*node, bool) {
	if n.leaf {
		i, ok := findEntry(n.entries, key)
		if !ok {
			return n, false
		}
		if len(n.entries) == 1 {
			return nil, true
		}
		es := make([]entry, 0, len(n.entries)-1)
		es = append(es, n.entries[:i]...)
		es = append(es, n.entries[i+1:]...)
		return &node{leaf: true, entries: es}, true
	}
	i := childIndex(n.children, key)
	rep, ok := deleteRec(n.children[i].child, key, sh)
	if !ok {
		return n, false
	}
	children := make([]childRef, 0, len(n.children))
	children = append(children, n.children[:i]...)
	if rep != nil {
		children = append(children, rep.ref())
	}
	children = append(children, n.children[i+1:]...)
	if len(children) == 0 {
		return nil, true
	}
	children = mergeUnderfull(children, i, sh)
	return &node{children: children}, true
}

// mergeUnderfull repairs the child list after a delete at index i: when
// the touched child (or its survivor neighbor) fell below a quarter of
// the fanout and a neighbor can absorb it within the caps, the two merge
// into one node. Merging only ever combines same-level siblings, so all
// leaves stay at one depth.
func mergeUnderfull(children []childRef, i int, sh treeShape) []childRef {
	j := i
	if j >= len(children)-1 {
		j = len(children) - 2
	}
	if j < 0 {
		return children
	}
	a, b := children[j].child, children[j+1].child
	if a == nil || b == nil || a.leaf != b.leaf {
		return children
	}
	if a.leaf {
		if len(a.entries) >= sh.leafMax/4 && len(b.entries) >= sh.leafMax/4 {
			return children
		}
		es := make([]entry, 0, len(a.entries)+len(b.entries))
		es = append(es, a.entries...)
		es = append(es, b.entries...)
		if len(es) > sh.leafMax || encodedLeafSize(es) > nodeSplitBytes {
			return children
		}
		merged := &node{leaf: true, entries: es}
		return spliceRefs(children, j, merged.ref())
	}
	if len(a.children) >= sh.intMax/4 && len(b.children) >= sh.intMax/4 {
		return children
	}
	cs := make([]childRef, 0, len(a.children)+len(b.children))
	cs = append(cs, a.children...)
	cs = append(cs, b.children...)
	if len(cs) > sh.intMax || encodedInteriorSize(cs) > nodeSplitBytes {
		return children
	}
	merged := &node{children: cs}
	return spliceRefs(children, j, merged.ref())
}

// spliceRefs replaces children[j] and children[j+1] with the single ref.
func spliceRefs(children []childRef, j int, ref childRef) []childRef {
	out := make([]childRef, 0, len(children)-1)
	out = append(out, children[:j]...)
	out = append(out, ref)
	out = append(out, children[j+2:]...)
	return out
}

// treeFind walks a fully loaded (owner-side) tree for key.
func treeFind(root *node, key string) (*entry, bool) {
	n := root
	for n != nil {
		if n.leaf {
			i, ok := findEntry(n.entries, key)
			if !ok {
				return nil, false
			}
			return &n.entries[i], true
		}
		if key < n.children[0].minKey {
			return nil, false
		}
		n = n.children[childIndex(n.children, key)].child
	}
	return nil, false
}

// treeKeys collects the keys of a fully loaded tree in sorted order.
func treeKeys(root *node, out []string) []string {
	if root == nil {
		return out
	}
	if root.leaf {
		for i := range root.entries {
			out = append(out, root.entries[i].Key)
		}
		return out
	}
	for i := range root.children {
		out = treeKeys(root.children[i].child, out)
	}
	return out
}

// treeHeight returns the number of levels of a fully loaded tree.
func treeHeight(root *node) uint32 {
	var h uint32
	for n := root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0].child
	}
	return h
}

// Node codec.

// encodedLeafSize is the exact encoded size of a leaf with these entries.
func encodedLeafSize(entries []entry) int {
	size := len(leafMagic) + 4
	for i := range entries {
		size += encodedEntrySize(&entries[i])
	}
	return size
}

// encodedInteriorSize is the exact encoded size of an interior node with
// these children.
func encodedInteriorSize(children []childRef) int {
	size := len(interiorMagic) + 4
	for i := range children {
		size += 4 + len(children[i].minKey) + 4 + 8 + crypto.HashSize
	}
	return size
}

// encodeNode renders a node's canonical blob. Interior children must
// have their hashes resolved (commit encodes bottom-up).
func encodeNode(n *node) []byte {
	var tmp [8]byte
	if n.leaf {
		buf := make([]byte, 0, encodedLeafSize(n.entries))
		buf = append(buf, leafMagic...)
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(n.entries)))
		buf = append(buf, tmp[:4]...)
		for i := range n.entries {
			buf = appendEntry(buf, &n.entries[i])
		}
		return buf
	}
	buf := make([]byte, 0, encodedInteriorSize(n.children))
	buf = append(buf, interiorMagic...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(n.children)))
	buf = append(buf, tmp[:4]...)
	for i := range n.children {
		c := &n.children[i]
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(c.minKey)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, c.minKey...)
		binary.BigEndian.PutUint32(tmp[:4], c.count)
		buf = append(buf, tmp[:4]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(c.bytes))
		buf = append(buf, tmp[:]...)
		buf = append(buf, c.hash...)
	}
	return buf
}

// decodeNode parses and validates a tree-node blob: canonical order
// (strictly increasing keys / separator keys), exact hash sizes, and
// per-entry shape constraints. Decoded nodes carry no child pointers;
// readers follow the hashes.
func decodeNode(data []byte) (*node, error) {
	if len(data) >= len(leafMagic) && string(data[:len(leafMagic)]) == leafMagic {
		r := &reader{data: data[len(leafMagic):]}
		cnt := r.u32()
		// An entry encodes to at least EncodedEntrySize(1, 0) bytes, so a
		// count the remaining data cannot possibly hold is rejected BEFORE
		// the allocation it would size — a tiny blob must not be able to
		// demand a huge slice.
		if r.err != nil || cnt > maxNodeEntries || int(cnt) > len(r.data)/EncodedEntrySize(1, 0) {
			return nil, fmt.Errorf("%w: leaf entry count", errCodec)
		}
		entries := make([]entry, 0, cnt)
		prev := ""
		for i := uint32(0); i < cnt; i++ {
			e, err := readEntry(r)
			if err != nil {
				return nil, err
			}
			if i > 0 && e.Key <= prev {
				return nil, fmt.Errorf("%w: leaf keys not strictly sorted", errCodec)
			}
			prev = e.Key
			entries = append(entries, e)
		}
		if len(r.data) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", errCodec, len(r.data))
		}
		return &node{leaf: true, entries: entries}, nil
	}
	if len(data) >= len(interiorMagic) && string(data[:len(interiorMagic)]) == interiorMagic {
		r := &reader{data: data[len(interiorMagic):]}
		cnt := r.u32()
		// Same anti-allocation bound as leaves: a child ref encodes to at
		// least 4+1+4+8+HashSize bytes.
		minRef := 4 + 1 + 4 + 8 + crypto.HashSize
		if r.err != nil || cnt == 0 || cnt > maxNodeEntries || int(cnt) > len(r.data)/minRef {
			return nil, fmt.Errorf("%w: interior child count", errCodec)
		}
		children := make([]childRef, 0, cnt)
		prev := ""
		for i := uint32(0); i < cnt; i++ {
			klen := r.u32()
			if r.err != nil || klen == 0 || klen > MaxKeyLen {
				return nil, fmt.Errorf("%w: separator key length", errCodec)
			}
			minKey := string(r.take(int(klen)))
			count := r.u32()
			nbytes := r.i64()
			hash := r.take(crypto.HashSize)
			if r.err != nil {
				return nil, r.err
			}
			if count == 0 || nbytes < 0 {
				return nil, fmt.Errorf("%w: child subtree counts", errCodec)
			}
			if i > 0 && minKey <= prev {
				return nil, fmt.Errorf("%w: separator keys not strictly sorted", errCodec)
			}
			prev = minKey
			children = append(children, childRef{minKey: minKey, count: count, bytes: nbytes, hash: hash})
		}
		if len(r.data) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", errCodec, len(r.data))
		}
		return &node{children: children}, nil
	}
	return nil, fmt.Errorf("%w: bad tree node magic", errCodec)
}

// checkRef validates a fetched node against the reference that named it:
// the parent's (or root record's) declared minimum key and subtree
// totals must match what the node actually contains. The hash itself was
// already checked against the blob, so together these pin every fact a
// reader relies on to the register-committed root hash.
func checkRef(n *node, minKey string, count uint32, nbytes int64) error {
	if n.leaf && len(n.entries) == 0 {
		return fmt.Errorf("kv: empty tree node on a committed path")
	}
	if n.minKey() != minKey {
		return fmt.Errorf("kv: tree node minimum key mismatch")
	}
	if n.count() != count || n.totalBytes() != nbytes {
		return fmt.Errorf("kv: tree metadata mismatch")
	}
	return nil
}

// treeCheck verifies a fully loaded subtree's structural invariants.
// Used by tests and the owner's bootstrap as a defense-in-depth check;
// returns the subtree height.
func treeCheck(n *node, sh treeShape) (uint32, error) {
	if n.leaf {
		for i := 1; i < len(n.entries); i++ {
			if n.entries[i].Key <= n.entries[i-1].Key {
				return 0, fmt.Errorf("kv: leaf keys out of order")
			}
		}
		return 1, nil
	}
	if len(n.children) == 0 {
		return 0, fmt.Errorf("kv: interior node without children")
	}
	var h uint32
	for i := range n.children {
		c := &n.children[i]
		if c.child == nil {
			return 0, fmt.Errorf("kv: unloaded child in owner tree")
		}
		if err := checkRef(c.child, c.minKey, c.count, c.bytes); err != nil {
			return 0, err
		}
		if i > 0 && c.minKey <= n.children[i-1].minKey {
			return 0, fmt.Errorf("kv: separator keys out of order")
		}
		ch, err := treeCheck(c.child, sh)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			h = ch
		} else if ch != h {
			return 0, fmt.Errorf("kv: leaves at unequal depths")
		}
		if c.child.hash != nil && c.hash != nil && !bytes.Equal(c.child.hash, c.hash) {
			return 0, fmt.Errorf("kv: child hash reference out of sync")
		}
	}
	return h + 1, nil
}
