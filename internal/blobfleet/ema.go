package blobfleet

import (
	"fmt"
	"sync"

	"faust/internal/obs"
)

// Aliveness defaults (the wal-g shape: an exponential moving average fed
// by every operation result, with hysteresis between the dead and alive
// thresholds so a backend doesn't flap in and out of rotation on every
// lost packet).
const (
	DefaultAlpha      = 0.3  // weight of the newest observation
	DefaultDeadBelow  = 0.25 // leave the rotation below this score
	DefaultAliveAbove = 0.75 // rejoin the rotation above this score
)

// backendState is one fleet member plus its aliveness bookkeeping.
//
// The score is an EMA over operation outcomes (1 success, 0 failure):
//
//	score <- alpha*outcome + (1-alpha)*score
//
// starting at 1 (innocent until proven flaky). The dead flag follows the
// score with hysteresis: it trips below deadBelow and clears above
// aliveAbove, so a backend needs a streak of failures to leave the
// rotation and a streak of successes (or one explicit probe answer,
// which resurrects it outright) to rejoin. State transitions land in the
// protocol event log as degraded-mode entries.
type backendState struct {
	Backend
	idx int

	// Per-backend span names, concatenated once at fleet construction so
	// the trace record path touches only static strings.
	putSpan, getSpan string

	mu    sync.Mutex
	score float64
	dead  bool

	alivenessG *obs.Gauge   // score scaled to 0-1000
	upG        *obs.Gauge   // 1 alive, 0 dead
	errsC      *obs.Counter // failed ops after retries
}

// BackendStatus is one backend's externally visible aliveness.
type BackendStatus struct {
	Name  string
	Alive bool
	Score float64
}

// observe feeds one operation outcome into the EMA and returns the state
// transition it caused: +1 resurrected, -1 died, 0 none.
func (b *backendState) observe(f *Failover, ok bool) int {
	x := 0.0
	if ok {
		x = 1.0
	}
	b.mu.Lock()
	b.score = f.opts.Alpha*x + (1-f.opts.Alpha)*b.score
	transition := 0
	if !b.dead && b.score < f.opts.DeadBelow {
		b.dead = true
		transition = -1
	} else if b.dead && b.score > f.opts.AliveAbove {
		b.dead = false
		transition = +1
	}
	score, dead := b.score, b.dead
	b.mu.Unlock()

	b.alivenessG.Set(int64(score * 1000))
	if dead {
		b.upG.Set(0)
	} else {
		b.upG.Set(1)
	}
	return transition
}

// resurrect puts a dead backend straight back into rotation (one
// successful probe is proof enough that it answers again; live traffic
// keeps its score honest from there). Returns true if it was dead.
func (b *backendState) resurrect() bool {
	b.mu.Lock()
	was := b.dead
	b.dead = false
	if b.score < DefaultAliveAbove {
		b.score = 1.0
	}
	score := b.score
	b.mu.Unlock()
	b.alivenessG.Set(int64(score * 1000))
	b.upG.Set(1)
	return was
}

// isDead reports rotation membership.
func (b *backendState) isDead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

// status snapshots the externally visible state.
func (b *backendState) status() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{Name: b.Name, Alive: !b.dead, Score: b.score}
}

func (b *backendState) String() string {
	st := b.status()
	return fmt.Sprintf("%s(score=%.2f,alive=%v)", st.Name, st.Score, st.Alive)
}
