package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"testing"
	"time"

	"faust/internal/crypto"
)

// flakyBlobChannel is a BlobChannel over a shared MemBlobs that becomes
// sticky-poisoned (like tcpBlobChannel) after `failAfter` operations.
type flakyBlobChannel struct {
	mu        sync.Mutex
	store     *MemBlobs
	failAfter int // -1 = never
	ops       int
	dead      bool
}

func (c *flakyBlobChannel) gate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return fmt.Errorf("%w: connection reset", ErrBlobChannelBroken)
	}
	if c.failAfter >= 0 && c.ops >= c.failAfter {
		c.dead = true
		return fmt.Errorf("%w: connection reset", ErrBlobChannelBroken)
	}
	c.ops++
	return nil
}

func (c *flakyBlobChannel) PutBlob(_ context.Context, hash, data []byte) error {
	if err := c.gate(); err != nil {
		return err
	}
	return c.store.PutBlob(hash, data)
}

func (c *flakyBlobChannel) GetBlob(_ context.Context, hash []byte) ([]byte, error) {
	if err := c.gate(); err != nil {
		return nil, err
	}
	return c.store.GetBlob(hash)
}

func (c *flakyBlobChannel) Close() error { return nil }

func TestRedialSurvivesConnectionDrops(t *testing.T) {
	store := NewMemBlobs()
	dials := 0
	r := NewRedialBlobChannel(func() (BlobChannel, error) {
		dials++
		// Every connection dies after 3 operations.
		return &flakyBlobChannel{store: store, failAfter: 3}, nil
	}, RedialOptions{Sleep: func(time.Duration) {}})
	defer r.Close()

	// 20 operations across connections that die every 3 ops: the redial
	// wrapper must keep the session alive throughout.
	var hashes [][]byte
	for i := 0; i < 10; i++ {
		data := []byte(fmt.Sprintf("blob %d", i))
		hash := crypto.Hash(data)
		if err := r.PutBlob(context.Background(), hash, data); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		hashes = append(hashes, hash)
	}
	for i, hash := range hashes {
		got, err := r.GetBlob(context.Background(), hash)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, []byte(fmt.Sprintf("blob %d", i))) {
			t.Fatalf("get %d returned wrong data", i)
		}
	}
	if dials < 2 {
		t.Fatalf("only %d dials — the flaky channel never forced a redial", dials)
	}
}

func TestRedialBoundedAttempts(t *testing.T) {
	dials := 0
	r := NewRedialBlobChannel(func() (BlobChannel, error) {
		dials++
		// Dead on arrival, every time.
		return &flakyBlobChannel{store: NewMemBlobs(), failAfter: 0}, nil
	}, RedialOptions{Attempts: 2, Sleep: func(time.Duration) {}})
	defer r.Close()

	err := r.PutBlob(context.Background(), crypto.Hash([]byte("x")), []byte("x"))
	if err == nil {
		t.Fatal("put on a permanently dead channel succeeded")
	}
	if !errors.Is(err, ErrBlobChannelBroken) {
		t.Fatalf("final error %v does not wrap ErrBlobChannelBroken", err)
	}
	if dials != 3 { // initial + 2 redials
		t.Fatalf("dials = %d, want 3 (1 initial + 2 redials)", dials)
	}
}

func TestRedialPassesServerAnswersThrough(t *testing.T) {
	dials := 0
	r := NewRedialBlobChannel(func() (BlobChannel, error) {
		dials++
		return &flakyBlobChannel{store: NewMemBlobs(), failAfter: -1}, nil
	}, RedialOptions{Sleep: func(time.Duration) {}})
	defer r.Close()

	// A missing blob is a server-side answer: no redial may happen.
	if _, err := r.GetBlob(context.Background(), crypto.Hash([]byte("absent"))); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing blob: %v, want fs.ErrNotExist", err)
	}
	if dials != 1 {
		t.Fatalf("dials = %d after a not-found — redial fired on a server answer", dials)
	}
}

func TestRedialFailedDialRetries(t *testing.T) {
	store := NewMemBlobs()
	dials := 0
	r := NewRedialBlobChannel(func() (BlobChannel, error) {
		dials++
		if dials < 3 {
			return nil, errors.New("connection refused")
		}
		return &flakyBlobChannel{store: store, failAfter: -1}, nil
	}, RedialOptions{Sleep: func(time.Duration) {}})
	defer r.Close()

	data := []byte("eventually")
	if err := r.PutBlob(context.Background(), crypto.Hash(data), data); err != nil {
		t.Fatalf("put after two refused dials: %v", err)
	}
}

func TestRedialClosed(t *testing.T) {
	r := NewRedialBlobChannel(func() (BlobChannel, error) {
		return &flakyBlobChannel{store: NewMemBlobs(), failAfter: -1}, nil
	}, RedialOptions{Sleep: func(time.Duration) {}})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.PutBlob(context.Background(), crypto.Hash([]byte("x")), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v, want ErrClosed", err)
	}
}
