// Package workload generates deterministic, seeded operation streams for
// tests and benchmarks: read/write mixes, Zipf-skewed register selection
// and sized unique values. Written values are globally unique, which the
// consistency checkers rely on (Section 2 of the paper makes the same
// assumption).
package workload

import (
	"fmt"
	"math/rand"
)

// Op is one generated operation.
type Op struct {
	Client  int
	IsWrite bool
	Reg     int    // register to read; writes always target the client's own
	Value   []byte // written value; nil for reads
}

// Config parameterizes a workload.
type Config struct {
	// ReadFraction is the probability of generating a read (0..1).
	ReadFraction float64
	// ValueSize is the size in bytes of written values (minimum large
	// enough for the unique prefix; small values are padded).
	ValueSize int
	// ZipfS skews register selection for reads; 0 selects uniformly.
	// Values > 1 make low-index registers proportionally hotter.
	ZipfS float64
	// Seed makes the workload reproducible.
	Seed int64
}

// DefaultConfig is a 50/50 mix of reads and writes over uniformly chosen
// registers with 64-byte values.
func DefaultConfig() Config {
	return Config{ReadFraction: 0.5, ValueSize: 64, Seed: 1}
}

// Workload owns one deterministic stream per client.
type Workload struct {
	n       int
	cfg     Config
	streams []*Stream
}

// New creates a workload for n clients.
func New(n int, cfg Config) *Workload {
	w := &Workload{n: n, cfg: cfg, streams: make([]*Stream, n)}
	for i := 0; i < n; i++ {
		w.streams[i] = newStream(i, n, cfg)
	}
	return w
}

// Stream returns client i's operation stream. Streams are independent:
// each may be driven from its own goroutine.
func (w *Workload) Stream(i int) *Stream { return w.streams[i] }

// Stream generates operations for one client.
type Stream struct {
	client int
	n      int
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	seq    int
}

func newStream(client, n int, cfg Config) *Stream {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(client)*7919))
	s := &Stream{client: client, n: n, cfg: cfg, rng: rng}
	if cfg.ZipfS > 1 {
		s.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(n-1))
	}
	return s
}

// Next produces the client's next operation.
func (s *Stream) Next() Op {
	if s.rng.Float64() < s.cfg.ReadFraction {
		return Op{Client: s.client, Reg: s.pickRegister()}
	}
	s.seq++
	return Op{
		Client:  s.client,
		IsWrite: true,
		Reg:     s.client,
		Value:   s.value(),
	}
}

// NextWrite forces a write operation.
func (s *Stream) NextWrite() Op {
	s.seq++
	return Op{Client: s.client, IsWrite: true, Reg: s.client, Value: s.value()}
}

// NextRead forces a read operation.
func (s *Stream) NextRead() Op {
	return Op{Client: s.client, Reg: s.pickRegister()}
}

func (s *Stream) pickRegister() int {
	if s.zipf != nil {
		return int(s.zipf.Uint64())
	}
	return s.rng.Intn(s.n)
}

// value builds a unique value of the configured size. The unique prefix
// "c<client>-<seq>|" guarantees global uniqueness; the rest is padding.
func (s *Stream) value() []byte {
	prefix := fmt.Sprintf("c%d-%d|", s.client, s.seq)
	size := s.cfg.ValueSize
	if size < len(prefix) {
		size = len(prefix)
	}
	out := make([]byte, size)
	copy(out, prefix)
	for i := len(prefix); i < size; i++ {
		out[i] = byte('a' + (i % 26))
	}
	return out
}

// KV workload: operation streams against the key-value layer (package
// kv) rather than raw registers. Each client owns a namespace of
// cfg.Keys keys; the mix covers puts, gets of the own namespace,
// authenticated cross-client gets and deletes. Written values carry the
// same globally unique prefix as register workloads.

// KVOpKind tags a generated KV operation.
type KVOpKind uint8

// KV operation kinds. Values start at one so the zero value is invalid.
const (
	KVGet KVOpKind = iota + 1
	KVPut
	KVDelete
	KVGetFrom
)

// String names the kind.
func (k KVOpKind) String() string {
	switch k {
	case KVGet:
		return "GET"
	case KVPut:
		return "PUT"
	case KVDelete:
		return "DELETE"
	case KVGetFrom:
		return "GETFROM"
	default:
		return fmt.Sprintf("KVOpKind(%d)", uint8(k))
	}
}

// KVOp is one generated key-value operation.
type KVOp struct {
	Client int
	Kind   KVOpKind
	Owner  int // namespace owner; == Client except for KVGetFrom
	Key    string
	Value  []byte // nil unless Kind == KVPut
}

// KVConfig parameterizes a KV workload.
type KVConfig struct {
	// Keys is the number of distinct keys per client namespace.
	Keys int
	// ValueSize is the size in bytes of put values.
	ValueSize int
	// ReadFraction is the probability of a get (0..1).
	ReadFraction float64
	// CrossReadFraction is the probability that a get targets another
	// client's namespace (KVGetFrom) instead of the own one.
	CrossReadFraction float64
	// DeleteFraction is the probability of a delete (carved out of the
	// non-read remainder).
	DeleteFraction float64
	// ZipfS skews key selection; 0 selects uniformly, values > 1 make
	// low-index keys proportionally hotter.
	ZipfS float64
	// Seed makes the workload reproducible.
	Seed int64
}

// DefaultKVConfig is a 70% read mix over 64 keys with 256-byte values,
// a quarter of reads crossing namespaces and rare deletes.
func DefaultKVConfig() KVConfig {
	return KVConfig{
		Keys:              64,
		ValueSize:         256,
		ReadFraction:      0.7,
		CrossReadFraction: 0.25,
		DeleteFraction:    0.05,
		Seed:              1,
	}
}

// KVWorkload owns one deterministic KV stream per client.
type KVWorkload struct {
	n       int
	streams []*KVStream
}

// NewKV creates a KV workload for n clients.
func NewKV(n int, cfg KVConfig) *KVWorkload {
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	w := &KVWorkload{n: n, streams: make([]*KVStream, n)}
	for i := 0; i < n; i++ {
		w.streams[i] = newKVStream(i, n, cfg)
	}
	return w
}

// Stream returns client i's KV stream. Streams are independent; each may
// be driven from its own goroutine.
func (w *KVWorkload) Stream(i int) *KVStream { return w.streams[i] }

// KVStream generates KV operations for one client.
type KVStream struct {
	client int
	n      int
	cfg    KVConfig
	rng    *rand.Rand
	zipf   *rand.Zipf
	seq    int
}

func newKVStream(client, n int, cfg KVConfig) *KVStream {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(client)*104729))
	s := &KVStream{client: client, n: n, cfg: cfg, rng: rng}
	if cfg.ZipfS > 1 && cfg.Keys > 1 {
		s.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	return s
}

// Next produces the client's next KV operation.
func (s *KVStream) Next() KVOp {
	r := s.rng.Float64()
	key := s.key()
	switch {
	case r < s.cfg.ReadFraction:
		if s.n > 1 && s.rng.Float64() < s.cfg.CrossReadFraction {
			owner := s.rng.Intn(s.n - 1)
			if owner >= s.client {
				owner++
			}
			return KVOp{Client: s.client, Kind: KVGetFrom, Owner: owner, Key: key}
		}
		return KVOp{Client: s.client, Kind: KVGet, Owner: s.client, Key: key}
	case r < s.cfg.ReadFraction+s.cfg.DeleteFraction:
		return KVOp{Client: s.client, Kind: KVDelete, Owner: s.client, Key: key}
	default:
		return s.nextPut(key)
	}
}

// NextPut forces a put of the next unique value under a generated key.
func (s *KVStream) NextPut() KVOp { return s.nextPut(s.key()) }

func (s *KVStream) nextPut(key string) KVOp {
	s.seq++
	return KVOp{Client: s.client, Kind: KVPut, Owner: s.client, Key: key, Value: s.kvValue()}
}

// KeyName returns the canonical zero-padded key for index i. KV streams
// generate keys through it, and benchmarks/prefill helpers that address
// the same namespaces (faust-bench E18/E19, the kv benchmarks) share it
// so a prefilled key space and a generated stream line up exactly.
func KeyName(i int) string { return fmt.Sprintf("key-%06d", i) }

// key picks the target key, Zipf-skewed when configured. Keys are
// zero-padded so every namespace lists in deterministic order.
func (s *KVStream) key() string {
	var idx int
	if s.zipf != nil {
		idx = int(s.zipf.Uint64())
	} else {
		idx = s.rng.Intn(s.cfg.Keys)
	}
	return KeyName(idx)
}

// kvValue builds a globally unique value of the configured size.
func (s *KVStream) kvValue() []byte {
	prefix := fmt.Sprintf("c%d-%d|", s.client, s.seq)
	size := s.cfg.ValueSize
	if size < len(prefix) {
		size = len(prefix)
	}
	out := make([]byte, size)
	copy(out, prefix)
	for i := len(prefix); i < size; i++ {
		out[i] = byte('a' + (i % 26))
	}
	return out
}
