package wire

import (
	"math/rand"
	"testing"

	"faust/internal/version"
)

// TestDecodeNeverPanicsOnCorruption flips random bytes in valid encodings
// and truncates at random points: Decode must return an error or a
// message, never panic — the codec faces a Byzantine server.
func TestDecodeNeverPanicsOnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	rec := LSRecord{Seq: 1, Client: 0, Op: OpWrite, Reg: 0,
		ValueHash: []byte{1}, ChainHash: []byte{2}, Sig: []byte{3}}
	samples := []Message{
		&Submit{T: 1, Inv: Invocation{Client: 0, Op: OpWrite, Reg: 0, SubmitSig: []byte("s")},
			Value: []byte("v"), DataSig: []byte("d")},
		&Submit{T: 2, Inv: Invocation{Client: 1, Op: OpRead, Reg: 0, SubmitSig: []byte("s")},
			Piggyback: &Commit{Ver: version.New(2), CommitSig: []byte("c"), ProofSig: []byte("p")}},
		&Reply{IsRead: true, C: 0, CVer: ZeroSignedVersion(2), JVer: ZeroSignedVersion(2),
			Mem: MemEntry{T: 1, Value: []byte("v"), DataSig: []byte("d")},
			L:   []Invocation{{Client: 1, Op: OpRead, Reg: 0, SubmitSig: []byte("s")}},
			P:   [][]byte{nil, []byte("p")}},
		&Commit{Ver: version.New(3), CommitSig: []byte("c"), ProofSig: []byte("p")},
		&Probe{From: 1},
		&VersionMsg{From: 0, SV: ZeroSignedVersion(2)},
		&Failure{From: 1, HasEvidence: true, EvidenceA: ZeroSignedVersion(2), EvidenceB: ZeroSignedVersion(2)},
		&LSSubmit{Op: OpWrite, Reg: 0, Value: []byte("v"), HaveSeq: 3},
		&LSReply{Records: []LSRecord{rec}, Value: []byte("v")},
		&LSCommit{Record: rec},
	}
	for _, m := range samples {
		enc := Encode(m)
		// Round-trip sanity.
		if _, err := Decode(enc); err != nil {
			t.Fatalf("%T: valid encoding rejected: %v", m, err)
		}
		// Byte flips.
		for trial := 0; trial < 200; trial++ {
			corrupted := append([]byte(nil), enc...)
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
			_, _ = Decode(corrupted) // must not panic
		}
		// Truncations.
		for cut := 0; cut < len(enc); cut++ {
			_, _ = Decode(enc[:cut]) // must not panic
		}
		// Random garbage of the same length.
		for trial := 0; trial < 50; trial++ {
			garbage := make([]byte, len(enc))
			rng.Read(garbage)
			garbage[0] = enc[0] // keep a valid kind tag
			_, _ = Decode(garbage)
		}
	}
}

// TestDecodeLSTruncations exercises every truncation point of the
// lock-step messages (the LS decode paths).
func TestDecodeLSTruncations(t *testing.T) {
	rec := LSRecord{Seq: 9, Client: 1, Op: OpRead, Reg: 1,
		ValueHash: nil, ChainHash: []byte{7, 7}, Sig: []byte{8}}
	for _, m := range []Message{
		&LSSubmit{Op: OpRead, Reg: 1, HaveSeq: 2},
		&LSReply{Records: []LSRecord{rec, rec}, Value: nil},
		&LSCommit{Record: rec},
	} {
		enc := Encode(m)
		for cut := 1; cut < len(enc); cut++ {
			if _, err := Decode(enc[:cut]); err == nil {
				t.Fatalf("%T: truncation at %d accepted", m, cut)
			}
		}
	}
}

func TestLSRecordClone(t *testing.T) {
	rec := LSRecord{Seq: 1, Client: 0, Op: OpWrite, Reg: 0,
		ValueHash: []byte{1}, ChainHash: []byte{2}, Sig: []byte{3}}
	c := rec.Clone()
	c.ValueHash[0] = 9
	c.ChainHash[0] = 9
	c.Sig[0] = 9
	if rec.ValueHash[0] != 1 || rec.ChainHash[0] != 2 || rec.Sig[0] != 3 {
		t.Fatal("Clone shares memory")
	}
	nilRec := LSRecord{Seq: 2}
	if got := nilRec.Clone(); got.ValueHash != nil || got.ChainHash != nil || got.Sig != nil {
		t.Fatal("nil fields must stay nil")
	}
}

// TestDecodeRejectsHugeLSReply guards the allocation bound on the record
// vector.
func TestDecodeRejectsHugeLSReply(t *testing.T) {
	buf := []byte{byte(KindLSReply)}
	buf = appendU32(buf, 1<<30)
	if _, err := Decode(buf); err == nil {
		t.Fatal("huge record count accepted")
	}
}

func TestKindValuesDistinct(t *testing.T) {
	kinds := []Kind{KindSubmit, KindReply, KindCommit, KindProbe, KindVersion,
		KindFailure, KindLSSubmit, KindLSReply, KindLSCommit}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if k == 0 {
			t.Fatal("zero kind value")
		}
		if seen[k] {
			t.Fatalf("duplicate kind %d", k)
		}
		seen[k] = true
	}
}
