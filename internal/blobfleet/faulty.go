package blobfleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"faust/internal/transport"
)

// ErrInjected marks every failure manufactured by FaultyBlobs, so tests
// can tell injected faults from real backend errors.
var ErrInjected = errors.New("blobfleet: injected fault")

// FaultConfig describes the fault mix of a FaultyBlobs wrapper. All
// rates are probabilities in [0,1], drawn from one seeded source, so a
// given (seed, operation sequence) pair replays the same faults.
type FaultConfig struct {
	// Seed initializes the deterministic fault source (0 behaves like 1).
	Seed int64
	// ErrRate fails an operation outright with ErrInjected.
	ErrRate float64
	// Latency is added to every operation; Jitter adds a uniform random
	// extra on top.
	Latency time.Duration
	Jitter  time.Duration
	// HangRate blocks an operation until Revive is called or HangFor
	// elapses (default 1s), then fails it with ErrInjected — the
	// "backend stopped answering" failure mode, distinct from a fast
	// error.
	HangRate float64
	HangFor  time.Duration
	// ShortReadRate truncates a fetched payload — the classic partial
	// response a flaky object store returns.
	ShortReadRate float64
	// FlipRate flips one bit of a fetched payload — the byzantine
	// replica. Set to 1 for the tampered-replica ablation.
	FlipRate float64
}

// FaultCounts reports how many faults of each kind a wrapper injected.
type FaultCounts struct {
	Errors, Hangs, ShortReads, BitFlips, Delayed int64
}

// FaultyBlobs wraps a transport.BlobStore with deterministic seeded
// fault injection. It is safe for concurrent use; the fault source is
// shared and mutex-guarded so concurrent runs stay seeded (though their
// interleaving decides which op draws which fault). Kill and Revive
// flip the whole backend dead and back — the crash/recovery lever the
// E21 failover experiment pulls mid-workload.
type FaultyBlobs struct {
	name  string
	inner transport.BlobStore

	mu     sync.Mutex
	cfg    FaultConfig
	rng    *rand.Rand
	killed bool
	wake   chan struct{} // closed by Revive to release hanging ops

	sleep func(time.Duration) // test hook

	errors, hangs, shortReads, bitFlips, delayed atomic.Int64
}

var _ transport.BlobStore = (*FaultyBlobs)(nil)
var _ transport.BlobStoreCtx = (*FaultyBlobs)(nil)

// NewFaultyBlobs wraps inner with the given fault mix. The name labels
// injected-fault metrics and error messages.
func NewFaultyBlobs(name string, inner transport.BlobStore, cfg FaultConfig) *FaultyBlobs {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.HangFor <= 0 {
		cfg.HangFor = time.Second
	}
	return &FaultyBlobs{
		name:  name,
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		wake:  make(chan struct{}),
		sleep: time.Sleep,
	}
}

// SetConfig replaces the fault mix (the seeded source keeps its state,
// so the stream of faults stays deterministic across reconfigurations).
func (f *FaultyBlobs) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	if cfg.HangFor <= 0 {
		cfg.HangFor = time.Second
	}
	f.cfg = cfg
	f.mu.Unlock()
}

// Kill makes every operation fail immediately, simulating a crashed or
// unreachable backend. Idempotent.
func (f *FaultyBlobs) Kill() {
	f.mu.Lock()
	f.killed = true
	f.mu.Unlock()
}

// Revive brings a killed backend back and releases any hanging
// operations. Idempotent.
func (f *FaultyBlobs) Revive() {
	f.mu.Lock()
	f.killed = false
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

// Killed reports whether the backend is currently killed.
func (f *FaultyBlobs) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// Counts snapshots the injected-fault counters.
func (f *FaultyBlobs) Counts() FaultCounts {
	return FaultCounts{
		Errors:     f.errors.Load(),
		Hangs:      f.hangs.Load(),
		ShortReads: f.shortReads.Load(),
		BitFlips:   f.bitFlips.Load(),
		Delayed:    f.delayed.Load(),
	}
}

// draw rolls the pre-operation faults under the lock and returns what to
// do; the actual sleeping/blocking happens outside the lock.
func (f *FaultyBlobs) draw() (killed, failNow, hang bool, delay time.Duration, wake chan struct{}, hangFor time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return true, false, false, 0, nil, 0
	}
	cfg := f.cfg
	delay = cfg.Latency
	if cfg.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(cfg.Jitter) + 1))
	}
	if cfg.HangRate > 0 && f.rng.Float64() < cfg.HangRate {
		return false, false, true, delay, f.wake, cfg.HangFor
	}
	if cfg.ErrRate > 0 && f.rng.Float64() < cfg.ErrRate {
		return false, true, false, delay, nil, 0
	}
	return false, false, false, delay, nil, 0
}

// gate applies the pre-operation faults (kill, latency, hang, error).
func (f *FaultyBlobs) gate(op string) error {
	killed, failNow, hang, delay, wake, hangFor := f.draw()
	if killed {
		fmFaults["kill"].Inc()
		return fmt.Errorf("%w: backend %s is killed (%s)", ErrInjected, f.name, op)
	}
	if delay > 0 {
		f.delayed.Add(1)
		fmFaults["latency"].Inc()
		f.sleep(delay)
	}
	if hang {
		f.hangs.Add(1)
		fmFaults["hang"].Inc()
		t := time.NewTimer(hangFor)
		defer t.Stop()
		select {
		case <-wake:
		case <-t.C:
		}
		return fmt.Errorf("%w: backend %s hung (%s)", ErrInjected, f.name, op)
	}
	if failNow {
		f.errors.Add(1)
		fmFaults["error"].Inc()
		return fmt.Errorf("%w: backend %s errored (%s)", ErrInjected, f.name, op)
	}
	return nil
}

// PutBlob implements transport.BlobStore.
func (f *FaultyBlobs) PutBlob(hash, data []byte) error {
	return f.PutBlobCtx(context.Background(), hash, data)
}

// PutBlobCtx implements transport.BlobStoreCtx: injected faults happen
// inside the caller's traced attempt, and the context is forwarded when
// the inner store accepts one (a wrapped fleet), so fault injection is
// transparent to tracing.
func (f *FaultyBlobs) PutBlobCtx(ctx context.Context, hash, data []byte) error {
	if err := f.gate("put"); err != nil {
		return err
	}
	if bc, ok := f.inner.(transport.BlobStoreCtx); ok {
		return bc.PutBlobCtx(ctx, hash, data)
	}
	return f.inner.PutBlob(hash, data)
}

// GetBlob implements transport.BlobStore. Payload faults (short reads,
// bit flips) corrupt only the returned copy, never the stored blob —
// the backend misbehaves on the wire, like a real flaky or byzantine
// store, while its disk state stays whatever the inner store holds.
func (f *FaultyBlobs) GetBlob(hash []byte) ([]byte, error) {
	return f.GetBlobCtx(context.Background(), hash)
}

// GetBlobCtx implements transport.BlobStoreCtx (see PutBlobCtx).
func (f *FaultyBlobs) GetBlobCtx(ctx context.Context, hash []byte) ([]byte, error) {
	if err := f.gate("get"); err != nil {
		return nil, err
	}
	var data []byte
	var err error
	if bc, ok := f.inner.(transport.BlobStoreCtx); ok {
		data, err = bc.GetBlobCtx(ctx, hash)
	} else {
		data, err = f.inner.GetBlob(hash)
	}
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	cfg := f.cfg
	short := len(data) > 0 && cfg.ShortReadRate > 0 && f.rng.Float64() < cfg.ShortReadRate
	flip := len(data) > 0 && cfg.FlipRate > 0 && f.rng.Float64() < cfg.FlipRate
	var flipAt int
	if flip {
		flipAt = f.rng.Intn(len(data))
	}
	f.mu.Unlock()
	if short {
		f.shortReads.Add(1)
		fmFaults["short-read"].Inc()
		data = data[:len(data)/2]
	}
	if flip && len(data) > 0 {
		f.bitFlips.Add(1)
		fmFaults["bit-flip"].Inc()
		if flipAt >= len(data) {
			flipAt = len(data) - 1
		}
		cp := append([]byte(nil), data...)
		cp[flipAt] ^= 0x40
		data = cp
	}
	return data, nil
}
