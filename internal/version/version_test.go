package version

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mkVersion(v []int64, m [][]byte) Version { return Version{V: v, M: m} }

func TestNewIsZero(t *testing.T) {
	v := New(3)
	if !v.IsZero() {
		t.Fatal("New version must be zero")
	}
	if v.N() != 3 {
		t.Fatalf("N() = %d, want 3", v.N())
	}
}

func TestIsZeroDetectsNonZero(t *testing.T) {
	v := New(2)
	v.V[1] = 1
	if v.IsZero() {
		t.Fatal("nonzero timestamp vector reported zero")
	}
	w := New(2)
	w.M[0] = []byte{1}
	if w.IsZero() {
		t.Fatal("nonzero digest vector reported zero")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(2)
	v.V[0] = 5
	v.M[0] = []byte{1, 2}
	c := v.Clone()
	c.V[0] = 9
	c.M[0][0] = 7
	if v.V[0] != 5 || v.M[0][0] != 1 {
		t.Fatal("Clone shares memory with original")
	}
	if !v.Clone().Equal(v) {
		t.Fatal("Clone not equal to original")
	}
}

func TestLessEqBasic(t *testing.T) {
	d1 := []byte{1}
	d2 := []byte{2}
	zero := New(2)
	a := mkVersion([]int64{1, 0}, [][]byte{d1, nil})
	b := mkVersion([]int64{1, 1}, [][]byte{d1, d2})
	if !zero.LessEq(a) || !zero.LessEq(b) {
		t.Fatal("zero must be below everything with matching dims")
	}
	if !a.LessEq(b) {
		t.Fatal("a <= b expected: b extends a, digests agree where equal")
	}
	if b.LessEq(a) {
		t.Fatal("b <= a must not hold")
	}
}

func TestLessEqDigestMismatchAtEqualEntry(t *testing.T) {
	// Same timestamp vectors but different digest at an equal entry:
	// neither order holds. This is exactly how forks manifest.
	a := mkVersion([]int64{1, 0}, [][]byte{{1}, nil})
	b := mkVersion([]int64{1, 0}, [][]byte{{2}, nil})
	if a.LessEq(b) || b.LessEq(a) {
		t.Fatal("digest mismatch at equal entry must make versions incomparable")
	}
	if Comparable(a, b) {
		t.Fatal("Comparable must be false")
	}
}

func TestLessEqDigestIgnoredAtStrictlySmallerEntry(t *testing.T) {
	// Where V[k] < W[k], digests may differ freely.
	a := mkVersion([]int64{1, 0}, [][]byte{{1}, nil})
	b := mkVersion([]int64{2, 0}, [][]byte{{9}, nil})
	if !a.LessEq(b) {
		t.Fatal("digest at strictly smaller entry must not block order")
	}
}

func TestLessEqDimensionMismatch(t *testing.T) {
	a := New(2)
	b := New(3)
	if a.LessEq(b) || b.LessEq(a) {
		t.Fatal("versions of different dimension must be unordered")
	}
}

func TestLessStrict(t *testing.T) {
	a := New(2)
	b := mkVersion([]int64{0, 1}, [][]byte{nil, {1}})
	if !a.Less(b) {
		t.Fatal("zero < b expected")
	}
	if a.Less(a) {
		t.Fatal("Less must be irreflexive")
	}
}

func TestMax(t *testing.T) {
	a := New(2)
	b := mkVersion([]int64{0, 1}, [][]byte{nil, {1}})
	if m, ok := Max(a, b); !ok || !m.Equal(b) {
		t.Fatal("Max(a,b) should be b")
	}
	if m, ok := Max(b, a); !ok || !m.Equal(b) {
		t.Fatal("Max(b,a) should be b")
	}
	c := mkVersion([]int64{1, 0}, [][]byte{{1}, nil})
	d := mkVersion([]int64{0, 1}, [][]byte{nil, {2}})
	if _, ok := Max(c, d); ok {
		t.Fatal("Max of incomparable versions must report false")
	}
}

func TestVectorOrder(t *testing.T) {
	if !VectorLessEq([]int64{1, 2}, []int64{1, 2}) {
		t.Fatal("reflexive VectorLessEq failed")
	}
	if VectorLess([]int64{1, 2}, []int64{1, 2}) {
		t.Fatal("VectorLess must be irreflexive")
	}
	if !VectorLess([]int64{1, 2}, []int64{1, 3}) {
		t.Fatal("VectorLess basic case failed")
	}
	if VectorLessEq([]int64{2, 0}, []int64{1, 3}) {
		t.Fatal("incomparable vectors reported ordered")
	}
	if VectorLessEq([]int64{1}, []int64{1, 2}) {
		t.Fatal("dimension mismatch reported ordered")
	}
}

func TestDigestStepChain(t *testing.T) {
	d1 := DigestStep(nil, 0)
	d2 := DigestStep(d1, 1)
	if bytes.Equal(d1, d2) {
		t.Fatal("chain steps must differ")
	}
	if got := DigestOfSequence([]int{0, 1}); !bytes.Equal(got, d2) {
		t.Fatal("DigestOfSequence disagrees with manual chain")
	}
	if DigestOfSequence(nil) != nil {
		t.Fatal("digest of empty sequence must be nil (bottom)")
	}
}

func TestDigestChainPositionSensitive(t *testing.T) {
	a := DigestOfSequence([]int{0, 1})
	b := DigestOfSequence([]int{1, 0})
	if bytes.Equal(a, b) {
		t.Fatal("digest must depend on order")
	}
	c := DigestOfSequence([]int{0})
	if bytes.Equal(a, c) {
		t.Fatal("digest must depend on length")
	}
}

func TestCanonicalBytesDistinguishesBottomFromEmpty(t *testing.T) {
	a := mkVersion([]int64{0}, [][]byte{nil})
	b := mkVersion([]int64{0}, [][]byte{{}})
	if bytes.Equal(a.CanonicalBytes(), b.CanonicalBytes()) {
		t.Fatal("bottom digest and empty digest must encode differently")
	}
}

func TestCanonicalBytesInjectiveOnSamples(t *testing.T) {
	versions := []Version{
		New(2),
		mkVersion([]int64{1, 0}, [][]byte{{1}, nil}),
		mkVersion([]int64{0, 1}, [][]byte{nil, {1}}),
		mkVersion([]int64{1, 1}, [][]byte{{1}, {1}}),
		mkVersion([]int64{1, 1}, [][]byte{{1}, {2}}),
	}
	seen := make(map[string]int, len(versions))
	for i, v := range versions {
		k := string(v.CanonicalBytes())
		if j, dup := seen[k]; dup {
			t.Fatalf("versions %d and %d encode identically", i, j)
		}
		seen[k] = i
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	v := mkVersion([]int64{1, 2}, [][]byte{nil, bytes.Repeat([]byte{0xab}, 32)})
	if s := v.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// randomVersion produces versions over a small space so that equal entries
// (and hence the digest side-condition) are actually exercised.
func randomVersion(rng *rand.Rand, n int) Version {
	v := New(n)
	digests := [][]byte{nil, {1}, {2}}
	for i := 0; i < n; i++ {
		v.V[i] = int64(rng.Intn(3))
		v.M[i] = digests[rng.Intn(len(digests))]
	}
	return v
}

// Property: LessEq is a partial order on random versions (reflexive,
// antisymmetric, transitive).
func TestQuickPartialOrderLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 2000; iter++ {
		a := randomVersion(rng, 3)
		b := randomVersion(rng, 3)
		c := randomVersion(rng, 3)
		if !a.LessEq(a) {
			t.Fatalf("not reflexive: %v", a)
		}
		if a.LessEq(b) && b.LessEq(a) && !a.Equal(b) {
			t.Fatalf("not antisymmetric: %v vs %v", a, b)
		}
		if a.LessEq(b) && b.LessEq(c) && !a.LessEq(c) {
			t.Fatalf("not transitive: %v, %v, %v", a, b, c)
		}
	}
}

// Property: cloning commutes with the order.
func TestQuickCloneOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 500; iter++ {
		a := randomVersion(rng, 2)
		b := randomVersion(rng, 2)
		if a.LessEq(b) != a.Clone().LessEq(b.Clone()) {
			t.Fatalf("clone changed order relation for %v, %v", a, b)
		}
	}
}

// Property: canonical encoding is injective with respect to Equal.
func TestQuickCanonicalBytesInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 2000; iter++ {
		a := randomVersion(rng, 2)
		b := randomVersion(rng, 2)
		enc := bytes.Equal(a.CanonicalBytes(), b.CanonicalBytes())
		if enc != a.Equal(b) {
			t.Fatalf("encoding equality (%v) disagrees with Equal (%v) for %v, %v",
				enc, a.Equal(b), a, b)
		}
	}
}

// Property (testing/quick): for arbitrary timestamp vectors, VectorLessEq
// agrees with an independent elementwise implementation.
func TestQuickVectorLessEqModel(t *testing.T) {
	model := func(v, w []int64) bool {
		if len(v) != len(w) {
			return false
		}
		for i := range v {
			if v[i] > w[i] {
				return false
			}
		}
		return true
	}
	f := func(v, w []int64) bool {
		return VectorLessEq(v, w) == model(v, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionValueSemantics(t *testing.T) {
	v := New(2)
	w := v // shallow copy shares slices; Clone must not
	w.V[0] = 3
	if v.V[0] != 3 {
		t.Fatal("sanity: shallow copy should share")
	}
	if !reflect.DeepEqual(v.V, w.V) {
		t.Fatal("sanity failed")
	}
}
