package shard

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/wire"
)

func TestValidName(t *testing.T) {
	for _, ok := range []string{"default", "a", "tenant-1", "A.b_c-9", "0x"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", ".hidden", "-x", "a/b", "a b", "..", "a\x00b", strings.Repeat("x", 65)} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

func TestRouterResolveDeclared(t *testing.T) {
	r, err := NewRouter([]Spec{{Name: "a", N: 2}, {Name: "b", N: 3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coreA, err := r.ResolveShard("a")
	if err != nil {
		t.Fatal(err)
	}
	coreA2, err := r.ResolveShard("a")
	if err != nil {
		t.Fatal(err)
	}
	if coreA != coreA2 {
		t.Fatal("ResolveShard not idempotent")
	}
	coreB, err := r.ResolveShard("b")
	if err != nil {
		t.Fatal(err)
	}
	if coreA == coreB {
		t.Fatal("distinct shards share a core")
	}
	if _, err := r.ResolveShard("nope"); err == nil {
		t.Fatal("unknown shard resolved without a default template")
	}
	// Isolation: a submit to shard a must not appear in shard b.
	coreA.HandleSubmit(context.Background(), 0, &wire.Submit{T: 1, Inv: wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0}, Value: []byte("x")})
	type pender interface{ PendingOps() int }
	if got := coreA.(pender).PendingOps(); got != 1 {
		t.Fatalf("shard a pending = %d, want 1", got)
	}
	if got := coreB.(pender).PendingOps(); got != 0 {
		t.Fatalf("shard b pending = %d, want 0", got)
	}
}

func TestRouterLazyDefault(t *testing.T) {
	r, err := NewRouter(nil, Options{Default: &Spec{N: 4}})
	if err != nil {
		t.Fatal(err)
	}
	core, err := r.ResolveShard("on-demand")
	if err != nil {
		t.Fatal(err)
	}
	if n := core.(interface{ N() int }).N(); n != 4 {
		t.Fatalf("lazy shard n = %d, want 4", n)
	}
	if _, err := r.ResolveShard("bad/name"); err == nil {
		t.Fatal("invalid lazy shard name accepted")
	}
	infos := r.OpenShards()
	if len(infos) != 1 || infos[0].Name != "on-demand" || infos[0].Persistent {
		t.Fatalf("OpenShards = %+v", infos)
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter([]Spec{{Name: "a", N: 0}}, Options{}); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := NewRouter([]Spec{{Name: "a", N: 1}, {Name: "a", N: 2}}, Options{}); err == nil {
		t.Fatal("accepted duplicate names")
	}
	if _, err := NewRouter([]Spec{{Name: "../evil", N: 1}}, Options{}); err == nil {
		t.Fatal("accepted path-traversal name")
	}
	if _, err := NewRouter([]Spec{{Name: "a", N: 1, Persist: true}}, Options{}); err == nil {
		t.Fatal("accepted persistent shard without any directory")
	}
	if _, err := NewRouter(nil, Options{Default: &Spec{N: 2, Persist: true}}); err == nil {
		t.Fatal("accepted persistent default template without base dir")
	}
}

func TestRouterPersistencePerShardDirs(t *testing.T) {
	base := t.TempDir()
	open := func() *Router {
		r, err := NewRouter([]Spec{
			{Name: "alpha", N: 2, Persist: true},
			{Name: "beta", N: 2, Persist: true},
		}, Options{BaseDir: base, StoreOptions: store.Options{SnapshotEvery: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := open()
	coreA, err := r.ResolveShard("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResolveShard("beta"); err != nil {
		t.Fatal(err)
	}
	sub := &wire.Submit{T: 1, Inv: wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0}, Value: []byte("persist-me")}
	if reply := coreA.HandleSubmit(context.Background(), 0, sub); reply == nil {
		t.Fatal("persistent shard refused a submit")
	}
	preClose := coreA.(*store.Persistent).ExportState()
	for _, name := range []string{"alpha", "beta"} {
		dir := filepath.Join(base, "shards", name)
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Fatalf("shard dir %s missing: %v", dir, err)
		}
		info, ok := r.Info(name)
		if !ok || !info.Persistent || info.Dir != dir {
			t.Fatalf("Info(%s) = %+v, %v", name, info, ok)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResolveShard("alpha"); err == nil {
		t.Fatal("closed router resolved a shard")
	}

	// Reopen: alpha must recover its submit, beta must stay empty.
	r2 := open()
	defer r2.Close()
	coreA2, err := r2.ResolveShard("alpha")
	if err != nil {
		t.Fatal(err)
	}
	infoA, _ := r2.Info("alpha")
	if !infoA.RecoveredSnapshot {
		t.Fatalf("alpha did not recover from snapshot: %+v", infoA)
	}
	if got := coreA2.(*store.Persistent).ExportState(); string(got) != string(preClose) {
		t.Fatal("alpha state after recovery differs from pre-close state")
	}
	coreB2, err := r2.ResolveShard("beta")
	if err != nil {
		t.Fatal(err)
	}
	if string(coreB2.(*store.Persistent).ExportState()) == string(preClose) {
		t.Fatal("beta recovered alpha's state — shards share a backend")
	}
}

func TestRouterCustomDirOverride(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRouter([]Spec{{Name: "legacy", N: 2, Persist: true, Dir: dir}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ResolveShard("legacy"); err != nil {
		t.Fatal(err)
	}
	info, _ := r.Info("legacy")
	if info.Dir != dir {
		t.Fatalf("Dir = %q, want %q", info.Dir, dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no backend files in override dir: %v", err)
	}
}

func TestRouterImplementsResolver(t *testing.T) {
	var _ transport.ShardResolver = (*Router)(nil)
	var _ transport.ShardPreflight = (*Router)(nil)
}

// TestPreflightShard: handshake validation must not instantiate shards —
// otherwise rejected handshakes could grow state without bound.
func TestPreflightShard(t *testing.T) {
	r, err := NewRouter([]Spec{{Name: "a", N: 2}}, Options{Default: &Spec{N: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PreflightShard("a", 1); err != nil {
		t.Fatalf("declared in-range: %v", err)
	}
	if err := r.PreflightShard("a", 2); err == nil {
		t.Fatal("declared out-of-range id accepted")
	}
	if err := r.PreflightShard("lazy", 2); err != nil {
		t.Fatalf("template in-range: %v", err)
	}
	if err := r.PreflightShard("lazy", 3); err == nil {
		t.Fatal("template out-of-range id accepted")
	}
	if err := r.PreflightShard("bad/name", 0); err == nil {
		t.Fatal("invalid lazy name accepted")
	}
	if got := r.OpenShards(); len(got) != 0 {
		t.Fatalf("preflight instantiated shards: %+v", got)
	}

	strict, err := NewRouter([]Spec{{Name: "a", N: 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := strict.PreflightShard("unknown", 0); err == nil {
		t.Fatal("unknown shard accepted without a template")
	}
}

func TestParseManifest(t *testing.T) {
	input := `
# tenants
acme     n=4 persist
initech  n=8
globex   n=2 persist=false
`
	specs, err := ParseManifest(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []Spec{
		{Name: "acme", N: 4, Persist: true},
		{Name: "initech", N: 8},
		{Name: "globex", N: 2},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}

	for _, bad := range []string{
		"noN persist",
		"bad/name n=2",
		"x n=zero",
		"x n=2 bogus=1",
	} {
		if _, err := ParseManifest(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseManifest(%q) accepted", bad)
		}
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("n=4,persist")
	if err != nil {
		t.Fatal(err)
	}
	if sp.N != 4 || !sp.Persist {
		t.Fatalf("ParseSpec = %+v", sp)
	}
	sp, err = ParseSpec("n=2,persist=false")
	if err != nil {
		t.Fatal(err)
	}
	if sp.N != 2 || sp.Persist {
		t.Fatalf("ParseSpec = %+v", sp)
	}
	for _, bad := range []string{"", "persist", "n=-1", "n=4,whatever=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
