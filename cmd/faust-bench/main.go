// Faust-bench regenerates the paper-level experiments (E5-E14) plus the
// system-growth experiments this repo added (E15 persistence, E16
// concurrent throughput, E17 multi-tenant sharding, E18 the KV layer,
// E19 tree directories, E20 latency tails and metrics overhead, E21
// blob-fleet failover, E22 batched dispatch)
// and prints one table per experiment.
// Unlike the testing.B benchmarks in bench_test.go (micro-level,
// statistics via the Go tooling), this harness prints the shaped tables
// the reproduction is judged against: who wins, by what factor, where the
// crossovers are.
//
// Run all experiments:
//
//	go run ./cmd/faust-bench
//
// Run a subset:
//
//	go run ./cmd/faust-bench -run rounds,msgsize,waitfree
//
// Machine-readable output for trajectory tracking: -json <file> appends
// one JSON record per measured row, {"experiment","n","ns_per_op",
// "bytes_per_op","allocs_per_op"} plus an optional {"value","unit"} pair
// for non-latency metrics, so successive runs across PRs can be compared
// (the BENCH_*.json files). Every experiment emits records.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"faust/internal/blobfleet"
	"faust/internal/byzantine"
	"faust/internal/crypto"
	"faust/internal/faustproto"
	"faust/internal/kv"
	"faust/internal/lockstep"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/offline"
	"faust/internal/shard"
	"faust/internal/sim"
	"faust/internal/store"
	"faust/internal/transport"
	"faust/internal/trusted"
	"faust/internal/ustor"
	"faust/internal/wire"
	"faust/internal/workload"
)

type experiment struct {
	name string
	desc string
	run  func()
}

// benchResult is one machine-readable measurement row, written by -json.
// Timing experiments fill ns_per_op (plus the alloc columns when they go
// through measured); experiments whose headline metric is not a latency
// (message counts, wire bytes, throughput) carry it in value/unit so the
// schema stays stable across PRs.
type benchResult struct {
	Experiment  string  `json:"experiment"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Value       float64 `json:"value,omitempty"`
	Unit        string  `json:"unit,omitempty"`
	// Latency-tail columns, filled by experiments that sample per-op
	// latencies (E20): exact quantiles over the sorted sample set.
	P50Ns  float64 `json:"p50_ns,omitempty"`
	P99Ns  float64 `json:"p99_ns,omitempty"`
	P999Ns float64 `json:"p999_ns,omitempty"`
}

// results collects every measured row of the run; experiments append via
// measured, recordNs or recordValue — every experiment emits at least
// one row, so BENCH_*.json captures the full perf history.
var results []benchResult

// recordNs appends a plain latency row (no allocation accounting).
func recordNs(experiment string, n int, nsPerOp float64) {
	results = append(results, benchResult{Experiment: experiment, N: n, NsPerOp: nsPerOp})
}

// recordValue appends a non-latency metric row.
func recordValue(experiment string, n int, value float64, unit string) {
	results = append(results, benchResult{Experiment: experiment, N: n, Value: value, Unit: unit})
}

// measured times f over ops operations and records wall time plus heap
// allocation per operation (process-wide, like testing.B -benchmem). The
// duration is returned for the human-readable tables.
func measured(experiment string, n, ops int, f func()) time.Duration {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f()
	d := time.Since(start)
	runtime.ReadMemStats(&m1)
	results = append(results, benchResult{
		Experiment:  experiment,
		N:           n,
		NsPerOp:     float64(d.Nanoseconds()) / float64(ops),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
	})
	return d
}

// writeJSON appends the collected rows to path, one JSON object per line,
// so successive runs accumulate a comparable trajectory.
func writeJSON(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			_ = f.Close()
			return err
		}
	}
	return f.Close()
}

// quick trims the heavyweight experiments (E19's 10k-key sweep) for CI
// smoke runs.
var quick bool

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment names (default: all)")
	jsonFlag := flag.String("json", "", "append machine-readable results to this file (one JSON record per row)")
	benchOut := flag.String("bench-out", "", "append this run's records to a trajectory file (conventionally BENCH_kv.json) tracked across PRs; may be combined with -json")
	flag.BoolVar(&quick, "quick", false, "trim heavyweight sweeps (CI smoke mode)")
	traceSample := flag.Int("trace-sample", 0, "enable tracing, retaining 1 in N traces by head sampling (0 = tracing off)")
	traceSlow := flag.Duration("trace-slow", 0, "enable tracing, always retaining traces at least this slow")
	flag.Parse()

	if *traceSample > 0 || *traceSlow > 0 {
		trace.SetEnabled(true)
		trace.Configure(*traceSample, *traceSlow)
	}

	experiments := []experiment{
		{"rounds", "E5: message rounds per operation (paper: exactly one)", expRounds},
		{"msgsize", "E6: message size vs number of clients (paper: O(n))", expMsgSize},
		{"latency", "E7: operation latency with a correct server (wait-free path)", expLatency},
		{"waitfree", "E8: USTOR vs lock-step baseline with a crashed writer", expWaitFree},
		{"contention", "E8b: throughput under contention, USTOR vs lock-step", expContention},
		{"detection", "E11: fork-detection latency vs probe timeout", expDetection},
		{"stability", "E13: stability latency, online (dummy reads) vs offline (probes)", expStability},
		{"overhead", "E14: throughput of trusted vs USTOR vs FAUST vs lock-step", expOverhead},
		{"crypto", "E12: cryptographic cost per operation", expCrypto},
		{"persist", "E15: durability cost — in-memory vs WAL-logged server (fsync off/on)", expPersist},
		{"throughput", "E16: concurrent multi-client throughput, in-memory vs group-commit WAL", expThroughput},
		{"multishard", "E17: multi-tenant shard scaling over TCP vs the single-dispatcher baseline", expMultiShard},
		{"kv", "E18: authenticated KV layer — value-size and key-count sweeps, cache ablation", expKV},
		{"kvtree", "E19: O(log n) directories — Put/GetFrom cost vs key count, Merkle tree vs flat ablation", expKVTree},
		{"lattail", "E20: latency tails (p50/p99/p999) under concurrent load, and the cost of metrics", expLatencyTail},
		{"failover", "E21: blob-fleet failover — KV workload survives the primary's death; degraded vs recovered tails, tampered-replica ablation", expFailover},
		{"batch", "E22: batched verify/apply dispatch — ops/sec and tails vs batch cap and client count, unbatched (cap=1) ablation", expBatch},
	}

	want := map[string]bool{}
	if *runFlag != "" {
		for _, name := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		fmt.Printf("\n=== %s — %s ===\n", e.name, e.desc)
		e.run()
	}
	fmt.Println()
	for _, path := range []string{*jsonFlag, *benchOut} {
		if path == "" {
			continue
		}
		if err := writeJSON(path); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d benchmark records to %s\n", len(results), path)
	}
}

// expRounds counts messages per operation: the paper claims a single
// round (SUBMIT -> REPLY) plus an asynchronous COMMIT.
func expRounds() {
	const n, ops = 4, 200
	cl := sim.NewCluster(n, sim.Options{NetOpts: []transport.Option{transport.WithMetrics()}})
	w := workload.New(n, workload.Config{ReadFraction: 0.5, ValueSize: 64, Seed: 1})
	if err := cl.RunWorkload(w, ops); err != nil {
		fail(err)
	}
	st := cl.Net.Stats()
	cl.Stop()
	total := int64(n * ops)
	fmt.Printf("%-28s %10s %14s %12s\n", "metric", "count", "per operation", "paper")
	fmt.Printf("%-28s %10d %14.3f %12s\n", "server->client messages", st.ServerToClientMsgs,
		float64(st.ServerToClientMsgs)/float64(total), "1.000")
	fmt.Printf("%-28s %10d %14.3f %12s\n", "client->server messages", st.ClientToServerMsgs,
		float64(st.ClientToServerMsgs)/float64(total), "2.000 (SUBMIT+COMMIT)")
	recordValue("rounds/server-to-client", n, float64(st.ServerToClientMsgs)/float64(total), "msgs/op")
	recordValue("rounds/client-to-server", n, float64(st.ClientToServerMsgs)/float64(total), "msgs/op")
}

// expMsgSize measures encoded message sizes as n grows; the paper claims
// O(n) communication overhead per request.
func expMsgSize() {
	fmt.Printf("%-6s %14s %14s %14s %16s\n", "n", "avg c->s B", "avg s->c B", "total B/op", "(total/op)/n")
	type row struct {
		n     int
		ratio float64
	}
	var rows []row
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		const opsPer = 20
		cl := sim.NewCluster(n, sim.Options{NetOpts: []transport.Option{transport.WithMetrics()}})
		w := workload.New(n, workload.Config{ReadFraction: 0.5, ValueSize: 64, Seed: 2})
		if err := cl.RunWorkload(w, opsPer); err != nil {
			fail(err)
		}
		st := cl.Net.Stats()
		cl.Stop()
		ops := float64(n * opsPer)
		cs := float64(st.ClientToServerBytes) / float64(st.ClientToServerMsgs)
		sc := float64(st.ServerToClientBytes) / float64(st.ServerToClientMsgs)
		perOp := float64(st.ClientToServerBytes+st.ServerToClientBytes) / ops
		rows = append(rows, row{n, perOp / float64(n)})
		recordValue("msgsize/total", n, perOp, "bytes/op")
		fmt.Printf("%-6d %14.1f %14.1f %14.1f %16.1f\n", n, cs, sc, perOp, perOp/float64(n))
	}
	first, last := rows[0], rows[len(rows)-1]
	fmt.Printf("linearity check: (bytes/op)/n at n=%d is %.1f, at n=%d is %.1f — flat ratio indicates O(n)\n",
		first.n, first.ratio, last.n, last.ratio)
}

// expLatency measures operation latency against a correct server.
func expLatency() {
	fmt.Printf("%-6s %12s %12s\n", "n", "write us/op", "read us/op")
	for _, n := range []int{2, 4, 8, 16} {
		cl := sim.NewCluster(n, sim.Options{})
		const ops = 300
		writeLat := measured("latency/write", n, ops, func() {
			for i := 0; i < ops; i++ {
				if err := cl.Write(0, []byte(fmt.Sprintf("v%d", i))); err != nil {
					fail(err)
				}
			}
		})
		readLat := measured("latency/read", n, ops, func() {
			for i := 0; i < ops; i++ {
				if _, err := cl.Read(0, (i%(n-1))+1); err != nil {
					fail(err)
				}
			}
		})
		cl.Stop()
		fmt.Printf("%-6d %12.1f %12.1f\n", n,
			float64(writeLat.Microseconds())/ops, float64(readLat.Microseconds())/ops)
	}
}

// expWaitFree is the paper's headline: with a writer crashed between
// SUBMIT and COMMIT, USTOR reads finish; lock-step reads block forever.
func expWaitFree() {
	const n = 3
	ring, signers := crypto.NewTestKeyring(n, 3)

	// USTOR: crash client 0 mid-operation, then measure client 1 reads.
	usrv := ustor.NewServer(n)
	unet := transport.NewNetwork(n, usrv)
	link0 := unet.ClientLink(0)
	sigma := signers[0].Sign(crypto.DomainSubmit, wire.SubmitPayload(wire.OpWrite, 0, 1, nil))
	delta := signers[0].Sign(crypto.DomainData, wire.DataPayload(1, crypto.Hash([]byte("w"))))
	_ = link0.Send(&wire.Submit{T: 1, Inv: wire.Invocation{Client: 0, Op: wire.OpWrite, Reg: 0, SubmitSig: sigma}, Value: []byte("w"), DataSig: delta})
	_, _ = link0.Recv() // REPLY consumed; COMMIT never sent: client 0 is dead
	c1 := ustor.NewClient(1, ring, signers[1], unet.ClientLink(1))
	const reads = 200
	start := time.Now()
	for i := 0; i < reads; i++ {
		if _, err := c1.Read(0); err != nil {
			fail(err)
		}
	}
	ustorLat := time.Since(start) / reads
	unet.Stop()

	// Lock-step: same crash; a single read blocks until timeout.
	lsrv := lockstep.NewServer(n)
	lnet := transport.NewNetwork(n, lsrv)
	lc0 := lockstep.NewClient(0, ring, signers[0], lnet.ClientLink(0))
	lc1 := lockstep.NewClient(1, ring, signers[1], lnet.ClientLink(1))
	if err := lc0.WriteCrashBeforeCommit([]byte("w")); err != nil {
		fail(err)
	}
	done := make(chan struct{})
	go func() {
		_, _ = lc1.Read(0)
		close(done)
	}()
	const patience = 2 * time.Second
	var lockstepResult string
	select {
	case <-done:
		lockstepResult = "completed (unexpected!)"
	case <-time.After(patience):
		lockstepResult = fmt.Sprintf("BLOCKED (> %v, would block forever)", patience)
	}
	lnet.Stop()

	fmt.Printf("%-34s %s\n", "protocol", "read latency with crashed writer")
	fmt.Printf("%-34s %v\n", "USTOR (this paper, wait-free)", ustorLat)
	fmt.Printf("%-34s %s\n", "lock-step (fork-linearizable)", lockstepResult)
	recordNs("waitfree/ustor-read-crashed-writer", n, float64(ustorLat.Nanoseconds()))
}

// expContention compares throughput with all clients active: lock-step
// serializes globally, USTOR does not wait for other clients.
func expContention() {
	const n, opsPer = 4, 150
	ring, signers := crypto.NewTestKeyring(n, 4)

	runUstor := func() time.Duration {
		srv := ustor.NewServer(n)
		net := transport.NewNetwork(n, srv)
		defer net.Stop()
		clients := make([]*ustor.Client, n)
		for i := range clients {
			clients[i] = ustor.NewClient(i, ring, signers[i], net.ClientLink(i))
		}
		start := time.Now()
		done := make(chan error, n)
		for c := 0; c < n; c++ {
			go func(c int) {
				for i := 0; i < opsPer; i++ {
					if err := clients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(c)
		}
		for c := 0; c < n; c++ {
			if err := <-done; err != nil {
				fail(err)
			}
		}
		return time.Since(start)
	}
	runLockstep := func() time.Duration {
		srv := lockstep.NewServer(n)
		net := transport.NewNetwork(n, srv)
		defer net.Stop()
		clients := make([]*lockstep.Client, n)
		for i := range clients {
			clients[i] = lockstep.NewClient(i, ring, signers[i], net.ClientLink(i))
		}
		start := time.Now()
		done := make(chan error, n)
		for c := 0; c < n; c++ {
			go func(c int) {
				for i := 0; i < opsPer; i++ {
					if err := clients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(c)
		}
		for c := 0; c < n; c++ {
			if err := <-done; err != nil {
				fail(err)
			}
		}
		return time.Since(start)
	}

	u := runUstor()
	l := runLockstep()
	total := n * opsPer
	fmt.Printf("%-34s %12s %14s\n", "protocol", "total time", "ops/sec")
	fmt.Printf("%-34s %12v %14.0f\n", "USTOR", u.Round(time.Millisecond), float64(total)/u.Seconds())
	fmt.Printf("%-34s %12v %14.0f\n", "lock-step", l.Round(time.Millisecond), float64(total)/l.Seconds())
	recordNs("contention/ustor", n, float64(u.Nanoseconds())/float64(total))
	recordNs("contention/lockstep", n, float64(l.Nanoseconds())/float64(total))
}

// expDetection measures time from the fork becoming material to all
// clients outputting fail, as a function of the probe timeout.
func expDetection() {
	fmt.Printf("%-16s %18s\n", "probe timeout", "detection latency")
	for _, probe := range []time.Duration{20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		const n = 2
		server, err := byzantine.NewForkingServer(n, [][]int{{0}, {1}})
		if err != nil {
			fail(err)
		}
		ring, signers := crypto.NewTestKeyring(n, 5)
		net := transport.NewNetwork(n, server)
		hub := offline.NewHub(n)
		cfg := faustproto.Config{ProbeTimeout: probe, PollInterval: probe / 4, DisableDummyReads: true}
		clients := make([]*faustproto.Client, n)
		for i := 0; i < n; i++ {
			clients[i] = faustproto.NewClient(i, ring, signers[i], net.ClientLink(i), hub.Endpoint(i), faustproto.WithConfig(cfg))
			clients[i].Start()
		}
		if _, err := clients[0].Write([]byte("a")); err != nil {
			fail(err)
		}
		if _, err := clients[1].Write([]byte("b")); err != nil {
			fail(err)
		}
		start := time.Now()
		for _, c := range clients {
			if err := c.WaitFail(30 * time.Second); err != nil {
				fail(err)
			}
		}
		lat := time.Since(start)
		for _, c := range clients {
			c.Stop()
		}
		net.Stop()
		hub.Stop()
		recordNs(fmt.Sprintf("detection/probe=%v", probe), n, float64(lat.Nanoseconds()))
		fmt.Printf("%-16v %18v\n", probe, lat.Round(time.Millisecond))
	}
}

// expStability measures time from an operation's completion to its
// stability w.r.t. all clients, via the online path (dummy reads through
// the live server) and the offline path (server crashed; PROBE/VERSION).
func expStability() {
	const n = 3
	measure := func(core transport.ServerCore, dummyReads bool, preOps func(cl []*faustproto.Client)) time.Duration {
		ring, signers := crypto.NewTestKeyring(n, 6)
		net := transport.NewNetwork(n, core)
		hub := offline.NewHub(n)
		cfg := faustproto.Config{
			ProbeTimeout:      40 * time.Millisecond,
			PollInterval:      10 * time.Millisecond,
			DisableDummyReads: !dummyReads,
		}
		clients := make([]*faustproto.Client, n)
		for i := 0; i < n; i++ {
			clients[i] = faustproto.NewClient(i, ring, signers[i], net.ClientLink(i), hub.Endpoint(i), faustproto.WithConfig(cfg))
			clients[i].Start()
		}
		defer func() {
			for _, c := range clients {
				c.Stop()
			}
			net.Stop()
			hub.Stop()
		}()
		if preOps != nil {
			preOps(clients)
		}
		ts, err := clients[0].Write([]byte("measure-me"))
		if err != nil {
			fail(err)
		}
		start := time.Now()
		if err := clients[0].WaitStable(ts, 30*time.Second); err != nil {
			fail(err)
		}
		return time.Since(start)
	}

	online := measure(ustor.NewServer(n), true, nil)
	// Offline path: the server crashes right after the value propagates.
	crash := byzantine.NewCrashServer(n, 4)
	offlinePath := measure(crash, false, func(cl []*faustproto.Client) {
		if _, _, err := cl[1].Read(0); err != nil {
			fail(err)
		}
		if _, _, err := cl[2].Read(0); err != nil {
			fail(err)
		}
	})
	_ = offlinePath

	fmt.Printf("%-44s %14s\n", "path", "latency")
	fmt.Printf("%-44s %14v\n", "online (dummy reads via live server)", online.Round(time.Millisecond))
	fmt.Printf("%-44s %14v\n", "offline (server crashed; PROBE/VERSION)", offlinePath.Round(time.Millisecond))
	recordNs("stability/online", n, float64(online.Nanoseconds()))
	recordNs("stability/offline", n, float64(offlinePath.Nanoseconds()))
}

// expOverhead compares throughput across the protocol stack.
func expOverhead() {
	const n, opsPer = 4, 100
	ring, signers := crypto.NewTestKeyring(n, 8)

	bench := func(run func(c, i int) error) float64 {
		start := time.Now()
		done := make(chan error, n)
		for c := 0; c < n; c++ {
			go func(c int) {
				for i := 0; i < opsPer; i++ {
					if err := run(c, i); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(c)
		}
		for c := 0; c < n; c++ {
			if err := <-done; err != nil {
				fail(err)
			}
		}
		return float64(n*opsPer) / time.Since(start).Seconds()
	}

	// Trusted.
	tnet := transport.NewNetwork(n, trusted.NewServer(n))
	tclients := make([]*trusted.Client, n)
	for i := range tclients {
		tclients[i] = trusted.NewClient(i, n, tnet.ClientLink(i))
	}
	tOps := bench(func(c, i int) error { return tclients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))) })
	tnet.Stop()

	// USTOR.
	unet := transport.NewNetwork(n, ustor.NewServer(n))
	uclients := make([]*ustor.Client, n)
	for i := range uclients {
		uclients[i] = ustor.NewClient(i, ring, signers[i], unet.ClientLink(i))
	}
	uOps := bench(func(c, i int) error { return uclients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))) })
	unet.Stop()

	// FAUST (full stack with background machinery).
	fnet := transport.NewNetwork(n, ustor.NewServer(n))
	hub := offline.NewHub(n)
	cfg := faustproto.Config{ProbeTimeout: 100 * time.Millisecond, PollInterval: 25 * time.Millisecond}
	fclients := make([]*faustproto.Client, n)
	for i := range fclients {
		fclients[i] = faustproto.NewClient(i, ring, signers[i], fnet.ClientLink(i), hub.Endpoint(i), faustproto.WithConfig(cfg))
		fclients[i].Start()
	}
	fOps := bench(func(c, i int) error {
		_, err := fclients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i)))
		return err
	})
	for _, c := range fclients {
		c.Stop()
	}
	fnet.Stop()
	hub.Stop()

	// Lock-step.
	lnet := transport.NewNetwork(n, lockstep.NewServer(n))
	lclients := make([]*lockstep.Client, n)
	for i := range lclients {
		lclients[i] = lockstep.NewClient(i, ring, signers[i], lnet.ClientLink(i))
	}
	lOps := bench(func(c, i int) error { return lclients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))) })
	lnet.Stop()

	fmt.Printf("%-34s %14s %12s\n", "protocol", "writes/sec", "vs trusted")
	fmt.Printf("%-34s %14.0f %12s\n", "trusted (no crypto)", tOps, "1.00x")
	fmt.Printf("%-34s %14.0f %11.2fx\n", "USTOR", uOps, tOps/uOps)
	fmt.Printf("%-34s %14.0f %11.2fx\n", "FAUST (USTOR + detection)", fOps, tOps/fOps)
	fmt.Printf("%-34s %14.0f %11.2fx\n", "lock-step (fork-linearizable)", lOps, tOps/lOps)
	recordValue("overhead/trusted", n, tOps, "ops/sec")
	recordValue("overhead/ustor", n, uOps, "ops/sec")
	recordValue("overhead/faust", n, fOps, "ops/sec")
	recordValue("overhead/lockstep", n, lOps, "ops/sec")
}

// expCrypto reports the cost of the cryptographic primitives per
// operation: 2 signatures by the client, and 1-3 verifications plus one
// per concurrent operation.
func expCrypto() {
	ring, signers := crypto.NewTestKeyring(2, 9)
	payload := wire.SubmitPayload(wire.OpWrite, 0, 1, nil)

	const iters = 500
	start := time.Now()
	var sig []byte
	for i := 0; i < iters; i++ {
		sig = signers[0].Sign(crypto.DomainSubmit, payload)
	}
	signT := time.Since(start) / iters

	start = time.Now()
	for i := 0; i < iters; i++ {
		if !ring.Verify(0, sig, crypto.DomainSubmit, payload) {
			fail(fmt.Errorf("verification failed"))
		}
	}
	verifyT := time.Since(start) / iters

	start = time.Now()
	buf := make([]byte, 64)
	for i := 0; i < iters; i++ {
		_ = crypto.Hash(buf)
	}
	hashT := time.Since(start) / iters

	fmt.Printf("%-24s %12s\n", "primitive", "time")
	fmt.Printf("%-24s %12v\n", "Ed25519 sign", signT)
	fmt.Printf("%-24s %12v\n", "Ed25519 verify", verifyT)
	fmt.Printf("%-24s %12v\n", "SHA-256 (64 B)", hashT)
	recordNs("crypto/sign", 2, float64(signT.Nanoseconds()))
	recordNs("crypto/verify", 2, float64(verifyT.Nanoseconds()))
	recordNs("crypto/hash-64B", 2, float64(hashT.Nanoseconds()))
	fmt.Printf("per write op: 4 signs (SUBMIT,DATA,COMMIT,PROOF) ~ %v; per read reply verify: >=2 ~ %v\n",
		4*signT, 2*verifyT)
}

// expPersist measures what durability costs: the same concurrent write
// workload against a plain in-memory server, a WAL-logged server on a
// MemBackend (codec cost only), a FileBackend without fsync (process-crash
// durability) and a FileBackend with fsync (power-loss durability).
func expPersist() {
	const n, opsPer = 4, 150
	ring, signers := crypto.NewTestKeyring(n, 10)

	run := func(experiment string, core transport.ServerCore) time.Duration {
		net := transport.NewNetwork(n, core)
		defer net.Stop()
		clients := make([]*ustor.Client, n)
		for i := range clients {
			clients[i] = ustor.NewClient(i, ring, signers[i], net.ClientLink(i))
		}
		return measured(experiment, n, n*opsPer, func() {
			done := make(chan error, n)
			for c := 0; c < n; c++ {
				go func(c int) {
					for i := 0; i < opsPer; i++ {
						if err := clients[c].Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(c)
			}
			for c := 0; c < n; c++ {
				if err := <-done; err != nil {
					fail(err)
				}
			}
		})
	}

	runPersistent := func(experiment string, backend store.Backend) time.Duration {
		ps, err := store.Open(ustor.NewServer(n), backend, store.Options{SnapshotEvery: 256})
		if err != nil {
			fail(err)
		}
		d := run(experiment, ps)
		if err := ps.Close(); err != nil {
			fail(err)
		}
		return d
	}
	var tmpDirs []string
	defer func() {
		for _, d := range tmpDirs {
			_ = os.RemoveAll(d)
		}
	}()
	fileBackend := func(opts store.FileOptions) store.Backend {
		dir, err := os.MkdirTemp("", "faust-bench-persist")
		if err != nil {
			fail(err)
		}
		tmpDirs = append(tmpDirs, dir)
		b, err := store.OpenFile(dir, opts)
		if err != nil {
			fail(err)
		}
		return b
	}
	groupCommit := store.FileOptions{GroupCommit: true, FlushInterval: 2 * time.Millisecond}
	groupCommitFsync := store.FileOptions{Fsync: true, GroupCommit: true, FlushInterval: 2 * time.Millisecond}

	type row struct {
		name string
		d    time.Duration
	}
	rows := []row{
		{"in-memory (no persistence)", run("persist/mem", ustor.NewServer(n))},
		{"WAL, MemBackend (codec only)", runPersistent("persist/wal-mem", store.NewMemBackend())},
		{"WAL, FileBackend, fsync off", runPersistent("persist/wal-file", fileBackend(groupCommit))},
		{"WAL, FileBackend, fsync+group", runPersistent("persist/wal-file-fsync", fileBackend(groupCommitFsync))},
		{"WAL, FileBackend, fsync each", runPersistent("persist/wal-file-fsync-each", fileBackend(store.FileOptions{Fsync: true}))},
	}
	total := float64(n * opsPer)
	base := rows[0].d.Seconds()
	fmt.Printf("%-34s %14s %12s\n", "server", "writes/sec", "vs memory")
	for _, r := range rows {
		fmt.Printf("%-34s %14.0f %11.2fx\n", r.name, total/r.d.Seconds(), r.d.Seconds()/base)
	}
}

// expThroughput measures aggregate multi-client throughput over a
// read/write mix — the sustained-load number the ROADMAP tracks — against
// an in-memory server and a group-commit, fsync'd WAL server.
func expThroughput() {
	const opsPer = 200
	run := func(experiment string, m int, readFrac float64, core transport.ServerCore) float64 {
		ring, signers := crypto.NewTestKeyring(m, 11)
		net := transport.NewNetwork(m, core)
		defer net.Stop()
		clients := make([]*ustor.Client, m)
		for i := range clients {
			clients[i] = ustor.NewClient(i, ring, signers[i], net.ClientLink(i))
		}
		w := workload.New(m, workload.Config{ReadFraction: readFrac, ValueSize: 64, Seed: 12})
		for i, c := range clients { // seed registers so reads return values
			if err := c.Write(w.Stream(i).NextWrite().Value); err != nil {
				fail(err)
			}
		}
		d := measured(experiment, m, m*opsPer, func() {
			done := make(chan error, m)
			for c := 0; c < m; c++ {
				go func(c int) {
					s := w.Stream(c)
					for i := 0; i < opsPer; i++ {
						op := s.Next()
						var err error
						if op.IsWrite {
							err = clients[c].Write(op.Value)
						} else {
							_, err = clients[c].Read(op.Reg)
						}
						if err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(c)
			}
			for c := 0; c < m; c++ {
				if err := <-done; err != nil {
					fail(err)
				}
			}
		})
		return float64(m*opsPer) / d.Seconds()
	}

	fmt.Printf("%-10s %-10s %16s %22s\n", "clients", "reads", "memory ops/sec", "wal fsync+group ops/sec")
	for _, tc := range []struct {
		m        int
		readFrac float64
	}{{4, 0.5}, {8, 0.5}, {8, 0.9}} {
		mem := run(fmt.Sprintf("throughput/mem/reads=%.0f%%", tc.readFrac*100), tc.m, tc.readFrac, ustor.NewServer(tc.m))

		dir, err := os.MkdirTemp("", "faust-bench-throughput")
		if err != nil {
			fail(err)
		}
		backend, err := store.OpenFile(dir, store.FileOptions{Fsync: true, GroupCommit: true, FlushInterval: 2 * time.Millisecond})
		if err != nil {
			fail(err)
		}
		ps, err := store.Open(ustor.NewServer(tc.m), backend, store.Options{SnapshotEvery: 4096})
		if err != nil {
			fail(err)
		}
		wal := run(fmt.Sprintf("throughput/wal-gc/reads=%.0f%%", tc.readFrac*100), tc.m, tc.readFrac, ps)
		_ = ps.Close()
		_ = os.RemoveAll(dir)

		fmt.Printf("%-10d %-10s %16.0f %22.0f\n", tc.m, fmt.Sprintf("%.0f%%", tc.readFrac*100), mem, wal)
	}
}

// expMultiShard is E17: the same total client population (16 identities)
// served as one big register group vs. partitioned into independent
// tenants, over a real TCP loopback server. More shards means smaller
// groups (O(n) messages shrink) AND parallel dispatchers — the two levers
// multi-tenant sharding pulls. The final row re-runs the 4-shard split
// through one shared dispatcher (the pre-shard architecture's global
// serialization) to isolate the dispatcher's contribution.
func expMultiShard() {
	const totalClients = 16
	const opsPer = 120

	run := func(label string, shards int, shared bool) float64 {
		per := totalClients / shards
		ring, signers := crypto.NewTestKeyring(per, 13)
		specs := make([]shard.Spec, shards)
		for s := range specs {
			specs[s] = shard.Spec{Name: fmt.Sprintf("tenant-%d", s), N: per}
		}
		router, err := shard.NewRouter(specs, shard.Options{})
		if err != nil {
			fail(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		var opts []transport.TCPOption
		if shared {
			opts = append(opts, transport.WithSharedDispatcher())
		}
		srv := transport.ServeTCPSharded(ln, router, opts...)
		defer srv.Stop()

		clients := make([]*ustor.Client, 0, totalClients)
		for s := range specs {
			for i := 0; i < per; i++ {
				link, err := transport.DialTCPShard(ln.Addr().String(), specs[s].Name, i)
				if err != nil {
					fail(err)
				}
				clients = append(clients, ustor.NewClient(i, ring, signers[i], link))
			}
		}
		d := measured("multishard/"+label, shards, totalClients*opsPer, func() {
			done := make(chan error, len(clients))
			for c, cl := range clients {
				go func(c int, cl *ustor.Client) {
					for i := 0; i < opsPer; i++ {
						if err := cl.Write([]byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(c, cl)
			}
			for range clients {
				if err := <-done; err != nil {
					fail(err)
				}
			}
		})
		for _, cl := range clients {
			_ = cl.Close()
		}
		return float64(totalClients*opsPer) / d.Seconds()
	}

	type row struct {
		name string
		ops  float64
	}
	rows := []row{
		{"1 shard x 16 clients (single group)", run("shards=1", 1, false)},
		{"2 shards x 8 clients", run("shards=2", 2, false)},
		{"4 shards x 4 clients", run("shards=4", 4, false)},
		{"4 shards, shared dispatcher (ablation)", run("shards=4-shared", 4, true)},
	}
	base := rows[0].ops
	fmt.Printf("(%d total clients, %d writes each, TCP loopback, GOMAXPROCS=%d)\n",
		totalClients, opsPer, runtime.GOMAXPROCS(0))
	fmt.Printf("%-42s %14s %12s\n", "configuration", "agg ops/sec", "vs 1 shard")
	for _, r := range rows {
		fmt.Printf("%-42s %14.0f %11.2fx\n", r.name, r.ops, r.ops/base)
	}
}

// expKV is E18: the authenticated key-value workload. Part 1 sweeps the
// value size at a fixed key count — puts pay chunk uploads plus one
// register write, fresh cross-client gets pay one register read plus
// verified chunk fetches, and the two cache tiers peel those costs off
// (GetFrom reuses verified chunks, CachedGetFrom skips the server
// entirely). Part 2 sweeps the key count at a fixed value size: the
// directory blob re-uploaded per put grows with the namespace, which is
// exactly the O(keys) cost the sweep makes visible. Part 3 runs the
// mixed KV workload (workload.NewKV) over several clients.
func expKV() {
	newKVPair := func(chunkSize int) (owner, reader *kv.Store, stop func()) {
		const n = 2
		ring, signers := crypto.NewTestKeyring(n, 18)
		nw := transport.NewNetwork(n, ustor.NewServer(n), transport.WithBlobStore(transport.NewMemBlobs()))
		open := func(i int) *kv.Store {
			ch, err := nw.BlobChannel()
			if err != nil {
				fail(err)
			}
			st, err := kv.Open(ustor.NewClient(i, ring, signers[i], nw.ClientLink(i)), ch, kv.WithChunkSize(chunkSize))
			if err != nil {
				fail(err)
			}
			return st
		}
		return open(0), open(1), nw.Stop
	}
	value := func(size, salt int) []byte {
		v := make([]byte, size)
		for i := range v {
			v[i] = byte((i + salt*131) % 251)
		}
		return v
	}

	// Part 1: value-size sweep (chunk size 64 KiB — the largest size
	// splits into 4 chunks).
	const keys, ops = 32, 60
	fmt.Printf("value-size sweep (%d keys, %d ops each, 64 KiB chunks):\n", keys, ops)
	fmt.Printf("%-10s %12s %12s %14s %14s %16s\n", "size", "put/s", "put MB/s", "getfrom/s", "getfrom MB/s", "cachedget/s")
	for _, size := range []int{256, 16 << 10, 256 << 10} {
		owner, reader, stop := newKVPair(64 << 10)
		key := func(i int) string { return fmt.Sprintf("key-%04d", i%keys) }
		// Values are synthesized OUTSIDE the measured regions so the
		// trajectory records time the KV layer, not the byte generator.
		values := make([][]byte, ops)
		for i := range values {
			values[i] = value(size, i)
		}

		putD := measured(fmt.Sprintf("kv/put/size=%d", size), 2, ops, func() {
			for i := 0; i < ops; i++ {
				if err := owner.Put(context.Background(), key(i), values[i]); err != nil {
					fail(err)
				}
			}
		})
		getD := measured(fmt.Sprintf("kv/getfrom/size=%d", size), 2, ops, func() {
			for i := 0; i < ops; i++ {
				if _, err := reader.GetFrom(context.Background(), 0, key(i)); err != nil {
					fail(err)
				}
			}
		})
		cachedD := measured(fmt.Sprintf("kv/cachedget/size=%d", size), 2, ops, func() {
			for i := 0; i < ops; i++ {
				if _, err := reader.CachedGetFrom(context.Background(), 0, key(i)); err != nil {
					fail(err)
				}
			}
		})
		stop()
		mbs := func(d time.Duration) float64 {
			return float64(size) * ops / d.Seconds() / (1 << 20)
		}
		recordValue(fmt.Sprintf("kv/put-bytes/size=%d", size), 2, mbs(putD), "MB/s")
		fmt.Printf("%-10s %12.0f %12.2f %14.0f %14.2f %16.0f\n",
			fmtSize(size), ops/putD.Seconds(), mbs(putD),
			ops/getD.Seconds(), mbs(getD), ops/cachedD.Seconds())
	}

	// Part 2: key-count sweep at 256-byte values — the per-put directory
	// cost, now O(log n) path uploads instead of the old O(n) blob
	// (E19 sweeps this head-to-head against the flat ablation).
	fmt.Printf("\nkey-count sweep (256 B values):\n")
	fmt.Printf("%-10s %12s %16s\n", "keys", "put/s", "dir bytes/put")
	for _, nk := range []int{16, 256, 1024} {
		owner, _, stop := newKVPair(64 << 10)
		// Fill the namespace (one batched commit), then measure
		// steady-state overwrites (values pre-generated; see above).
		items := make([]kv.Item, nk)
		for i := range items {
			items[i] = kv.Item{Key: workload.KeyName(i), Value: value(256, i)}
		}
		if err := owner.PutBatch(context.Background(), items); err != nil {
			fail(err)
		}
		const overwrites = 50
		ovalues := make([][]byte, overwrites)
		for i := range ovalues {
			ovalues[i] = value(256, nk+i)
		}
		before := owner.Stats()
		d := measured(fmt.Sprintf("kv/put-keys/keys=%d", nk), 2, overwrites, func() {
			for i := 0; i < overwrites; i++ {
				if err := owner.Put(context.Background(), workload.KeyName(i%nk), ovalues[i]); err != nil {
					fail(err)
				}
			}
		})
		after := owner.Stats()
		stop()
		// Directory cost per put = uploaded bytes minus the 256-byte
		// value chunk, measured from the store's own traffic counters.
		dirBytes := (after.BlobPutBytes-before.BlobPutBytes)/overwrites - 256
		fmt.Printf("%-10d %12.0f %16d\n", nk, overwrites/d.Seconds(), dirBytes)
	}

	// Part 3: mixed workload across 4 clients.
	const m, mixedOps = 4, 80
	ring, signers := crypto.NewTestKeyring(m, 19)
	nw := transport.NewNetwork(m, ustor.NewServer(m), transport.WithBlobStore(transport.NewMemBlobs()))
	defer nw.Stop()
	stores := make([]*kv.Store, m)
	for i := range stores {
		ch, err := nw.BlobChannel()
		if err != nil {
			fail(err)
		}
		st, err := kv.Open(ustor.NewClient(i, ring, signers[i], nw.ClientLink(i)), ch)
		if err != nil {
			fail(err)
		}
		stores[i] = st
	}
	w := workload.NewKV(m, workload.DefaultKVConfig())
	for i, st := range stores { // seed every namespace
		if op := w.Stream(i).NextPut(); st.Put(context.Background(), op.Key, op.Value) != nil {
			fail(fmt.Errorf("seed put failed"))
		}
	}
	d := measured("kv/mixed", m, m*mixedOps, func() {
		done := make(chan error, m)
		for c := 0; c < m; c++ {
			go func(c int) {
				s := w.Stream(c)
				for i := 0; i < mixedOps; i++ {
					var err error
					switch op := s.Next(); op.Kind {
					case workload.KVPut:
						err = stores[c].Put(context.Background(), op.Key, op.Value)
					case workload.KVGet:
						if _, err = stores[c].Get(context.Background(), op.Key); errors.Is(err, kv.ErrNotFound) {
							err = nil
						}
					case workload.KVGetFrom:
						if _, err = stores[c].GetFrom(context.Background(), op.Owner, op.Key); errors.Is(err, kv.ErrNotFound) {
							err = nil
						}
					case workload.KVDelete:
						if err = stores[c].Delete(context.Background(), op.Key); errors.Is(err, kv.ErrNotFound) {
							err = nil
						}
					}
					if err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(c)
		}
		for c := 0; c < m; c++ {
			if err := <-done; err != nil {
				fail(err)
			}
		}
	})
	fmt.Printf("\nmixed workload (%d clients, 70%% reads, 25%% cross-namespace): %.0f ops/sec\n",
		m, float64(m*mixedOps)/d.Seconds())
}

// expKVTree is E19: the scaling claim of the Merkle-tree directory. The
// same KV code runs in two configurations — the default B+-tree fanout,
// and an effectively unbounded fanout that keeps the whole namespace in
// one leaf, which is byte-for-byte the old flat-directory design — over
// namespaces of growing key count. For each, it measures steady-state
// Put (chunk + dirty-path upload + root commit) and cold cross-client
// GetFrom (register read + full verified path, node cache disabled), in
// ns/op and blob bytes/op. Tree costs must grow sublinearly (O(log n)
// path) while flat costs grow linearly (O(n) directory per op); the
// acceptance bar is >=5x on both metrics at 10k keys.
func expKVTree() {
	keyCounts := []int{100, 1000, 10000}
	if quick {
		keyCounts = []int{100, 1000}
	}
	const valueSize = 32
	const ops = 40

	type cost struct {
		putNs, putBytes float64
		getNs, getBytes float64
	}
	run := func(mode string, nk int, opts ...kv.Option) cost {
		const n = 2
		ring, signers := crypto.NewTestKeyring(n, 19)
		nw := transport.NewNetwork(n, ustor.NewServer(n), transport.WithBlobStore(transport.NewMemBlobs()))
		defer nw.Stop()
		open := func(i int, extra ...kv.Option) *kv.Store {
			ch, err := nw.BlobChannel()
			if err != nil {
				fail(err)
			}
			st, err := kv.Open(ustor.NewClient(i, ring, signers[i], nw.ClientLink(i)), ch,
				append(append([]kv.Option(nil), opts...), extra...)...)
			if err != nil {
				fail(err)
			}
			return st
		}
		mkValue := func(tag string, i int) []byte {
			v := make([]byte, valueSize)
			copy(v, fmt.Sprintf("%s-%06d|", tag, i))
			return v
		}
		owner := open(0)
		items := make([]kv.Item, nk)
		for i := range items {
			items[i] = kv.Item{Key: workload.KeyName(i), Value: mkValue("v", i)}
		}
		if err := owner.PutBatch(context.Background(), items); err != nil {
			fail(err)
		}
		// Overwrite values pre-generated so the measured region times the
		// KV layer, not the byte generator.
		ovalues := make([][]byte, ops)
		for i := range ovalues {
			ovalues[i] = mkValue("w", nk+i)
		}

		var c cost
		before := owner.Stats()
		putD := measured(fmt.Sprintf("kvtree/put/mode=%s/keys=%d", mode, nk), nk, ops, func() {
			for i := 0; i < ops; i++ {
				if err := owner.Put(context.Background(), workload.KeyName((i*37)%nk), ovalues[i]); err != nil {
					fail(err)
				}
			}
		})
		after := owner.Stats()
		c.putNs = float64(putD.Nanoseconds()) / ops
		c.putBytes = float64(after.BlobPutBytes+after.BlobGetBytes-before.BlobPutBytes-before.BlobGetBytes) / ops
		recordValue(fmt.Sprintf("kvtree/put-bytes/mode=%s/keys=%d", mode, nk), nk, c.putBytes, "bytes/op")

		// Cold authenticated point reads: the reader's node cache is
		// disabled so every GetFrom fetches and verifies its full path —
		// the per-read cost a cache can only amortize, not remove.
		reader := open(1, kv.WithNodeCacheBudget(0))
		before = reader.Stats()
		getD := measured(fmt.Sprintf("kvtree/getfrom/mode=%s/keys=%d", mode, nk), nk, ops, func() {
			for i := 0; i < ops; i++ {
				if _, err := reader.GetFrom(context.Background(), 0, workload.KeyName((i*41)%nk)); err != nil {
					fail(err)
				}
			}
		})
		after = reader.Stats()
		c.getNs = float64(getD.Nanoseconds()) / ops
		c.getBytes = float64(after.BlobGetBytes-before.BlobGetBytes) / ops
		recordValue(fmt.Sprintf("kvtree/getfrom-bytes/mode=%s/keys=%d", mode, nk), nk, c.getBytes, "bytes/op")
		return c
	}

	fmt.Printf("(%d-byte values, %d ops per cell; flat = unbounded fanout ablation, tree = default fanout %d;\n"+
		" reader node cache disabled — cold verified point reads)\n", valueSize, ops, kv.DefaultLeafFanout)
	for _, nk := range keyCounts {
		flat := run("flat", nk, kv.WithTreeFanout(1<<20, 1<<20))
		tree := run("tree", nk)
		if nk == keyCounts[0] {
			fmt.Printf("%-8s %-6s | %12s %12s %9s | %14s %14s %9s\n",
				"keys", "mode", "put us/op", "put KB/op", "", "getfrom us/op", "getfrom KB/op", "")
		}
		fmt.Printf("%-8d %-6s | %12.1f %12.2f %9s | %14.1f %14.2f %9s\n",
			nk, "flat", flat.putNs/1e3, flat.putBytes/1024, "", flat.getNs/1e3, flat.getBytes/1024, "")
		fmt.Printf("%-8d %-6s | %12.1f %12.2f %8.1fx | %14.1f %14.2f %8.1fx\n",
			nk, "tree", tree.putNs/1e3, tree.putBytes/1024, flat.putNs/tree.putNs,
			tree.getNs/1e3, tree.getBytes/1024, flat.getNs/tree.getNs)
		fmt.Printf("%-8s %-6s | %25s %8.1fx | %29s %8.1fx   (bytes)\n",
			"", "", "", flat.putBytes/tree.putBytes, "", flat.getBytes/tree.getBytes)
	}
}

// expLatencyTail is E20: the tail behaviour the throughput experiment's
// single wall-clock number hides. It reruns the E16 concurrent
// read/write mix but timestamps EVERY operation, then reports exact
// p50/p99/p999 over the sorted samples — for the in-memory server, for
// the group-commit fsync'd WAL server (whose batching shows up as tail,
// not median), and for the in-memory server with observability disabled,
// which bounds what the always-on metrics cost on the hot path.
func expLatencyTail() {
	const m = 4
	opsPer := 400
	if quick {
		opsPer = 120
	}

	type tail struct {
		opsPerSec      float64
		p50, p99, p999 int64
		allocsPerOp    float64
		row            benchResult
	}
	run := func(experiment string, core transport.ServerCore, obsOn bool) tail {
		obs.SetEnabled(obsOn)
		defer obs.SetEnabled(true)
		ring, signers := crypto.NewTestKeyring(m, 20)
		nw := transport.NewNetwork(m, core)
		defer nw.Stop()
		clients := make([]*ustor.Client, m)
		for i := range clients {
			clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
		}
		w := workload.New(m, workload.Config{ReadFraction: 0.5, ValueSize: 64, Seed: 21})
		for i, c := range clients { // seed registers so reads return values
			if err := c.Write(w.Stream(i).NextWrite().Value); err != nil {
				fail(err)
			}
		}
		samples := make([][]int64, m)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		done := make(chan error, m)
		for c := 0; c < m; c++ {
			go func(c int) {
				s := w.Stream(c)
				lat := make([]int64, 0, opsPer)
				for i := 0; i < opsPer; i++ {
					op := s.Next()
					t0 := time.Now()
					var err error
					if op.IsWrite {
						err = clients[c].Write(op.Value)
					} else {
						_, err = clients[c].Read(op.Reg)
					}
					lat = append(lat, time.Since(t0).Nanoseconds())
					if err != nil {
						done <- err
						return
					}
				}
				samples[c] = lat
				done <- nil
			}(c)
		}
		for c := 0; c < m; c++ {
			if err := <-done; err != nil {
				fail(err)
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)

		var all []int64
		for _, s := range samples {
			all = append(all, s...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		quantile := func(q float64) int64 {
			rank := int(q * float64(len(all)))
			if rank >= len(all) {
				rank = len(all) - 1
			}
			return all[rank]
		}
		total := m * opsPer
		t := tail{
			opsPerSec:   float64(total) / wall.Seconds(),
			p50:         quantile(0.50),
			p99:         quantile(0.99),
			p999:        quantile(0.999),
			allocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(total),
		}
		t.row = benchResult{
			Experiment:  experiment,
			N:           m,
			NsPerOp:     float64(wall.Nanoseconds()) / float64(total),
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(total),
			AllocsPerOp: t.allocsPerOp,
			P50Ns:       float64(t.p50),
			P99Ns:       float64(t.p99),
			P999Ns:      float64(t.p999),
		}
		return t
	}
	// Noise discipline: an untimed warm-up pass first (so the first
	// measured configuration doesn't absorb process start-up cost), then
	// best-of-N for the on/off pair, keeping the run with the LOWEST p50 —
	// a single 1600-op run on a shared (or single-core) machine is
	// dominated by scheduler noise, wall-clock throughput swings by double
	// digits run to run, and the least-disturbed run of each configuration
	// is the one whose median was hurt least. The overhead claim below is
	// computed from those medians, not from throughput, for the same
	// reason: a p50 is unaffected by a handful of multi-ms preemptions
	// that can swallow a whole run's wall clock.
	reps := 5
	if quick {
		reps = 3
	}
	bestOf := func(f func() tail) tail {
		best := f()
		for i := 1; i < reps; i++ {
			if t := f(); t.p50 < best.p50 {
				best = t
			}
		}
		return best
	}
	run("lattail/warmup", ustor.NewServer(m), true)
	mem := bestOf(func() tail { return run("lattail/mem", ustor.NewServer(m), true) })
	memOff := bestOf(func() tail { return run("lattail/mem-noobs", ustor.NewServer(m), false) })

	dir, err := os.MkdirTemp("", "faust-bench-lattail")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	backend, err := store.OpenFile(dir, store.FileOptions{Fsync: true, GroupCommit: true, FlushInterval: 2 * time.Millisecond})
	if err != nil {
		fail(err)
	}
	ps, err := store.Open(ustor.NewServer(m), backend, store.Options{SnapshotEvery: 4096})
	if err != nil {
		fail(err)
	}
	wal := run("lattail/wal-gc", ps, true)
	_ = ps.Close()
	results = append(results, mem.row, memOff.row, wal.row)

	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Printf("(%d clients, %d ops each, 50%% reads, per-op sampling)\n", m, opsPer)
	fmt.Printf("%-34s %12s %10s %10s %10s %10s\n", "configuration", "ops/sec", "p50 us", "p99 us", "p999 us", "allocs/op")
	for _, r := range []struct {
		name string
		t    tail
	}{
		{"in-memory, metrics on", mem},
		{"in-memory, metrics off", memOff},
		{"WAL fsync+group-commit, metrics on", wal},
	} {
		fmt.Printf("%-34s %12.0f %10.1f %10.1f %10.1f %10.1f\n", r.name,
			r.t.opsPerSec, us(r.t.p50), us(r.t.p99), us(r.t.p999), r.t.allocsPerOp)
	}
	overhead := float64(mem.p50-memOff.p50) / float64(memOff.p50) * 100
	fmt.Printf("metrics overhead on the in-memory path: %.1f%% on p50 latency (target <= 2%%)\n", overhead)
	fmt.Printf("(environment-sensitive: on single-core or loaded machines the run-to-run\n" +
		" noise floor exceeds the target; judge the trend across runs, not one number)\n")
	recordValue("lattail/metrics-overhead", m, overhead, "%")
}

// fmtSize renders a byte count compactly for the E18 table.
func fmtSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "faust-bench: %v\n", err)
	os.Exit(1)
}

// expFailover is E21: the robustness claim of the blob failover fleet.
// A mixed KV workload (2 clients, cross-namespace reads) runs over a
// fleet of two in-memory backends, the primary wrapped in a fault
// injector. Mid-workload the primary is killed outright; the workload
// must keep running with ZERO client-visible errors while the fleet
// routes around the corpse (degraded phase), and after a probe
// resurrects the revived primary the tails must come back down
// (recovered phase). A second setup turns the primary byzantine
// (FlipRate=1): every read it serves fails content-hash verification,
// so the fleet must serve every blob from the honest secondary.
func expFailover() {
	const m = 2
	opsPer := 150
	if quick {
		opsPer = 50
	}

	ring, signers := crypto.NewTestKeyring(m, 23)
	primary := blobfleet.NewFaultyBlobs("primary", transport.NewMemBlobs(), blobfleet.FaultConfig{Seed: 1})
	fleet, err := blobfleet.New([]blobfleet.Backend{
		{Name: "primary", Store: primary},
		{Name: "secondary", Store: transport.NewMemBlobs()},
	}, blobfleet.Options{
		WriteReplicas: 2,
		ProbeInterval: -1, // phases drive ProbeNow explicitly
		RetryAttempts: 2,
		RetryBase:     200 * time.Microsecond,
		RetryCap:      time.Millisecond,
		Seed:          7,
	})
	if err != nil {
		fail(err)
	}
	defer fleet.Close()

	nw := transport.NewNetwork(m, ustor.NewServer(m), transport.WithBlobStore(fleet))
	defer nw.Stop()
	stores := make([]*kv.Store, m)
	for i := range stores {
		ch, err := nw.BlobChannel()
		if err != nil {
			fail(err)
		}
		st, err := kv.Open(ustor.NewClient(i, ring, signers[i], nw.ClientLink(i)), ch)
		if err != nil {
			fail(err)
		}
		stores[i] = st
	}
	w := workload.NewKV(m, workload.DefaultKVConfig())
	for i, st := range stores { // seed every namespace
		if op := w.Stream(i).NextPut(); st.Put(context.Background(), op.Key, op.Value) != nil {
			fail(fmt.Errorf("seed put failed"))
		}
	}

	// phase runs opsPer mixed KV ops per client, sampling per-op latency,
	// and records a tail row. Any operation error fails the experiment:
	// the whole claim is that backend faults stay invisible to clients.
	phase := func(name string) (opsPerSec float64, p50, p99, p999 int64) {
		samples := make([][]int64, m)
		start := time.Now()
		done := make(chan error, m)
		for c := 0; c < m; c++ {
			go func(c int) {
				s := w.Stream(c)
				lat := make([]int64, 0, opsPer)
				for i := 0; i < opsPer; i++ {
					var err error
					t0 := time.Now()
					switch op := s.Next(); op.Kind {
					case workload.KVPut:
						err = stores[c].Put(context.Background(), op.Key, op.Value)
					case workload.KVGet:
						if _, err = stores[c].Get(context.Background(), op.Key); errors.Is(err, kv.ErrNotFound) {
							err = nil
						}
					case workload.KVGetFrom:
						if _, err = stores[c].GetFrom(context.Background(), op.Owner, op.Key); errors.Is(err, kv.ErrNotFound) {
							err = nil
						}
					case workload.KVDelete:
						if err = stores[c].Delete(context.Background(), op.Key); errors.Is(err, kv.ErrNotFound) {
							err = nil
						}
					}
					lat = append(lat, time.Since(t0).Nanoseconds())
					if err != nil {
						done <- fmt.Errorf("%s: client %d op %d: %w", name, c, i, err)
						return
					}
				}
				samples[c] = lat
				done <- nil
			}(c)
		}
		for c := 0; c < m; c++ {
			if err := <-done; err != nil {
				fail(err)
			}
		}
		wall := time.Since(start)
		var all []int64
		for _, s := range samples {
			all = append(all, s...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(qq float64) int64 {
			rank := int(qq * float64(len(all)))
			if rank >= len(all) {
				rank = len(all) - 1
			}
			return all[rank]
		}
		total := m * opsPer
		p50, p99, p999 = q(0.50), q(0.99), q(0.999)
		results = append(results, benchResult{
			Experiment: "failover/" + name,
			N:          m,
			NsPerOp:    float64(wall.Nanoseconds()) / float64(total),
			P50Ns:      float64(p50),
			P99Ns:      float64(p99),
			P999Ns:     float64(p999),
		})
		return float64(total) / wall.Seconds(), p50, p99, p999
	}

	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	report := func(name string, ops float64, p50, p99, p999 int64) {
		fmt.Printf("%-22s %12.0f %10.1f %10.1f %10.1f\n", name, ops, us(p50), us(p99), us(p999))
	}
	fmt.Printf("(%d clients, %d mixed KV ops each per phase; fleet: faulty primary + honest secondary, w=2)\n", m, opsPer)
	fmt.Printf("%-22s %12s %10s %10s %10s\n", "phase", "ops/sec", "p50 us", "p99 us", "p999 us")

	ops, p50, p99, p999 := phase("healthy")
	report("healthy", ops, p50, p99, p999)

	primary.Kill()
	ops, p50, p99, p999 = phase("degraded")
	report("degraded (primary dead)", ops, p50, p99, p999)
	st := fleet.Stats()
	if st.FailoverPuts == 0 {
		fail(fmt.Errorf("degraded phase recorded no failover puts — the primary was never routed around"))
	}
	if st.BackendsDied == 0 {
		fail(fmt.Errorf("the dead primary never left the rotation"))
	}

	primary.Revive()
	fleet.ProbeNow()
	if !fleet.Status()[0].Alive {
		fail(fmt.Errorf("probe did not resurrect the revived primary"))
	}
	ops, p50, p99, p999 = phase("recovered")
	report("recovered", ops, p50, p99, p999)

	st = fleet.Stats()
	fmt.Printf("fleet: %d failover puts, %d failover gets, %d retries, %d read repairs, %d deaths, %d revivals — 0 client-visible errors\n",
		st.FailoverPuts, st.FailoverGets, st.Retries, st.ReadRepairs, st.BackendsDied, st.BackendsRevive)
	recordValue("failover/failover-puts", m, float64(st.FailoverPuts), "ops")
	recordValue("failover/failover-gets", m, float64(st.FailoverGets), "ops")
	recordValue("failover/read-repairs", m, float64(st.ReadRepairs), "ops")

	// Tampered-replica ablation: a byzantine primary whose every read is
	// bit-flipped. Writes land intact (faults corrupt the wire on reads
	// only), so every key is replicated; every read served by the primary
	// fails verification inside the fleet and must fall through to the
	// honest secondary without the KV layer ever seeing a bad chunk.
	byz := blobfleet.NewFaultyBlobs("byzantine", transport.NewMemBlobs(), blobfleet.FaultConfig{Seed: 2, FlipRate: 1})
	bfleet, err := blobfleet.New([]blobfleet.Backend{
		{Name: "byzantine", Store: byz},
		{Name: "honest", Store: transport.NewMemBlobs()},
	}, blobfleet.Options{WriteReplicas: 2, ProbeInterval: -1, RetryAttempts: 1, Seed: 9})
	if err != nil {
		fail(err)
	}
	defer bfleet.Close()
	bring, bsigners := crypto.NewTestKeyring(1, 29)
	bnw := transport.NewNetwork(1, ustor.NewServer(1), transport.WithBlobStore(bfleet))
	defer bnw.Stop()
	bch, err := bnw.BlobChannel()
	if err != nil {
		fail(err)
	}
	// Caches off: every read must actually fetch from the fleet, or the
	// byzantine replica would never be exercised.
	bst, err := kv.Open(ustor.NewClient(0, bring, bsigners[0], bnw.ClientLink(0)), bch,
		kv.WithChunkCacheBudget(0), kv.WithNodeCacheBudget(0), kv.WithValueCacheBudget(0))
	if err != nil {
		fail(err)
	}
	tamperOps := opsPer / 2
	for i := 0; i < tamperOps; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := []byte(fmt.Sprintf("tamper-ablation value %d", i))
		if err := bst.Put(context.Background(), key, val); err != nil {
			fail(fmt.Errorf("tamper ablation put %d: %v", i, err))
		}
		got, err := bst.Get(context.Background(), key)
		if err != nil {
			fail(fmt.Errorf("tamper ablation get %d: %v", i, err))
		}
		if string(got) != string(val) {
			fail(fmt.Errorf("tamper ablation get %d returned corrupt data", i))
		}
	}
	bstats := bfleet.Stats()
	if bstats.TamperSkips == 0 {
		fail(fmt.Errorf("byzantine primary was never caught by content-hash verification"))
	}
	fmt.Printf("tamper ablation: %d reads, %d corrupt payloads skipped by verification, all served intact by the honest replica\n",
		tamperOps, bstats.TamperSkips)
	recordValue("failover/tamper-skips", 1, float64(bstats.TamperSkips), "skips")
}

// expBatch is E22: the staged batch pipeline of the dispatcher. Signed
// wire-level clients (one SUBMIT-signature per op, replies awaited but
// not re-verified) run over the in-memory transport against a
// WAL-logged server (fsync + group commit — the deployment the pipeline
// exists for), with dispatcher-side signature verification armed,
// sweeping the drain cap against the client count. Wire-level rather
// than full-protocol clients on purpose: a full USTOR client performs
// O(n) PROOF verifications per REPLY, and at 128 clients that
// client-side crypto saturates a small runner's CPU and masks the
// server-side pipeline this experiment measures (the full client's
// latency profile is E20's subject). cap=1 is the ablation: every op
// takes the unbatched fast path, paying one fsync per op exactly like
// the pre-pipeline dispatcher. The headline claim is the cap-64 vs
// cap-1 ops/sec ratio at the highest client count (>= 2x): with many
// submitters queued, one drain covers the whole inbox and the batch
// shares a single fdatasync and one delivery per connection. The final
// fastpath-wal row re-runs the E20 lattail/wal-gc shape with REAL
// full-protocol clients (4 clients, cap 1) so the trajectory file can
// confirm the fast path's p99 did not regress against the pre-batching
// dispatcher.
func expBatch() {
	caps := []int{1, 8, 64, 256}
	clientCounts := []int{1, 16, 128}
	opsFor := func(m int) int {
		switch {
		case m >= 128:
			return 25
		case m >= 16:
			return 100
		default:
			return 400
		}
	}
	if quick {
		caps = []int{1, 64}
		clientCounts = []int{16}
		opsFor = func(int) int { return 40 }
	}

	type tail struct {
		opsPerSec      float64
		p50, p99, p999 int64
	}
	// withServer builds the WAL-logged, verification-armed server and
	// network, runs body against it, and turns the sampled latencies into
	// a recorded row.
	withServer := func(name string, m, cap, opsPer int, body func(nw *transport.Network, signers []*crypto.Signer, setLat func(c int, v []int64))) tail {
		dir, err := os.MkdirTemp("", "faust-bench-batch")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
		backend, err := store.OpenFile(dir, store.FileOptions{
			Fsync: true, GroupCommit: true, FlushInterval: 2 * time.Millisecond,
		})
		if err != nil {
			fail(err)
		}
		ps, err := store.Open(ustor.NewServer(m), backend, store.Options{})
		if err != nil {
			fail(err)
		}
		defer ps.Close()
		ring, signers := crypto.NewTestKeyring(m, 22)
		nw := transport.NewNetwork(m, ps,
			transport.WithVerifier(ring), transport.WithMaxBatch(cap))
		defer nw.Stop()

		samples := make([][]int64, m)
		var smu sync.Mutex
		start := time.Now()
		body(nw, signers, func(c int, v []int64) {
			smu.Lock()
			samples[c] = v
			smu.Unlock()
		})
		wall := time.Since(start)

		var all []int64
		for _, s := range samples {
			all = append(all, s...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		quantile := func(q float64) int64 {
			rank := int(q * float64(len(all)))
			if rank >= len(all) {
				rank = len(all) - 1
			}
			return all[rank]
		}
		total := len(all)
		t := tail{
			opsPerSec: float64(total) / wall.Seconds(),
			p50:       quantile(0.50),
			p99:       quantile(0.99),
			p999:      quantile(0.999),
		}
		results = append(results, benchResult{
			Experiment: name,
			N:          m,
			NsPerOp:    float64(wall.Nanoseconds()) / float64(total),
			P50Ns:      float64(t.p50),
			P99Ns:      float64(t.p99),
			P999Ns:     float64(t.p999),
		})
		return t
	}

	// runRaw drives m wire-level clients: each signs and sends one
	// SUBMIT at a time and waits for its REPLY, so the measured path is
	// sign -> verify -> WAL append+apply -> flush -> reply.
	runRaw := func(name string, m, cap, opsPer int) tail {
		return withServer(name, m, cap, opsPer, func(nw *transport.Network, signers []*crypto.Signer, setLat func(int, []int64)) {
			done := make(chan error, m)
			value := make([]byte, 64)
			for c := 0; c < m; c++ {
				go func(c int) {
					link := nw.ClientLink(c)
					samples := make([]int64, 0, opsPer)
					payload := []byte(nil)
					for i := 0; i < opsPer; i++ {
						t0 := time.Now()
						sub := &wire.Submit{
							T:     int64(i + 1),
							Inv:   wire.Invocation{Client: c, Op: wire.OpWrite, Reg: c},
							Value: value,
						}
						payload = wire.AppendSubmitPayload(payload[:0], sub.Inv.Op, sub.Inv.Reg, sub.T, nil)
						sub.Inv.SubmitSig = signers[c].Sign(crypto.DomainSubmit, payload)
						if err := link.Send(sub); err != nil {
							done <- err
							return
						}
						if _, err := link.Recv(); err != nil {
							done <- err
							return
						}
						samples = append(samples, time.Since(t0).Nanoseconds())
					}
					setLat(c, samples)
					done <- nil
				}(c)
			}
			for c := 0; c < m; c++ {
				if err := <-done; err != nil {
					fail(err)
				}
			}
		})
	}

	// runFull drives real full-protocol USTOR clients (the E20 shape).
	runFull := func(name string, m, cap, opsPer int) tail {
		return withServer(name, m, cap, opsPer, func(nw *transport.Network, signers []*crypto.Signer, setLat func(int, []int64)) {
			ring, _ := crypto.NewTestKeyring(m, 22)
			clients := make([]*ustor.Client, m)
			for i := range clients {
				clients[i] = ustor.NewClient(i, ring, signers[i], nw.ClientLink(i))
			}
			w := workload.New(m, workload.Config{ReadFraction: 0.5, ValueSize: 64, Seed: 22})
			for i, c := range clients { // seed registers so reads return values
				if err := c.Write(w.Stream(i).NextWrite().Value); err != nil {
					fail(err)
				}
			}
			done := make(chan error, m)
			for c := 0; c < m; c++ {
				go func(c int) {
					s := w.Stream(c)
					samples := make([]int64, 0, opsPer)
					for i := 0; i < opsPer; i++ {
						op := s.Next()
						t0 := time.Now()
						var err error
						if op.IsWrite {
							err = clients[c].Write(op.Value)
						} else {
							_, err = clients[c].Read(op.Reg)
						}
						if err != nil {
							done <- err
							return
						}
						samples = append(samples, time.Since(t0).Nanoseconds())
					}
					setLat(c, samples)
					done <- nil
				}(c)
			}
			for c := 0; c < m; c++ {
				if err := <-done; err != nil {
					fail(err)
				}
			}
		})
	}

	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Printf("(WAL fsync+group-commit server, dispatcher signature verification on,\n" +
		" signed wire-level writes; cap=1 is the unbatched ablation)\n")
	fmt.Printf("%-10s %6s %8s %12s %10s %10s %10s\n",
		"clients", "cap", "ops", "ops/sec", "p50 us", "p99 us", "p999 us")
	byCap := make(map[[2]int]tail)
	for _, m := range clientCounts {
		for _, cap := range caps {
			opsPer := opsFor(m)
			t := runRaw(fmt.Sprintf("batch/cap%d-c%d", cap, m), m, cap, opsPer)
			byCap[[2]int{m, cap}] = t
			fmt.Printf("%-10d %6d %8d %12.0f %10.1f %10.1f %10.1f\n",
				m, cap, m*opsPer, t.opsPerSec, us(t.p50), us(t.p99), us(t.p999))
		}
	}
	topM := clientCounts[len(clientCounts)-1]
	base := byCap[[2]int{topM, 1}]
	var bestCap int
	var best tail
	for _, cap := range caps[1:] {
		if t := byCap[[2]int{topM, cap}]; t.opsPerSec > best.opsPerSec {
			best, bestCap = t, cap
		}
	}
	if base.opsPerSec > 0 && bestCap != 0 {
		speedup := best.opsPerSec / base.opsPerSec
		fmt.Printf("batching speedup at %d clients: %.2fx (cap %d vs cap 1; target >= 2x)\n",
			topM, speedup, bestCap)
		recordValue(fmt.Sprintf("batch/speedup-c%d", topM), topM, speedup, "x")
	}

	// Fast-path regression guard: same shape as E20's lattail/wal-gc.
	fpOps := 400
	if quick {
		fpOps = 120
	}
	fp := runFull("batch/fastpath-wal", 4, 1, fpOps)
	fmt.Printf("%-10s %6d %8d %12.0f %10.1f %10.1f %10.1f  (fast-path guard, cf. lattail/wal-gc)\n",
		"4", 1, 4*fpOps, fp.opsPerSec, us(fp.p50), us(fp.p99), us(fp.p999))
}
