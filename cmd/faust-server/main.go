// Faust-server hosts one or more USTOR storage shards over TCP.
//
// The server is the UNTRUSTED party of the protocol: all guarantees are
// enforced by the clients. By default it holds no keys and verifies
// nothing. -verify opts into dispatcher-side SUBMIT-signature checking as
// admission hygiene (forged SUBMITs are rejected before they touch shard
// state); the public keys are derived deterministically from -seed, which
// must match the clients' -seed (demo-grade key distribution — use a real
// PKI beyond a demo). Verification never strengthens the protocol: a
// Byzantine server would simply skip it.
//
// # Batched dispatch
//
// Each shard dispatcher drains its inbox in arrival-order batches of up
// to -max-batch messages: SUBMIT signatures verify in parallel across
// -verify-workers goroutines (with -verify), ops apply in order, the WAL
// syncs once per batch, and replies coalesce into one framed write per
// connection. -max-batch 1 disables batching (every op takes the
// unbatched fast path).
//
// Example:
//
//	faust-server -addr :7440 -n 3 -data-dir /var/lib/faust
//	faust-client -server localhost:7440 -n 3 -id 0        # in another shell
//
// # Multi-tenant shards
//
// The server hosts many independent client groups ("shards") in one
// process. Every shard is its own n-client register group with isolated
// state; the v2 TCP handshake names the shard a connection belongs to,
// while legacy clients (pre-shard hello) land on the shard named
// "default", which -n and -data-dir configure exactly as before.
//
//	faust-server -addr :7440 -n 3 -data-dir /var/lib/faust \
//	    -shards tenants.conf -shard-spec n=4,persist
//
// -shards names a manifest declaring shards, one per line:
//
//	# tenants.conf
//	acme     n=4 persist
//	initech  n=8
//
// -shard-spec is a template ("n=4,persist") for shards that connect
// without being declared: they are created lazily on first handshake.
// Without -shard-spec, unknown shard names are rejected. Declared shards
// are also instantiated lazily — an idle tenant costs nothing.
//
// A manifest entry named "default" overrides the -n/-data-dir-derived
// default shard; its data then lives under shards/default like any other
// tenant instead of at the data-dir root.
//
// Persistent shards live in <data-dir>/shards/<name>/ (the default shard
// keeps the historic layout at the -data-dir root, so existing data
// directories recover unchanged). Each shard has its own WAL and
// snapshots; -fsync, -group-commit, -flush-interval and -snapshot-every
// apply to every persistent shard.
//
// # Persistence
//
// Without -data-dir the server state lives in memory and a restart rolls
// every client back — which their fail-awareness checks then report as a
// server fault. With -data-dir the server runs write-ahead logged
// (internal/store): every SUBMIT and COMMIT is appended to the log before
// it is applied, and a full state snapshot is rotated in every
// -snapshot-every records.
//
// On-disk layout inside a shard's directory (one generation of each at
// steady state):
//
//	snap-00000007       full server state (MEM, c, SVER, L, P), CRC-checked
//	wal-00000007.log    records since that snapshot: u32 len | u32 CRC-32C | payload
//
// Recovery on boot loads the newest valid snapshot and replays the WAL
// tail. A torn final record (the append in flight at crash time) is
// dropped silently: the server never replied to that operation, so no
// client observed it. Snapshots rotate atomically (tmp + rename), so a
// crash during rotation leaves the previous baseline intact.
//
// -fsync makes WAL records survive power loss: off, state survives process
// crashes (OS page cache); on, it also survives power loss (see
// BenchmarkServerPersist and faust-bench -run persist).
//
// The WAL runs in group-commit mode by default (-group-commit=false for
// per-record writes): records buffer briefly and reach the disk as one
// batched write plus — with -fsync — a single fdatasync that covers every
// record a REPLY depends on. -flush-interval bounds how long an idle
// COMMIT may stay buffered; losing one to a crash inside that window is
// fail-safe (the committing client reports the rollback rather than
// accepting it).
//
// Durability is deliberately unauthenticated: a data directory altered by
// an attacker (e.g. a truncated WAL rolling the state back) recovers
// "successfully" — and the clients' Algorithm 1 checks then expose it
// exactly as they expose a lying live server. The store protects against
// crashes; fail-awareness protects against everything else.
//
// # Blob failover fleet
//
// -blob-backends replaces each shard's single bulk blob store with an
// ordered failover fleet (internal/blobfleet): writes replicate to the
// first W alive backends, reads fan through alive backends with content
// verification and read repair, and per-backend EMA aliveness plus a
// background prober route around dead members.
//
//	faust-server -data-dir /var/lib/faust -blob-backends dir,dir=mirror,w=2
//
// -blob-faults arms deterministic fault injection on one fleet backend
// ("backend=0,errs=0.3,latency=2ms,seed=7") for failure drills and CI
// smoke tests; see the package docs for both grammars.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"faust/internal/blobfleet"
	"faust/internal/crypto"
	"faust/internal/obs"
	"faust/internal/obs/trace"
	"faust/internal/shard"
	"faust/internal/store"
	"faust/internal/transport"
)

func main() {
	addr := flag.String("addr", ":7440", "listen address")
	n := flag.Int("n", 3, "number of clients (registers) of the default shard")
	dataDir := flag.String("data-dir", "", "persistence directory; empty = in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 1024, "rotate a state snapshot every N logged records (0 = never)")
	fsync := flag.Bool("fsync", false, "sync the WAL before every reply (survives power loss, slower)")
	groupCommit := flag.Bool("group-commit", true, "batch WAL records into one write+sync per reply instead of one per record")
	flushInterval := flag.Duration("flush-interval", 2*time.Millisecond, "group-commit: max time a buffered record may wait for a background flush")
	shardsFile := flag.String("shards", "", "shard manifest file: one '<name> n=<clients> [persist]' per line")
	shardSpec := flag.String("shard-spec", "", "template for lazily created shards, e.g. 'n=4,persist'; empty = reject undeclared shards")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus), /events, /debug/vars and /debug/pprof on this address; empty = disabled")
	blobBackends := flag.String("blob-backends", "", "failover blob fleet per shard, e.g. 'dir,dir=mirror,mem,w=2'; empty = single default store")
	blobFaults := flag.String("blob-faults", "", "fault-inject one fleet backend, e.g. 'backend=0,errs=0.3,latency=2ms,seed=7' (requires -blob-backends)")
	traceSample := flag.Int("trace-sample", 0, "retain 1 in N traces by head sampling (0 = head sampling off)")
	traceSlow := flag.Duration("trace-slow", 0, "always retain traces at least this slow (tail sampling; 0 = off)")
	maxBatch := flag.Int("max-batch", transport.DefaultMaxBatch, "max messages a shard dispatcher drains per batch (1 = unbatched)")
	verify := flag.Bool("verify", false, "verify SUBMIT signatures at the dispatcher (admission hygiene; keys derived from -seed)")
	verifyWorkers := flag.Int("verify-workers", 0, "goroutines for parallel batch signature verification (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "deterministic demo key seed for -verify (must match the clients' -seed)")
	flag.Parse()

	if *traceSample > 0 || *traceSlow > 0 {
		trace.SetEnabled(true)
		trace.Configure(*traceSample, *traceSlow)
		fmt.Printf("faust-server: tracing on (head 1-in-%d, slow threshold %s); GET /trace on the metrics port\n",
			*traceSample, *traceSlow)
	}

	if *n <= 0 {
		log.Fatalf("faust-server: -n must be positive, got %d", *n)
	}

	var specs []shard.Spec
	manifestHasDefault := false
	if *shardsFile != "" {
		f, err := os.Open(*shardsFile)
		if err != nil {
			log.Fatalf("faust-server: %v", err)
		}
		manifest, err := shard.ParseManifest(f)
		_ = f.Close()
		if err != nil {
			log.Fatalf("faust-server: %v", err)
		}
		specs = manifest
		for _, sp := range manifest {
			if sp.Name == transport.DefaultShard {
				manifestHasDefault = true
			}
		}
	}
	if !manifestHasDefault {
		// The flag-derived default shard keeps the historic layout at the
		// data-dir root. A manifest entry named "default" overrides -n and
		// places its data under shards/default like any other shard.
		specs = append(specs, shard.Spec{
			Name:    transport.DefaultShard,
			N:       *n,
			Persist: *dataDir != "",
			Dir:     *dataDir,
		})
	}
	var def *shard.Spec
	if *shardSpec != "" {
		sp, err := shard.ParseSpec(*shardSpec)
		if err != nil {
			log.Fatalf("faust-server: %v", err)
		}
		def = &sp
	}

	fleetSpec, err := blobfleet.ParseFleetSpec(*blobBackends)
	if err != nil {
		log.Fatalf("faust-server: %v", err)
	}
	faultPlan, err := blobfleet.ParseFaultPlan(*blobFaults)
	if err != nil {
		log.Fatalf("faust-server: %v", err)
	}
	if faultPlan != nil && fleetSpec == nil {
		log.Fatalf("faust-server: -blob-faults requires -blob-backends")
	}

	opts := shard.Options{
		BaseDir: *dataDir,
		FileOptions: store.FileOptions{
			Fsync:         *fsync,
			GroupCommit:   *groupCommit,
			FlushInterval: *flushInterval,
		},
		StoreOptions: store.Options{SnapshotEvery: *snapshotEvery},
		Default:      def,
		BlobFleet:    fleetSpec,
		BlobFaults:   faultPlan,
	}
	if *verify {
		crypto.SetVerifyWorkers(*verifyWorkers)
		opts.VerifyKeyring = func(name string, n int) *crypto.Keyring {
			// Same derivation as faust-client: seed + group size. Every
			// shard with the same n shares the demo key set.
			ring, _ := crypto.NewTestKeyring(n, *seed)
			return ring
		}
	}
	router, err := shard.NewRouter(specs, opts)
	if err != nil {
		log.Fatalf("faust-server: %v", err)
	}

	// Instantiate the default shard eagerly so recovery cost is paid at
	// boot and its outcome is visible; named shards stay lazy.
	if _, err := router.ResolveShard(transport.DefaultShard); err != nil {
		log.Fatalf("faust-server: opening default shard: %v", err)
	}
	defInfo, _ := router.Info(transport.DefaultShard)
	if defInfo.Persistent {
		fmt.Printf("faust-server: recovered from %s (snapshot: %v, WAL records replayed: %d, fsync: %v, group-commit: %v)\n",
			defInfo.Dir, defInfo.RecoveredSnapshot, defInfo.ReplayedRecords, *fsync, *groupCommit)
	}
	if fleetSpec != nil {
		names := make([]string, 0, len(fleetSpec.Entries))
		for _, st := range router.FleetStatus(transport.DefaultShard) {
			names = append(names, st.Name)
		}
		fmt.Printf("faust-server: blob failover fleet per shard: %v\n", names)
		if faultPlan != nil {
			fmt.Printf("faust-server: fault injection armed on backend %d: %+v\n", faultPlan.Backend, faultPlan.Config)
		}
	}

	if *metricsAddr != "" {
		obs.SetEnabled(true)
		mln, mshut, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatalf("faust-server: metrics listen: %v", err)
		}
		defer mshut()
		fmt.Printf("faust-server: metrics on http://%s/metrics (events: /events, pprof: /debug/pprof)\n", mln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("faust-server: listen: %v", err)
	}
	srv := transport.ServeTCPSharded(ln, router, transport.WithTCPMaxBatch(*maxBatch))
	fmt.Printf("faust-server: serving %d registers on %s (default shard)\n", defInfo.N, ln.Addr())
	if declared := router.DeclaredShards(); len(declared) > 1 {
		fmt.Printf("faust-server: declared shards: %v\n", declared)
	}
	if def != nil {
		fmt.Printf("faust-server: lazy shard creation enabled (n=%d, persist=%v)\n", def.N, def.Persist)
	}
	if *maxBatch != 1 {
		fmt.Printf("faust-server: batched dispatch on (max-batch=%d)\n", *maxBatch)
	}
	if *verify {
		fmt.Printf("faust-server: SUBMIT signature verification on (seed=%d, workers=%d)\n", *seed, crypto.VerifyWorkers())
	}
	fmt.Println("faust-server: this process is the UNTRUSTED party; clients verify everything")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nfaust-server: shutting down")
	srv.Stop()
	for _, info := range router.OpenShards() {
		fmt.Printf("faust-server: shard %q served (n=%d, persistent=%v)\n", info.Name, info.N, info.Persistent)
	}
	// Final snapshots so the next boot replays nothing; then release.
	if err := router.Close(); err != nil {
		log.Printf("faust-server: closing shards: %v", err)
	}
}
